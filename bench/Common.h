//===- bench/Common.h - Shared workloads for the benchmark suite -*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The workloads shared across the per-experiment benchmark binaries: the
/// Fig 1/Fig 3 interop sources, the Fig 9 counter/client pair, and
/// parameterized RichWasm module generators.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_BENCH_COMMON_H
#define RICHWASM_BENCH_COMMON_H

#include "ir/Builder.h"
#include "l3/L3.h"
#include "link/Link.h"
#include "lower/Lower.h"
#include "ml/ML.h"
#include "obs/Obs.h"
#include "typing/Checker.h"
#include "wasm/Interp.h"
#include "wasm/Binary.h"
#include "wasm/Validate.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

namespace rwbench {

/// A short host fingerprint — CPU model, logical core count, cpufreq
/// scaling governor — for stamping into benchmark context and the
/// BENCH_*.json trajectory files. Perf numbers recorded by successive
/// PRs are only comparable when this string matches; run_bench.sh warns
/// when it overwrites a baseline recorded on a different host.
inline std::string hostFingerprint() {
  std::string Model = "unknown-cpu";
  std::ifstream Cpu("/proc/cpuinfo");
  for (std::string Line; std::getline(Cpu, Line);) {
    if (Line.rfind("model name", 0) == 0) {
      size_t Colon = Line.find(':');
      if (Colon != std::string::npos) {
        Model = Line.substr(Colon + 1);
        // Trim and collapse runs of whitespace (cpuinfo pads with tabs).
        std::string Out;
        for (char C : Model) {
          if (C == ' ' || C == '\t') {
            if (!Out.empty() && Out.back() != ' ')
              Out.push_back(' ');
          } else {
            Out.push_back(C);
          }
        }
        while (!Out.empty() && Out.back() == ' ')
          Out.pop_back();
        Model = Out;
      }
      break;
    }
  }
  std::string Gov = "unknown-governor";
  std::ifstream G("/sys/devices/system/cpu/cpu0/cpufreq/scaling_governor");
  if (G && !std::getline(G, Gov))
    Gov = "unknown-governor";
  return Model + " | cores=" +
         std::to_string(std::thread::hardware_concurrency()) +
         " | governor=" + Gov;
}

/// Copies every obs counter/gauge under one of \p Prefixes into a
/// benchmark's user counters, mapping "cache.hits" → "cache_hits" (the
/// key shape run_bench.sh parses). This is the one bench-side renderer
/// for registry-backed stats: benches no longer reach into
/// cache::CacheStats / ir::TypeArena::Stats by hand, so a counter added
/// to a snapshot source shows up in every bench that exports its prefix.
/// Templated on the state type only to keep benchmark.h out of this
/// header. Under RW_OBS=OFF the snapshot is empty and nothing is
/// exported.
template <typename BenchmarkState>
inline void exportObsCounters(BenchmarkState &St,
                              std::initializer_list<const char *> Prefixes) {
  rw::obs::Snapshot S = rw::obs::snapshot();
  for (const rw::obs::Metric &M : S.Metrics) {
    if (M.Kind == rw::obs::MetricKind::Histogram)
      continue; // Phase timings live in obs::renderText/Json, not here.
    for (const char *P : Prefixes) {
      std::string Pref = std::string(P) + ".";
      if (M.Name.compare(0, Pref.size(), Pref) != 0)
        continue;
      std::string Key = M.Name;
      std::replace(Key.begin(), Key.end(), '.', '_');
      St.counters[Key] = static_cast<double>(M.Value);
      break;
    }
  }
}

inline const char *MLStashUnsafe =
    "global c = linref [ref int] () ;;"
    "export fun stash (r : lin (ref int)) : lin (ref int) = c := r; r ;;"
    "export fun get_stashed (u : unit) : lin (ref int) = !c ;;";

inline const char *MLStashSafe =
    "global c = linref [ref int] () ;;"
    "export fun stash (r : lin (ref int)) : unit = c := r ;;"
    "export fun get_stashed (u : unit) : lin (ref int) = !c ;;";

inline const char *L3ClientUnsafe =
    "import ml.stash : Ref int -o Ref int ;;"
    "import ml.get_stashed : unit -o Ref int ;;"
    "export fun main (u : unit) : int = "
    "  free (split (stash (join (new 42)))) ; "
    "  free (split (get_stashed ())) ;;";

inline const char *L3ClientSafe =
    "import ml.stash : Ref int -o unit ;;"
    "import ml.get_stashed : unit -o Ref int ;;"
    "export fun main (u : unit) : int = "
    "  stash (join (new 42)) ; "
    "  free (split (get_stashed ())) ;;";

inline const char *CounterLibL3 =
    "export fun make (n : int) : Ref int = join (new n) ;;"
    "export fun bump (r : Ref int) : Ref int = "
    "  let (old, c) = swap (split r) 0 in "
    "  let (z, c2) = swap c (old + 1) in "
    "  join c2 ;;"
    "export fun finish (r : Ref int) : int = free (split r) ;;";

inline const char *CounterClientML =
    "import lib.make : int -> lin (ref int) ;;"
    "import lib.bump : lin (ref int) -> lin (ref int) ;;"
    "import lib.finish : lin (ref int) -> int ;;"
    "global cell = linref [ref int] () ;;"
    "global rate = ref 1 ;;"
    "export fun init (u : unit) : unit = cell := make 0 ;;"
    "fun ntimes (n : int) : unit = "
    "  if n = 0 then () else (cell := bump !cell; ntimes (n - 1)) ;;"
    "export fun tick (u : unit) : unit = ntimes !rate ;;"
    "export fun set_rate (n : int) : unit = rate := n ;;"
    "export fun total (u : unit) : int = finish !cell ;;";

/// A module whose exported `main` sums 1..N with a loop (pure numerics).
inline rw::ir::Module loopModule(int32_t N) {
  using namespace rw::ir;
  using namespace rw::ir::build;
  rw::ir::Module M;
  M.Name = "loopmod";
  InstVec Body = {
      iconst(0), setLocal(0), iconst(0), setLocal(1),
      block(arrow({}, {}), {},
            {loop(arrow({}, {}),
                  {getLocal(1, Qual::unr()), iconst(1), addI32(),
                   setLocal(1), getLocal(0, Qual::unr()),
                   getLocal(1, Qual::unr()), addI32(), setLocal(0),
                   getLocal(1, Qual::unr()), iconst(N),
                   relop(NumType::I32, RelopKind::Lt), brIf(0)})}),
      getLocal(0, Qual::unr()),
  };
  M.Funcs.push_back(function({"main"},
                             FunType::get({}, arrow({}, {i32T()})),
                             {Size::constant(32), Size::constant(32)},
                             std::move(Body)));
  return M;
}

/// A module whose `main` performs N linear alloc/swap/free round-trips.
inline rw::ir::Module allocModule(int32_t N, bool Linear) {
  using namespace rw::ir;
  using namespace rw::ir::build;
  rw::ir::Module M;
  M.Name = "allocmod";
  InstVec Loop = {
      iconst(7),
      structMalloc({Size::constant(32)},
                   Linear ? Qual::lin() : Qual::unr()),
  };
  if (Linear)
    Loop.push_back(memUnpack(arrow({}, {}), {}, {structFree()}));
  else
    Loop.push_back(memUnpack(arrow({}, {}), {}, {drop()}));
  InstVec Rest = {getLocal(1, Qual::unr()), iconst(1), addI32(),
                  setLocal(1), getLocal(1, Qual::unr()), iconst(N),
                  relop(NumType::I32, RelopKind::Lt), brIf(0)};
  Loop.insert(Loop.end(), Rest.begin(), Rest.end());
  InstVec Body = {
      iconst(0), setLocal(1),
      block(arrow({}, {}), {}, {loop(arrow({}, {}), std::move(Loop))}),
      iconst(0),
  };
  M.Funcs.push_back(function(
      {"main"}, FunType::get({}, arrow({}, {i32T()})),
      {Size::constant(64), Size::constant(32)}, std::move(Body)));
  return M;
}

/// A module with `Funcs` copies of an arithmetic/heap function — the
/// checker-throughput workload. Returns total instruction count too.
inline rw::ir::Module wideModule(unsigned Funcs) {
  using namespace rw::ir;
  using namespace rw::ir::build;
  rw::ir::Module M;
  M.Name = "wide";
  for (unsigned I = 0; I < Funcs; ++I) {
    InstVec Body = {
        getLocal(0, Qual::unr()),
        iconst(static_cast<int32_t>(I)),
        addI32(),
        structMalloc({Size::constant(32)}, Qual::lin()),
        memUnpack(arrow({}, {i32T()}), {{1, i32T()}},
                  {iconst(9), structSwap(0), setLocal(1), structFree(),
                   getLocal(1, Qual::unr())}),
        iconst(3),
        mulI32(),
    };
    M.Funcs.push_back(function(
        {}, FunType::get({}, arrow({i32T()}, {i32T()})),
        {Size::constant(32)}, std::move(Body)));
  }
  return M;
}

/// An N-module admission set in the fig3 link shape (everyone imports the
/// foundational modules) with checker-relevant bodies: each exported
/// function allocates, strongly updates, and frees a linear struct, so a
/// check (and a lowering) costs what real library code costs. Shared by
/// the c6 admission-cache benches and the fig3 cold-instantiate bench.
struct AdmissionSet {
  std::vector<rw::ir::Module> Mods;
  std::vector<const rw::ir::Module *> Ptrs;

  explicit AdmissionSet(unsigned N, unsigned Funcs = 4) {
    using namespace rw::ir;
    using namespace rw::ir::build;
    FunTypeRef Fn = FunType::get({}, arrow({i32T()}, {i32T()}));
    auto modName = [](unsigned I) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "user_pkg_%06u", I);
      return std::string(Buf);
    };
    Mods.reserve(N);
    for (unsigned I = 0; I < N; ++I) {
      rw::ir::Module M;
      M.Name = modName(I);
      for (unsigned J = 0; J < Funcs; ++J) {
        InstVec Body = {
            getLocal(0, Qual::unr()),
            iconst(static_cast<int32_t>(I * Funcs + J)),
            addI32(),
            structMalloc({Size::constant(32)}, Qual::lin()),
            memUnpack(arrow({}, {i32T()}), {{1, i32T()}},
                      {iconst(9), structSwap(0), setLocal(1), structFree(),
                       getLocal(1, Qual::unr())}),
            iconst(3),
            mulI32(),
        };
        M.Funcs.push_back(
            function({"f" + std::to_string(I) + "_" + std::to_string(J)}, Fn,
                     {Size::constant(32)}, std::move(Body)));
      }
      if (I > 0)
        for (unsigned J = 0; J < 2; ++J) {
          unsigned P = (I * 7 + J * 13) % std::min(I, 4u);
          unsigned E = (I + J) % Funcs;
          M.Funcs.push_back(importFunc(
              {modName(P), "f" + std::to_string(P) + "_" + std::to_string(E)},
              Fn));
        }
      Mods.push_back(std::move(M));
    }
    for (const rw::ir::Module &M : Mods)
      Ptrs.push_back(&M);
  }
};

} // namespace rwbench

#endif // RICHWASM_BENCH_COMMON_H
