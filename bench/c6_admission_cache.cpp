//===- bench/c6_admission_cache.cpp - C6: content-addressed admission -----===//
// The admission-server repetition experiment (DESIGN.md §8): real traffic
// resubmits the same library modules over and over, so admission results
// are memoized content-addressed. Measures the full admission pipeline —
// batch check (cached verdicts) plus lowered instantiation (cached
// lowering + flat translation) — cold (empty cache, every stage runs)
// versus warm (resident cache, the pipeline skips to instantiation), plus
// the serialization layer underneath the cache. run_bench.sh emits the
// cold/warm pairs into BENCH_cache.json; the 64-module warm speedup is
// the headline number (≥10x gates cache PRs).
#include "Common.h"

#include "cache/AdmissionCache.h"
#include "serial/Serial.h"
#include "support/ThreadPool.h"

#include <benchmark/benchmark.h>

using namespace rw;
using namespace rwbench;

namespace {

// AdmissionSet (the N-module link-shaped workload with checker-relevant
// bodies) lives in bench/Common.h, shared with fig3's cold-instantiate
// bench.

/// One admission: batch-check every module (memoized verdicts), then ship
/// the accepted set through the lowered pipeline (memoized artifact).
bool admit(const AdmissionSet &Set, support::ThreadPool &Pool,
           cache::AdmissionCache &C) {
  std::vector<Status> Verdicts = typing::checkModules(Set.Ptrs, Pool, &C);
  for (const Status &S : Verdicts)
    if (!S.ok())
      return false;
  link::LinkOptions Opts;
  Opts.Cache = &C;
  Opts.Engine = wasm::EngineKind::Flat;
  Opts.RunStart = false;
  auto LI = link::instantiateLowered(Set.Ptrs, Opts);
  return bool(LI);
}

/// Cache and arena stats flow through the obs registry (the cache
/// registers a "cache.*" snapshot source for its lifetime, the global
/// arena an "arena.*" one), so the export is one shared call; the
/// '.'→'_' key mapping keeps the exact names run_bench.sh parses
/// (cache_hits, cache_misses, cache_evictions, cache_bytes,
/// arena_serialized_bytes).
void reportCache(benchmark::State &St, const cache::AdmissionCache &C) {
  (void)C; // Sampled via its registered obs source.
  exportObsCounters(St, {"cache", "arena"});
}

} // namespace

//===----------------------------------------------------------------------===//
// Full admission pipeline, cold vs warm
//===----------------------------------------------------------------------===//

static void C6_AdmissionCold(benchmark::State &St) {
  AdmissionSet Set(static_cast<unsigned>(St.range(0)));
  support::ThreadPool Pool;
  for (auto _ : St) {
    cache::AdmissionCache C; // Empty every submission: all misses.
    if (!admit(Set, Pool, C)) {
      St.SkipWithError("admission failed");
      return;
    }
  }
  St.counters["modules/s"] = benchmark::Counter(
      static_cast<double>(Set.Mods.size()) * St.iterations(),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(C6_AdmissionCold)->Arg(8)->Arg(64)->Unit(benchmark::kMicrosecond);

static void C6_AdmissionWarm(benchmark::State &St) {
  AdmissionSet Set(static_cast<unsigned>(St.range(0)));
  support::ThreadPool Pool;
  cache::AdmissionCache C;
  if (!admit(Set, Pool, C)) { // Prime.
    St.SkipWithError("admission failed");
    return;
  }
  for (auto _ : St)
    if (!admit(Set, Pool, C)) {
      St.SkipWithError("admission failed");
      return;
    }
  St.counters["modules/s"] = benchmark::Counter(
      static_cast<double>(Set.Mods.size()) * St.iterations(),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
  reportCache(St, C);
}
BENCHMARK(C6_AdmissionWarm)->Arg(8)->Arg(64)->Unit(benchmark::kMicrosecond);

//===----------------------------------------------------------------------===//
// Batch check alone, cold vs warm (the per-module verdict cache)
//===----------------------------------------------------------------------===//

static void C6_CheckBatchCold(benchmark::State &St) {
  AdmissionSet Set(static_cast<unsigned>(St.range(0)));
  support::ThreadPool Pool;
  for (auto _ : St) {
    cache::AdmissionCache C;
    auto Out = typing::checkModules(Set.Ptrs, Pool, &C);
    benchmark::DoNotOptimize(Out.size());
  }
}
BENCHMARK(C6_CheckBatchCold)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond);

static void C6_CheckBatchWarm(benchmark::State &St) {
  AdmissionSet Set(static_cast<unsigned>(St.range(0)));
  support::ThreadPool Pool;
  cache::AdmissionCache C;
  (void)typing::checkModules(Set.Ptrs, Pool, &C);
  for (auto _ : St) {
    auto Out = typing::checkModules(Set.Ptrs, Pool, &C);
    benchmark::DoNotOptimize(Out.size());
  }
  reportCache(St, C);
}
BENCHMARK(C6_CheckBatchWarm)
    ->Arg(8)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMicrosecond);

//===----------------------------------------------------------------------===//
// The serialization layer
//===----------------------------------------------------------------------===//

static void C6_SerializeModule(benchmark::State &St) {
  AdmissionSet Set(static_cast<unsigned>(St.range(0)));
  uint64_t Bytes = 0;
  for (auto _ : St) {
    Bytes = 0;
    for (const rw::ir::Module *M : Set.Ptrs)
      Bytes += serial::write(*M).size();
    benchmark::DoNotOptimize(Bytes);
  }
  St.counters["bytes_per_module"] =
      static_cast<double>(Bytes) / static_cast<double>(Set.Mods.size());
}
BENCHMARK(C6_SerializeModule)->Arg(64)->Unit(benchmark::kMicrosecond);

static void C6_DeserializeModule(benchmark::State &St) {
  AdmissionSet Set(static_cast<unsigned>(St.range(0)));
  std::vector<std::vector<uint8_t>> Blobs;
  for (const rw::ir::Module *M : Set.Ptrs)
    Blobs.push_back(serial::write(*M));
  for (auto _ : St)
    for (const std::vector<uint8_t> &B : Blobs) {
      auto R = serial::read(B);
      if (!R) {
        St.SkipWithError("read failed");
        return;
      }
      benchmark::DoNotOptimize(R->Funcs.size());
    }
}
BENCHMARK(C6_DeserializeModule)->Arg(64)->Unit(benchmark::kMicrosecond);

static void C6_ModuleHash(benchmark::State &St) {
  AdmissionSet Set(static_cast<unsigned>(St.range(0)));
  for (auto _ : St) {
    uint64_t Acc = 0;
    for (const rw::ir::Module *M : Set.Ptrs)
      Acc ^= serial::moduleHash(*M).Hi;
    benchmark::DoNotOptimize(Acc);
  }
}
BENCHMARK(C6_ModuleHash)->Arg(64)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
