//===- bench/c3_gc.cpp - C3: collection of the unrestricted memory --------===//
// The §3 collect rule: reclamation throughput as garbage volume sweeps,
// in the RichWasm machine and via the host-assisted collector on Wasm.
#include "Common.h"
#include <benchmark/benchmark.h>
using namespace rw;
using namespace rwbench;

static void C3_MachineCollect(benchmark::State &St) {
  int32_t N = static_cast<int32_t>(St.range(0));
  ir::Module M = allocModule(N, /*Linear=*/false);
  auto Mach = link::instantiate({&M});
  if (!Mach) { St.SkipWithError("link failed"); return; }
  uint64_t Reclaimed = 0;
  for (auto _ : St) {
    St.PauseTiming();
    (void)(*Mach)->invoke(0, 0, {}, {});
    St.ResumeTiming();
    Reclaimed += (*Mach)->collect();
  }
  St.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(Reclaimed), benchmark::Counter::kIsRate);
}
BENCHMARK(C3_MachineCollect)->Arg(100)->Arg(1000)->Arg(10000);

static void C3_HostGcOnWasm(benchmark::State &St, wasm::EngineKind K) {
  int32_t N = static_cast<int32_t>(St.range(0));
  ir::Module M = allocModule(N, /*Linear=*/false);
  auto LP = lower::lowerProgram({&M});
  if (!LP) { St.SkipWithError("lowering failed"); return; }
  auto Inst = wasm::createInstance(LP->Module, K);
  (void)Inst->initialize();
  lower::HostGc Gc(*Inst, LP->Runtime, LP->RefGlobals);
  uint64_t Swept = 0;
  for (auto _ : St) {
    St.PauseTiming();
    (void)Inst->invokeByName("allocmod.main", {});
    St.ResumeTiming();
    Swept += Gc.collect().Swept;
  }
  St.counters["cells/s"] = benchmark::Counter(
      static_cast<double>(Swept), benchmark::Counter::kIsRate);
}
static void C3_HostGcOnWasm_Tree(benchmark::State &St) {
  C3_HostGcOnWasm(St, wasm::EngineKind::Tree);
}
static void C3_HostGcOnWasm_Flat(benchmark::State &St) {
  C3_HostGcOnWasm(St, wasm::EngineKind::Flat);
}
BENCHMARK(C3_HostGcOnWasm_Tree)->Arg(100)->Arg(1000)->Arg(10000);
BENCHMARK(C3_HostGcOnWasm_Flat)->Arg(100)->Arg(1000)->Arg(10000);

BENCHMARK_MAIN();
