//===- bench/fig4_interp_throughput.cpp - F4: execution throughput --------===//
// The Fig 4 cost profile, at every execution tier: the RichWasm
// small-step machine (the dynamic semantics), and the lowered-Wasm path
// on all three engines — the tree-walking reference interpreter, the
// flat-bytecode engine, and the tier-3 copy-and-patch JIT (eager). The
// per-engine counters let run_bench.sh emit geomean Tree→Flat and
// Flat→Jit speedups; the jit is the shipping tier where compiled in.
#include "Common.h"
#include <benchmark/benchmark.h>
using namespace rw;
using namespace rwbench;

static void F4_StepsPerSecond_Loop(benchmark::State &St) {
  ir::Module M = loopModule(static_cast<int32_t>(St.range(0)));
  link::LinkOptions Opts;
  auto Mach = link::instantiate({&M}, Opts);
  uint64_t Steps = 0;
  for (auto _ : St) {
    (*Mach)->setupInvoke(0, 0, {}, {});
    auto R = (*Mach)->run();
    benchmark::DoNotOptimize(R);
  }
  Steps = (*Mach)->stepCount();
  St.counters["steps/s"] =
      benchmark::Counter(static_cast<double>(Steps), benchmark::Counter::kIsRate);
}
BENCHMARK(F4_StepsPerSecond_Loop)->Arg(100)->Arg(1000);

static void F4_StepsPerSecond_HeapChurn(benchmark::State &St) {
  ir::Module M = allocModule(static_cast<int32_t>(St.range(0)), /*Linear=*/true);
  auto Mach = link::instantiate({&M});
  for (auto _ : St) {
    (*Mach)->setupInvoke(0, 0, {}, {});
    auto R = (*Mach)->run();
    benchmark::DoNotOptimize(R);
  }
  St.counters["steps/s"] = benchmark::Counter(
      static_cast<double>((*Mach)->stepCount()), benchmark::Counter::kIsRate);
}
BENCHMARK(F4_StepsPerSecond_HeapChurn)->Arg(100)->Arg(1000);

//===----------------------------------------------------------------------===//
// Lowered Wasm, all engines. The benchmark names carry the engine so
// tooling can compute per-engine throughput and the tier speedups.
//===----------------------------------------------------------------------===//

static void runLowered(benchmark::State &St, ir::Module M, const char *Export,
                       wasm::EngineKind K) {
  link::LinkOptions Opts;
  Opts.Engine = K;
  auto LI = link::instantiateLowered({&M}, Opts);
  if (!LI) {
    St.SkipWithError("instantiation failed");
    return;
  }
  LI->Instance->resetInstrCount();
  for (auto _ : St) {
    auto R = LI->invokeExport(Export, {});
    benchmark::DoNotOptimize(R);
  }
  St.counters["insts/s"] =
      benchmark::Counter(static_cast<double>(LI->Instance->instrCount()),
                         benchmark::Counter::kIsRate);
}

static void F4_Wasm_Loop_Tree(benchmark::State &St) {
  runLowered(St, loopModule(static_cast<int32_t>(St.range(0))),
             "loopmod.main", wasm::EngineKind::Tree);
}
static void F4_Wasm_Loop_Flat(benchmark::State &St) {
  runLowered(St, loopModule(static_cast<int32_t>(St.range(0))),
             "loopmod.main", wasm::EngineKind::Flat);
}
static void F4_Wasm_Loop_Jit(benchmark::State &St) {
  runLowered(St, loopModule(static_cast<int32_t>(St.range(0))),
             "loopmod.main", wasm::EngineKind::Jit);
}
BENCHMARK(F4_Wasm_Loop_Tree)->Arg(100)->Arg(1000);
BENCHMARK(F4_Wasm_Loop_Flat)->Arg(100)->Arg(1000);
BENCHMARK(F4_Wasm_Loop_Jit)->Arg(100)->Arg(1000);

static void F4_Wasm_HeapChurn_Tree(benchmark::State &St) {
  runLowered(St, allocModule(static_cast<int32_t>(St.range(0)), true),
             "allocmod.main", wasm::EngineKind::Tree);
}
static void F4_Wasm_HeapChurn_Flat(benchmark::State &St) {
  runLowered(St, allocModule(static_cast<int32_t>(St.range(0)), true),
             "allocmod.main", wasm::EngineKind::Flat);
}
static void F4_Wasm_HeapChurn_Jit(benchmark::State &St) {
  runLowered(St, allocModule(static_cast<int32_t>(St.range(0)), true),
             "allocmod.main", wasm::EngineKind::Jit);
}
BENCHMARK(F4_Wasm_HeapChurn_Tree)->Arg(100)->Arg(1000);
BENCHMARK(F4_Wasm_HeapChurn_Flat)->Arg(100)->Arg(1000);
BENCHMARK(F4_Wasm_HeapChurn_Jit)->Arg(100)->Arg(1000);

// Custom main (instead of BENCHMARK_MAIN) so the host fingerprint lands
// in the JSON context and run_bench.sh can refuse cross-host deltas.
int main(int argc, char **argv) {
  benchmark::AddCustomContext("host_fingerprint", rwbench::hostFingerprint());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
