//===- bench/fig4_interp_throughput.cpp - F4: reduction throughput --------===//
// The Fig 4 small-step machine: reductions per second on loop and
// heap-churn workloads (the dynamic semantics' cost profile).
#include "Common.h"
#include <benchmark/benchmark.h>
using namespace rw;
using namespace rwbench;

static void F4_StepsPerSecond_Loop(benchmark::State &St) {
  ir::Module M = loopModule(static_cast<int32_t>(St.range(0)));
  link::LinkOptions Opts;
  auto Mach = link::instantiate({&M}, Opts);
  uint64_t Steps = 0;
  for (auto _ : St) {
    (*Mach)->setupInvoke(0, 0, {}, {});
    auto R = (*Mach)->run();
    benchmark::DoNotOptimize(R);
  }
  Steps = (*Mach)->stepCount();
  St.counters["steps/s"] =
      benchmark::Counter(static_cast<double>(Steps), benchmark::Counter::kIsRate);
}
BENCHMARK(F4_StepsPerSecond_Loop)->Arg(100)->Arg(1000);

static void F4_StepsPerSecond_HeapChurn(benchmark::State &St) {
  ir::Module M = allocModule(static_cast<int32_t>(St.range(0)), /*Linear=*/true);
  auto Mach = link::instantiate({&M});
  for (auto _ : St) {
    (*Mach)->setupInvoke(0, 0, {}, {});
    auto R = (*Mach)->run();
    benchmark::DoNotOptimize(R);
  }
  St.counters["steps/s"] = benchmark::Counter(
      static_cast<double>((*Mach)->stepCount()), benchmark::Counter::kIsRate);
}
BENCHMARK(F4_StepsPerSecond_HeapChurn)->Arg(100)->Arg(1000);

BENCHMARK_MAIN();
