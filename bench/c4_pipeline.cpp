//===- bench/c4_pipeline.cpp - C4: compilation is tractable (§5/§6) -------===//
// End-to-end compile cost: ML/L3 source → (parse, check, closure-convert,
// annotate, codegen) → RichWasm check → Wasm lowering → validation.
#include "Common.h"
#include <benchmark/benchmark.h>
using namespace rw;
using namespace rwbench;

static void C4_MLFrontend(benchmark::State &St) {
  for (auto _ : St) {
    auto M = ml::compileSource("app", CounterClientML);
    benchmark::DoNotOptimize(M);
  }
}
BENCHMARK(C4_MLFrontend);

static void C4_L3Frontend(benchmark::State &St) {
  for (auto _ : St) {
    auto M = l3::compileSource("lib", CounterLibL3);
    benchmark::DoNotOptimize(M);
  }
}
BENCHMARK(C4_L3Frontend);

static void C4_FullPipelineToWasmBinary(benchmark::State &St) {
  for (auto _ : St) {
    auto Lib = l3::compileSource("lib", CounterLibL3);
    auto App = ml::compileSource("app", CounterClientML);
    auto LP = lower::lowerProgram({&*Lib, &*App});
    if (!LP) { St.SkipWithError("lowering failed"); return; }
    std::vector<uint8_t> Bytes = wasm::encode(LP->Module);
    benchmark::DoNotOptimize(Bytes.size());
  }
}
BENCHMARK(C4_FullPipelineToWasmBinary);

BENCHMARK_MAIN();
