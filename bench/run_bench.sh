#!/usr/bin/env bash
# Runs the benchmark suite's trajectory experiments and emits machine-
# readable JSON so successive PRs have perf trajectories:
#
#  * BENCH_interp.json  — execution throughput on every engine tier
#                         (fig4: tree, flat, jit), with the Tree→Flat and
#                         Flat→Jit geomean speedups (RW_JIT_GATE=1 fails
#                         the run when Flat→Jit < RW_JIT_MIN_SPEEDUP,
#                         default 3x, on jit-enabled builds);
#  * BENCH_typing.json  — type-checker throughput (fig7 F7_CheckModule,
#                         the parallel F7_CheckModulePar batch pipeline,
#                         and the T1 soundness generate-check-run loop),
#                         the admission-control hot path at link
#                         boundaries;
#  * BENCH_link.json    — batch vs sequential import resolution (fig3
#                         F3_Resolve*) at 8/64/256 modules;
#  * BENCH_cache.json   — content-addressed admission cache (c6): cold vs
#                         warm full-pipeline admission and batch checking,
#                         plus the serialization layer; the 64-module warm
#                         admission speedup is the headline (≥10x gates
#                         cache PRs);
#  * BENCH_server.json  — the c7 admission-server simulation: N client
#                         threads, zipf hot/cold/adversarial mix through
#                         ingest::admit with tracing + timeline live;
#                         p50/p99/p999 admission latency, cache pressure,
#                         and the obs-vs-ground-truth reconciliation
#                         gates (the binary exits nonzero on divergence).
#                         RW_C7_THREADS / RW_C7_REQUESTS tune the load
#                         (defaults 8 / 100000; CI smoke uses 4 / 20000).
#
# Usage: bench/run_bench.sh [build-dir] [interp-out.json] [typing-out.json]
#                           [link-out.json] [cache-out.json] [server-out.json]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_interp.json}"
TYPING_OUT="${3:-BENCH_typing.json}"
LINK_OUT="${4:-BENCH_link.json}"
CACHE_OUT="${5:-BENCH_cache.json}"
SERVER_OUT="${6:-BENCH_server.json}"
BIN="$BUILD_DIR/fig4_interp_throughput"
TYPING_BIN="$BUILD_DIR/fig7_typecheck_throughput"
T1_BIN="$BUILD_DIR/t1_soundness_throughput"
LINK_BIN="$BUILD_DIR/fig3_linking_types"
CACHE_BIN="$BUILD_DIR/c6_admission_cache"
SERVER_BIN="$BUILD_DIR/c7_admission_server"

for B in "$BIN" "$TYPING_BIN" "$T1_BIN" "$LINK_BIN" "$CACHE_BIN" \
         "$SERVER_BIN"; do
  if [[ ! -x "$B" ]]; then
    echo "error: $B not built (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
    exit 1
  fi
done


#===----------------------------------------------------------------------===#
# Observability overhead gate (RW_OBS_GATE=1 runs the gate instead of
# the trajectory suite)
#===----------------------------------------------------------------------===#
# The obs layer's contract is "compiled in but disabled costs nothing":
# counters are relaxed adds into per-thread shards and spans are one
# relaxed load when the runtime flag is off. This gate holds the suite to
# it: build the same benches with -DRW_OBS=OFF, run the two hot paths —
# F7_CheckModule (the admission-control loop) and F4_Wasm_Loop (tree and
# flat dispatch; the flat engine fuses profile bumps into translation) —
# in both builds, and fail if the instrumented-but-idle build is more than
# BENCH_OBS_TOLERANCE_PCT (default 2%) slower.
#
# The tree-engine loop is the gate's *control*: both engines' TUs
# (Interp.cpp, Engine.cpp) compile byte-identical under ON and OFF — the
# execution paths carry no compiled-in instrumentation — so any delta the
# tree bench shows is measurement artifact by construction (the two
# binaries link differing TUs elsewhere, which shifts code layout and
# alignment of the identical hot loop; plus host noise). The gate
# measures that floor on the control and judges the instrumented benches
# against tolerance + the floor, so a noisy or layout-shifted run doesn't
# convict instrumentation that provably isn't in the measured code.
if [[ "${RW_OBS_GATE:-0}" == "1" ]]; then
  OFF_DIR="${BENCH_OBS_OFF_DIR:-$BUILD_DIR-obs-off}"
  GATE_REPS="${BENCH_OBS_GATE_REPS:-7}"
  echo "obs overhead gate: building RW_OBS=OFF reference in $OFF_DIR"
  cmake -B "$OFF_DIR" -S . -DRW_OBS=OFF >/dev/null
  cmake --build "$OFF_DIR" -j \
        --target fig4_interp_throughput fig7_typecheck_throughput >/dev/null

  # Interleave the ON/OFF runs rep by rep: on a busy or thermally drifty
  # host, consecutive blocks confound build effects with machine drift;
  # alternating keeps the min-of-reps comparison honest. Both runs must
  # see the layer runtime-disabled, so the enable vars are scrubbed.
  GATE_TMP="$(mktemp -d)"
  run_gate_bin() { # build-dir out-file bench-bin filter
    env -u RW_OBS -u RW_OBS_TRACE "$1/$3" --benchmark_filter="$4" \
        --benchmark_format=json >"$2"
  }
  ON_F7=(); ON_F4=(); OFF_F7=(); OFF_F4=()
  for ((REP = 1; REP <= GATE_REPS; REP++)); do
    # Alternate which build goes first inside each pair: a fixed order
    # would fold any systematic first-runner effect into the ratio.
    if ((REP % 2)); then FIRST="$BUILD_DIR"; SECOND="$OFF_DIR"
                         FPRE=on; SPRE=off
    else                 FIRST="$OFF_DIR";   SECOND="$BUILD_DIR"
                         FPRE=off; SPRE=on
    fi
    run_gate_bin "$FIRST"  "$GATE_TMP/${FPRE}_f7_$REP.json" \
                 fig7_typecheck_throughput 'F7_CheckModule/64'
    run_gate_bin "$SECOND" "$GATE_TMP/${SPRE}_f7_$REP.json" \
                 fig7_typecheck_throughput 'F7_CheckModule/64'
    run_gate_bin "$FIRST"  "$GATE_TMP/${FPRE}_f4_$REP.json" \
                 fig4_interp_throughput 'F4_Wasm_Loop_(Tree|Flat)/1000$'
    run_gate_bin "$SECOND" "$GATE_TMP/${SPRE}_f4_$REP.json" \
                 fig4_interp_throughput 'F4_Wasm_Loop_(Tree|Flat)/1000$'
    ON_F7+=("$GATE_TMP/on_f7_$REP.json"); ON_F4+=("$GATE_TMP/on_f4_$REP.json")
    OFF_F7+=("$GATE_TMP/off_f7_$REP.json"); OFF_F4+=("$GATE_TMP/off_f4_$REP.json")
  done

  GATE_STATUS=0
  python3 - "${BENCH_OBS_TOLERANCE_PCT:-2}" "$GATE_REPS" \
            "${ON_F7[@]}" "${ON_F4[@]}" "${OFF_F7[@]}" "${OFF_F4[@]}" \
            <<'EOF' || GATE_STATUS=$?
import json, sys

def series(paths):
    """name -> [best ns at rep 1, rep 2, ...] in path order."""
    out = {}
    for path in paths:
        rep = {}
        for b in json.load(open(path))["benchmarks"]:
            if b.get("run_type") == "aggregate":
                continue
            if b.get("error_occurred") or b.get("skipped"):
                continue
            ns = b["real_time"]
            if b["name"] not in rep or ns < rep[b["name"]]:
                rep[b["name"]] = ns
        for name, ns in rep.items():
            out.setdefault(name, []).append(ns)
    return out

tol = float(sys.argv[1])
reps = int(sys.argv[2])
paths = sys.argv[3:]
on, off = series(paths[: 2 * reps]), series(paths[2 * reps :])

# The tree loop's hot TU is byte-identical in both builds, so its delta
# is the run's measurement floor (layout shift + residual host noise),
# not instrumentation cost.
CONTROL = "F4_Wasm_Loop_Tree/1000"

def delta_pct(name):
    # Paired ratios of adjacent-in-time runs cancel host drift (frequency
    # scaling, background load); the median is robust to outlier reps.
    ratios = sorted(a / b for a, b in zip(on[name], off[name]))
    return 100.0 * (ratios[len(ratios) // 2] - 1.0)

names = sorted(set(on) & set(off))
if not names:
    print("obs overhead gate: no comparable benchmarks ran", file=sys.stderr)
    sys.exit(1)
floor = max(0.0, delta_pct(CONTROL)) if CONTROL in names else 0.0
bad = []
for name in names:
    pct = delta_pct(name)
    if name == CONTROL:
        marker = "control: measurement floor"
    else:
        marker = "FAIL" if pct > tol + floor else "ok"
    print(f"obs overhead {name}: median-paired delta={pct:+.2f}% over "
          f"{len(on[name])} reps (on_min={min(on[name]):.0f}ns "
          f"off_min={min(off[name]):.0f}ns) [{marker}]")
    if name != CONTROL and pct > tol + floor:
        bad.append(name)
if bad:
    print(f"obs overhead gate FAILED (> {tol}% + {floor:.2f}% floor): "
          f"{', '.join(bad)}", file=sys.stderr)
    sys.exit(1)
print(f"obs overhead gate passed (tolerance {tol}% + {floor:.2f}% "
      f"measurement floor)")
EOF
  rm -rf "$GATE_TMP"
  exit "$GATE_STATUS"
fi

RAW="$(mktemp)"
TYPING_RAW="$(mktemp)"
T1_RAW="$(mktemp)"
LINK_RAW="$(mktemp)"
CACHE_RAW="$(mktemp)"
trap 'rm -f "$RAW" "$TYPING_RAW" "$T1_RAW" "$LINK_RAW" "$CACHE_RAW"' EXIT

"$BIN" --benchmark_filter='F4_Wasm' --benchmark_format=json \
       --benchmark_repetitions="${BENCH_REPS:-1}" >"$RAW"

# The host fingerprint comes from the fig4 binary's custom context
# (bench/Common.h hostFingerprint); every BENCH_*.json written by this
# run is stamped with it so trajectory deltas across PRs can be
# attributed to code, not to a host swap.
BENCH_HOST_FP="$(python3 -c '
import json, sys
print(json.load(open(sys.argv[1])).get("context", {})
      .get("host_fingerprint", "unknown"))' "$RAW")"
export BENCH_HOST_FP

python3 - "$RAW" "$OUT" <<'EOF'
import json, sys, math, os, datetime

raw = json.load(open(sys.argv[1]))
runs = {}
for b in raw["benchmarks"]:
    if b.get("run_type") == "aggregate":
        continue
    if b.get("error_occurred") or b.get("skipped"):
        continue
    name = b["name"]  # e.g. F4_Wasm_Loop_Flat/1000
    runs.setdefault(name, []).append(b)

engines = {"tree": {}, "flat": {}, "jit": {}}
for name, bs in runs.items():
    base, _, arg = name.partition("/")
    parts = base.split("_")          # F4 Wasm <Workload> <Engine>
    workload, engine = parts[2], parts[3].lower()
    best = min(bs, key=lambda b: b["real_time"])
    engines[engine][f"{workload}/{arg}"] = {
        "ns_per_invoke": best["real_time"],
        "insts_per_sec": best.get("insts/s"),
    }

def pairwise(slow, fast):
    out = {}
    for key, s in engines[slow].items():
        f = engines[fast].get(key)
        if f:
            out[key] = s["ns_per_invoke"] / f["ns_per_invoke"]
    return out

def geomean(d):
    return (math.exp(sum(math.log(s) for s in d.values()) / len(d))
            if d else None)

speedups = pairwise("tree", "flat")
jit_speedups = pairwise("flat", "jit")
gm = geomean(speedups)
jit_gm = geomean(jit_speedups)

fp = os.environ.get("BENCH_HOST_FP", "unknown")
# Cross-host warning: a committed baseline measured elsewhere makes the
# trajectory meaningless; flag it loudly (the overwrite still happens —
# the new numbers become the baseline for this host).
if os.path.exists(sys.argv[2]):
    try:
        prev = json.load(open(sys.argv[2])).get("host_fingerprint")
    except Exception:
        prev = None
    if prev and prev != fp:
        print(f"WARNING: overwriting {sys.argv[2]} recorded on a different "
              f"host:\n  old: {prev}\n  new: {fp}\n  deltas vs the previous "
              "numbers are not comparable", file=sys.stderr)

out = {
    "benchmark": "fig4_interp_throughput",
    "date": datetime.datetime.now(datetime.timezone.utc).isoformat(),
    "host_fingerprint": fp,
    "engines": engines,
    "speedup_flat_over_tree": speedups,
    "speedup_geomean": gm,
    "speedup_jit_over_flat": jit_speedups,
    "speedup_jit_geomean": jit_gm,
    "target_jit_geomean": 3.0,
}
json.dump(out, open(sys.argv[2], "w"), indent=2)
if gm is None:
    print(f"wrote {sys.argv[2]}: no comparable tree/flat pairs (benchmarks "
          "skipped or errored)")
    sys.exit(1)
print(f"wrote {sys.argv[2]}: geomean Tree->Flat speedup = {gm:.2f}x")
if jit_gm is not None:
    print(f"geomean Flat->Jit speedup = {jit_gm:.2f}x (target >=3x on "
          "jit-enabled builds)")

# RW_JIT_GATE=1 holds the tier-3 backend to its headline: >=3x over the
# flat interpreter (geomean across the fig4 kernels). Only meaningful on
# RW_JIT=ON builds — a jit-off build runs the Jit benches on the flat
# tier and would sit at ~1x by construction.
if os.environ.get("RW_JIT_GATE", "0") == "1":
    floor = float(os.environ.get("RW_JIT_MIN_SPEEDUP", "3"))
    if jit_gm is None:
        print("jit gate FAILED: no comparable flat/jit pairs", file=sys.stderr)
        sys.exit(1)
    if jit_gm < floor:
        print(f"jit gate FAILED: Flat->Jit geomean {jit_gm:.2f}x < "
              f"{floor:.2f}x", file=sys.stderr)
        sys.exit(1)
    print(f"jit gate passed: {jit_gm:.2f}x >= {floor:.2f}x")
EOF

"$TYPING_BIN" --benchmark_filter='F7_' --benchmark_format=json \
              --benchmark_repetitions="${BENCH_REPS:-1}" >"$TYPING_RAW"
"$T1_BIN" --benchmark_filter='T1_' --benchmark_format=json \
          --benchmark_repetitions="${BENCH_REPS:-1}" >"$T1_RAW"

# BENCH_BASELINE_TYPING can point at a previous BENCH_typing.json to embed
# per-benchmark speedups (the F7_CheckModule geomean gates checker PRs).
python3 - "$TYPING_RAW" "$T1_RAW" "$TYPING_OUT" <<'EOF'
import json, sys, math, os, datetime

results = {}
for path in (sys.argv[1], sys.argv[2]):
    raw = json.load(open(path))
    for b in raw["benchmarks"]:
        if b.get("run_type") == "aggregate":
            continue
        if b.get("error_occurred") or b.get("skipped"):
            continue
        cur = results.get(b["name"])
        if cur is None or b["real_time"] < cur["ns"]:
            results[b["name"]] = {
                "ns": b["real_time"],
                "per_sec": b.get("funcs/s") or b.get("programs/s"),
            }

out = {
    "benchmark": "typing_throughput",
    "date": datetime.datetime.now(datetime.timezone.utc).isoformat(),
    "host_fingerprint": os.environ.get("BENCH_HOST_FP", "unknown"),
    "results": results,
}

baseline_path = os.environ.get("BENCH_BASELINE_TYPING", "")
if baseline_path and os.path.exists(baseline_path):
    base = json.load(open(baseline_path))["results"]
    speedups = {
        name: base[name]["ns"] / r["ns"]
        for name, r in results.items()
        if name in base and r["ns"] > 0
    }
    out["speedup_vs_baseline"] = speedups
    gate = [s for n, s in speedups.items()
            if n in ("F7_CheckModule/64", "F7_CheckModule/256")]
    if gate:
        out["checkmodule_geomean_speedup"] = math.exp(
            sum(math.log(s) for s in gate) / len(gate))

json.dump(out, open(sys.argv[3], "w"), indent=2)
line = ", ".join(f"{n}={r['ns']:.0f}ns" for n, r in sorted(results.items()))
print(f"wrote {sys.argv[3]}: {line}")
if "checkmodule_geomean_speedup" in out:
    print(f"F7_CheckModule geomean speedup vs baseline = "
          f"{out['checkmodule_geomean_speedup']:.2f}x")
EOF

"$LINK_BIN" --benchmark_filter='F3_Resolve|F3_Cold|F3_Ingest' \
            --benchmark_format=json \
            --benchmark_repetitions="${BENCH_REPS:-1}" >"$LINK_RAW"

# Batch resolution must beat the sequential reference; the 64-module case
# is the headline number (≥2x gates linker PRs). F3_ColdAdmission (check
# verdicts + instantiateLowered, single-check post-refactor) is the
# cold-pipeline gate: BENCH_BASELINE_LINK can point at a previous
# BENCH_link.json (bench/BASELINE_cold_pr4.json is the committed
# pre-refactor snapshot) to embed the cold speedups (≥1.8x @64 is the
# target on multi-core; F3_ColdInstantiate tracks the bare lowered path).
python3 - "$LINK_RAW" "$LINK_OUT" <<'EOF'
import json, sys, datetime, os

raw = json.load(open(sys.argv[1]))
results = {}
for b in raw["benchmarks"]:
    if b.get("run_type") == "aggregate":
        continue
    if b.get("error_occurred") or b.get("skipped"):
        continue
    cur = results.get(b["name"])
    if cur is None or b["real_time"] < cur["ns"]:
        entry = {"ns": b["real_time"]}
        if "imports/s" in b:
            entry["imports_per_sec"] = b["imports/s"]
        if "modules/s" in b:
            entry["modules_per_sec"] = b["modules/s"]
        results[b["name"]] = entry

speedups = {}
for name, r in results.items():
    if not name.startswith("F3_ResolveBatch/"):
        continue
    arg = name.split("/")[1]
    seq = results.get(f"F3_ResolveSequential/{arg}")
    if seq and r["ns"] > 0:
        speedups[arg] = seq["ns"] / r["ns"]

out = {
    "benchmark": "link_batch_resolution",
    "date": datetime.datetime.now(datetime.timezone.utc).isoformat(),
    "host_fingerprint": os.environ.get("BENCH_HOST_FP", "unknown"),
    "results": results,
    "speedup_batch_over_sequential": speedups,
}

# Ingest front-door smoke: ingest::admit must stay within a few percent
# of hand-running the same pipeline — the front door adds sniffing,
# limit checks, and error plumbing, not real work.
admit = results.get("F3_IngestAdmit/64")
rawpipe = results.get("F3_IngestPipeline/64")
if admit and rawpipe and rawpipe["ns"] > 0:
    out["ingest_overhead_pct"] = 100.0 * (admit["ns"] / rawpipe["ns"] - 1.0)
    out["target_ingest_overhead_pct"] = 5.0

baseline_path = os.environ.get("BENCH_BASELINE_LINK", "")
if baseline_path and os.path.exists(baseline_path):
    base = json.load(open(baseline_path))["results"]
    cold = {
        name: base[name]["ns"] / r["ns"]
        for name, r in results.items()
        if name.split("/")[0] in ("F3_ColdInstantiate", "F3_ColdAdmission")
        and name in base and r["ns"] > 0
    }
    if cold:
        out["cold_speedup_vs_baseline"] = cold
        out["cold_admission_speedup_64"] = cold.get("F3_ColdAdmission/64")
        out["cold_instantiate_speedup_64"] = cold.get("F3_ColdInstantiate/64")
        out["target_cold_admission_speedup_64"] = 1.8

json.dump(out, open(sys.argv[2], "w"), indent=2)
line = ", ".join(f"{n}={s:.2f}x" for n, s in sorted(speedups.items(),
                                                   key=lambda kv: int(kv[0])))
print(f"wrote {sys.argv[2]}: batch-over-sequential {line}")
cold64 = out.get("cold_admission_speedup_64")
if cold64 is not None:
    print(f"cold admission speedup @64 modules = {cold64:.2f}x vs "
          "pre-refactor baseline (target >=1.8x)")
coldi64 = out.get("cold_instantiate_speedup_64")
if coldi64 is not None:
    print(f"cold instantiateLowered speedup @64 modules = {coldi64:.2f}x "
          "vs pre-refactor baseline")
ing = out.get("ingest_overhead_pct")
if ing is not None:
    print(f"ingest front-door overhead @64 modules = {ing:+.2f}% vs raw "
          "pipeline (target <=5%)")
    if os.environ.get("RW_INGEST_GATE", "0") == "1" and ing > 5.0:
        print(f"ingest gate FAILED: {ing:+.2f}% > 5%", file=sys.stderr)
        sys.exit(1)
EOF

"$CACHE_BIN" --benchmark_filter='C6_' --benchmark_format=json \
             --benchmark_repetitions="${BENCH_REPS:-1}" >"$CACHE_RAW"

# Warm admission must beat cold by >=10x at 64 modules (the cache PR gate):
# a warm resubmission skips check + lower + translate and goes straight to
# instantiation.
python3 - "$CACHE_RAW" "$CACHE_OUT" <<'EOF'
import json, sys, datetime, os

raw = json.load(open(sys.argv[1]))
results = {}
for b in raw["benchmarks"]:
    if b.get("run_type") == "aggregate":
        continue
    if b.get("error_occurred") or b.get("skipped"):
        continue
    cur = results.get(b["name"])
    if cur is None or b["real_time"] < cur["ns"]:
        entry = {"ns": b["real_time"]}
        for key in ("modules/s", "cache_hits", "cache_misses",
                    "cache_evictions", "cache_bytes", "bytes_per_module",
                    "arena_serialized_bytes"):
            if key in b:
                entry[key] = b[key]
        results[b["name"]] = entry

speedups = {}
for pair in ("Admission", "CheckBatch"):
    for name, r in results.items():
        if not name.startswith(f"C6_{pair}Warm/"):
            continue
        arg = name.split("/")[1]
        cold = results.get(f"C6_{pair}Cold/{arg}")
        if cold and r["ns"] > 0:
            speedups[f"{pair}/{arg}"] = cold["ns"] / r["ns"]

out = {
    "benchmark": "admission_cache",
    "date": datetime.datetime.now(datetime.timezone.utc).isoformat(),
    "host_fingerprint": os.environ.get("BENCH_HOST_FP", "unknown"),
    "results": results,
    "speedup_warm_over_cold": speedups,
    "admission_warm_speedup_64": speedups.get("Admission/64"),
    "target_admission_warm_speedup_64": 10.0,
}
json.dump(out, open(sys.argv[2], "w"), indent=2)
line = ", ".join(f"{n}={s:.2f}x" for n, s in sorted(speedups.items()))
print(f"wrote {sys.argv[2]}: warm-over-cold {line}")
head = speedups.get("Admission/64")
if head is not None:
    print(f"warm admission speedup @64 modules = {head:.2f}x (target >=10x)")
EOF

#===----------------------------------------------------------------------===#
# c7 admission-server simulation
#===----------------------------------------------------------------------===#
# Unlike the google-benchmark binaries above, c7 is its own harness: it
# self-checks the observability reconciliation invariants (histogram
# count == request count, hist p99 within 10% of exact, timeline
# base+deltas == latest) and writes its JSON directly, stamped with the
# shared bench/Common.h host fingerprint.
"$SERVER_BIN" "${RW_C7_THREADS:-8}" "${RW_C7_REQUESTS:-100000}" "$SERVER_OUT"
