#!/usr/bin/env bash
# Runs the benchmark suite's trajectory experiments and emits machine-
# readable JSON so successive PRs have perf trajectories:
#
#  * BENCH_interp.json  — interpreter throughput on both execution engines
#                         (fig4), with the Tree→Flat geomean speedup;
#  * BENCH_typing.json  — type-checker throughput (fig7 F7_CheckModule,
#                         the parallel F7_CheckModulePar batch pipeline,
#                         and the T1 soundness generate-check-run loop),
#                         the admission-control hot path at link
#                         boundaries;
#  * BENCH_link.json    — batch vs sequential import resolution (fig3
#                         F3_Resolve*) at 8/64/256 modules;
#  * BENCH_cache.json   — content-addressed admission cache (c6): cold vs
#                         warm full-pipeline admission and batch checking,
#                         plus the serialization layer; the 64-module warm
#                         admission speedup is the headline (≥10x gates
#                         cache PRs).
#
# Usage: bench/run_bench.sh [build-dir] [interp-out.json] [typing-out.json]
#                           [link-out.json] [cache-out.json]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_interp.json}"
TYPING_OUT="${3:-BENCH_typing.json}"
LINK_OUT="${4:-BENCH_link.json}"
CACHE_OUT="${5:-BENCH_cache.json}"
BIN="$BUILD_DIR/fig4_interp_throughput"
TYPING_BIN="$BUILD_DIR/fig7_typecheck_throughput"
T1_BIN="$BUILD_DIR/t1_soundness_throughput"
LINK_BIN="$BUILD_DIR/fig3_linking_types"
CACHE_BIN="$BUILD_DIR/c6_admission_cache"

for B in "$BIN" "$TYPING_BIN" "$T1_BIN" "$LINK_BIN" "$CACHE_BIN"; do
  if [[ ! -x "$B" ]]; then
    echo "error: $B not built (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
    exit 1
  fi
done

RAW="$(mktemp)"
TYPING_RAW="$(mktemp)"
T1_RAW="$(mktemp)"
LINK_RAW="$(mktemp)"
CACHE_RAW="$(mktemp)"
trap 'rm -f "$RAW" "$TYPING_RAW" "$T1_RAW" "$LINK_RAW" "$CACHE_RAW"' EXIT

"$BIN" --benchmark_filter='F4_Wasm' --benchmark_format=json \
       --benchmark_repetitions="${BENCH_REPS:-1}" >"$RAW"

python3 - "$RAW" "$OUT" <<'EOF'
import json, sys, math, datetime

raw = json.load(open(sys.argv[1]))
runs = {}
for b in raw["benchmarks"]:
    if b.get("run_type") == "aggregate":
        continue
    if b.get("error_occurred") or b.get("skipped"):
        continue
    name = b["name"]  # e.g. F4_Wasm_Loop_Flat/1000
    runs.setdefault(name, []).append(b)

engines = {"tree": {}, "flat": {}}
for name, bs in runs.items():
    base, _, arg = name.partition("/")
    parts = base.split("_")          # F4 Wasm <Workload> <Engine>
    workload, engine = parts[2], parts[3].lower()
    best = min(bs, key=lambda b: b["real_time"])
    engines[engine][f"{workload}/{arg}"] = {
        "ns_per_invoke": best["real_time"],
        "insts_per_sec": best.get("insts/s"),
    }

speedups = {}
for key, tree in engines["tree"].items():
    flat = engines["flat"].get(key)
    if flat:
        speedups[key] = tree["ns_per_invoke"] / flat["ns_per_invoke"]

geomean = (
    math.exp(sum(math.log(s) for s in speedups.values()) / len(speedups))
    if speedups else None
)

out = {
    "benchmark": "fig4_interp_throughput",
    "date": datetime.datetime.now(datetime.timezone.utc).isoformat(),
    "engines": engines,
    "speedup_flat_over_tree": speedups,
    "speedup_geomean": geomean,
}
json.dump(out, open(sys.argv[2], "w"), indent=2)
if geomean is None:
    print(f"wrote {sys.argv[2]}: no comparable tree/flat pairs (benchmarks "
          "skipped or errored)")
    sys.exit(1)
print(f"wrote {sys.argv[2]}: geomean Tree->Flat speedup = {geomean:.2f}x")
EOF

"$TYPING_BIN" --benchmark_filter='F7_' --benchmark_format=json \
              --benchmark_repetitions="${BENCH_REPS:-1}" >"$TYPING_RAW"
"$T1_BIN" --benchmark_filter='T1_' --benchmark_format=json \
          --benchmark_repetitions="${BENCH_REPS:-1}" >"$T1_RAW"

# BENCH_BASELINE_TYPING can point at a previous BENCH_typing.json to embed
# per-benchmark speedups (the F7_CheckModule geomean gates checker PRs).
python3 - "$TYPING_RAW" "$T1_RAW" "$TYPING_OUT" <<'EOF'
import json, sys, math, os, datetime

results = {}
for path in (sys.argv[1], sys.argv[2]):
    raw = json.load(open(path))
    for b in raw["benchmarks"]:
        if b.get("run_type") == "aggregate":
            continue
        if b.get("error_occurred") or b.get("skipped"):
            continue
        cur = results.get(b["name"])
        if cur is None or b["real_time"] < cur["ns"]:
            results[b["name"]] = {
                "ns": b["real_time"],
                "per_sec": b.get("funcs/s") or b.get("programs/s"),
            }

out = {
    "benchmark": "typing_throughput",
    "date": datetime.datetime.now(datetime.timezone.utc).isoformat(),
    "results": results,
}

baseline_path = os.environ.get("BENCH_BASELINE_TYPING", "")
if baseline_path and os.path.exists(baseline_path):
    base = json.load(open(baseline_path))["results"]
    speedups = {
        name: base[name]["ns"] / r["ns"]
        for name, r in results.items()
        if name in base and r["ns"] > 0
    }
    out["speedup_vs_baseline"] = speedups
    gate = [s for n, s in speedups.items()
            if n in ("F7_CheckModule/64", "F7_CheckModule/256")]
    if gate:
        out["checkmodule_geomean_speedup"] = math.exp(
            sum(math.log(s) for s in gate) / len(gate))

json.dump(out, open(sys.argv[3], "w"), indent=2)
line = ", ".join(f"{n}={r['ns']:.0f}ns" for n, r in sorted(results.items()))
print(f"wrote {sys.argv[3]}: {line}")
if "checkmodule_geomean_speedup" in out:
    print(f"F7_CheckModule geomean speedup vs baseline = "
          f"{out['checkmodule_geomean_speedup']:.2f}x")
EOF

"$LINK_BIN" --benchmark_filter='F3_Resolve|F3_Cold' \
            --benchmark_format=json \
            --benchmark_repetitions="${BENCH_REPS:-1}" >"$LINK_RAW"

# Batch resolution must beat the sequential reference; the 64-module case
# is the headline number (≥2x gates linker PRs). F3_ColdAdmission (check
# verdicts + instantiateLowered, single-check post-refactor) is the
# cold-pipeline gate: BENCH_BASELINE_LINK can point at a previous
# BENCH_link.json (bench/BASELINE_cold_pr4.json is the committed
# pre-refactor snapshot) to embed the cold speedups (≥1.8x @64 is the
# target on multi-core; F3_ColdInstantiate tracks the bare lowered path).
python3 - "$LINK_RAW" "$LINK_OUT" <<'EOF'
import json, sys, datetime, os

raw = json.load(open(sys.argv[1]))
results = {}
for b in raw["benchmarks"]:
    if b.get("run_type") == "aggregate":
        continue
    if b.get("error_occurred") or b.get("skipped"):
        continue
    cur = results.get(b["name"])
    if cur is None or b["real_time"] < cur["ns"]:
        entry = {"ns": b["real_time"]}
        if "imports/s" in b:
            entry["imports_per_sec"] = b["imports/s"]
        if "modules/s" in b:
            entry["modules_per_sec"] = b["modules/s"]
        results[b["name"]] = entry

speedups = {}
for name, r in results.items():
    if not name.startswith("F3_ResolveBatch/"):
        continue
    arg = name.split("/")[1]
    seq = results.get(f"F3_ResolveSequential/{arg}")
    if seq and r["ns"] > 0:
        speedups[arg] = seq["ns"] / r["ns"]

out = {
    "benchmark": "link_batch_resolution",
    "date": datetime.datetime.now(datetime.timezone.utc).isoformat(),
    "results": results,
    "speedup_batch_over_sequential": speedups,
}

baseline_path = os.environ.get("BENCH_BASELINE_LINK", "")
if baseline_path and os.path.exists(baseline_path):
    base = json.load(open(baseline_path))["results"]
    cold = {
        name: base[name]["ns"] / r["ns"]
        for name, r in results.items()
        if name.split("/")[0] in ("F3_ColdInstantiate", "F3_ColdAdmission")
        and name in base and r["ns"] > 0
    }
    if cold:
        out["cold_speedup_vs_baseline"] = cold
        out["cold_admission_speedup_64"] = cold.get("F3_ColdAdmission/64")
        out["cold_instantiate_speedup_64"] = cold.get("F3_ColdInstantiate/64")
        out["target_cold_admission_speedup_64"] = 1.8

json.dump(out, open(sys.argv[2], "w"), indent=2)
line = ", ".join(f"{n}={s:.2f}x" for n, s in sorted(speedups.items(),
                                                   key=lambda kv: int(kv[0])))
print(f"wrote {sys.argv[2]}: batch-over-sequential {line}")
cold64 = out.get("cold_admission_speedup_64")
if cold64 is not None:
    print(f"cold admission speedup @64 modules = {cold64:.2f}x vs "
          "pre-refactor baseline (target >=1.8x)")
coldi64 = out.get("cold_instantiate_speedup_64")
if coldi64 is not None:
    print(f"cold instantiateLowered speedup @64 modules = {coldi64:.2f}x "
          "vs pre-refactor baseline")
EOF

"$CACHE_BIN" --benchmark_filter='C6_' --benchmark_format=json \
             --benchmark_repetitions="${BENCH_REPS:-1}" >"$CACHE_RAW"

# Warm admission must beat cold by >=10x at 64 modules (the cache PR gate):
# a warm resubmission skips check + lower + translate and goes straight to
# instantiation.
python3 - "$CACHE_RAW" "$CACHE_OUT" <<'EOF'
import json, sys, datetime

raw = json.load(open(sys.argv[1]))
results = {}
for b in raw["benchmarks"]:
    if b.get("run_type") == "aggregate":
        continue
    if b.get("error_occurred") or b.get("skipped"):
        continue
    cur = results.get(b["name"])
    if cur is None or b["real_time"] < cur["ns"]:
        entry = {"ns": b["real_time"]}
        for key in ("modules/s", "cache_hits", "cache_misses",
                    "cache_evictions", "cache_bytes", "bytes_per_module",
                    "arena_serialized_bytes"):
            if key in b:
                entry[key] = b[key]
        results[b["name"]] = entry

speedups = {}
for pair in ("Admission", "CheckBatch"):
    for name, r in results.items():
        if not name.startswith(f"C6_{pair}Warm/"):
            continue
        arg = name.split("/")[1]
        cold = results.get(f"C6_{pair}Cold/{arg}")
        if cold and r["ns"] > 0:
            speedups[f"{pair}/{arg}"] = cold["ns"] / r["ns"]

out = {
    "benchmark": "admission_cache",
    "date": datetime.datetime.now(datetime.timezone.utc).isoformat(),
    "results": results,
    "speedup_warm_over_cold": speedups,
    "admission_warm_speedup_64": speedups.get("Admission/64"),
    "target_admission_warm_speedup_64": 10.0,
}
json.dump(out, open(sys.argv[2], "w"), indent=2)
line = ", ".join(f"{n}={s:.2f}x" for n, s in sorted(speedups.items()))
print(f"wrote {sys.argv[2]}: warm-over-cold {line}")
head = speedups.get("Admission/64")
if head is not None:
    print(f"warm admission speedup @64 modules = {head:.2f}x (target >=10x)")
EOF
