#!/usr/bin/env bash
# Runs the interpreter-throughput benchmark on both execution engines
# and emits BENCH_interp.json with per-engine throughput plus the
# Tree→Flat geomean speedup, so successive PRs have a perf trajectory.
#
# Usage: bench/run_bench.sh [build-dir] [output.json]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_interp.json}"
BIN="$BUILD_DIR/fig4_interp_throughput"

if [[ ! -x "$BIN" ]]; then
  echo "error: $BIN not built (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)" >&2
  exit 1
fi

RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

"$BIN" --benchmark_filter='F4_Wasm' --benchmark_format=json \
       --benchmark_repetitions="${BENCH_REPS:-1}" >"$RAW"

python3 - "$RAW" "$OUT" <<'EOF'
import json, sys, math, datetime

raw = json.load(open(sys.argv[1]))
runs = {}
for b in raw["benchmarks"]:
    if b.get("run_type") == "aggregate":
        continue
    if b.get("error_occurred") or b.get("skipped"):
        continue
    name = b["name"]  # e.g. F4_Wasm_Loop_Flat/1000
    runs.setdefault(name, []).append(b)

engines = {"tree": {}, "flat": {}}
for name, bs in runs.items():
    base, _, arg = name.partition("/")
    parts = base.split("_")          # F4 Wasm <Workload> <Engine>
    workload, engine = parts[2], parts[3].lower()
    best = min(bs, key=lambda b: b["real_time"])
    engines[engine][f"{workload}/{arg}"] = {
        "ns_per_invoke": best["real_time"],
        "insts_per_sec": best.get("insts/s"),
    }

speedups = {}
for key, tree in engines["tree"].items():
    flat = engines["flat"].get(key)
    if flat:
        speedups[key] = tree["ns_per_invoke"] / flat["ns_per_invoke"]

geomean = (
    math.exp(sum(math.log(s) for s in speedups.values()) / len(speedups))
    if speedups else None
)

out = {
    "benchmark": "fig4_interp_throughput",
    "date": datetime.datetime.now(datetime.timezone.utc).isoformat(),
    "engines": engines,
    "speedup_flat_over_tree": speedups,
    "speedup_geomean": geomean,
}
json.dump(out, open(sys.argv[2], "w"), indent=2)
if geomean is None:
    print(f"wrote {sys.argv[2]}: no comparable tree/flat pairs (benchmarks "
          "skipped or errored)")
    sys.exit(1)
print(f"wrote {sys.argv[2]}: geomean Tree->Flat speedup = {geomean:.2f}x")
EOF
