//===- bench/c1_capability_erasure.cpp - C1: zero-cost capabilities -------===//
// §6/§7's contrast with MSWasm: RichWasm's capabilities are static, so
// they compile to *nothing*. Two variants of a heap workload — one
// shuffling capability/ownership tokens on every iteration, one without —
// must produce byte-identical instruction counts and equal runtimes.
#include "Common.h"
#include <benchmark/benchmark.h>
using namespace rw;
using namespace rw::ir;
using namespace rw::ir::build;

static ir::Module capModule(int32_t N, bool WithCaps) {
  InstVec Inner;
  if (WithCaps)
    for (int J = 0; J < 8; ++J) {
      Inner.push_back(refSplit());
      Inner.push_back(refJoin());
      Inner.push_back(qualify(Qual::lin()));
    }
  Inner.push_back(structGet(0));
  Inner.push_back(setLocal(0));
  Inner.push_back(structFree());
  InstVec Loop = {iconst(7),
                  structMalloc({Size::constant(32)}, Qual::lin()),
                  memUnpack(arrow({}, {}), {{0, i32T()}}, std::move(Inner)),
                  getLocal(1, Qual::unr()), iconst(1), addI32(),
                  setLocal(1), getLocal(1, Qual::unr()), iconst(N),
                  relop(NumType::I32, RelopKind::Lt), brIf(0)};
  ir::Module M;
  M.Name = "cap";
  M.Funcs.push_back(function(
      {"main"}, FunType::get({}, arrow({}, {i32T()})),
      {Size::constant(32), Size::constant(32)},
      {iconst(0), setLocal(0), iconst(0), setLocal(1),
       block(arrow({}, {}), {}, {loop(arrow({}, {}), std::move(Loop))}),
       getLocal(0, Qual::unr())}));
  return M;
}

static size_t countInsts(const std::vector<wasm::WInst> &B) {
  size_t N = 0;
  for (const wasm::WInst &I : B) {
    ++N;
    N += countInsts(I.Body);
    N += countInsts(I.Else);
  }
  return N;
}

static void C1_Run(benchmark::State &St, bool WithCaps) {
  ir::Module M = capModule(1000, WithCaps);
  auto LP = lower::lowerProgram({&M});
  if (!LP) { St.SkipWithError("lowering failed"); return; }
  wasm::WasmInstance Inst(LP->Module);
  (void)Inst.initialize();
  for (auto _ : St) {
    auto R = Inst.invokeByName("cap.main", {});
    benchmark::DoNotOptimize(R);
  }
  size_t Total = 0;
  for (const wasm::WFunc &F : LP->Module.Funcs)
    Total += countInsts(F.Body);
  St.counters["lowered_insts"] = static_cast<double>(Total);
}
static void C1_WithCapabilityShuffling(benchmark::State &St) { C1_Run(St, true); }
static void C1_WithoutCapabilities(benchmark::State &St) { C1_Run(St, false); }
BENCHMARK(C1_WithCapabilityShuffling);
BENCHMARK(C1_WithoutCapabilities);

BENCHMARK_MAIN();
