//===- bench/c5_lowered_speedup.cpp - C5: interp vs lowered execution -----===//
// The same checked program on the RichWasm small-step machine (the
// semantics the theorems speak about) vs compiled to Wasm (the shipping
// path). The lowered code should win by a wide margin — the machine
// re-decomposes the whole term each step.
#include "Common.h"
#include <benchmark/benchmark.h>
using namespace rw;
using namespace rwbench;

static void C5_RichWasmMachine(benchmark::State &St) {
  ir::Module M = loopModule(static_cast<int32_t>(St.range(0)));
  auto Mach = link::instantiate({&M});
  for (auto _ : St) {
    (*Mach)->setupInvoke(0, 0, {}, {});
    auto R = (*Mach)->run();
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(C5_RichWasmMachine)->Arg(100)->Arg(1000);

static void C5_LoweredWasm(benchmark::State &St, wasm::EngineKind K) {
  ir::Module M = loopModule(static_cast<int32_t>(St.range(0)));
  auto LP = lower::lowerProgram({&M});
  if (!LP) { St.SkipWithError("lowering failed"); return; }
  auto Inst = wasm::createInstance(LP->Module, K);
  (void)Inst->initialize();
  for (auto _ : St) {
    auto R = Inst->invokeByName("loopmod.main", {});
    benchmark::DoNotOptimize(R);
  }
}
static void C5_LoweredWasm_Tree(benchmark::State &St) {
  C5_LoweredWasm(St, wasm::EngineKind::Tree);
}
static void C5_LoweredWasm_Flat(benchmark::State &St) {
  C5_LoweredWasm(St, wasm::EngineKind::Flat);
}
BENCHMARK(C5_LoweredWasm_Tree)->Arg(100)->Arg(1000);
BENCHMARK(C5_LoweredWasm_Flat)->Arg(100)->Arg(1000);

BENCHMARK_MAIN();
