//===- bench/fig3_linking_types.cpp - F3: full ML⊣L3 pipeline -------------===//
// Reproduces Fig 3: both source programs compile under their own checkers;
// the unsafe pair is rejected at link time (statically), the safe pair
// links and runs. Measures the full pipeline for both outcomes.
#include "Common.h"
#include <benchmark/benchmark.h>
using namespace rw;
using namespace rwbench;

static void F3_UnsafePairRejectedAtLink(benchmark::State &St) {
  for (auto _ : St) {
    auto ML = ml::compileSource("ml", MLStashUnsafe);
    auto L3 = l3::compileSource("l3", L3ClientUnsafe);
    auto Mach = link::instantiate({&*ML, &*L3});
    if (bool(Mach)) { St.SkipWithError("unsafe program was accepted!"); return; }
    benchmark::DoNotOptimize(Mach.error().message().size());
  }
}
BENCHMARK(F3_UnsafePairRejectedAtLink);

static void F3_SafePairLinksAndRuns(benchmark::State &St) {
  for (auto _ : St) {
    auto ML = ml::compileSource("ml", MLStashSafe);
    auto L3 = l3::compileSource("l3", L3ClientSafe);
    auto Mach = link::instantiate({&*ML, &*L3});
    auto R = (*Mach)->invoke(1, *link::findExport(*L3, "main"), {},
                             {sem::Value::unit()});
    if (!R || (*R)[0].bits() != 42) { St.SkipWithError("bad result"); return; }
  }
}
BENCHMARK(F3_SafePairLinksAndRuns);

BENCHMARK_MAIN();
