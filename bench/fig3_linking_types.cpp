//===- bench/fig3_linking_types.cpp - F3: full ML⊣L3 pipeline -------------===//
// Reproduces Fig 3: both source programs compile under their own checkers;
// the unsafe pair is rejected at link time (statically), the safe pair
// links and runs. Measures the full pipeline for both outcomes.
#include "Common.h"
#include "ingest/Ingest.h"
#include "serial/Serial.h"
#include "support/ThreadPool.h"
#include <algorithm>
#include <cstdio>
#include <benchmark/benchmark.h>
using namespace rw;
using namespace rwbench;

static void F3_UnsafePairRejectedAtLink(benchmark::State &St) {
  for (auto _ : St) {
    auto ML = ml::compileSource("ml", MLStashUnsafe);
    auto L3 = l3::compileSource("l3", L3ClientUnsafe);
    auto Mach = link::instantiate({&*ML, &*L3});
    if (bool(Mach)) { St.SkipWithError("unsafe program was accepted!"); return; }
    benchmark::DoNotOptimize(Mach.error().message().size());
  }
}
BENCHMARK(F3_UnsafePairRejectedAtLink);

static void F3_SafePairLinksAndRuns(benchmark::State &St) {
  for (auto _ : St) {
    auto ML = ml::compileSource("ml", MLStashSafe);
    auto L3 = l3::compileSource("l3", L3ClientSafe);
    auto Mach = link::instantiate({&*ML, &*L3});
    auto R = (*Mach)->invoke(1, *link::findExport(*L3, "main"), {},
                             {sem::Value::unit()});
    if (!R || (*R)[0].bits() != 42) { St.SkipWithError("bad result"); return; }
  }
}
BENCHMARK(F3_SafePairLinksAndRuns);

//===----------------------------------------------------------------------===//
// Batch import resolution (DESIGN.md §7): N modules, each exporting a few
// functions and importing from earlier modules — the admission-server
// linking shape. Measures resolveImports alone (no body checking, no
// instantiation) so the two strategies are compared on exactly the phase
// the export index changes: sequential = per-import linear scans over
// earlier modules' export lists; batch = the (name, canonical FunType*)
// hash index. run_bench.sh emits the pair into BENCH_link.json.
//===----------------------------------------------------------------------===//

namespace {

/// Builds an N-module link set: module i exports `f<i>_<j>` (j < Exports,
/// types alternating between two arrows so the index is not degenerate)
/// and imports Exports functions from the preceding modules. Imports
/// follow the real dependency shape: most reference the *foundational*
/// modules linked first (the libc/WASI pattern — everyone imports the
/// runtime), the rest scatter over later providers. Exports defaults to
/// 24 — the order of a real interface surface (WASI preview1 exports ~45
/// functions).
struct LinkSet {
  std::vector<rw::ir::Module> Mods;
  std::vector<const rw::ir::Module *> Ptrs;

  explicit LinkSet(unsigned N, unsigned Exports = 24) {
    using namespace rw::ir;
    using namespace rw::ir::build;
    FunTypeRef Tys[2] = {FunType::get({}, arrow({i32T()}, {i32T()})),
                         FunType::get({}, arrow({i64T()}, {i64T()}))};
    // Realistic module naming: a multi-tenant server addresses untrusted
    // modules by fixed-width identifier (content digest / tenant id), so
    // every name shares a long prefix and the same length — comparisons
    // discriminate late, never on length.
    auto modName = [](unsigned I) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "user_pkg_%06u", I);
      return std::string(Buf);
    };
    Mods.reserve(N);
    for (unsigned I = 0; I < N; ++I) {
      ir::Module M;
      M.Name = modName(I);
      for (unsigned J = 0; J < Exports; ++J)
        M.Funcs.push_back(function(
            {"f" + std::to_string(I) + "_" + std::to_string(J)},
            Tys[(I + J) % 2], {}, {getLocal(0, Qual::unr())}));
      if (I > 0)
        for (unsigned J = 0; J < Exports; ++J) {
          // 3 of 4 imports hit the foundational modules at the front of
          // the link order; the rest spread over all predecessors.
          unsigned P = (J % 4 != 3)
                           ? (I * 7 + J * 13) % std::min(I, 4u)
                           : (I * 7 + J * 13) % I;
          unsigned E = (I + J * 3) % Exports;
          M.Funcs.push_back(importFunc(
              {modName(P), "f" + std::to_string(P) + "_" + std::to_string(E)},
              Tys[(P + E) % 2]));
        }
      Mods.push_back(std::move(M));
    }
    for (const ir::Module &M : Mods)
      Ptrs.push_back(&M);
  }
};

void runResolve(benchmark::State &St, link::ResolveMode Mode) {
  LinkSet Set(static_cast<unsigned>(St.range(0)));
  uint64_t Imports = 0;
  for (const rw::ir::Module *M : Set.Ptrs)
    for (const rw::ir::Function &F : M->Funcs)
      Imports += F.isImport();
  for (auto _ : St) {
    auto R = link::resolveImports(Set.Ptrs, Mode);
    if (!R) { St.SkipWithError("resolution failed"); return; }
    benchmark::DoNotOptimize(R->size());
  }
  St.counters["imports/s"] = benchmark::Counter(
      static_cast<double>(Imports) * St.iterations(),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

} // namespace

static void F3_ResolveSequential(benchmark::State &St) {
  runResolve(St, link::ResolveMode::Sequential);
}
BENCHMARK(F3_ResolveSequential)->Arg(8)->Arg(64)->Arg(256);

static void F3_ResolveBatch(benchmark::State &St) {
  runResolve(St, link::ResolveMode::Batch);
}
BENCHMARK(F3_ResolveBatch)->Arg(8)->Arg(64)->Arg(256);

//===----------------------------------------------------------------------===//
// Cold admission: the full uncached shipping path (check → resolve →
// lower → validate → flat-translate → instantiate) on an N-module
// admission set with checker-relevant bodies. This is what a server pays
// on every first-seen link set — the cost the admission cache (c6) only
// hides on *re*-submission — so it gates the cold-pipeline refactors.
// run_bench.sh emits it into BENCH_link.json; the committed
// bench/BASELINE_cold_pr4.json snapshot is the pre-refactor reference.
//===----------------------------------------------------------------------===//

static void F3_ColdInstantiate(benchmark::State &St) {
  AdmissionSet Set(static_cast<unsigned>(St.range(0)));
  for (auto _ : St) {
    link::LinkOptions Opts;
    Opts.Engine = wasm::EngineKind::Flat;
    Opts.RunStart = false;
    auto LI = link::instantiateLowered(Set.Ptrs, Opts);
    if (!LI) { St.SkipWithError("cold instantiation failed"); return; }
    benchmark::DoNotOptimize(LI->Program.get());
  }
  St.counters["modules/s"] = benchmark::Counter(
      static_cast<double>(Set.Mods.size()) * St.iterations(),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(F3_ColdInstantiate)->Arg(8)->Arg(64)->Unit(benchmark::kMicrosecond);

// The full cold *admission* shape: a server batch-checks for per-module
// verdicts first (typing::checkModules), then ships the accepted set
// through instantiateLowered. Post-refactor these are one pipeline: the
// verdict check records the InfoMaps and hands them over
// (LinkOptions::Infos), so lowering performs zero further checkModule
// calls — pre-refactor the lowered path re-checked every module. The
// committed bench/BASELINE_cold_pr4.json holds this workload measured on
// the pre-refactor code (same modules, that version's canonical API).
static void F3_ColdAdmission(benchmark::State &St) {
  AdmissionSet Set(static_cast<unsigned>(St.range(0)));
  support::ThreadPool Pool;
  for (auto _ : St) {
    std::vector<typing::InfoMap> Infos;
    std::vector<Status> Verdicts = typing::checkModules(Set.Ptrs, Pool, &Infos);
    for (const Status &S : Verdicts)
      if (!S.ok()) { St.SkipWithError("check failed"); return; }
    link::LinkOptions Opts;
    Opts.Engine = wasm::EngineKind::Flat;
    Opts.RunStart = false;
    Opts.Infos = &Infos;
    auto LI = link::instantiateLowered(Set.Ptrs, Opts);
    if (!LI) { St.SkipWithError("cold admission failed"); return; }
    benchmark::DoNotOptimize(LI->Program.get());
  }
  St.counters["modules/s"] = benchmark::Counter(
      static_cast<double>(Set.Mods.size()) * St.iterations(),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(F3_ColdAdmission)->Arg(8)->Arg(64)->Unit(benchmark::kMicrosecond);

//===----------------------------------------------------------------------===//
// Ingest front-door smoke (DESIGN.md §12): cold admission of N standalone
// serialized modules through ingest::admit versus hand-running the same
// pipeline (serial::read → checkModule → instantiateLowered). The front
// door adds magic sniffing, limit pre-checks, structured error plumbing,
// and obs counters — run_bench.sh computes the overhead percentage into
// BENCH_link.json and RW_INGEST_GATE=1 fails the run above 5%.
//===----------------------------------------------------------------------===//

static std::vector<std::vector<uint8_t>> ingestBlobs(unsigned N) {
  std::vector<std::vector<uint8_t>> Blobs;
  Blobs.reserve(N);
  for (unsigned I = 0; I < N; ++I)
    Blobs.push_back(serial::write(wideModule(2 + I % 5)));
  return Blobs;
}

static void F3_IngestAdmit(benchmark::State &St) {
  auto Blobs = ingestBlobs(static_cast<unsigned>(St.range(0)));
  for (auto _ : St) {
    for (const auto &B : Blobs) {
      link::LinkOptions Opts;
      Opts.Engine = wasm::EngineKind::Flat;
      Opts.RunStart = false;
      auto A = ingest::admit(B, ingest::Limits(), Opts);
      if (!A) { St.SkipWithError("ingest admission failed"); return; }
      benchmark::DoNotOptimize(A->instance());
    }
  }
  St.counters["modules/s"] = benchmark::Counter(
      static_cast<double>(Blobs.size()) * St.iterations(),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(F3_IngestAdmit)->Arg(64)->Unit(benchmark::kMicrosecond);

static void F3_IngestPipeline(benchmark::State &St) {
  auto Blobs = ingestBlobs(static_cast<unsigned>(St.range(0)));
  for (auto _ : St) {
    for (const auto &B : Blobs) {
      auto Arena = std::make_shared<ir::TypeArena>();
      auto M = serial::read(B, Arena);
      if (!M) { St.SkipWithError("serial read failed"); return; }
      std::vector<typing::InfoMap> Infos(1);
      if (!typing::checkModule(*M, &Infos[0]).ok()) {
        St.SkipWithError("check failed");
        return;
      }
      link::LinkOptions Opts;
      Opts.Engine = wasm::EngineKind::Flat;
      Opts.RunStart = false;
      Opts.Infos = &Infos;
      auto LI = link::instantiateLowered({&*M}, Opts);
      if (!LI) { St.SkipWithError("instantiation failed"); return; }
      benchmark::DoNotOptimize(LI->Instance.get());
    }
  }
  St.counters["modules/s"] = benchmark::Counter(
      static_cast<double>(Blobs.size()) * St.iterations(),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}
BENCHMARK(F3_IngestPipeline)->Arg(64)->Unit(benchmark::kMicrosecond);

BENCHMARK_MAIN();
