//===- bench/fig9_counter.cpp - F9: the Counter/Client workload -----------===//
// The §4.2 example as a benchmark: GC'd client ticks the linear counter
// library across the FFI, on the RichWasm machine and lowered to Wasm.
#include "Common.h"
#include <benchmark/benchmark.h>
using namespace rw;
using namespace rwbench;

static void F9_TicksOnMachine(benchmark::State &St) {
  auto Lib = l3::compileSource("lib", CounterLibL3);
  auto App = ml::compileSource("app", CounterClientML);
  auto Mach = link::instantiate({&*Lib, &*App});
  if (!Mach) { St.SkipWithError("link failed"); return; }
  uint32_t Init = *link::findExport(*App, "init");
  uint32_t Tick = *link::findExport(*App, "tick");
  (void)(*Mach)->invoke(1, Init, {}, {sem::Value::unit()});
  uint64_t N = 0;
  for (auto _ : St) {
    auto R = (*Mach)->invoke(1, Tick, {}, {sem::Value::unit()});
    benchmark::DoNotOptimize(R);
    ++N;
    // Collect the unrestricted garbage the protocol generates.
    if (N % 64 == 0) (*Mach)->collect();
  }
  St.counters["ticks/s"] =
      benchmark::Counter(static_cast<double>(N), benchmark::Counter::kIsRate);
}
BENCHMARK(F9_TicksOnMachine);

static void F9_TicksOnWasm(benchmark::State &St) {
  auto Lib = l3::compileSource("lib", CounterLibL3);
  auto App = ml::compileSource("app", CounterClientML);
  auto LP = lower::lowerProgram({&*Lib, &*App});
  if (!LP) { St.SkipWithError("lowering failed"); return; }
  wasm::WasmInstance Inst(LP->Module);
  (void)Inst.initialize();
  (void)Inst.invokeByName("app.init", {});
  lower::HostGc Gc(Inst, LP->Runtime, LP->RefGlobals);
  uint64_t N = 0;
  for (auto _ : St) {
    auto R = Inst.invokeByName("app.tick", {});
    benchmark::DoNotOptimize(R);
    ++N;
    if (N % 64 == 0) Gc.collect();
  }
  St.counters["ticks/s"] =
      benchmark::Counter(static_cast<double>(N), benchmark::Counter::kIsRate);
}
BENCHMARK(F9_TicksOnWasm);

BENCHMARK_MAIN();
