//===- bench/fig7_typecheck_throughput.cpp - F5–F8: checker throughput ----===//
// The Figs 5–8 type system as an engineering artifact: module checking
// time as module size sweeps (functions with locals, linear heap use, and
// unpacking — the judgments with the most premises).
#include "Common.h"
#include "support/ThreadPool.h"
#include <benchmark/benchmark.h>
using namespace rw;
using namespace rwbench;

static void F7_CheckModule(benchmark::State &St) {
  // Steady-state re-check throughput: one module checked repeatedly over
  // the shared arena — the deployment shape the checker serves (every
  // module a client links is re-checked), with the hash-cons tables and
  // per-node memos warm after the first iteration.
  ir::Module M = wideModule(static_cast<unsigned>(St.range(0)));
  uint64_t Funcs = 0;
  for (auto _ : St) {
    Status S = typing::checkModule(M);
    if (!S.ok()) { St.SkipWithError("check failed"); return; }
    Funcs += static_cast<uint64_t>(St.range(0));
  }
  St.counters["funcs/s"] = benchmark::Counter(
      static_cast<double>(Funcs), benchmark::Counter::kIsRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(F7_CheckModule)->Arg(1)->Arg(16)->Arg(64)->Arg(256);

static void F7_CheckModuleCold(benchmark::State &St) {
  // Cold-path variant: each iteration builds the module into a *fresh*
  // arena, so interning, metadata computation, and every memo start empty
  // — what admission control pays the first time it sees a new module.
  // (Includes module construction, which is part of that first-touch
  // cost: type interning happens while the module is built.)
  uint64_t Funcs = 0;
  for (auto _ : St) {
    auto Arena = std::make_shared<ir::TypeArena>();
    ir::ArenaScope Scope(*Arena);
    ir::Module M = wideModule(static_cast<unsigned>(St.range(0)));
    M.Arena = Arena;
    Status S = typing::checkModule(M);
    if (!S.ok()) { St.SkipWithError("check failed"); return; }
    Funcs += static_cast<uint64_t>(St.range(0));
  }
  St.counters["funcs/s"] = benchmark::Counter(
      static_cast<double>(Funcs), benchmark::Counter::kIsRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(F7_CheckModuleCold)->Arg(64)->Arg(256);

static void F7_CheckModulePar(benchmark::State &St) {
  // Batch admission: 8 modules of range(0) functions each, checked
  // function-parallel over the process thread pool (checkModules). On a
  // single-core box this measures the pipeline's overhead vs the
  // sequential loop; where cores exist it scales near-linearly (function
  // granularity keeps the pool balanced).
  static support::ThreadPool Pool;
  constexpr unsigned NumMods = 8;
  std::vector<ir::Module> Mods;
  std::vector<const ir::Module *> Ptrs;
  for (unsigned I = 0; I < NumMods; ++I)
    Mods.push_back(wideModule(static_cast<unsigned>(St.range(0))));
  for (const ir::Module &M : Mods)
    Ptrs.push_back(&M);
  uint64_t Funcs = 0;
  for (auto _ : St) {
    std::vector<Status> Rs = typing::checkModules(Ptrs, Pool);
    for (const Status &S : Rs)
      if (!S.ok()) { St.SkipWithError("check failed"); return; }
    Funcs += static_cast<uint64_t>(St.range(0)) * NumMods;
  }
  St.counters["funcs/s"] = benchmark::Counter(
      static_cast<double>(Funcs), benchmark::Counter::kIsRate,
      benchmark::Counter::kIs1000);
  St.counters["threads"] = static_cast<double>(Pool.size());
}
BENCHMARK(F7_CheckModulePar)->Arg(64)->Arg(256);

static void F7_CheckWithAnnotations(benchmark::State &St) {
  // Checking while recording the lowering annotations (InfoMap).
  ir::Module M = wideModule(static_cast<unsigned>(St.range(0)));
  for (auto _ : St) {
    typing::InfoMap IM;
    Status S = typing::checkModule(M, &IM);
    if (!S.ok()) { St.SkipWithError("check failed"); return; }
    benchmark::DoNotOptimize(IM.size());
  }
}
BENCHMARK(F7_CheckWithAnnotations)->Arg(64);

BENCHMARK_MAIN();
