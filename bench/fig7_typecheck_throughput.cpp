//===- bench/fig7_typecheck_throughput.cpp - F5–F8: checker throughput ----===//
// The Figs 5–8 type system as an engineering artifact: module checking
// time as module size sweeps (functions with locals, linear heap use, and
// unpacking — the judgments with the most premises).
#include "Common.h"
#include <benchmark/benchmark.h>
using namespace rw;
using namespace rwbench;

static void F7_CheckModule(benchmark::State &St) {
  ir::Module M = wideModule(static_cast<unsigned>(St.range(0)));
  for (auto _ : St) {
    Status S = typing::checkModule(M);
    if (!S.ok()) { St.SkipWithError("check failed"); return; }
  }
  St.counters["funcs/s"] = benchmark::Counter(
      static_cast<double>(St.range(0)), benchmark::Counter::kIsRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(F7_CheckModule)->Arg(1)->Arg(16)->Arg(64)->Arg(256);

static void F7_CheckWithAnnotations(benchmark::State &St) {
  // Checking while recording the lowering annotations (InfoMap).
  ir::Module M = wideModule(static_cast<unsigned>(St.range(0)));
  for (auto _ : St) {
    typing::InfoMap IM;
    Status S = typing::checkModule(M, &IM);
    if (!S.ok()) { St.SkipWithError("check failed"); return; }
    benchmark::DoNotOptimize(IM.size());
  }
}
BENCHMARK(F7_CheckWithAnnotations)->Arg(64);

BENCHMARK_MAIN();
