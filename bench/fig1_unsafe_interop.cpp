//===- bench/fig1_unsafe_interop.cpp - F1: static rejection cost ----------===//
// Reproduces Fig 1: the GC'd stash module whose compiled form duplicates a
// linear reference. Measures how fast RichWasm statically detects the
// violation (reject path) vs accepting the corrected module.
#include "Common.h"
#include <benchmark/benchmark.h>
using namespace rw;
using namespace rwbench;

static void F1_RejectUnsafeStash(benchmark::State &St) {
  auto M = ml::compileSource("ml", MLStashUnsafe);
  if (!M) { St.SkipWithError("compile failed"); return; }
  uint64_t Rejected = 0;
  for (auto _ : St) {
    Status S = typing::checkModule(*M);
    if (!S.ok()) ++Rejected;
    benchmark::DoNotOptimize(S.ok());
  }
  St.counters["rejected"] = Rejected == static_cast<uint64_t>(St.iterations()) ? 1 : 0;
}
BENCHMARK(F1_RejectUnsafeStash);

static void F1_AcceptSafeStash(benchmark::State &St) {
  auto M = ml::compileSource("ml", MLStashSafe);
  if (!M) { St.SkipWithError("compile failed"); return; }
  uint64_t Accepted = 0;
  for (auto _ : St) {
    Status S = typing::checkModule(*M);
    if (S.ok()) ++Accepted;
    benchmark::DoNotOptimize(S.ok());
  }
  St.counters["accepted"] = Accepted == static_cast<uint64_t>(St.iterations()) ? 1 : 0;
}
BENCHMARK(F1_AcceptSafeStash);

BENCHMARK_MAIN();
