//===- bench/ServerMix.h - c7 admission-server workload generator -*-C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The request mix of the c7 admission-server simulation (DESIGN.md §13)
/// and the seed generator for the fuzz corpus: a pre-serialized universe
/// of standalone RichWasm modules sampled zipf (hot re-admissions), a
/// pool of cold novel modules (admitted once each), and deterministic
/// adversarial mutations of hot payloads (mostly rejected by
/// ingest::admit's taxonomy, occasionally still admissible — both are
/// legitimate server traffic).
///
/// Everything is deterministic from explicit seeds (splitmix64 streams),
/// so the same request schedule replays across thread counts and the
/// mutation battery doubles as a corpus seeder (fuzz/make_corpus.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_BENCH_SERVERMIX_H
#define RICHWASM_BENCH_SERVERMIX_H

#include "ir/Builder.h"
#include "serial/Serial.h"

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace rwbench {

/// splitmix64: one multiply-xor-shift step per draw; distinct seeds give
/// independent streams (each worker thread owns one).
inline uint64_t splitmix64(uint64_t &State) {
  uint64_t Z = (State += 0x9e3779b97f4a7c15ull);
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
  return Z ^ (Z >> 31);
}

/// A standalone (import-free) module with checker-relevant content —
/// allocates, strongly updates, and frees a linear struct — parameterized
/// by \p Tag so every tag is distinct content with a distinct hash.
inline rw::ir::Module serverModule(uint64_t Tag, unsigned Funcs = 3) {
  using namespace rw::ir;
  using namespace rw::ir::build;
  rw::ir::Module M;
  M.Name = "srv_" + std::to_string(Tag);
  FunTypeRef Fn = FunType::get({}, arrow({i32T()}, {i32T()}));
  for (unsigned J = 0; J < Funcs; ++J) {
    InstVec Body = {
        getLocal(0, Qual::unr()),
        iconst(static_cast<int32_t>((Tag * Funcs + J) & 0x7fffffff)),
        addI32(),
        structMalloc({Size::constant(32)}, Qual::lin()),
        memUnpack(arrow({}, {i32T()}), {{1, i32T()}},
                  {iconst(9), structSwap(0), setLocal(1), structFree(),
                   getLocal(1, Qual::unr())}),
        iconst(3),
        mulI32(),
    };
    M.Funcs.push_back(function({"f" + std::to_string(J)}, Fn,
                               {Size::constant(32)}, std::move(Body)));
  }
  return M;
}

/// One deterministic adversarial mutation of \p Bytes, chosen by \p Seed:
/// truncation, bit flips, magic corruption, a zeroed run, or a duplicated
/// slice — the classes the ingest taxonomy must categorize without
/// crashing or leaking arena nodes. Never returns the input unchanged
/// (empty input mutates to a one-byte garbage blob).
inline std::vector<uint8_t> serverMutate(std::vector<uint8_t> Bytes,
                                         uint64_t Seed) {
  uint64_t S = Seed;
  if (Bytes.empty())
    return {static_cast<uint8_t>(splitmix64(S))};
  switch (splitmix64(S) % 5) {
  case 0: { // Truncate to a strict prefix.
    Bytes.resize(splitmix64(S) % Bytes.size());
    break;
  }
  case 1: { // 1-4 bit flips.
    unsigned N = 1 + splitmix64(S) % 4;
    for (unsigned I = 0; I < N; ++I) {
      uint64_t R = splitmix64(S);
      Bytes[R % Bytes.size()] ^= static_cast<uint8_t>(1u << (R >> 32) % 8);
    }
    break;
  }
  case 2: { // Corrupt the container magic/version head.
    size_t N = Bytes.size() < 8 ? Bytes.size() : 8;
    Bytes[splitmix64(S) % N] ^= 0xff;
    break;
  }
  case 3: { // Zero a run in the middle.
    size_t At = splitmix64(S) % Bytes.size();
    size_t Len = 1 + splitmix64(S) % 16;
    for (size_t I = At; I < Bytes.size() && I < At + Len; ++I)
      Bytes[I] = 0;
    break;
  }
  default: { // Duplicate a slice onto the tail (section splice-ish).
    size_t At = splitmix64(S) % Bytes.size();
    size_t Len = 1 + splitmix64(S) % 32;
    if (At + Len > Bytes.size())
      Len = Bytes.size() - At;
    Bytes.insert(Bytes.end(), Bytes.begin() + static_cast<ptrdiff_t>(At),
                 Bytes.begin() + static_cast<ptrdiff_t>(At + Len));
    break;
  }
  }
  return Bytes;
}

/// The c7 request mix: a zipf-weighted hot universe plus pre-generated
/// cold and adversarial payloads. All payloads are serialized up front on
/// the constructing thread (module *construction* stays off the worker
/// threads; admission is what the bench measures).
struct ServerMix {
  /// Request classes and their mix weights (percent).
  enum Kind : uint8_t { Hot = 0, Cold = 1, Adversarial = 2 };
  static constexpr unsigned HotPct = 80;
  static constexpr unsigned ColdPct = 10; // Remainder is adversarial.

  std::vector<std::vector<uint8_t>> HotBytes;
  std::vector<double> ZipfCdf; ///< Over HotBytes, exponent ~1.1.
  std::vector<std::vector<uint8_t>> ColdBytes; ///< Each admitted once.
  std::vector<std::vector<uint8_t>> AdvBytes;  ///< Mutated hot payloads.

  /// \p HotN distinct hot modules; \p ColdN + \p AdvN pre-generated
  /// one-shot payloads (size them to the request count and mix).
  explicit ServerMix(unsigned HotN = 64, unsigned ColdN = 4096,
                     unsigned AdvN = 4096, double ZipfS = 1.1) {
    HotBytes.reserve(HotN);
    for (unsigned I = 0; I < HotN; ++I)
      HotBytes.push_back(rw::serial::write(serverModule(I)));
    double Acc = 0;
    ZipfCdf.reserve(HotN);
    for (unsigned I = 0; I < HotN; ++I) {
      Acc += 1.0 / std::pow(static_cast<double>(I + 1), ZipfS);
      ZipfCdf.push_back(Acc);
    }
    for (double &C : ZipfCdf)
      C /= Acc;
    ColdBytes.reserve(ColdN);
    for (unsigned I = 0; I < ColdN; ++I)
      ColdBytes.push_back(
          rw::serial::write(serverModule(0x10000000ull + I, /*Funcs=*/2)));
    AdvBytes.reserve(AdvN);
    for (unsigned I = 0; I < AdvN; ++I)
      AdvBytes.push_back(
          serverMutate(HotBytes[I % HotN], 0xadee5eedull + I));
  }

  /// The request class for one rng draw.
  Kind kind(uint64_t &Rng) const {
    uint64_t R = splitmix64(Rng) % 100;
    if (R < HotPct)
      return Hot;
    return R < HotPct + ColdPct ? Cold : Adversarial;
  }

  /// A zipf-ranked hot payload index.
  size_t zipfIndex(uint64_t &Rng) const {
    double U = static_cast<double>(splitmix64(Rng) >> 11) * 0x1.0p-53;
    size_t Lo = 0, Hi = ZipfCdf.size() - 1;
    while (Lo < Hi) {
      size_t Mid = (Lo + Hi) / 2;
      if (ZipfCdf[Mid] < U)
        Lo = Mid + 1;
      else
        Hi = Mid;
    }
    return Lo;
  }
};

} // namespace rwbench

#endif // RICHWASM_BENCH_SERVERMIX_H
