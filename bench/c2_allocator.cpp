//===- bench/c2_allocator.cpp - C2: the emitted free-list allocator -------===//
// §6's "simple free list allocator" emitted as Wasm functions: alloc/free
// churn throughput and the reuse behavior (bump pointer stays flat).
#include "Common.h"
#include <benchmark/benchmark.h>
using namespace rw;
using namespace rwbench;

static void C2_AllocFreeChurn(benchmark::State &St) {
  ir::Module M = allocModule(static_cast<int32_t>(St.range(0)), /*Linear=*/true);
  auto LP = lower::lowerProgram({&M});
  if (!LP) { St.SkipWithError("lowering failed"); return; }
  wasm::WasmInstance Inst(LP->Module);
  (void)Inst.initialize();
  uint64_t Pairs = 0;
  for (auto _ : St) {
    auto R = Inst.invokeByName("allocmod.main", {});
    benchmark::DoNotOptimize(R);
    Pairs += static_cast<uint64_t>(St.range(0));
  }
  St.counters["allocfree/s"] =
      benchmark::Counter(static_cast<double>(Pairs), benchmark::Counter::kIsRate);
  St.counters["bump_bytes"] =
      static_cast<double>(Inst.global(LP->Runtime.GBump).asU32() -
                          lower::RuntimeLayout::HeapBase);
}
BENCHMARK(C2_AllocFreeChurn)->Arg(100)->Arg(1000)->Arg(10000);

BENCHMARK_MAIN();
