//===- bench/t1_soundness_throughput.cpp - T1: §4.1 type safety -----------===//
// The property-based stand-in for the Coq proof, as a throughput figure:
// (generate well-typed program → check → run to completion) per second.
// A failure of progress/preservation would abort the benchmark.
#include "Common.h"
#include <benchmark/benchmark.h>
#include <random>
using namespace rw;
using namespace rw::ir;
using namespace rw::ir::build;

namespace {
// A tiny embedded generator (mirrors tests/soundness_test.cpp).
struct Gen {
  std::mt19937_64 Rng;
  std::vector<SizeRef> Locals;
  uint32_t pick(uint32_t Lo, uint32_t Hi) {
    return Lo + static_cast<uint32_t>(Rng() % (Hi - Lo + 1));
  }
  uint32_t nextLocal() {
    Locals.push_back(Size::constant(32));
    return static_cast<uint32_t>(Locals.size() - 1);
  }
  void gen(unsigned Depth, InstVec &O) {
    switch (Depth == 0 ? 0u : pick(0, 5)) {
    case 0:
      O.push_back(iconst(static_cast<int32_t>(pick(0, 99))));
      return;
    case 1:
      gen(Depth - 1, O);
      gen(Depth - 1, O);
      O.push_back(addI32());
      return;
    case 2: {
      gen(Depth - 1, O);
      InstVec T, F;
      gen(Depth - 1, T);
      gen(Depth - 1, F);
      O.push_back(ifElse(arrow({}, {i32T()}), {}, std::move(T), std::move(F)));
      return;
    }
    case 3: {
      uint32_t L = nextLocal();
      gen(Depth - 1, O);
      O.push_back(setLocal(L));
      O.push_back(getLocal(L, Qual::unr()));
      return;
    }
    default: {
      gen(Depth - 1, O);
      O.push_back(structMalloc({Size::constant(32)}, Qual::lin()));
      uint32_t L = nextLocal();
      O.push_back(memUnpack(arrow({}, {i32T()}), {{L, i32T()}},
                            {iconst(1), structSwap(0), setLocal(L),
                             structFree(), getLocal(L, Qual::unr())}));
      return;
    }
    }
  }
  ir::Module module() {
    ir::Module M;
    M.Name = "gen";
    InstVec Body;
    gen(3, Body);
    InstVec Pre;
    for (size_t I = 0; I < Locals.size(); ++I) {
      Pre.push_back(iconst(0));
      Pre.push_back(setLocal(static_cast<uint32_t>(I)));
    }
    Body.insert(Body.begin(), Pre.begin(), Pre.end());
    M.Funcs.push_back(function({"main"},
                               FunType::get({}, arrow({}, {i32T()})),
                               std::move(Locals), std::move(Body)));
    return M;
  }
};
} // namespace

static void T1_GenerateCheckRun(benchmark::State &St) {
  uint64_t Seed = 1;
  uint64_t Checked = 0;
  for (auto _ : St) {
    Gen G;
    G.Rng.seed(Seed++);
    ir::Module M = G.module();
    Status S = typing::checkModule(M);
    if (!S.ok()) { St.SkipWithError("soundness: generator output rejected"); return; }
    auto Mach = link::instantiate({&M});
    auto R = (*Mach)->invoke(0, 0, {}, {});
    if (!R) { St.SkipWithError("soundness: checked program failed"); return; }
    if (!(*Mach)->store().Mem.Lin.empty()) {
      St.SkipWithError("soundness: linear memory leaked");
      return;
    }
    ++Checked;
  }
  St.counters["programs/s"] = benchmark::Counter(
      static_cast<double>(Checked), benchmark::Counter::kIsRate);
}
BENCHMARK(T1_GenerateCheckRun);

BENCHMARK_MAIN();
