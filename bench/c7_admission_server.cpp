//===- bench/c7_admission_server.cpp - C7: admission-server simulation ----===//
//
// Part of the RichWasm reproduction. MIT license.
//
// The obs layer's proving ground (DESIGN.md §13): N client threads drive
// a zipf-distributed request mix — hot re-admissions through the sharded
// AdmissionCache, cold novel modules, and adversarial rejects — through
// ingest::admit with the full server-grade observability stack live:
// head-sampled tracing, a running Timeline, and the HDR latency
// histogram. It reports p50/p99/p999 admission latency (exact, from
// per-thread samples), arena footprint, and cache pressure into
// BENCH_server.json, and *fails* (nonzero exit) when the observability
// numbers don't reconcile with ground truth:
//
//   * the "server.admission.ns" histogram count must equal the request
//     count (sampling suppresses trace events, never metrics);
//   * the histogram p99 must be within 10% of the exact sorted-sample
//     p99 (the sub-bucket resolution gate);
//   * the timeline must reconcile: base() + sum(deltas()) == latest()
//     for every key, after wraparound.
//
// Usage: c7_admission_server [threads] [requests] [out.json]
//        defaults: 8 100000 BENCH_server.json
//
//===----------------------------------------------------------------------===//

#include "Common.h"
#include "ServerMix.h"

#include "cache/AdmissionCache.h"
#include "ingest/Ingest.h"
#include "ir/TypeArena.h"
#include "obs/Obs.h"
#include "obs/Timeline.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

using namespace rw;
using namespace rwbench;

namespace {

uint64_t exactQuantile(const std::vector<uint64_t> &Sorted, double Q) {
  if (Sorted.empty())
    return 0;
  size_t Rank = static_cast<size_t>(Q * static_cast<double>(Sorted.size()));
  if (Rank >= Sorted.size())
    Rank = Sorted.size() - 1;
  return Sorted[Rank];
}

struct WorkerResult {
  std::vector<uint64_t> LatNs;
  uint64_t Ok = 0;
  uint64_t Rejected = 0;
  uint64_t HotReqs = 0;
  uint64_t ColdReqs = 0;
  uint64_t AdvReqs = 0;
};

bool relWithin(double A, double B, double Tol) {
  if (B == 0)
    return A == 0;
  return std::abs(A - B) / B <= Tol;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Threads = argc > 1 ? static_cast<unsigned>(std::atoi(argv[1])) : 8;
  uint64_t Requests = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100000;
  std::string OutPath = argc > 3 ? argv[3] : "BENCH_server.json";
  if (Threads == 0)
    Threads = 1;

  // The full observability stack, as a server would run it: metrics on,
  // tracing always-on but head-sampled 1-in-64 (RW_OBS_TRACE_SAMPLE can
  // override), timeline sampling every 50ms.
  obs::setEnabled(true);
  obs::setTracing(true);
  if (obs::traceSampling() <= 1)
    obs::setTraceSampling(64);
  obs::Timeline Timeline({/*IntervalMs=*/50, /*Capacity=*/128});
  Timeline.start();

  // Sized so one-shot payload pools cover the cold/adversarial shares of
  // the request budget (wraparound would quietly turn colds into hots).
  unsigned OneShot = static_cast<unsigned>(Requests / 8 + Threads);
  ServerMix Mix(/*HotN=*/64, /*ColdN=*/OneShot, /*AdvN=*/OneShot);
  cache::AdmissionCache Cache(64ull << 20, /*Shards=*/8);

  link::LinkOptions Opts;
  Opts.Cache = &Cache;
  Opts.Engine = wasm::EngineKind::Flat;
  Opts.RunStart = false;
  ingest::Limits Lim;

  std::vector<WorkerResult> Results(Threads);
  std::atomic<uint64_t> ColdCursor{0}, AdvCursor{0};
  uint64_t PerThread = Requests / Threads;
  auto WallStart = std::chrono::steady_clock::now();

  std::vector<std::thread> Pool;
  for (unsigned W = 0; W < Threads; ++W)
    Pool.emplace_back([&, W] {
      WorkerResult &R = Results[W];
      uint64_t N = PerThread + (W < Requests % Threads ? 1 : 0);
      R.LatNs.reserve(N);
      uint64_t Rng = 0xc7c7c7c7ull * (W + 1);
      static obs::Histogram ServerH("server.admission.ns");
      for (uint64_t I = 0; I < N; ++I) {
        const std::vector<uint8_t> *Bytes = nullptr;
        switch (Mix.kind(Rng)) {
        case ServerMix::Hot:
          Bytes = &Mix.HotBytes[Mix.zipfIndex(Rng)];
          ++R.HotReqs;
          break;
        case ServerMix::Cold: {
          uint64_t C = ColdCursor.fetch_add(1, std::memory_order_relaxed);
          Bytes = &Mix.ColdBytes[C % Mix.ColdBytes.size()];
          ++R.ColdReqs;
          break;
        }
        case ServerMix::Adversarial: {
          uint64_t A = AdvCursor.fetch_add(1, std::memory_order_relaxed);
          Bytes = &Mix.AdvBytes[A % Mix.AdvBytes.size()];
          ++R.AdvReqs;
          break;
        }
        }
        auto S = std::chrono::steady_clock::now();
        ingest::IngestError Err;
        auto A = ingest::admit(*Bytes, Lim, Opts, &Err);
        auto E = std::chrono::steady_clock::now();
        uint64_t Ns = static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(E - S)
                .count());
        R.LatNs.push_back(Ns);
        ServerH.record(Ns);
        if (A)
          ++R.Ok;
        else
          ++R.Rejected;
      }
    });
  for (std::thread &T : Pool)
    T.join();
  double WallSec = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - WallStart)
                       .count();

  Timeline.stop();
  Timeline.sampleNow(); // Quiescent final sample: catches the tail.

  // Ground truth: merged exact latency samples.
  std::vector<uint64_t> All;
  WorkerResult Tot;
  for (const WorkerResult &R : Results) {
    All.insert(All.end(), R.LatNs.begin(), R.LatNs.end());
    Tot.Ok += R.Ok;
    Tot.Rejected += R.Rejected;
    Tot.HotReqs += R.HotReqs;
    Tot.ColdReqs += R.ColdReqs;
    Tot.AdvReqs += R.AdvReqs;
  }
  std::sort(All.begin(), All.end());
  uint64_t ExactP50 = exactQuantile(All, 0.50);
  uint64_t ExactP99 = exactQuantile(All, 0.99);
  uint64_t ExactP999 = exactQuantile(All, 0.999);

  // The same quantiles through the obs histogram.
  obs::Snapshot Snap = obs::snapshot();
  const obs::Metric *ServerM = nullptr;
  for (const obs::Metric &M : Snap.Metrics)
    if (M.Name == "server.admission.ns")
      ServerM = &M;

  int Failures = 0;
  auto Fail = [&Failures](const char *Fmt, auto... Args) {
    std::fprintf(stderr, "c7 RECONCILIATION FAILURE: ");
    std::fprintf(stderr, Fmt, Args...);
    std::fprintf(stderr, "\n");
    ++Failures;
  };

  uint64_t HistP50 = 0, HistP99 = 0, HistP999 = 0;
  if (obs::compiledIn()) {
    if (!ServerM) {
      Fail("server.admission.ns histogram missing from snapshot");
    } else {
      HistP50 = obs::histQuantile(*ServerM, 0.50);
      HistP99 = obs::histQuantile(*ServerM, 0.99);
      HistP999 = obs::histQuantile(*ServerM, 0.999);
      // Totals reconcile: sampling drops ring events, never samples.
      if (ServerM->Value != Requests)
        Fail("histogram count %" PRIu64 " != request count %" PRIu64,
             ServerM->Value, Requests);
      // Sub-bucket resolution: within 10% of exact (the ISSUE gate; the
      // bucket bound itself is ~6.25%).
      if (!relWithin(static_cast<double>(HistP99),
                     static_cast<double>(ExactP99), 0.10))
        Fail("histogram p99 %" PRIu64 " not within 10%% of exact %" PRIu64,
             HistP99, ExactP99);
      if (!relWithin(static_cast<double>(HistP50),
                     static_cast<double>(ExactP50), 0.10))
        Fail("histogram p50 %" PRIu64 " not within 10%% of exact %" PRIu64,
             HistP50, ExactP50);
    }

    // Timeline deltas reconcile with the final snapshot.
    std::map<std::string, uint64_t> Acc = Timeline.base();
    for (const obs::TimelineDelta &D : Timeline.deltas())
      for (const auto &KV : D.Changes)
        Acc[KV.first] += KV.second;
    std::map<std::string, uint64_t> Latest = Timeline.latest();
    for (const auto &KV : Latest)
      if (Acc[KV.first] != KV.second)
        Fail("timeline key %s: base+deltas=%" PRIu64 " != latest=%" PRIu64,
             KV.first.c_str(), Acc[KV.first], KV.second);
    uint64_t TlCount = Latest["server.admission.ns.count"];
    if (TlCount != Requests)
      Fail("timeline latest count %" PRIu64 " != request count %" PRIu64,
           TlCount, Requests);
  }

  if (Tot.Ok + Tot.Rejected != Requests)
    Fail("ok %" PRIu64 " + rejected %" PRIu64 " != requests %" PRIu64,
         Tot.Ok, Tot.Rejected, Requests);
  // Adversarial payloads are the only expected rejections, and most of
  // them reject (a rare mutation survives admission).
  if (Tot.Rejected > Tot.AdvReqs)
    Fail("rejected %" PRIu64 " exceeds adversarial requests %" PRIu64,
         Tot.Rejected, Tot.AdvReqs);
  if (Tot.AdvReqs > 0 && Tot.Rejected == 0)
    Fail("adversarial payloads all admitted (mutator is a no-op?)");

  // Footprint + pressure.
  cache::CacheStats CS = Cache.stats();
  ir::TypeArena::Stats AS = ir::TypeArena::globalPtr()->stats();

  std::FILE *Out = std::fopen(OutPath.c_str(), "w");
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", OutPath.c_str());
    return 1;
  }
  std::fprintf(Out, "{\n  \"benchmark\": \"c7_admission_server\",\n");
  std::fprintf(Out, "  \"host_fingerprint\": \"%s\",\n",
               hostFingerprint().c_str());
  std::fprintf(Out, "  \"threads\": %u,\n  \"requests\": %" PRIu64 ",\n",
               Threads, Requests);
  std::fprintf(Out, "  \"wall_sec\": %.3f,\n", WallSec);
  std::fprintf(Out, "  \"requests_per_sec\": %.0f,\n",
               WallSec > 0 ? static_cast<double>(Requests) / WallSec : 0.0);
  std::fprintf(Out,
               "  \"mix\": {\"hot\": %" PRIu64 ", \"cold\": %" PRIu64
               ", \"adversarial\": %" PRIu64 ", \"ok\": %" PRIu64
               ", \"rejected\": %" PRIu64 "},\n",
               Tot.HotReqs, Tot.ColdReqs, Tot.AdvReqs, Tot.Ok, Tot.Rejected);
  std::fprintf(Out,
               "  \"latency_ns\": {\"p50\": %" PRIu64 ", \"p99\": %" PRIu64
               ", \"p999\": %" PRIu64 ", \"max\": %" PRIu64 "},\n",
               ExactP50, ExactP99, ExactP999, All.empty() ? 0 : All.back());
  std::fprintf(Out,
               "  \"latency_hist_ns\": {\"p50\": %" PRIu64
               ", \"p99\": %" PRIu64 ", \"p999\": %" PRIu64 "},\n",
               HistP50, HistP99, HistP999);
  std::fprintf(Out,
               "  \"cache\": {\"shards\": %u, \"hits\": %" PRIu64
               ", \"misses\": %" PRIu64 ", \"evictions\": %" PRIu64
               ", \"bytes\": %" PRIu64 ", \"entries\": %" PRIu64 "},\n",
               Cache.shardCount(), CS.hits(), CS.misses(), CS.Evictions,
               CS.Bytes, CS.Entries);
  std::fprintf(Out,
               "  \"arena\": {\"nodes\": %" PRIu64 ", \"bytes\": %" PRIu64
               "},\n",
               AS.totalNodes(), AS.ApproxBytes);
  std::fprintf(Out,
               "  \"obs\": {\"trace_sample_n\": %" PRIu64
               ", \"trace_dropped\": %" PRIu64
               ", \"timeline_samples\": %" PRIu64
               ", \"timeline_dropped\": %" PRIu64 "},\n",
               obs::traceSampling(), obs::traceDroppedCount(),
               Timeline.sampleCount(), Timeline.dropped());
  std::fprintf(Out, "  \"reconciliation_failures\": %d\n}\n", Failures);
  std::fclose(Out);

  std::printf("c7: %u threads x %" PRIu64 " requests in %.2fs "
              "(%.0f req/s)\n",
              Threads, Requests, WallSec,
              WallSec > 0 ? static_cast<double>(Requests) / WallSec : 0.0);
  std::printf("c7: latency p50=%" PRIu64 "ns p99=%" PRIu64 "ns p999=%" PRIu64
              "ns (hist: %" PRIu64 "/%" PRIu64 "/%" PRIu64 ")\n",
              ExactP50, ExactP99, ExactP999, HistP50, HistP99, HistP999);
  std::printf("c7: mix hot=%" PRIu64 " cold=%" PRIu64 " adv=%" PRIu64
              " ok=%" PRIu64 " rejected=%" PRIu64 "\n",
              Tot.HotReqs, Tot.ColdReqs, Tot.AdvReqs, Tot.Ok, Tot.Rejected);
  std::printf("c7: cache hits=%" PRIu64 " misses=%" PRIu64 " evictions=%" PRIu64
              " bytes=%" PRIu64 "\n",
              CS.hits(), CS.misses(), CS.Evictions, CS.Bytes);
  std::printf("c7: wrote %s (%d reconciliation failures)\n", OutPath.c_str(),
              Failures);
  return Failures == 0 ? 0 : 1;
}
