//===- tests/ir_test.cpp - IR construction, sizes, substitution ----------===//
//
// Covers Fig 2 (abstract syntax): every production is constructed, printed,
// compared, and rewritten. Also exercises the size normal form and the
// de Bruijn shift/substitution machinery the dynamic semantics depends on.
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "ir/Print.h"
#include "ir/Rewrite.h"
#include "ir/TypeOps.h"

#include <gtest/gtest.h>

using namespace rw;
using namespace rw::ir;

//===----------------------------------------------------------------------===//
// Sizes
//===----------------------------------------------------------------------===//

TEST(Size, NormalFormConstants) {
  SizeRef S = Size::plus(Size::constant(32), Size::constant(64));
  NormalSize N = normalizeSize(S);
  EXPECT_EQ(N.Const, 96u);
  EXPECT_TRUE(N.isConst());
  EXPECT_EQ(closedSizeBits(S), 96u);
}

TEST(Size, NormalFormMixesVarsAndConstants) {
  SizeRef S = Size::plus(Size::var(1),
                         Size::plus(Size::constant(8), Size::var(0)));
  NormalSize N = normalizeSize(S);
  EXPECT_EQ(N.Const, 8u);
  ASSERT_EQ(N.Vars.size(), 2u);
  EXPECT_EQ(N.Vars[0], 0u);
  EXPECT_EQ(N.Vars[1], 1u);
  EXPECT_FALSE(N.isConst());
}

TEST(Size, EqualityModuloAssocComm) {
  SizeRef A = Size::plus(Size::var(0), Size::constant(32));
  SizeRef B = Size::plus(Size::constant(32), Size::var(0));
  EXPECT_TRUE(sizeEquals(A, B));
  SizeRef C = Size::plus(Size::constant(33), Size::var(0));
  EXPECT_FALSE(sizeEquals(A, C));
}

//===----------------------------------------------------------------------===//
// Qualifiers and locations
//===----------------------------------------------------------------------===//

TEST(Qual, ConstructorsAndEquality) {
  EXPECT_TRUE(Qual::unr().isUnrConst());
  EXPECT_TRUE(Qual::lin().isLinConst());
  EXPECT_TRUE(Qual::var(3).isVar());
  EXPECT_EQ(Qual::var(3), Qual::var(3));
  EXPECT_NE(Qual::var(3), Qual::var(4));
  EXPECT_NE(Qual::unr(), Qual::lin());
}

TEST(Loc, KindsAndEquality) {
  Loc V = Loc::var(2);
  Loc C = Loc::concrete(MemKind::Lin, 7);
  Loc S = Loc::skolem(9);
  EXPECT_TRUE(V.isVar());
  EXPECT_TRUE(C.isConcrete());
  EXPECT_TRUE(S.isSkolem());
  EXPECT_EQ(C, Loc::concrete(MemKind::Lin, 7));
  EXPECT_NE(C, Loc::concrete(MemKind::Unr, 7));
  EXPECT_NE(V, S);
}

//===----------------------------------------------------------------------===//
// The size metafunction ||τ||
//===----------------------------------------------------------------------===//

TEST(SizeOf, BaseTypes) {
  EXPECT_EQ(closedSizeBits(sizeOfType(unitT(), {})), 0u);
  EXPECT_EQ(closedSizeBits(sizeOfType(i32T(), {})), 32u);
  EXPECT_EQ(closedSizeBits(sizeOfType(i64T(), {})), 64u);
  EXPECT_EQ(closedSizeBits(sizeOfType(numT(NumType::F64), {})), 64u);
}

TEST(SizeOf, ErasedEntitiesAreZero) {
  Loc L = Loc::var(0);
  HeapTypeRef H = structHT({{i32T(), Size::constant(32)}});
  EXPECT_EQ(closedSizeBits(sizeOfPretype(capPT(Privilege::RW, L, H), {})), 0u);
  EXPECT_EQ(closedSizeBits(sizeOfPretype(ownPT(L), {})), 0u);
}

TEST(SizeOf, ReferencesAreOneWord) {
  Loc L = Loc::var(0);
  HeapTypeRef H = arrayHT(i32T());
  EXPECT_EQ(closedSizeBits(sizeOfPretype(refPT(Privilege::R, L, H), {})), 64u);
  EXPECT_EQ(closedSizeBits(sizeOfPretype(ptrPT(L), {})), 64u);
}

TEST(SizeOf, TuplesSum) {
  Type T(prodPT({i32T(), i64T(), unitT()}), Qual::unr());
  EXPECT_EQ(closedSizeBits(sizeOfType(T, {})), 96u);
}

TEST(SizeOf, TypeVarUsesBound) {
  Type T(varPT(0), Qual::unr());
  TypeVarSizes Bounds = {Size::constant(128)};
  EXPECT_EQ(closedSizeBits(sizeOfType(T, Bounds)), 128u);
}

//===----------------------------------------------------------------------===//
// no_caps
//===----------------------------------------------------------------------===//

TEST(NoCaps, CapsAndOwnAreRejected) {
  Loc L = Loc::var(0);
  HeapTypeRef H = arrayHT(i32T());
  EXPECT_FALSE(pretypeNoCaps(capPT(Privilege::R, L, H), {}));
  EXPECT_FALSE(pretypeNoCaps(ownPT(L), {}));
  EXPECT_TRUE(pretypeNoCaps(ptrPT(L), {}));
  // A reference packages its capability with its pointer: allowed.
  EXPECT_TRUE(pretypeNoCaps(refPT(Privilege::RW, L, H), {}));
}

TEST(NoCaps, TuplesPropagate) {
  Loc L = Loc::var(0);
  Type CapT(capPT(Privilege::R, L, arrayHT(i32T())), Qual::lin());
  EXPECT_FALSE(pretypeNoCaps(prodPT({i32T(), CapT}), {}));
  EXPECT_TRUE(pretypeNoCaps(prodPT({i32T(), i64T()}), {}));
}

//===----------------------------------------------------------------------===//
// Structural equality
//===----------------------------------------------------------------------===//

TEST(TypeEquals, Basics) {
  EXPECT_TRUE(typeEquals(i32T(), i32T()));
  EXPECT_FALSE(typeEquals(i32T(), i64T()));
  EXPECT_FALSE(typeEquals(i32T(), i32T(Qual::lin())));
  EXPECT_TRUE(typeEquals(Type(varPT(1), Qual::lin()),
                         Type(varPT(1), Qual::lin())));
}

TEST(TypeEquals, StructuralHeapTypes) {
  HeapTypeRef A = structHT({{i32T(), Size::constant(32)},
                            {i64T(), Size::constant(64)}});
  HeapTypeRef B = structHT({{i32T(), Size::constant(32)},
                            {i64T(), Size::constant(64)}});
  HeapTypeRef C = structHT({{i32T(), Size::constant(32)}});
  EXPECT_TRUE(heapTypeEquals(*A, *B));
  EXPECT_FALSE(heapTypeEquals(*A, *C));
}

TEST(TypeEquals, FunTypes) {
  FunTypeRef F1 = FunType::get({Quant::loc()},
                               build::arrow({i32T()}, {i32T()}));
  FunTypeRef F2 = FunType::get({Quant::loc()},
                               build::arrow({i32T()}, {i32T()}));
  FunTypeRef F3 = FunType::get({}, build::arrow({i32T()}, {i32T()}));
  EXPECT_TRUE(funTypeEquals(*F1, *F2));
  EXPECT_FALSE(funTypeEquals(*F1, *F3));
}

//===----------------------------------------------------------------------===//
// Substitution and shifting
//===----------------------------------------------------------------------===//

TEST(Subst, LocSubstitutionStripsBinder) {
  // ∃ρ. ref rw ρ ψ — substituting ℓ for the binder after unpacking.
  HeapTypeRef H = arrayHT(i32T());
  Type Body(refPT(Privilege::RW, Loc::var(0), H), Qual::lin());
  Loc Target = Loc::concrete(MemKind::Lin, 42);
  Subst S = Subst::oneLoc(Target);
  Type Out = S.rewrite(Body);
  const auto *R = dyn_cast<RefPT>(Out.P);
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->loc(), Target);
}

TEST(Subst, OuterVariablesDropByGroupSize) {
  // Var 1 under a 1-binder substitution becomes var 0.
  Type T(ptrPT(Loc::var(1)), Qual::unr());
  Subst S = Subst::oneLoc(Loc::concrete(MemKind::Unr, 1));
  Type Out = S.rewrite(T);
  const auto *P = dyn_cast<PtrPT>(Out.P);
  ASSERT_NE(P, nullptr);
  ASSERT_TRUE(P->loc().isVar());
  EXPECT_EQ(P->loc().varIndex(), 0u);
}

TEST(Subst, BoundVariablesAreProtected) {
  // ∃ρ. ptr ρ: the inner binder must not be replaced by an outer subst.
  Type Inner(ptrPT(Loc::var(0)), Qual::unr());
  Type T(exLocPT(Inner), Qual::unr());
  Subst S = Subst::oneLoc(Loc::concrete(MemKind::Unr, 3));
  Type Out = S.rewrite(T);
  const auto *Ex = dyn_cast<ExLocPT>(Out.P);
  ASSERT_NE(Ex, nullptr);
  const auto *P = dyn_cast<PtrPT>(Ex->body().P);
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(P->loc().isVar());
  EXPECT_EQ(P->loc().varIndex(), 0u);
}

TEST(Subst, PretypeSubstitutionUnfoldsRec) {
  // rec unr ⪯ α. (ref rw ρ0 (variant [unit^unr; α^unr]))^unr
  HeapTypeRef V = variantHT({unitT(), Type(varPT(0), Qual::unr())});
  PretypeRef Rec =
      recPT(Qual::unr(),
            Type(refPT(Privilege::RW, Loc::var(0), V), Qual::unr()));
  const auto *R = cast<RecPT>(Rec.get());
  Subst S = Subst::onePretype(Rec);
  Type Unfolded = S.rewrite(R->body());
  const auto *Ref = dyn_cast<RefPT>(Unfolded.P);
  ASSERT_NE(Ref, nullptr);
  const auto *VH = dyn_cast<VariantHT>(Ref->heapType());
  ASSERT_NE(VH, nullptr);
  EXPECT_TRUE(isa<RecPT>(VH->cases()[1].P));
}

TEST(Subst, QualInstantiation) {
  // ∀δ. [α^δ] → [α^δ] instantiated with lin.
  FunTypeRef F = FunType::get(
      {Quant::qual(), Quant::type(Qual::var(0), Size::constant(32), true)},
      build::arrow({Type(varPT(0), Qual::var(0))},
                   {Type(varPT(0), Qual::var(0))}));
  std::vector<Index> Args = {Index::qual(Qual::lin()),
                             Index::pretype(numPT(NumType::I32))};
  ArrowType A = instantiateFunType(*F, Args);
  ASSERT_EQ(A.Params.size(), 1u);
  EXPECT_TRUE(typeEquals(A.Params[0], i32T(Qual::lin())));
}

TEST(Subst, SimultaneousMultiKind) {
  // ∀ρ σ α. [(ref rw ρ (struct (α^unr, σ)))^unr] → [α^unr]
  HeapTypeRef H =
      structHT({{Type(varPT(0), Qual::unr()), Size::var(0)}});
  FunTypeRef F = FunType::get(
      {Quant::loc(), Quant::size(), Quant::type(Qual::unr(), Size::var(0), true)},
      build::arrow({Type(refPT(Privilege::RW, Loc::var(0), H), Qual::unr())},
                   {Type(varPT(0), Qual::unr())}));
  std::vector<Index> Args = {Index::loc(Loc::concrete(MemKind::Unr, 5)),
                             Index::size(Size::constant(32)),
                             Index::pretype(numPT(NumType::I32))};
  ArrowType A = instantiateFunType(*F, Args);
  const auto *R = dyn_cast<RefPT>(A.Params[0].P);
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->loc(), Loc::concrete(MemKind::Unr, 5));
  const auto *SH = dyn_cast<StructHT>(R->heapType());
  ASSERT_NE(SH, nullptr);
  EXPECT_TRUE(isa<NumPT>(SH->fields()[0].T.P));
  EXPECT_EQ(closedSizeBits(SH->fields()[0].Slot), 32u);
  EXPECT_TRUE(typeEquals(A.Results[0], i32T()));
}

TEST(Shift, FreeVarsMoveBoundVarsStay) {
  // ∃ρ. (ptr ρ0, ptr ρ1): shifting by 2 affects only the free ρ1.
  Type Body(prodPT({Type(ptrPT(Loc::var(0)), Qual::unr()),
                    Type(ptrPT(Loc::var(1)), Qual::unr())}),
            Qual::unr());
  Type T(exLocPT(Body), Qual::unr());
  Shifter Sh(2, 0, 0, 0);
  Type Out = Sh.rewrite(T);
  const auto *Ex = cast<ExLocPT>(Out.P.get());
  const auto *Prod = cast<ProdPT>(Ex->body().P.get());
  EXPECT_EQ(cast<PtrPT>(Prod->elems()[0].P.get())->loc().varIndex(), 0u);
  EXPECT_EQ(cast<PtrPT>(Prod->elems()[1].P.get())->loc().varIndex(), 3u);
}

//===----------------------------------------------------------------------===//
// Instruction rewriting (call-time substitution into bodies)
//===----------------------------------------------------------------------===//

TEST(InstRewrite, SubstitutesAnnotationsAndRespectsBinders) {
  using namespace rw::ir::build;
  // Body: struct.malloc [σ0] lin; mem.unpack ... ρ. (mem.pack ρ0)
  InstVec Body = {
      structMalloc({Size::var(0)}, Qual::lin()),
      memUnpack(arrow({}, {}), {}, {memPack(Loc::var(0))}),
      memPack(Loc::var(0)),
  };
  Subst S = Subst::fromIndices({Index::size(Size::constant(32)),
                                Index::loc(Loc::concrete(MemKind::Lin, 9))});
  InstVec Out = rewriteInsts(Body, S);

  const auto *SM = cast<StructMallocInst>(Out[0].get());
  EXPECT_EQ(closedSizeBits(SM->sizes()[0]), 32u);

  // Inside the mem.unpack body, ρ0 is the *unpack's* binder: untouched.
  const auto *MU = cast<MemUnpackInst>(Out[1].get());
  const auto *InnerPack = cast<MemPackInst>(MU->body()[0].get());
  EXPECT_TRUE(InnerPack->loc().isVar());
  EXPECT_EQ(InnerPack->loc().varIndex(), 0u);

  // Outside, ρ0 was the function's binder: substituted.
  const auto *OuterPack = cast<MemPackInst>(Out[2].get());
  EXPECT_EQ(OuterPack->loc(), Loc::concrete(MemKind::Lin, 9));
}

//===----------------------------------------------------------------------===//
// Printing (Fig 2 coverage — every production renders)
//===----------------------------------------------------------------------===//

TEST(Print, EveryPretypeRenders) {
  Loc L = Loc::var(0);
  HeapTypeRef H = structHT({{i32T(), Size::constant(32)}});
  std::vector<PretypeRef> All = {
      unitPT(),
      numPT(NumType::U64),
      varPT(2),
      prodPT({i32T(), i64T()}),
      refPT(Privilege::RW, L, H),
      ptrPT(L),
      capPT(Privilege::R, L, H),
      ownPT(L),
      recPT(Qual::unr(), Type(refPT(Privilege::RW, L, variantHT({unitT()})),
                              Qual::unr())),
      exLocPT(i32T()),
      coderefPT(FunType::get({}, build::arrow({}, {i32T()}))),
  };
  for (const PretypeRef &P : All)
    EXPECT_FALSE(printPretype(P).empty());
}

TEST(Print, EveryHeapTypeRenders) {
  std::vector<HeapTypeRef> All = {
      variantHT({unitT(), i32T()}),
      structHT({{i32T(), Size::constant(32)}}),
      arrayHT(i64T()),
      exHT(Qual::unr(), Size::constant(64), Type(varPT(0), Qual::unr())),
  };
  for (const HeapTypeRef &H : All)
    EXPECT_FALSE(printHeapType(H).empty());
}

TEST(Print, InstructionsRender) {
  using namespace rw::ir::build;
  InstVec Insts = {
      iconst(7),
      addI32(),
      block(arrow({}, {i32T()}), {}, {iconst(1)}),
      loop(arrow({}, {}), {}),
      getLocal(0, Qual::lin()),
      structMalloc({Size::constant(32)}, Qual::lin()),
      variantCase(Qual::unr(), variantHT({unitT()}), arrow({}, {}), {},
                  {{}}),
      memUnpack(arrow({}, {}), {}, {}),
  };
  std::string S = printInsts(Insts);
  EXPECT_NE(S.find("i32.const 7"), std::string::npos);
  EXPECT_NE(S.find("block"), std::string::npos);
  EXPECT_NE(S.find("struct.malloc"), std::string::npos);
}

TEST(Print, ModuleRenders) {
  using namespace rw::ir::build;
  ir::Module M;
  M.Name = "demo";
  M.Funcs.push_back(function(
      {"f"}, FunType::get({}, arrow({i32T()}, {i32T()})), {},
      {getLocal(0, Qual::unr())}));
  std::string S = printModule(M);
  EXPECT_NE(S.find("demo"), std::string::npos);
  EXPECT_NE(S.find("export \"f\""), std::string::npos);
}
