//===- tests/checker_test.cpp - Instruction typing (Fig 7) ----------------===//
//
// One positive and one negative test per instruction family, plus the
// paper's headline property: programs that duplicate or drop linear values
// (the Fig 1 "stash" pattern) are rejected statically.
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "typing/Checker.h"
#include "typing/Entail.h"

#include <gtest/gtest.h>

using namespace rw;
using namespace rw::ir;
using namespace rw::ir::build;
using namespace rw::typing;

namespace {

/// Checks a body in an empty context with the given locals.
Expected<SeqResult> check(const InstVec &Insts, LocalCtx Locals = {},
                          std::vector<Type> StackIn = {}) {
  ModuleEnv Env;
  return checkSeq(Env, KindCtx(), std::nullopt, std::move(Locals),
                  std::move(StackIn), Insts);
}

/// A linear struct reference type over one i32 field (the workhorse of the
/// heap tests).
Type linCellRef() {
  return Type(exLocPT(Type(
                  refPT(Privilege::RW, Loc::var(0),
                        structHT({{i32T(), Size::constant(32)}})),
                  Qual::lin())),
              Qual::lin());
}

LocalSlot slot(Type T, uint64_t Bits) {
  return {std::move(T), Size::constant(Bits)};
}

} // namespace

//===----------------------------------------------------------------------===//
// Numerics, drop, select
//===----------------------------------------------------------------------===//

TEST(Checker, ConstAndAdd) {
  auto R = check({iconst(2), iconst(3), addI32()});
  ASSERT_TRUE(bool(R));
  ASSERT_EQ(R->Stack.size(), 1u);
  EXPECT_TRUE(typeEquals(R->Stack[0], i32T()));
}

TEST(Checker, BinopTypeMismatch) {
  auto R = check({iconst(2), i64const(3), addI32()});
  EXPECT_FALSE(bool(R));
}

TEST(Checker, FloatOpOnIntRejected) {
  auto R = check({iconst(1), iconst(2), binop(NumType::I32, BinopKind::Min)});
  EXPECT_FALSE(bool(R));
}

TEST(Checker, DropUnrOk) {
  auto R = check({iconst(1), drop()});
  ASSERT_TRUE(bool(R));
  EXPECT_TRUE(R->Stack.empty());
}

TEST(Checker, DropLinearRejected) {
  // A linear value on the stack cannot be dropped.
  auto R = check({drop()}, {}, {linCellRef()});
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().message().find("linear"), std::string::npos);
}

TEST(Checker, SelectRequiresEqualTypes) {
  EXPECT_TRUE(bool(check({iconst(1), iconst(2), iconst(0), select()})));
  EXPECT_FALSE(bool(check({iconst(1), i64const(2), iconst(0), select()})));
}

//===----------------------------------------------------------------------===//
// Blocks, branching, locals
//===----------------------------------------------------------------------===//

TEST(Checker, BlockResultTypes) {
  auto R = check({block(arrow({}, {i32T()}), {}, {iconst(5)})});
  ASSERT_TRUE(bool(R));
  EXPECT_TRUE(typeEquals(R->Stack[0], i32T()));
}

TEST(Checker, BlockBodyMismatchRejected) {
  auto R = check({block(arrow({}, {i32T()}), {}, {i64const(5)})});
  EXPECT_FALSE(bool(R));
}

TEST(Checker, BrToLabelOk) {
  auto R = check({block(arrow({}, {i32T()}), {}, {iconst(5), br(0)})});
  EXPECT_TRUE(bool(R));
}

TEST(Checker, BrWouldDropLinearRejected) {
  // Inside the block, a linear cell is allocated and then a br jumps out
  // without consuming it.
  auto R = check({block(arrow({}, {}), {},
                        {iconst(1),
                         structMalloc({Size::constant(32)}, Qual::lin()),
                         br(0)})});
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().message().find("linear"), std::string::npos);
}

TEST(Checker, BrPastLockedLinearRejected) {
  // A linear value sits beneath an inner block; br 1 from inside the inner
  // block would drop it.
  InstVec Inner = {br(1)};
  auto R = check({block(
      arrow({}, {}), {},
      {iconst(1), structMalloc({Size::constant(32)}, Qual::lin()),
       block(arrow({}, {}), {}, Inner),
       // Unreached cleanup, present to satisfy the outer block's type.
       memUnpack(arrow({}, {}), {},
                 {structFree()})})});
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().message().find("locked"), std::string::npos);
}

TEST(Checker, IfBranchesAgree) {
  auto R = check({iconst(1),
                  ifElse(arrow({}, {i32T()}), {}, {iconst(1)}, {iconst(2)})});
  EXPECT_TRUE(bool(R));
  auto Bad = check({iconst(1),
                    ifElse(arrow({}, {i32T()}), {}, {iconst(1)}, {i64const(2)})});
  EXPECT_FALSE(bool(Bad));
}

TEST(Checker, LoopParamsAreBranchTarget) {
  // loop [i32] -> [i32] whose body conditionally re-enters with br 0.
  auto R = check({iconst(0),
                  loop(arrow({i32T()}, {i32T()}),
                       {iconst(1), addI32(), teeLocal(0), getLocal(0, Qual::unr()),
                        iconst(10), relop(NumType::I32, RelopKind::Lt),
                        brIf(0)})},
                 {slot(i32T(), 32)});
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_TRUE(typeEquals(R->Stack[0], i32T()));
}

TEST(Checker, GetLocalUnrCopies) {
  auto R = check({getLocal(0, Qual::unr()), getLocal(0, Qual::unr())},
                 {slot(i32T(), 32)});
  ASSERT_TRUE(bool(R));
  EXPECT_EQ(R->Stack.size(), 2u);
  EXPECT_TRUE(typeEquals(R->Locals[0].T, i32T()));
}

TEST(Checker, GetLocalLinMovesAndBlanks) {
  auto R = check({getLocal(0, Qual::lin())}, {slot(linCellRef(), 64)});
  ASSERT_TRUE(bool(R));
  EXPECT_TRUE(typeEquals(R->Locals[0].T, unitT()));
  EXPECT_TRUE(typeEquals(R->Stack[0], linCellRef()));
}

TEST(Checker, GetLocalLinTwiceGivesUnit) {
  // The second linear get reads unit, not the original type — this is the
  // mechanism that rejects compiled `stash`-style duplication.
  auto R = check({getLocal(0, Qual::lin()), getLocal(0, Qual::lin())},
                 {slot(linCellRef(), 64)});
  EXPECT_FALSE(bool(R)); // Annotation no longer matches slot qualifier.
}

TEST(Checker, SetLocalChecksFitAndOldQual) {
  // i64 into a 32-bit slot: rejected.
  auto Bad = check({i64const(1), setLocal(0)}, {slot(i32T(), 32)});
  EXPECT_FALSE(bool(Bad));
  // Overwriting a linear value: rejected.
  auto Bad2 = check({iconst(1), setLocal(0)}, {slot(linCellRef(), 64)});
  ASSERT_FALSE(bool(Bad2));
  EXPECT_NE(Bad2.error().message().find("linear"), std::string::npos);
  // Strong local update i32 -> i64 in a big-enough slot: fine.
  auto Good = check({i64const(1), setLocal(0)}, {slot(i32T(), 64)});
  EXPECT_TRUE(bool(Good));
}

TEST(Checker, TeeLocalRejectsLinear) {
  auto R = check({teeLocal(0)}, {slot(unitT(), 64)}, {linCellRef()});
  EXPECT_FALSE(bool(R));
}

//===----------------------------------------------------------------------===//
// Qualify, group/ungroup
//===----------------------------------------------------------------------===//

TEST(Checker, QualifyUpOk) {
  auto R = check({iconst(1), qualify(Qual::lin())});
  ASSERT_TRUE(bool(R));
  EXPECT_TRUE(typeEquals(R->Stack[0], i32T(Qual::lin())));
}

TEST(Checker, QualifyDownRejected) {
  auto R = check({qualify(Qual::unr())}, {}, {i32T(Qual::lin())});
  EXPECT_FALSE(bool(R));
}

TEST(Checker, GroupQualMustBoundComponents) {
  // Grouping a linear component into an unrestricted tuple is rejected.
  auto Bad = check({group(1, Qual::unr())}, {}, {linCellRef()});
  EXPECT_FALSE(bool(Bad));
  auto Good = check({group(1, Qual::lin())}, {}, {linCellRef()});
  EXPECT_TRUE(bool(Good));
}

TEST(Checker, GroupUngroupRoundTrip) {
  auto R = check({iconst(1), i64const(2), group(2, Qual::unr()), ungroup()});
  ASSERT_TRUE(bool(R));
  ASSERT_EQ(R->Stack.size(), 2u);
  EXPECT_TRUE(typeEquals(R->Stack[0], i32T()));
  EXPECT_TRUE(typeEquals(R->Stack[1], i64T()));
}

//===----------------------------------------------------------------------===//
// Structs: malloc / get / set / swap / free
//===----------------------------------------------------------------------===//

TEST(Checker, StructMallocUnpackFree) {
  InstVec Body = {
      iconst(7),
      structMalloc({Size::constant(32)}, Qual::lin()),
      memUnpack(arrow({}, {}), {}, {structFree()}),
  };
  auto R = check(Body);
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_TRUE(R->Stack.empty());
}

TEST(Checker, StructMallocFieldTooBigRejected) {
  auto R = check({i64const(7), structMalloc({Size::constant(32)}, Qual::lin())});
  EXPECT_FALSE(bool(R));
}

TEST(Checker, CapabilitiesCannotGoOnHeap) {
  // Try to store a capability (split off a ref) into a struct.
  InstVec Body = {
      iconst(7),
      structMalloc({Size::constant(32)}, Qual::lin()),
      memUnpack(arrow({}, {}), {},
                {refSplit(), // cap below, ptr on top
                 drop(),     // drop the ptr (unrestricted, fine)
                 structMalloc({Size::constant(64)}, Qual::lin()),
                 memUnpack(arrow({}, {}), {}, {structFree()})}),
  };
  auto R = check(Body);
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().message().find("capabilit"), std::string::npos);
}

TEST(Checker, StructGetRequiresUnrField) {
  // Build an unr struct of one i32 in unrestricted memory and read it.
  InstVec Body = {
      iconst(7),
      structMalloc({Size::constant(32)}, Qual::unr()),
      memUnpack(arrow({}, {i32T()}), {},
                {structGet(0),
                 // Stack: ref, field. Field on top; swap roles: drop ref
                 // under the field is impossible, so re-order via locals.
                 setLocal(0), drop(), getLocal(0, Qual::unr())}),
  };
  auto R = check(Body, {slot(i32T(), 32)});
  ASSERT_TRUE(bool(R)) << R.error().message();
  ASSERT_EQ(R->Stack.size(), 1u);
  EXPECT_TRUE(typeEquals(R->Stack[0], i32T()));
}

TEST(Checker, StrongUpdateOnlyThroughLinearRef) {
  // Unrestricted struct: type-changing set is rejected.
  InstVec Bad = {
      iconst(7),
      structMalloc({Size::constant(64)}, Qual::unr()),
      memUnpack(arrow({}, {}), {},
                {i64const(1), structSet(0), drop()}),
  };
  auto R = check(Bad);
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().message().find("strong update"), std::string::npos);

  // Linear struct: the same strong update is accepted.
  InstVec Good = {
      iconst(7),
      structMalloc({Size::constant(64)}, Qual::lin()),
      memUnpack(arrow({}, {}), {},
                {i64const(1), structSet(0), structFree()}),
  };
  auto R2 = check(Good);
  EXPECT_TRUE(bool(R2)) << R2.error().message();
}

TEST(Checker, StructSwapMovesLinearField) {
  // A linear cell holding a linear cell: swap extracts the inner one.
  InstVec Body = {
      // Allocate the inner cell and stash the (packed) reference in a
      // local; its type is the ∃ρ package, which mentions no skolem.
      iconst(1),
      structMalloc({Size::constant(32)}, Qual::lin()),
      setLocal(0),
      // Allocate an outer cell with a 64-bit slot holding an i32.
      iconst(2),
      structMalloc({Size::constant(64)}, Qual::lin()),
      memUnpack(
          arrow({}, {}), {{0, unitT()}},
          {// Strong-update the inner package into the outer's field.
           getLocal(0, Qual::lin()), structSwap(0), drop(),
           // Swap it back out, unpack it, and free both cells.
           iconst(9), structSwap(0),
           memUnpack(arrow({}, {}), {}, {structFree()}), structFree()}),
  };
  auto R = check(Body, {slot(unitT(), 64)});
  EXPECT_TRUE(bool(R)) << R.error().message();
}

TEST(Checker, StructGetOfLinearFieldRejected) {
  Type InnerRef = linCellRef();
  // An outer linear struct whose field is linear: struct.get must fail.
  InstVec Body = {
      iconst(1),
      structMalloc({Size::constant(32)}, Qual::lin()),
      memUnpack(arrow({}, {}), {},
                {structMalloc({Size::constant(64)}, Qual::lin()),
                 memUnpack(arrow({}, {}), {},
                           {structGet(0), drop(), structFree()})}),
  };
  auto R = check(Body);
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().message().find("struct.swap"), std::string::npos);
}

TEST(Checker, FreeRequiresLinear) {
  InstVec Body = {
      iconst(7),
      structMalloc({Size::constant(32)}, Qual::unr()),
      memUnpack(arrow({}, {}), {}, {structFree()}),
  };
  auto R = check(Body);
  ASSERT_FALSE(bool(R));
}

//===----------------------------------------------------------------------===//
// Variants
//===----------------------------------------------------------------------===//

TEST(Checker, VariantRoundTrip) {
  std::vector<Type> Cases = {unitT(), i32T()};
  InstVec Body = {
      iconst(42),
      variantMalloc(1, Cases, Qual::lin()),
      memUnpack(arrow({}, {i32T()}), {},
                {variantCase(Qual::lin(), variantHT(Cases),
                             arrow({}, {i32T()}), {},
                             {{drop(), iconst(0)}, {}})}),
  };
  auto R = check(Body);
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_TRUE(typeEquals(R->Stack[0], i32T()));
}

TEST(Checker, VariantMallocWrongPayloadRejected) {
  std::vector<Type> Cases = {unitT(), i32T()};
  auto R = check({i64const(1), variantMalloc(1, Cases, Qual::lin())});
  EXPECT_FALSE(bool(R));
}

TEST(Checker, UnrCaseOverLinearCasesRejected) {
  std::vector<Type> Cases = {linCellRef()};
  InstVec Body = {
      variantCase(Qual::unr(), variantHT(Cases), arrow({}, {}), {},
                  {{drop()}}),
  };
  Type VRef(refPT(Privilege::RW, Loc::concrete(MemKind::Unr, 1),
                  variantHT(Cases)),
            Qual::unr());
  auto R = check(Body, {}, {VRef});
  ASSERT_FALSE(bool(R));
}

//===----------------------------------------------------------------------===//
// Arrays
//===----------------------------------------------------------------------===//

TEST(Checker, ArrayMallocGetSetFree) {
  InstVec Body = {
      iconst(7), uconst(10), arrayMalloc(Qual::lin()),
      memUnpack(arrow({}, {i32T()}), {},
                {uconst(3), arrayGet(), setLocal(0), uconst(4), iconst(9),
                 arraySet(), arrayFree(), getLocal(0, Qual::unr())}),
  };
  auto R = check(Body, {slot(i32T(), 32)});
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_TRUE(typeEquals(R->Stack[0], i32T()));
}

TEST(Checker, ArraySetTypePreservingOnly) {
  InstVec Body = {
      iconst(7), uconst(10), arrayMalloc(Qual::lin()),
      memUnpack(arrow({}, {}), {},
                {uconst(0), i64const(1), arraySet(), arrayFree()}),
  };
  auto R = check(Body);
  EXPECT_FALSE(bool(R));
}

TEST(Checker, ArrayInitMustBeUnr) {
  auto R = check({uconst(4), arrayMalloc(Qual::lin())}, {},
                 {linCellRef()});
  EXPECT_FALSE(bool(R));
}

//===----------------------------------------------------------------------===//
// Existential packages (heap ∃α)
//===----------------------------------------------------------------------===//

TEST(Checker, ExistPackUnpack) {
  HeapTypeRef Ex =
      exHT(Qual::unr(), Size::constant(32), Type(varPT(0), Qual::unr()));
  InstVec Body = {
      iconst(5),
      existPack(numPT(NumType::I32), Ex, Qual::lin()),
      memUnpack(arrow({}, {}), {},
                {existUnpack(Qual::lin(), Ex, arrow({}, {}), {},
                             {drop()})}),
  };
  auto R = check(Body);
  ASSERT_TRUE(bool(R)) << R.error().message();
}

TEST(Checker, ExistPackWitnessTooBigRejected) {
  HeapTypeRef Ex =
      exHT(Qual::unr(), Size::constant(32), Type(varPT(0), Qual::unr()));
  auto R = check({i64const(5), existPack(numPT(NumType::I64), Ex, Qual::lin())});
  EXPECT_FALSE(bool(R));
}

TEST(Checker, ExistUnpackSkolemCannotEscape) {
  HeapTypeRef Ex =
      exHT(Qual::unr(), Size::constant(32), Type(varPT(0), Qual::unr()));
  // The body tries to smuggle the opened abstract value out through a
  // local. No annotation can name the skolem, so this must be rejected
  // (either as a local-effect disagreement or as a skolem escape).
  InstVec Body = {
      iconst(5),
      existPack(numPT(NumType::I32), Ex, Qual::unr()),
      memUnpack(arrow({}, {}), {{0, unitT()}},
                {existUnpack(Qual::unr(), Ex, arrow({}, {}), {{0, unitT()}},
                             {setLocal(0)}),
                 drop()}),
  };
  auto R = check(Body, {slot(unitT(), 64)});
  EXPECT_FALSE(bool(R));
}

//===----------------------------------------------------------------------===//
// Capabilities and references
//===----------------------------------------------------------------------===//

TEST(Checker, RefSplitJoinRoundTrip) {
  InstVec Body = {
      iconst(7),
      structMalloc({Size::constant(32)}, Qual::lin()),
      memUnpack(arrow({}, {}), {},
                {refSplit(), refJoin(), structFree()}),
  };
  auto R = check(Body);
  EXPECT_TRUE(bool(R)) << R.error().message();
}

TEST(Checker, CapSplitJoinRoundTrip) {
  InstVec Body = {
      iconst(7),
      structMalloc({Size::constant(32)}, Qual::lin()),
      memUnpack(arrow({}, {}), {{0, i32T()}},
                {refSplit(),      // cap, ptr
                 setLocal(0),     // stash the ptr
                 capSplit(),      // cap r, own
                 capJoin(),       // cap rw
                 getLocal(0, Qual::unr()), refJoin(), structFree(),
                 // Overwrite the ptr so the skolem does not linger in the
                 // local past the unpack scope.
                 iconst(0), setLocal(0)}),
  };
  auto R = check(Body, {slot(unitT(), 64)});
  EXPECT_TRUE(bool(R)) << R.error().message();
}

TEST(Checker, RefDemoteDropsWrite) {
  InstVec Body = {
      iconst(7),
      structMalloc({Size::constant(32)}, Qual::lin()),
      memUnpack(arrow({}, {}), {},
                {refDemote(), iconst(1), structSet(0), structFree()}),
  };
  auto R = check(Body);
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().message().find("privilege"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Functions, calls, polymorphism
//===----------------------------------------------------------------------===//

TEST(Checker, ModuleWithCall) {
  ir::Module M;
  M.Name = "m";
  // f0: [i32 i32] -> [i32] = add.
  M.Funcs.push_back(function(
      {}, FunType::get({}, arrow({i32T(), i32T()}, {i32T()})), {},
      {getLocal(0, Qual::unr()), getLocal(1, Qual::unr()), addI32()}));
  // f1: [] -> [i32] = f0(2, 3).
  M.Funcs.push_back(function({"main"},
                             FunType::get({}, arrow({}, {i32T()})), {},
                             {iconst(2), iconst(3), call(0)}));
  EXPECT_TRUE(checkModule(M).ok());
}

TEST(Checker, CallArityMismatchRejected) {
  ir::Module M;
  M.Name = "m";
  M.Funcs.push_back(function(
      {}, FunType::get({}, arrow({i32T()}, {i32T()})), {},
      {getLocal(0, Qual::unr())}));
  M.Funcs.push_back(function({}, FunType::get({}, arrow({}, {i32T()})), {},
                             {call(0)}));
  EXPECT_FALSE(checkModule(M).ok());
}

TEST(Checker, PolymorphicIdentity) {
  // ∀ (unr ⪯ α ≲ 64). [α^unr] -> [α^unr], called at i32.
  ir::Module M;
  M.Name = "m";
  FunTypeRef IdTy = FunType::get(
      {Quant::type(Qual::unr(), Size::constant(64), true)},
      arrow({Type(varPT(0), Qual::unr())}, {Type(varPT(0), Qual::unr())}));
  M.Funcs.push_back(function({}, IdTy, {}, {getLocal(0, Qual::unr())}));
  M.Funcs.push_back(function(
      {"main"}, FunType::get({}, arrow({}, {i32T()})), {},
      {iconst(7), call(0, {Index::pretype(numPT(NumType::I32))})}));
  EXPECT_TRUE(checkModule(M).ok()) << checkModule(M).error().message();
}

TEST(Checker, InstantiationSizeBoundViolationRejected) {
  ir::Module M;
  M.Name = "m";
  FunTypeRef IdTy = FunType::get(
      {Quant::type(Qual::unr(), Size::constant(32), true)},
      arrow({Type(varPT(0), Qual::unr())}, {Type(varPT(0), Qual::unr())}));
  M.Funcs.push_back(function({}, IdTy, {}, {getLocal(0, Qual::unr())}));
  // i64 has size 64 > 32: rejected.
  M.Funcs.push_back(function(
      {}, FunType::get({}, arrow({}, {i64T()})), {},
      {i64const(7), call(0, {Index::pretype(numPT(NumType::I64))})}));
  EXPECT_FALSE(checkModule(M).ok());
}

TEST(Checker, FunctionMayNotDuplicateLinearParam) {
  // The RichWasm-level essence of Fig 1's stash: a function that returns
  // its linear argument twice cannot typecheck.
  ir::Module M;
  M.Name = "m";
  Type Lin = linCellRef();
  M.Funcs.push_back(function(
      {}, FunType::get({}, arrow({Lin}, {Lin, Lin})), {},
      {getLocal(0, Qual::lin()), getLocal(0, Qual::lin())}));
  auto S = checkModule(M);
  ASSERT_FALSE(S.ok());
}

TEST(Checker, FunctionMayNotLeakLinearParam) {
  // Ending with a linear value still in a local is rejected.
  ir::Module M;
  M.Name = "m";
  Type Lin = linCellRef();
  M.Funcs.push_back(function({}, FunType::get({}, arrow({Lin}, {})), {},
                             {nop()}));
  auto S = checkModule(M);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.error().message().find("linear"), std::string::npos);
}

TEST(Checker, CoderefAndCallIndirect) {
  ir::Module M;
  M.Name = "m";
  M.Funcs.push_back(function(
      {}, FunType::get({}, arrow({i32T()}, {i32T()})), {},
      {getLocal(0, Qual::unr()), iconst(1), addI32()}));
  M.Tab.Entries = {0};
  M.Funcs.push_back(function(
      {"main"}, FunType::get({}, arrow({}, {i32T()})), {},
      {iconst(41), coderef(0), callIndirect()}));
  EXPECT_TRUE(checkModule(M).ok()) << checkModule(M).error().message();
}

TEST(Checker, GlobalsTypePreserving) {
  ir::Module M;
  M.Name = "m";
  ir::Global G;
  G.Mut = true;
  G.P = numPT(NumType::I32);
  G.Init = {iconst(0)};
  M.Globals.push_back(G);
  M.Funcs.push_back(function(
      {}, FunType::get({}, arrow({}, {})), {},
      {getGlobal(0), iconst(1), addI32(), setGlobal(0)}));
  EXPECT_TRUE(checkModule(M).ok()) << checkModule(M).error().message();

  // Writing an i64 into an i32 global is rejected.
  ir::Module Bad = M;
  Bad.Funcs[0] = function({}, FunType::get({}, arrow({}, {})), {},
                          {i64const(1), setGlobal(0)});
  EXPECT_FALSE(checkModule(Bad).ok());
}

TEST(Checker, ReturnChecksLeaks) {
  ir::Module M;
  M.Name = "m";
  Type Lin = linCellRef();
  // return while a linear value is on the stack below the results.
  M.Funcs.push_back(function(
      {}, FunType::get({}, arrow({Lin}, {i32T()})), {},
      {getLocal(0, Qual::lin()), iconst(1), ret()}));
  EXPECT_FALSE(checkModule(M).ok());
}
