//===- tests/wasm_test.cpp - Wasm substrate: validate/run/encode/decode ---===//
//
// Exercises the WebAssembly substrate that §6 lowers into: validation
// (positive and negative), the interpreter (numerics, control flow,
// memory, calls, host functions), and binary round-tripping.
//
//===----------------------------------------------------------------------===//

#include "wasm/Binary.h"
#include "wasm/Interp.h"
#include "wasm/Validate.h"

#include <gtest/gtest.h>

using namespace rw;
using namespace rw::wasm;

namespace {

/// A module with one exported function "f" of the given signature.
WModule oneFunc(FuncType FT, std::vector<ValType> Locals,
                std::vector<WInst> Body) {
  WModule M;
  uint32_t TI = M.addType(std::move(FT));
  M.Funcs.push_back({TI, std::move(Locals), std::move(Body)});
  M.Exports.push_back({"f", ExportKind::Func, 0});
  return M;
}

Expected<std::vector<WValue>> runF(const WModule &M,
                                   std::vector<WValue> Args) {
  WasmInstance Inst(M);
  Status S = Inst.initialize();
  if (!S)
    return S.error();
  return Inst.invokeByName("f", std::move(Args));
}

} // namespace

//===----------------------------------------------------------------------===//
// Validation
//===----------------------------------------------------------------------===//

TEST(WasmValidate, SimpleAddOk) {
  WModule M = oneFunc({{ValType::I32, ValType::I32}, {ValType::I32}}, {},
                      {WInst::idx(Op::LocalGet, 0), WInst::idx(Op::LocalGet, 1),
                       WInst::mk(Op::I32Add)});
  EXPECT_TRUE(validate(M).ok());
}

TEST(WasmValidate, TypeErrorRejected) {
  WModule M = oneFunc({{}, {ValType::I32}}, {},
                      {WInst::i64c(1), WInst::i64c(2), WInst::mk(Op::I32Add)});
  EXPECT_FALSE(validate(M).ok());
}

TEST(WasmValidate, StackUnderflowRejected) {
  WModule M = oneFunc({{}, {ValType::I32}}, {}, {WInst::mk(Op::I32Add)});
  EXPECT_FALSE(validate(M).ok());
}

TEST(WasmValidate, ResultCountRejected) {
  WModule M = oneFunc({{}, {ValType::I32}}, {},
                      {WInst::i32c(1), WInst::i32c(2)});
  EXPECT_FALSE(validate(M).ok());
}

TEST(WasmValidate, BrDepthChecked) {
  WModule M = oneFunc({{}, {}}, {}, {WInst::idx(Op::Br, 5)});
  EXPECT_FALSE(validate(M).ok());
}

TEST(WasmValidate, MemoryOpsNeedMemory) {
  WModule M = oneFunc({{}, {ValType::I32}}, {},
                      {WInst::i32c(0), WInst::mem(Op::I32Load, 2, 0)});
  EXPECT_FALSE(validate(M).ok());
  M.Memory = {{1, std::nullopt}};
  EXPECT_TRUE(validate(M).ok());
}

TEST(WasmValidate, MultiValueBlock) {
  // A block producing two results (multi-value extension).
  FuncType BT{{}, {ValType::I32, ValType::I32}};
  WModule M = oneFunc({{}, {ValType::I32}}, {},
                      {WInst::block(BT, {WInst::i32c(1), WInst::i32c(2)}),
                       WInst::mk(Op::I32Add)});
  EXPECT_TRUE(validate(M).ok()) << validate(M).error().message();
}

TEST(WasmValidate, LocalIndexChecked) {
  WModule M = oneFunc({{}, {ValType::I32}}, {}, {WInst::idx(Op::LocalGet, 3)});
  EXPECT_FALSE(validate(M).ok());
}

TEST(WasmValidate, ImmutableGlobalSetRejected) {
  WModule M = oneFunc({{}, {}}, {},
                      {WInst::i32c(1), WInst::idx(Op::GlobalSet, 0)});
  M.Globals.push_back({ValType::I32, false, {WInst::i32c(0)}});
  EXPECT_FALSE(validate(M).ok());
}

//===----------------------------------------------------------------------===//
// Interpreter
//===----------------------------------------------------------------------===//

TEST(WasmInterp, AddAndCall) {
  WModule M = oneFunc({{ValType::I32, ValType::I32}, {ValType::I32}}, {},
                      {WInst::idx(Op::LocalGet, 0), WInst::idx(Op::LocalGet, 1),
                       WInst::mk(Op::I32Add)});
  auto R = runF(M, {WValue::i32(30), WValue::i32(12)});
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_EQ((*R)[0].asU32(), 42u);
}

TEST(WasmInterp, FactorialLoop) {
  // Iterative factorial using a loop with a local accumulator.
  WModule M = oneFunc(
      {{ValType::I32}, {ValType::I32}}, {ValType::I32},
      {WInst::i32c(1), WInst::idx(Op::LocalSet, 1),
       WInst::block(
           {{}, {}},
           {WInst::loop(
               {{}, {}},
               {// if local0 == 0 break
                WInst::idx(Op::LocalGet, 0), WInst::mk(Op::I32Eqz),
                WInst::idx(Op::BrIf, 1),
                // acc *= n; n -= 1
                WInst::idx(Op::LocalGet, 1), WInst::idx(Op::LocalGet, 0),
                WInst::mk(Op::I32Mul), WInst::idx(Op::LocalSet, 1),
                WInst::idx(Op::LocalGet, 0), WInst::i32c(1),
                WInst::mk(Op::I32Sub), WInst::idx(Op::LocalSet, 0),
                WInst::idx(Op::Br, 0)})}),
       WInst::idx(Op::LocalGet, 1)});
  ASSERT_TRUE(validate(M).ok()) << validate(M).error().message();
  auto R = runF(M, {WValue::i32(6)});
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_EQ((*R)[0].asU32(), 720u);
}

TEST(WasmInterp, MemoryLoadStore) {
  WModule M = oneFunc({{}, {ValType::I32}}, {},
                      {WInst::i32c(16), WInst::i32c(0xabcd),
                       WInst::mem(Op::I32Store, 2, 0), WInst::i32c(16),
                       WInst::mem(Op::I32Load, 2, 0)});
  M.Memory = {{1, std::nullopt}};
  auto R = runF(M, {});
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_EQ((*R)[0].asU32(), 0xabcdu);
}

TEST(WasmInterp, OutOfBoundsTraps) {
  WModule M = oneFunc({{}, {ValType::I32}}, {},
                      {WInst::i32c(0x7fffffff), WInst::mem(Op::I32Load, 2, 0)});
  M.Memory = {{1, std::nullopt}};
  auto R = runF(M, {});
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().message().find("bounds"), std::string::npos);
}

TEST(WasmInterp, MemoryGrow) {
  WModule M = oneFunc({{}, {ValType::I32}}, {},
                      {WInst::i32c(2), WInst::mk(Op::MemoryGrow), WInst::mk(Op::Drop),
                       WInst::mk(Op::MemorySize)});
  M.Memory = {{1, std::nullopt}};
  auto R = runF(M, {});
  ASSERT_TRUE(bool(R));
  EXPECT_EQ((*R)[0].asU32(), 3u);
}

TEST(WasmInterp, CallIndirectSignatureCheck) {
  WModule M;
  uint32_t TAdd = M.addType({{ValType::I32, ValType::I32}, {ValType::I32}});
  uint32_t TNul = M.addType({{}, {ValType::I32}});
  M.Funcs.push_back({TAdd,
                     {},
                     {WInst::idx(Op::LocalGet, 0), WInst::idx(Op::LocalGet, 1),
                      WInst::mk(Op::I32Add)}});
  M.TableElems = {0};
  // Call through the table with the wrong signature: must trap.
  WInst CI = WInst::idx(Op::CallIndirect, TNul);
  M.Funcs.push_back({TNul, {}, {WInst::i32c(0), CI}});
  M.Exports.push_back({"f", ExportKind::Func, 1});
  auto R = runF(M, {});
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().message().find("signature"), std::string::npos);
}

TEST(WasmInterp, HostFunctionImport) {
  WModule M;
  uint32_t T1 = M.addType({{ValType::I32}, {ValType::I32}});
  M.ImportFuncs.push_back({"env", "double", T1});
  M.Funcs.push_back({T1, {}, {WInst::idx(Op::LocalGet, 0),
                              WInst::idx(Op::Call, 0)}});
  M.Exports.push_back({"f", ExportKind::Func, 1});
  WasmInstance Inst(M);
  Inst.registerHost("env", "double",
                    [](Instance &, const std::vector<WValue> &Args)
                        -> Expected<std::vector<WValue>> {
                      return std::vector<WValue>{
                          WValue::i32(Args[0].asU32() * 2)};
                    });
  ASSERT_TRUE(Inst.initialize().ok());
  auto R = Inst.invokeByName("f", {WValue::i32(21)});
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_EQ((*R)[0].asU32(), 42u);
}

TEST(WasmInterp, DivideByZeroTraps) {
  WModule M = oneFunc({{}, {ValType::I32}}, {},
                      {WInst::i32c(1), WInst::i32c(0), WInst::mk(Op::I32DivS)});
  auto R = runF(M, {});
  ASSERT_FALSE(bool(R));
}

TEST(WasmInterp, GlobalsAndStart) {
  WModule M;
  uint32_t T0 = M.addType({{}, {}});
  uint32_t T1 = M.addType({{}, {ValType::I32}});
  M.Globals.push_back({ValType::I32, true, {WInst::i32c(5)}});
  M.Funcs.push_back({T0,
                     {},
                     {WInst::idx(Op::GlobalGet, 0), WInst::i32c(2),
                      WInst::mk(Op::I32Mul), WInst::idx(Op::GlobalSet, 0)}});
  M.Funcs.push_back({T1, {}, {WInst::idx(Op::GlobalGet, 0)}});
  M.Start = 0;
  M.Exports.push_back({"f", ExportKind::Func, 1});
  auto R = runF(M, {});
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_EQ((*R)[0].asU32(), 10u);
}

TEST(WasmInterp, InstrCountIsMeasured) {
  WModule M = oneFunc({{}, {ValType::I32}}, {},
                      {WInst::i32c(1), WInst::i32c(2), WInst::mk(Op::I32Add)});
  WasmInstance Inst(M);
  ASSERT_TRUE(Inst.initialize().ok());
  ASSERT_TRUE(bool(Inst.invokeByName("f", {})));
  EXPECT_EQ(Inst.instrCount(), 3u);
}

//===----------------------------------------------------------------------===//
// Binary round-trip
//===----------------------------------------------------------------------===//

TEST(WasmBinary, RoundTripPreservesBehaviour) {
  WModule M = oneFunc(
      {{ValType::I32}, {ValType::I32}}, {ValType::I64},
      {WInst::idx(Op::LocalGet, 0), WInst::i32c(3), WInst::mk(Op::I32Add),
       WInst::block({{}, {ValType::I32}},
                    {WInst::i32c(10), WInst::idx(Op::Br, 0)}),
       WInst::mk(Op::I32Mul)});
  M.Memory = {{1, {2}}};
  M.Data.push_back({8, {1, 2, 3, 4}});
  std::vector<uint8_t> Bytes = encode(M);
  ASSERT_FALSE(Bytes.empty());
  EXPECT_EQ(Bytes[0], 0u);
  EXPECT_EQ(Bytes[1], 'a');

  Expected<WModule> M2 = decode(Bytes);
  ASSERT_TRUE(bool(M2)) << M2.error().message();
  EXPECT_TRUE(validate(*M2).ok()) << validate(*M2).error().message();

  auto R1 = runF(M, {WValue::i32(4)});
  auto R2 = runF(*M2, {WValue::i32(4)});
  ASSERT_TRUE(bool(R1));
  ASSERT_TRUE(bool(R2));
  EXPECT_EQ((*R1)[0].Bits, (*R2)[0].Bits);
  EXPECT_EQ((*R1)[0].asU32(), 70u);
}

TEST(WasmBinary, RoundTripImportsExportsTable) {
  WModule M;
  uint32_t T1 = M.addType({{ValType::I32}, {ValType::I32}});
  M.ImportFuncs.push_back({"env", "h", T1});
  M.Funcs.push_back({T1, {}, {WInst::idx(Op::LocalGet, 0)}});
  M.TableElems = {1};
  M.Exports.push_back({"f", ExportKind::Func, 1});
  M.Globals.push_back({ValType::I64, true, {WInst::i64c(7)}});

  Expected<WModule> M2 = decode(encode(M));
  ASSERT_TRUE(bool(M2)) << M2.error().message();
  EXPECT_EQ(M2->ImportFuncs.size(), 1u);
  EXPECT_EQ(M2->ImportFuncs[0].Mod, "env");
  EXPECT_EQ(M2->Funcs.size(), 1u);
  EXPECT_EQ(M2->TableElems.size(), 1u);
  EXPECT_EQ(M2->Exports.size(), 1u);
  EXPECT_EQ(M2->Globals.size(), 1u);
  EXPECT_EQ(M2->Globals[0].Init[0].U64, 7u);
}

TEST(WasmBinary, MultiValueBlockTypeRoundTrips) {
  FuncType BT{{ValType::I32}, {ValType::I32, ValType::I32}};
  WModule M = oneFunc({{}, {ValType::I32}}, {},
                      {WInst::i32c(5),
                       WInst::block(BT, {WInst::i32c(1)}),
                       WInst::mk(Op::I32Add)});
  Expected<WModule> M2 = decode(encode(M));
  ASSERT_TRUE(bool(M2)) << M2.error().message();
  auto R = runF(*M2, {});
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_EQ((*R)[0].asU32(), 6u);
}

TEST(WasmBinary, DecodeRejectsGarbage) {
  EXPECT_FALSE(bool(decode({0x01, 0x02, 0x03})));
  EXPECT_FALSE(bool(decode({0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00,
                            0x01, 0xff})));
}

TEST(WasmBinary, WatPrinterRenders) {
  WModule M = oneFunc({{ValType::I32}, {ValType::I32}}, {},
                      {WInst::idx(Op::LocalGet, 0), WInst::i32c(1),
                       WInst::mk(Op::I32Add)});
  std::string S = printWat(M);
  EXPECT_NE(S.find("module"), std::string::npos);
  EXPECT_NE(S.find("i32.add"), std::string::npos);
}
