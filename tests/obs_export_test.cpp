//===- tests/obs_export_test.cpp - Exporters, timeline, sampling ----------===//
//
// Part of the RichWasm reproduction. MIT license.
//
// The server-grade half of the obs layer (PR 9, DESIGN.md §13):
//
//  * Prometheus text exposition — a golden-file test over a hand-built
//    snapshot (counter/gauge/cumulative-le histogram), label lifting for
//    uniquified sources ("cache#2" → instance) and shard segments
//    ("shard3" → shard label), label-value escaping, and a promtool-style
//    line lint over the live registry's exposition;
//  * obs::Timeline — delta correctness, ring wraparound folding evicted
//    deltas into base(), the reconciliation invariant
//    base() + Σdeltas() == latest() (mod 2^64) under 8-thread counter
//    contention, and the background sampler's start/stop lifetime;
//  * head-sampled tracing — traceSampleSelect is a pure function of the
//    content hash (deterministic, ~1/N rate), so the set of traced
//    admissions through ingest::admit is identical for pool sizes 1/3/8.
//
// Under -DRW_OBS=OFF only the stub-contract checks remain: every symbol
// this file exercises must still link and collapse to its inert form.
//
//===----------------------------------------------------------------------===//

#include "obs/Obs.h"
#include "obs/Timeline.h"

#include "bench/Common.h"
#include "ingest/Ingest.h"
#include "serial/Serial.h"
#include "support/Hashing.h"

#include <gtest/gtest.h>

#include <cctype>
#include <sstream>
#include <thread>
#include <vector>

using namespace rw;

namespace {

/// base() + Σdeltas() == latest(), per key, mod 2^64. Keys absent from a
/// map contribute 0 (a metric born after construction has no base).
void expectReconciles(const obs::Timeline &T) {
  std::map<std::string, uint64_t> Acc = T.base();
  for (const obs::TimelineDelta &D : T.deltas())
    for (const auto &KV : D.Changes)
      Acc[KV.first] += KV.second; // Wrapping on purpose.
  std::map<std::string, uint64_t> Latest = T.latest();
  for (const auto &KV : Latest)
    EXPECT_EQ(Acc[KV.first], KV.second) << KV.first;
  for (const auto &KV : Acc)
    EXPECT_EQ(Latest.count(KV.first), 1u) << KV.first;
}

} // namespace

#if RW_OBS_ENABLED

namespace {

obs::Metric counterM(const char *Name, uint64_t V) {
  obs::Metric M;
  M.Name = Name;
  M.Kind = obs::MetricKind::Counter;
  M.Value = V;
  return M;
}

obs::Metric gaugeM(const char *Name, uint64_t V) {
  obs::Metric M = counterM(Name, V);
  M.Kind = obs::MetricKind::Gauge;
  return M;
}

/// A histogram metric with samples placed by value (bucketed exactly as
/// Histogram::record would).
obs::Metric histM(const char *Name,
                  const std::vector<std::pair<uint64_t, uint64_t>> &Samples) {
  obs::Metric M;
  M.Name = Name;
  M.Kind = obs::MetricKind::Histogram;
  M.Buckets.assign(obs::HistBucketCount, 0);
  for (const auto &VC : Samples) {
    M.Buckets[obs::histBucketIndex(VC.first)] += VC.second;
    M.Value += VC.second;
    M.Sum += VC.first * VC.second;
  }
  return M;
}

} // namespace

TEST(ObsExport, PrometheusGoldenExposition) {
  obs::Snapshot S;
  S.Metrics.push_back(counterM("ingest.admit.ok", 7));
  S.Metrics.push_back(gaugeM("arena.bytes", 4096));
  // 60 samples at 5 (exact bucket 5) and 40 at 650 (bucket [640, 671]).
  S.Metrics.push_back(histM("admission.ns", {{5, 60}, {650, 40}}));
  S.Metrics.push_back(counterM("cache#2.shard0.hits", 11));
  S.Metrics.push_back(counterM("cache#2.shard1.hits", 13));

  const char *Golden = "# TYPE rw_ingest_admit_ok counter\n"
                       "rw_ingest_admit_ok 7\n"
                       "# TYPE rw_arena_bytes gauge\n"
                       "rw_arena_bytes 4096\n"
                       "# TYPE rw_admission_ns histogram\n"
                       "rw_admission_ns_bucket{le=\"5\"} 60\n"
                       "rw_admission_ns_bucket{le=\"671\"} 100\n"
                       "rw_admission_ns_bucket{le=\"+Inf\"} 100\n"
                       "rw_admission_ns_sum 26300\n"
                       "rw_admission_ns_count 100\n"
                       "# TYPE rw_cache_hits counter\n"
                       "rw_cache_hits{instance=\"cache#2\",shard=\"0\"} 11\n"
                       "rw_cache_hits{instance=\"cache#2\",shard=\"1\"} 13\n";
  EXPECT_EQ(obs::renderPrometheus(S), Golden);
}

TEST(ObsExport, PrometheusHistogramLabelsMergeWithLe) {
  obs::Snapshot S;
  S.Metrics.push_back(histM("jit#4.compile.ns", {{3, 2}}));
  const char *Golden =
      "# TYPE rw_jit_compile_ns histogram\n"
      "rw_jit_compile_ns_bucket{instance=\"jit#4\",le=\"3\"} 2\n"
      "rw_jit_compile_ns_bucket{instance=\"jit#4\",le=\"+Inf\"} 2\n"
      "rw_jit_compile_ns_sum{instance=\"jit#4\"} 6\n"
      "rw_jit_compile_ns_count{instance=\"jit#4\"} 2\n";
  EXPECT_EQ(obs::renderPrometheus(S), Golden);
}

TEST(ObsExport, PrometheusLabelValuesAreEscaped) {
  obs::Snapshot S;
  S.Metrics.push_back(counterM("src\"x#1.hits", 3));
  std::string Out = obs::renderPrometheus(S);
  // The uniquified first segment is lifted verbatim into the instance
  // label (escaped); the base name is sanitized.
  EXPECT_NE(Out.find("rw_src_x_hits{instance=\"src\\\"x#1\"} 3\n"),
            std::string::npos)
      << Out;
}

TEST(ObsExport, PrometheusInfStaysMonotoneWhenCountLagsBuckets) {
  // A racing snapshot can see the count word behind the bucket sums; the
  // +Inf series must still be >= the last le series.
  obs::Metric M = histM("racy.ns", {{5, 10}});
  M.Value = 4; // Torn read: buckets say 10, count says 4.
  obs::Snapshot S;
  S.Metrics.push_back(M);
  std::string Out = obs::renderPrometheus(S);
  EXPECT_NE(Out.find("rw_racy_ns_bucket{le=\"+Inf\"} 10\n"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("rw_racy_ns_count 4\n"), std::string::npos) << Out;
}

namespace {

/// A promtool-style line lint: every line is either a # TYPE declaration
/// or `<name>[{label="value",...}] <uint64>`.
void lintExposition(const std::string &Text) {
  auto validName = [](const std::string &N) {
    if (N.empty() || std::isdigit(static_cast<unsigned char>(N[0])))
      return false;
    for (char C : N)
      if (!(std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
            C == ':'))
        return false;
    return true;
  };
  std::istringstream In(Text);
  std::string Line;
  while (std::getline(In, Line)) {
    ASSERT_FALSE(Line.empty());
    if (Line.rfind("# TYPE ", 0) == 0) {
      std::istringstream L(Line);
      std::string Hash, Type, Name, Kind, Extra;
      L >> Hash >> Type >> Name >> Kind;
      EXPECT_TRUE(validName(Name)) << Line;
      EXPECT_TRUE(Kind == "counter" || Kind == "gauge" || Kind == "histogram")
          << Line;
      EXPECT_FALSE(L >> Extra) << Line;
      continue;
    }
    size_t Sp = Line.rfind(' ');
    ASSERT_NE(Sp, std::string::npos) << Line;
    std::string Series = Line.substr(0, Sp);
    std::string Val = Line.substr(Sp + 1);
    EXPECT_FALSE(Val.empty()) << Line;
    EXPECT_EQ(Val.find_first_not_of("0123456789"), std::string::npos) << Line;
    size_t Brace = Series.find('{');
    std::string Name = Series.substr(0, Brace);
    EXPECT_TRUE(validName(Name)) << Line;
    if (Brace != std::string::npos) {
      ASSERT_EQ(Series.back(), '}') << Line;
      std::string Labels = Series.substr(Brace + 1, Series.size() - Brace - 2);
      // Each label is key="value"; values may contain escaped quotes.
      size_t Pos = 0;
      while (Pos < Labels.size()) {
        size_t Eq = Labels.find('=', Pos);
        ASSERT_NE(Eq, std::string::npos) << Line;
        ASSERT_LT(Eq + 1, Labels.size()) << Line;
        ASSERT_EQ(Labels[Eq + 1], '"') << Line;
        size_t End = Eq + 2;
        while (End < Labels.size() &&
               !(Labels[End] == '"' && Labels[End - 1] != '\\'))
          ++End;
        ASSERT_LT(End, Labels.size()) << Line;
        Pos = End + 1;
        if (Pos < Labels.size()) {
          ASSERT_EQ(Labels[Pos], ',') << Line;
          ++Pos;
        }
      }
    }
  }
}

} // namespace

TEST(ObsExport, PrometheusLiveRegistryPassesLint) {
  obs::setEnabled(true);
  static obs::Counter C("export_test.lint.hits");
  static obs::Histogram H("export_test.lint.ns");
  C.add(3);
  for (uint64_t V : {1ull, 70ull, 5000ull, 123456789ull})
    H.record(V);
  std::string Out = obs::renderPrometheus(obs::snapshot());
  ASSERT_FALSE(Out.empty());
  lintExposition(Out);
  EXPECT_NE(Out.find("# TYPE rw_export_test_lint_ns histogram\n"),
            std::string::npos);
  EXPECT_NE(Out.find("rw_export_test_lint_hits"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Timeline
//===----------------------------------------------------------------------===//

TEST(ObsTimeline, DeltasCaptureChangesAndReconcile) {
  obs::setEnabled(true);
  static obs::Counter C("export_test.tl.basic");
  C.add(1); // Ensure the slot exists before the baseline.
  obs::Timeline T({/*IntervalMs=*/60000, /*Capacity=*/16});
  C.add(5);
  T.sampleNow();
  ASSERT_EQ(T.sampleCount(), 1u);
  std::vector<obs::TimelineDelta> Ds = T.deltas();
  ASSERT_EQ(Ds.size(), 1u);
  EXPECT_EQ(Ds[0].Seq, 1u);
  EXPECT_GE(Ds[0].T1Ns, Ds[0].T0Ns);
  uint64_t Seen = 0;
  for (const auto &KV : Ds[0].Changes)
    if (KV.first == "export_test.tl.basic")
      Seen = KV.second;
  EXPECT_EQ(Seen, 5u);
  expectReconciles(T);
  // An idle interval still produces a (possibly empty for this key) delta
  // and keeps the invariant.
  T.sampleNow();
  EXPECT_EQ(T.sampleCount(), 2u);
  expectReconciles(T);
}

TEST(ObsTimeline, HistogramsReduceToScalarViews) {
  obs::setEnabled(true);
  static obs::Histogram H("export_test.tl.hist");
  H.record(1); // Materialize before baseline.
  obs::Timeline T({60000, 16});
  H.record(10);
  H.record(30);
  T.sampleNow();
  std::map<std::string, uint64_t> Latest = T.latest();
  ASSERT_TRUE(Latest.count("export_test.tl.hist.count"));
  ASSERT_TRUE(Latest.count("export_test.tl.hist.sum"));
  std::vector<obs::TimelineDelta> Ds = T.deltas();
  uint64_t DCount = 0, DSum = 0;
  for (const auto &KV : Ds[0].Changes) {
    if (KV.first == "export_test.tl.hist.count")
      DCount = KV.second;
    if (KV.first == "export_test.tl.hist.sum")
      DSum = KV.second;
  }
  EXPECT_EQ(DCount, 2u);
  EXPECT_EQ(DSum, 40u);
}

TEST(ObsTimeline, WraparoundFoldsEvictedDeltasIntoBase) {
  obs::setEnabled(true);
  static obs::Counter C("export_test.tl.wrap");
  C.add(1);
  obs::Timeline T({60000, /*Capacity=*/3});
  uint64_t BaseAtBirth = T.base()["export_test.tl.wrap"];
  for (unsigned I = 0; I < 8; ++I) {
    C.add(I + 1);
    T.sampleNow();
  }
  EXPECT_EQ(T.sampleCount(), 8u);
  EXPECT_EQ(T.deltas().size(), 3u);
  EXPECT_EQ(T.dropped(), 5u);
  // Evicted deltas (1+2+3+4+5 = 15) live on in base().
  EXPECT_EQ(T.base()["export_test.tl.wrap"], BaseAtBirth + 15);
  expectReconciles(T);
  std::string J = T.exportJson();
  EXPECT_NE(J.find("\"dropped\":5"), std::string::npos) << J;
  EXPECT_NE(J.find("\"samples\":8"), std::string::npos) << J;
}

TEST(ObsTimeline, ReconcilesUnderEightThreadContention) {
  obs::setEnabled(true);
  static obs::Counter C("export_test.tl.contend");
  static obs::Histogram H("export_test.tl.contend.ns");
  C.add(1);
  H.record(1);
  obs::Timeline T({60000, /*Capacity=*/4}); // Small ring: force eviction.
  std::vector<std::thread> Threads;
  for (unsigned W = 0; W < 8; ++W)
    Threads.emplace_back([W] {
      for (unsigned I = 0; I < 2000; ++I) {
        C.add(1);
        H.record(W * 100 + I % 37);
      }
    });
  for (unsigned I = 0; I < 12; ++I)
    T.sampleNow(); // Concurrent with the writers.
  for (std::thread &Th : Threads)
    Th.join();
  T.sampleNow(); // Quiescent final sample.
  expectReconciles(T);
  EXPECT_EQ(T.latest()["export_test.tl.contend"], 1u + 8u * 2000u);
  EXPECT_EQ(T.latest()["export_test.tl.contend.ns.count"], 1u + 8u * 2000u);
  EXPECT_GT(T.dropped(), 0u);
}

TEST(ObsTimeline, BackgroundSamplerStartStop) {
  obs::setEnabled(true);
  static obs::Counter C("export_test.tl.bg");
  C.add(1);
  obs::Timeline T({/*IntervalMs=*/2, /*Capacity=*/64});
  T.start();
  T.start(); // Idempotent.
  C.add(41);
  // The sampler fires every 2ms; wait for at least one tick.
  for (unsigned I = 0; I < 500 && T.sampleCount() == 0; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  T.stop();
  T.stop(); // Idempotent.
  EXPECT_GE(T.sampleCount(), 1u);
  expectReconciles(T);
  uint64_t Count = T.sampleCount();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(T.sampleCount(), Count) << "sampler kept running after stop()";
}

//===----------------------------------------------------------------------===//
// Head-sampled tracing
//===----------------------------------------------------------------------===//

TEST(ObsSampling, SelectIsDeterministicWithExpectedRate) {
  obs::setTraceSampling(4);
  ASSERT_EQ(obs::traceSampling(), 4u);
  unsigned Selected = 0;
  uint64_t H = 0x9e3779b97f4a7c15ull;
  for (unsigned I = 0; I < 100000; ++I) {
    H = support::mix64(H + I);
    bool S1 = obs::traceSampleSelect(H);
    EXPECT_EQ(S1, obs::traceSampleSelect(H)); // Pure function of the hash.
    Selected += S1;
  }
  // ~1/4 of 100k; a generous 20% relative band.
  EXPECT_GT(Selected, 20000u);
  EXPECT_LT(Selected, 30000u);
  // N <= 1 means "trace everything".
  obs::setTraceSampling(0);
  EXPECT_EQ(obs::traceSampling(), 1u);
  EXPECT_TRUE(obs::traceSampleSelect(12345));
  obs::setTraceSampling(1);
}

TEST(ObsSampling, SameAdmissionsTracedAcrossPoolSizes) {
  obs::setEnabled(true);
  obs::setTracing(true);
  obs::setTraceSampling(3);

  // Distinct inputs → distinct content hashes → a fixed selected subset.
  std::vector<std::vector<uint8_t>> Inputs;
  for (unsigned I = 0; I < 24; ++I)
    Inputs.push_back(serial::write(rwbench::loopModule(3 + I)));
  unsigned Expected = 0;
  for (const auto &B : Inputs)
    Expected += obs::traceSampleSelect(support::fnv1a(B.data(), B.size()));
  ASSERT_GT(Expected, 0u) << "degenerate sample: bump the input count";
  ASSERT_LT(Expected, Inputs.size()) << "degenerate sample: nothing dropped";

  auto countTraced = [] {
    std::string J = obs::traceJson();
    size_t N = 0, Pos = 0;
    while ((Pos = J.find("\"ingest_admit\"", Pos)) != std::string::npos) {
      ++N;
      ++Pos;
    }
    return N;
  };

  for (unsigned Pool : {1u, 3u, 8u}) {
    obs::clearTrace();
    std::vector<std::thread> Threads;
    for (unsigned W = 0; W < Pool; ++W)
      Threads.emplace_back([&Inputs, W, Pool] {
        for (size_t I = W; I < Inputs.size(); I += Pool) {
          auto A = ingest::admit(Inputs[I]);
          ASSERT_TRUE(A) << A.error().message();
        }
      });
    for (std::thread &T : Threads)
      T.join();
    EXPECT_EQ(countTraced(), Expected) << "pool size " << Pool;
  }

  obs::setTraceSampling(1);
  obs::setTracing(false);
  obs::clearTrace();
}

TEST(ObsSampling, SuppressedSpansStillFeedHistograms) {
  obs::setEnabled(true);
  obs::setTracing(true);
  obs::setTraceSampling(1ull << 62); // Select (almost) nothing.
  obs::clearTrace();
  std::vector<uint8_t> B = serial::write(rwbench::loopModule(5));
  uint64_t CountBefore = 0, CountAfter = 0;
  for (const obs::Metric &M : obs::snapshot().Metrics)
    if (M.Name == "phase.ingest_admit.ns")
      CountBefore = M.Value;
  ASSERT_TRUE(ingest::admit(B));
  for (const obs::Metric &M : obs::snapshot().Metrics)
    if (M.Name == "phase.ingest_admit.ns")
      CountAfter = M.Value;
  // The span histogram records even for suppressed threads — metric
  // totals must reconcile with request counts regardless of sampling.
  EXPECT_EQ(CountAfter, CountBefore + 1);
  std::string J = obs::traceJson();
  EXPECT_EQ(J.find("\"ingest_admit\""), std::string::npos)
      << "suppressed admission leaked a ring event";
  obs::setTraceSampling(1);
  obs::setTracing(false);
  obs::clearTrace();
}

#else // !RW_OBS_ENABLED — stub contract for the exporter surface.

TEST(ObsExportOff, ExportersCollapse) {
  EXPECT_EQ(obs::renderPrometheus(obs::Snapshot{}), "");
  obs::Timeline T;
  T.start();
  T.sampleNow();
  T.stop();
  EXPECT_EQ(T.sampleCount(), 0u);
  EXPECT_EQ(T.dropped(), 0u);
  EXPECT_TRUE(T.deltas().empty());
  EXPECT_TRUE(T.base().empty());
  EXPECT_TRUE(T.latest().empty());
  EXPECT_EQ(T.exportJson(), "{\"timeline\":{}}");
  expectReconciles(T);
}

TEST(ObsExportOff, SamplingCollapses) {
  obs::setTraceSampling(16);
  EXPECT_EQ(obs::traceSampling(), 1u);
  EXPECT_TRUE(obs::traceSampleSelect(7));
  {
    obs::TraceSampleScope S(false);
    EXPECT_FALSE(obs::traceSampleActive());
  }
  EXPECT_EQ(obs::traceDroppedCount(), 0u);
  // Admissions still work with the whole layer compiled out.
  std::vector<uint8_t> B = serial::write(rwbench::loopModule(5));
  EXPECT_TRUE(ingest::admit(B));
}

#endif // RW_OBS_ENABLED
