//===- tests/obs_test.cpp - Observability layer correctness ---------------===//
//
// Pins the obs subsystem (DESIGN.md §10) along four axes:
//
//   * sharded counter / histogram arithmetic stays exact under 8-thread
//     contention (the whole point of per-thread banks is that nothing is
//     lost to races);
//   * the span *set* a pooled checkModules emits is deterministic across
//     pool sizes 1/3/8, every span nests inside the batch umbrella, and
//     worker threads show up in the trace under their stable pool-N names;
//   * per-function execution profiles agree exactly between the tree and
//     flat engines and are visible through obs::snapshot();
//   * under -DRW_OBS=OFF every entry point collapses to a stub (the
//     compile-out half of this file replaces the contention suite), and
//     CI's nm check pins that Obs.cpp contributes zero code.
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"

#include "cache/AdmissionCache.h"
#include "obs/Obs.h"
#include "obs/Timeline.h"
#include "support/ThreadPool.h"
#include "typing/Checker.h"
#include "wasm/Interp.h"
#include "wasm/Validate.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>
#include <vector>

using namespace rw;
using rwbench::AdmissionSet;

namespace {

/// Finds a metric by exact name in a snapshot; null when absent.
const obs::Metric *find(const obs::Snapshot &S, const std::string &Name) {
  for (const obs::Metric &M : S.Metrics)
    if (M.Name == Name)
      return &M;
  return nullptr;
}

} // namespace

//===----------------------------------------------------------------------===//
// Profile counters: saturation + reset. These pin the tier-up substrate
// regardless of RW_OBS — the JIT's hotness heuristic reads these words.
//===----------------------------------------------------------------------===//

TEST(ObsProfile, CounterSaturatesAtMaxInsteadOfWrapping) {
  wasm::ProfileCounter C;
  EXPECT_EQ(C.load(), 0u);
  ++C;
  EXPECT_EQ(C.load(), 1u);

  // One tick below the ceiling: a bump reaches exactly UINT64_MAX.
  C = UINT64_MAX - 1;
  ++C;
  EXPECT_EQ(C.load(), UINT64_MAX);

  // At the ceiling: further bumps pin, never wrap to 0. A wrapped
  // counter would drop a hot function back under the tier-up threshold.
  ++C;
  ++C;
  EXPECT_EQ(C.load(), UINT64_MAX);

  // Copy preserves the pinned value; assignment can bring it back down.
  wasm::ProfileCounter D(C);
  EXPECT_EQ(static_cast<uint64_t>(D), UINT64_MAX);
  D = 7;
  EXPECT_EQ(D.load(), 7u);
}

TEST(ObsProfile, ResetProfilesZeroesEveryRow) {
  using namespace rw::wasm;
  WModule M;
  uint32_t TV = M.addType({{}, {}});
  M.Funcs.push_back(
      {TV,
       {ValType::I32},
       {WInst::block({{}, {}},
                     {WInst::loop({{}, {}},
                                  {WInst::idx(Op::LocalGet, 0), WInst::i32c(1),
                                   WInst::mk(Op::I32Add),
                                   WInst::idx(Op::LocalTee, 0), WInst::i32c(3),
                                   WInst::mk(Op::I32LtS),
                                   WInst::idx(Op::BrIf, 0)})})}});
  M.Exports.push_back({"f", ExportKind::Func, 0});
  ASSERT_TRUE(validate(M).ok());

  auto I = createInstance(M, EngineKind::Flat);
  I->enableProfiling();
  ASSERT_TRUE(I->initialize().ok());
  ASSERT_TRUE(bool(I->invokeByName("f", {})));
  ASSERT_EQ(I->functionProfiles().size(), 1u);
  EXPECT_EQ(I->functionProfiles()[0].Invocations, 1u);
  EXPECT_EQ(I->functionProfiles()[0].LoopHeads, 3u);

  I->resetProfiles();
  EXPECT_EQ(I->functionProfiles()[0].Invocations, 0u);
  EXPECT_EQ(I->functionProfiles()[0].LoopHeads, 0u);

  // Counters keep working after a reset — the table is reused, not torn
  // down, so a workload shift can re-trigger tiering.
  ASSERT_TRUE(bool(I->invokeByName("f", {})));
  EXPECT_EQ(I->functionProfiles()[0].Invocations, 1u);
  EXPECT_EQ(I->functionProfiles()[0].LoopHeads, 3u);
}

#if RW_OBS_ENABLED

static_assert(obs::compiledIn(), "ON build must report compiledIn()");

namespace {

/// One parsed duration event from traceJson() output.
struct Ev {
  uint64_t Tid;
  std::string Name;
  double Ts, Dur; ///< Microseconds.
};

/// Minimal parser for the trace_event JSON this repo emits: every
/// duration event is written by one snprintf with a fixed field order
/// (ph,name,cat,pid,tid,ts,dur), so scanning for the prefix is exact.
std::vector<Ev> parseTrace(const std::string &J) {
  std::vector<Ev> Out;
  const std::string Prefix = "{\"ph\":\"X\",\"name\":\"";
  size_t At = 0;
  while ((At = J.find(Prefix, At)) != std::string::npos) {
    At += Prefix.size();
    size_t End = J.find('"', At);
    Ev E;
    E.Name = J.substr(At, End - At);
    size_t P = J.find("\"tid\":", End);
    E.Tid = std::strtoull(J.c_str() + P + 6, nullptr, 10);
    P = J.find("\"ts\":", End);
    E.Ts = std::strtod(J.c_str() + P + 5, nullptr);
    P = J.find("\"dur\":", End);
    E.Dur = std::strtod(J.c_str() + P + 6, nullptr);
    Out.push_back(std::move(E));
    At = End;
  }
  return Out;
}

/// RAII: turn span timing + tracing on for one test, restore off after.
struct TracingOn {
  TracingOn() {
    obs::setEnabled(true);
    obs::setTracing(true);
    obs::clearTrace();
  }
  ~TracingOn() {
    obs::setTracing(false);
    obs::setEnabled(false);
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Sharded metric arithmetic under contention
//===----------------------------------------------------------------------===//

TEST(Obs, CounterExactUnder8ThreadContention) {
  static obs::Counter C("test.contended_counter");
  uint64_t Before = C.value();
  constexpr unsigned Threads = 8, PerThread = 50000;
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < Threads; ++T)
    Ts.emplace_back([] {
      static obs::Counter Same("test.contended_counter"); // Shares the slot.
      for (unsigned I = 0; I < PerThread; ++I)
        Same.add(1 + (I & 3)); // Mixed increments: 1+2+3+4 per 4 adds.
    });
  for (std::thread &T : Ts)
    T.join();
  uint64_t Added = uint64_t(Threads) * (PerThread / 4) * 10;
  EXPECT_EQ(C.value(), Before + Added);

  obs::Snapshot S = obs::snapshot();
  const obs::Metric *M = find(S, "test.contended_counter");
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->Kind, obs::MetricKind::Counter);
  EXPECT_EQ(M->Value, Before + Added);
}

TEST(Obs, HistogramCountSumAndBucketsUnderContention) {
  static obs::Histogram H("test.contended_hist");
  // Samples chosen so each lands in a distinct sub-bucket (the first
  // three are exact single-value buckets below 16).
  static constexpr uint64_t Samples[] = {1, 2, 4, 1000000};
  constexpr unsigned Threads = 8, Rounds = 10000;
  std::vector<std::thread> Ts;
  for (unsigned T = 0; T < Threads; ++T)
    Ts.emplace_back([] {
      for (unsigned I = 0; I < Rounds; ++I)
        for (uint64_t S : Samples)
          H.record(S);
    });
  for (std::thread &T : Ts)
    T.join();

  obs::Snapshot S = obs::snapshot();
  const obs::Metric *M = find(S, "test.contended_hist");
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->Kind, obs::MetricKind::Histogram);
  uint64_t N = uint64_t(Threads) * Rounds;
  EXPECT_EQ(M->Value, N * 4);
  EXPECT_EQ(M->Sum, N * (1 + 2 + 4 + 1000000));
  ASSERT_EQ(M->Buckets.size(), obs::HistBucketCount);
  EXPECT_EQ(M->Buckets[obs::histBucketIndex(1)], N);
  EXPECT_EQ(M->Buckets[obs::histBucketIndex(2)], N);
  EXPECT_EQ(M->Buckets[obs::histBucketIndex(4)], N);
  EXPECT_EQ(M->Buckets[obs::histBucketIndex(1000000)], N);
  // The exact buckets really are index == value below 16.
  EXPECT_EQ(obs::histBucketIndex(1), 1u);
  EXPECT_EQ(obs::histBucketIndex(2), 2u);
  EXPECT_EQ(obs::histBucketIndex(4), 4u);
}

TEST(Obs, GaugeKeepsLastValue) {
  static obs::Gauge G("test.gauge");
  G.set(42);
  EXPECT_EQ(G.value(), 42u);
  G.set(7);
  EXPECT_EQ(G.value(), 7u);
  obs::Snapshot S = obs::snapshot();
  const obs::Metric *M = find(S, "test.gauge");
  ASSERT_NE(M, nullptr);
  EXPECT_EQ(M->Kind, obs::MetricKind::Gauge);
  EXPECT_EQ(M->Value, 7u);
}

TEST(Obs, HistBucketArithmetic) {
  // Every bucket's [lo, hi] range round-trips through histBucketIndex,
  // buckets tile the value space in order, and sub-bucket width is at
  // most 1/16 of the bucket's smallest value (the ~6% error bound).
  for (unsigned I = 0; I < obs::HistBucketCount; ++I) {
    uint64_t Lo = obs::histBucketLo(I), Hi = obs::histBucketHi(I);
    ASSERT_LE(Lo, Hi);
    EXPECT_EQ(obs::histBucketIndex(Lo), I);
    EXPECT_EQ(obs::histBucketIndex(Hi), I);
    if (I > 0)
      EXPECT_EQ(obs::histBucketHi(I - 1) + 1, Lo);
    if (Lo >= 16)
      EXPECT_LE(Hi - Lo + 1, Lo / 16);
  }
  EXPECT_EQ(obs::histBucketHi(obs::HistBucketCount - 1), ~0ull);
  // Spot checks: exact below 16, 16-wide linear sub-buckets after.
  EXPECT_EQ(obs::histBucketIndex(0), 0u);
  EXPECT_EQ(obs::histBucketIndex(15), 15u);
  EXPECT_EQ(obs::histBucketLo(obs::histBucketIndex(800)), 800u);
  EXPECT_EQ(obs::histBucketHi(obs::histBucketIndex(800)), 831u);
}

TEST(Obs, HistQuantileInterpolatesWithinBucket) {
  obs::Metric M;
  M.Kind = obs::MetricKind::Histogram;
  M.Buckets.assign(obs::HistBucketCount, 0);
  // 90 samples at value 5 (an exact bucket), 10 at value 800 (a 32-wide
  // sub-bucket, [800, 831]).
  M.Buckets[5] = 90;
  M.Buckets[obs::histBucketIndex(800)] = 10;
  M.Value = 100;
  // Exact-arithmetic pins: a quantile landing in a width-1 bucket is the
  // value itself, not a log2 bound (the old estimator returned 7 here).
  EXPECT_EQ(obs::histQuantile(M, 0.0), 5u);
  EXPECT_EQ(obs::histQuantile(M, 0.5), 5u);
  EXPECT_EQ(obs::histQuantile(M, 0.89), 5u);
  // Interpolated: p99 stays inside the 800-bucket's range instead of
  // snapping to the old log2 upper bound 1023 (~28% high).
  uint64_t P99 = obs::histQuantile(M, 0.99);
  EXPECT_GE(P99, 800u);
  EXPECT_LE(P99, 831u);
  EXPECT_EQ(obs::histQuantile(obs::Metric{}, 0.5), 0u);

  // Regression for the satellite bias case: a tight distribution near a
  // power-of-two's lower edge. All mass at 520: the old estimator said
  // p99 <= 1023 (+96%); sub-buckets bound it to [512, 543] (<= ~4.4%).
  obs::Metric T;
  T.Kind = obs::MetricKind::Histogram;
  T.Buckets.assign(obs::HistBucketCount, 0);
  T.Buckets[obs::histBucketIndex(520)] = 1000;
  T.Value = 1000;
  for (double Q : {0.5, 0.99, 0.999}) {
    uint64_t Est = obs::histQuantile(T, Q);
    EXPECT_GE(Est, 512u);
    EXPECT_LE(Est, 543u);
    // Within the documented ~6.25% relative error of the true 520.
    EXPECT_LE(Est > 520 ? Est - 520 : 520 - Est, 520 / 16 + 1);
  }
}

//===----------------------------------------------------------------------===//
// Pipeline tracing: deterministic span set, nesting, worker attribution
//===----------------------------------------------------------------------===//

TEST(Obs, SpanSetDeterministicAcrossPoolSizes) {
  AdmissionSet Set(8);
  size_t TotalFuncs = 0;
  for (const ir::Module *M : Set.Ptrs)
    TotalFuncs += M->Funcs.size();

  TracingOn Guard;
  std::map<std::string, unsigned> Counts[3];
  unsigned Sizes[3] = {1, 3, 8};
  for (unsigned I = 0; I < 3; ++I) {
    obs::clearTrace();
    support::ThreadPool Pool(Sizes[I]);
    std::vector<Status> Out = typing::checkModules(Set.Ptrs, Pool);
    for (const Status &S : Out)
      ASSERT_TRUE(S.ok()) << S.error().message();
    for (const Ev &E : parseTrace(obs::traceJson()))
      ++Counts[I][E.Name];
  }
  // One batch umbrella, one span per function work item — the same
  // multiset whether one worker ran everything or eight raced.
  EXPECT_EQ(Counts[0]["check_batch"], 1u);
  EXPECT_EQ(Counts[0]["check_fn"], TotalFuncs);
  EXPECT_EQ(Counts[0], Counts[1]);
  EXPECT_EQ(Counts[0], Counts[2]);
}

TEST(Obs, SpansNestInsideBatchUmbrella) {
  AdmissionSet Set(6);
  TracingOn Guard;
  support::ThreadPool Pool(3);
  (void)typing::checkModules(Set.Ptrs, Pool);

  std::vector<Ev> Evs = parseTrace(obs::traceJson());
  const Ev *Batch = nullptr;
  for (const Ev &E : Evs)
    if (E.Name == "check_batch")
      Batch = &E;
  ASSERT_NE(Batch, nullptr);
  // The steady clock is process-global, so containment holds across
  // threads: every function check ran inside the batch call. 0.002us
  // covers the %.3f rounding of the microsecond timestamps.
  for (const Ev &E : Evs) {
    if (E.Name != "check_fn")
      continue;
    EXPECT_GE(E.Ts + 0.002, Batch->Ts) << "check_fn started before batch";
    EXPECT_LE(E.Ts + E.Dur, Batch->Ts + Batch->Dur + 0.002)
        << "check_fn outlived batch";
  }
}

TEST(Obs, WorkerThreadsAppearUnderPoolNames) {
  TracingOn Guard;
  // Workers call setThreadName("pool-N") at startup (N is 1-based), which
  // registers their ring buffer — the names appear in the trace even
  // before any span lands on them.
  support::ThreadPool Pool(2);
  std::string J = obs::traceJson();
  EXPECT_NE(J.find("\"name\":\"pool-1\""), std::string::npos) << J;
  EXPECT_NE(J.find("\"name\":\"pool-2\""), std::string::npos) << J;

  // And an explicitly named helper thread is attributed by name.
  std::thread T([] {
    obs::setThreadName("obs-helper");
    OBS_SPAN("helper_phase");
  });
  T.join();
  J = obs::traceJson();
  EXPECT_NE(J.find("\"name\":\"obs-helper\""), std::string::npos);
  bool Found = false;
  for (const Ev &E : parseTrace(J))
    if (E.Name == "helper_phase")
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(Obs, ClearTraceDropsEventsKeepsBuffers) {
  TracingOn Guard;
  { OBS_SPAN("transient_phase"); }
  EXPECT_GT(obs::traceEventCount(), 0u);
  obs::clearTrace();
  EXPECT_EQ(obs::traceEventCount(), 0u);
  { OBS_SPAN("transient_phase"); }
  EXPECT_EQ(obs::traceEventCount(), 1u);
}

TEST(Obs, DisabledSpansRecordNothing) {
  obs::setEnabled(false);
  obs::clearTrace();
  size_t Before = obs::traceEventCount();
  { OBS_SPAN("should_not_appear"); }
  EXPECT_EQ(obs::traceEventCount(), Before);
}

//===----------------------------------------------------------------------===//
// Snapshot sources: cache, arena, per-instance profiles
//===----------------------------------------------------------------------===//

TEST(Obs, SnapshotSamplesCacheAndArenaSources) {
  AdmissionSet Set(4);
  support::ThreadPool Pool(2);
  cache::AdmissionCache C;
  (void)typing::checkModules(Set.Ptrs, Pool, &C); // Cold: all misses.
  (void)typing::checkModules(Set.Ptrs, Pool, &C); // Warm: all hits.

  obs::Snapshot S = obs::snapshot();
  const obs::Metric *Hits = find(S, "cache.hits");
  const obs::Metric *Misses = find(S, "cache.misses");
  ASSERT_NE(Hits, nullptr);
  ASSERT_NE(Misses, nullptr);
  EXPECT_EQ(Hits->Value, Set.Ptrs.size());
  EXPECT_EQ(Misses->Value, Set.Ptrs.size());
  // The global arena registered its source on first use.
  bool Arena = false;
  for (const obs::Metric &M : S.Metrics)
    if (M.Name.rfind("arena.", 0) == 0)
      Arena = true;
  EXPECT_TRUE(Arena);

  // The cache unregisters on destruction: no dangling source afterwards.
  { cache::AdmissionCache Dying; }
  obs::Snapshot After = obs::snapshot();
  unsigned CacheSources = 0;
  for (const obs::Metric &M : After.Metrics)
    if (M.Name == "cache.hits" || M.Name.rfind("cache#", 0) == 0)
      ++CacheSources;
  EXPECT_EQ(CacheSources, 1u) << "only the live cache may be sampled";
}

TEST(Obs, RenderersCoverSnapshotMetrics) {
  static obs::Counter C("test.rendered_counter");
  C.add(5);
  obs::Snapshot S = obs::snapshot();
  std::string Text = obs::renderText(S);
  std::string Json = obs::renderJson(S);
  EXPECT_NE(Text.find("test.rendered_counter"), std::string::npos);
  EXPECT_NE(Json.find("\"test.rendered_counter\""), std::string::npos);
  EXPECT_NE(Json.find("\"metrics\""), std::string::npos);
  EXPECT_EQ(Json.front(), '{');
  EXPECT_EQ(Json.back(), '}');
}

//===----------------------------------------------------------------------===//
// Execution profiles: flat/tree parity + snapshot surfacing
//===----------------------------------------------------------------------===//

TEST(Obs, FunctionProfilesIdenticalAcrossEngines) {
  using namespace rw::wasm;
  // f0: a 5-iteration counting loop, then two calls of f1; f1: empty.
  WModule M;
  uint32_t TV = M.addType({{}, {}});
  M.Funcs.push_back(
      {TV,
       {ValType::I32},
       {WInst::block({{}, {}},
                     {WInst::loop({{}, {}},
                                  {WInst::idx(Op::LocalGet, 0), WInst::i32c(1),
                                   WInst::mk(Op::I32Add),
                                   WInst::idx(Op::LocalTee, 0), WInst::i32c(5),
                                   WInst::mk(Op::I32LtS),
                                   WInst::idx(Op::BrIf, 0)})}),
        WInst::idx(Op::Call, 1), WInst::idx(Op::Call, 1)}});
  M.Funcs.push_back({TV, {}, {WInst::mk(Op::Nop)}});
  M.Exports.push_back({"f", ExportKind::Func, 0});
  ASSERT_TRUE(validate(M).ok()) << validate(M).error().message();

  constexpr EngineKind Both[] = {EngineKind::Tree, EngineKind::Flat};
  std::vector<FunctionProfile> Seen[2];
  for (EngineKind K : Both) {
    auto I = createInstance(M, K);
    I->enableProfiling();
    ASSERT_TRUE(I->initialize().ok());
    ASSERT_TRUE(bool(I->invokeByName("f", {})));

    const std::vector<FunctionProfile> &P = I->functionProfiles();
    ASSERT_EQ(P.size(), 2u);
    EXPECT_EQ(P[0].Invocations, 1u);
    EXPECT_EQ(P[0].LoopHeads, 5u); // One fall-in + four back-edges.
    EXPECT_EQ(P[1].Invocations, 2u);
    EXPECT_EQ(P[1].LoopHeads, 0u);
    Seen[K == EngineKind::Flat] = P;

    // While the instance lives, its profile table is an obs source.
    obs::Snapshot S = obs::snapshot();
    const obs::Metric *Inv = find(S, "exec.profile.func1.inv");
    ASSERT_NE(Inv, nullptr);
    EXPECT_EQ(Inv->Value, 2u);
  }
  for (size_t F = 0; F < 2; ++F) {
    EXPECT_EQ(Seen[0][F].Invocations, Seen[1][F].Invocations);
    EXPECT_EQ(Seen[0][F].LoopHeads, Seen[1][F].LoopHeads);
  }
  // Both instances are gone: their sources must be too.
  EXPECT_EQ(find(obs::snapshot(), "exec.profile.func1.inv"), nullptr);
}

TEST(Obs, ProfileParityOnDifferentialWorkload) {
  using namespace rw::wasm;
  // The lowered bench loop: check → lower → run on both engines with
  // profiling; invocation/back-edge counts must agree function-for-
  // function even through the full pipeline's generated control flow.
  ir::Module Src = rwbench::loopModule(17);
  support::ThreadPool Pool(2);
  std::vector<const ir::Module *> Mods = {&Src};
  for (const Status &S : typing::checkModules(Mods, Pool))
    ASSERT_TRUE(S.ok()) << S.error().message();
  auto LP = lower::lowerProgram(Mods, {});
  ASSERT_TRUE(bool(LP)) << LP.error().message();
  ASSERT_TRUE(validate(LP->Module).ok());

  constexpr EngineKind Both[] = {EngineKind::Tree, EngineKind::Flat};
  std::vector<FunctionProfile> Seen[2];
  for (EngineKind K : Both) {
    auto I = createInstance(LP->Module, K);
    I->enableProfiling();
    ASSERT_TRUE(I->initialize().ok());
    auto R = I->invokeByName("loopmod.main", {});
    ASSERT_TRUE(bool(R)) << R.error().message();
    Seen[K == EngineKind::Flat] = I->functionProfiles();
  }
  ASSERT_EQ(Seen[0].size(), Seen[1].size());
  uint64_t TotalInv = 0, TotalLoops = 0;
  for (size_t F = 0; F < Seen[0].size(); ++F) {
    EXPECT_EQ(Seen[0][F].Invocations, Seen[1][F].Invocations) << "func " << F;
    EXPECT_EQ(Seen[0][F].LoopHeads, Seen[1][F].LoopHeads) << "func " << F;
    TotalInv += Seen[0][F].Invocations;
    TotalLoops += Seen[0][F].LoopHeads;
  }
  EXPECT_GE(TotalInv, 1u);
  EXPECT_GE(TotalLoops, 17u); // The source loop runs 17 iterations.
}

#else // !RW_OBS_ENABLED — the compile-out contract.

static_assert(!obs::compiledIn(), "OFF build must report !compiledIn()");

TEST(ObsOff, EverythingCollapsesToStubs) {
  // OBS_SPAN must compile to nothing in any statement position.
  OBS_SPAN("gone", 1, 2);
  static obs::Counter C("off.counter");
  C.add(99);
  EXPECT_EQ(C.value(), 0u);
  static obs::Gauge G("off.gauge");
  G.set(5);
  EXPECT_EQ(G.value(), 0u);
  obs::Histogram("off.hist").record(7);

  obs::setEnabled(true);
  EXPECT_FALSE(obs::enabled());
  obs::setTracing(true);
  EXPECT_FALSE(obs::tracing());

  EXPECT_EQ(obs::registerSource("x", [](const obs::EmitFn &) {}), 0u);
  obs::unregisterSource(0);
  EXPECT_TRUE(obs::snapshot().Metrics.empty());
  EXPECT_EQ(obs::traceJson(), "{\"traceEvents\":[]}");
  EXPECT_EQ(obs::traceEventCount(), 0u);
  obs::clearTrace();

  // PR 9 surface: sampling, drop counters, and the Prometheus renderer
  // collapse too (select() says "record" so call sites stay branchless).
  obs::setTraceSampling(8);
  EXPECT_EQ(obs::traceSampling(), 1u);
  EXPECT_TRUE(obs::traceSampleSelect(0x1234));
  EXPECT_FALSE(obs::traceSampleActive());
  {
    obs::TraceSampleScope Scope(false);
    EXPECT_FALSE(obs::traceSampleActive());
  }
  EXPECT_EQ(obs::traceDroppedCount(), 0u);
  EXPECT_EQ(obs::renderPrometheus(obs::Snapshot{}), "");
}

TEST(ObsOff, TimelineCollapsesToStub) {
  obs::Timeline T({/*IntervalMs=*/1, /*Capacity=*/4});
  T.start();
  T.sampleNow();
  T.stop();
  EXPECT_EQ(T.sampleCount(), 0u);
  EXPECT_EQ(T.dropped(), 0u);
  EXPECT_TRUE(T.deltas().empty());
  EXPECT_TRUE(T.base().empty());
  EXPECT_TRUE(T.latest().empty());
  EXPECT_EQ(T.exportJson(), "{\"timeline\":{}}");
}

TEST(ObsOff, PureHistogramHelpersStillWork) {
  // The bucket arithmetic and name/label escaping helpers are pure
  // header inlines, usable (e.g. by offline tooling) in either config.
  EXPECT_EQ(obs::histBucketIndex(5), 5u);
  EXPECT_EQ(obs::histBucketLo(obs::histBucketIndex(800)), 800u);
  EXPECT_EQ(obs::promSanitizeName("cache.shard0.hits"), "cache_shard0_hits");
  EXPECT_EQ(obs::promEscapeLabel("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(ObsOff, PipelineStillRunsWithoutRecording) {
  AdmissionSet Set(4);
  support::ThreadPool Pool(2);
  for (const Status &S : typing::checkModules(Set.Ptrs, Pool))
    ASSERT_TRUE(S.ok()) << S.error().message();
  EXPECT_TRUE(obs::snapshot().Metrics.empty());
}

#endif // RW_OBS_ENABLED
