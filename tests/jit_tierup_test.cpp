//===- tests/jit_tierup_test.cpp - Concurrent tier-up correctness ---------===//
//
// The threshold/background half of the tier-3 backend (DESIGN.md §11):
// a background TierWorker compiles functions while the main thread keeps
// invoking them through the interpreter. These tests are written for the
// TSan CI job — the interesting property is not just that results stay
// correct but that the profile-counter reads, the entry-table publish
// (release) / pickup (acquire), and the worker join on destruction are
// all race-free under a thread sanitizer.
//
// Under -DRW_JIT=OFF only the policy-inertness test remains: tier
// policies are accepted and ignored, and jitCompiledCount() is pinned 0.
//
//===----------------------------------------------------------------------===//

#include "exec/Engine.h"
#include "obs/Obs.h"
#include "wasm/Validate.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>

using namespace rw;
using namespace rw::wasm;

namespace {

/// sum(n) = 1 + 2 + ... + n via a counting loop: enough back-edges to
/// feed the loop-head counter, one param, one result.
WModule sumModule() {
  WModule M;
  uint32_t TV = M.addType({{ValType::I32}, {ValType::I32}});
  // Locals: 0 = n (param), 1 = i, 2 = acc.
  M.Funcs.push_back(
      {TV,
       {ValType::I32, ValType::I32},
       {WInst::block(
            {{}, {}},
            {WInst::loop({{}, {}},
                         {WInst::idx(Op::LocalGet, 1), WInst::i32c(1),
                          WInst::mk(Op::I32Add), WInst::idx(Op::LocalTee, 1),
                          WInst::idx(Op::LocalGet, 2), WInst::mk(Op::I32Add),
                          WInst::idx(Op::LocalSet, 2),
                          WInst::idx(Op::LocalGet, 1),
                          WInst::idx(Op::LocalGet, 0), WInst::mk(Op::I32LtS),
                          WInst::idx(Op::BrIf, 0)})}),
        WInst::idx(Op::LocalGet, 2)}});
  M.Exports.push_back({"sum", ExportKind::Func, 0});
  return M;
}

/// A three-deep call chain — f0 calls f1 calls f2 (the sum loop) — so
/// the background scan has several functions to tier in sequence, one
/// in-flight compile at a time.
WModule chainModule() {
  WModule M;
  uint32_t TV = M.addType({{ValType::I32}, {ValType::I32}});
  M.Funcs.push_back({TV,
                     {},
                     {WInst::idx(Op::LocalGet, 0), WInst::idx(Op::Call, 1),
                      WInst::i32c(1), WInst::mk(Op::I32Add)}});
  M.Funcs.push_back({TV,
                     {},
                     {WInst::idx(Op::LocalGet, 0), WInst::idx(Op::Call, 2),
                      WInst::i32c(2), WInst::mk(Op::I32Add)}});
  M.Funcs.push_back(
      {TV,
       {ValType::I32, ValType::I32},
       {WInst::block(
            {{}, {}},
            {WInst::loop({{}, {}},
                         {WInst::idx(Op::LocalGet, 1), WInst::i32c(1),
                          WInst::mk(Op::I32Add), WInst::idx(Op::LocalTee, 1),
                          WInst::idx(Op::LocalGet, 2), WInst::mk(Op::I32Add),
                          WInst::idx(Op::LocalSet, 2),
                          WInst::idx(Op::LocalGet, 1),
                          WInst::idx(Op::LocalGet, 0), WInst::mk(Op::I32LtS),
                          WInst::idx(Op::BrIf, 0)})}),
        WInst::idx(Op::LocalGet, 2)}});
  M.Exports.push_back({"f", ExportKind::Func, 0});
  return M;
}

uint32_t expectSum(uint32_t N) { return N * (N + 1) / 2; }

} // namespace

//===----------------------------------------------------------------------===//
// Always-on contract: NeverTier means never, in every build.
//===----------------------------------------------------------------------===//

TEST(JitTierUp, NeverTierStaysInterpretedForever) {
  WModule M = sumModule();
  ASSERT_TRUE(validate(M).ok());
  exec::FlatInstance FI(M);
  FI.setTierPolicy(exec::FlatInstance::NeverTier, /*Background=*/true);
  ASSERT_TRUE(FI.initialize().ok());
  for (int I = 0; I < 20; ++I) {
    auto R = FI.invokeByName("sum", {WValue::i32(100)});
    ASSERT_TRUE(bool(R));
    EXPECT_EQ(R->at(0).asU32(), expectSum(100));
  }
  EXPECT_EQ(FI.jitCompiledCount(), 0u);
}

#if RW_JIT_ENABLED

//===----------------------------------------------------------------------===//
// Background tiering under concurrent invokes (the TSan target).
//===----------------------------------------------------------------------===//

TEST(JitTierUp, BackgroundCompileAdoptedWhileInvoking) {
  WModule M = sumModule();
  ASSERT_TRUE(validate(M).ok());
  exec::FlatInstance FI(M);
  FI.setTierPolicy(1, /*Background=*/true);
  ASSERT_TRUE(FI.initialize().ok());

  // Keep invoking while the worker compiles; every result must be right
  // whether a given invoke ran interpreted, native, or picked the entry
  // up mid-stream. 10k invokes is orders of magnitude beyond the compile
  // latency; bail out a few iterations after adoption.
  int SeenCompiled = -1;
  for (int I = 0; I < 10000; ++I) {
    auto R = FI.invokeByName("sum", {WValue::i32(50)});
    ASSERT_TRUE(bool(R)) << R.error().message();
    ASSERT_EQ(R->at(0).asU32(), expectSum(50)) << "invoke " << I;
    if (SeenCompiled < 0 && FI.jitCompiledCount() > 0)
      SeenCompiled = I;
    if (SeenCompiled >= 0 && I > SeenCompiled + 8)
      break;
    std::this_thread::yield();
  }
  EXPECT_GE(SeenCompiled, 0) << "background compile never landed";
  EXPECT_EQ(FI.jitCompiledCount(), 1u);
}

TEST(JitTierUp, BackgroundChainTiersEveryFunction) {
  WModule M = chainModule();
  ASSERT_TRUE(validate(M).ok());
  exec::FlatInstance FI(M);
  FI.setTierPolicy(1, /*Background=*/true);
  ASSERT_TRUE(FI.initialize().ok());

  // One compile in flight at a time — the scan must re-run across
  // invokes until all three functions are native.
  uint32_t Want = 3, Expect = expectSum(40) + 3;
  bool AllTiered = false;
  for (int I = 0; I < 10000 && !AllTiered; ++I) {
    auto R = FI.invokeByName("f", {WValue::i32(40)});
    ASSERT_TRUE(bool(R)) << R.error().message();
    ASSERT_EQ(R->at(0).asU32(), Expect) << "invoke " << I;
    AllTiered = FI.jitCompiledCount() == Want;
    std::this_thread::yield();
  }
  EXPECT_TRUE(AllTiered) << "compiled " << FI.jitCompiledCount() << "/"
                         << Want;
  // A few more invokes on the fully-native chain.
  for (int I = 0; I < 5; ++I) {
    auto R = FI.invokeByName("f", {WValue::i32(40)});
    ASSERT_TRUE(bool(R));
    EXPECT_EQ(R->at(0).asU32(), Expect);
  }
}

TEST(JitTierUp, ResetProfilesRacesBackgroundScanSafely) {
  WModule M = sumModule();
  ASSERT_TRUE(validate(M).ok());
  exec::FlatInstance FI(M);
  FI.setTierPolicy(25, /*Background=*/true);
  ASSERT_TRUE(FI.initialize().ok());

  // Interleave invokes with resets: the relaxed counter stores from
  // resetProfiles() may race the worker's reads, which must be benign
  // (atomics) — and tiering must still eventually win once we stop
  // resetting, because counters saturate upward between resets.
  for (int I = 0; I < 30; ++I) {
    auto R = FI.invokeByName("sum", {WValue::i32(10)});
    ASSERT_TRUE(bool(R));
    ASSERT_EQ(R->at(0).asU32(), expectSum(10));
    if (I % 7 == 6)
      exec::resetProfiles(FI);
  }
  bool Tiered = false;
  for (int I = 0; I < 10000 && !Tiered; ++I) {
    auto R = FI.invokeByName("sum", {WValue::i32(10)});
    ASSERT_TRUE(bool(R));
    ASSERT_EQ(R->at(0).asU32(), expectSum(10));
    Tiered = FI.jitCompiledCount() > 0;
    std::this_thread::yield();
  }
  EXPECT_TRUE(Tiered);
}

TEST(JitTierUp, DestructionJoinsInFlightCompile) {
  // Kick a background compile and destroy the instance immediately; the
  // destructor must join the worker (no use-after-free of Jit/Prof, no
  // leaked thread — TSan and ASan both watch this one).
  for (int Round = 0; Round < 8; ++Round) {
    WModule M = sumModule();
    ASSERT_TRUE(validate(M).ok());
    auto FI = std::make_unique<exec::FlatInstance>(M);
    FI->setTierPolicy(1, /*Background=*/true);
    ASSERT_TRUE(FI->initialize().ok());
    auto R = FI->invokeByName("sum", {WValue::i32(30)});
    ASSERT_TRUE(bool(R));
    ASSERT_EQ(R->at(0).asU32(), expectSum(30));
    auto R2 = FI->invokeByName("sum", {WValue::i32(30)});
    ASSERT_TRUE(bool(R2));
    FI.reset(); // Worker may still be compiling right here.
  }
}

#if RW_OBS_ENABLED

TEST(JitTierUp, ObsSourceExportsTierStateAndCodeBytes) {
  obs::setEnabled(true);
  WModule M = chainModule();
  ASSERT_TRUE(validate(M).ok());
  exec::FlatInstance FI(M);
  FI.setTierPolicy(0, /*Background=*/false); // Eager: compile everything.
  ASSERT_TRUE(FI.initialize().ok());
  auto R = FI.invokeByName("f", {WValue::i32(10)});
  ASSERT_TRUE(bool(R));
  ASSERT_GT(FI.jitCompiledCount(), 0u);

  // The instance's "jit" source (prefix possibly uniquified "jit#N")
  // reports tier counts, code-cache bytes, and per-function tier state.
  std::map<std::string, uint64_t> Src;
  uint64_t CompileSamples = 0;
  for (const obs::Metric &Mt : obs::snapshot().Metrics) {
    if (Mt.Name == "jit.compile.ns") {
      CompileSamples = Mt.Value;
      continue;
    }
    size_t Dot = Mt.Name.find('.');
    if (Dot == std::string::npos)
      continue;
    std::string Stem = Mt.Name.substr(0, Dot);
    if (Stem == "jit" || Stem.rfind("jit#", 0) == 0)
      Src[Mt.Name.substr(Dot + 1)] = Mt.Value;
  }
  ASSERT_TRUE(Src.count("funcs"));
  EXPECT_EQ(Src["funcs"], 3u);
  EXPECT_EQ(Src["compiled"], FI.jitCompiledCount());
  EXPECT_GT(Src["code_bytes"], 0u);
  ASSERT_TRUE(Src.count("func0.tier"));
  for (unsigned F = 0; F < 3; ++F) {
    std::string K = "func" + std::to_string(F) + ".tier";
    ASSERT_TRUE(Src.count(K)) << K;
    // 0 untried, 1 compiling, 2 native, 3 refused.
    EXPECT_TRUE(Src[K] == 2 || Src[K] == 3) << K << "=" << Src[K];
  }
  EXPECT_EQ(Src["compiled"] + Src["unsupported"] + Src["pending"],
            Src["funcs"]);
  // Every eager compile recorded its latency.
  EXPECT_GE(CompileSamples, FI.jitCompiledCount());
}

#endif // RW_OBS_ENABLED

#else // !RW_JIT_ENABLED

TEST(JitTierUpOff, PoliciesAcceptedAndInert) {
  WModule M = sumModule();
  ASSERT_TRUE(validate(M).ok());
  exec::FlatInstance FI(M, EngineKind::Jit); // Degrades to flat.
  FI.setTierPolicy(0, /*Background=*/true);  // Eager — still inert.
  ASSERT_TRUE(FI.initialize().ok());
  for (int I = 0; I < 10; ++I) {
    auto R = FI.invokeByName("sum", {WValue::i32(100)});
    ASSERT_TRUE(bool(R));
    EXPECT_EQ(R->at(0).asU32(), expectSum(100));
  }
  EXPECT_EQ(FI.jitCompiledCount(), 0u);
}

#endif // RW_JIT_ENABLED
