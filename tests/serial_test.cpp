//===- tests/serial_test.cpp - Binary module format tests -----------------===//
//
// Part of the RichWasm reproduction. MIT license.
//
// Pins the wire-format contract of src/serial/:
//
//  * round trip — read(write(M)) reproduces M with *canonical* types:
//    pointer-identical to the originals when decoded into the same arena,
//    structurally identical (and re-encoding byte-identical) when decoded
//    into an independent arena;
//  * the round-tripped module checks, lowers, and executes identically
//    (differential against the original across the whole pipeline);
//  * seeded fuzz over randomly generated modules embedding every type
//    shape and instruction payload;
//  * robustness — corrupt headers, bad checksums, truncated streams, and
//    checksum-corrected payload flips are rejected or decoded, never UB;
//  * moduleHash — stable across arenas, discriminating across contents,
//    and consistent with byte-level equality of write().
//
//===----------------------------------------------------------------------===//

#include "serial/Serial.h"

#include "bench/Common.h"
#include "ir/TypeOps.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>
#include <random>

using namespace rw;
using namespace rw::ir;

namespace {

uint64_t fnv1a(const uint8_t *D, size_t N) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (size_t I = 0; I < N; ++I)
    H = (H ^ D[I]) * 0x100000001b3ull;
  return H;
}

/// Rewrites the header checksum to match the (possibly corrupted)
/// payload, so tests can reach the structural validation layer below the
/// checksum.
void fixChecksum(std::vector<uint8_t> &B) {
  ASSERT_GE(B.size(), serial::HeaderSize);
  uint64_t Sum = fnv1a(B.data() + serial::HeaderSize,
                       B.size() - serial::HeaderSize);
  for (int I = 0; I < 8; ++I)
    B[16 + I] = static_cast<uint8_t>(Sum >> (8 * I));
}

/// Seeded random type/instruction generator (the interner_test generator
/// extended with instruction payloads): serialization does not require
/// modules to type-check, so bodies exercise every payload shape freely.
struct Gen {
  std::mt19937_64 Rng;
  explicit Gen(uint64_t Seed) : Rng(Seed) {}
  uint32_t pick(uint32_t N) { return static_cast<uint32_t>(Rng() % N); }

  Qual qual() {
    switch (pick(4)) {
    case 0:
      return Qual::lin();
    case 1:
      return Qual::var(pick(3));
    default:
      return Qual::unr();
    }
  }

  Loc loc() {
    switch (pick(3)) {
    case 0:
      return Loc::var(pick(3));
    case 1:
      return Loc::concrete(pick(2) ? MemKind::Lin : MemKind::Unr, pick(8));
    default:
      return Loc::skolem(pick(4));
    }
  }

  SizeRef size(unsigned D) {
    switch (D == 0 ? pick(2) : pick(4)) {
    case 0:
      return Size::constant(pick(5) * 32);
    case 1:
      return Size::var(pick(4));
    default:
      return Size::plus(size(D - 1), size(D - 1));
    }
  }

  Type type(unsigned D) { return Type(pretype(D), qual()); }

  PretypeRef pretype(unsigned D) {
    switch (D == 0 ? pick(6) : pick(12)) {
    case 0:
      return unitPT();
    case 1:
      return numPT(static_cast<NumType>(pick(6)));
    case 2:
      return varPT(pick(4));
    case 3:
      return ptrPT(loc());
    case 4:
      return ownPT(loc());
    case 5:
      return skolemPT(pick(3), pick(2) ? Qual::lin() : Qual::unr(),
                      Size::constant(32 + 32 * pick(3)), pick(2) == 0);
    case 6: {
      std::vector<Type> Es;
      for (unsigned I = 0, N = pick(3); I < N; ++I)
        Es.push_back(type(D - 1));
      return prodPT(std::move(Es));
    }
    case 7:
      return refPT(pick(2) ? Privilege::RW : Privilege::R, loc(), heap(D - 1));
    case 8:
      return capPT(pick(2) ? Privilege::RW : Privilege::R, loc(), heap(D - 1));
    case 9:
      return recPT(qual(), type(D - 1));
    case 10:
      return exLocPT(type(D - 1));
    default:
      return coderefPT(fun(D - 1));
    }
  }

  HeapTypeRef heap(unsigned D) {
    switch (pick(4)) {
    case 0: {
      std::vector<Type> Cs;
      for (unsigned I = 0, N = 1 + pick(2); I < N; ++I)
        Cs.push_back(type(D));
      return variantHT(std::move(Cs));
    }
    case 1: {
      std::vector<StructField> Fs;
      for (unsigned I = 0, N = pick(3); I < N; ++I)
        Fs.push_back({type(D), size(1)});
      return structHT(std::move(Fs));
    }
    case 2:
      return arrayHT(type(D));
    default:
      return exHT(qual(), size(1), type(D));
    }
  }

  FunTypeRef fun(unsigned D) {
    std::vector<Quant> Qs;
    for (unsigned I = 0, N = pick(3); I < N; ++I) {
      switch (pick(4)) {
      case 0:
        Qs.push_back(Quant::loc());
        break;
      case 1:
        Qs.push_back(Quant::size({size(0)}, {size(0)}));
        break;
      case 2:
        Qs.push_back(Quant::qual({qual()}, {}));
        break;
      default:
        Qs.push_back(Quant::type(qual(), size(1), pick(2) == 0));
        break;
      }
    }
    ArrowType A;
    for (unsigned I = 0, N = pick(3); I < N; ++I)
      A.Params.push_back(type(D));
    for (unsigned I = 0, N = pick(2); I < N; ++I)
      A.Results.push_back(type(D));
    return FunType::get(std::move(Qs), std::move(A));
  }

  ArrowType arrow(unsigned D) {
    ArrowType A;
    for (unsigned I = 0, N = pick(2); I < N; ++I)
      A.Params.push_back(type(D));
    for (unsigned I = 0, N = pick(2); I < N; ++I)
      A.Results.push_back(type(D));
    return A;
  }

  std::vector<LocalEffect> effects(unsigned D) {
    std::vector<LocalEffect> Fx;
    for (unsigned I = 0, N = pick(2); I < N; ++I)
      Fx.push_back({pick(4), type(D)});
    return Fx;
  }

  std::vector<Index> indices(unsigned D) {
    std::vector<Index> Is;
    for (unsigned I = 0, N = pick(3); I < N; ++I) {
      switch (pick(4)) {
      case 0:
        Is.push_back(Index::loc(loc()));
        break;
      case 1:
        Is.push_back(Index::size(size(1)));
        break;
      case 2:
        Is.push_back(Index::qual(qual()));
        break;
      default:
        Is.push_back(Index::pretype(pretype(D)));
        break;
      }
    }
    return Is;
  }

  InstVec insts(unsigned D) {
    using namespace rw::ir::build;
    InstVec Is;
    for (unsigned I = 0, N = 1 + pick(4); I < N; ++I) {
      switch (D == 0 ? pick(14) : pick(22)) {
      case 0:
        Is.push_back(numConst(static_cast<NumType>(pick(6)), Rng()));
        break;
      case 1:
        Is.push_back(binop(static_cast<NumType>(pick(6)),
                           static_cast<BinopKind>(pick(15))));
        break;
      case 2:
        Is.push_back(unop(static_cast<NumType>(pick(6)),
                          static_cast<UnopKind>(pick(10))));
        break;
      case 3:
        Is.push_back(relop(static_cast<NumType>(pick(6)),
                           static_cast<RelopKind>(pick(6))));
        break;
      case 4:
        Is.push_back(cvt(static_cast<NumType>(pick(6)),
                         static_cast<NumType>(pick(6)),
                         pick(2) ? CvtopKind::Reinterpret
                                 : CvtopKind::Convert));
        break;
      case 5:
        Is.push_back(pick(2) ? drop() : nop());
        break;
      case 6:
        Is.push_back(getLocal(pick(4), qual()));
        break;
      case 7:
        Is.push_back(pick(2) ? setLocal(pick(4)) : teeLocal(pick(4)));
        break;
      case 8:
        Is.push_back(qualify(qual()));
        break;
      case 9:
        Is.push_back(brTable({pick(3), pick(3)}, pick(3)));
        break;
      case 10:
        Is.push_back(call(pick(5), indices(D)));
        break;
      case 11:
        Is.push_back(recFold(pretype(D)));
        break;
      case 12:
        Is.push_back(memPack(loc()));
        break;
      case 13:
        Is.push_back(structMalloc({size(1), size(0)}, qual()));
        break;
      case 14:
        Is.push_back(block(arrow(D - 1), effects(D - 1), insts(D - 1)));
        break;
      case 15:
        Is.push_back(loop(arrow(D - 1), insts(D - 1)));
        break;
      case 16:
        Is.push_back(
            ifElse(arrow(D - 1), effects(D - 1), insts(D - 1), insts(D - 1)));
        break;
      case 17:
        Is.push_back(memUnpack(arrow(D - 1), effects(D - 1), insts(D - 1)));
        break;
      case 18: {
        std::vector<InstVec> Arms;
        for (unsigned A = 0, NA = 1 + pick(2); A < NA; ++A)
          Arms.push_back(insts(D - 1));
        Is.push_back(variantCase(qual(), heap(D - 1), arrow(D - 1),
                                 effects(D - 1), std::move(Arms)));
        break;
      }
      case 19:
        Is.push_back(existPack(pretype(D - 1), heap(D - 1), qual()));
        break;
      case 20:
        Is.push_back(existUnpack(qual(), heap(D - 1), arrow(D - 1),
                                 effects(D - 1), insts(D - 1)));
        break;
      default:
        Is.push_back(variantMalloc(pick(3), {type(D - 1)}, qual()));
        break;
      }
    }
    return Is;
  }

  ir::Module module() {
    using namespace rw::ir::build;
    ir::Module M;
    M.Name = "fuzz_" + std::to_string(pick(1000));
    for (unsigned I = 0, N = 1 + pick(3); I < N; ++I) {
      if (pick(4) == 0) {
        M.Funcs.push_back(importFunc({"dep", "f" + std::to_string(pick(4))},
                                     fun(2)));
      } else {
        std::vector<SizeRef> Locals;
        for (unsigned L = 0, NL = pick(3); L < NL; ++L)
          Locals.push_back(size(1));
        Function F = function({}, fun(2), std::move(Locals), insts(2));
        for (unsigned EI = 0, NE = pick(2); EI < NE; ++EI)
          F.Exports.push_back("e" + std::to_string(pick(8)));
        M.Funcs.push_back(std::move(F));
      }
    }
    for (unsigned I = 0, N = pick(2); I < N; ++I) {
      Global G;
      G.Mut = pick(2);
      G.P = pretype(2);
      if (pick(3) == 0)
        G.Import = ImportName{"dep", "g" + std::to_string(pick(4))};
      else
        G.Init = insts(1);
      if (pick(2))
        G.Exports.push_back("g" + std::to_string(pick(8)));
      M.Globals.push_back(std::move(G));
    }
    for (unsigned I = 0, N = pick(3); I < N; ++I)
      M.Tab.Entries.push_back(pick(4));
    if (pick(3) == 0)
      M.Start = pick(3);
    return M;
  }
};

/// Asserts the full round-trip contract for \p M within the current
/// (global) arena: canonical re-encode, pointer-identical types, and
/// identical check verdicts.
void expectRoundTrip(const ir::Module &M) {
  std::vector<uint8_t> Bytes = serial::write(M);
  Expected<ir::Module> R = serial::read(Bytes);
  ASSERT_TRUE(bool(R)) << R.error().message();

  // Canonical encoding: re-serializing reproduces the bytes.
  EXPECT_EQ(serial::write(*R), Bytes);
  EXPECT_EQ(serial::moduleHash(*R), serial::moduleHash(M));

  // Structure and canonical-pointer identity.
  EXPECT_EQ(R->Name, M.Name);
  ASSERT_EQ(R->Funcs.size(), M.Funcs.size());
  for (size_t I = 0; I < M.Funcs.size(); ++I) {
    EXPECT_EQ(R->Funcs[I].Ty.get(), M.Funcs[I].Ty.get()) << "func " << I;
    EXPECT_EQ(R->Funcs[I].Exports, M.Funcs[I].Exports);
    ASSERT_EQ(R->Funcs[I].Locals.size(), M.Funcs[I].Locals.size());
    for (size_t L = 0; L < M.Funcs[I].Locals.size(); ++L)
      EXPECT_EQ(R->Funcs[I].Locals[L].get(), M.Funcs[I].Locals[L].get());
    EXPECT_EQ(R->Funcs[I].isImport(), M.Funcs[I].isImport());
  }
  ASSERT_EQ(R->Globals.size(), M.Globals.size());
  for (size_t I = 0; I < M.Globals.size(); ++I)
    EXPECT_EQ(R->Globals[I].P.get(), M.Globals[I].P.get()) << "global " << I;
  EXPECT_EQ(R->Tab.Entries, M.Tab.Entries);
  EXPECT_EQ(R->Start, M.Start);

  // Identical admission verdict, byte for byte.
  Status SA = typing::checkModule(M);
  Status SB = typing::checkModule(*R);
  EXPECT_EQ(SA.ok(), SB.ok());
  if (!SA.ok() && !SB.ok())
    EXPECT_EQ(SA.error().message(), SB.error().message());
}

//===----------------------------------------------------------------------===//
// Round trips
//===----------------------------------------------------------------------===//

TEST(Serial, RoundTripWorkloads) {
  expectRoundTrip(rwbench::loopModule(100));
  expectRoundTrip(rwbench::allocModule(10, true));
  expectRoundTrip(rwbench::allocModule(10, false));
  expectRoundTrip(rwbench::wideModule(8));
}

TEST(Serial, RoundTripCompiledFrontends) {
  auto ML = ml::compileSource("ml", rwbench::MLStashSafe);
  ASSERT_TRUE(bool(ML)) << ML.error().message();
  expectRoundTrip(*ML);
  auto L3 = l3::compileSource("l3", rwbench::CounterLibL3);
  ASSERT_TRUE(bool(L3)) << L3.error().message();
  expectRoundTrip(*L3);
  auto Client = ml::compileSource("client", rwbench::CounterClientML);
  ASSERT_TRUE(bool(Client)) << Client.error().message();
  expectRoundTrip(*Client);
}

TEST(Serial, RoundTrippedProgramExecutesIdentically) {
  const char *Src = "fun fib (n : int) : int = "
                    "  if n < 2 then n else fib (n - 1) + fib (n - 2) ;;"
                    "export fun main (u : unit) : int = fib 10 ;;";
  auto M = ml::compileSource("m", Src);
  ASSERT_TRUE(bool(M)) << M.error().message();
  auto R = serial::read(serial::write(*M));
  ASSERT_TRUE(bool(R)) << R.error().message();

  for (wasm::EngineKind E : {wasm::EngineKind::Tree, wasm::EngineKind::Flat}) {
    link::LinkOptions Opts;
    Opts.Engine = E;
    auto LA = link::instantiateLowered({&*M}, Opts);
    auto LB = link::instantiateLowered({&*R}, Opts);
    ASSERT_TRUE(bool(LA)) << LA.error().message();
    ASSERT_TRUE(bool(LB)) << LB.error().message();
    auto RA = LA->invokeExport("m.main", {});
    auto RB = LB->invokeExport("m.main", {});
    ASSERT_TRUE(bool(RA)) << RA.error().message();
    ASSERT_TRUE(bool(RB)) << RB.error().message();
    EXPECT_EQ((*RA)[0].Bits, 55u);
    EXPECT_EQ((*RB)[0].Bits, 55u);
  }

  // The round-tripped module also links against peers (tree-machine path).
  auto Mach = link::instantiate({&*R});
  ASSERT_TRUE(bool(Mach)) << Mach.error().message();
}

TEST(Serial, RoundTripIntoIndependentArena) {
  ir::Module M = rwbench::wideModule(4);
  std::vector<uint8_t> Bytes = serial::write(M);

  auto Private = std::make_shared<TypeArena>();
  auto R = serial::read(Bytes, Private);
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_EQ(R->Arena.get(), Private.get());

  // Pointer identity deliberately fails across arenas while structural
  // equality holds — and the re-encoding is byte-identical anyway,
  // because both the wire format and the hash are arena-independent.
  ASSERT_EQ(R->Funcs.size(), M.Funcs.size());
  for (size_t I = 0; I < M.Funcs.size(); ++I) {
    EXPECT_NE(R->Funcs[I].Ty.get(), M.Funcs[I].Ty.get());
    EXPECT_TRUE(structuralFunTypeEquals(*R->Funcs[I].Ty, *M.Funcs[I].Ty));
  }
  EXPECT_EQ(serial::write(*R), Bytes);
  EXPECT_EQ(serial::moduleHash(*R), serial::moduleHash(M));

  // Decoding into the private arena again dedups against the first read:
  // same canonical nodes.
  auto R2 = serial::read(Bytes, Private);
  ASSERT_TRUE(bool(R2));
  for (size_t I = 0; I < M.Funcs.size(); ++I)
    EXPECT_EQ(R2->Funcs[I].Ty.get(), R->Funcs[I].Ty.get());
}

TEST(SerialFuzz, SeededModulesRoundTrip) {
  for (uint64_t Seed = 0; Seed < 60; ++Seed) {
    ir::Module M = Gen(Seed).module();
    std::vector<uint8_t> Bytes = serial::write(M);
    auto R = serial::read(Bytes);
    ASSERT_TRUE(bool(R)) << "seed " << Seed << ": " << R.error().message();
    EXPECT_EQ(serial::write(*R), Bytes) << "seed " << Seed;
    for (size_t I = 0; I < M.Funcs.size(); ++I)
      EXPECT_EQ(R->Funcs[I].Ty.get(), M.Funcs[I].Ty.get())
          << "seed " << Seed << " func " << I;

    // Independent arena: decode and re-encode must agree byte-for-byte.
    auto Private = std::make_shared<TypeArena>();
    auto RP = serial::read(Bytes, Private);
    ASSERT_TRUE(bool(RP)) << "seed " << Seed;
    EXPECT_EQ(serial::write(*RP), Bytes) << "seed " << Seed;
  }
}

//===----------------------------------------------------------------------===//
// Content hash
//===----------------------------------------------------------------------===//

TEST(Serial, ModuleHashDiscriminatesContent) {
  serial::ModuleHash A = serial::moduleHash(rwbench::loopModule(100));
  serial::ModuleHash B = serial::moduleHash(rwbench::loopModule(100));
  serial::ModuleHash C = serial::moduleHash(rwbench::loopModule(101));
  EXPECT_EQ(A, B);
  EXPECT_NE(A, C);

  // A renamed module is different content (names decide import routing).
  ir::Module M = rwbench::loopModule(100);
  M.Name = "renamed";
  EXPECT_NE(serial::moduleHash(M), A);

  // Hashes are arena-independent: the same structure interned into a
  // private arena hashes identically.
  TypeArena Private;
  serial::ModuleHash D;
  {
    ArenaScope Scope(Private);
    D = serial::moduleHash(rwbench::loopModule(100));
  }
  EXPECT_EQ(D, A);
}

//===----------------------------------------------------------------------===//
// Rejection of malformed input
//===----------------------------------------------------------------------===//

TEST(Serial, RejectsCorruptHeader) {
  std::vector<uint8_t> Bytes = serial::write(rwbench::loopModule(10));

  {
    auto B = Bytes;
    B[0] ^= 0xff; // Magic.
    auto R = serial::read(B);
    ASSERT_FALSE(bool(R));
    EXPECT_NE(R.error().message().find("bad magic"), std::string::npos);
  }
  {
    auto B = Bytes;
    B[4] += 1; // Version.
    auto R = serial::read(B);
    ASSERT_FALSE(bool(R));
    EXPECT_NE(R.error().message().find("format version"), std::string::npos);
  }
  {
    auto B = Bytes;
    B[8] ^= 0x01; // Payload length.
    auto R = serial::read(B);
    ASSERT_FALSE(bool(R));
    EXPECT_NE(R.error().message().find("length mismatch"), std::string::npos);
  }
  {
    auto B = Bytes;
    B[16] ^= 0x01; // Checksum field.
    auto R = serial::read(B);
    ASSERT_FALSE(bool(R));
    EXPECT_NE(R.error().message().find("checksum"), std::string::npos);
  }
  {
    auto B = Bytes;
    B[serial::HeaderSize] ^= 0x01; // Payload byte: checksum catches it.
    auto R = serial::read(B);
    ASSERT_FALSE(bool(R));
    EXPECT_NE(R.error().message().find("checksum"), std::string::npos);
  }
  {
    auto B = Bytes;
    B.push_back(0); // Trailing byte: length field no longer matches.
    auto R = serial::read(B);
    ASSERT_FALSE(bool(R));
  }
}

TEST(Serial, RejectsNonMinimalVarints) {
  // The writer emits minimal LEB128; a zero-padded re-encoding of the
  // same value is a *different byte string* for the same module, which
  // the reader rejects to keep accepted blobs writer-shaped.
  std::vector<uint8_t> Bytes = serial::write(rwbench::loopModule(5));
  uint8_t Count = Bytes[serial::HeaderSize]; // Leading type-table count.
  ASSERT_LT(Count, 0x80u);
  std::vector<uint8_t> B(Bytes.begin(), Bytes.begin() + serial::HeaderSize);
  B.push_back(0x80 | Count); // Same value, non-minimal: extra 0x00 byte.
  B.push_back(0x00);
  B.insert(B.end(), Bytes.begin() + serial::HeaderSize + 1, Bytes.end());
  uint64_t PLen = B.size() - serial::HeaderSize;
  for (int I = 0; I < 8; ++I)
    B[8 + I] = static_cast<uint8_t>(PLen >> (8 * I));
  fixChecksum(B);
  auto R = serial::read(B);
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().message().find("non-minimal"), std::string::npos)
      << R.error().message();
}

TEST(Serial, RejectsEveryTruncation) {
  std::vector<uint8_t> Bytes = serial::write(rwbench::allocModule(4, true));
  // Every prefix must fail cleanly (truncations invalidate the length
  // field or cut the payload mid-record).
  size_t Step = Bytes.size() > 512 ? 7 : 1;
  for (size_t Len = 0; Len < Bytes.size(); Len += Step) {
    std::vector<uint8_t> B(Bytes.begin(), Bytes.begin() + Len);
    auto R = serial::read(B);
    EXPECT_FALSE(bool(R)) << "prefix length " << Len;
  }
  // Truncations with a *repaired* length+checksum reach the structural
  // layer: still a clean failure (mid-record cut), never UB.
  for (size_t Len = serial::HeaderSize + 1; Len < Bytes.size(); Len += Step) {
    std::vector<uint8_t> B(Bytes.begin(), Bytes.begin() + Len);
    uint64_t PLen = Len - serial::HeaderSize;
    for (int I = 0; I < 8; ++I)
      B[8 + I] = static_cast<uint8_t>(PLen >> (8 * I));
    fixChecksum(B);
    auto R = serial::read(B);
    EXPECT_FALSE(bool(R)) << "repaired prefix length " << Len;
  }
}

TEST(SerialFuzz, ChecksumRepairedByteFlipsNeverCrash) {
  // Single-byte payload corruptions with a recomputed checksum exercise
  // the structural validators (index/category/enum/length checks): each
  // must either decode to some module or fail with a diagnostic —
  // memory-safely either way (the ASan job runs this test).
  std::vector<uint8_t> Bytes = serial::write(rwbench::wideModule(2));
  std::mt19937_64 Rng(42);
  unsigned Rejected = 0, Accepted = 0;
  for (unsigned I = 0; I < 300; ++I) {
    auto B = Bytes;
    size_t Off = serial::HeaderSize + Rng() % (B.size() - serial::HeaderSize);
    B[Off] ^= 1u << (Rng() % 8);
    fixChecksum(B);
    auto R = serial::read(B);
    if (bool(R)) {
      ++Accepted;
      serial::write(*R); // A decoded module must re-encode safely.
    } else {
      ++Rejected;
      EXPECT_FALSE(R.error().message().empty());
    }
  }
  // The validators must actually bite on a meaningful share of flips
  // (flips inside scalar immediates legitimately decode to a different
  // module, so acceptance is not an error).
  EXPECT_GT(Rejected, 20u);
  (void)Accepted;
}

TEST(Serial, FailedReadLeavesTargetArenaUntouched) {
  // The checksum is not a MAC: an attacker can ship a structurally
  // invalid payload with a valid checksum. Such a read must not grow the
  // target arena (it has no eviction; interned garbage would be
  // permanent).
  std::vector<uint8_t> Bytes = serial::write(rwbench::wideModule(2));
  // Truncate mid-payload and repair length + checksum so the failure
  // happens in structural validation, after type-table parsing started.
  std::vector<uint8_t> B(Bytes.begin(), Bytes.begin() + Bytes.size() - 4);
  uint64_t PLen = B.size() - serial::HeaderSize;
  for (int I = 0; I < 8; ++I)
    B[8 + I] = static_cast<uint8_t>(PLen >> (8 * I));
  fixChecksum(B);

  auto Target = std::make_shared<TypeArena>();
  uint64_t Before = Target->stats().totalNodes();
  auto R = serial::read(B, Target);
  ASSERT_FALSE(bool(R));
  EXPECT_EQ(Target->stats().totalNodes(), Before)
      << "rejected payload interned nodes into the target arena";

  // A successful read into the same arena interns exactly the module's
  // nodes — and a repeated read adds nothing new.
  auto Ok = serial::read(Bytes, Target);
  ASSERT_TRUE(bool(Ok));
  uint64_t After = Target->stats().totalNodes();
  EXPECT_GT(After, Before);
  auto Ok2 = serial::read(Bytes, Target);
  ASSERT_TRUE(bool(Ok2));
  EXPECT_EQ(Target->stats().totalNodes(), After);
}

TEST(Serial, ConcurrentReadsInternSafely) {
  // Readers intern into the shared thread-safe arena while checks run —
  // the admission-server shape; the CI TSan job runs this test. All
  // decodes of one byte string must agree on canonical pointers.
  ir::Module M = rwbench::wideModule(6);
  std::vector<uint8_t> Bytes = serial::write(M);
  support::ThreadPool Pool(8);
  constexpr size_t N = 24;
  std::vector<ir::Module> Out(N);
  std::vector<Status> Checks(N);
  Pool.parallelFor(N, [&](size_t I) {
    auto R = serial::read(Bytes); // Global arena, racing other readers.
    ASSERT_TRUE(bool(R)) << R.error().message();
    Out[I] = R.take();
    if (I % 3 == 0) // And racing full checks over the same arena.
      Checks[I] = typing::checkModule(Out[I]);
  });
  for (size_t I = 0; I < N; ++I) {
    ASSERT_EQ(Out[I].Funcs.size(), M.Funcs.size());
    for (size_t F = 0; F < M.Funcs.size(); ++F)
      EXPECT_EQ(Out[I].Funcs[F].Ty.get(), M.Funcs[F].Ty.get());
    if (I % 3 == 0)
      EXPECT_TRUE(Checks[I].ok());
  }
}

//===----------------------------------------------------------------------===//
// Arena stats
//===----------------------------------------------------------------------===//

TEST(Serial, ArenaSerializedBytesEstimateTracksNodes) {
  TypeArena Private;
  ArenaScope Scope(Private);
  TypeArena::Stats S0 = Private.stats();
  EXPECT_EQ(S0.SerializedBytes, 0u);

  ir::Module M = rwbench::wideModule(4);
  TypeArena::Stats S1 = Private.stats();
  EXPECT_GT(S1.SerializedBytes, 0u);
  EXPECT_GT(S1.ApproxBytes, S1.SerializedBytes)
      << "wire estimate should be denser than in-memory nodes";

  // The estimate tracks rollback exactly (same journal).
  TypeArena::Checkpoint C = Private.checkpoint();
  Gen(7).module();
  EXPECT_GT(Private.stats().SerializedBytes, S1.SerializedBytes);
  Private.rollback(C);
  EXPECT_EQ(Private.stats().SerializedBytes, S1.SerializedBytes);
  (void)M;
}

} // namespace
