//===- tests/lower_test.cpp - RichWasm→Wasm lowering (§6) -----------------===//
//
// Differential testing: every program is executed both by the RichWasm
// small-step machine and — after lowering, validation, and binary
// round-trip — by the Wasm interpreter; numeric results must agree. This
// pins the semantics-preservation claim of the compiler. Also checks the
// erasure property (capability instructions emit no code), the allocator,
// and the host-assisted GC.
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "link/Link.h"
#include "lower/Lower.h"
#include "sem/Machine.h"
#include "wasm/Binary.h"
#include "wasm/Interp.h"
#include "support/ThreadPool.h"
#include "wasm/Validate.h"

#include <gtest/gtest.h>

using namespace rw;
using namespace rw::ir;
using namespace rw::ir::build;

namespace {

/// Runs "main" (type [] -> [i32-like]) through both pipelines and returns
/// (interp bits, lowered bits).
struct BothResults {
  uint64_t Interp = ~0ull;
  uint64_t Lowered = ~0ull;
  std::string Err;
  bool ok() const { return Err.empty(); }
};

BothResults runBoth(const ir::Module &M, const std::string &Export = "main") {
  BothResults R;
  // RichWasm machine.
  {
    auto Mach = link::instantiate({&M});
    if (!Mach) {
      R.Err = "link: " + Mach.error().message();
      return R;
    }
    auto Idx = link::findExport(M, Export);
    if (!Idx) {
      R.Err = "no export";
      return R;
    }
    auto Out = (*Mach)->invoke(0, *Idx, {}, {});
    if (!Out) {
      R.Err = "interp: " + Out.error().message();
      return R;
    }
    if (!Out->empty() && (*Out)[0].isNum())
      R.Interp = (*Out)[0].bits();
  }
  // Lowered pipeline: lower → validate → encode → decode → run.
  {
    auto LP = lower::lowerProgram({&M});
    if (!LP) {
      R.Err = "lower: " + LP.error().message();
      return R;
    }
    if (Status S = wasm::validate(LP->Module); !S) {
      R.Err = "validate: " + S.error().message();
      return R;
    }
    auto M2 = wasm::decode(wasm::encode(LP->Module));
    if (!M2) {
      R.Err = "codec: " + M2.error().message();
      return R;
    }
    wasm::WasmInstance Inst(*M2);
    if (Status S = Inst.initialize(); !S) {
      R.Err = "init: " + S.error().message();
      return R;
    }
    auto Out = Inst.invokeByName(M.Name + "." + Export, {});
    if (!Out) {
      R.Err = "wasm run: " + Out.error().message();
      return R;
    }
    if (!Out->empty())
      R.Lowered = (*Out)[0].Bits;
  }
  return R;
}

ir::Module mainModule(InstVec Body, std::vector<Type> Results,
                      std::vector<SizeRef> Locals = {}) {
  ir::Module M;
  M.Name = "t";
  M.Funcs.push_back(function({"main"},
                             FunType::get({}, arrow({}, std::move(Results))),
                             std::move(Locals), std::move(Body)));
  return M;
}

void expectAgree(const ir::Module &M, uint64_t Expected) {
  BothResults R = runBoth(M);
  ASSERT_TRUE(R.ok()) << R.Err;
  EXPECT_EQ(R.Interp, Expected);
  EXPECT_EQ(R.Lowered, Expected);
}

} // namespace

//===----------------------------------------------------------------------===//
// Numerics and control flow
//===----------------------------------------------------------------------===//

TEST(Lower, Arithmetic) {
  expectAgree(mainModule({iconst(30), iconst(12), addI32()}, {i32T()}), 42);
}

TEST(Lower, I64Arithmetic) {
  expectAgree(mainModule({i64const(1) , i64const(41),
                          binop(NumType::I64, BinopKind::Add)},
                         {i64T()}),
              42);
}

TEST(Lower, ControlFlow) {
  expectAgree(
      mainModule({iconst(1),
                  ifElse(arrow({}, {i32T()}), {}, {iconst(7)}, {iconst(9)})},
                 {i32T()}),
      7);
}

TEST(Lower, LoopSum) {
  // sum 1..10 via locals.
  InstVec Body = {
      iconst(0), setLocal(0), iconst(0), setLocal(1),
      block(arrow({}, {}), {},
            {loop(arrow({}, {}),
                  {getLocal(1, Qual::unr()), iconst(1), addI32(),
                   setLocal(1), getLocal(0, Qual::unr()),
                   getLocal(1, Qual::unr()), addI32(), setLocal(0),
                   getLocal(1, Qual::unr()), iconst(10),
                   relop(NumType::I32, RelopKind::Lt), brIf(0)})}),
      getLocal(0, Qual::unr()),
  };
  expectAgree(mainModule(Body, {i32T()},
                         {Size::constant(32), Size::constant(32)}),
              55);
}

TEST(Lower, LocalStrongUpdateI64) {
  // A 64-bit slot first holds an i32, then an i64 (strong local update).
  InstVec Body = {
      iconst(5),     setLocal(0),
      i64const(40),  setLocal(0),
      getLocal(0, Qual::unr()),
      i64const(2),   binop(NumType::I64, BinopKind::Add),
  };
  expectAgree(mainModule(Body, {i64T()}, {Size::constant(64)}), 42);
}

//===----------------------------------------------------------------------===//
// Heap structures
//===----------------------------------------------------------------------===//

TEST(Lower, StructRoundTrip) {
  InstVec Body = {
      iconst(7),
      structMalloc({Size::constant(32)}, Qual::lin()),
      memUnpack(arrow({}, {i32T()}), {{0, i32T()}},
                {iconst(35), structSwap(0), setLocal(0), structFree(),
                 getLocal(0, Qual::unr())}),
  };
  expectAgree(mainModule(Body, {i32T()}, {Size::constant(32)}), 7);
}

TEST(Lower, StructTwoFieldsMixedWidth) {
  InstVec Body = {
      iconst(2), i64const(40),
      structMalloc({Size::constant(32), Size::constant(64)}, Qual::lin()),
      memUnpack(arrow({}, {i64T()}), {{0, i32T()}, {1, i64T()}},
                {structGet(0), setLocal(0), // i32 field
                 structGet(1), setLocal(1), // i64 field
                 structFree(),
                 getLocal(0, Qual::unr()), cvt(NumType::I32, NumType::I64),
                 getLocal(1, Qual::unr()),
                 binop(NumType::I64, BinopKind::Add)}),
  };
  expectAgree(mainModule(Body, {i64T()},
                         {Size::constant(32), Size::constant(64)}),
              42);
}

TEST(Lower, UnrStructSharedMutation) {
  InstVec Body = {
      iconst(40),
      structMalloc({Size::constant(32)}, Qual::unr()),
      memUnpack(arrow({}, {i32T()}), {{0, i32T()}, {1, i32T()}},
                {// Mutate through one copy, read through another.
                 teeLocal(0), iconst(42), structSet(0), drop(),
                 getLocal(0, Qual::unr()), structGet(0), setLocal(1), drop(),
                 getLocal(1, Qual::unr()), iconst(0), setLocal(0)}),
  };
  ir::Module M = mainModule(Body, {i32T()},
                            {Size::constant(64), Size::constant(32)});
  expectAgree(M, 42);
}

TEST(Lower, VariantDispatch) {
  std::vector<Type> Cases = {unitT(), i32T()};
  InstVec Body = {
      iconst(33),
      variantMalloc(1, Cases, Qual::lin()),
      memUnpack(arrow({}, {i32T()}), {},
                {variantCase(Qual::lin(), variantHT(Cases),
                             arrow({}, {i32T()}), {},
                             {{drop(), iconst(-1)}, {}})}),
  };
  expectAgree(mainModule(Body, {i32T()}), 33);
}

TEST(Lower, VariantUnitCase) {
  std::vector<Type> Cases = {unitT(), i32T()};
  InstVec Body = {
      // A fresh local holds unit; reading it builds the unit payload. (A
      // unit payload occupies zero words.)
      getLocal(0, Qual::unr()),
      variantMalloc(0, Cases, Qual::lin()),
      memUnpack(arrow({}, {i32T()}), {},
                {variantCase(Qual::lin(), variantHT(Cases),
                             arrow({}, {i32T()}), {},
                             {{drop(), iconst(55)}, {}})}),
  };
  expectAgree(mainModule(Body, {i32T()}, {Size::constant(0)}), 55);
}

TEST(Lower, ArrayOps) {
  InstVec Body = {
      iconst(7), uconst(5), arrayMalloc(Qual::lin()),
      memUnpack(arrow({}, {i32T()}), {{0, i32T()}, {1, i32T()}},
                {uconst(2), iconst(9), arraySet(), uconst(2), arrayGet(),
                 setLocal(0), uconst(4), arrayGet(), setLocal(1),
                 arrayFree(), getLocal(0, Qual::unr()),
                 getLocal(1, Qual::unr()), addI32()}),
  };
  expectAgree(mainModule(Body, {i32T()},
                         {Size::constant(32), Size::constant(32)}),
              16);
}

TEST(Lower, ExistentialPackUnpack) {
  // The opened value is abstract (α#); it can only be dropped or passed
  // along abstractly — computing with it is rejected by the checker. The
  // Fig 9 pattern (applying a packed coderef to the abstract value) is
  // covered by ExistentialWithCoderef below.
  HeapTypeRef Ex =
      exHT(Qual::unr(), Size::constant(32), Type(varPT(0), Qual::unr()));
  InstVec Body = {
      iconst(21),
      existPack(numPT(NumType::I32), Ex, Qual::lin()),
      memUnpack(arrow({}, {i32T()}), {},
                {existUnpack(Qual::lin(), Ex, arrow({}, {i32T()}), {},
                             {drop(), iconst(42)})}),
  };
  expectAgree(mainModule(Body, {i32T()}), 42);
}

TEST(Lower, ExistentialWithCoderef) {
  // Fig 9 in miniature: a package hides a value α together with a coderef
  // ∀ε. α → i32; the client applies the coderef to the abstract value.
  // Lowering must use the runtime shape dispatch at the call_indirect.
  Type AlphaV(varPT(0), Qual::unr());
  FunTypeRef OpTy =
      FunType::get({}, build::arrow({AlphaV}, {i32T()}));
  HeapTypeRef Ex = exHT(
      Qual::unr(), Size::constant(32),
      Type(prodPT({AlphaV, Type(coderefPT(OpTy), Qual::unr())}),
           Qual::unr()));

  ir::Module M;
  M.Name = "t";
  // f0: i32 -> i32, doubles.
  M.Funcs.push_back(function(
      {}, FunType::get({}, arrow({i32T()}, {i32T()})), {},
      {getLocal(0, Qual::unr()), iconst(2), mulI32()}));
  M.Tab.Entries = {0};
  // main: pack (21, coderef f0) as ∃α.(α, coderef α→i32) with witness i32.
  M.Funcs.push_back(function(
      {"main"}, FunType::get({}, arrow({}, {i32T()})), {},
      {iconst(21), coderef(0), group(2, Qual::unr()),
       existPack(numPT(NumType::I32), Ex, Qual::lin()),
       memUnpack(
           arrow({}, {i32T()}), {},
           {existUnpack(Qual::lin(), Ex, arrow({}, {i32T()}), {},
                        {// Stack: the opened (α, coderef α→i32) pair.
                         ungroup(), callIndirect()})})}));
  expectAgree(M, 42);
}

//===----------------------------------------------------------------------===//
// Calls, polymorphism, coderefs
//===----------------------------------------------------------------------===//

TEST(Lower, DirectCall) {
  ir::Module M;
  M.Name = "t";
  M.Funcs.push_back(function(
      {}, FunType::get({}, arrow({i32T(), i32T()}, {i32T()})), {},
      {getLocal(0, Qual::unr()), getLocal(1, Qual::unr()), addI32()}));
  M.Funcs.push_back(function({"main"},
                             FunType::get({}, arrow({}, {i32T()})), {},
                             {iconst(30), iconst(12), call(0)}));
  expectAgree(M, 42);
}

TEST(Lower, PolymorphicIdentityCoercion) {
  // id : ∀(unr ⪯ α ≲ 64). [α^unr] -> [α^unr]; calls at i32 and i64 need
  // the paper's stack coercions.
  ir::Module M;
  M.Name = "t";
  FunTypeRef IdTy = FunType::get(
      {Quant::type(Qual::unr(), Size::constant(64), true)},
      arrow({Type(varPT(0), Qual::unr())}, {Type(varPT(0), Qual::unr())}));
  M.Funcs.push_back(function({}, IdTy, {}, {getLocal(0, Qual::unr())}));
  M.Funcs.push_back(function(
      {"main"}, FunType::get({}, arrow({}, {i64T()})), {},
      {iconst(2), call(0, {Index::pretype(numPT(NumType::I32))}),
       cvt(NumType::I32, NumType::I64),
       i64const(40), call(0, {Index::pretype(numPT(NumType::I64))}),
       binop(NumType::I64, BinopKind::Add)}));
  expectAgree(M, 42);
}

TEST(Lower, IndirectCallThroughTable) {
  ir::Module M;
  M.Name = "t";
  M.Funcs.push_back(function(
      {}, FunType::get({}, arrow({i32T()}, {i32T()})), {},
      {getLocal(0, Qual::unr()), iconst(2), mulI32()}));
  M.Tab.Entries = {0};
  M.Funcs.push_back(function(
      {"main"}, FunType::get({}, arrow({}, {i32T()})), {},
      {iconst(21), coderef(0), callIndirect()}));
  expectAgree(M, 42);
}

TEST(Lower, CrossModuleCall) {
  ir::Module Lib;
  Lib.Name = "lib";
  Lib.Funcs.push_back(function(
      {"inc"}, FunType::get({}, arrow({i32T()}, {i32T()})), {},
      {getLocal(0, Qual::unr()), iconst(1), addI32()}));
  ir::Module App;
  App.Name = "app";
  App.Funcs.push_back(importFunc(
      {"lib", "inc"}, FunType::get({}, arrow({i32T()}, {i32T()}))));
  App.Funcs.push_back(function({"main"},
                               FunType::get({}, arrow({}, {i32T()})), {},
                               {iconst(41), call(0)}));

  // RichWasm interp.
  auto Mach = link::instantiate({&Lib, &App});
  ASSERT_TRUE(bool(Mach)) << Mach.error().message();
  auto R1 = (*Mach)->invoke(1, 1, {}, {});
  ASSERT_TRUE(bool(R1));
  EXPECT_EQ((*R1)[0].bits(), 42u);

  // Lowered.
  auto LP = lower::lowerProgram({&Lib, &App});
  ASSERT_TRUE(bool(LP)) << LP.error().message();
  ASSERT_TRUE(wasm::validate(LP->Module).ok())
      << wasm::validate(LP->Module).error().message();
  wasm::WasmInstance Inst(LP->Module);
  ASSERT_TRUE(Inst.initialize().ok());
  auto R2 = Inst.invokeByName("app.main", {});
  ASSERT_TRUE(bool(R2)) << R2.error().message();
  EXPECT_EQ((*R2)[0].asU32(), 42u);
}

//===----------------------------------------------------------------------===//
// Globals and start
//===----------------------------------------------------------------------===//

TEST(Lower, GlobalInitAndStart) {
  ir::Module M;
  M.Name = "t";
  ir::Global G;
  G.Mut = true;
  G.P = numPT(NumType::I32);
  G.Init = {iconst(20)};
  M.Globals.push_back(G);
  M.Funcs.push_back(function({}, FunType::get({}, arrow({}, {})), {},
                             {getGlobal(0), iconst(22), addI32(),
                              setGlobal(0)}));
  M.Funcs.push_back(function({"main"},
                             FunType::get({}, arrow({}, {i32T()})), {},
                             {getGlobal(0)}));
  M.Start = 0;
  expectAgree(M, 42);
}

//===----------------------------------------------------------------------===//
// Erasure: capability bookkeeping compiles to zero instructions
//===----------------------------------------------------------------------===//

namespace {

/// Counts instructions in a lowered function body.
size_t countInsts(const std::vector<wasm::WInst> &Body) {
  size_t N = 0;
  for (const wasm::WInst &I : Body) {
    ++N;
    N += countInsts(I.Body);
    N += countInsts(I.Else);
  }
  return N;
}

} // namespace

TEST(Lower, CapabilityOpsAreErased) {
  // Two variants of the same function: one shuffles capability/ownership
  // tokens heavily, the other does not. The lowered code must be
  // *identical in size* — the zero-cost claim (§6, contrast with MSWasm).
  auto MkBody = [](bool WithCaps) {
    InstVec Inner;
    if (WithCaps) {
      for (int J = 0; J < 16; ++J) {
        Inner.push_back(refSplit()); // ref → cap, ptr
        Inner.push_back(refJoin());  // cap, ptr → ref
        Inner.push_back(qualify(Qual::lin()));
      }
    }
    Inner.push_back(structGet(0));
    Inner.push_back(setLocal(0));
    Inner.push_back(structFree());
    Inner.push_back(getLocal(0, Qual::unr()));
    InstVec Body = {
        iconst(42),
        structMalloc({Size::constant(32)}, Qual::lin()),
        memUnpack(arrow({}, {i32T()}), {{0, i32T()}}, std::move(Inner)),
    };
    return Body;
  };
  ir::Module Plain = mainModule(MkBody(false), {i32T()}, {Size::constant(32)});
  ir::Module Caps = mainModule(MkBody(true), {i32T()}, {Size::constant(32)});
  auto LP1 = lower::lowerProgram({&Plain});
  auto LP2 = lower::lowerProgram({&Caps});
  ASSERT_TRUE(bool(LP1)) << LP1.error().message();
  ASSERT_TRUE(bool(LP2)) << LP2.error().message();
  // Find the lowered main bodies (same index in both).
  uint32_t I1 = LP1->Exports.at("t.main") -
                static_cast<uint32_t>(LP1->Module.ImportFuncs.size());
  uint32_t I2 = LP2->Exports.at("t.main") -
                static_cast<uint32_t>(LP2->Module.ImportFuncs.size());
  EXPECT_EQ(countInsts(LP1->Module.Funcs[I1].Body),
            countInsts(LP2->Module.Funcs[I2].Body));
  expectAgree(Caps, 42);
}

//===----------------------------------------------------------------------===//
// Allocator behaviour and host GC
//===----------------------------------------------------------------------===//

TEST(Lower, FreeListReusesMemory) {
  // Allocate and free in a loop: the bump pointer must stabilize (the
  // free list recycles the block).
  InstVec Body = {
      iconst(0), setLocal(1),
      block(arrow({}, {}), {},
            {loop(arrow({}, {}),
                  {iconst(7),
                   structMalloc({Size::constant(32)}, Qual::lin()),
                   memUnpack(arrow({}, {}), {}, {structFree()}),
                   getLocal(1, Qual::unr()), iconst(1), addI32(),
                   setLocal(1), getLocal(1, Qual::unr()), iconst(100),
                   relop(NumType::I32, RelopKind::Lt), brIf(0)})}),
      iconst(0),
  };
  ir::Module M = mainModule(Body, {i32T()},
                            {Size::constant(64), Size::constant(32)});
  auto LP = lower::lowerProgram({&M});
  ASSERT_TRUE(bool(LP)) << LP.error().message();
  ASSERT_TRUE(wasm::validate(LP->Module).ok())
      << wasm::validate(LP->Module).error().message();
  wasm::WasmInstance Inst(LP->Module);
  ASSERT_TRUE(Inst.initialize().ok());
  auto R = Inst.invokeByName("t.main", {});
  ASSERT_TRUE(bool(R)) << R.error().message();
  // 100 allocations, 100 frees; everything reused.
  EXPECT_EQ(Inst.global(LP->Runtime.GAllocs).asU32(), 100u);
  EXPECT_EQ(Inst.global(LP->Runtime.GFrees).asU32(), 100u);
  EXPECT_EQ(Inst.global(LP->Runtime.GLive).asU32(), 0u);
  // Bump pointer advanced by roughly one block, not a hundred.
  EXPECT_LT(Inst.global(LP->Runtime.GBump).asU32(),
            lower::RuntimeLayout::HeapBase + 64);
}

TEST(Lower, HostGcCollectsGarbage) {
  // Allocate unrestricted cells in a loop without keeping references.
  InstVec Body = {
      iconst(0), setLocal(1),
      block(arrow({}, {}), {},
            {loop(arrow({}, {}),
                  {iconst(7),
                   structMalloc({Size::constant(32)}, Qual::unr()),
                   memUnpack(arrow({}, {}), {}, {drop()}),
                   getLocal(1, Qual::unr()), iconst(1), addI32(),
                   setLocal(1), getLocal(1, Qual::unr()), iconst(50),
                   relop(NumType::I32, RelopKind::Lt), brIf(0)})}),
      iconst(0),
  };
  ir::Module M = mainModule(Body, {i32T()},
                            {Size::constant(64), Size::constant(32)});
  auto LP = lower::lowerProgram({&M});
  ASSERT_TRUE(bool(LP)) << LP.error().message();
  wasm::WasmInstance Inst(LP->Module);
  ASSERT_TRUE(Inst.initialize().ok());
  ASSERT_TRUE(bool(Inst.invokeByName("t.main", {})));
  EXPECT_EQ(Inst.global(LP->Runtime.GLive).asU32(), 50u);
  lower::HostGc Gc(Inst, LP->Runtime, LP->RefGlobals);
  lower::HostGc::Stats St = Gc.collect();
  EXPECT_EQ(St.Swept, 50u);
  EXPECT_EQ(Inst.global(LP->Runtime.GLive).asU32(), 0u);
}

TEST(Lower, HostGcTracesThroughHeap) {
  // A chain root-global → unr cell → unr cell stays alive; an unlinked
  // cell dies.
  ir::Module M;
  M.Name = "t";
  HeapTypeRef InnerHT = structHT({{i32T(), Size::constant(32)}});
  Type InnerRef(exLocPT(Type(refPT(Privilege::RW, Loc::var(0), InnerHT),
                             Qual::unr())),
                Qual::unr());
  ir::Global G;
  G.Mut = true;
  G.P = exLocPT(Type(
      refPT(Privilege::RW, Loc::var(0),
            structHT({{InnerRef, Size::constant(64)}})),
      Qual::unr()));
  // Initializer: inner = {7}; outer = {inner}; plus one garbage cell.
  G.Init = {
      iconst(7),
      structMalloc({Size::constant(32)}, Qual::unr()), // inner
      structMalloc({Size::constant(64)}, Qual::unr()), // outer holds inner
      // garbage:
      iconst(9),
      structMalloc({Size::constant(32)}, Qual::unr()),
      memUnpack(arrow({}, {}), {}, {drop()}),
  };
  M.Globals.push_back(G);
  M.Funcs.push_back(function({"main"},
                             FunType::get({}, arrow({}, {i32T()})), {},
                             {iconst(0)}));
  auto LP = lower::lowerProgram({&M});
  ASSERT_TRUE(bool(LP)) << LP.error().message();
  ASSERT_TRUE(wasm::validate(LP->Module).ok())
      << wasm::validate(LP->Module).error().message();
  wasm::WasmInstance Inst(LP->Module);
  ASSERT_TRUE(Inst.initialize().ok());
  EXPECT_EQ(Inst.global(LP->Runtime.GLive).asU32(), 3u);
  ASSERT_EQ(LP->RefGlobals.size(), 1u);
  lower::HostGc Gc(Inst, LP->Runtime, LP->RefGlobals);
  lower::HostGc::Stats St = Gc.collect();
  EXPECT_EQ(St.Marked, 2u); // outer + inner survive
  EXPECT_EQ(St.Swept, 1u);  // the garbage cell dies
  EXPECT_EQ(Inst.global(LP->Runtime.GLive).asU32(), 2u);
}

//===----------------------------------------------------------------------===//
// Unified import matching (link/Resolve.h semantics on the lowering path)
//===----------------------------------------------------------------------===//

TEST(Lower, SelfImportLowersToHostImportLikeInstantiate) {
  // Imports resolve against *earlier modules only* (Wasm instantiation
  // order) — the same rule link::instantiate applies. A module importing
  // its own export is therefore not bound in-set: it lowers to a
  // host-satisfiable Wasm import (and link::instantiate reports it
  // unresolved), instead of the pre-unification behavior of silently
  // binding to the module's own earlier function.
  ir::Module M;
  M.Name = "m";
  FunTypeRef Fn = FunType::get({}, arrow({i32T()}, {i32T()}));
  M.Funcs.push_back(function({"f"}, Fn, {}, {getLocal(0, Qual::unr())}));
  M.Funcs.push_back(importFunc({"m", "f"}, Fn));
  M.Funcs.push_back(function({"main"},
                             FunType::get({}, arrow({}, {i32T()})), {},
                             {iconst(21), call(1)}));

  auto LP = lower::lowerProgram({&M});
  ASSERT_TRUE(bool(LP)) << LP.error().message();
  ASSERT_EQ(LP->Module.ImportFuncs.size(), 1u);
  EXPECT_EQ(LP->Module.ImportFuncs[0].Mod, "m");
  EXPECT_EQ(LP->Module.ImportFuncs[0].Name, "f");
  ASSERT_TRUE(wasm::validate(LP->Module).ok());

  // The host satisfies the open import; the program runs.
  wasm::WasmInstance Inst(LP->Module);
  Inst.registerHost("m", "f",
                    [](wasm::Instance &, const std::vector<wasm::WValue> &A)
                        -> Expected<std::vector<wasm::WValue>> {
                      return std::vector<wasm::WValue>{
                          wasm::WValue::i32(A[0].asU32() * 2)};
                    });
  ASSERT_TRUE(Inst.initialize().ok());
  auto R = Inst.invokeByName("m.main", {});
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_EQ((*R)[0].Bits, 42u);

  // instantiate agrees that the import has no in-set provider.
  auto Mach = link::instantiate({&M});
  ASSERT_FALSE(bool(Mach));
  EXPECT_NE(Mach.error().message().find("unresolved import"),
            std::string::npos)
      << Mach.error().message();
}

TEST(Lower, GlobalInitCallIndirectGetsTypePatched) {
  // Regression: the call_indirect type-index patch pass used to run
  // before global initializers were lowered, so an indirect call inside
  // one kept its placeholder type index 0 (some unrelated signature) and
  // failed validation or trapped. The patch now runs after all bodies
  // exist.
  ir::Module M;
  M.Name = "t";
  M.Funcs.push_back(function(
      {}, FunType::get({}, arrow({i32T()}, {i32T()})), {},
      {getLocal(0, Qual::unr()), iconst(2), mulI32()}));
  M.Tab.Entries = {0};
  ir::Global G;
  G.Mut = true;
  G.P = numPT(NumType::I32);
  G.Init = {iconst(21), coderef(0), callIndirect()};
  M.Globals.push_back(G);
  M.Funcs.push_back(function({"main"},
                             FunType::get({}, arrow({}, {i32T()})), {},
                             {getGlobal(0)}));
  expectAgree(M, 42);
}

TEST(Lower, TwoArenaInputsRejectedWithDocumentedError) {
  // Regression for the lowerProgram preamble: modules interned in
  // different arenas must produce the documented shared-arena error —
  // never cross-arena interning (whose pointer-equality checks would
  // silently misbehave).
  ir::Module A;
  A.Name = "arena_a";
  A.Funcs.push_back(function({"f"},
                             FunType::get({}, arrow({i32T()}, {i32T()})),
                             {}, {getLocal(0, Qual::unr())}));

  auto OtherArena = std::make_shared<ir::TypeArena>();
  ir::Module B;
  {
    ir::ArenaScope Scope(*OtherArena);
    B.Name = "arena_b";
    B.Funcs.push_back(function({"g"},
                               FunType::get({}, arrow({i32T()}, {i32T()})),
                               {}, {getLocal(0, Qual::unr())}));
  }
  B.Arena = OtherArena;

  auto LP = lower::lowerProgram({&A, &B});
  ASSERT_FALSE(bool(LP));
  EXPECT_NE(LP.error().message().find("different type arenas"),
            std::string::npos)
      << LP.error().message();
  EXPECT_NE(LP.error().message().find("arena_a"), std::string::npos);
  EXPECT_NE(LP.error().message().find("arena_b"), std::string::npos);

  // Same rejection through the batch-options entry point (pool set), so
  // the parallel path cannot reach cross-arena state either.
  support::ThreadPool Pool(3);
  lower::LowerOptions LO;
  LO.Pool = &Pool;
  auto LP2 = lower::lowerProgram({&A, &B}, LO);
  ASSERT_FALSE(bool(LP2));
  EXPECT_NE(LP2.error().message().find("different type arenas"),
            std::string::npos);
}

TEST(Lower, ImportTypeMismatchRejectedOnLoweringPath) {
  // A *named* provider with the wrong type is an error (previously the
  // lowering matched by name only).
  ir::Module Lib;
  Lib.Name = "lib";
  Lib.Funcs.push_back(function({"f"},
                               FunType::get({}, arrow({i32T()}, {i32T()})),
                               {}, {getLocal(0, Qual::unr())}));
  ir::Module Client;
  Client.Name = "client";
  Client.Funcs.push_back(
      importFunc({"lib", "f"}, FunType::get({}, arrow({i64T()}, {i64T()}))));
  auto LP = lower::lowerProgram({&Lib, &Client});
  ASSERT_FALSE(bool(LP));
  EXPECT_NE(LP.error().message().find("type mismatch"), std::string::npos)
      << LP.error().message();
}
