//===- tests/arena_churn_test.cpp - Bounded arena growth under churn ------===//
//
// A long-lived admission server re-checks untrusted modules forever; the
// checker mints skolem-tainted types into the arena on every exist.unpack
// and mem.unpack, and adversarial module streams mint *fresh* ones each
// time. These tests pin the TypeArena::Checkpoint/rollback mechanism that
// bounds that growth (DESIGN.md §7):
//
//   * rollbackSkolems removes exactly the skolem-tainted nodes interned
//     after the checkpoint (safe once a check's artifacts are dropped);
//   * full rollback returns the arena to its checkpoint node population —
//     the shape of check-and-discard admission — and stays flat across
//     1000 adversarial re-checks with per-iteration-fresh types;
//   * stats() exposes the node counts / bytes a server monitors.
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"
#include "ir/Builder.h"
#include "ir/TypeArena.h"
#include "typing/Checker.h"

#include <gtest/gtest.h>

using namespace rw;
using namespace rw::ir;
using namespace rw::ir::build;

namespace {

/// A module whose check opens a heap existential (exist.unpack mints a
/// skolem pretype and substitutes it through the body — the skolem-
/// tainted intermediates rollback targets). \p Salt varies the
/// existential's size bound, so every salt mints *different* tainted
/// nodes: the adversarial stream.
ir::Module skolemModule(uint64_t Salt) {
  ir::Module M;
  M.Name = "adv";
  HeapTypeRef Ex = exHT(Qual::unr(), Size::constant(32 + Salt % 97), i32T());
  InstVec Body = {
      iconst(7),
      existPack(numPT(NumType::I32), Ex, Qual::lin()),
      memUnpack(arrow({}, {i32T()}), {{0, i32T()}},
                {existUnpack(Qual::lin(), Ex, arrow({}, {i32T()}), {},
                             {drop(), iconst(3)}),
                 setLocal(0), getLocal(0, Qual::unr())}),
  };
  M.Funcs.push_back(function({"main"},
                             FunType::get({}, arrow({}, {i32T()})),
                             {Size::constant(32)}, std::move(Body)));
  return M;
}

} // namespace

TEST(ArenaChurn, StatsAccessorReportsPopulation) {
  auto Arena = std::make_shared<TypeArena>();
  ArenaScope Scope(*Arena);
  ir::Module M = rwbench::wideModule(4);
  M.Arena = Arena;
  ASSERT_TRUE(typing::checkModule(M).ok());

  TypeArena::Stats St = Arena->stats();
  EXPECT_GT(St.PretypeNodes, 0u);
  EXPECT_GT(St.HeapTypeNodes, 0u);
  EXPECT_GT(St.FunTypeNodes, 0u);
  EXPECT_GT(St.SizeNodes, 0u);
  EXPECT_GT(St.ApproxBytes, 0u);
  EXPECT_EQ(St.totalNodes(), St.PretypeNodes + St.HeapTypeNodes +
                                 St.FunTypeNodes + St.SizeNodes);
}

TEST(ArenaChurn, RollbackSkolemsRemovesOnlyTaintedNodes) {
  auto Arena = std::make_shared<TypeArena>();
  ArenaScope Scope(*Arena);
  ir::Module M = skolemModule(1);
  M.Arena = Arena;

  TypeArena::Stats Before = Arena->stats();
  EXPECT_EQ(Before.SkolemNodes, 0u); // Module types mention no skolem.
  TypeArena::Checkpoint C = Arena->checkpoint();

  ASSERT_TRUE(typing::checkModule(M).ok());
  TypeArena::Stats Checked = Arena->stats();
  EXPECT_GT(Checked.SkolemNodes, 0u) << "the check mints tainted nodes";

  uint64_t Removed = Arena->rollbackSkolems(C);
  EXPECT_GT(Removed, 0u);
  TypeArena::Stats After = Arena->stats();
  EXPECT_EQ(After.SkolemNodes, 0u);
  // Non-tainted nodes interned during the check (judgment by-products on
  // concrete types) survive a skolem-only rollback.
  EXPECT_EQ(After.totalNodes(), Checked.totalNodes() - Removed);
  EXPECT_LT(After.ApproxBytes, Checked.ApproxBytes);

  // The module itself is untouched: re-checking it still succeeds and
  // steady-state re-mints the same tainted population.
  ASSERT_TRUE(typing::checkModule(M).ok());
  EXPECT_EQ(Arena->stats().SkolemNodes, Checked.SkolemNodes);
}

TEST(ArenaChurn, SteadyStateFlatAcrossAdversarialRechecks) {
  // The acceptance bar: 1000 re-checks of per-iteration-fresh adversarial
  // modules, each under a checkpoint fully rolled back after the verdict
  // (check-and-discard admission), leave the arena's node count exactly
  // where it started.
  auto Arena = std::make_shared<TypeArena>();
  ArenaScope Scope(*Arena);

  // Warm the leaf caches etc. with one untracked module.
  {
    ir::Module Warm = skolemModule(0);
    Warm.Arena = Arena;
    ASSERT_TRUE(typing::checkModule(Warm).ok());
  }
  uint64_t Baseline = Arena->stats().totalNodes();
  uint64_t BaselineSk = Arena->stats().SkolemNodes; // Warm check's, kept.

  for (uint64_t It = 1; It <= 1000; ++It) {
    TypeArena::Checkpoint C = Arena->checkpoint();
    {
      ir::Module M = skolemModule(It); // Fresh types every iteration.
      M.Arena = Arena;
      Status S = typing::checkModule(M);
      ASSERT_TRUE(S.ok()) << "iteration " << It;
    }
    Arena->rollback(C);
    ASSERT_EQ(Arena->stats().totalNodes(), Baseline) << "iteration " << It;
  }
  EXPECT_EQ(Arena->stats().SkolemNodes, BaselineSk);
}

TEST(ArenaChurn, GrowthWithoutRollbackIsMonotone) {
  // The control experiment: the same adversarial stream *without*
  // rollback grows the arena every iteration — the problem the mechanism
  // exists to solve (and proof the flat test above has teeth).
  auto Arena = std::make_shared<TypeArena>();
  ArenaScope Scope(*Arena);
  {
    ir::Module Warm = skolemModule(0);
    Warm.Arena = Arena;
    ASSERT_TRUE(typing::checkModule(Warm).ok());
  }
  uint64_t Baseline = Arena->stats().totalNodes();
  for (uint64_t It = 1; It <= 50; ++It) {
    ir::Module M = skolemModule(It);
    M.Arena = Arena;
    ASSERT_TRUE(typing::checkModule(M).ok());
  }
  EXPECT_GT(Arena->stats().totalNodes(), Baseline + 50);
}

TEST(ArenaChurn, RollbackRestoresCanonicalIdentity) {
  // After a full rollback, re-interning the same structures yields a
  // self-consistent canonical universe: equal structures still compare
  // pointer-equal among themselves.
  auto Arena = std::make_shared<TypeArena>();
  ArenaScope Scope(*Arena);
  TypeArena::Checkpoint C = Arena->checkpoint();
  {
    ir::Module M = skolemModule(3);
    M.Arena = Arena;
    ASSERT_TRUE(typing::checkModule(M).ok());
  }
  Arena->rollback(C);

  ir::Module M2 = skolemModule(3);
  M2.Arena = Arena;
  ASSERT_TRUE(typing::checkModule(M2).ok());
  // Two independent builds of the same type in the rolled-back arena
  // agree on the canonical node.
  HeapTypeRef A = structHT({{i32T(), Size::constant(32)}});
  HeapTypeRef B = structHT({{i32T(), Size::constant(32)}});
  EXPECT_EQ(A.get(), B.get());
}
