//===- tests/link_batch_test.cpp - Batch import resolution ----------------===//
//
// The linker's batch resolution phase (DESIGN.md §7) must be observably
// identical to the reference sequential scan: same providers, same
// errors, same Wasm ordering semantics (imports see earlier modules only;
// the newest provider of a re-exported name wins). The batch index keys
// on (module, name, canonical type), so a primary hit doubles as the
// cross-module type check — and the shadowing rule is the subtle part
// these tests pin: a newer same-name/different-type export must eclipse
// an older provider even for importers expecting the older type.
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "link/Link.h"

#include <gtest/gtest.h>

using namespace rw;
using namespace rw::ir;
using namespace rw::ir::build;

namespace {

FunTypeRef i32Fun() { return FunType::get({}, arrow({i32T()}, {i32T()})); }
FunTypeRef i64Fun() { return FunType::get({}, arrow({i64T()}, {i64T()})); }

/// A provider exporting \p Names, all at type \p FT.
ir::Module provider(const std::string &Name,
                    const std::vector<std::string> &Names, FunTypeRef FT) {
  ir::Module M;
  M.Name = Name;
  for (const std::string &E : Names)
    M.Funcs.push_back(function({E}, FT, {},
                               {getLocal(0, Qual::unr())}));
  return M;
}

/// A consumer importing (\p From, \p What) at type \p FT.
ir::Module consumer(const std::string &Name, const std::string &From,
                    const std::vector<std::string> &What, FunTypeRef FT) {
  ir::Module M;
  M.Name = Name;
  for (const std::string &I : What)
    M.Funcs.push_back(importFunc({From, I}, FT));
  return M;
}

void expectSameResolution(const std::vector<const ir::Module *> &Mods) {
  auto Seq = link::resolveImports(Mods, link::ResolveMode::Sequential);
  auto Bat = link::resolveImports(Mods, link::ResolveMode::Batch);
  ASSERT_EQ(bool(Seq), bool(Bat))
      << (Seq ? Bat.error().message() : Seq.error().message());
  if (!Seq) {
    EXPECT_EQ(Seq.error().message(), Bat.error().message());
    return;
  }
  ASSERT_EQ(Seq->size(), Bat->size());
  for (size_t M = 0; M < Seq->size(); ++M) {
    EXPECT_EQ((*Seq)[M].FuncImports, (*Bat)[M].FuncImports)
        << "module " << M;
    EXPECT_EQ((*Seq)[M].GlobalImports, (*Bat)[M].GlobalImports)
        << "module " << M;
  }
}

} // namespace

TEST(BatchLink, ResolvesChainIdenticallyToSequential) {
  ir::Module P0 = provider("lib0", {"a", "b"}, i32Fun());
  ir::Module P1 = provider("lib1", {"c"}, i32Fun());
  ir::Module C0 = consumer("app0", "lib0", {"a"}, i32Fun());
  ir::Module C1 = consumer("app1", "lib1", {"c"}, i32Fun());
  ir::Module C2 = consumer("app2", "lib0", {"b", "a"}, i32Fun());
  expectSameResolution({&P0, &P1, &C0, &C1, &C2});
}

TEST(BatchLink, UnresolvedImportSameDiagnostic) {
  ir::Module P = provider("lib", {"f"}, i32Fun());
  ir::Module C = consumer("app", "lib", {"missing"}, i32Fun());
  expectSameResolution({&P, &C});
  auto R = link::resolveImports({&P, &C});
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().message().find("unresolved import lib.missing"),
            std::string::npos);
}

TEST(BatchLink, TypeMismatchSameDiagnostic) {
  ir::Module P = provider("lib", {"f"}, i32Fun());
  ir::Module C = consumer("app", "lib", {"f"}, i64Fun());
  expectSameResolution({&P, &C});
  auto R = link::resolveImports({&P, &C});
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().message().find("import type mismatch"),
            std::string::npos);
}

TEST(BatchLink, ImportsNeverResolveForward) {
  // Wasm instantiation order: a module cannot import from a later one.
  ir::Module C = consumer("app", "lib", {"f"}, i32Fun());
  ir::Module P = provider("lib", {"f"}, i32Fun());
  expectSameResolution({&C, &P});
  EXPECT_FALSE(bool(link::resolveImports({&C, &P})));
  EXPECT_TRUE(bool(link::resolveImports({&P, &C})));
}

TEST(BatchLink, NewestProviderShadowsEvenAtDifferentType) {
  // Two modules both named "lib" export "f" — first at i32, then at i64.
  // An importer expecting the *old* type must NOT silently resolve to the
  // shadowed provider: sequential scanning finds the newest and fails the
  // type check, and the batch index must agree.
  ir::Module Old = provider("lib", {"f"}, i32Fun());
  ir::Module New = provider("lib", {"f"}, i64Fun());
  ir::Module C = consumer("app", "lib", {"f"}, i32Fun());
  expectSameResolution({&Old, &New, &C});
  auto R = link::resolveImports({&Old, &New, &C});
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().message().find("import type mismatch"),
            std::string::npos);

  // And an importer expecting the new type resolves to the new provider.
  ir::Module C2 = consumer("app2", "lib", {"f"}, i64Fun());
  auto R2 = link::resolveImports({&Old, &New, &C2});
  ASSERT_TRUE(bool(R2)) << R2.error().message();
  EXPECT_EQ((*R2)[2].FuncImports[0], (std::pair<uint32_t, uint32_t>{1, 0}));
}

TEST(BatchLink, GlobalImportsResolveAndTypeCheck) {
  ir::Module P;
  P.Name = "lib";
  Global G;
  G.Exports = {"g"};
  G.P = numPT(NumType::I32);
  G.Init = {iconst(5)};
  P.Globals.push_back(std::move(G));

  ir::Module C;
  C.Name = "app";
  Global GI;
  GI.P = numPT(NumType::I32);
  GI.Import = ImportName{"lib", "g"};
  C.Globals.push_back(std::move(GI));

  expectSameResolution({&P, &C});
  auto R = link::resolveImports({&P, &C});
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_EQ((*R)[1].GlobalImports[0], (std::pair<uint32_t, uint32_t>{0, 0}));

  // Mismatched global type: same failure on both paths.
  ir::Module CBad;
  CBad.Name = "bad";
  Global GB;
  GB.P = numPT(NumType::I64);
  GB.Import = ImportName{"lib", "g"};
  CBad.Globals.push_back(std::move(GB));
  expectSameResolution({&P, &CBad});
  EXPECT_FALSE(bool(link::resolveImports({&P, &CBad})));
}

TEST(BatchLink, InstantiateUsesBatchResolutionEndToEnd) {
  // The full instantiate path (typecheck + resolve + run) with both
  // resolution modes produces working instances with identical wiring.
  ir::Module P = provider("lib", {"id"}, i32Fun());
  ir::Module C = consumer("app", "lib", {"id"}, i32Fun());
  for (link::ResolveMode Mode :
       {link::ResolveMode::Sequential, link::ResolveMode::Batch}) {
    link::LinkOptions Opts;
    Opts.Resolution = Mode;
    auto Mach = link::instantiate({&P, &C}, Opts);
    ASSERT_TRUE(bool(Mach)) << Mach.error().message();
    auto R = (*Mach)->invoke(1, 0, {}, {sem::Value::num(NumType::I32, 41)});
    ASSERT_TRUE(bool(R)) << R.error().message();
    EXPECT_EQ((*R)[0].bits(), 41u);
  }
}
