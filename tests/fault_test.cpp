//===- tests/fault_test.cpp - Induced-failure degradation suite -----------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Proves the graceful-degradation contracts under injected failures
// (DESIGN.md §12, PR 8). Only meaningful under -DRW_FAULT=ON — the whole
// suite skips when the injection layer is compiled out, so it rides
// along in every build but only bites in the fault CI job:
//
//   * JIT compile / code-page map failures → the engine silently stays
//     on the flat interpreter with identical results, including trap
//     errors, and jitCompiledCount() pinned at 0.
//   * Cache store failures → admission still succeeds (uncached); the
//     cache stays empty and consistent; re-admission recomputes.
//   * Mid-admission allocation failures (decode / check / lower) → a
//     clean structured rejection with the right category and zero
//     residue in the process-wide type arena.
//   * Worker spawn failures → the pool degrades to fewer workers and
//     parallel-check diagnostics stay byte-identical to sequential.
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"
#include "cache/AdmissionCache.h"
#include "exec/Engine.h"
#include "ingest/Ingest.h"
#include "ir/TypeArena.h"
#include "lower/Lower.h"
#include "serial/Serial.h"
#include "support/FaultInject.h"
#include "support/ThreadPool.h"
#include "typing/Checker.h"
#include "wasm/Binary.h"

#include <gtest/gtest.h>

using namespace rw;
using namespace rw::wasm;
namespace fault = rw::support::fault;
using fault::Seam;

namespace {

/// sum(n) plus a second function that traps (division by zero) — the
/// parity checks below must agree on trap errors, not just values.
WModule sumAndTrapModule() {
  WModule M;
  uint32_t TV = M.addType({{ValType::I32}, {ValType::I32}});
  M.Funcs.push_back(
      {TV,
       {ValType::I32, ValType::I32},
       {WInst::block(
            {{}, {}},
            {WInst::loop({{}, {}},
                         {WInst::idx(Op::LocalGet, 1), WInst::i32c(1),
                          WInst::mk(Op::I32Add), WInst::idx(Op::LocalTee, 1),
                          WInst::idx(Op::LocalGet, 2), WInst::mk(Op::I32Add),
                          WInst::idx(Op::LocalSet, 2),
                          WInst::idx(Op::LocalGet, 1),
                          WInst::idx(Op::LocalGet, 0), WInst::mk(Op::I32LtS),
                          WInst::idx(Op::BrIf, 0)})}),
        WInst::idx(Op::LocalGet, 2)}});
  M.Funcs.push_back({TV,
                     {},
                     {WInst::idx(Op::LocalGet, 0), WInst::i32c(0),
                      WInst::mk(Op::I32DivS)}});
  M.Exports.push_back({"sum", ExportKind::Func, 0});
  M.Exports.push_back({"trap", ExportKind::Func, 1});
  return M;
}

std::string resultText(const Expected<std::vector<WValue>> &R) {
  if (!R) {
    // Profiling-enabled engines decorate trap diagnostics with "; inv N,
    // loops M" — parity is about the trap itself, not the annotation.
    std::string Msg = R.error().message();
    if (size_t P = Msg.find("; inv "); P != std::string::npos) {
      size_t End = Msg.find(']', P);
      Msg.erase(P, End == std::string::npos ? std::string::npos : End - P);
    }
    return "error: " + Msg;
  }
  std::string S = "ok:";
  for (const WValue &V : *R)
    S += " " + std::to_string(V.Bits);
  return S;
}

uint64_t globalArenaNodes() {
  return ir::TypeArena::globalPtr()->stats().totalNodes();
}

class Fault : public testing::Test {
protected:
  void SetUp() override {
    if (!fault::compiledIn())
      GTEST_SKIP() << "fault injection not compiled in (-DRW_FAULT=OFF)";
    fault::disarmAll();
  }
  void TearDown() override { fault::disarmAll(); }
};

TEST_F(Fault, JitCompileFailureDegradesToFlatWithIdenticalResults) {
  WModule M = sumAndTrapModule();

  // Reference: plain flat interpretation, no tiering.
  exec::FlatInstance Ref(M, EngineKind::Flat);
  ASSERT_TRUE(Ref.initialize().ok());

  fault::armEvery(Seam::JitCompile, 1);
  exec::FlatInstance FI(M, EngineKind::Jit);
  FI.setTierPolicy(1); // tier-up eagerly — every attempt is injected away
  ASSERT_TRUE(FI.initialize().ok());

  for (int I = 0; I < 50; ++I) {
    auto R = FI.invokeByName("sum", {WValue::i32(100)});
    auto E = Ref.invokeByName("sum", {WValue::i32(100)});
    ASSERT_EQ(resultText(R), resultText(E)) << "invoke " << I;
  }
  // Trap parity: the degraded engine reports the *same* trap.
  EXPECT_EQ(resultText(FI.invokeByName("trap", {WValue::i32(7)})),
            resultText(Ref.invokeByName("trap", {WValue::i32(7)})));

  EXPECT_EQ(FI.jitCompiledCount(), 0u)
      << "injected compile failures must not count as compiled";
  EXPECT_GT(fault::injected(Seam::JitCompile), 0u)
      << "the tier policy never reached the seam — test is vacuous";
}

TEST_F(Fault, JitMapFailureDegradesToFlatWithIdenticalResults) {
  WModule M = sumAndTrapModule();
  exec::FlatInstance Ref(M, EngineKind::Flat);
  ASSERT_TRUE(Ref.initialize().ok());

  fault::armEvery(Seam::JitMap, 1);
  exec::FlatInstance FI(M, EngineKind::Jit);
  FI.setTierPolicy(1);
  ASSERT_TRUE(FI.initialize().ok());

  for (int I = 0; I < 50; ++I) {
    auto R = FI.invokeByName("sum", {WValue::i32(64)});
    auto E = Ref.invokeByName("sum", {WValue::i32(64)});
    ASSERT_EQ(resultText(R), resultText(E)) << "invoke " << I;
  }
  EXPECT_EQ(resultText(FI.invokeByName("trap", {WValue::i32(3)})),
            resultText(Ref.invokeByName("trap", {WValue::i32(3)})));
  EXPECT_EQ(FI.jitCompiledCount(), 0u);
  EXPECT_GT(fault::injected(Seam::JitMap), 0u);
}

TEST_F(Fault, CacheStoreFailureDegradesToUncachedAdmission) {
  std::vector<uint8_t> B = serial::write(rwbench::loopModule(10));
  cache::AdmissionCache C;
  link::LinkOptions Opts;
  Opts.Cache = &C;

  fault::armEvery(Seam::CacheStore, 1);
  auto A1 = ingest::admit(B, ingest::Limits(), Opts);
  ASSERT_TRUE(A1) << A1.error().message();
  auto R1 = A1->invoke("loopmod.main", {});
  ASSERT_TRUE(R1) << R1.error().message();
  EXPECT_EQ((*R1)[0].Bits, 55u);
  EXPECT_EQ(C.stats().Entries, 0u)
      << "a failed store must not leave a partial entry";

  // Re-admission recomputes (a miss again, not a hit on garbage).
  auto A2 = ingest::admit(B, ingest::Limits(), Opts);
  ASSERT_TRUE(A2) << A2.error().message();
  auto R2 = A2->invoke("loopmod.main", {});
  ASSERT_TRUE(R2) << R2.error().message();
  EXPECT_EQ((*R2)[0].Bits, 55u);
  EXPECT_EQ(C.stats().hits(), 0u);

  // Once the seam heals, the same cache starts retaining entries.
  fault::disarm(Seam::CacheStore);
  auto A3 = ingest::admit(B, ingest::Limits(), Opts);
  ASSERT_TRUE(A3) << A3.error().message();
  EXPECT_GT(C.stats().Entries, 0u);
}

TEST_F(Fault, MidAdmissionAllocFailuresRejectCleanly) {
  std::vector<uint8_t> Wasm = [] {
    auto M = rwbench::loopModule(6);
    auto LP = lower::lowerProgram({&M}, {});
    return wasm::encode(LP->Module);
  }();
  std::vector<uint8_t> Serial = serial::write(rwbench::loopModule(6));

  uint64_t Before = globalArenaNodes();

  fault::armNth(Seam::DecodeAlloc, 1);
  ingest::IngestError E;
  EXPECT_FALSE(ingest::admit(Wasm, ingest::Limits(), {}, &E));
  EXPECT_EQ(E.Cat, ingest::Category::Resource) << E.render();

  fault::armNth(Seam::CheckAlloc, 1);
  EXPECT_FALSE(ingest::admit(Serial, ingest::Limits(), {}, &E));
  EXPECT_EQ(E.Cat, ingest::Category::Check) << E.render();

  fault::armNth(Seam::LowerAlloc, 1);
  EXPECT_FALSE(ingest::admit(Serial, ingest::Limits(), {}, &E));
  EXPECT_EQ(E.Cat, ingest::Category::Lower) << E.render();

  EXPECT_EQ(globalArenaNodes(), Before)
      << "injected mid-admission failures left arena residue";

  // All three seams heal: the same bytes admit and run.
  fault::disarmAll();
  auto A = ingest::admit(Serial);
  ASSERT_TRUE(A) << A.error().message();
  auto R = A->invoke("loopmod.main", {});
  ASSERT_TRUE(R) << R.error().message();
  EXPECT_EQ((*R)[0].Bits, 21u);
}

TEST_F(Fault, PoolSpawnFailureKeepsParallelCheckDeterministic) {
  std::vector<ir::Module> Mods;
  for (unsigned I = 1; I <= 6; ++I)
    Mods.push_back(rwbench::wideModule(3 * I));
  // Break one module so the parity check covers diagnostics, not just
  // success bits.
  Mods[2].Funcs[0].Body.insert(
      Mods[2].Funcs[0].Body.begin(),
      {ir::build::iconst(1),
       ir::build::structMalloc({ir::Size::constant(32)}, ir::Qual::lin()),
       ir::build::drop()});
  std::vector<const ir::Module *> P;
  for (const ir::Module &M : Mods)
    P.push_back(&M);

  // Every other worker spawn fails — the pool comes up short-handed and
  // work-stealing covers the gap.
  fault::armEvery(Seam::PoolSpawn, 2);
  support::ThreadPool Pool(8);
  EXPECT_LT(Pool.size(), 9u);
  std::vector<Status> Par = typing::checkModules(P, Pool);
  EXPECT_GT(fault::injected(Seam::PoolSpawn), 0u);

  ASSERT_EQ(Par.size(), Mods.size());
  for (size_t I = 0; I < Mods.size(); ++I) {
    Status Seq = typing::checkModule(Mods[I]);
    EXPECT_EQ(Seq.ok(), Par[I].ok()) << "module " << I;
    std::string SeqText = Seq.ok() ? "<ok>" : Seq.error().message();
    std::string ParText = Par[I].ok() ? "<ok>" : Par[I].error().message();
    EXPECT_EQ(SeqText, ParText) << "module " << I;
  }
}

TEST_F(Fault, DisarmedSeamsNeverFire) {
  // Counting continues while disarmed, but nothing injects.
  std::vector<uint8_t> B = serial::write(rwbench::loopModule(4));
  uint64_t Inj = fault::injected(Seam::CheckAlloc);
  for (int I = 0; I < 5; ++I)
    ASSERT_TRUE(ingest::admit(B));
  EXPECT_EQ(fault::injected(Seam::CheckAlloc), Inj);
}

} // namespace
