//===- tests/exec_test.cpp - Differential testing of the two engines ------===//
//
// The flat-bytecode engine (exec/Engine.h) must be observationally
// identical to the tree-walking reference interpreter (wasm/Interp.h):
// same results, same traps (same messages), same final memory, and same
// GC-statistics globals. This suite sweeps
//
//   * handcrafted Wasm modules covering the control-flow re-encoding
//     (blocks with results, loops, if/else, br_table, multi-value
//     branches), calls (direct, indirect, host), memory, and every trap;
//   * the lowered-pipeline workloads from bench/Common.h (loop,
//     linear/unrestricted heap churn, the Counter/Client FFI protocol),
//     including host-assisted GC parity;
//   * a deterministic fuzz-ish sweep of straight-line numeric functions
//     over the whole operator alphabet, checksummed through a local.
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"
#include "exec/Engine.h"
#include "exec/Translate.h"
#include "link/Link.h"
#include "lower/Lower.h"
#include "wasm/Interp.h"
#include "support/NumericOps.h"
#include "wasm/Validate.h"

#include <gtest/gtest.h>

#include <array>

using namespace rw;
using namespace rw::wasm;

namespace {

constexpr EngineKind BothEngines[] = {EngineKind::Tree, EngineKind::Flat};

/// Everything observable about one engine run.
struct RunResult {
  bool Ok = false;
  std::string Err;
  std::vector<WValue> Results;
  std::vector<uint8_t> FinalMem;
  std::vector<WValue> FinalGlobals;
  std::unique_ptr<Instance> Inst; // Kept alive for follow-up (GC) checks.
};

RunResult runOn(const WModule &M, EngineKind K, const std::string &Export,
                std::vector<WValue> Args,
                const std::function<void(Instance &)> &Bind = {}) {
  RunResult R;
  R.Inst = createInstance(M, K);
  if (Bind)
    Bind(*R.Inst);
  if (Status S = R.Inst->initialize(); !S) {
    R.Err = S.error().message();
    return R;
  }
  Expected<std::vector<WValue>> Out = R.Inst->invokeByName(Export, Args);
  if (!Out) {
    R.Err = Out.error().message();
  } else {
    R.Ok = true;
    R.Results = *Out;
  }
  R.FinalMem = R.Inst->memory();
  for (uint32_t I = 0; I < M.Globals.size(); ++I)
    R.FinalGlobals.push_back(R.Inst->global(I));
  return R;
}

/// Runs \p Export on both engines and asserts observational equality.
/// Returns the two runs for extra checks.
std::pair<RunResult, RunResult>
expectSame(const WModule &M, const std::string &Export,
           std::vector<WValue> Args = {},
           const std::function<void(Instance &)> &Bind = {}) {
  EXPECT_TRUE(validate(M).ok()) << validate(M).error().message();
  RunResult T = runOn(M, EngineKind::Tree, Export, Args, Bind);
  RunResult F = runOn(M, EngineKind::Flat, Export, Args, Bind);
  EXPECT_EQ(T.Ok, F.Ok) << "tree: " << T.Err << " / flat: " << F.Err;
  EXPECT_EQ(T.Err, F.Err);
  EXPECT_EQ(T.Results.size(), F.Results.size());
  if (T.Results.size() == F.Results.size())
    for (size_t I = 0; I < T.Results.size(); ++I) {
      EXPECT_EQ(T.Results[I].T, F.Results[I].T) << "result " << I;
      EXPECT_EQ(T.Results[I].Bits, F.Results[I].Bits) << "result " << I;
    }
  EXPECT_EQ(T.FinalMem, F.FinalMem);
  EXPECT_EQ(T.FinalGlobals.size(), F.FinalGlobals.size());
  if (T.FinalGlobals.size() == F.FinalGlobals.size())
    for (size_t I = 0; I < T.FinalGlobals.size(); ++I)
      EXPECT_EQ(T.FinalGlobals[I].Bits, F.FinalGlobals[I].Bits)
          << "global " << I;
  return {std::move(T), std::move(F)};
}

WModule oneFunc(FuncType FT, std::vector<ValType> Locals,
                std::vector<WInst> Body) {
  WModule M;
  uint32_t TI = M.addType(std::move(FT));
  M.Funcs.push_back({TI, std::move(Locals), std::move(Body)});
  M.Exports.push_back({"f", ExportKind::Func, 0});
  return M;
}

} // namespace

//===----------------------------------------------------------------------===//
// Control-flow re-encoding
//===----------------------------------------------------------------------===//

TEST(ExecDiff, BlockWithResultAndBr) {
  // block (result i32) { 7; br 0; 999 } + 1 — the br carries one value.
  WModule M = oneFunc(
      {{}, {ValType::I32}}, {},
      {WInst::block({{}, {ValType::I32}},
                    {WInst::i32c(7), WInst::idx(Op::Br, 0), WInst::i32c(999)}),
       WInst::i32c(1), WInst::mk(Op::I32Add)});
  auto [T, F] = expectSame(M, "f");
  EXPECT_TRUE(T.Ok);
  EXPECT_EQ(T.Results[0].asU32(), 8u);
}

TEST(ExecDiff, BrWithStackFixup) {
  // Extra operands below the branched value must be discarded: the flat
  // engine's keep/reset fix-up path.
  WModule M = oneFunc(
      {{}, {ValType::I32}}, {},
      {WInst::block({{}, {ValType::I32}},
                    {WInst::i32c(100), WInst::i32c(200), WInst::i32c(42),
                     WInst::idx(Op::Br, 0)}),
       });
  auto [T, F] = expectSame(M, "f");
  EXPECT_TRUE(T.Ok);
  EXPECT_EQ(T.Results[0].asU32(), 42u);
}

TEST(ExecDiff, LoopSum) {
  // sum 1..n with a loop whose br_if re-enters the label.
  WModule M = oneFunc(
      {{ValType::I32}, {ValType::I32}}, {ValType::I32, ValType::I32},
      {WInst::block(
           {{}, {}},
           {WInst::loop(
               {{}, {}},
               {WInst::idx(Op::LocalGet, 1), WInst::i32c(1),
                WInst::mk(Op::I32Add), WInst::idx(Op::LocalTee, 1),
                WInst::idx(Op::LocalGet, 2), WInst::mk(Op::I32Add),
                WInst::idx(Op::LocalSet, 2), WInst::idx(Op::LocalGet, 1),
                WInst::idx(Op::LocalGet, 0), WInst::mk(Op::I32LtS),
                WInst::idx(Op::BrIf, 0)})}),
       WInst::idx(Op::LocalGet, 2)});
  auto [T, F] = expectSame(M, "f", {WValue::i32(100)});
  EXPECT_TRUE(T.Ok);
  EXPECT_EQ(T.Results[0].asU32(), 5050u);
}

TEST(ExecDiff, LoopWithParams) {
  // A loop whose label has a parameter: branching back must keep the
  // top slot as the next iteration's argument. Computes 2^10 by
  // iterating (x -> 2x) from 1, counting with local 0.
  WModule M = oneFunc(
      {{}, {ValType::I32}}, {ValType::I32},
      {WInst::i32c(1),
       WInst::loop({{ValType::I32}, {ValType::I32}},
                   {WInst::i32c(2), WInst::mk(Op::I32Mul),
                    WInst::idx(Op::LocalGet, 0), WInst::i32c(1),
                    WInst::mk(Op::I32Add), WInst::idx(Op::LocalTee, 0),
                    WInst::i32c(10), WInst::mk(Op::I32LtS),
                    WInst::idx(Op::BrIf, 0)})});
  auto [T, F] = expectSame(M, "f");
  EXPECT_TRUE(T.Ok);
  EXPECT_EQ(T.Results[0].asU32(), 1024u);
}

TEST(ExecDiff, IfElseMultiValue) {
  // if (result i32 i32) picks between two pairs; then sums them.
  for (uint32_t Cond : {0u, 1u}) {
    WModule M = oneFunc(
        {{ValType::I32}, {ValType::I32}}, {},
        {WInst::idx(Op::LocalGet, 0),
         WInst::ifElse({{}, {ValType::I32, ValType::I32}},
                       {WInst::i32c(10), WInst::i32c(20)},
                       {WInst::i32c(1), WInst::i32c(2)}),
         WInst::mk(Op::I32Add)});
    auto [T, F] = expectSame(M, "f", {WValue::i32(Cond)});
    EXPECT_TRUE(T.Ok);
    EXPECT_EQ(T.Results[0].asU32(), Cond ? 30u : 3u);
  }
}

TEST(ExecDiff, IfWithoutElse) {
  WModule M = oneFunc({{ValType::I32}, {ValType::I32}}, {ValType::I32},
                      {WInst::idx(Op::LocalGet, 0),
                       WInst::ifElse({{}, {}},
                                     {WInst::i32c(99),
                                      WInst::idx(Op::LocalSet, 1)},
                                     {}),
                       WInst::idx(Op::LocalGet, 1)});
  for (uint32_t Cond : {0u, 7u}) {
    auto [T, F] = expectSame(M, "f", {WValue::i32(Cond)});
    EXPECT_TRUE(T.Ok);
    EXPECT_EQ(T.Results[0].asU32(), Cond ? 99u : 0u);
  }
}

TEST(ExecDiff, BrTableDispatch) {
  // br_table over three nested blocks plus default, routing to a
  // different local.set in each arm.
  for (uint32_t Sel : {0u, 1u, 2u, 3u, 200u}) {
    WModule M = oneFunc(
        {{ValType::I32}, {ValType::I32}}, {ValType::I32},
        {WInst::block(
             {{}, {}},
             {WInst::block(
                  {{}, {}},
                  {WInst::block(
                       {{}, {}},
                       {WInst::block({{}, {}},
                                     {WInst::idx(Op::LocalGet, 0),
                                      WInst::brTable({0, 1, 2}, 3)}),
                        // depth-0 target: record 10, exit everything.
                        WInst::i32c(10), WInst::idx(Op::LocalSet, 1),
                        WInst::idx(Op::Br, 2)}),
                   WInst::i32c(20), WInst::idx(Op::LocalSet, 1),
                   WInst::idx(Op::Br, 1)}),
              WInst::i32c(30), WInst::idx(Op::LocalSet, 1)}),
         WInst::idx(Op::LocalGet, 1)});
    auto [T, F] = expectSame(M, "f", {WValue::i32(Sel)});
    EXPECT_TRUE(T.Ok);
    // Default (depth 3) exits past every local.set, leaving 0.
    uint32_t Want = Sel == 0 ? 10 : Sel == 1 ? 20 : Sel == 2 ? 30 : 0;
    EXPECT_EQ(T.Results[0].asU32(), Want) << "selector " << Sel;
  }
}

TEST(ExecDiff, BrTableCarriesValue) {
  // All br_table labels share one value-carrying block; extra operands
  // below the carried value force the keep/reset fix-up.
  for (uint32_t Sel : {0u, 5u}) {
    WModule M = oneFunc(
        {{ValType::I32}, {ValType::I32}}, {},
        {WInst::block({{}, {ValType::I32}},
                      {WInst::i32c(7), WInst::i32c(42),
                       WInst::idx(Op::LocalGet, 0),
                       WInst::brTable({0}, 0)})});
    auto [T, F] = expectSame(M, "f", {WValue::i32(Sel)});
    EXPECT_TRUE(T.Ok);
    EXPECT_EQ(T.Results[0].asU32(), 42u) << "selector " << Sel;
  }
}

TEST(ExecDiff, DeadCodeAfterBranchIsSkipped) {
  // The translator drops unreachable tails; semantics must not change.
  WModule M = oneFunc(
      {{}, {ValType::I32}}, {},
      {WInst::block({{}, {ValType::I32}},
                    {WInst::i32c(5), WInst::idx(Op::Br, 0),
                     // Dead: a whole nested structure.
                     WInst::block({{}, {}}, {WInst::mk(Op::Unreachable)}),
                     WInst::i32c(1), WInst::mk(Op::I32Add)})});
  auto [T, F] = expectSame(M, "f");
  EXPECT_TRUE(T.Ok);
  EXPECT_EQ(T.Results[0].asU32(), 5u);
}

//===----------------------------------------------------------------------===//
// Calls
//===----------------------------------------------------------------------===//

TEST(ExecDiff, DirectCallsAndRecursion) {
  // fib(n) by naive double recursion across a direct call.
  WModule M;
  uint32_t TI = M.addType({{ValType::I32}, {ValType::I32}});
  M.Funcs.push_back(
      {TI,
       {},
       {WInst::idx(Op::LocalGet, 0), WInst::i32c(2), WInst::mk(Op::I32LtS),
        WInst::ifElse({{}, {ValType::I32}}, {WInst::idx(Op::LocalGet, 0)},
                      {WInst::idx(Op::LocalGet, 0), WInst::i32c(1),
                       WInst::mk(Op::I32Sub), WInst::idx(Op::Call, 0),
                       WInst::idx(Op::LocalGet, 0), WInst::i32c(2),
                       WInst::mk(Op::I32Sub), WInst::idx(Op::Call, 0),
                       WInst::mk(Op::I32Add)})}});
  M.Exports.push_back({"f", ExportKind::Func, 0});
  auto [T, F] = expectSame(M, "f", {WValue::i32(15)});
  EXPECT_TRUE(T.Ok);
  EXPECT_EQ(T.Results[0].asU32(), 610u);
}

TEST(ExecDiff, CallIndirect) {
  // Table dispatch between an adder and a multiplier, plus both trap
  // modes (index out of bounds, signature mismatch).
  WModule M;
  uint32_t Bin = M.addType({{ValType::I32, ValType::I32}, {ValType::I32}});
  uint32_t Un = M.addType({{ValType::I32}, {ValType::I32}});
  M.Funcs.push_back({Bin,
                     {},
                     {WInst::idx(Op::LocalGet, 0), WInst::idx(Op::LocalGet, 1),
                      WInst::mk(Op::I32Add)}});
  M.Funcs.push_back({Bin,
                     {},
                     {WInst::idx(Op::LocalGet, 0), WInst::idx(Op::LocalGet, 1),
                      WInst::mk(Op::I32Mul)}});
  M.Funcs.push_back(
      {Un, {}, {WInst::idx(Op::LocalGet, 0), WInst::i32c(1),
                WInst::mk(Op::I32Add)}});
  // f(sel, a, b) = table[sel](a, b) via the binary type.
  std::vector<WInst> Body = {WInst::idx(Op::LocalGet, 1),
                             WInst::idx(Op::LocalGet, 2),
                             WInst::idx(Op::LocalGet, 0),
                             WInst::idx(Op::CallIndirect, Bin)};
  uint32_t Tri =
      M.addType({{ValType::I32, ValType::I32, ValType::I32}, {ValType::I32}});
  M.Funcs.push_back({Tri, {}, std::move(Body)});
  M.TableElems = {0, 1, 2};
  M.Exports.push_back({"f", ExportKind::Func, 3});

  struct Case {
    uint32_t Sel;
    bool Traps;
    uint32_t Want;
  } Cases[] = {
      {0, false, 9}, // add
      {1, false, 18}, // mul
      {2, true, 0},  // unary: signature mismatch
      {9, true, 0},  // out of bounds
  };
  for (const Case &C : Cases) {
    auto [T, F] = expectSame(
        M, "f", {WValue::i32(C.Sel), WValue::i32(3), WValue::i32(6)});
    EXPECT_EQ(T.Ok, !C.Traps) << "selector " << C.Sel << ": " << T.Err;
    if (!C.Traps)
      EXPECT_EQ(T.Results[0].asU32(), C.Want);
  }
}

TEST(ExecDiff, HostCallsThroughImports) {
  // An import in the middle of wasm-to-wasm arithmetic; the host also
  // pokes instance memory, which both engines must expose identically.
  WModule M;
  uint32_t TI = M.addType({{ValType::I32}, {ValType::I32}});
  M.ImportFuncs.push_back({"env", "scale", TI});
  M.Memory = {{1, std::nullopt}};
  M.Funcs.push_back({TI,
                     {},
                     {WInst::idx(Op::LocalGet, 0), WInst::idx(Op::Call, 0),
                      WInst::i32c(1), WInst::mk(Op::I32Add)}});
  M.Exports.push_back({"f", ExportKind::Func, 1});
  auto Bind = [](Instance &I) {
    I.registerHost("env", "scale",
                   [](Instance &Inst, const std::vector<WValue> &Args)
                       -> Expected<std::vector<WValue>> {
                     Inst.store32(64, Args[0].asU32());
                     return std::vector<WValue>{
                         WValue::i32(Args[0].asU32() * 3)};
                   });
  };
  auto [T, F] = expectSame(M, "f", {WValue::i32(5)}, Bind);
  EXPECT_TRUE(T.Ok);
  EXPECT_EQ(T.Results[0].asU32(), 16u);
  EXPECT_EQ(T.Inst->load32(64), 5u);
}

TEST(ExecDiff, HostTrapPropagates) {
  WModule M;
  uint32_t TI = M.addType({{}, {}});
  M.ImportFuncs.push_back({"env", "boom", TI});
  M.Funcs.push_back({TI, {}, {WInst::idx(Op::Call, 0)}});
  M.Exports.push_back({"f", ExportKind::Func, 1});
  auto Bind = [](Instance &I) {
    I.registerHost("env", "boom",
                   [](Instance &, const std::vector<WValue> &)
                       -> Expected<std::vector<WValue>> {
                     return Error("host exploded");
                   });
  };
  auto [T, F] = expectSame(M, "f", {}, Bind);
  EXPECT_FALSE(T.Ok);
  EXPECT_EQ(T.Err, "trap: host exploded [func 0]");
}

TEST(ExecDiff, CallStackExhaustion) {
  // Infinite recursion must trap identically on both engines.
  WModule M;
  uint32_t TI = M.addType({{}, {}});
  M.Funcs.push_back({TI, {}, {WInst::idx(Op::Call, 0)}});
  M.Exports.push_back({"f", ExportKind::Func, 0});
  auto [T, F] = expectSame(M, "f");
  EXPECT_FALSE(T.Ok);
  EXPECT_EQ(T.Err, "trap: call stack exhausted [func 0]");
}

TEST(ExecDiff, TrapAttributedToInnermostFunction) {
  // f0 (exported) calls f1, which hits unreachable: the trap note names
  // the *faulting* function, not the entry point, on both engines.
  WModule M;
  uint32_t TI = M.addType({{}, {}});
  M.Funcs.push_back({TI, {}, {WInst::idx(Op::Call, 1)}});
  M.Funcs.push_back({TI, {}, {WInst::mk(Op::Unreachable)}});
  M.Exports.push_back({"f", ExportKind::Func, 0});
  auto [T, F] = expectSame(M, "f");
  EXPECT_FALSE(T.Ok);
  EXPECT_EQ(T.Err, "trap: unreachable executed [func 1]");
}

TEST(ExecDiff, TrapNoteCarriesProfileCounters) {
  // With profiling enabled the trap note reports the faulting function's
  // profile row *at trap time* — invocations and loop-header executions —
  // byte-identically across engines. The loop runs three header
  // executions (one entry, two back-edges) before f0 calls f1, which
  // traps on its first and only invocation.
  WModule M;
  uint32_t TV = M.addType({{}, {}});
  M.Funcs.push_back(
      {TV,
       {ValType::I32},
       {WInst::block(
            {{}, {}},
            {WInst::loop({{}, {}},
                         {WInst::idx(Op::LocalGet, 0), WInst::i32c(1),
                          WInst::mk(Op::I32Add), WInst::idx(Op::LocalTee, 0),
                          WInst::i32c(3), WInst::mk(Op::I32LtS),
                          WInst::idx(Op::BrIf, 0)})}),
        WInst::idx(Op::Call, 1)}});
  M.Funcs.push_back({TV, {}, {WInst::mk(Op::Unreachable)}});
  M.Exports.push_back({"f", ExportKind::Func, 0});
  ASSERT_TRUE(validate(M).ok()) << validate(M).error().message();

  std::string Errs[2];
  for (EngineKind K : BothEngines) {
    auto I = createInstance(M, K);
    I->enableProfiling();
    ASSERT_TRUE(I->initialize().ok());
    auto R = I->invokeByName("f", {});
    ASSERT_FALSE(bool(R));
    Errs[K == EngineKind::Flat] = R.error().message();
    // The profile table itself agrees with the note: f0 entered once with
    // three loop-header executions, f1 entered once.
    const std::vector<FunctionProfile> &P = I->functionProfiles();
    ASSERT_EQ(P.size(), 2u);
    EXPECT_EQ(P[0].Invocations, 1u);
    EXPECT_EQ(P[0].LoopHeads, 3u);
    EXPECT_EQ(P[1].Invocations, 1u);
    EXPECT_EQ(P[1].LoopHeads, 0u);
  }
  EXPECT_EQ(Errs[0], Errs[1]);
  EXPECT_EQ(Errs[0], "trap: unreachable executed [func 1; inv 1, loops 0]");
}

//===----------------------------------------------------------------------===//
// Memory and traps
//===----------------------------------------------------------------------===//

TEST(ExecDiff, MemoryOpsAllWidths) {
  // Write with every store width, read back with every load flavor,
  // checksum everything.
  WModule M = oneFunc(
      {{}, {ValType::I64}}, {ValType::I64},
      {// i64 store at 0
       WInst::i32c(0), WInst::i64c(0x1122334455667788ll),
       WInst::mem(Op::I64Store, 3, 0),
       // i32 store16/store8 at 16
       WInst::i32c(16), WInst::i32c(0xbeef), WInst::mem(Op::I32Store16, 1, 0),
       WInst::i32c(18), WInst::i32c(0x7f), WInst::mem(Op::I32Store8, 0, 0),
       // f64/f32 stores
       WInst::i32c(24), WInst::i64c(0x3ff0000000000000ll),
       WInst::mem(Op::I64Store, 3, 0),
       // checksum: i64 loads of various widths/signs
       WInst::i32c(0), WInst::mem(Op::I64Load, 3, 0),
       WInst::i32c(0), WInst::mem(Op::I64Load8S, 0, 3),
       WInst::mk(Op::I64Add),
       WInst::i32c(0), WInst::mem(Op::I64Load16U, 1, 4),
       WInst::mk(Op::I64Xor),
       WInst::i32c(16), WInst::mem(Op::I64Load32S, 2, 0),
       WInst::mk(Op::I64Add),
       WInst::i32c(14), WInst::mem(Op::I64Load16S, 1, 0),
       WInst::mk(Op::I64Xor),
       WInst::i32c(24), WInst::mem(Op::I64Load, 3, 0),
       WInst::mk(Op::I64Add)});
  M.Memory = {{1, std::nullopt}};
  auto [T, F] = expectSame(M, "f");
  EXPECT_TRUE(T.Ok) << T.Err;
}

TEST(ExecDiff, OutOfBoundsTrap) {
  for (uint32_t Addr : {65533u, 65536u, 0xfffffffcu}) {
    WModule M = oneFunc({{}, {ValType::I32}}, {},
                        {WInst::i32c(static_cast<int32_t>(Addr)),
                         WInst::mem(Op::I32Load, 2, 0)});
    M.Memory = {{1, std::nullopt}};
    auto [T, F] = expectSame(M, "f");
    EXPECT_FALSE(T.Ok);
    EXPECT_EQ(T.Err, "trap: out-of-bounds memory access [func 0]");
  }
}

TEST(ExecDiff, MemoryGrowAndSize) {
  // Grow by 2 pages (observing the old size), then store past the old
  // boundary, then grow past the max and observe -1.
  WModule M = oneFunc(
      {{}, {ValType::I32}}, {ValType::I32},
      {WInst::i32c(2), WInst::mk(Op::MemoryGrow), WInst::idx(Op::LocalSet, 0),
       WInst::i32c(65536 + 8), WInst::i32c(77), WInst::mem(Op::I32Store, 2, 0),
       WInst::i32c(100), WInst::mk(Op::MemoryGrow), // beyond max: -1
       WInst::idx(Op::LocalGet, 0), WInst::mk(Op::I32Add),
       WInst::mk(Op::MemorySize), WInst::mk(Op::I32Add)});
  M.Memory = {{1, {4}}};
  auto [T, F] = expectSame(M, "f");
  EXPECT_TRUE(T.Ok) << T.Err;
  // old(1) + (-1) + size(3) = 3
  EXPECT_EQ(T.Results[0].asU32(), 3u);
}

TEST(ExecDiff, ArithmeticTraps) {
  struct Case {
    std::vector<WInst> Body;
    const char *Msg;
  } Cases[] = {
      {{WInst::i32c(1), WInst::i32c(0), WInst::mk(Op::I32DivS)},
       "trap: integer divide error [func 0]"},
      {{WInst::i32c(static_cast<int32_t>(0x80000000)), WInst::i32c(-1),
        WInst::mk(Op::I32DivS)},
       "trap: integer divide error [func 0]"},
      {{WInst::i64c(5), WInst::i64c(0), WInst::mk(Op::I64RemU),
        WInst::mk(Op::I32WrapI64)},
       "trap: integer divide error [func 0]"},
      {{WInst::mk(Op::Unreachable)}, "trap: unreachable executed [func 0]"},
  };
  for (Case &C : Cases) {
    WModule M = oneFunc({{}, {ValType::I32}}, {}, C.Body);
    auto [T, F] = expectSame(M, "f");
    EXPECT_FALSE(T.Ok);
    EXPECT_EQ(T.Err, C.Msg);
  }
}

TEST(ExecDiff, TruncationTrap) {
  // f64 2^40 fits i64 but traps for i32.
  WModule M = oneFunc({{}, {ValType::I32}}, {},
                      {WInst::i64c(0x4270000000000000ll), // f64 2^40 bits
                       WInst::mk(Op::F64ReinterpretI64),
                       WInst::mk(Op::I32TruncF64S)});
  auto [T, F] = expectSame(M, "f");
  EXPECT_FALSE(T.Ok);
  EXPECT_EQ(T.Err, "trap: invalid conversion to integer [func 0]");
}

TEST(ExecDiff, GlobalsAndSelect) {
  WModule M = oneFunc(
      {{ValType::I32}, {ValType::I64}}, {},
      {WInst::idx(Op::GlobalGet, 0), WInst::i64c(100), WInst::mk(Op::I64Add),
       WInst::idx(Op::GlobalSet, 1),
       WInst::idx(Op::GlobalGet, 1), WInst::idx(Op::GlobalGet, 0),
       WInst::idx(Op::LocalGet, 0), WInst::mk(Op::Select)});
  M.Globals.push_back({ValType::I64, false, {WInst::i64c(7)}});
  M.Globals.push_back({ValType::I64, true, {WInst::i64c(0)}});
  for (uint32_t Cond : {0u, 1u}) {
    auto [T, F] = expectSame(M, "f", {WValue::i32(Cond)});
    EXPECT_TRUE(T.Ok);
    EXPECT_EQ(T.Results[0].Bits, Cond ? 107u : 7u);
  }
}

//===----------------------------------------------------------------------===//
// Lowered-pipeline workloads (bench/Common.h) on both engines
//===----------------------------------------------------------------------===//

namespace {

/// Lowers a program and runs "module.main" on both engines, asserting
/// identical results, memory, and runtime/GC globals. Returns the
/// lowered program and both instances for GC follow-ups.
struct LoweredBoth {
  link::LoweredInstance Tree, Flat;
};

LoweredBoth runLoweredBoth(const std::vector<const ir::Module *> &Mods,
                           const std::string &Export) {
  LoweredBoth B;
  for (EngineKind K : BothEngines) {
    link::LinkOptions Opts;
    Opts.Engine = K;
    auto LI = link::instantiateLowered(Mods, Opts);
    EXPECT_TRUE(bool(LI)) << engineKindName(K) << ": "
                          << LI.error().message();
    if (!LI)
      return B;
    (K == EngineKind::Tree ? B.Tree : B.Flat) = std::move(*LI);
  }
  auto RT = B.Tree.invokeExport(Export, {});
  auto RF = B.Flat.invokeExport(Export, {});
  EXPECT_EQ(bool(RT), bool(RF));
  if (RT && RF) {
    EXPECT_EQ(RT->size(), RF->size());
    if (RT->size() == RF->size())
      for (size_t I = 0; I < RT->size(); ++I)
        EXPECT_EQ((*RT)[I].Bits, (*RF)[I].Bits);
  } else if (!RT && !RF) {
    EXPECT_EQ(RT.error().message(), RF.error().message());
  }
  EXPECT_EQ(B.Tree.Instance->memory(), B.Flat.Instance->memory());
  const wasm::WModule &WM = B.Tree.Program->Module;
  for (uint32_t I = 0; I < WM.Globals.size(); ++I)
    EXPECT_EQ(B.Tree.Instance->global(I).Bits,
              B.Flat.Instance->global(I).Bits)
        << "lowered global " << I;
  return B;
}

} // namespace

TEST(ExecLowered, LoopWorkload) {
  ir::Module M = rwbench::loopModule(500);
  runLoweredBoth({&M}, "loopmod.main");
}

TEST(ExecLowered, LinearHeapChurn) {
  ir::Module M = rwbench::allocModule(300, /*Linear=*/true);
  runLoweredBoth({&M}, "allocmod.main");
}

TEST(ExecLowered, UnrestrictedChurnAndHostGc) {
  ir::Module M = rwbench::allocModule(200, /*Linear=*/false);
  LoweredBoth B = runLoweredBoth({&M}, "allocmod.main");
  ASSERT_TRUE(B.Tree.Instance && B.Flat.Instance);
  // The host-assisted collector must behave identically against either
  // engine: same mark/sweep statistics, same final heap bytes, same
  // runtime counters.
  lower::HostGc GcT(*B.Tree.Instance, B.Tree.Program->Runtime,
                    B.Tree.Program->RefGlobals);
  lower::HostGc GcF(*B.Flat.Instance, B.Flat.Program->Runtime,
                    B.Flat.Program->RefGlobals);
  lower::HostGc::Stats ST = GcT.collect();
  lower::HostGc::Stats SF = GcF.collect();
  EXPECT_EQ(ST.Marked, SF.Marked);
  EXPECT_EQ(ST.Swept, SF.Swept);
  EXPECT_EQ(ST.BytesReclaimed, SF.BytesReclaimed);
  EXPECT_GT(SF.Swept, 0u);
  EXPECT_EQ(B.Tree.Instance->memory(), B.Flat.Instance->memory());
  const lower::RuntimeLayout &L = B.Tree.Program->Runtime;
  for (uint32_t G : {L.GFree, L.GBump, L.GLive, L.GAllocs, L.GFrees})
    EXPECT_EQ(B.Tree.Instance->global(G).Bits,
              B.Flat.Instance->global(G).Bits);
}

TEST(ExecLowered, WideModuleEveryFunction) {
  ir::Module M = rwbench::wideModule(20);
  auto LP = lower::lowerProgram({&M});
  ASSERT_TRUE(bool(LP)) << LP.error().message();
  auto TI = createInstance(LP->Module, EngineKind::Tree);
  auto FI = createInstance(LP->Module, EngineKind::Flat);
  ASSERT_TRUE(TI->initialize().ok());
  ASSERT_TRUE(FI->initialize().ok());
  for (const auto &[Name, Idx] : LP->Exports) {
    for (uint32_t Arg : {0u, 13u}) {
      auto RT = TI->invoke(Idx, {WValue::i32(Arg)});
      auto RF = FI->invoke(Idx, {WValue::i32(Arg)});
      ASSERT_EQ(bool(RT), bool(RF)) << Name;
      if (RT) {
        ASSERT_EQ(RT->size(), RF->size());
        for (size_t I = 0; I < RT->size(); ++I)
          EXPECT_EQ((*RT)[I].Bits, (*RF)[I].Bits) << Name;
      }
    }
  }
  EXPECT_EQ(TI->memory(), FI->memory());
}

TEST(ExecLowered, CounterClientProtocol) {
  // The Fig 9 Counter/Client FFI workload: stateful globals, linear
  // references crossing the boundary, repeated invocations.
  auto Lib = l3::compileSource("lib", rwbench::CounterLibL3);
  auto App = ml::compileSource("app", rwbench::CounterClientML);
  ASSERT_TRUE(bool(Lib)) << Lib.error().message();
  ASSERT_TRUE(bool(App)) << App.error().message();

  link::LinkOptions TreeOpts, FlatOpts;
  FlatOpts.Engine = EngineKind::Flat;
  auto LT = link::instantiateLowered({&*Lib, &*App}, TreeOpts);
  auto LF = link::instantiateLowered({&*Lib, &*App}, FlatOpts);
  ASSERT_TRUE(bool(LT)) << LT.error().message();
  ASSERT_TRUE(bool(LF)) << LF.error().message();
  for (link::LoweredInstance *LI : {&*LT, &*LF}) {
    ASSERT_TRUE(bool(LI->invokeExport("app.init", {})));
    ASSERT_TRUE(bool(LI->invokeExport("app.set_rate", {WValue::i32(3)})));
    for (int I = 0; I < 5; ++I)
      ASSERT_TRUE(bool(LI->invokeExport("app.tick", {})));
  }
  auto TT = LT->invokeExport("app.total", {});
  auto TF = LF->invokeExport("app.total", {});
  ASSERT_TRUE(bool(TT)) << TT.error().message();
  ASSERT_TRUE(bool(TF)) << TF.error().message();
  EXPECT_EQ((*TT)[0].Bits, (*TF)[0].Bits);
  EXPECT_EQ((*TT)[0].asU32(), 15u);
  EXPECT_EQ(LT->Instance->memory(), LF->Instance->memory());
}

//===----------------------------------------------------------------------===//
// Fuzz-ish sweep: straight-line numerics over the operator alphabet
//===----------------------------------------------------------------------===//

namespace {

/// Deterministic 64-bit LCG (so failures are reproducible by seed).
struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed) {}
  uint64_t next() {
    S = S * 6364136223846793005ull + 1442695040888963407ull;
    return S >> 31;
  }
  uint32_t below(uint32_t N) { return static_cast<uint32_t>(next() % N); }
};

/// Builds a random straight-line function f(i32) -> i32 exercising the
/// numeric alphabet. A typed virtual stack keeps the module valid; an
/// i32 accumulator local checksums intermediate values so divergence
/// anywhere shows up in the result.
WModule fuzzModule(uint64_t Seed, unsigned Steps) {
  Rng R(Seed);
  std::vector<WInst> Body;
  std::vector<ValType> Stk;
  auto fold = [&]() {
    // Fold the top of stack into the accumulator (local 1), erasing it.
    switch (Stk.back()) {
    case ValType::I64:
      Body.push_back(WInst::mk(Op::I32WrapI64));
      break;
    case ValType::F32:
      Body.push_back(WInst::mk(Op::I32ReinterpretF32));
      break;
    case ValType::F64:
      Body.push_back(WInst::mk(Op::I64ReinterpretF64));
      Body.push_back(WInst::mk(Op::I32WrapI64));
      break;
    case ValType::I32:
      break;
    }
    Body.push_back(WInst::idx(Op::LocalGet, 1));
    Body.push_back(WInst::mk(Op::I32Xor));
    Body.push_back(WInst::idx(Op::LocalSet, 1));
    Stk.pop_back();
  };
  auto pushConst = [&]() {
    switch (R.below(4)) {
    case 0: {
      static const int32_t Pool[] = {0, 1, -1, 7, 1000000007,
                                     static_cast<int32_t>(0x80000000)};
      Body.push_back(WInst::i32c(Pool[R.below(6)]));
      Stk.push_back(ValType::I32);
      break;
    }
    case 1: {
      static const int64_t Pool[] = {0, 1, -1, 1ll << 40,
                                     static_cast<int64_t>(0x8000000000000000ull)};
      Body.push_back(WInst::i64c(Pool[R.below(5)]));
      Stk.push_back(ValType::I64);
      break;
    }
    case 2: {
      WInst W(Op::F32Const);
      // Small integral floats keep the space interesting but portable.
      W.U64 = num::f32ToBits(static_cast<float>(
                  static_cast<int32_t>(R.below(64)) - 16)) &
              0xffffffffu;
      Body.push_back(W);
      Stk.push_back(ValType::F32);
      break;
    }
    default: {
      WInst W(Op::F64Const);
      W.U64 = num::f64ToBits(static_cast<double>(
          static_cast<int32_t>(R.below(1024)) - 256));
      Body.push_back(W);
      Stk.push_back(ValType::F64);
      break;
    }
    }
  };

  // Opcode pools by shape.
  static const Op I32Bin[] = {Op::I32Add, Op::I32Sub, Op::I32Mul, Op::I32DivS,
                              Op::I32DivU, Op::I32RemS, Op::I32RemU,
                              Op::I32And, Op::I32Or, Op::I32Xor, Op::I32Shl,
                              Op::I32ShrS, Op::I32ShrU, Op::I32Rotl,
                              Op::I32Rotr, Op::I32Eq, Op::I32Ne, Op::I32LtS,
                              Op::I32LtU, Op::I32GtS, Op::I32GtU, Op::I32LeS,
                              Op::I32LeU, Op::I32GeS, Op::I32GeU};
  static const Op I64Bin[] = {Op::I64Add, Op::I64Sub, Op::I64Mul, Op::I64DivS,
                              Op::I64DivU, Op::I64RemS, Op::I64RemU,
                              Op::I64And, Op::I64Or, Op::I64Xor, Op::I64Shl,
                              Op::I64ShrS, Op::I64ShrU, Op::I64Rotl,
                              Op::I64Rotr};
  static const Op F32Bin[] = {Op::F32Add, Op::F32Sub, Op::F32Mul, Op::F32Div,
                              Op::F32Min, Op::F32Max, Op::F32Copysign};
  static const Op F64Bin[] = {Op::F64Add, Op::F64Sub, Op::F64Mul, Op::F64Div,
                              Op::F64Min, Op::F64Max, Op::F64Copysign};
  static const Op I32Un[] = {Op::I32Clz, Op::I32Ctz, Op::I32Popcnt,
                             Op::I32Eqz};
  static const Op I64Un[] = {Op::I64Clz, Op::I64Ctz, Op::I64Popcnt};
  static const Op F32Un[] = {Op::F32Abs, Op::F32Neg, Op::F32Ceil,
                             Op::F32Floor, Op::F32Trunc, Op::F32Nearest,
                             Op::F32Sqrt};
  static const Op F64Un[] = {Op::F64Abs, Op::F64Neg, Op::F64Ceil,
                             Op::F64Floor, Op::F64Trunc, Op::F64Nearest,
                             Op::F64Sqrt};
  static const Op FromI32[] = {Op::I64ExtendI32S, Op::I64ExtendI32U,
                               Op::F32ConvertI32S, Op::F32ConvertI32U,
                               Op::F64ConvertI32S, Op::F64ConvertI32U,
                               Op::F32ReinterpretI32};
  static const Op FromI64[] = {Op::I32WrapI64, Op::F32ConvertI64S,
                               Op::F32ConvertI64U, Op::F64ConvertI64S,
                               Op::F64ConvertI64U, Op::F64ReinterpretI64};
  static const Op FromF32[] = {Op::I32TruncF32S, Op::I32TruncF32U,
                               Op::I64TruncF32S, Op::I64TruncF32U,
                               Op::F64PromoteF32, Op::I32ReinterpretF32};
  static const Op FromF64[] = {Op::I32TruncF64S, Op::I32TruncF64U,
                               Op::I64TruncF64S, Op::I64TruncF64U,
                               Op::F32DemoteF64, Op::I64ReinterpretF64};

  // Seed the stack from the parameter.
  Body.push_back(WInst::idx(Op::LocalGet, 0));
  Stk.push_back(ValType::I32);

  for (unsigned I = 0; I < Steps; ++I) {
    unsigned Choice = R.below(10);
    if (Stk.size() < 2 || Choice < 3) {
      pushConst();
      continue;
    }
    ValType Top = Stk.back();
    if (Choice < 6 && Stk[Stk.size() - 2] == Top) { // binop
      const Op *Pool = nullptr;
      uint32_t N = 0;
      switch (Top) {
      case ValType::I32: Pool = I32Bin; N = 25; break;
      case ValType::I64: Pool = I64Bin; N = 15; break;
      case ValType::F32: Pool = F32Bin; N = 7; break;
      case ValType::F64: Pool = F64Bin; N = 7; break;
      }
      Op K = Pool[R.below(N)];
      Body.push_back(WInst::mk(K));
      Stk.pop_back();
      Stk.pop_back();
      Stk.push_back(opSignature(K).Out[0]);
      continue;
    }
    if (Choice < 8) { // unop
      const Op *Pool = nullptr;
      uint32_t N = 0;
      switch (Top) {
      case ValType::I32: Pool = I32Un; N = 4; break;
      case ValType::I64: Pool = I64Un; N = 3; break;
      case ValType::F32: Pool = F32Un; N = 7; break;
      case ValType::F64: Pool = F64Un; N = 7; break;
      }
      Op K = Pool[R.below(N)];
      Body.push_back(WInst::mk(K));
      Stk.back() = opSignature(K).Out[0];
      continue;
    }
    if (Choice == 8) { // conversion
      const Op *Pool = nullptr;
      uint32_t N = 0;
      switch (Top) {
      case ValType::I32: Pool = FromI32; N = 7; break;
      case ValType::I64: Pool = FromI64; N = 6; break;
      case ValType::F32: Pool = FromF32; N = 6; break;
      case ValType::F64: Pool = FromF64; N = 6; break;
      }
      Op K = Pool[R.below(N)];
      Body.push_back(WInst::mk(K));
      Stk.back() = opSignature(K).Out[0];
      continue;
    }
    fold(); // checksum the top into the accumulator
  }
  while (!Stk.empty())
    fold();
  Body.push_back(WInst::idx(Op::LocalGet, 1));
  return oneFunc({{ValType::I32}, {ValType::I32}}, {ValType::I32},
                 std::move(Body));
}

} // namespace

TEST(ExecFuzz, StraightLineNumericSweep) {
  unsigned Agree = 0, Trapped = 0;
  for (uint64_t Seed = 1; Seed <= 150; ++Seed) {
    WModule M = fuzzModule(Seed, 60);
    ASSERT_TRUE(validate(M).ok())
        << "seed " << Seed << ": " << validate(M).error().message();
    for (uint32_t Arg : {0u, 0xdeadbeefu}) {
      RunResult T = runOn(M, EngineKind::Tree, "f", {WValue::i32(Arg)});
      RunResult F = runOn(M, EngineKind::Flat, "f", {WValue::i32(Arg)});
      ASSERT_EQ(T.Ok, F.Ok) << "seed " << Seed << " arg " << Arg
                            << " tree: " << T.Err << " flat: " << F.Err;
      ASSERT_EQ(T.Err, F.Err) << "seed " << Seed;
      if (T.Ok) {
        ASSERT_EQ(T.Results[0].Bits, F.Results[0].Bits)
            << "seed " << Seed << " arg " << Arg;
        ++Agree;
      } else {
        ++Trapped;
      }
    }
  }
  // The sweep must actually exercise both completion and trapping.
  EXPECT_GT(Agree, 50u);
  EXPECT_GT(Trapped, 10u);
}

//===----------------------------------------------------------------------===//
// Flat-engine specifics
//===----------------------------------------------------------------------===//

TEST(ExecFlat, TranslationShrinksDispatchCount) {
  // The flat engine must execute fewer dispatches than the tree walker
  // for the same structured program (blocks/ends/dead code erased).
  ir::Module M = rwbench::loopModule(100);
  auto LP = lower::lowerProgram({&M});
  ASSERT_TRUE(bool(LP));
  auto TI = createInstance(LP->Module, EngineKind::Tree);
  auto FI = createInstance(LP->Module, EngineKind::Flat);
  ASSERT_TRUE(TI->initialize().ok());
  ASSERT_TRUE(FI->initialize().ok());
  ASSERT_TRUE(bool(TI->invokeByName("loopmod.main", {})));
  ASSERT_TRUE(bool(FI->invokeByName("loopmod.main", {})));
  EXPECT_GT(TI->instrCount(), 0u);
  EXPECT_GT(FI->instrCount(), 0u);
  EXPECT_LE(FI->instrCount(), TI->instrCount());
}

TEST(ExecFlat, FuelExhaustionTraps) {
  WModule M = oneFunc({{}, {}}, {},
                      {WInst::block({{}, {}},
                                    {WInst::loop({{}, {}},
                                                 {WInst::idx(Op::Br, 0)})})});
  auto FI = createInstance(M, EngineKind::Flat);
  ASSERT_TRUE(FI->initialize().ok());
  auto R = FI->invoke(0, {}, /*MaxFuel=*/1000);
  ASSERT_FALSE(bool(R));
  EXPECT_EQ(R.error().message(), "trap: fuel exhausted [func 0]");
}

TEST(ExecFlat, ImportInvokeResultArityMatchesTree) {
  // invoke() of an import index must apply the same result handling as
  // the tree engine: keep the last |results| values from the host.
  WModule M;
  uint32_t TI = M.addType({{}, {ValType::I32}});
  M.ImportFuncs.push_back({"env", "chatty", TI});
  auto Bind = [](Instance &I) {
    I.registerHost("env", "chatty",
                   [](Instance &, const std::vector<WValue> &)
                       -> Expected<std::vector<WValue>> {
                     return std::vector<WValue>{WValue::i32(1),
                                                WValue::i32(42)};
                   });
  };
  std::vector<std::vector<WValue>> Out;
  for (EngineKind K : BothEngines) {
    auto I = createInstance(M, K);
    Bind(*I);
    ASSERT_TRUE(I->initialize().ok());
    auto R = I->invoke(0, {});
    ASSERT_TRUE(bool(R)) << engineKindName(K);
    Out.push_back(*R);
  }
  ASSERT_EQ(Out[0].size(), Out[1].size());
  EXPECT_EQ(Out[0][0].Bits, Out[1][0].Bits);
  EXPECT_EQ(Out[1][0].asU32(), 42u);
}

TEST(ExecFlat, RunStartFalseStillBuildsInstanceState) {
  // LinkOptions::RunStart only gates the start function; the instance
  // (memory, globals, engine preparation) must still exist.
  ir::Module M = rwbench::loopModule(10);
  for (EngineKind K : BothEngines) {
    link::LinkOptions Opts;
    Opts.Engine = K;
    Opts.RunStart = false;
    auto LI = link::instantiateLowered({&M}, Opts);
    ASSERT_TRUE(bool(LI)) << LI.error().message();
    EXPECT_FALSE(LI->Instance->memory().empty()) << engineKindName(K);
    auto R = LI->invokeExport("loopmod.main", {});
    ASSERT_TRUE(bool(R)) << engineKindName(K) << ": "
                         << R.error().message();
    EXPECT_EQ((*R)[0].asU32(), 55u);
  }
}

TEST(ExecFlat, EngineKindReporting) {
  WModule M = oneFunc({{}, {}}, {}, {});
  EXPECT_EQ(createInstance(M, EngineKind::Tree)->engine(), EngineKind::Tree);
  EXPECT_EQ(createInstance(M, EngineKind::Flat)->engine(), EngineKind::Flat);
  EXPECT_STREQ(engineKindName(EngineKind::Flat), "flat");
}

TEST(ExecFlat, HostReentryIntoRunningInstanceTraps) {
  // A host function that invokes back into the instance that called it
  // would scribble over the flat engine's operand stack, register file,
  // and frame stack mid-run. The engine must detect the re-entry and
  // surface a proper trap (this was undefined behavior before the guard).
  WModule M;
  uint32_t TI = M.addType({{}, {ValType::I32}});
  M.ImportFuncs.push_back({"env", "reenter", TI});
  M.Funcs.push_back({TI, {}, {WInst::idx(Op::Call, 0)}});
  M.Funcs.push_back({TI, {}, {WInst::i32c(7)}});
  M.Exports.push_back({"f", ExportKind::Func, 1});
  M.Exports.push_back({"leaf", ExportKind::Func, 2});

  exec::FlatInstance Inst(M);
  Inst.registerHost("env", "reenter",
                    [](Instance &I, const std::vector<WValue> &)
                        -> Expected<std::vector<WValue>> {
                      // Re-enter the *running* caller: must trap, not
                      // corrupt its execution state.
                      auto R = I.invoke(2, {});
                      if (!R)
                        return R.error();
                      return std::vector<WValue>{(*R)[0]};
                    });
  ASSERT_TRUE(Inst.initialize().ok());
  auto R = Inst.invokeByName("f", {});
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().message().find("re-entrant invoke"),
            std::string::npos)
      << R.error().message();
}

TEST(ExecFlat, InvokeAfterReentryTrapStillWorks) {
  // The guard must reset after the trap unwinds: the instance stays
  // usable for subsequent (non-re-entrant) invokes.
  WModule M;
  uint32_t TI = M.addType({{}, {ValType::I32}});
  M.ImportFuncs.push_back({"env", "reenter", TI});
  M.Funcs.push_back({TI, {}, {WInst::idx(Op::Call, 0)}});
  M.Funcs.push_back({TI, {}, {WInst::i32c(9)}});
  M.Exports.push_back({"f", ExportKind::Func, 1});
  M.Exports.push_back({"leaf", ExportKind::Func, 2});

  exec::FlatInstance Inst(M);
  Inst.registerHost("env", "reenter",
                    [](Instance &I, const std::vector<WValue> &)
                        -> Expected<std::vector<WValue>> {
                      auto R = I.invoke(2, {});
                      if (!R)
                        return R.error();
                      return std::vector<WValue>{(*R)[0]};
                    });
  ASSERT_TRUE(Inst.initialize().ok());
  ASSERT_FALSE(bool(Inst.invokeByName("f", {})));
  // Direct invoke of the leaf (no host in the path) succeeds afterwards.
  auto R2 = Inst.invokeByName("leaf", {});
  ASSERT_TRUE(bool(R2)) << R2.error().message();
  EXPECT_EQ((*R2)[0].asU32(), 9u);
}

//===----------------------------------------------------------------------===//
// Tier-3 native backend: jit = flat = tree (DESIGN.md paragraph 11)
//
// EngineKind::Jit is the flat engine with eager whole-module native
// compilation; with -DRW_JIT=OFF it degrades to plain flat execution, so
// every test here must pass under both configurations. Where a test
// asserts that native code actually ran (jitCompiledCount > 0) the
// assertion is gated on RW_JIT_ENABLED.
//===----------------------------------------------------------------------===//

namespace {

constexpr EngineKind AllEngines[] = {EngineKind::Tree, EngineKind::Flat,
                                     EngineKind::Jit};

uint32_t compiledCountOf(const RunResult &R) {
  return static_cast<exec::FlatInstance &>(*R.Inst).jitCompiledCount();
}

/// Runs \p Export on all three engine tiers and asserts observational
/// equality — results, trap messages, final memory and globals — plus
/// the stronger flat-vs-jit invariant that the *fuel accounting* is
/// byte-identical (segment batching must charge exactly what the
/// interpreter charges). Returns the three runs, tree first.
std::array<RunResult, 3> expectSameAll(
    const WModule &M, const std::string &Export,
    std::vector<WValue> Args = {},
    const std::function<void(Instance &)> &Bind = {}) {
  EXPECT_TRUE(validate(M).ok()) << validate(M).error().message();
  std::array<RunResult, 3> R;
  for (int I = 0; I < 3; ++I)
    R[I] = runOn(M, AllEngines[I], Export, Args, Bind);
  for (int I = 1; I < 3; ++I) {
    const char *Who = I == 1 ? "flat" : "jit";
    EXPECT_EQ(R[0].Ok, R[I].Ok)
        << Who << " — tree: " << R[0].Err << " / " << R[I].Err;
    EXPECT_EQ(R[0].Err, R[I].Err) << Who;
    EXPECT_EQ(R[0].Results.size(), R[I].Results.size()) << Who;
    if (R[0].Results.size() == R[I].Results.size())
      for (size_t J = 0; J < R[0].Results.size(); ++J) {
        EXPECT_EQ(R[0].Results[J].T, R[I].Results[J].T)
            << Who << " result " << J;
        EXPECT_EQ(R[0].Results[J].Bits, R[I].Results[J].Bits)
            << Who << " result " << J;
      }
    EXPECT_EQ(R[0].FinalMem, R[I].FinalMem) << Who;
    EXPECT_EQ(R[0].FinalGlobals.size(), R[I].FinalGlobals.size()) << Who;
    if (R[0].FinalGlobals.size() == R[I].FinalGlobals.size())
      for (size_t J = 0; J < R[0].FinalGlobals.size(); ++J)
        EXPECT_EQ(R[0].FinalGlobals[J].Bits, R[I].FinalGlobals[J].Bits)
            << Who << " global " << J;
  }
  EXPECT_EQ(R[1].Inst->instrCount(), R[2].Inst->instrCount())
      << "flat and jit disagree on fuel consumed";
  return R;
}

} // namespace

TEST(JitDiff, ControlFlowBattery) {
  // Loop with accumulator locals (sum 1..100).
  WModule Sum = oneFunc(
      {{ValType::I32}, {ValType::I32}}, {ValType::I32, ValType::I32},
      {WInst::block(
           {{}, {}},
           {WInst::loop(
               {{}, {}},
               {WInst::idx(Op::LocalGet, 1), WInst::i32c(1),
                WInst::mk(Op::I32Add), WInst::idx(Op::LocalTee, 1),
                WInst::idx(Op::LocalGet, 2), WInst::mk(Op::I32Add),
                WInst::idx(Op::LocalSet, 2), WInst::idx(Op::LocalGet, 1),
                WInst::idx(Op::LocalGet, 0), WInst::mk(Op::I32LtS),
                WInst::idx(Op::BrIf, 0)})}),
       WInst::idx(Op::LocalGet, 2)});
  auto R = expectSameAll(Sum, "f", {WValue::i32(100)});
  EXPECT_TRUE(R[2].Ok);
  EXPECT_EQ(R[2].Results[0].asU32(), 5050u);
#if RW_JIT_ENABLED
  EXPECT_EQ(compiledCountOf(R[2]), 1u);
#else
  EXPECT_EQ(compiledCountOf(R[2]), 0u);
#endif

  // Value-carrying br with stack fix-up below the kept slot.
  WModule Fixup = oneFunc(
      {{}, {ValType::I32}}, {},
      {WInst::block({{}, {ValType::I32}},
                    {WInst::i32c(100), WInst::i32c(200), WInst::i32c(42),
                     WInst::idx(Op::Br, 0)})});
  expectSameAll(Fixup, "f");

  // Multi-value if/else.
  for (uint32_t Cond : {0u, 1u}) {
    WModule If = oneFunc(
        {{ValType::I32}, {ValType::I32}}, {},
        {WInst::idx(Op::LocalGet, 0),
         WInst::ifElse({{}, {ValType::I32, ValType::I32}},
                       {WInst::i32c(10), WInst::i32c(20)},
                       {WInst::i32c(1), WInst::i32c(2)}),
         WInst::mk(Op::I32Add)});
    expectSameAll(If, "f", {WValue::i32(Cond)});
  }

  // br_table dispatch across four arms, including the clamped default.
  for (uint32_t Sel : {0u, 1u, 2u, 3u, 200u}) {
    WModule Bt = oneFunc(
        {{ValType::I32}, {ValType::I32}}, {ValType::I32},
        {WInst::block(
             {{}, {}},
             {WInst::block(
                  {{}, {}},
                  {WInst::block(
                       {{}, {}},
                       {WInst::block({{}, {}},
                                     {WInst::idx(Op::LocalGet, 0),
                                      WInst::brTable({0, 1, 2}, 3)}),
                        WInst::i32c(10), WInst::idx(Op::LocalSet, 1),
                        WInst::idx(Op::Br, 2)}),
                   WInst::i32c(20), WInst::idx(Op::LocalSet, 1),
                   WInst::idx(Op::Br, 1)}),
              WInst::i32c(30), WInst::idx(Op::LocalSet, 1)}),
         WInst::idx(Op::LocalGet, 1)});
    expectSameAll(Bt, "f", {WValue::i32(Sel)});
  }

  // Value-carrying br_table with operands below the kept slot.
  for (uint32_t Sel : {0u, 5u}) {
    WModule Btv = oneFunc(
        {{ValType::I32}, {ValType::I32}}, {},
        {WInst::block({{}, {ValType::I32}},
                      {WInst::i32c(7), WInst::i32c(42),
                       WInst::idx(Op::LocalGet, 0),
                       WInst::brTable({0}, 0)})});
    expectSameAll(Btv, "f", {WValue::i32(Sel)});
  }
}

TEST(JitDiff, CallsRecursionAndIndirect) {
  // fib by double recursion: nested native frames through jitDirectCall.
  WModule Fib;
  uint32_t TI = Fib.addType({{ValType::I32}, {ValType::I32}});
  Fib.Funcs.push_back(
      {TI,
       {},
       {WInst::idx(Op::LocalGet, 0), WInst::i32c(2), WInst::mk(Op::I32LtS),
        WInst::ifElse({{}, {ValType::I32}}, {WInst::idx(Op::LocalGet, 0)},
                      {WInst::idx(Op::LocalGet, 0), WInst::i32c(1),
                       WInst::mk(Op::I32Sub), WInst::idx(Op::Call, 0),
                       WInst::idx(Op::LocalGet, 0), WInst::i32c(2),
                       WInst::mk(Op::I32Sub), WInst::idx(Op::Call, 0),
                       WInst::mk(Op::I32Add)})}});
  Fib.Exports.push_back({"f", ExportKind::Func, 0});
  auto R = expectSameAll(Fib, "f", {WValue::i32(15)});
  EXPECT_TRUE(R[2].Ok);
  EXPECT_EQ(R[2].Results[0].asU32(), 610u);

  // call_indirect: both success arms and both trap modes.
  WModule M;
  uint32_t Bin = M.addType({{ValType::I32, ValType::I32}, {ValType::I32}});
  uint32_t Un = M.addType({{ValType::I32}, {ValType::I32}});
  M.Funcs.push_back({Bin,
                     {},
                     {WInst::idx(Op::LocalGet, 0), WInst::idx(Op::LocalGet, 1),
                      WInst::mk(Op::I32Add)}});
  M.Funcs.push_back({Bin,
                     {},
                     {WInst::idx(Op::LocalGet, 0), WInst::idx(Op::LocalGet, 1),
                      WInst::mk(Op::I32Mul)}});
  M.Funcs.push_back(
      {Un, {}, {WInst::idx(Op::LocalGet, 0), WInst::i32c(1),
                WInst::mk(Op::I32Add)}});
  uint32_t Tri =
      M.addType({{ValType::I32, ValType::I32, ValType::I32}, {ValType::I32}});
  M.Funcs.push_back({Tri,
                     {},
                     {WInst::idx(Op::LocalGet, 1), WInst::idx(Op::LocalGet, 2),
                      WInst::idx(Op::LocalGet, 0),
                      WInst::idx(Op::CallIndirect, Bin)}});
  M.TableElems = {0, 1, 2};
  M.Exports.push_back({"f", ExportKind::Func, 3});
  for (uint32_t Sel : {0u, 1u, 2u, 9u})
    expectSameAll(M, "f", {WValue::i32(Sel), WValue::i32(3), WValue::i32(6)});

  // Unbounded recursion: "call stack exhausted" from a native frame.
  WModule Rec;
  uint32_t TV = Rec.addType({{}, {}});
  Rec.Funcs.push_back({TV, {}, {WInst::idx(Op::Call, 0)}});
  Rec.Exports.push_back({"f", ExportKind::Func, 0});
  auto RR = expectSameAll(Rec, "f");
  EXPECT_EQ(RR[2].Err, "trap: call stack exhausted [func 0]");
}

TEST(JitDiff, HostCallbacksAndHostTraps) {
  // Host call in the middle of jitted arithmetic; the host pokes memory
  // (visible identically) and its results flow back into native code.
  WModule M;
  uint32_t TI = M.addType({{ValType::I32}, {ValType::I32}});
  M.ImportFuncs.push_back({"env", "scale", TI});
  M.Memory = {{1, std::nullopt}};
  M.Funcs.push_back({TI,
                     {},
                     {WInst::idx(Op::LocalGet, 0), WInst::idx(Op::Call, 0),
                      WInst::i32c(1), WInst::mk(Op::I32Add)}});
  M.Exports.push_back({"f", ExportKind::Func, 1});
  auto Bind = [](Instance &I) {
    I.registerHost("env", "scale",
                   [](Instance &Inst, const std::vector<WValue> &Args)
                       -> Expected<std::vector<WValue>> {
                     Inst.store32(64, Args[0].asU32());
                     return std::vector<WValue>{
                         WValue::i32(Args[0].asU32() * 3)};
                   });
  };
  auto R = expectSameAll(M, "f", {WValue::i32(5)}, Bind);
  EXPECT_TRUE(R[2].Ok);
  EXPECT_EQ(R[2].Results[0].asU32(), 16u);
  EXPECT_EQ(R[2].Inst->load32(64), 5u);

  // A trapping host: the one JTrapFinal path (cannot re-execute).
  WModule B;
  uint32_t TV = B.addType({{}, {}});
  B.ImportFuncs.push_back({"env", "boom", TV});
  B.Funcs.push_back({TV, {}, {WInst::idx(Op::Call, 0)}});
  B.Exports.push_back({"f", ExportKind::Func, 1});
  auto BindBoom = [](Instance &I) {
    I.registerHost("env", "boom",
                   [](Instance &, const std::vector<WValue> &)
                       -> Expected<std::vector<WValue>> {
                     return Error("host exploded");
                   });
  };
  auto RB = expectSameAll(B, "f", {}, BindBoom);
  EXPECT_EQ(RB[2].Err, "trap: host exploded [func 0]");

  // An unbound import: all three engines refuse identically (initialize
  // rejects it before anything runs; equality asserted by expectSameAll).
  auto RU = expectSameAll(B, "f", {});
  EXPECT_FALSE(RU[2].Ok);
  EXPECT_NE(RU[2].Err.find("unsatisfied import"), std::string::npos)
      << RU[2].Err;
}

TEST(JitDiff, MemoryAndTrapMessagesExact) {
  // Every store width + every load flavor, checksummed.
  WModule W = oneFunc(
      {{}, {ValType::I64}}, {ValType::I64},
      {WInst::i32c(0), WInst::i64c(0x1122334455667788ll),
       WInst::mem(Op::I64Store, 3, 0),
       WInst::i32c(16), WInst::i32c(0xbeef), WInst::mem(Op::I32Store16, 1, 0),
       WInst::i32c(18), WInst::i32c(0x7f), WInst::mem(Op::I32Store8, 0, 0),
       WInst::i32c(24), WInst::i64c(0x3ff0000000000000ll),
       WInst::mem(Op::I64Store, 3, 0),
       WInst::i32c(0), WInst::mem(Op::I64Load, 3, 0),
       WInst::i32c(0), WInst::mem(Op::I64Load8S, 0, 3),
       WInst::mk(Op::I64Add),
       WInst::i32c(0), WInst::mem(Op::I64Load16U, 1, 4),
       WInst::mk(Op::I64Xor),
       WInst::i32c(16), WInst::mem(Op::I64Load32S, 2, 0),
       WInst::mk(Op::I64Add),
       WInst::i32c(14), WInst::mem(Op::I64Load16S, 1, 0),
       WInst::mk(Op::I64Xor),
       WInst::i32c(24), WInst::mem(Op::I64Load, 3, 0),
       WInst::mk(Op::I64Add)});
  W.Memory = {{1, std::nullopt}};
  expectSameAll(W, "f");

  // Out-of-bounds addresses, including the wraparound corner.
  for (uint32_t Addr : {65533u, 65536u, 0xfffffffcu}) {
    WModule M = oneFunc({{}, {ValType::I32}}, {},
                        {WInst::i32c(static_cast<int32_t>(Addr)),
                         WInst::mem(Op::I32Load, 2, 0)});
    M.Memory = {{1, std::nullopt}};
    auto R = expectSameAll(M, "f");
    EXPECT_EQ(R[2].Err, "trap: out-of-bounds memory access [func 0]");
  }

  // memory.grow with a max, observed sizes, and the -1 failure.
  WModule G = oneFunc(
      {{}, {ValType::I32}}, {ValType::I32},
      {WInst::i32c(2), WInst::mk(Op::MemoryGrow), WInst::idx(Op::LocalSet, 0),
       WInst::i32c(65536 + 8), WInst::i32c(77), WInst::mem(Op::I32Store, 2, 0),
       WInst::i32c(100), WInst::mk(Op::MemoryGrow),
       WInst::idx(Op::LocalGet, 0), WInst::mk(Op::I32Add),
       WInst::mk(Op::MemorySize), WInst::mk(Op::I32Add)});
  G.Memory = {{1, {4}}};
  auto RG = expectSameAll(G, "f");
  EXPECT_TRUE(RG[2].Ok);
  EXPECT_EQ(RG[2].Results[0].asU32(), 3u);

  // Arithmetic and conversion traps from inlined and helper-dispatched
  // templates alike.
  struct Case {
    std::vector<WInst> Body;
    const char *Msg;
  } Cases[] = {
      {{WInst::i32c(1), WInst::i32c(0), WInst::mk(Op::I32DivS)},
       "trap: integer divide error [func 0]"},
      {{WInst::i32c(static_cast<int32_t>(0x80000000)), WInst::i32c(-1),
        WInst::mk(Op::I32DivS)},
       "trap: integer divide error [func 0]"},
      {{WInst::i64c(5), WInst::i64c(0), WInst::mk(Op::I64RemU),
        WInst::mk(Op::I32WrapI64)},
       "trap: integer divide error [func 0]"},
      {{WInst::mk(Op::Unreachable)}, "trap: unreachable executed [func 0]"},
      {{WInst::i64c(0x4270000000000000ll), WInst::mk(Op::F64ReinterpretI64),
        WInst::mk(Op::I32TruncF64S)},
       "trap: invalid conversion to integer [func 0]"},
  };
  for (Case &C : Cases) {
    WModule M = oneFunc({{}, {ValType::I32}}, {}, C.Body);
    auto R = expectSameAll(M, "f");
    EXPECT_EQ(R[2].Err, C.Msg);
  }
}

TEST(JitDiff, FuelExhaustionParity) {
  // An infinite loop under a tight fuel budget must trap "fuel
  // exhausted" after consuming *exactly* as much fuel as the
  // interpreter would — segment batching refunds the unexecuted rest.
  WModule M = oneFunc({{}, {}}, {},
                      {WInst::block({{}, {}},
                                    {WInst::loop({{}, {}},
                                                 {WInst::idx(Op::Br, 0)})})});
  auto FI = createInstance(M, EngineKind::Flat);
  auto JI = createInstance(M, EngineKind::Jit);
  ASSERT_TRUE(FI->initialize().ok());
  ASSERT_TRUE(JI->initialize().ok());
  auto RF = FI->invoke(0, {}, /*MaxFuel=*/1000);
  auto RJ = JI->invoke(0, {}, /*MaxFuel=*/1000);
  ASSERT_FALSE(bool(RF));
  ASSERT_FALSE(bool(RJ));
  EXPECT_EQ(RF.error().message(), "trap: fuel exhausted [func 0]");
  EXPECT_EQ(RJ.error().message(), RF.error().message());
  EXPECT_EQ(FI->instrCount(), JI->instrCount());
  EXPECT_EQ(JI->instrCount(), 1000u);
}

TEST(JitDiff, TierUpMidLoopThenTrap) {
  // Threshold tiering: f(d) divides by d inside a loop. Two clean
  // invokes push the profile mass over threshold 1 so the third invoke
  // runs native — and traps mid-loop with the interpreter's exact
  // message (the deopt re-executes the faulting division flat).
  WModule M = oneFunc(
      {{ValType::I32}, {ValType::I32}}, {ValType::I32, ValType::I32},
      {WInst::block(
           {{}, {}},
           {WInst::loop(
               {{}, {}},
               {WInst::idx(Op::LocalGet, 1), WInst::i32c(1),
                WInst::mk(Op::I32Add), WInst::idx(Op::LocalTee, 1),
                WInst::idx(Op::LocalGet, 0), WInst::mk(Op::I32DivU),
                WInst::idx(Op::LocalGet, 2), WInst::mk(Op::I32Add),
                WInst::idx(Op::LocalSet, 2), WInst::idx(Op::LocalGet, 1),
                WInst::i32c(10), WInst::mk(Op::I32LtS),
                WInst::idx(Op::BrIf, 0)})}),
       WInst::idx(Op::LocalGet, 2)});
  ASSERT_TRUE(validate(M).ok());

  exec::FlatInstance Jit(M);
  Jit.setTierPolicy(/*Threshold=*/1);
  // Threshold tiering turns profiling on by itself, but only when the
  // backend is compiled in; enable it explicitly so the trap notes below
  // match in the -DRW_JIT=OFF build too (where the policy is inert).
  Jit.enableProfiling();
  ASSERT_TRUE(Jit.initialize().ok());
  EXPECT_EQ(Jit.jitCompiledCount(), 0u) << "nothing tiers before profiles";

  // Threshold tiering turns profiling on, and profiled instances render
  // richer trap notes — profile the tree reference identically.
  auto TreeI = createInstance(M, EngineKind::Tree);
  TreeI->enableProfiling();
  ASSERT_TRUE(TreeI->initialize().ok());

  for (uint32_t D : {1u, 2u}) {
    auto RJ = Jit.invoke(0, {WValue::i32(D)});
    auto RT = TreeI->invoke(0, {WValue::i32(D)});
    ASSERT_TRUE(bool(RJ)) << RJ.error().message();
    ASSERT_TRUE(bool(RT));
    EXPECT_EQ((*RJ)[0].Bits, (*RT)[0].Bits);
  }
#if RW_JIT_ENABLED
  EXPECT_EQ(Jit.jitCompiledCount(), 1u) << "threshold crossing missed";
#endif
  auto RJ = Jit.invoke(0, {WValue::i32(0)});
  auto RT = TreeI->invoke(0, {WValue::i32(0)});
  ASSERT_FALSE(bool(RJ));
  ASSERT_FALSE(bool(RT));
  EXPECT_EQ(RJ.error().message(), RT.error().message());
  EXPECT_EQ(RJ.error().message(),
            "trap: integer divide error [func 0; inv 3, loops 21]");
  // And the instance keeps working natively after the trap unwound.
  auto RAgain = Jit.invoke(0, {WValue::i32(3)});
  ASSERT_TRUE(bool(RAgain)) << RAgain.error().message();
}

TEST(JitDiff, ThresholdNeverStaysFlat) {
  WModule M = oneFunc({{ValType::I32}, {ValType::I32}}, {},
                      {WInst::idx(Op::LocalGet, 0), WInst::i32c(2),
                       WInst::mk(Op::I32Mul)});
  exec::FlatInstance I(M);
  I.setTierPolicy(exec::FlatInstance::NeverTier);
  ASSERT_TRUE(I.initialize().ok());
  for (int K = 0; K < 50; ++K) {
    auto R = I.invoke(0, {WValue::i32(21)});
    ASSERT_TRUE(bool(R));
    EXPECT_EQ((*R)[0].asU32(), 42u);
  }
  EXPECT_EQ(I.jitCompiledCount(), 0u);
}

TEST(JitDiff, ProfileTrapNoteParity) {
  // Profiled execution: the native profile templates must leave the
  // same counters — and the same "[func N; inv I, loops L]" note — as
  // both interpreters.
  WModule M;
  uint32_t TV = M.addType({{}, {}});
  M.Funcs.push_back(
      {TV,
       {ValType::I32},
       {WInst::block(
            {{}, {}},
            {WInst::loop({{}, {}},
                         {WInst::idx(Op::LocalGet, 0), WInst::i32c(1),
                          WInst::mk(Op::I32Add), WInst::idx(Op::LocalTee, 0),
                          WInst::i32c(3), WInst::mk(Op::I32LtS),
                          WInst::idx(Op::BrIf, 0)})}),
        WInst::idx(Op::Call, 1)}});
  M.Funcs.push_back({TV, {}, {WInst::mk(Op::Unreachable)}});
  M.Exports.push_back({"f", ExportKind::Func, 0});
  ASSERT_TRUE(validate(M).ok());

  std::vector<std::string> Errs;
  for (EngineKind K : AllEngines) {
    auto I = createInstance(M, K);
    I->enableProfiling();
    ASSERT_TRUE(I->initialize().ok());
    auto R = I->invokeByName("f", {});
    ASSERT_FALSE(bool(R));
    Errs.push_back(R.error().message());
    const std::vector<FunctionProfile> &P = I->functionProfiles();
    ASSERT_EQ(P.size(), 2u) << engineKindName(K);
    EXPECT_EQ(P[0].Invocations, 1u) << engineKindName(K);
    EXPECT_EQ(P[0].LoopHeads, 3u) << engineKindName(K);
    EXPECT_EQ(P[1].Invocations, 1u) << engineKindName(K);
  }
  EXPECT_EQ(Errs[0], Errs[1]);
  EXPECT_EQ(Errs[0], Errs[2]);
  EXPECT_EQ(Errs[0], "trap: unreachable executed [func 1; inv 1, loops 0]");
}

TEST(JitDiff, ResetProfilesRetiers) {
  // exec::resetProfiles zeroes the counters: a threshold instance whose
  // profile was reset must re-accumulate before tiering new functions.
  WModule M = oneFunc({{ValType::I32}, {ValType::I32}}, {},
                      {WInst::idx(Op::LocalGet, 0), WInst::i32c(1),
                       WInst::mk(Op::I32Add)});
  exec::FlatInstance I(M);
  I.setTierPolicy(/*Threshold=*/5);
  I.enableProfiling(); // Keeps functionProfiles() populated under JIT=OFF.
  ASSERT_TRUE(I.initialize().ok());
  for (int K = 0; K < 3; ++K)
    ASSERT_TRUE(bool(I.invoke(0, {WValue::i32(K)})));
  exec::resetProfiles(I);
  EXPECT_EQ(I.functionProfiles()[0].Invocations, 0u);
  for (int K = 0; K < 2; ++K)
    ASSERT_TRUE(bool(I.invoke(0, {WValue::i32(K)})));
  // 3 + 2 invokes but never 5 *consecutive* since the reset: still flat.
  EXPECT_EQ(I.jitCompiledCount(), 0u);
  for (int K = 0; K < 4; ++K)
    ASSERT_TRUE(bool(I.invoke(0, {WValue::i32(K)})));
#if RW_JIT_ENABLED
  EXPECT_EQ(I.jitCompiledCount(), 1u);
#endif
}

TEST(JitFuzz, StraightLineNumericSweepEager) {
  // The fuzz alphabet against the native templates: every inlined ALU
  // template, every helper-dispatched conversion, every trap edge.
  unsigned Agree = 0, Trapped = 0;
  for (uint64_t Seed = 1; Seed <= 100; ++Seed) {
    WModule M = fuzzModule(Seed, 60);
    ASSERT_TRUE(validate(M).ok());
    for (uint32_t Arg : {0u, 0xdeadbeefu}) {
      RunResult T = runOn(M, EngineKind::Tree, "f", {WValue::i32(Arg)});
      RunResult J = runOn(M, EngineKind::Jit, "f", {WValue::i32(Arg)});
      ASSERT_EQ(T.Ok, J.Ok) << "seed " << Seed << " arg " << Arg
                            << " tree: " << T.Err << " jit: " << J.Err;
      ASSERT_EQ(T.Err, J.Err) << "seed " << Seed;
      if (T.Ok) {
        ASSERT_EQ(T.Results[0].Bits, J.Results[0].Bits)
            << "seed " << Seed << " arg " << Arg;
        ++Agree;
      } else {
        ++Trapped;
      }
    }
  }
  EXPECT_GT(Agree, 30u);
  EXPECT_GT(Trapped, 5u);
}

TEST(JitLowered, WorkloadsAndHostGcThreeWay) {
  // The lowered pipeline end to end on EngineKind::Jit — including the
  // shared pretranslated artifact hand-off and the host-assisted GC
  // whose mark/sweep exports run as native code.
  for (bool Linear : {true, false}) {
    ir::Module M = rwbench::allocModule(Linear ? 300 : 200, Linear);
    link::LoweredInstance LI[3];
    for (int K = 0; K < 3; ++K) {
      link::LinkOptions Opts;
      Opts.Engine = AllEngines[K];
      auto R = link::instantiateLowered({&M}, Opts);
      ASSERT_TRUE(bool(R)) << R.error().message();
      LI[K] = std::move(*R);
    }
    std::array<Expected<std::vector<WValue>>, 3> Out = {
        LI[0].invokeExport("allocmod.main", {}),
        LI[1].invokeExport("allocmod.main", {}),
        LI[2].invokeExport("allocmod.main", {})};
    for (int K = 1; K < 3; ++K) {
      ASSERT_EQ(bool(Out[0]), bool(Out[K]));
      if (Out[0])
        EXPECT_EQ((*Out[0])[0].Bits, (*Out[K])[0].Bits);
      EXPECT_EQ(LI[0].Instance->memory(), LI[K].Instance->memory());
    }
#if RW_JIT_ENABLED
    EXPECT_GT(static_cast<exec::FlatInstance &>(*LI[2].Instance)
                  .jitCompiledCount(),
              0u);
#endif
    if (!Linear) {
      lower::HostGc GcT(*LI[0].Instance, LI[0].Program->Runtime,
                        LI[0].Program->RefGlobals);
      lower::HostGc GcJ(*LI[2].Instance, LI[2].Program->Runtime,
                        LI[2].Program->RefGlobals);
      lower::HostGc::Stats ST = GcT.collect();
      lower::HostGc::Stats SJ = GcJ.collect();
      EXPECT_EQ(ST.Marked, SJ.Marked);
      EXPECT_EQ(ST.Swept, SJ.Swept);
      EXPECT_EQ(ST.BytesReclaimed, SJ.BytesReclaimed);
      EXPECT_EQ(LI[0].Instance->memory(), LI[2].Instance->memory());
    }
  }

  // LinkOptions::JitThreshold drives the same policy from the link layer.
  ir::Module Loop = rwbench::loopModule(50);
  link::LinkOptions Opts;
  Opts.Engine = EngineKind::Flat;
  Opts.JitThreshold = 1;
  auto R = link::instantiateLowered({&Loop}, Opts);
  ASSERT_TRUE(bool(R)) << R.error().message();
  for (int K = 0; K < 3; ++K)
    ASSERT_TRUE(bool(R->invokeExport("loopmod.main", {})));
#if RW_JIT_ENABLED
  EXPECT_GT(
      static_cast<exec::FlatInstance &>(*R->Instance).jitCompiledCount(), 0u);
#endif
}
