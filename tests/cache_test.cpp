//===- tests/cache_test.cpp - Admission cache tests -----------------------===//
//
// Part of the RichWasm reproduction. MIT license.
//
// Pins the content-addressed admission cache contract (DESIGN.md §8):
//
//  * check memoization — warm hits replay verdicts with *byte-identical*
//    diagnostics to a fresh sequential check, for any ThreadPool size
//    (1/3/8), and identical content inside one batch is checked once;
//  * program memoization — a warm link::instantiateLowered resubmission
//    skips straight to instantiation (stats prove the hit) and produces
//    identical results on both engines, which share one artifact;
//  * LRU byte budget — recency decides eviction, stats account bytes and
//    evictions exactly, and evicting an artifact never invalidates a
//    running instance;
//  * thread safety — concurrent probes/stores from the PR 3 pool (the
//    TSan job runs this binary).
//
//===----------------------------------------------------------------------===//

#include "cache/AdmissionCache.h"

#include "bench/Common.h"
#include "obs/Obs.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

using namespace rw;
using namespace rw::ir;

namespace {

/// A small valid module with content parameterized by \p Tag.
ir::Module okModule(uint32_t Tag) {
  using namespace rw::ir::build;
  ir::Module M;
  M.Name = "ok" + std::to_string(Tag);
  InstVec Body = {getLocal(0, Qual::unr()),
                  iconst(static_cast<int32_t>(Tag)), addI32()};
  M.Funcs.push_back(function({"f"},
                             FunType::get({}, arrow({i32T()}, {i32T()})), {},
                             std::move(Body)));
  return M;
}

/// A module the checker rejects (drops a linear value).
ir::Module badModule(uint32_t Tag) {
  using namespace rw::ir::build;
  ir::Module M;
  M.Name = "bad" + std::to_string(Tag);
  InstVec Body = {iconst(static_cast<int32_t>(Tag)),
                  structMalloc({Size::constant(32)}, Qual::lin()),
                  drop(), // Leaks the linear reference.
                  iconst(0)};
  M.Funcs.push_back(function({"f"},
                             FunType::get({}, arrow({}, {i32T()})), {},
                             std::move(Body)));
  return M;
}

/// lib exports `double`, client imports it and exports `main`.
std::pair<ir::Module, ir::Module> linkedPair() {
  using namespace rw::ir::build;
  FunTypeRef Fn = FunType::get({}, arrow({i32T()}, {i32T()}));
  ir::Module Lib;
  Lib.Name = "lib";
  Lib.Funcs.push_back(function({"double"}, Fn, {},
                               {getLocal(0, Qual::unr()),
                                getLocal(0, Qual::unr()), addI32()}));
  ir::Module Client;
  Client.Name = "client";
  Client.Funcs.push_back(importFunc({"lib", "double"}, Fn));
  Client.Funcs.push_back(function(
      {"main"}, FunType::get({}, arrow({}, {i32T()})), {},
      {iconst(21), call(0)}));
  return {std::move(Lib), std::move(Client)};
}

//===----------------------------------------------------------------------===//
// Check memoization
//===----------------------------------------------------------------------===//

TEST(Cache, WarmCheckHitsReplayByteIdenticalDiagnostics) {
  ir::Module Ok = okModule(1), Bad = badModule(1);
  std::vector<const ir::Module *> Mods = {&Ok, &Bad};

  // Reference verdicts from the sequential checker.
  Status RefOk = typing::checkModule(Ok);
  Status RefBad = typing::checkModule(Bad);
  ASSERT_TRUE(RefOk.ok());
  ASSERT_FALSE(RefBad.ok());

  cache::AdmissionCache C;
  support::ThreadPool Pool(3);

  std::vector<Status> Cold = typing::checkModules(Mods, Pool, &C);
  ASSERT_EQ(Cold.size(), 2u);
  EXPECT_TRUE(Cold[0].ok());
  ASSERT_FALSE(Cold[1].ok());
  EXPECT_EQ(Cold[1].error().message(), RefBad.error().message());
  EXPECT_EQ(C.stats().CheckMisses, 2u);
  EXPECT_EQ(C.stats().CheckHits, 0u);

  std::vector<Status> Warm = typing::checkModules(Mods, Pool, &C);
  EXPECT_TRUE(Warm[0].ok());
  ASSERT_FALSE(Warm[1].ok());
  EXPECT_EQ(Warm[1].error().message(), RefBad.error().message());
  EXPECT_EQ(C.stats().CheckHits, 2u);
  EXPECT_EQ(C.stats().CheckMisses, 2u);

  // A null cache degrades to the uncached overload.
  std::vector<Status> Plain = typing::checkModules(
      Mods, Pool, static_cast<cache::AdmissionCache *>(nullptr));
  ASSERT_FALSE(Plain[1].ok());
  EXPECT_EQ(Plain[1].error().message(), RefBad.error().message());
}

TEST(Cache, IdenticalContentInOneBatchIsCheckedOnce) {
  // Two distinct Module objects, same content: one miss, one dedup.
  ir::Module A = okModule(7), B = okModule(7), Other = okModule(9);
  std::vector<const ir::Module *> Mods = {&A, &B, &Other};
  cache::AdmissionCache C;
  support::ThreadPool Pool(3);
  std::vector<Status> Out = typing::checkModules(Mods, Pool, &C);
  ASSERT_EQ(Out.size(), 3u);
  EXPECT_TRUE(Out[0].ok());
  EXPECT_TRUE(Out[1].ok());
  EXPECT_TRUE(Out[2].ok());
  // Only two unique contents were ever probed or checked.
  EXPECT_EQ(C.stats().CheckMisses, 2u);
  EXPECT_EQ(C.stats().Entries, 2u);
}

TEST(Cache, WarmHitDeterminismAcrossPoolSizes) {
  // Batch with successes and failures; every (pool size, warm/cold)
  // combination must produce byte-identical statuses.
  std::vector<ir::Module> Store;
  for (uint32_t I = 0; I < 4; ++I)
    Store.push_back(okModule(I));
  for (uint32_t I = 0; I < 3; ++I)
    Store.push_back(badModule(I));
  Store.push_back(rwbench::wideModule(6));
  std::vector<const ir::Module *> Mods;
  for (ir::Module &M : Store)
    Mods.push_back(&M);

  auto render = [](const std::vector<Status> &Ss) {
    std::string Out;
    for (const Status &S : Ss)
      Out += S.ok() ? "<ok>;" : S.error().message() + ";";
    return Out;
  };

  std::string Reference;
  for (unsigned Threads : {1u, 3u, 8u}) {
    support::ThreadPool Pool(Threads);
    cache::AdmissionCache C;
    std::string Cold = render(typing::checkModules(Mods, Pool, &C));
    std::string Warm = render(typing::checkModules(Mods, Pool, &C));
    EXPECT_EQ(Cold, Warm) << "pool size " << Threads;
    if (Reference.empty())
      Reference = Cold;
    EXPECT_EQ(Cold, Reference) << "pool size " << Threads;
    EXPECT_GE(C.stats().CheckHits, Mods.size());
  }
}

//===----------------------------------------------------------------------===//
// Program memoization (instantiateLowered warm path)
//===----------------------------------------------------------------------===//

TEST(Cache, WarmInstantiateLoweredSkipsToInstantiation) {
  auto [Lib, Client] = linkedPair();
  std::vector<const ir::Module *> Mods = {&Lib, &Client};

  cache::AdmissionCache C;
  link::LinkOptions Opts;
  Opts.Cache = &C;

  auto Cold = link::instantiateLowered(Mods, Opts);
  ASSERT_TRUE(bool(Cold)) << Cold.error().message();
  auto R1 = Cold->invokeExport("client.main", {});
  ASSERT_TRUE(bool(R1)) << R1.error().message();
  EXPECT_EQ((*R1)[0].Bits, 42u);
  EXPECT_EQ(C.stats().ProgramMisses, 1u);
  EXPECT_EQ(C.stats().ProgramHits, 0u);

  auto Warm = link::instantiateLowered(Mods, Opts);
  ASSERT_TRUE(bool(Warm)) << Warm.error().message();
  EXPECT_EQ(C.stats().ProgramHits, 1u);
  EXPECT_EQ(C.stats().ProgramMisses, 1u);
  // Both instances share one lowered artifact.
  EXPECT_EQ(Warm->Program.get(), Cold->Program.get());
  auto R2 = Warm->invokeExport("client.main", {});
  ASSERT_TRUE(bool(R2)) << R2.error().message();
  EXPECT_EQ((*R2)[0].Bits, 42u);

  // The flat engine hits the same artifact (the key is engine-
  // independent) and adopts the memoized translation.
  link::LinkOptions FlatOpts = Opts;
  FlatOpts.Engine = wasm::EngineKind::Flat;
  auto Flat = link::instantiateLowered(Mods, FlatOpts);
  ASSERT_TRUE(bool(Flat)) << Flat.error().message();
  EXPECT_EQ(C.stats().ProgramHits, 2u);
  EXPECT_EQ(Flat->Instance->engine(), wasm::EngineKind::Flat);
  auto R3 = Flat->invokeExport("client.main", {});
  ASSERT_TRUE(bool(R3)) << R3.error().message();
  EXPECT_EQ((*R3)[0].Bits, 42u);

  // Different link order = different program = different key.
  std::vector<const ir::Module *> Reordered = {&Client, &Lib};
  auto Miss = link::instantiateLowered(Reordered, Opts);
  EXPECT_EQ(C.stats().ProgramMisses, 2u);
  (void)Miss; // Client-before-lib leaves the import host-unbound; the
              // cold path may fail or succeed, the key just must differ.
}

TEST(Cache, ProgramOrderAndContentDecideTheKey) {
  auto [Lib, Client] = linkedPair();
  ir::Module Lib2 = Lib; // Same content, different object.
  std::vector<const ir::Module *> A = {&Lib, &Client};
  std::vector<const ir::Module *> B = {&Lib2, &Client};
  EXPECT_EQ(cache::programKey(A), cache::programKey(B));
  std::vector<const ir::Module *> Rev = {&Client, &Lib};
  EXPECT_NE(cache::programKey(A), cache::programKey(Rev));
}

//===----------------------------------------------------------------------===//
// LRU byte budget
//===----------------------------------------------------------------------===//

TEST(Cache, LruEvictsByRecencyWithinByteBudget) {
  // Check entries cost 64 + diagnostics bytes; a 200-byte budget fits
  // three empty-diagnostic entries.
  cache::AdmissionCache C(200);
  serial::ModuleHash KA{1, 1}, KB{2, 2}, KC{3, 3}, KD{4, 4};
  C.storeCheck(KA, {true, ""});
  C.storeCheck(KB, {true, ""});
  EXPECT_TRUE(C.lookupCheck(KA).has_value()); // A is now more recent than B.
  C.storeCheck(KC, {true, ""});
  EXPECT_EQ(C.stats().Entries, 3u);
  EXPECT_EQ(C.stats().Evictions, 0u);

  C.storeCheck(KD, {true, ""}); // 256 bytes > 200: evict LRU = B.
  EXPECT_EQ(C.stats().Evictions, 1u);
  EXPECT_EQ(C.stats().Entries, 3u);
  EXPECT_LE(C.stats().Bytes, C.byteBudget());
  EXPECT_FALSE(C.lookupCheck(KB).has_value());
  EXPECT_TRUE(C.lookupCheck(KA).has_value());
  EXPECT_TRUE(C.lookupCheck(KC).has_value());
  EXPECT_TRUE(C.lookupCheck(KD).has_value());

  C.clear();
  EXPECT_EQ(C.stats().Entries, 0u);
  EXPECT_EQ(C.stats().Bytes, 0u);
  EXPECT_FALSE(C.lookupCheck(KA).has_value());
}

TEST(Cache, OversizedArtifactIsRejectedWithoutFlushingResidents) {
  // A budget smaller than any artifact: the store is rejected up front —
  // admitting it would evict the whole warm set before the oversized
  // entry itself went. Resident entries survive and the returned
  // instance still works (it owns the artifact through its shared_ptr).
  auto [Lib, Client] = linkedPair();
  std::vector<const ir::Module *> Mods = {&Lib, &Client};
  cache::AdmissionCache C(200); // Fits check verdicts, never an artifact.
  serial::ModuleHash KA{1, 1}, KB{2, 2};
  C.storeCheck(KA, {true, ""});
  C.storeCheck(KB, {true, ""});

  link::LinkOptions Opts;
  Opts.Cache = &C;
  auto LI = link::instantiateLowered(Mods, Opts);
  ASSERT_TRUE(bool(LI)) << LI.error().message();
  // The warm resident set was not collateral damage.
  EXPECT_EQ(C.stats().Evictions, 0u);
  EXPECT_EQ(C.stats().Entries, 2u);
  EXPECT_TRUE(C.lookupCheck(KA).has_value());
  EXPECT_TRUE(C.lookupCheck(KB).has_value());

  auto R = LI->invokeExport("client.main", {});
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_EQ((*R)[0].Bits, 42u);
  // And the next submission is a miss again (the artifact never cached).
  auto LI2 = link::instantiateLowered(Mods, Opts);
  ASSERT_TRUE(bool(LI2));
  EXPECT_EQ(C.stats().ProgramHits, 0u);
}

//===----------------------------------------------------------------------===//
// Concurrency (TSan)
//===----------------------------------------------------------------------===//

TEST(Cache, ConcurrentProbesAndStoresAreSafe) {
  cache::AdmissionCache C(1 << 16);
  support::ThreadPool Pool(8);
  std::vector<ir::Module> Mods;
  for (uint32_t I = 0; I < 8; ++I)
    Mods.push_back(okModule(I % 4));
  std::vector<serial::ModuleHash> Keys;
  for (const ir::Module &M : Mods)
    Keys.push_back(serial::moduleHash(M));

  Pool.parallelFor(256, [&](size_t I) {
    const serial::ModuleHash &K = Keys[I % Keys.size()];
    if (I % 3 == 0)
      C.storeCheck(K, {true, ""});
    else
      (void)C.lookupCheck(K);
    if (I % 7 == 0)
      (void)C.stats();
  });
  EXPECT_LE(C.stats().Entries, 4u); // 4 unique contents.

  // Concurrent warm admissions through the full cached pipeline.
  std::vector<const ir::Module *> Ptrs;
  for (ir::Module &M : Mods)
    Ptrs.push_back(&M);
  std::vector<std::string> Outs(4);
  Pool.parallelFor(4, [&](size_t I) {
    support::ThreadPool Inner(1);
    std::vector<Status> S = typing::checkModules(Ptrs, Inner, &C);
    std::string R;
    for (const Status &St : S)
      R += St.ok() ? "<ok>;" : St.error().message() + ";";
    Outs[I] = R;
  });
  for (size_t I = 1; I < Outs.size(); ++I)
    EXPECT_EQ(Outs[I], Outs[0]);
}

//===----------------------------------------------------------------------===//
// Sharding (PR 9)
//===----------------------------------------------------------------------===//

TEST(Cache, ShardedRoundTripAndStatsAggregation) {
  cache::AdmissionCache C(1 << 20, 8);
  EXPECT_EQ(C.shardCount(), 8u);
  for (uint64_t I = 0; I < 256; ++I)
    C.storeCheck({I, I * 2 + 1}, {true, "d" + std::to_string(I)});
  for (uint64_t I = 0; I < 256; ++I) {
    auto R = C.lookupCheck({I, I * 2 + 1});
    ASSERT_TRUE(R.has_value()) << I;
    EXPECT_EQ(R->Diagnostics, "d" + std::to_string(I));
  }
  (void)C.lookupCheck({999, 999}); // One miss somewhere.

  cache::CacheStats Agg = C.stats();
  EXPECT_EQ(Agg.Entries, 256u);
  EXPECT_EQ(Agg.CheckHits, 256u);
  EXPECT_EQ(Agg.CheckMisses, 1u); // Stores do not probe; one cold lookup.
  cache::CacheStats Sum;
  unsigned NonEmpty = 0;
  for (unsigned S = 0; S < C.shardCount(); ++S) {
    cache::CacheStats SS = C.shardStats(S);
    Sum.CheckHits += SS.CheckHits;
    Sum.CheckMisses += SS.CheckMisses;
    Sum.Evictions += SS.Evictions;
    Sum.Bytes += SS.Bytes;
    Sum.Entries += SS.Entries;
    NonEmpty += SS.Entries > 0;
  }
  EXPECT_EQ(Sum.CheckHits, Agg.CheckHits);
  EXPECT_EQ(Sum.CheckMisses, Agg.CheckMisses);
  EXPECT_EQ(Sum.Bytes, Agg.Bytes);
  EXPECT_EQ(Sum.Entries, Agg.Entries);
  // mix64 actually partitions: 256 keys do not pile into one shard.
  EXPECT_GT(NonEmpty, 4u);
}

TEST(Cache, ShardedEvictionIsPerShardBudget) {
  // 1600 bytes over 8 shards = 200/shard: three empty-diagnostic check
  // entries (64 bytes each) per shard, 24 residents total at most.
  cache::AdmissionCache C(1600, 8);
  for (uint64_t I = 0; I < 64; ++I)
    C.storeCheck({I * 31 + 7, I}, {true, ""});
  cache::CacheStats Agg = C.stats();
  EXPECT_LE(Agg.Entries, 24u);
  EXPECT_GE(Agg.Evictions, 64u - 24u);
  for (unsigned S = 0; S < C.shardCount(); ++S) {
    cache::CacheStats SS = C.shardStats(S);
    EXPECT_LE(SS.Entries, 3u) << "shard " << S << " exceeded its budget";
    EXPECT_LE(SS.Bytes, 200u) << "shard " << S;
  }

  // Oversize is judged against the *shard* budget: a 264-byte entry
  // would fit 1600 globally but is rejected per the single-shard rule.
  uint64_t EvBefore = C.stats().Evictions;
  C.storeCheck({12345, 54321}, {true, std::string(200, 'x')});
  EXPECT_FALSE(C.lookupCheck({12345, 54321}).has_value());
  EXPECT_EQ(C.stats().Evictions, EvBefore) << "oversize store flushed a shard";

  C.clear();
  EXPECT_EQ(C.stats().Entries, 0u);
  EXPECT_EQ(C.stats().Bytes, 0u);
}

TEST(Cache, ShardedWarmPipelineStillHits) {
  auto [Lib, Client] = linkedPair();
  std::vector<const ir::Module *> Mods = {&Lib, &Client};
  cache::AdmissionCache C(cache::AdmissionCache::DefaultByteBudget, 4);
  support::ThreadPool Pool(3);

  std::vector<Status> Cold = typing::checkModules(Mods, Pool, &C);
  EXPECT_TRUE(Cold[0].ok() && Cold[1].ok());
  std::vector<Status> Warm = typing::checkModules(Mods, Pool, &C);
  EXPECT_TRUE(Warm[0].ok() && Warm[1].ok());
  EXPECT_EQ(C.stats().CheckHits, 2u);
  EXPECT_EQ(C.stats().CheckMisses, 2u);

  link::LinkOptions Opts;
  Opts.Cache = &C;
  auto Cold2 = link::instantiateLowered(Mods, Opts);
  ASSERT_TRUE(bool(Cold2)) << Cold2.error().message();
  auto Warm2 = link::instantiateLowered(Mods, Opts);
  ASSERT_TRUE(bool(Warm2)) << Warm2.error().message();
  EXPECT_EQ(C.stats().ProgramHits, 1u);
  EXPECT_EQ(C.stats().ProgramMisses, 1u);
  auto R = Warm2->invokeExport("client.main", {});
  ASSERT_TRUE(bool(R));
  EXPECT_EQ((*R)[0].Bits, 42u);
}

#if RW_OBS_ENABLED
TEST(Cache, ShardedObsSourceEmitsPerShardKeys) {
  cache::AdmissionCache C(1 << 16, 4);
  C.storeCheck({1, 2}, {true, ""});
  (void)C.lookupCheck({1, 2});
  (void)C.lookupCheck({3, 4});
  obs::Snapshot S = obs::snapshot();
  // The source prefix may be uniquified ("cache#N") when other tests'
  // instances are alive; match on suffix within cache-prefixed names.
  bool SawShards = false, SawPerShard = false;
  uint64_t Hits = 0, ShardHits = 0;
  bool SawAggHits = false;
  for (const obs::Metric &M : S.Metrics) {
    if (M.Name.rfind("cache", 0) != 0)
      continue;
    std::string N = M.Name.substr(M.Name.find('.') + 1);
    if (N == "shards" && M.Value == 4)
      SawShards = true;
    if (N.rfind("shard", 0) == 0 && N.find(".hits") != std::string::npos)
      SawPerShard = true;
  }
  EXPECT_TRUE(SawShards);
  EXPECT_TRUE(SawPerShard);
  // Per-shard hit counters sum to the aggregate for *this* instance:
  // find the unique cache prefix whose "shards" value is 4 and fold it.
  std::string Prefix;
  for (const obs::Metric &M : S.Metrics)
    if (M.Name.rfind("cache", 0) == 0 && M.Value == 4 &&
        M.Name.substr(M.Name.find('.') + 1) == "shards")
      Prefix = M.Name.substr(0, M.Name.find('.'));
  ASSERT_FALSE(Prefix.empty());
  for (const obs::Metric &M : S.Metrics) {
    if (M.Name.rfind(Prefix + ".", 0) != 0)
      continue;
    std::string N = M.Name.substr(Prefix.size() + 1);
    if (N == "hits") {
      Hits = M.Value;
      SawAggHits = true;
    }
    if (N.rfind("shard", 0) == 0 &&
        N.substr(N.find('.') + 1) == "hits")
      ShardHits += M.Value;
  }
  EXPECT_TRUE(SawAggHits);
  EXPECT_EQ(ShardHits, Hits);
  EXPECT_EQ(Hits, 1u);
}
#endif // RW_OBS_ENABLED

TEST(Cache, ShardedConcurrentHammer) {
  cache::AdmissionCache C(1 << 14, 8);
  support::ThreadPool Pool(8);
  Pool.parallelFor(2048, [&](size_t I) {
    serial::ModuleHash K{static_cast<uint64_t>(I % 97),
                         static_cast<uint64_t>(I % 89)};
    switch (I % 5) {
    case 0:
      C.storeCheck(K, {true, "x"});
      break;
    case 1:
    case 2:
      (void)C.lookupCheck(K);
      break;
    case 3:
      (void)C.stats();
      break;
    default:
      (void)C.shardStats(static_cast<unsigned>(I) % C.shardCount());
    }
  });
  cache::CacheStats Agg = C.stats();
  EXPECT_LE(Agg.Bytes, C.byteBudget());
  EXPECT_GT(Agg.hits() + Agg.misses(), 0u);
}

} // namespace
