//===- tests/l3_test.cpp - L3 frontend and the ML⊣L3 FFI (§5, Figs 1/3) ---===//
//
// L3 pipeline tests (linearity enforcement, new/free/swap/join/split) and
// the paper's central demonstration: the Fig 3 interop program in which
// ML's `stash` duplicates a linear reference from L3. The unsafe version
// is rejected *statically* by the RichWasm checker; the corrected version
// links, runs, and frees exactly once.
//
//===----------------------------------------------------------------------===//

#include "l3/L3.h"
#include "link/Link.h"
#include "lower/Lower.h"
#include "ml/ML.h"
#include "typing/Checker.h"
#include "wasm/Interp.h"
#include "wasm/Validate.h"

#include <gtest/gtest.h>

using namespace rw;

namespace {

Expected<uint64_t> runL3(const std::string &Src) {
  Expected<ir::Module> M = l3::compileSource("l3", Src);
  if (!M)
    return M.error();
  auto Mach = link::instantiate({&*M});
  if (!Mach)
    return Mach.error();
  auto Idx = link::findExport(*M, "main");
  if (!Idx)
    return Error("no main export");
  auto R = (*Mach)->invoke(0, *Idx, {}, {sem::Value::unit()});
  if (!R)
    return R.error();
  if (R->empty() || !(*R)[0].isNum())
    return Error("main did not return a number");
  return (*R)[0].bits();
}

void expectL3(const std::string &Src, uint64_t Want) {
  Expected<uint64_t> R = runL3(Src);
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_EQ(*R, Want);
}

} // namespace

//===----------------------------------------------------------------------===//
// Basics and the linear discipline
//===----------------------------------------------------------------------===//

TEST(L3, Arithmetic) {
  expectL3("export fun main (u : unit) : int = 6 * 7 ;;", 42);
}

TEST(L3, NewFreeRoundTrip) {
  expectL3("export fun main (u : unit) : int = free (new 42) ;;", 42);
}

TEST(L3, SwapStrongUpdate) {
  // swap returns (old value, cell holding the new one).
  expectL3("export fun main (u : unit) : int = "
           "let (old, c) = swap (new 40) 2 in old + free c ;;",
           42);
}

TEST(L3, JoinSplitRoundTrip) {
  expectL3("export fun main (u : unit) : int = "
           "free (split (join (new 42))) ;;",
           42);
}

TEST(L3, CellsThroughFunctions) {
  expectL3("fun mk (n : int) : Cell int = new n ;;"
           "fun consume (c : Cell int) : int = free c ;;"
           "export fun main (u : unit) : int = consume (mk 42) ;;",
           42);
}

TEST(L3, LinearVarMustBeUsedOnce) {
  // Dropping a cell is rejected by the L3 checker itself.
  auto R = l3::compileSource(
      "l3", "export fun main (u : unit) : int = let c = new 1 in 0 ;;");
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().message().find("exactly once"), std::string::npos);
  // Duplicating one, too.
  auto R2 = l3::compileSource(
      "l3", "export fun main (u : unit) : int = "
            "let c = new 1 in free c + free c ;;");
  ASSERT_FALSE(bool(R2));
}

TEST(L3, SeqDiscardsOnlyUnrestricted) {
  auto R = l3::compileSource(
      "l3", "export fun main (u : unit) : int = new 1 ; 0 ;;");
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().message().find("linear"), std::string::npos);
}

TEST(L3, CompiledModulesPassRichWasmChecking) {
  Expected<ir::Module> M = l3::compileSource(
      "l3", "export fun main (u : unit) : int = "
            "let (old, c) = swap (new 40) 2 in old + free c ;;");
  ASSERT_TRUE(bool(M)) << M.error().message();
  Status S = typing::checkModule(*M);
  EXPECT_TRUE(S.ok()) << S.error().message();
}

TEST(L3, LowersAndRunsOnWasm) {
  Expected<ir::Module> M = l3::compileSource(
      "l3", "export fun main (u : unit) : int = "
            "free (split (join (new 42))) ;;");
  ASSERT_TRUE(bool(M)) << M.error().message();
  auto LP = lower::lowerProgram({&*M});
  ASSERT_TRUE(bool(LP)) << LP.error().message();
  ASSERT_TRUE(wasm::validate(LP->Module).ok())
      << wasm::validate(LP->Module).error().message();
  wasm::WasmInstance Inst(LP->Module);
  ASSERT_TRUE(Inst.initialize().ok());
  auto R = Inst.invokeByName("l3.main", {});
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_EQ((*R)[0].asU32(), 42u);
  // Everything manually freed: no live allocations remain.
  EXPECT_EQ(Inst.global(LP->Runtime.GLive).asU32(), 0u);
}

//===----------------------------------------------------------------------===//
// Fig 3: the ML ⊣ L3 FFI
//===----------------------------------------------------------------------===//

namespace {

const char *MLStashUnsafe =
    "global c = linref [ref int] () ;;"
    "export fun stash (r : lin (ref int)) : lin (ref int) = c := r; r ;;"
    "export fun get_stashed (u : unit) : lin (ref int) = !c ;;";

const char *MLStashSafe =
    "global c = linref [ref int] () ;;"
    "export fun stash (r : lin (ref int)) : unit = c := r ;;"
    "export fun get_stashed (u : unit) : lin (ref int) = !c ;;";

const char *L3ClientUnsafe =
    "import ml.stash : Ref int -o Ref int ;;"
    "import ml.get_stashed : unit -o Ref int ;;"
    "export fun main (u : unit) : int = "
    "  free (split (stash (join (new 42)))) ; "
    "  free (split (get_stashed ())) ;;"; // the would-be double free

const char *L3ClientSafe =
    "import ml.stash : Ref int -o unit ;;"
    "import ml.get_stashed : unit -o Ref int ;;"
    "export fun main (u : unit) : int = "
    "  stash (join (new 42)) ; "
    "  free (split (get_stashed ())) ;;";

} // namespace

TEST(Interop, Fig3UnsafeStashRejectedStatically) {
  // ML side: compiles (ML does not check linearity) but fails RichWasm
  // checking — the compiled `stash` duplicates its linear argument.
  Expected<ir::Module> ML = ml::compileSource("ml", MLStashUnsafe);
  ASSERT_TRUE(bool(ML)) << ML.error().message();
  Expected<ir::Module> L3 = l3::compileSource("l3", L3ClientUnsafe);
  ASSERT_TRUE(bool(L3)) << L3.error().message();

  auto Mach = link::instantiate({&*ML, &*L3});
  ASSERT_FALSE(bool(Mach));
  // The rejection happens in module 'ml', before anything executes.
  EXPECT_NE(Mach.error().message().find("ml"), std::string::npos);
}

TEST(Interop, Fig3SafeVariantLinksRunsAndFreesOnce) {
  // The corrected program: stash keeps the reference, L3 frees the one it
  // later retrieves — exactly one allocation, exactly one free.
  Expected<ir::Module> ML = ml::compileSource("ml", MLStashSafe);
  ASSERT_TRUE(bool(ML)) << ML.error().message();
  Expected<ir::Module> L3 = l3::compileSource("l3", L3ClientSafe);
  ASSERT_TRUE(bool(L3)) << L3.error().message();

  auto Mach = link::instantiate({&*ML, &*L3});
  ASSERT_TRUE(bool(Mach)) << Mach.error().message();
  auto Idx = link::findExport(*L3, "main");
  ASSERT_TRUE(Idx.has_value());
  auto R = (*Mach)->invoke(1, *Idx, {}, {sem::Value::unit()});
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_EQ((*R)[0].bits(), 42u);
  // The linear cell crossed the boundary, was stashed, retrieved, and
  // freed exactly once. The ref_to_lin protocol itself allocates/frees
  // linear option cells as it swaps (2 extra frees); what remains live is
  // exactly the linref's current (empty) option cell.
  const sem::Memory &Mem = (*Mach)->store().Mem;
  EXPECT_EQ(Mem.FreeCountLin, 3u);
  EXPECT_EQ(Mem.Lin.size(), 1u);
}

TEST(Interop, Fig3BoundaryTypeAgreement) {
  // The two compilers must produce identical RichWasm types for the
  // boundary type: ML `lin (ref int)` == L3 `Ref int`.
  auto MLT = ml::lowerMLType(
      ml::MLType::mk(ml::TyKind::Lin,
                     ml::MLType::mk(ml::TyKind::Ref,
                                    ml::MLType::mk(ml::TyKind::Int))),
      {});
  auto L3T = l3::lowerL3Type(
      l3::L3Type::mk(l3::TyKind::MLRef, l3::L3Type::mk(l3::TyKind::Int)));
  EXPECT_TRUE(ir::typeEquals(MLT, L3T));
}

TEST(Interop, ImportTypeLieRejectedAtLink) {
  // An L3 client that declares a *different* boundary type (plain int
  // instead of Ref int) is caught by the import signature check.
  Expected<ir::Module> ML = ml::compileSource("ml", MLStashSafe);
  ASSERT_TRUE(bool(ML)) << ML.error().message();
  Expected<ir::Module> L3 = l3::compileSource(
      "l3", "import ml.stash : int -o unit ;;"
            "export fun main (u : unit) : int = stash 1 ; 0 ;;");
  ASSERT_TRUE(bool(L3)) << L3.error().message();
  auto Mach = link::instantiate({&*ML, &*L3});
  ASSERT_FALSE(bool(Mach));
  EXPECT_NE(Mach.error().message().find("mismatch"), std::string::npos);
}

TEST(Interop, Fig3SafeVariantOnWasm) {
  // The whole interop program, lowered to one Wasm module and executed.
  Expected<ir::Module> ML = ml::compileSource("ml", MLStashSafe);
  Expected<ir::Module> L3 = l3::compileSource("l3", L3ClientSafe);
  ASSERT_TRUE(bool(ML)) << ML.error().message();
  ASSERT_TRUE(bool(L3)) << L3.error().message();
  auto LP = lower::lowerProgram({&*ML, &*L3});
  ASSERT_TRUE(bool(LP)) << LP.error().message();
  ASSERT_TRUE(wasm::validate(LP->Module).ok())
      << wasm::validate(LP->Module).error().message();
  wasm::WasmInstance Inst(LP->Module);
  ASSERT_TRUE(Inst.initialize().ok());
  auto R = Inst.invokeByName("l3.main", {});
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_EQ((*R)[0].asU32(), 42u);
}
