//===- tests/leb128_test.cpp - Strict LEB128 decoder contract -------------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Pins the hardened decoder contract of support/LEB128.h (PR 8): canonical
// encodings round-trip, overlong and out-of-range encodings are rejected
// with the precise offending offset, and truncation is distinguished from
// malformation. The old decoders accepted zero-padded ULEBs and silently
// dropped bits past 64 — both now structured rejections.
//
//===----------------------------------------------------------------------===//

#include "support/LEB128.h"

#include <gtest/gtest.h>

#include <limits>

using namespace rw;

namespace {

std::vector<uint8_t> encU(uint64_t V) {
  std::vector<uint8_t> B;
  encodeULEB128(V, B);
  return B;
}

std::vector<uint8_t> encS(int64_t V) {
  std::vector<uint8_t> B;
  encodeSLEB128(V, B);
  return B;
}

TEST(LEB128, UnsignedRoundTripCanonical) {
  for (uint64_t V : {uint64_t(0), uint64_t(1), uint64_t(127), uint64_t(128),
                     uint64_t(300), uint64_t(16383), uint64_t(16384),
                     uint64_t(0xffffffffull), uint64_t(1) << 56,
                     std::numeric_limits<uint64_t>::max()}) {
    std::vector<uint8_t> B = encU(V);
    size_t Pos = 0;
    uint64_t Out = 0;
    EXPECT_EQ(decodeULEB128Strict(B.data(), B.size(), Pos, Out), LEBError::Ok)
        << V;
    EXPECT_EQ(Out, V);
    EXPECT_EQ(Pos, B.size());
  }
}

TEST(LEB128, SignedRoundTripCanonical) {
  for (int64_t V : {int64_t(0), int64_t(1), int64_t(-1), int64_t(63),
                    int64_t(64), int64_t(-64), int64_t(-65), int64_t(127),
                    int64_t(-128), int64_t(8191), int64_t(-8192),
                    std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max()}) {
    std::vector<uint8_t> B = encS(V);
    size_t Pos = 0;
    int64_t Out = 0;
    EXPECT_EQ(decodeSLEB128Strict(B.data(), B.size(), Pos, Out), LEBError::Ok)
        << V;
    EXPECT_EQ(Out, V);
    EXPECT_EQ(Pos, B.size());
  }
}

TEST(LEB128, RejectsOverlongUnsigned) {
  // 0 encoded in two bytes (zero-padded tail).
  std::vector<uint8_t> B = {0x80, 0x00};
  size_t Pos = 0;
  uint64_t V;
  EXPECT_EQ(decodeULEB128Strict(B.data(), B.size(), Pos, V),
            LEBError::Overlong);
  EXPECT_EQ(Pos, 1u) << "cursor points at the offending terminal byte";

  // 1 encoded in three bytes.
  B = {0x81, 0x80, 0x00};
  Pos = 0;
  EXPECT_EQ(decodeULEB128Strict(B.data(), B.size(), Pos, V),
            LEBError::Overlong);
  EXPECT_EQ(Pos, 2u);
}

TEST(LEB128, RejectsOverlongSignedSignExtension) {
  // -64 is one byte (0x40); [0xc0, 0x7f] is the redundant two-byte form.
  std::vector<uint8_t> B = {0xc0, 0x7f};
  size_t Pos = 0;
  int64_t V;
  EXPECT_EQ(decodeSLEB128Strict(B.data(), B.size(), Pos, V),
            LEBError::Overlong);
  EXPECT_EQ(Pos, 1u);

  // 63 is one byte (0x3f); [0xbf, 0x00] zero-pads it.
  B = {0xbf, 0x00};
  Pos = 0;
  EXPECT_EQ(decodeSLEB128Strict(B.data(), B.size(), Pos, V),
            LEBError::Overlong);
  EXPECT_EQ(Pos, 1u);
}

TEST(LEB128, AcceptsCanonicalMultibyteSigned) {
  // -128 and 127 genuinely need their second byte — not overlong.
  for (int64_t V : {int64_t(-128), int64_t(127)}) {
    std::vector<uint8_t> B = encS(V);
    ASSERT_EQ(B.size(), 2u);
    size_t Pos = 0;
    int64_t Out;
    EXPECT_EQ(decodeSLEB128Strict(B.data(), B.size(), Pos, Out),
              LEBError::Ok);
    EXPECT_EQ(Out, V);
  }
}

TEST(LEB128, RejectsTruncationAtEveryPrefix) {
  std::vector<uint8_t> B = encU(uint64_t(1) << 56);
  ASSERT_GT(B.size(), 2u);
  for (size_t Len = 0; Len < B.size(); ++Len) {
    size_t Pos = 0;
    uint64_t V;
    EXPECT_EQ(decodeULEB128Strict(B.data(), Len, Pos, V),
              LEBError::Truncated);
    EXPECT_EQ(Pos, Len) << "cursor at end of available input";
  }
}

TEST(LEB128, MaxBitsCapsUnsigned) {
  // 2^32 does not fit in 32 bits.
  std::vector<uint8_t> B = encU(uint64_t(1) << 32);
  size_t Pos = 0;
  uint64_t V;
  EXPECT_EQ(decodeULEB128Strict(B.data(), B.size(), Pos, V, 32),
            LEBError::OutOfRange);

  // 2^32 - 1 is exactly the 32-bit ceiling.
  B = encU(0xffffffffull);
  Pos = 0;
  EXPECT_EQ(decodeULEB128Strict(B.data(), B.size(), Pos, V, 32),
            LEBError::Ok);
  EXPECT_EQ(V, 0xffffffffull);

  // An 11th continuation byte overruns even 64 bits.
  B.assign(11, 0x80);
  B.push_back(0x00);
  Pos = 0;
  EXPECT_EQ(decodeULEB128Strict(B.data(), B.size(), Pos, V),
            LEBError::OutOfRange);
}

TEST(LEB128, MaxBitsCapsSigned) {
  // Wasm's s33 block types: type indices fit, huge values do not.
  int64_t V;
  std::vector<uint8_t> B = encS((int64_t(1) << 32) - 1);
  size_t Pos = 0;
  EXPECT_EQ(decodeSLEB128Strict(B.data(), B.size(), Pos, V, 33),
            LEBError::Ok);
  EXPECT_EQ(V, (int64_t(1) << 32) - 1);

  B = encS(int64_t(1) << 32);
  Pos = 0;
  EXPECT_EQ(decodeSLEB128Strict(B.data(), B.size(), Pos, V, 33),
            LEBError::OutOfRange);

  B = encS(-(int64_t(1) << 32));
  Pos = 0;
  EXPECT_EQ(decodeSLEB128Strict(B.data(), B.size(), Pos, V, 33),
            LEBError::Ok)
      << "-2^32 is representable in 33 bits";

  B = encS(-(int64_t(1) << 32) - 1);
  Pos = 0;
  EXPECT_EQ(decodeSLEB128Strict(B.data(), B.size(), Pos, V, 33),
            LEBError::OutOfRange);
}

TEST(LEB128, VectorWrappersAreStrict) {
  std::vector<uint8_t> Overlong = {0x80, 0x00};
  size_t Pos = 0;
  EXPECT_FALSE(decodeULEB128(Overlong, Pos).has_value());

  std::vector<uint8_t> Ok = encU(300);
  Pos = 0;
  auto V = decodeULEB128(Ok, Pos);
  ASSERT_TRUE(V.has_value());
  EXPECT_EQ(*V, 300u);

  std::vector<uint8_t> SOverlong = {0xc0, 0x7f};
  Pos = 0;
  EXPECT_FALSE(decodeSLEB128(SOverlong, Pos).has_value());
}

TEST(LEB128, ExhaustiveTwoByteAgreement) {
  // Every 2-byte string either decodes canonically (and re-encodes to the
  // same bytes) or is rejected — and rejection reasons are stable.
  for (unsigned B0 = 0; B0 < 256; ++B0) {
    for (unsigned B1 = 0; B1 < 256; ++B1) {
      std::vector<uint8_t> B = {uint8_t(B0), uint8_t(B1)};
      size_t Pos = 0;
      uint64_t U;
      if (decodeULEB128Strict(B.data(), B.size(), Pos, U) == LEBError::Ok)
        EXPECT_EQ(std::vector<uint8_t>(B.begin(), B.begin() + Pos), encU(U));
      Pos = 0;
      int64_t S;
      if (decodeSLEB128Strict(B.data(), B.size(), Pos, S) == LEBError::Ok)
        EXPECT_EQ(std::vector<uint8_t>(B.begin(), B.begin() + Pos), encS(S));
    }
  }
}

} // namespace
