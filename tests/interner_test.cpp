//===- tests/interner_test.cpp - Hash-consing differential tests ---------===//
//
// Part of the RichWasm reproduction. MIT license.
//
// Pins the canonical-pointer equality guarantee: for types interned in one
// arena, pointer comparison (ir::typeEquals & friends) must agree with the
// deep-structural reference implementations (ir::structural*Equals) that
// predate the interner — including across shift/substitution round-trips,
// and for trees interned in two independent arenas (where each arena's
// interning decisions must agree with structural equality even though
// pointer identity deliberately fails across arenas).
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "ir/Rewrite.h"
#include "ir/TypeArena.h"
#include "ir/TypeOps.h"
#include "link/Link.h"

#include <gtest/gtest.h>
#include <random>

using namespace rw;
using namespace rw::ir;

namespace {

/// Seeded random type generator. The same seed yields the same structure,
/// so one tree can be regenerated inside independent arenas. Skolem ids
/// and bounds vary independently — skolem identity is (id, bounds), for
/// interning and structural equality alike.
struct Gen {
  std::mt19937_64 Rng;
  explicit Gen(uint64_t Seed) : Rng(Seed) {}
  uint32_t pick(uint32_t N) { return static_cast<uint32_t>(Rng() % N); }

  Qual qual() {
    switch (pick(4)) {
    case 0:
      return Qual::lin();
    case 1:
      return Qual::var(pick(3));
    default:
      return Qual::unr();
    }
  }

  Loc loc() {
    switch (pick(3)) {
    case 0:
      return Loc::var(pick(3));
    case 1:
      return Loc::concrete(pick(2) ? MemKind::Lin : MemKind::Unr, pick(8));
    default:
      return Loc::skolem(pick(4));
    }
  }

  SizeRef size(unsigned D) {
    switch (D == 0 ? pick(2) : pick(4)) {
    case 0:
      return Size::constant(pick(5) * 32);
    case 1:
      return Size::var(pick(4));
    default:
      return Size::plus(size(D - 1), size(D - 1));
    }
  }

  Type type(unsigned D) { return Type(pretype(D), qual()); }

  PretypeRef pretype(unsigned D) {
    switch (D == 0 ? pick(6) : pick(12)) {
    case 0:
      return unitPT();
    case 1:
      return numPT(static_cast<NumType>(pick(6)));
    case 2:
      return varPT(pick(4));
    case 3:
      return ptrPT(loc());
    case 4:
      return ownPT(loc());
    case 5:
      return skolemPT(pick(3), pick(2) ? Qual::lin() : Qual::unr(),
                      Size::constant(32 + 32 * pick(3)), pick(2) == 0);
    case 6: {
      std::vector<Type> Es;
      for (unsigned I = 0, N = pick(3); I < N; ++I)
        Es.push_back(type(D - 1));
      return prodPT(std::move(Es));
    }
    case 7:
      return refPT(pick(2) ? Privilege::RW : Privilege::R, loc(),
                   heap(D - 1));
    case 8:
      return capPT(pick(2) ? Privilege::RW : Privilege::R, loc(),
                   heap(D - 1));
    case 9:
      return recPT(qual(), type(D - 1));
    case 10:
      return exLocPT(type(D - 1));
    default:
      return coderefPT(fun(D - 1));
    }
  }

  HeapTypeRef heap(unsigned D) {
    switch (pick(4)) {
    case 0: {
      std::vector<Type> Cs;
      for (unsigned I = 0, N = 1 + pick(2); I < N; ++I)
        Cs.push_back(type(D));
      return variantHT(std::move(Cs));
    }
    case 1: {
      std::vector<StructField> Fs;
      for (unsigned I = 0, N = pick(3); I < N; ++I)
        Fs.push_back({type(D), size(1)});
      return structHT(std::move(Fs));
    }
    case 2:
      return arrayHT(type(D));
    default:
      return exHT(qual(), size(1), type(D));
    }
  }

  FunTypeRef fun(unsigned D) {
    std::vector<Quant> Qs;
    for (unsigned I = 0, N = pick(3); I < N; ++I) {
      switch (pick(4)) {
      case 0:
        Qs.push_back(Quant::loc());
        break;
      case 1:
        Qs.push_back(Quant::size({size(0)}, {size(0)}));
        break;
      case 2:
        Qs.push_back(Quant::qual({qual()}, {}));
        break;
      default:
        Qs.push_back(Quant::type(qual(), size(1), pick(2) == 0));
        break;
      }
    }
    ArrowType A;
    for (unsigned I = 0, N = pick(3); I < N; ++I)
      A.Params.push_back(type(D));
    for (unsigned I = 0, N = pick(2); I < N; ++I)
      A.Results.push_back(type(D));
    return FunType::get(std::move(Qs), std::move(A));
  }
};

constexpr unsigned Depth = 3;
constexpr uint64_t NumSeeds = 150;

//===----------------------------------------------------------------------===//
// Intern identities
//===----------------------------------------------------------------------===//

TEST(Interner, LeavesAreUnique) {
  EXPECT_EQ(i32T().P.get(), i32T().P.get());
  EXPECT_EQ(unitPT().get(), unitPT().get());
  EXPECT_EQ(varPT(3).get(), varPT(3).get());
  EXPECT_NE(varPT(3).get(), varPT(4).get());
  EXPECT_EQ(Size::constant(64).get(), Size::constant(64).get());
  EXPECT_EQ(Size::var(0).get(), Size::var(0).get());
}

TEST(Interner, CompositesAreUnique) {
  auto mk = [] {
    return refPT(Privilege::RW, Loc::var(0),
                 structHT({{i32T(), Size::constant(32)}}));
  };
  EXPECT_EQ(mk().get(), mk().get());
  auto mkF = [] {
    return FunType::get({Quant::loc()},
                        ArrowType{{i32T()}, {i64T(Qual::lin())}});
  };
  EXPECT_EQ(mkF().get(), mkF().get());
}

TEST(Interner, SizesCanonicalizeModuloPlus) {
  // Commutativity, associativity, and constant folding all collapse to one
  // canonical node — the old sizeEquals semantics, now by pointer.
  SizeRef A = Size::plus(Size::var(0), Size::constant(32));
  SizeRef B = Size::plus(Size::constant(32), Size::var(0));
  EXPECT_EQ(A.get(), B.get());
  SizeRef C = Size::plus(Size::constant(16), Size::constant(16));
  EXPECT_EQ(C.get(), Size::constant(32).get());
  SizeRef D1 = Size::plus(Size::var(1), Size::plus(Size::var(0), A));
  SizeRef D2 = Size::plus(Size::plus(Size::var(0), Size::var(1)),
                          Size::plus(Size::var(0), Size::constant(32)));
  EXPECT_EQ(D1.get(), D2.get());
  EXPECT_FALSE(sizeEquals(A, Size::plus(A, Size::constant(1))));
  // Normal forms are precomputed.
  EXPECT_EQ(normalizeSize(D1).Const, 32u);
  EXPECT_EQ(normalizeSize(D1).Vars, (std::vector<uint32_t>{0, 0, 1}));
}

TEST(Interner, ClosedSizeMemoIsCanonical) {
  PretypeRef P = prodPT({i32T(), i64T(), unitT()});
  SizeRef S1 = sizeOfPretype(P, {});
  SizeRef S2 = sizeOfPretype(P, {});
  EXPECT_EQ(S1.get(), S2.get());
  EXPECT_EQ(closedSizeBits(S1), 96u);
  EXPECT_EQ(S1.get(), Size::constant(96).get());
}

//===----------------------------------------------------------------------===//
// Differential fuzz: interned equality ≡ deep structural equality
//===----------------------------------------------------------------------===//

TEST(InternerFuzz, PointerEqualityMatchesStructuralSameArena) {
  for (uint64_t Seed = 0; Seed < NumSeeds; ++Seed) {
    // Regenerating from one seed must intern to the same node.
    Type A = Gen(Seed).type(Depth);
    Type B = Gen(Seed).type(Depth);
    EXPECT_TRUE(typeEquals(A, B)) << "seed " << Seed;
    EXPECT_EQ(A.P.get(), B.P.get()) << "seed " << Seed;
    EXPECT_TRUE(structuralTypeEquals(A, B)) << "seed " << Seed;
    // Against an unrelated seed, both equalities must agree (almost always
    // "not equal", but the point is exact agreement either way).
    Type C = Gen(Seed + NumSeeds).type(Depth);
    EXPECT_EQ(typeEquals(A, C), structuralTypeEquals(A, C))
        << "seed " << Seed;
    HeapTypeRef HA = Gen(Seed).heap(Depth - 1);
    HeapTypeRef HC = Gen(Seed + NumSeeds).heap(Depth - 1);
    EXPECT_EQ(heapTypeEquals(*HA, *HC), structuralHeapTypeEquals(*HA, *HC))
        << "seed " << Seed;
    FunTypeRef FA = Gen(Seed).fun(Depth - 1);
    FunTypeRef FB = Gen(Seed).fun(Depth - 1);
    FunTypeRef FC = Gen(Seed + NumSeeds).fun(Depth - 1);
    EXPECT_EQ(FA.get(), FB.get()) << "seed " << Seed;
    EXPECT_EQ(funTypeEquals(*FA, *FC), structuralFunTypeEquals(*FA, *FC))
        << "seed " << Seed;
    SizeRef SA = Gen(Seed).size(Depth);
    SizeRef SB = Gen(Seed).size(Depth);
    SizeRef SC = Gen(Seed + NumSeeds).size(Depth);
    EXPECT_EQ(SA.get(), SB.get()) << "seed " << Seed;
    EXPECT_EQ(sizeEquals(SA, SC), structuralSizeEquals(SA, SC))
        << "seed " << Seed;
  }
}

TEST(InternerFuzz, IndependentArenasAgreeWithStructuralEquality) {
  TypeArena Arena1, Arena2;
  for (uint64_t Seed = 0; Seed < NumSeeds; ++Seed) {
    uint64_t Other = Seed * 31 + 7;
    Type A1, B1, A2, B2;
    {
      ArenaScope Scope(Arena1);
      A1 = Gen(Seed).type(Depth);
      B1 = Gen(Other).type(Depth);
    }
    {
      ArenaScope Scope(Arena2);
      A2 = Gen(Seed).type(Depth);
      B2 = Gen(Other).type(Depth);
    }
    // The same structure interned twice in one arena is one node; across
    // arenas pointer identity fails by design while structural equality
    // holds — and each arena's pointer-equality verdict must match the
    // deep reference implementation.
    EXPECT_NE(A1.P.get(), A2.P.get()) << "seed " << Seed;
    EXPECT_TRUE(structuralTypeEquals(A1, A2)) << "seed " << Seed;
    EXPECT_TRUE(structuralTypeEquals(B1, B2)) << "seed " << Seed;
    EXPECT_EQ(typeEquals(A1, B1), structuralTypeEquals(A1, B1))
        << "seed " << Seed;
    EXPECT_EQ(typeEquals(A2, B2), structuralTypeEquals(A2, B2))
        << "seed " << Seed;
    EXPECT_EQ(typeEquals(A1, B1), typeEquals(A2, B2)) << "seed " << Seed;
  }
}

TEST(InternerFuzz, ShiftSubstRoundTripIsIdentity) {
  for (uint64_t Seed = 0; Seed < NumSeeds; ++Seed) {
    Type T = Gen(Seed).type(Depth);
    // Shift every free variable up by one per kind, then strip one binder
    // per kind: the replacements are unused (no index-0 occurrences remain
    // after the shift), so the strip must restore the original — as the
    // *same canonical node*.
    Shifter Up(1, 1, 1, 1);
    Type Shifted = Up.rewrite(T);
    Subst Strip = Subst::fromIndices(
        {Index::loc(Loc::concrete(MemKind::Lin, 99)),
         Index::size(Size::constant(8)), Index::qual(Qual::lin()),
         Index::pretype(unitPT())});
    Type Back = Strip.rewrite(Shifted);
    EXPECT_TRUE(typeEquals(Back, T)) << "seed " << Seed;
    EXPECT_EQ(Back.P.get(), T.P.get()) << "seed " << Seed;
    EXPECT_TRUE(structuralTypeEquals(Back, T)) << "seed " << Seed;
  }
}

TEST(InternerFuzz, RewritesAgreeAcrossArenas) {
  TypeArena Arena1, Arena2;
  for (uint64_t Seed = 0; Seed < NumSeeds; ++Seed) {
    Type R1, R2;
    {
      ArenaScope Scope(Arena1);
      Type T = Gen(Seed).type(Depth);
      Subst Sub = Subst::onePretype(numPT(NumType::F64));
      R1 = Sub.rewrite(Shifter(0, 1, 0, 0).rewrite(T));
    }
    {
      ArenaScope Scope(Arena2);
      Type T = Gen(Seed).type(Depth);
      Subst Sub = Subst::onePretype(numPT(NumType::F64));
      R2 = Sub.rewrite(Shifter(0, 1, 0, 0).rewrite(T));
    }
    EXPECT_TRUE(structuralTypeEquals(R1, R2)) << "seed " << Seed;
  }
}

TEST(Interner, LinkRejectsMixedArenasWithClearDiagnostic) {
  using namespace rw::ir::build;
  // Exporter built in the default (global) arena.
  ir::Module Lib;
  Lib.Name = "lib";
  Lib.Funcs.push_back(function({"id"},
                               FunType::get({}, arrow({i32T()}, {i32T()})),
                               {}, {getLocal(0, Qual::unr())}));
  // Importer deliberately interned into (and owning) a private arena:
  // structurally identical signature, different canonical universe — the
  // module checks fine in isolation, and the mismatch must surface at the
  // link boundary as an arena diagnostic, not a bogus type mismatch.
  auto Private = std::make_shared<TypeArena>();
  ir::Module Client;
  Client.Arena = Private;
  {
    ArenaScope Scope(*Private);
    Client.Name = "client";
    Client.Funcs.push_back(importFunc(
        {"lib", "id"}, FunType::get({}, arrow({i32T()}, {i32T()}))));
    Client.Funcs.push_back(function(
        {"main"}, FunType::get({}, arrow({}, {i32T()})),
        {}, {iconst(7), call(0)}));
  }
  auto R = link::instantiate({&Lib, &Client});
  ASSERT_FALSE(R);
  EXPECT_NE(R.error().message().find("different type arenas"),
            std::string::npos)
      << R.error().message();
}

TEST(Interner, RewriteInstsSharesUntouchedSubtrees) {
  using namespace rw::ir::build;
  // A body whose types are all closed is untouched by any shift or
  // outer-binder substitution: rewriteInsts must return the *original*
  // nodes (no clone), including through nested blocks. A subtree the
  // substitution does hit is rebuilt, but its untouched siblings are
  // still shared.
  InstVec Body = {
      iconst(1),
      block(arrow({i32T()}, {i32T()}), {},
            {iconst(2), addI32(),
             structMalloc({Size::constant(32)}, Qual::lin()),
             memUnpack(arrow({}, {i32T()}), {},
                       {iconst(9), structSwap(0), structFree()})}),
  };

  Shifter Sh(1, 1, 1, 1);
  InstVec Shifted = rewriteInsts(Body, Sh);
  ASSERT_EQ(Shifted.size(), Body.size());
  for (size_t I = 0; I < Body.size(); ++I)
    EXPECT_EQ(Shifted[I].get(), Body[I].get())
        << "closed subtree was cloned at " << I;

  // A substitution that replaces type variable 0 rewrites only the nodes
  // that mention it; the closed instructions around it stay shared.
  InstVec Open = {
      iconst(3),
      block(arrow({}, {}), {},
            {variantMalloc(0, {Type(varPT(0), Qual::unr()), i32T()},
                           Qual::unr()),
             memUnpack(arrow({}, {}), {}, {drop()})}),
      iconst(4),
  };
  Subst Sub = Subst::onePretype(i32T().P);
  InstVec Subbed = rewriteInsts(Open, Sub);
  ASSERT_EQ(Subbed.size(), Open.size());
  EXPECT_EQ(Subbed[0].get(), Open[0].get()); // Closed: shared.
  EXPECT_EQ(Subbed[2].get(), Open[2].get()); // Closed: shared.
  EXPECT_NE(Subbed[1].get(), Open[1].get()); // Mentions α0: rebuilt.
  // Inside the rebuilt block, the untouched mem.unpack child is shared.
  const auto *OldB = cast<BlockInst>(Open[1].get());
  const auto *NewB = cast<BlockInst>(Subbed[1].get());
  ASSERT_EQ(OldB->body().size(), NewB->body().size());
  EXPECT_NE(NewB->body()[0].get(), OldB->body()[0].get());
  EXPECT_EQ(NewB->body()[1].get(), OldB->body()[1].get());
}

TEST(InternerFuzz, MemoizedJudgmentsAreDeterministic) {
  for (uint64_t Seed = 0; Seed < NumSeeds; ++Seed) {
    PretypeRef P = Gen(Seed).pretype(Depth);
    if (P->freeBounds().Type != 0)
      continue; // sizeOf/noCaps of open pretypes needs a context.
    SizeRef S1 = sizeOfPretype(P, {});
    SizeRef S2 = sizeOfPretype(P, {});
    EXPECT_EQ(S1.get(), S2.get()) << "seed " << Seed;
    EXPECT_TRUE(structuralSizeEquals(S1, S2)) << "seed " << Seed;
    EXPECT_EQ(pretypeNoCaps(P, {}), pretypeNoCaps(P, {}))
        << "seed " << Seed;
  }
}

} // namespace
