//===- tests/parallel_lower_test.cpp - Parallel lowering determinism ------===//
//
// The (module, function)-parallel body lowering of lower::lowerProgram
// (LowerOptions::Pool) promises byte-identical output for any pool size —
// the same guarantee the parallel checker gives for diagnostics. These
// tests pin it: lowered Wasm bytes and flat-translated bytecode are
// compared across pool sizes 1/3/8 and against the sequential loop,
// including the error ordering when a middle module fails to lower, and
// the InfoMap hand-off path (typing::checkModules → lowerProgram /
// link::instantiateLowered) is pinned byte-identical to the self-checking
// path.
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"

#include "exec/Translate.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

using namespace rw;
using namespace rw::ir;
using namespace rw::ir::build;
using rwbench::AdmissionSet;

namespace {

/// Lowers \p Mods with the given pool (null = the sequential loop) after
/// a checkModules hand-off, returning the encoded Wasm bytes.
Expected<std::vector<uint8_t>>
lowerBytes(const std::vector<const ir::Module *> &Mods,
           support::ThreadPool *Pool,
           const std::vector<typing::InfoMap> *Infos) {
  lower::LowerOptions LO;
  LO.Infos = Infos;
  LO.Pool = Pool;
  Expected<lower::LoweredProgram> LP = lower::lowerProgram(Mods, LO);
  if (!LP)
    return LP.error();
  return wasm::encode(LP->Module);
}

} // namespace

TEST(ParallelLower, BytesIdenticalAcrossPoolSizes) {
  AdmissionSet Set(10);
  support::ThreadPool Pool1(1), Pool3(3), Pool8(8);

  std::vector<typing::InfoMap> Infos;
  std::vector<Status> Checks = typing::checkModules(Set.Ptrs, Pool3, &Infos);
  for (const Status &S : Checks)
    ASSERT_TRUE(S.ok()) << S.error().message();

  Expected<std::vector<uint8_t>> Seq = lowerBytes(Set.Ptrs, nullptr, &Infos);
  ASSERT_TRUE(bool(Seq)) << Seq.error().message();
  for (support::ThreadPool *P : {&Pool1, &Pool3, &Pool8}) {
    Expected<std::vector<uint8_t>> Par = lowerBytes(Set.Ptrs, P, &Infos);
    ASSERT_TRUE(bool(Par)) << Par.error().message();
    EXPECT_EQ(*Seq, *Par) << "lowered bytes differ at pool size "
                          << P->size();
  }
}

TEST(ParallelLower, FlatBytecodeIdenticalAcrossPoolSizes) {
  AdmissionSet Set(8);
  support::ThreadPool Pool1(1), Pool3(3), Pool8(8);

  std::vector<typing::InfoMap> Infos;
  std::vector<Status> Checks = typing::checkModules(Set.Ptrs, Pool3, &Infos);
  for (const Status &S : Checks)
    ASSERT_TRUE(S.ok()) << S.error().message();

  lower::LowerOptions SeqLO;
  SeqLO.Infos = &Infos;
  Expected<lower::LoweredProgram> Ref = lower::lowerProgram(Set.Ptrs, SeqLO);
  ASSERT_TRUE(bool(Ref)) << Ref.error().message();
  Expected<exec::FlatModule> RefFlat = exec::translate(Ref->Module);
  ASSERT_TRUE(bool(RefFlat)) << RefFlat.error().message();

  for (support::ThreadPool *P : {&Pool1, &Pool3, &Pool8}) {
    lower::LowerOptions LO;
    LO.Infos = &Infos;
    LO.Pool = P;
    Expected<lower::LoweredProgram> LP = lower::lowerProgram(Set.Ptrs, LO);
    ASSERT_TRUE(bool(LP)) << LP.error().message();
    Expected<exec::FlatModule> Flat = exec::translate(LP->Module);
    ASSERT_TRUE(bool(Flat)) << Flat.error().message();
    ASSERT_EQ(RefFlat->Funcs.size(), Flat->Funcs.size());
    for (size_t I = 0; I < RefFlat->Funcs.size(); ++I) {
      EXPECT_EQ(RefFlat->Funcs[I].Code, Flat->Funcs[I].Code)
          << "flat code differs for function " << I << " at pool size "
          << P->size();
      EXPECT_EQ(RefFlat->Funcs[I].NumRegs, Flat->Funcs[I].NumRegs);
      EXPECT_EQ(RefFlat->Funcs[I].MaxDepth, Flat->Funcs[I].MaxDepth);
    }
    EXPECT_EQ(RefFlat->CanonType, Flat->CanonType);
  }
}

TEST(ParallelLower, InfoMapHandoffMatchesSelfCheck) {
  // Zero-redundant-check path (checkModules → lowerProgram) must produce
  // exactly the bytes of the self-checking lowerProgram.
  AdmissionSet Set(6);
  support::ThreadPool Pool(3);

  Expected<std::vector<uint8_t>> SelfCheck =
      lowerBytes(Set.Ptrs, nullptr, nullptr);
  ASSERT_TRUE(bool(SelfCheck)) << SelfCheck.error().message();

  std::vector<typing::InfoMap> Infos;
  std::vector<Status> Checks = typing::checkModules(Set.Ptrs, Pool, &Infos);
  for (const Status &S : Checks)
    ASSERT_TRUE(S.ok()) << S.error().message();
  EXPECT_EQ(Infos.size(), Set.Ptrs.size());
  for (const typing::InfoMap &IM : Infos)
    EXPECT_FALSE(IM.empty());

  Expected<std::vector<uint8_t>> HandOff =
      lowerBytes(Set.Ptrs, &Pool, &Infos);
  ASSERT_TRUE(bool(HandOff)) << HandOff.error().message();
  EXPECT_EQ(*SelfCheck, *HandOff);
}

TEST(ParallelLower, InstantiateLoweredWithPoolAndInfos) {
  // The link-layer cold path: verdict check with InfoMap recording, then
  // instantiateLowered with the hand-off and a pool — the instance must
  // behave exactly like the plain path.
  AdmissionSet Set(4);
  support::ThreadPool Pool(3);

  link::LinkOptions Plain;
  Plain.Engine = wasm::EngineKind::Flat;
  Plain.RunStart = false;
  Expected<link::LoweredInstance> Ref = link::instantiateLowered(Set.Ptrs,
                                                                 Plain);
  ASSERT_TRUE(bool(Ref)) << Ref.error().message();

  std::vector<typing::InfoMap> Infos;
  std::vector<Status> Checks = typing::checkModules(Set.Ptrs, Pool, &Infos);
  for (const Status &S : Checks)
    ASSERT_TRUE(S.ok()) << S.error().message();
  link::LinkOptions Opts = Plain;
  Opts.Pool = &Pool;
  Opts.Infos = &Infos;
  Expected<link::LoweredInstance> LI = link::instantiateLowered(Set.Ptrs,
                                                                Opts);
  ASSERT_TRUE(bool(LI)) << LI.error().message();

  // Same lowered module bytes, same observable behavior.
  EXPECT_EQ(wasm::encode(Ref->Program->Module),
            wasm::encode(LI->Program->Module));
  auto RRef = Ref->invokeExport("user_pkg_000002.f2_1",
                                {wasm::WValue::i32(5)});
  auto RNew = LI->invokeExport("user_pkg_000002.f2_1",
                               {wasm::WValue::i32(5)});
  ASSERT_TRUE(bool(RRef)) << RRef.error().message();
  ASSERT_TRUE(bool(RNew)) << RNew.error().message();
  ASSERT_EQ(RRef->size(), 1u);
  ASSERT_EQ(RNew->size(), 1u);
  EXPECT_EQ((*RRef)[0].Bits, (*RNew)[0].Bits);
}

TEST(ParallelLower, ErrorOrderingDeterministic) {
  // Middle module fails to lower (size-polymorphic local slot — checks
  // fine, unsupported by the flat-layout lowering), and a later module
  // fails too: every pool size must report the *first* failure with the
  // sequential loop's exact message.
  AdmissionSet Set(6);
  auto polyLocalModule = [](const std::string &Name) {
    ir::Module M;
    M.Name = Name;
    FunTypeRef Ty = FunType::get({Quant::size()}, arrow({}, {}));
    M.Funcs.push_back(function({"poly"}, Ty, {Size::var(0)}, {}));
    return M;
  };
  ir::Module Bad1 = polyLocalModule("bad_one");
  ir::Module Bad2 = polyLocalModule("bad_two");
  std::vector<const ir::Module *> Mods(Set.Ptrs.begin(), Set.Ptrs.end());
  Mods.insert(Mods.begin() + 3, &Bad1); // Middle.
  Mods.push_back(&Bad2);                // Tail.

  support::ThreadPool Pool1(1), Pool3(3), Pool8(8);
  std::vector<typing::InfoMap> Infos;
  std::vector<Status> Checks = typing::checkModules(Mods, Pool3, &Infos);
  for (const Status &S : Checks)
    ASSERT_TRUE(S.ok()) << S.error().message();

  Expected<std::vector<uint8_t>> Seq = lowerBytes(Mods, nullptr, &Infos);
  ASSERT_FALSE(bool(Seq));
  const std::string Want = Seq.error().message();
  EXPECT_NE(Want.find("size-polymorphic local slots"), std::string::npos);
  for (support::ThreadPool *P : {&Pool1, &Pool3, &Pool8}) {
    Expected<std::vector<uint8_t>> Par = lowerBytes(Mods, P, &Infos);
    ASSERT_FALSE(bool(Par));
    EXPECT_EQ(Want, Par.error().message())
        << "error differs at pool size " << P->size();
  }
}

TEST(ParallelLower, InfoMapsOfRejectedModulesAreEmpty) {
  // checkModules(…, &Infos) hands over no annotations for a rejected
  // module, and its diagnostics stay byte-identical to the sequential
  // checker for every pool size.
  AdmissionSet Set(3);
  ir::Module Bad;
  Bad.Name = "bad";
  Bad.Funcs.push_back(function(
      {"f"}, FunType::get({}, arrow({}, {i32T()})), {}, {})); // Leaves 0.
  std::vector<const ir::Module *> Mods(Set.Ptrs.begin(), Set.Ptrs.end());
  Mods.insert(Mods.begin() + 1, &Bad);

  Status Ref = typing::checkModule(Bad);
  ASSERT_FALSE(Ref.ok());

  for (unsigned N : {1u, 3u, 8u}) {
    support::ThreadPool Pool(N);
    std::vector<typing::InfoMap> Infos;
    std::vector<Status> Out = typing::checkModules(Mods, Pool, &Infos);
    ASSERT_EQ(Out.size(), Mods.size());
    ASSERT_FALSE(Out[1].ok());
    EXPECT_EQ(Out[1].error().message(), Ref.error().message());
    EXPECT_TRUE(Infos[1].empty());
    EXPECT_FALSE(Infos[0].empty());
  }
}
