//===- tests/ingest_test.cpp - Front-door admission contract --------------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// End-to-end contract for ingest::admit (PR 8): both container routes
// admit real modules and run them to the right answers; every rejection
// carries the right taxonomy category; admission is *total* under a 10k
// deterministic mutation battery (truncations, bit flips, section
// splices) with zero residue in the process-wide type arena; and the obs
// counters account for every admission outcome.
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"
#include "ingest/Ingest.h"
#include "ir/TypeArena.h"
#include "lower/Lower.h"
#include "obs/Obs.h"
#include "serial/Serial.h"
#include "wasm/Binary.h"

#include <gtest/gtest.h>

#include <random>

using namespace rw;
using ingest::Category;
using ingest::IngestError;
using ingest::Limits;

namespace {

std::vector<uint8_t> wasmBytes(const ir::Module &M) {
  Expected<lower::LoweredProgram> LP = lower::lowerProgram({&M}, {});
  EXPECT_TRUE(LP) << (LP ? "" : LP.error().message());
  return wasm::encode(LP->Module);
}

uint64_t globalArenaNodes() {
  return ir::TypeArena::globalPtr()->stats().totalNodes();
}

TEST(Ingest, WasmRouteAdmitsAndRuns) {
  std::vector<uint8_t> B = wasmBytes(rwbench::loopModule(10));
  IngestError E;
  Expected<ingest::AdmittedModule> A = ingest::admit(B, Limits(), {}, &E);
  ASSERT_TRUE(A) << A.error().message();
  EXPECT_EQ(A->R, ingest::Route::Wasm);
  EXPECT_NE(A->InputHash, 0u);
  auto R = A->invoke("loopmod.main", {});
  ASSERT_TRUE(R) << R.error().message();
  EXPECT_EQ((*R)[0].Bits, 55u) << "sum 1..10";
}

TEST(Ingest, RichWasmRouteAdmitsAndRuns) {
  std::vector<uint8_t> B = serial::write(rwbench::loopModule(10));
  IngestError E;
  Expected<ingest::AdmittedModule> A = ingest::admit(B, Limits(), {}, &E);
  ASSERT_TRUE(A) << A.error().message();
  EXPECT_EQ(A->R, ingest::Route::RichWasm);
  auto R = A->invoke("loopmod.main", {});
  ASSERT_TRUE(R) << R.error().message();
  EXPECT_EQ((*R)[0].Bits, 55u);
}

TEST(Ingest, BothRoutesAgreeOnResults) {
  ir::Module Mods[] = {rwbench::loopModule(7), rwbench::allocModule(3, true)};
  for (const ir::Module &M : Mods) {
    auto W = ingest::admit(wasmBytes(M));
    auto S = ingest::admit(serial::write(M));
    ASSERT_TRUE(W) << W.error().message();
    ASSERT_TRUE(S) << S.error().message();
    std::string Export = M.Name + ".main";
    auto RW = W->invoke(Export, {});
    auto RS = S->invoke(Export, {});
    ASSERT_TRUE(RW) << RW.error().message();
    ASSERT_TRUE(RS) << RS.error().message();
    EXPECT_EQ((*RW)[0].Bits, (*RS)[0].Bits) << M.Name;
  }
}

TEST(Ingest, RejectsUnrecognizedMagic) {
  IngestError E;
  EXPECT_FALSE(ingest::admit({0xde, 0xad, 0xbe, 0xef, 0x00}, Limits(), {}, &E));
  EXPECT_EQ(E.Cat, Category::BadMagic);

  EXPECT_FALSE(ingest::admit({}, Limits(), {}, &E));
  EXPECT_EQ(E.Cat, Category::BadMagic);

  EXPECT_FALSE(ingest::admit({0x00, 0x61}, Limits(), {}, &E));
  EXPECT_EQ(E.Cat, Category::BadMagic);
}

TEST(Ingest, RejectsOversizedInputBeforeDecoding) {
  std::vector<uint8_t> B = wasmBytes(rwbench::loopModule(4));
  Limits L;
  L.MaxModuleBytes = B.size() - 1;
  IngestError E;
  EXPECT_FALSE(ingest::admit(B, L, {}, &E));
  EXPECT_EQ(E.Cat, Category::TooLarge);
  EXPECT_NE(E.Context.find(std::to_string(L.MaxModuleBytes)),
            std::string::npos);
}

TEST(Ingest, WasmVersionMismatchIsUnsupported) {
  std::vector<uint8_t> B = wasmBytes(rwbench::loopModule(4));
  B[4] = 0x02;
  IngestError E;
  EXPECT_FALSE(ingest::admit(B, Limits(), {}, &E));
  EXPECT_EQ(E.Cat, Category::Unsupported);
  EXPECT_EQ(E.Offset, 4u);
}

TEST(Ingest, WasmValidationFailureIsCategorized) {
  // Decodes fine (call indices are plain u32s on the wire) but calls a
  // function that does not exist — caught by wasm::validate.
  std::vector<uint8_t> B = {0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00};
  B.insert(B.end(), {0x01, 0x04, 0x01, 0x60, 0x00, 0x00}); // type [] -> []
  B.insert(B.end(), {0x03, 0x02, 0x01, 0x00});             // one func
  B.insert(B.end(), {0x0a, 0x06, 0x01, 0x04, 0x00,         // body:
                     0x10, 0x05,                           //   call 5
                     0x0b});                               //   end
  IngestError E;
  EXPECT_FALSE(ingest::admit(B, Limits(), {}, &E));
  EXPECT_EQ(E.Cat, Category::Validate);
}

TEST(Ingest, SerialTruncationIsCategorized) {
  std::vector<uint8_t> B = serial::write(rwbench::loopModule(4));
  std::vector<uint8_t> Cut(B.begin(), B.begin() + B.size() / 2);
  IngestError E;
  EXPECT_FALSE(ingest::admit(Cut, Limits(), {}, &E));
  EXPECT_TRUE(E.Cat == Category::Truncated || E.Cat == Category::Malformed)
      << ingest::categoryName(E.Cat);
}

TEST(Ingest, CountersAccountForEveryOutcome) {
  // Counter construction re-finds the named slot; deltas isolate this
  // test from whatever ran before it. Under -DRW_OBS=OFF the counters
  // are inert stubs pinned to zero, so each expected delta is zero too —
  // the admissions themselves still run either way.
  const uint64_t One = obs::compiledIn() ? 1 : 0;
  obs::Counter Accepted("ingest.accepted");
  obs::Counter Bytes("ingest.bytes");
  obs::Counter RejMagic("ingest.rejected.bad_magic");
  obs::Counter RejLarge("ingest.rejected.too_large");
  uint64_t A0 = Accepted.value(), B0 = Bytes.value(),
           M0 = RejMagic.value(), L0 = RejLarge.value();

  std::vector<uint8_t> Good = wasmBytes(rwbench::loopModule(4));
  ASSERT_TRUE(ingest::admit(Good));
  EXPECT_EQ(Accepted.value(), A0 + One);
  EXPECT_EQ(Bytes.value(), B0 + One * Good.size());

  ASSERT_FALSE(ingest::admit({1, 2, 3, 4}));
  EXPECT_EQ(RejMagic.value(), M0 + One);

  Limits Tiny;
  Tiny.MaxModuleBytes = 2;
  ASSERT_FALSE(ingest::admit(Good, Tiny));
  EXPECT_EQ(RejLarge.value(), L0 + One);
  EXPECT_EQ(Accepted.value(), A0 + One) << "rejections never count accepted";
}

TEST(Ingest, RejectedRichWasmAdmissionLeavesArenaClean) {
  std::vector<uint8_t> B = serial::write(rwbench::wideModule(4));
  uint64_t Before = globalArenaNodes();
  for (int I = 0; I < 50; ++I) {
    std::vector<uint8_t> Mut = B;
    Mut[20 + I] ^= 0xff; // corrupt past the header
    IngestError E;
    Expected<ingest::AdmittedModule> A = ingest::admit(Mut, Limits(), {}, &E);
    EXPECT_FALSE(A) << "checksummed payload accepted a corrupt byte";
  }
  EXPECT_EQ(globalArenaNodes(), Before)
      << "rejected admissions must leave zero residue in the global arena";
}

// The 10k-seed deterministic mutation battery the acceptance criteria
// names: truncations, bit flips, and section splices over real encodings
// of both containers. Totality means: never a crash, never unbounded
// allocation (tight Limits), zero global-arena residue; accepted mutants
// must still run under fuel.
TEST(Ingest, MutationBattery10k) {
  std::vector<std::vector<uint8_t>> Seeds = {
      wasmBytes(rwbench::loopModule(10)),
      wasmBytes(rwbench::wideModule(4)),
      serial::write(rwbench::loopModule(10)),
      serial::write(rwbench::wideModule(4)),
  };
  for (const auto &S : Seeds)
    ASSERT_GT(S.size(), 24u);

  Limits L;
  L.MaxModuleBytes = 1 << 20;
  L.MaxTotalAlloc = 16u << 20;
  link::LinkOptions Opts;
  Opts.RunStart = false;

  uint64_t ArenaBefore = globalArenaNodes();
  std::mt19937_64 Rng(0xbadc0ffee);
  size_t Accepted = 0, Rejected = 0;

  for (int I = 0; I < 10000; ++I) {
    std::vector<uint8_t> B = Seeds[Rng() % Seeds.size()];
    switch (Rng() % 3) {
    case 0: { // truncation
      B.resize(Rng() % (B.size() + 1));
      break;
    }
    case 1: { // 1..8 bit flips
      for (unsigned F = 1 + Rng() % 8; F && !B.empty(); --F)
        B[Rng() % B.size()] ^= uint8_t(1) << (Rng() % 8);
      break;
    }
    default: { // splice: copy a random slice over a random position
      if (B.size() > 8) {
        size_t From = Rng() % B.size();
        size_t Len = 1 + Rng() % std::min<size_t>(64, B.size() - From);
        size_t To = Rng() % (B.size() - Len + 1);
        std::vector<uint8_t> Slice(B.begin() + From, B.begin() + From + Len);
        std::copy(Slice.begin(), Slice.end(), B.begin() + To);
      }
      break;
    }
    }

    IngestError E;
    Expected<ingest::AdmittedModule> A = ingest::admit(B, L, Opts, &E);
    if (A) {
      ++Accepted;
    } else {
      ++Rejected;
      EXPECT_NE(E.Cat, Category::None)
          << "rejection without a category at iteration " << I;
    }
  }

  EXPECT_EQ(Accepted + Rejected, 10000u);
  EXPECT_GT(Rejected, 5000u) << "mutations should mostly break something";
  EXPECT_EQ(globalArenaNodes(), ArenaBefore)
      << "battery left residue in the global type arena";
}

} // namespace
