//===- tests/parallel_check_test.cpp - Batch admission pipeline -----------===//
//
// The parallel checker's two contracts (DESIGN.md §7):
//
//   1. DETERMINISM — checkModules over any ThreadPool size returns
//      statuses (including every diagnostic string) byte-identical to
//      running checkModule sequentially, because per-function results are
//      collected and assembled in (module, function) index order.
//
//   2. DIFFERENTIAL — the allocation-free checker core (shared operand
//      stack with per-block floors, copy-on-write local environments)
//      behaves exactly like the per-block-copy checker it replaced: the
//      seeded well-typed generator still passes, linearity mutants are
//      still rejected, and checkSeq's observable results (final stack and
//      locals) are unchanged. The block-floor edge cases that the shared
//      stack introduces (a block must not see values below its params)
//      are pinned explicitly.
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"
#include "ir/Builder.h"
#include "support/ThreadPool.h"
#include "typing/Checker.h"

#include <gtest/gtest.h>

#include <random>

using namespace rw;
using namespace rw::ir;
using namespace rw::ir::build;
using namespace rw::typing;

namespace {

/// The seeded well-typed generator of tests/soundness_test.cpp (the F7
/// workload family), trimmed to the checker-relevant families: numerics,
/// nested control flow, local round-trips, and linear heap use.
struct Gen {
  std::mt19937_64 Rng;
  std::vector<SizeRef> Locals;

  explicit Gen(uint64_t Seed) : Rng(Seed) {}

  uint32_t pick(uint32_t Lo, uint32_t Hi) {
    return Lo + static_cast<uint32_t>(Rng() % (Hi - Lo + 1));
  }
  uint32_t nextLocal() {
    Locals.push_back(Size::constant(32));
    return static_cast<uint32_t>(Locals.size() - 1);
  }

  void gen(unsigned Depth, InstVec &O) {
    switch (Depth == 0 ? 0u : pick(0, 6)) {
    case 0:
      O.push_back(iconst(static_cast<int32_t>(pick(0, 99))));
      return;
    case 1:
      gen(Depth - 1, O);
      gen(Depth - 1, O);
      O.push_back(addI32());
      return;
    case 2: {
      gen(Depth - 1, O);
      InstVec T, F;
      gen(Depth - 1, T);
      gen(Depth - 1, F);
      O.push_back(ifElse(arrow({}, {i32T()}), {}, std::move(T), std::move(F)));
      return;
    }
    case 3: {
      uint32_t L = nextLocal();
      gen(Depth - 1, O);
      O.push_back(setLocal(L));
      O.push_back(getLocal(L, Qual::unr()));
      return;
    }
    case 4: {
      InstVec B;
      gen(Depth - 1, B);
      if (pick(0, 1))
        B.push_back(br(0));
      O.push_back(block(arrow({}, {i32T()}), {}, std::move(B)));
      return;
    }
    default: {
      gen(Depth - 1, O);
      O.push_back(structMalloc({Size::constant(32)}, Qual::lin()));
      uint32_t L = nextLocal();
      O.push_back(memUnpack(arrow({}, {i32T()}), {{L, i32T()}},
                            {iconst(1), structSwap(0), setLocal(L),
                             structFree(), getLocal(L, Qual::unr())}));
      return;
    }
    }
  }

  ir::Module module(unsigned Funcs) {
    ir::Module M;
    M.Name = "gen";
    for (unsigned F = 0; F < Funcs; ++F) {
      Locals.clear();
      InstVec Body;
      gen(3, Body);
      InstVec Pre;
      for (size_t I = 0; I < Locals.size(); ++I) {
        Pre.push_back(iconst(0));
        Pre.push_back(setLocal(static_cast<uint32_t>(I)));
      }
      Body.insert(Body.begin(), std::make_move_iterator(Pre.begin()),
                  std::make_move_iterator(Pre.end()));
      M.Funcs.push_back(function({}, FunType::get({}, arrow({}, {i32T()})),
                                 Locals, std::move(Body)));
    }
    return M;
  }
};

/// Injects a linearity violation (alloc-and-drop) into function \p Idx.
void breakFunction(ir::Module &M, size_t Idx) {
  M.Funcs[Idx].Body.insert(
      M.Funcs[Idx].Body.begin(),
      {iconst(1), structMalloc({Size::constant(32)}, Qual::lin()), drop()});
}

std::vector<const ir::Module *> ptrs(const std::vector<ir::Module> &Mods) {
  std::vector<const ir::Module *> P;
  for (const ir::Module &M : Mods)
    P.push_back(&M);
  return P;
}

std::string statusText(const Status &S) {
  return S.ok() ? std::string("<ok>") : S.error().message();
}

} // namespace

//===----------------------------------------------------------------------===//
// Determinism
//===----------------------------------------------------------------------===//

TEST(ParallelCheck, MatchesSequentialOnValidModules) {
  std::vector<ir::Module> Mods;
  for (unsigned I = 1; I <= 6; ++I)
    Mods.push_back(rwbench::wideModule(4 * I));
  auto P = ptrs(Mods);

  support::ThreadPool Pool4(4);
  std::vector<Status> Par = checkModules(P, Pool4);
  ASSERT_EQ(Par.size(), Mods.size());
  for (size_t I = 0; I < Mods.size(); ++I) {
    Status Seq = checkModule(Mods[I]);
    EXPECT_EQ(Seq.ok(), Par[I].ok()) << "module " << I;
    EXPECT_EQ(statusText(Seq), statusText(Par[I])) << "module " << I;
  }
}

TEST(ParallelCheck, DiagnosticsAreByteIdenticalAcrossPoolSizes) {
  // Several modules with errors injected at different function indices —
  // the reported error must always be the lowest-indexed failure, with
  // the same message, for every pool size.
  std::vector<ir::Module> Mods;
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    Gen G(Seed);
    Mods.push_back(G.module(6));
  }
  breakFunction(Mods[1], 4);
  breakFunction(Mods[3], 2);
  breakFunction(Mods[3], 5); // Two failures; index 2 must win.
  breakFunction(Mods[6], 0);
  auto P = ptrs(Mods);

  support::ThreadPool Pool1(1);
  support::ThreadPool Pool3(3);
  support::ThreadPool Pool8(8);
  std::vector<Status> R1 = checkModules(P, Pool1);
  std::vector<Status> R3 = checkModules(P, Pool3);
  std::vector<Status> R8 = checkModules(P, Pool8);

  for (size_t I = 0; I < Mods.size(); ++I) {
    Status Seq = checkModule(Mods[I]);
    EXPECT_EQ(statusText(Seq), statusText(R1[I])) << "module " << I;
    EXPECT_EQ(statusText(R1[I]), statusText(R3[I])) << "module " << I;
    EXPECT_EQ(statusText(R1[I]), statusText(R8[I])) << "module " << I;
  }
  EXPECT_FALSE(R3[1].ok());
  EXPECT_NE(statusText(R3[3]).find("in function 2:"), std::string::npos);
  EXPECT_NE(statusText(R3[6]).find("in function 0:"), std::string::npos);
}

TEST(ParallelCheck, BadTableEntrySkipsFunctionWorkWithSameDiagnostic) {
  // A module rejected by the up-front table check gets no function work
  // scheduled, and its diagnostic is still byte-identical to sequential
  // checkModule (where the table error also outranks everything).
  std::vector<ir::Module> Mods;
  Mods.push_back(rwbench::wideModule(4));
  Mods.push_back(rwbench::wideModule(4));
  Mods[0].Tab.Entries.push_back(99); // Out of range.
  auto P = ptrs(Mods);

  support::ThreadPool Pool(3);
  std::vector<Status> R = checkModules(P, Pool);
  Status Seq0 = checkModule(Mods[0]);
  ASSERT_FALSE(R[0].ok());
  EXPECT_EQ(statusText(Seq0), statusText(R[0]));
  EXPECT_NE(statusText(R[0]).find("table entry 99"), std::string::npos);
  EXPECT_TRUE(R[1].ok());
}

TEST(ParallelCheck, RepeatedRunsAreStable) {
  // Work-stealing schedules differ run to run; results must not.
  Gen G(42);
  std::vector<ir::Module> Mods;
  Mods.push_back(G.module(8));
  Mods.push_back(rwbench::wideModule(16));
  breakFunction(Mods[0], 7);
  auto P = ptrs(Mods);

  support::ThreadPool Pool(4);
  std::vector<Status> First = checkModules(P, Pool);
  for (int Round = 0; Round < 10; ++Round) {
    std::vector<Status> Again = checkModules(P, Pool);
    ASSERT_EQ(Again.size(), First.size());
    for (size_t I = 0; I < First.size(); ++I)
      EXPECT_EQ(statusText(First[I]), statusText(Again[I]))
          << "round " << Round << " module " << I;
  }
}

//===----------------------------------------------------------------------===//
// Differential: new checker core vs the committed behavior
//===----------------------------------------------------------------------===//

TEST(CheckerDiff, SeededGeneratorStillPassesAndMutantsStillFail) {
  for (uint64_t Seed = 1; Seed <= 40; ++Seed) {
    Gen G(Seed);
    ir::Module M = G.module(3);
    Status S = checkModule(M);
    EXPECT_TRUE(S.ok()) << "seed " << Seed << ": " << statusText(S);

    ir::Module Broken = M;
    breakFunction(Broken, Seed % Broken.Funcs.size());
    EXPECT_FALSE(checkModule(Broken).ok()) << "seed " << Seed;
  }
}

TEST(CheckerDiff, WideModuleWorkloadUnchanged) {
  // The F7 benchmark workload itself (and an InfoMap pass over it, which
  // exercises the note() paths the fast path skips).
  ir::Module M = rwbench::wideModule(32);
  EXPECT_TRUE(checkModule(M).ok());
  InfoMap IM;
  EXPECT_TRUE(checkModule(M, &IM).ok());
  EXPECT_GT(IM.size(), 0u);
}

TEST(CheckerDiff, CheckSeqResultsUnchanged) {
  // checkSeq's observable outputs — final stack and final locals — are
  // part of the public contract the refactor must preserve.
  ModuleEnv Env;
  auto R = checkSeq(Env, KindCtx(), std::nullopt,
                    {{i32T(), Size::constant(32)}}, {},
                    {iconst(2), iconst(3), addI32(), setLocal(0),
                     getLocal(0, Qual::unr()), iconst(1), addI32()});
  ASSERT_TRUE(bool(R));
  ASSERT_EQ(R->Stack.size(), 1u);
  EXPECT_TRUE(typeEquals(R->Stack[0], i32T()));
  ASSERT_EQ(R->Locals.size(), 1u);
  EXPECT_TRUE(typeEquals(R->Locals[0].T, i32T()));

  // A linear move through a local must revert the slot to unit in the
  // *returned* environment (the COW buffer the caller observes).
  Type Lin(exLocPT(Type(refPT(Privilege::RW, Loc::var(0),
                              structHT({{i32T(), Size::constant(32)}})),
                        Qual::lin())),
           Qual::lin());
  auto R2 = checkSeq(Env, KindCtx(), std::nullopt,
                     {{Lin, Size::constant(64)}}, {},
                     {getLocal(0, Qual::lin())});
  ASSERT_TRUE(bool(R2));
  ASSERT_EQ(R2->Stack.size(), 1u);
  EXPECT_TRUE(typeEquals(R2->Stack[0], Lin));
  ASSERT_EQ(R2->Locals.size(), 1u);
  EXPECT_TRUE(typeEquals(R2->Locals[0].T, unitT()));
}

TEST(CheckerDiff, BlockCannotReachBelowItsFloor) {
  // The shared operand stack gives every block a floor; popping past it
  // must report underflow even though the *physical* stack holds the
  // outer value right below. (The per-block-copy checker got this by
  // construction; the floors must preserve it.)
  ModuleEnv Env;
  auto R = checkSeq(Env, KindCtx(), std::nullopt, {}, {i32T()},
                    {block(arrow({}, {i32T()}), {},
                           {drop(), iconst(5)})}); // drop() sees an empty
                                                   // block-local stack.
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().message().find("underflow"), std::string::npos);
}

TEST(CheckerDiff, UnreachableBlockBodyLeavesOuterStackIntact) {
  // A body ending unreachable may leave arbitrary junk above its floor;
  // the checker must truncate it and still produce the annotated results.
  ModuleEnv Env;
  auto R = checkSeq(Env, KindCtx(), std::nullopt, {}, {i32T()},
                    {block(arrow({}, {i32T()}), {},
                           {iconst(1), iconst(2), iconst(3), br(0)}),
                     addI32()});
  ASSERT_TRUE(bool(R)) << R.error().message();
  ASSERT_EQ(R->Stack.size(), 1u);
  EXPECT_TRUE(typeEquals(R->Stack[0], i32T()));
}

TEST(CheckerDiff, SharedLocalsForkOnFirstWriteOnly) {
  // Nested blocks share the outer local environment until a write; a
  // branch out of the inner block must still see the *outer* view when
  // the inner body has not diverged, and must fail when it has.
  ModuleEnv Env;
  // Branch with agreeing locals: fine.
  auto Ok = checkSeq(Env, KindCtx(), std::nullopt,
                     {{i32T(), Size::constant(32)}}, {},
                     {block(arrow({}, {}), {},
                            {br(0)})});
  EXPECT_TRUE(bool(Ok)) << Ok.error().message();
  // Branch after the body strongly updated a local (i32 -> i64, a slot
  // change the label's view does not include): rejected.
  auto Bad = checkSeq(Env, KindCtx(), std::nullopt,
                      {{i32T(), Size::constant(64)}}, {},
                      {block(arrow({}, {}), {},
                             {i64const(1), setLocal(0), br(0)})});
  ASSERT_FALSE(bool(Bad));
  EXPECT_NE(Bad.error().message().find("locals"), std::string::npos);
}
