//===- tests/entail_test.cpp - Qualifier and size entailment --------------===//
//
// Covers the constraint judgments q ⪯ q' and sz ≤ sz' of §4, including
// bounded variables, transitivity through constraint chains, and the
// soundness of the incomplete size fragment.
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "typing/Entail.h"
#include "typing/WellFormed.h"

#include <gtest/gtest.h>

using namespace rw;
using namespace rw::ir;
using namespace rw::typing;

namespace {

KindCtx emptyCtx() { return KindCtx(); }

} // namespace

//===----------------------------------------------------------------------===//
// Qualifier entailment
//===----------------------------------------------------------------------===//

TEST(QualEntail, ConstantLattice) {
  KindCtx C = emptyCtx();
  EXPECT_TRUE(leqQual(Qual::unr(), Qual::unr(), C));
  EXPECT_TRUE(leqQual(Qual::unr(), Qual::lin(), C));
  EXPECT_TRUE(leqQual(Qual::lin(), Qual::lin(), C));
  EXPECT_FALSE(leqQual(Qual::lin(), Qual::unr(), C));
}

TEST(QualEntail, VariableReflexivity) {
  KindCtx C;
  C.Quals.push_back({});
  EXPECT_TRUE(leqQual(Qual::var(0), Qual::var(0), C));
  EXPECT_TRUE(leqQual(Qual::unr(), Qual::var(0), C));
  EXPECT_TRUE(leqQual(Qual::var(0), Qual::lin(), C));
  // An unconstrained variable is not comparable to unr from above or lin
  // from below.
  EXPECT_FALSE(leqQual(Qual::var(0), Qual::unr(), C));
  EXPECT_FALSE(leqQual(Qual::lin(), Qual::var(0), C));
}

TEST(QualEntail, UpperBoundMakesVarUnr) {
  KindCtx C;
  C.Quals.push_back({{}, {Qual::unr()}}); // δ0 ⪯ unr
  EXPECT_TRUE(leqQual(Qual::var(0), Qual::unr(), C));
}

TEST(QualEntail, LowerBoundMakesVarLin) {
  KindCtx C;
  C.Quals.push_back({{Qual::lin()}, {}}); // lin ⪯ δ0
  EXPECT_TRUE(leqQual(Qual::lin(), Qual::var(0), C));
}

TEST(QualEntail, TransitivityThroughVariables) {
  // δ1 ⪯ δ0 and δ0 ⪯ unr implies δ1 ⪯ unr. In de Bruijn form: binder list
  // [δa (⪯ unr), δb (⪯ δa)] — inside the body δb has index 0, δa index 1.
  KindCtx C;
  C.Quals.push_back({{}, {Qual::var(1)}}); // index 0: upper bound δ1
  C.Quals.push_back({{}, {Qual::unr()}});  // index 1: upper bound unr
  EXPECT_TRUE(leqQual(Qual::var(0), Qual::var(1), C));
  EXPECT_TRUE(leqQual(Qual::var(0), Qual::unr(), C));
}

TEST(QualEntail, CyclicConstraintsTerminate) {
  // δ0 ⪯ δ1, δ1 ⪯ δ0: legal, mutually equal variables.
  KindCtx C;
  C.Quals.push_back({{}, {Qual::var(1)}});
  C.Quals.push_back({{}, {Qual::var(0)}});
  EXPECT_TRUE(leqQual(Qual::var(0), Qual::var(1), C));
  EXPECT_TRUE(leqQual(Qual::var(1), Qual::var(0), C));
  EXPECT_FALSE(leqQual(Qual::var(0), Qual::unr(), C));
}

//===----------------------------------------------------------------------===//
// Size entailment
//===----------------------------------------------------------------------===//

TEST(SizeEntail, Constants) {
  KindCtx C = emptyCtx();
  EXPECT_TRUE(leqSize(Size::constant(32), Size::constant(32), C));
  EXPECT_TRUE(leqSize(Size::constant(32), Size::constant(64), C));
  EXPECT_FALSE(leqSize(Size::constant(64), Size::constant(32), C));
}

TEST(SizeEntail, SyntacticInclusion) {
  KindCtx C;
  C.Sizes.push_back({});
  C.Sizes.push_back({});
  // σ0 + 32 ≤ σ0 + 64 regardless of σ0's bounds.
  EXPECT_TRUE(leqSize(Size::plus(Size::var(0), Size::constant(32)),
                      Size::plus(Size::var(0), Size::constant(64)), C));
  // σ0 ≤ σ0 + σ1.
  EXPECT_TRUE(leqSize(Size::var(0),
                      Size::plus(Size::var(0), Size::var(1)), C));
  // σ0 + σ0 is not included in σ0 (multiplicity matters).
  EXPECT_FALSE(leqSize(Size::plus(Size::var(0), Size::var(0)),
                       Size::var(0), C));
}

TEST(SizeEntail, IntervalThroughBounds) {
  KindCtx C;
  // σ0 with upper bound 32.
  C.Sizes.push_back({{}, {Size::constant(32)}});
  // σ1 with lower bound 64.
  C.Sizes.push_back({{Size::constant(64)}, {}});
  EXPECT_TRUE(leqSize(Size::var(0), Size::constant(32), C));
  EXPECT_TRUE(leqSize(Size::var(0), Size::var(1), C));
  EXPECT_FALSE(leqSize(Size::var(1), Size::var(0), C));
  // σ0 + σ0 ≤ 64 via doubled upper bound.
  EXPECT_TRUE(leqSize(Size::plus(Size::var(0), Size::var(0)),
                      Size::constant(64), C));
}

TEST(SizeEntail, ChainedVariableBounds) {
  KindCtx C;
  C.Sizes.push_back({{}, {Size::var(1)}});       // σ0 ≤ σ1
  C.Sizes.push_back({{}, {Size::constant(16)}}); // σ1 ≤ 16
  EXPECT_TRUE(leqSize(Size::var(0), Size::constant(16), C));
  EXPECT_FALSE(leqSize(Size::var(0), Size::constant(8), C));
}

TEST(SizeEntail, UnboundedVarHasNoUpper) {
  KindCtx C;
  C.Sizes.push_back({});
  EXPECT_FALSE(leqSize(Size::var(0), Size::constant(1u << 20), C));
}

TEST(SizeEntail, PaperSumConstraint) {
  // The §2.1 example: σ1 + σ2 ≤ σ3 must be derivable when σ3's lower bound
  // is σ1 + σ2.
  KindCtx C;
  C.Sizes.push_back({});
  C.Sizes.push_back({});
  C.Sizes.push_back({{Size::plus(Size::var(0), Size::var(1))}, {}});
  EXPECT_TRUE(leqSize(Size::plus(Size::var(0), Size::var(1)),
                      Size::var(2), C));
}

//===----------------------------------------------------------------------===//
// Kind-context construction (quantifier list → body coordinates)
//===----------------------------------------------------------------------===//

TEST(KindCtxBuild, ReindexesConstraints) {
  // ∀ σa σb (σb's lower bound mentions σa as index 0 at declaration time).
  std::vector<Quant> Qs = {
      Quant::size(),
      Quant::size({Size::var(0)}, {}),
  };
  KindCtx C = buildKindCtx(Qs);
  ASSERT_EQ(C.Sizes.size(), 2u);
  // In body coordinates: σb is index 0, σa is index 1; the stored lower
  // bound of σb must now reference index 1.
  ASSERT_EQ(C.Sizes[0].Lower.size(), 1u);
  EXPECT_EQ(C.Sizes[0].Lower[0]->varIndex(), 1u);
}

TEST(KindCtxBuild, CountsLocations) {
  std::vector<Quant> Qs = {Quant::loc(), Quant::loc(),
                           Quant::type(Qual::unr(), Size::constant(64), true)};
  KindCtx C = buildKindCtx(Qs);
  EXPECT_EQ(C.NumLocVars, 2u);
  EXPECT_EQ(C.Types.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Well-formedness
//===----------------------------------------------------------------------===//

TEST(WellFormed, ScopingErrors) {
  KindCtx C = emptyCtx();
  EXPECT_FALSE(wfQual(Qual::var(0), C).ok());
  EXPECT_FALSE(wfSize(Size::var(0), C).ok());
  EXPECT_FALSE(wfLoc(Loc::var(0), C).ok());
  EXPECT_FALSE(wfType(Type(varPT(0), Qual::unr()), C).ok());
}

TEST(WellFormed, TupleQualifierBound) {
  KindCtx C = emptyCtx();
  // An unrestricted tuple may not contain a linear component.
  Type LinRef(refPT(Privilege::RW, Loc::concrete(MemKind::Lin, 1),
                    arrayHT(i32T())),
              Qual::lin());
  Type BadTuple(prodPT({LinRef}), Qual::unr());
  EXPECT_FALSE(wfType(BadTuple, C).ok());
  Type GoodTuple(prodPT({LinRef}), Qual::lin());
  EXPECT_TRUE(wfType(GoodTuple, C).ok());
}

TEST(WellFormed, RefMemoryQualCoherence) {
  KindCtx C = emptyCtx();
  HeapTypeRef H = arrayHT(i32T());
  // Linear-memory reference must be linear.
  EXPECT_FALSE(wfType(Type(refPT(Privilege::RW,
                                 Loc::concrete(MemKind::Lin, 1), H),
                           Qual::unr()),
                      C)
                   .ok());
  // Unrestricted-memory reference must be unrestricted.
  EXPECT_FALSE(wfType(Type(refPT(Privilege::RW,
                                 Loc::concrete(MemKind::Unr, 1), H),
                           Qual::lin()),
                      C)
                   .ok());
}

TEST(WellFormed, TypeVarQualLowerBound) {
  KindCtx C;
  C.Types.push_back({Qual::lin(), Size::constant(64), true}); // lin ⪯ α0
  // α0 at qualifier unr violates the lower bound.
  EXPECT_FALSE(wfType(Type(varPT(0), Qual::unr()), C).ok());
  EXPECT_TRUE(wfType(Type(varPT(0), Qual::lin()), C).ok());
}

TEST(WellFormed, RecRequiresIndirection) {
  KindCtx C = emptyCtx();
  // rec α. (α, i32) — the variable occurs flat: rejected.
  Type FlatBody(prodPT({Type(varPT(0), Qual::unr()), i32T()}), Qual::unr());
  EXPECT_FALSE(
      wfType(Type(recPT(Qual::unr(), FlatBody), Qual::unr()), C).ok());
  // rec α. ref rw ℓu (variant [unit; α]) — protected: accepted.
  Type RecBody(refPT(Privilege::RW, Loc::concrete(MemKind::Unr, 0),
                     variantHT({unitT(), Type(varPT(0), Qual::unr())})),
               Qual::unr());
  EXPECT_TRUE(
      wfType(Type(recPT(Qual::unr(), RecBody), Qual::unr()), C).ok());
}

TEST(WellFormed, StructFieldsMustFitSlots) {
  KindCtx C = emptyCtx();
  HeapTypeRef Bad = structHT({{i64T(), Size::constant(32)}});
  EXPECT_FALSE(wfHeapType(Bad, C).ok());
  HeapTypeRef Good = structHT({{i64T(), Size::constant(64)}});
  EXPECT_TRUE(wfHeapType(Good, C).ok());
}

TEST(WellFormed, FunTypeWithConstraints) {
  // ∀ρ σ (unr ⪯ α ≲ σ). [(ref rw ρ (struct (α^unr, σ)))^unr] → [].
  HeapTypeRef H = structHT({{Type(varPT(0), Qual::unr()), Size::var(0)}});
  FunTypeRef F = FunType::get(
      {Quant::loc(), Quant::size(),
       Quant::type(Qual::unr(), Size::var(0), true)},
      build::arrow(
          {Type(refPT(Privilege::RW, Loc::var(0), H), Qual::unr())}, {}));
  EXPECT_TRUE(wfFunType(*F, KindCtx()).ok());
}
