//===- tests/sem_test.cpp - Dynamic semantics (Fig 4) ---------------------===//
//
// One test per reduction-rule family: numerics, control flow, locals,
// calls (direct, indirect, polymorphic), every heap-value family, the
// administrative malloc/free instructions, traps, and the collect rule
// (GC with linear finalization).
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "link/Link.h"
#include "sem/Machine.h"
#include "support/NumericOps.h"

#include <gtest/gtest.h>

using namespace rw;
using namespace rw::ir;
using namespace rw::ir::build;
using namespace rw::sem;

namespace {

/// Runs a body as a [] -> Results function in a single-module store.
Expected<std::vector<Value>> runBody(InstVec Body,
                                     std::vector<Type> Results = {},
                                     std::vector<SizeRef> Locals = {}) {
  auto M = std::make_unique<ir::Module>();
  M->Name = "t";
  M->Funcs.push_back(function({"main"},
                              FunType::get({}, arrow({}, std::move(Results))),
                              std::move(Locals), std::move(Body)));
  // Keep the module alive for the machine's lifetime via a static pool.
  static std::vector<std::unique_ptr<ir::Module>> Pool;
  Pool.push_back(std::move(M));
  link::LinkOptions Opts;
  Opts.TypeCheck = false; // Semantics tests drive unchecked code on purpose.
  auto Mach = link::instantiate({Pool.back().get()}, Opts);
  if (!Mach)
    return Mach.error();
  return (*Mach)->invoke(0, 0, {}, {});
}

uint64_t asBits(const Expected<std::vector<Value>> &R, size_t I = 0) {
  EXPECT_TRUE(bool(R)) << (R ? "" : R.error().message());
  if (!R || R->size() <= I || !(*R)[I].isNum())
    return ~0ull;
  return (*R)[I].bits();
}

} // namespace

//===----------------------------------------------------------------------===//
// Numerics
//===----------------------------------------------------------------------===//

TEST(Sem, ArithmeticBasics) {
  EXPECT_EQ(asBits(runBody({iconst(2), iconst(3), addI32()}, {i32T()})), 5u);
  EXPECT_EQ(asBits(runBody({iconst(10), iconst(3), subI32()}, {i32T()})), 7u);
  EXPECT_EQ(asBits(runBody({iconst(6), iconst(7), mulI32()}, {i32T()})), 42u);
}

TEST(Sem, WrapAroundArithmetic) {
  EXPECT_EQ(asBits(runBody({iconst(-1), iconst(1), addI32()}, {i32T()})), 0u);
  EXPECT_EQ(asBits(runBody(
                {numConst(NumType::U32, 0xffffffffu), iconst(2), mulI32()},
                {i32T()})),
            0xfffffffeu);
}

TEST(Sem, SignedVsUnsignedDivision) {
  // -7 / 2 signed = -3; same bits unsigned = huge.
  EXPECT_EQ(asBits(runBody({iconst(-7), iconst(2),
                            binop(NumType::I32, BinopKind::Div)},
                           {i32T()})),
            static_cast<uint32_t>(-3));
  EXPECT_EQ(asBits(runBody({numConst(NumType::U32, 0xfffffff9u), uconst(2),
                            binop(NumType::U32, BinopKind::Div)},
                           {numT(NumType::U32)})),
            0x7ffffffcu);
}

TEST(Sem, DivisionByZeroTraps) {
  auto R = runBody({iconst(1), iconst(0), binop(NumType::I32, BinopKind::Div)},
                   {i32T()});
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().message().find("trap"), std::string::npos);
}

TEST(Sem, RelopsAndSelect) {
  EXPECT_EQ(asBits(runBody({iconst(3), iconst(4),
                            relop(NumType::I32, RelopKind::Lt)},
                           {i32T()})),
            1u);
  EXPECT_EQ(asBits(runBody({iconst(10), iconst(20), iconst(1), select()},
                           {i32T()})),
            10u);
  EXPECT_EQ(asBits(runBody({iconst(10), iconst(20), iconst(0), select()},
                           {i32T()})),
            20u);
}

TEST(Sem, Conversions) {
  EXPECT_EQ(asBits(runBody({iconst(-1), cvt(NumType::I32, NumType::I64)},
                           {i64T()})),
            0xffffffffffffffffull);
  EXPECT_EQ(asBits(runBody({numConst(NumType::U32, 0xffffffffu),
                            cvt(NumType::U32, NumType::U64)},
                           {numT(NumType::U64)})),
            0xffffffffull);
  // f64 7.5 → i32 trunc = 7.
  EXPECT_EQ(asBits(runBody({numConst(NumType::F64, num::f64ToBits(7.5)),
                            cvt(NumType::F64, NumType::I32)},
                           {i32T()})),
            7u);
}

TEST(Sem, FloatToIntOverflowTraps) {
  auto R = runBody({numConst(NumType::F64, num::f64ToBits(1e30)),
                    cvt(NumType::F64, NumType::I32)},
                   {i32T()});
  EXPECT_FALSE(bool(R));
}

//===----------------------------------------------------------------------===//
// Control flow
//===----------------------------------------------------------------------===//

TEST(Sem, BlockAndBr) {
  EXPECT_EQ(asBits(runBody({block(arrow({}, {i32T()}), {},
                                  {iconst(5), br(0), iconst(9)})},
                           {i32T()})),
            5u);
}

TEST(Sem, IfTakesCorrectBranch) {
  EXPECT_EQ(asBits(runBody({iconst(1), ifElse(arrow({}, {i32T()}), {},
                                              {iconst(10)}, {iconst(20)})},
                           {i32T()})),
            10u);
  EXPECT_EQ(asBits(runBody({iconst(0), ifElse(arrow({}, {i32T()}), {},
                                              {iconst(10)}, {iconst(20)})},
                           {i32T()})),
            20u);
}

TEST(Sem, LoopCountsToTen) {
  // Local 0 counts up; the loop re-enters while local < 10.
  InstVec Body = {
      iconst(0), setLocal(0),
      block(arrow({}, {}), {},
            {loop(arrow({}, {}),
                  {getLocal(0, Qual::unr()), iconst(1), addI32(),
                   setLocal(0), getLocal(0, Qual::unr()), iconst(10),
                   relop(NumType::I32, RelopKind::Lt), brIf(0)})}),
      getLocal(0, Qual::unr()),
  };
  EXPECT_EQ(asBits(runBody(Body, {i32T()}, {Size::constant(32)})), 10u);
}

TEST(Sem, BrTableSelectsDepth) {
  // br_table over three nested blocks returns a distinct constant per
  // depth.
  auto Mk = [](int32_t Idx) {
    return runBody(
        {block(arrow({}, {i32T()}), {},
               {block(arrow({}, {i32T()}), {},
                      {block(arrow({}, {i32T()}), {},
                             {iconst(99), iconst(Idx),
                              brTable({0, 1}, 2)}),
                       drop(), iconst(0), br(1)}),
                drop(), iconst(1), br(0)})},
        {i32T()});
  };
  EXPECT_EQ(asBits(Mk(0)), 0u);  // depth 0 → inner block → arm 0
  EXPECT_EQ(asBits(Mk(1)), 1u);  // depth 1 → middle block → arm 1
  EXPECT_EQ(asBits(Mk(7)), 99u); // default depth 2 → outermost
}

TEST(Sem, UnreachableTraps) {
  auto R = runBody({unreachable()});
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().message().find("trap"), std::string::npos);
}

TEST(Sem, ReturnShortCircuits) {
  EXPECT_EQ(asBits(runBody({iconst(1), ret(), iconst(2)}, {i32T()})), 1u);
}

//===----------------------------------------------------------------------===//
// Locals: linear move-out semantics
//===----------------------------------------------------------------------===//

TEST(Sem, GetLocalLinBlanksSlot) {
  // After a linear get, the slot holds unit; an unrestricted get then
  // yields unit (observed via a tuple).
  InstVec Body = {
      iconst(7), qualify(Qual::lin()), setLocal(0),
      getLocal(0, Qual::lin()),  // moves out 7
      drop(),                    // runtime drop is fine in unchecked code
      getLocal(0, Qual::unr()),  // now unit
  };
  auto R = runBody(Body, {unitT()}, {Size::constant(32)});
  ASSERT_TRUE(bool(R)) << R.error().message();
  ASSERT_EQ(R->size(), 1u);
  EXPECT_TRUE((*R)[0].isUnit());
}

//===----------------------------------------------------------------------===//
// Calls
//===----------------------------------------------------------------------===//

namespace {

std::unique_ptr<ir::Module> twoFuncModule() {
  auto M = std::make_unique<ir::Module>();
  M->Name = "m";
  M->Funcs.push_back(function(
      {}, FunType::get({}, arrow({i32T(), i32T()}, {i32T()})), {},
      {getLocal(0, Qual::unr()), getLocal(1, Qual::unr()), addI32()}));
  M->Funcs.push_back(function({"main"},
                              FunType::get({}, arrow({}, {i32T()})), {},
                              {iconst(30), iconst(12), call(0)}));
  M->Tab.Entries = {0};
  return M;
}

} // namespace

TEST(Sem, DirectCall) {
  auto M = twoFuncModule();
  auto Mach = link::instantiate({M.get()});
  ASSERT_TRUE(bool(Mach)) << Mach.error().message();
  auto R = (*Mach)->invoke(0, 1, {}, {});
  ASSERT_TRUE(bool(R));
  EXPECT_EQ((*R)[0].bits(), 42u);
}

TEST(Sem, IndirectCallThroughTable) {
  auto M = twoFuncModule();
  M->Funcs.push_back(function(
      {"indirect"}, FunType::get({}, arrow({}, {i32T()})), {},
      {iconst(40), iconst(2), coderef(0), callIndirect()}));
  auto Mach = link::instantiate({M.get()});
  ASSERT_TRUE(bool(Mach)) << Mach.error().message();
  auto R = (*Mach)->invoke(0, 2, {}, {});
  ASSERT_TRUE(bool(R));
  EXPECT_EQ((*R)[0].bits(), 42u);
}

TEST(Sem, PolymorphicCallSubstitutesBody) {
  // ∀α≲64. [α^unr] -> [α^unr] identity; call at i64.
  auto M = std::make_unique<ir::Module>();
  M->Name = "m";
  FunTypeRef IdTy = FunType::get(
      {Quant::type(Qual::unr(), Size::constant(64), true)},
      arrow({Type(varPT(0), Qual::unr())}, {Type(varPT(0), Qual::unr())}));
  M->Funcs.push_back(function({}, IdTy, {}, {getLocal(0, Qual::unr())}));
  M->Funcs.push_back(function(
      {"main"}, FunType::get({}, arrow({}, {i64T()})), {},
      {i64const(77), call(0, {Index::pretype(numPT(NumType::I64))})}));
  auto Mach = link::instantiate({M.get()});
  ASSERT_TRUE(bool(Mach)) << Mach.error().message();
  auto R = (*Mach)->invoke(0, 1, {}, {});
  ASSERT_TRUE(bool(R));
  EXPECT_EQ((*R)[0].bits(), 77u);
}

TEST(Sem, CrossModuleImportCall) {
  auto Provider = std::make_unique<ir::Module>();
  Provider->Name = "lib";
  Provider->Funcs.push_back(function(
      {"inc"}, FunType::get({}, arrow({i32T()}, {i32T()})), {},
      {getLocal(0, Qual::unr()), iconst(1), addI32()}));

  auto Client = std::make_unique<ir::Module>();
  Client->Name = "app";
  Client->Funcs.push_back(importFunc(
      {"lib", "inc"}, FunType::get({}, arrow({i32T()}, {i32T()}))));
  Client->Funcs.push_back(function({"main"},
                                   FunType::get({}, arrow({}, {i32T()})), {},
                                   {iconst(41), call(0)}));

  auto Mach = link::instantiate({Provider.get(), Client.get()});
  ASSERT_TRUE(bool(Mach)) << Mach.error().message();
  auto R = (*Mach)->invoke(1, 1, {}, {});
  ASSERT_TRUE(bool(R));
  EXPECT_EQ((*R)[0].bits(), 42u);
}

TEST(Sem, ImportTypeMismatchRejectedAtLink) {
  auto Provider = std::make_unique<ir::Module>();
  Provider->Name = "lib";
  Provider->Funcs.push_back(function(
      {"inc"}, FunType::get({}, arrow({i32T()}, {i32T()})), {},
      {getLocal(0, Qual::unr()), iconst(1), addI32()}));

  auto Client = std::make_unique<ir::Module>();
  Client->Name = "app";
  Client->Funcs.push_back(importFunc(
      {"lib", "inc"}, FunType::get({}, arrow({i64T()}, {i64T()}))));

  auto Mach = link::instantiate({Provider.get(), Client.get()});
  ASSERT_FALSE(bool(Mach));
  EXPECT_NE(Mach.error().message().find("mismatch"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Heap: structs, variants, arrays, existentials
//===----------------------------------------------------------------------===//

TEST(Sem, StructLifecycle) {
  // Allocate {7}, strong-update to 9 via swap, read back, free.
  InstVec Body = {
      iconst(7),
      structMalloc({Size::constant(32)}, Qual::lin()),
      memUnpack(arrow({}, {i32T()}), {},
                {iconst(9), structSwap(0), setLocal(0), structFree(),
                 getLocal(0, Qual::unr())}),
  };
  EXPECT_EQ(asBits(runBody(Body, {i32T()}, {Size::constant(32)})), 7u);
}

TEST(Sem, StructSetMutates) {
  InstVec Body = {
      iconst(7),
      structMalloc({Size::constant(32)}, Qual::unr()),
      memUnpack(arrow({}, {i32T()}), {},
                {iconst(9), structSet(0), structGet(0), setLocal(0), drop(),
                 getLocal(0, Qual::unr())}),
  };
  EXPECT_EQ(asBits(runBody(Body, {i32T()}, {Size::constant(32)})), 9u);
}

TEST(Sem, DoubleFreeTraps) {
  // Free the same linear cell twice: the machine traps (this is exactly
  // the runtime crash the type system exists to rule out).
  InstVec Body = {
      iconst(7),
      structMalloc({Size::constant(32)}, Qual::lin()),
      memUnpack(arrow({}, {}), {},
                {teeLocal(0), structFree(), getLocal(0, Qual::unr()),
                 structFree()}),
  };
  auto R = runBody(Body, {}, {Size::constant(64)});
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().message().find("trap"), std::string::npos);
}

TEST(Sem, VariantCaseDispatch) {
  std::vector<Type> Cases = {unitT(), i32T()};
  auto Mk = [&](uint32_t Tag, InstVec Payload) {
    InstVec Body = Payload;
    Body.push_back(variantMalloc(Tag, Cases, Qual::lin()));
    Body.push_back(memUnpack(
        arrow({}, {i32T()}), {},
        {variantCase(Qual::lin(), variantHT(Cases), arrow({}, {i32T()}), {},
                     {{drop(), iconst(-1)}, {}})}));
    return runBody(Body, {i32T()});
  };
  // Tag 1 carries an i32 payload which the arm returns directly.
  EXPECT_EQ(asBits(Mk(1, {iconst(33)})), 33u);
}

TEST(Sem, LinearVariantCaseFreesCell) {
  std::vector<Type> Cases = {i32T()};
  InstVec Body = {
      iconst(5),
      variantMalloc(0, Cases, Qual::lin()),
      memUnpack(arrow({}, {i32T()}), {},
                {variantCase(Qual::lin(), variantHT(Cases),
                             arrow({}, {i32T()}), {}, {{}})}),
  };
  auto M = std::make_unique<ir::Module>();
  M->Name = "t";
  M->Funcs.push_back(function({"main"},
                              FunType::get({}, arrow({}, {i32T()})), {},
                              Body));
  link::LinkOptions Opts;
  Opts.TypeCheck = false;
  auto Mach = link::instantiate({M.get()}, Opts);
  ASSERT_TRUE(bool(Mach));
  auto R = (*Mach)->invoke(0, 0, {}, {});
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_EQ((*R)[0].bits(), 5u);
  // The cell was freed by the linear case.
  EXPECT_TRUE((*Mach)->store().Mem.Lin.empty());
  EXPECT_EQ((*Mach)->store().Mem.FreeCountLin, 1u);
}

TEST(Sem, ArrayLifecycle) {
  InstVec Body = {
      iconst(7), uconst(5), arrayMalloc(Qual::lin()),
      memUnpack(arrow({}, {i32T()}), {},
                {uconst(2), iconst(9), arraySet(), uconst(2), arrayGet(),
                 setLocal(0), uconst(0), arrayGet(), setLocal(1),
                 arrayFree(), getLocal(0, Qual::unr()),
                 getLocal(1, Qual::unr()), addI32()}),
  };
  EXPECT_EQ(asBits(runBody(Body, {i32T()},
                           {Size::constant(32), Size::constant(32)})),
            16u); // 9 (updated) + 7 (original)
}

TEST(Sem, ArrayOutOfBoundsTraps) {
  InstVec Body = {
      iconst(7), uconst(5), arrayMalloc(Qual::lin()),
      memUnpack(arrow({}, {i32T()}), {}, {uconst(9), arrayGet(), drop()}),
  };
  auto R = runBody(Body, {i32T()});
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().message().find("trap"), std::string::npos);
}

TEST(Sem, ExistentialPackUnpack) {
  HeapTypeRef Ex =
      exHT(Qual::unr(), Size::constant(32), Type(varPT(0), Qual::unr()));
  InstVec Body = {
      iconst(11),
      existPack(numPT(NumType::I32), Ex, Qual::lin()),
      memUnpack(arrow({}, {i32T()}), {},
                {existUnpack(Qual::lin(), Ex, arrow({}, {i32T()}), {}, {})}),
  };
  EXPECT_EQ(asBits(runBody(Body, {i32T()})), 11u);
}

TEST(Sem, TupleGroupUngroup) {
  InstVec Body = {
      iconst(1), i64const(2), group(2, Qual::unr()), ungroup(),
      drop(), // drop the i64
  };
  EXPECT_EQ(asBits(runBody(Body, {i32T()})), 1u);
}

TEST(Sem, CapAndRefOpsAreValueLevel) {
  InstVec Body = {
      iconst(7),
      structMalloc({Size::constant(32)}, Qual::lin()),
      memUnpack(arrow({}, {i32T()}), {},
                {refSplit(), refJoin(), // split into cap+ptr and rejoin
                 structGet(0), setLocal(0), structFree(),
                 getLocal(0, Qual::unr())}),
  };
  EXPECT_EQ(asBits(runBody(Body, {i32T()}, {Size::constant(32)})), 7u);
}

//===----------------------------------------------------------------------===//
// Garbage collection (the collect rule)
//===----------------------------------------------------------------------===//

TEST(Sem, CollectReclaimsUnreachableUnr) {
  auto M = std::make_unique<ir::Module>();
  M->Name = "t";
  // Allocate an unrestricted cell and drop every reference to it.
  M->Funcs.push_back(function(
      {"main"}, FunType::get({}, arrow({}, {})), {},
      {iconst(7), structMalloc({Size::constant(32)}, Qual::unr()),
       memUnpack(arrow({}, {}), {}, {drop()})}));
  link::LinkOptions Opts;
  Opts.TypeCheck = false;
  auto Mach = link::instantiate({M.get()}, Opts);
  ASSERT_TRUE(bool(Mach));
  auto R = (*Mach)->invoke(0, 0, {}, {});
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_EQ((*Mach)->store().Mem.Unr.size(), 1u);
  uint64_t Reclaimed = (*Mach)->collect();
  EXPECT_EQ(Reclaimed, 1u);
  EXPECT_TRUE((*Mach)->store().Mem.Unr.empty());
}

TEST(Sem, CollectKeepsReachableCells) {
  auto M = std::make_unique<ir::Module>();
  M->Name = "t";
  // Return the reference: it is a root during collection.
  Type RefOut(exLocPT(Type(refPT(Privilege::RW, Loc::var(0),
                                 structHT({{i32T(), Size::constant(32)}})),
                           Qual::unr())),
              Qual::unr());
  M->Funcs.push_back(function(
      {"main"}, FunType::get({}, arrow({}, {RefOut})), {},
      {iconst(7), structMalloc({Size::constant(32)}, Qual::unr())}));
  link::LinkOptions Opts;
  Opts.TypeCheck = false;
  auto Mach = link::instantiate({M.get()}, Opts);
  ASSERT_TRUE(bool(Mach));
  auto R = (*Mach)->invoke(0, 0, {}, {});
  ASSERT_TRUE(bool(R));
  // The result still sits in the machine's final program; re-arm a config
  // holding it as a root.
  (*Mach)->setupProgram(0, {});
  (*Mach)->config().Locals.push_back((*R)[0]);
  EXPECT_EQ((*Mach)->collect(), 0u);
  EXPECT_EQ((*Mach)->store().Mem.Unr.size(), 1u);
}

TEST(Sem, CollectFinalizesLinearOwnedByGc) {
  // A linear cell whose only reference lives inside an unrestricted cell:
  // collecting the unrestricted cell finalizes the linear one (the paper's
  // GC-owns-linear-memory story).
  auto M = std::make_unique<ir::Module>();
  M->Name = "t";
  M->Funcs.push_back(function(
      {"main"}, FunType::get({}, arrow({}, {})), {},
      {// lin cell
       iconst(1), structMalloc({Size::constant(32)}, Qual::lin()),
       memUnpack(arrow({}, {}), {},
                 {// unr cell holding the linear ref (64-bit slot)
                  structMalloc({Size::constant(64)}, Qual::unr()),
                  memUnpack(arrow({}, {}), {}, {drop()})})}));
  link::LinkOptions Opts;
  Opts.TypeCheck = false;
  auto Mach = link::instantiate({M.get()}, Opts);
  ASSERT_TRUE(bool(Mach));
  auto R = (*Mach)->invoke(0, 0, {}, {});
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_EQ((*Mach)->store().Mem.Lin.size(), 1u);
  EXPECT_EQ((*Mach)->store().Mem.Unr.size(), 1u);
  uint64_t Reclaimed = (*Mach)->collect();
  EXPECT_EQ(Reclaimed, 2u);
  EXPECT_TRUE((*Mach)->store().Mem.Lin.empty());
  EXPECT_EQ((*Mach)->store().Mem.FinalizedLin, 1u);
}

//===----------------------------------------------------------------------===//
// Globals and start functions
//===----------------------------------------------------------------------===//

TEST(Sem, GlobalInitAndStart) {
  auto M = std::make_unique<ir::Module>();
  M->Name = "t";
  ir::Global G;
  G.Mut = true;
  G.P = numPT(NumType::I32);
  G.Init = {iconst(5)};
  M->Globals.push_back(G);
  // start: g0 := g0 * 2
  M->Funcs.push_back(function({}, FunType::get({}, arrow({}, {})), {},
                              {getGlobal(0), iconst(2), mulI32(),
                               setGlobal(0)}));
  M->Funcs.push_back(function({"read"},
                              FunType::get({}, arrow({}, {i32T()})), {},
                              {getGlobal(0)}));
  M->Start = 0;
  auto Mach = link::instantiate({M.get()});
  ASSERT_TRUE(bool(Mach)) << Mach.error().message();
  auto R = (*Mach)->invoke(0, 1, {}, {});
  ASSERT_TRUE(bool(R));
  EXPECT_EQ((*R)[0].bits(), 10u);
}

//===----------------------------------------------------------------------===//
// Single-stepping (the property-test interface)
//===----------------------------------------------------------------------===//

TEST(Sem, SingleSteppingReachesDone) {
  auto M = std::make_unique<ir::Module>();
  M->Name = "t";
  M->Funcs.push_back(function({"main"},
                              FunType::get({}, arrow({}, {i32T()})), {},
                              {iconst(2), iconst(3), addI32()}));
  link::LinkOptions Opts;
  Opts.TypeCheck = false;
  auto Mach = link::instantiate({M.get()}, Opts);
  ASSERT_TRUE(bool(Mach));
  (*Mach)->setupInvoke(0, 0, {}, {});
  uint64_t N = 0;
  while ((*Mach)->step() == StepStatus::Stepped)
    ++N;
  EXPECT_GT(N, 2u);
  EXPECT_EQ((*Mach)->step(), StepStatus::Done);
}
