//===- tests/soundness_test.cpp - Type safety, property-based (§4.1) ------===//
//
// The executable stand-in for the paper's Coq proof of progress and
// preservation. A generator produces random RichWasm programs that are
// well-typed *by construction*; for each seed we check:
//
//   1. the generator's output indeed passes the RichWasm checker
//      (cross-validating generator and checker against each other);
//   2. PROGRESS: single-stepping never reports Stuck — every well-typed
//      non-value configuration reduces (traps only at the sanctioned
//      partial operations, which the generator avoids);
//   3. the LINEAR-UNIQUENESS invariant after every step: every linear
//      memory address is owned by at most one reference across the whole
//      configuration (stack, locals, frames, globals, heap) — the runtime
//      shadow of the type system's ⊎-splitting of the linear store typing;
//   4. TYPE PRESERVATION at the observation level: the final value matches
//      the program's static result type, and all linear cells were
//      consumed (the configuration-typing rule's "no linear values remain"
//      premise);
//   5. the differential check: the lowered Wasm module computes the same
//      result.
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "link/Link.h"
#include "lower/Lower.h"
#include "sem/Machine.h"
#include "typing/Checker.h"
#include "wasm/Interp.h"
#include "wasm/Validate.h"

#include <gtest/gtest.h>

#include <random>

using namespace rw;
using namespace rw::ir;
using namespace rw::ir::build;
using namespace rw::sem;

namespace {

//===----------------------------------------------------------------------===//
// Random well-typed program generation
//===----------------------------------------------------------------------===//

/// Generates instruction sequences that leave exactly one i32 on the
/// stack, drawing from numerics, control flow, locals, and every heap
/// family — with all linear resources freed on every path.
class Gen {
public:
  Gen(uint64_t Seed) : Rng(Seed) {}

  ir::Module module() {
    ir::Module M;
    M.Name = "gen";
    // A few helper functions the main expression can call.
    uint32_t NHelpers = pick(0, 2);
    for (uint32_t I = 0; I < NHelpers; ++I) {
      FunCtx FC;
      FC.Base = 1; // One parameter.
      InstVec Body = {getLocal(0, Qual::unr())};
      genI32Tail(FC, 1, Body);
      std::vector<SizeRef> Locals = finishLocals(FC, Body);
      M.Funcs.push_back(function({},
                                 FunType::get({}, arrow({i32T()}, {i32T()})),
                                 std::move(Locals), std::move(Body)));
      Helpers.push_back(static_cast<uint32_t>(M.Funcs.size() - 1));
    }
    FunCtx FC;
    InstVec Body;
    genI32(FC, 3, Body);
    std::vector<SizeRef> Locals = finishLocals(FC, Body);
    M.Funcs.push_back(function({"main"},
                               FunType::get({}, arrow({}, {i32T()})),
                               std::move(Locals), std::move(Body)));
    return M;
  }

private:
  struct FunCtx {
    std::vector<SizeRef> Locals;
    uint32_t nextLocal(uint64_t Bits) {
      Locals.push_back(Size::constant(Bits));
      return Base + static_cast<uint32_t>(Locals.size() - 1);
    }
    std::vector<SizeRef> takeLocals() { return std::move(Locals); }
    uint32_t Base = 0;
  };

  uint32_t pick(uint32_t Lo, uint32_t Hi) {
    return Lo + static_cast<uint32_t>(Rng() % (Hi - Lo + 1));
  }

  /// Every generator local holds an i32 from the function preamble onward,
  /// so block bodies never change the local environment (empty local
  /// effects are correct everywhere).
  std::vector<SizeRef> finishLocals(FunCtx &FC, InstVec &Body) {
    InstVec Pre;
    for (size_t I = 0; I < FC.Locals.size(); ++I) {
      Pre.push_back(iconst(0));
      Pre.push_back(setLocal(FC.Base + static_cast<uint32_t>(I)));
    }
    Body.insert(Body.begin(), std::make_move_iterator(Pre.begin()),
                std::make_move_iterator(Pre.end()));
    return FC.takeLocals();
  }

  /// Emits instructions producing one i32 (with depth-bounded structure).
  void genI32(FunCtx &FC, unsigned Depth, InstVec &O) {
    unsigned Choice = Depth == 0 ? pick(0, 1) : pick(0, 9);
    switch (Choice) {
    case 0:
    case 1:
      O.push_back(iconst(static_cast<int32_t>(pick(0, 1000))));
      return;
    case 2: { // Binop.
      genI32(FC, Depth - 1, O);
      genI32(FC, Depth - 1, O);
      static const BinopKind Ops[] = {BinopKind::Add, BinopKind::Sub,
                                      BinopKind::Mul, BinopKind::And,
                                      BinopKind::Or, BinopKind::Xor};
      O.push_back(binop(NumType::I32, Ops[pick(0, 5)]));
      return;
    }
    case 3: { // Block.
      InstVec B;
      genI32(FC, Depth - 1, B);
      if (pick(0, 1))
        B.push_back(br(0));
      O.push_back(block(arrow({}, {i32T()}), {}, std::move(B)));
      return;
    }
    case 4: { // If.
      genI32(FC, Depth - 1, O);
      InstVec T, F;
      genI32(FC, Depth - 1, T);
      genI32(FC, Depth - 1, F);
      O.push_back(ifElse(arrow({}, {i32T()}), {}, std::move(T),
                         std::move(F)));
      return;
    }
    case 5: { // Local round-trip.
      uint32_t L = FC.nextLocal(32);
      genI32(FC, Depth - 1, O);
      O.push_back(setLocal(L));
      O.push_back(getLocal(L, Qual::unr()));
      return;
    }
    case 6: { // Linear struct: alloc, swap, read back, free.
      genI32(FC, Depth - 1, O);
      O.push_back(structMalloc({Size::constant(32)}, Qual::lin()));
      uint32_t L = FC.nextLocal(32);
      InstVec B = {iconst(static_cast<int32_t>(pick(0, 99))),
                   structSwap(0), setLocal(L), structFree(),
                   getLocal(L, Qual::unr())};
      O.push_back(memUnpack(arrow({}, {i32T()}), {{L, i32T()}},
                            std::move(B)));
      return;
    }
    case 7: { // Unrestricted struct: alloc, set, get (GC reclaims it).
      genI32(FC, Depth - 1, O);
      O.push_back(structMalloc({Size::constant(32)}, Qual::unr()));
      uint32_t L = FC.nextLocal(32);
      InstVec B = {iconst(static_cast<int32_t>(pick(0, 99))), structSet(0),
                   structGet(0), setLocal(L), drop(),
                   getLocal(L, Qual::unr())};
      O.push_back(memUnpack(arrow({}, {i32T()}), {{L, i32T()}},
                            std::move(B)));
      return;
    }
    case 8: { // Linear variant dispatch.
      uint32_t Tag = pick(0, 1);
      std::vector<Type> Cases = {i32T(), i32T()};
      genI32(FC, Depth - 1, O);
      O.push_back(variantMalloc(Tag, Cases, Qual::lin()));
      InstVec Arm0 = {iconst(1), addI32()};
      InstVec Arm1 = {iconst(2), addI32()};
      InstVec B = {variantCase(Qual::lin(), variantHT(Cases),
                               arrow({}, {i32T()}), {},
                               {std::move(Arm0), std::move(Arm1)})};
      O.push_back(memUnpack(arrow({}, {i32T()}), {}, std::move(B)));
      return;
    }
    case 9: { // Helper call (when available).
      if (Helpers.empty()) {
        O.push_back(iconst(7));
        return;
      }
      genI32(FC, Depth - 1, O);
      O.push_back(call(Helpers[pick(0, static_cast<uint32_t>(
                                           Helpers.size() - 1))]));
      return;
    }
    }
  }

  /// Body continuation for helpers: an i32 is on the stack; mangle it.
  void genI32Tail(FunCtx &FC, unsigned Depth, InstVec &O) {
    genI32(FC, Depth, O);
    O.push_back(addI32());
  }

  std::mt19937_64 Rng;
  std::vector<uint32_t> Helpers;
};

//===----------------------------------------------------------------------===//
// Linear-uniqueness invariant
//===----------------------------------------------------------------------===//

void countLinRefsInValue(const Value &V, std::map<uint64_t, int> &Count) {
  switch (V.kind()) {
  case ValueKind::Ref:
    if (V.loc().mem() == MemKind::Lin)
      Count[V.loc().addr()] += 1;
    break;
  case ValueKind::Mempack:
    countLinRefsInValue(V.inner(), Count);
    break;
  case ValueKind::Fold:
    countLinRefsInValue(V.inner(), Count);
    break;
  case ValueKind::Tuple:
    for (const Value &E : V.elems())
      countLinRefsInValue(E, Count);
    break;
  default:
    break;
  }
}

void countLinRefsInCode(const Code &Cd, std::map<uint64_t, int> &Count) {
  switch (Cd.K) {
  case CodeKind::Val:
    countLinRefsInValue(Cd.V, Count);
    break;
  case CodeKind::Label:
    for (const Code &B : Cd.Lbl->Body)
      countLinRefsInCode(B, Count);
    break;
  case CodeKind::Frame:
    for (const Value &L : Cd.Frm->Locals)
      countLinRefsInValue(L, Count);
    for (const Code &B : Cd.Frm->Body)
      countLinRefsInCode(B, Count);
    break;
  case CodeKind::Malloc:
    for (const Value &V : Cd.Mal->HV.Vals)
      countLinRefsInValue(V, Count);
    break;
  default:
    break;
  }
}

/// Every linear address is owned by at most one reference across the whole
/// machine state — the runtime image of the type system's disjoint
/// splitting of the linear store typing.
testing::AssertionResult linearOwnershipUnique(const Machine &M) {
  std::map<uint64_t, int> Count;
  for (const Code &Cd : M.config().Program)
    countLinRefsInCode(Cd, Count);
  for (const Value &V : M.config().Locals)
    countLinRefsInValue(V, Count);
  for (const Instance &I : M.store().Insts)
    for (const Value &G : I.Globals)
      countLinRefsInValue(G, Count);
  for (const auto &[Addr, Cell] : M.store().Mem.Lin)
    for (const Value &V : Cell.HV.Vals)
      countLinRefsInValue(V, Count);
  for (const auto &[Addr, Cell] : M.store().Mem.Unr)
    for (const Value &V : Cell.HV.Vals)
      countLinRefsInValue(V, Count);
  for (const auto &[Addr, N] : Count)
    if (N > 1)
      return testing::AssertionFailure()
             << "linear address " << Addr << " owned by " << N
             << " references";
  return testing::AssertionSuccess();
}

} // namespace

//===----------------------------------------------------------------------===//
// The parameterized soundness sweep
//===----------------------------------------------------------------------===//

class Soundness : public testing::TestWithParam<uint64_t> {};

TEST_P(Soundness, ProgressPreservationAndLinearUniqueness) {
  Gen G(GetParam());
  ir::Module M = G.module();

  // (1) Generator output is well-typed.
  Status Check = typing::checkModule(M);
  ASSERT_TRUE(Check.ok()) << Check.error().message();

  // (2)+(3) Step to completion; no Stuck states; invariant holds at every
  // intermediate configuration.
  auto Mach = link::instantiate({&M});
  ASSERT_TRUE(bool(Mach)) << Mach.error().message();
  uint32_t MainIdx = *link::findExport(M, "main");
  (*Mach)->setupInvoke(0, MainIdx, {}, {});
  uint64_t Steps = 0;
  for (;;) {
    StepStatus St = (*Mach)->step();
    if (St == StepStatus::Done)
      break;
    ASSERT_NE(St, StepStatus::Stuck)
        << "PROGRESS violated after " << Steps << " steps";
    ASSERT_NE(St, StepStatus::Trapped)
        << "generator produced a trapping program";
    ASSERT_TRUE(linearOwnershipUnique(**Mach)) << "after step " << Steps;
    ++Steps;
    ASSERT_LT(Steps, 2'000'000u) << "program did not terminate";
  }

  // (4) Observation-level preservation: one i32 result; no leaked linear
  // cells (the configuration rule's all-unrestricted premise).
  const CodeSeq &Prog = (*Mach)->config().Program;
  ASSERT_EQ(Prog.size(), 1u);
  ASSERT_EQ(Prog[0].K, CodeKind::Val);
  ASSERT_TRUE(Prog[0].V.isNum());
  EXPECT_EQ(Prog[0].V.numType(), NumType::I32);
  EXPECT_TRUE((*Mach)->store().Mem.Lin.empty())
      << "linear memory leaked by a checked program";
  uint64_t InterpResult = Prog[0].V.bits();

  // (5) Differential: the lowered module agrees.
  auto LP = lower::lowerProgram({&M});
  ASSERT_TRUE(bool(LP)) << LP.error().message();
  ASSERT_TRUE(wasm::validate(LP->Module).ok())
      << wasm::validate(LP->Module).error().message();
  wasm::WasmInstance Inst(LP->Module);
  ASSERT_TRUE(Inst.initialize().ok());
  auto R = Inst.invokeByName("gen.main", {});
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_EQ((*R)[0].asU32(), InterpResult);
  // Checked programs free all their linear cells; unrestricted garbage may
  // remain until collection.
  lower::HostGc Gc(Inst, LP->Runtime, LP->RefGlobals);
  Gc.collect();
  EXPECT_EQ(Inst.global(LP->Runtime.GLive).asU32(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Soundness,
                         testing::Range<uint64_t>(1, 251));

//===----------------------------------------------------------------------===//
// Negative soundness: mutated programs are rejected
//===----------------------------------------------------------------------===//

class Mutation : public testing::TestWithParam<uint64_t> {};

TEST_P(Mutation, LinearViolationsAreRejected) {
  // Take a well-typed program and break its linearity by duplicating or
  // dropping a linear reference; the checker must reject every mutant.
  Gen G(GetParam());
  ir::Module M = G.module();
  ASSERT_TRUE(typing::checkModule(M).ok());

  // Mutant A: allocate a linear cell and drop it.
  ir::Module MA = M;
  MA.Funcs.back().Body.insert(
      MA.Funcs.back().Body.begin(),
      {iconst(1), structMalloc({Size::constant(32)}, Qual::lin()), drop()});
  EXPECT_FALSE(typing::checkModule(MA).ok());

  // Mutant B: free an unrestricted cell.
  ir::Module MB = M;
  MB.Funcs.back().Body.insert(
      MB.Funcs.back().Body.begin(),
      {iconst(1), structMalloc({Size::constant(32)}, Qual::unr()),
       memUnpack(arrow({}, {}), {}, {structFree()})});
  EXPECT_FALSE(typing::checkModule(MB).ok());

  // Mutant C: strong-update through an unrestricted reference.
  ir::Module MC = M;
  MC.Funcs.back().Body.insert(
      MC.Funcs.back().Body.begin(),
      {i64const(1), structMalloc({Size::constant(64)}, Qual::unr()),
       memUnpack(arrow({}, {}), {},
                 {iconst(0), structSet(0), drop()})});
  EXPECT_FALSE(typing::checkModule(MC).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Mutation, testing::Range<uint64_t>(1, 26));
