//===- tests/ml_test.cpp - Core ML frontend (§5) ---------------------------===//
//
// The ML pipeline: parse → typecheck → compile to RichWasm → RichWasm
// typecheck → run in the machine → (when lowerable) run through the Wasm
// pipeline. Includes the headline Fig 1 demonstration: an ML module that
// stashes a linear reference fails RichWasm checking; the corrected
// variant passes.
//
//===----------------------------------------------------------------------===//

#include "link/Link.h"
#include "lower/Lower.h"
#include "ml/ML.h"
#include "typing/Checker.h"
#include "wasm/Interp.h"
#include "wasm/Validate.h"

#include <gtest/gtest.h>

using namespace rw;

namespace {

/// Compiles, RichWasm-checks, and runs `main ()` in the machine; returns
/// the i32 result.
Expected<uint64_t> runML(const std::string &Src) {
  Expected<ir::Module> M = ml::compileSource("m", Src);
  if (!M)
    return M.error();
  auto Mach = link::instantiate({&*M});
  if (!Mach)
    return Mach.error();
  auto Idx = link::findExport(*M, "main");
  if (!Idx)
    return Error("no main export");
  auto R = (*Mach)->invoke(0, *Idx, {}, {sem::Value::unit()});
  if (!R)
    return R.error();
  if (R->empty() || !(*R)[0].isNum())
    return Error("main did not return a number");
  return (*R)[0].bits();
}

/// Same, but through lower → validate → Wasm interpreter.
Expected<uint64_t> runMLWasm(const std::string &Src) {
  Expected<ir::Module> M = ml::compileSource("m", Src);
  if (!M)
    return M.error();
  auto LP = lower::lowerProgram({&*M});
  if (!LP)
    return LP.error();
  if (Status S = wasm::validate(LP->Module); !S)
    return Error("validate: " + S.error().message());
  wasm::WasmInstance Inst(LP->Module);
  if (Status S = Inst.initialize(); !S)
    return S.error();
  auto R = Inst.invokeByName("m.main", {});
  if (!R)
    return R.error();
  if (R->empty())
    return Error("no result");
  return (*R)[0].Bits;
}

void expectML(const std::string &Src, uint64_t Want) {
  Expected<uint64_t> R = runML(Src);
  ASSERT_TRUE(bool(R)) << R.error().message();
  EXPECT_EQ(*R, Want);
  Expected<uint64_t> W = runMLWasm(Src);
  ASSERT_TRUE(bool(W)) << W.error().message();
  EXPECT_EQ(*W, Want);
}

} // namespace

//===----------------------------------------------------------------------===//
// Basics
//===----------------------------------------------------------------------===//

TEST(ML, Arithmetic) {
  expectML("export fun main (u : unit) : int = 2 * 3 * 7 ;;", 42);
}

TEST(ML, LetAndComparison) {
  expectML("export fun main (u : unit) : int = "
           "let x = 40 in if x < 41 then x + 2 else 0 ;;",
           42);
}

TEST(ML, DirectCallsAndRecursion) {
  expectML("fun fact (n : int) : int = "
           "  if n = 0 then 1 else n * fact (n - 1) ;;"
           "export fun main (u : unit) : int = fact 5 ;;",
           120);
}

TEST(ML, PairsAreBoxed) {
  expectML("export fun main (u : unit) : int = "
           "let p = (40, 2) in fst p + snd p ;;",
           42);
}

TEST(ML, SumsAndCase) {
  expectML("export fun main (u : unit) : int = "
           "let s = inl [unit] 21 in "
           "case s of inl x => x * 2 | inr y => 0 end ;;",
           42);
}

TEST(ML, ReferencesShareState) {
  expectML("export fun main (u : unit) : int = "
           "let r = ref 40 in r := !r + 2; !r ;;",
           42);
}

TEST(ML, GlobalsAcrossCalls) {
  expectML("global counter = ref 0 ;;"
           "fun bump (u : unit) : unit = counter := !counter + 14 ;;"
           "export fun main (u : unit) : int = "
           "  bump (); bump (); bump (); !counter ;;",
           42);
}

//===----------------------------------------------------------------------===//
// Closures (typed closure conversion)
//===----------------------------------------------------------------------===//

TEST(ML, CurriedAddition) {
  expectML("fun add (x : int) : int -> int = fn (y : int) => x + y ;;"
           "export fun main (u : unit) : int = (add 40) 2 ;;",
           42);
}

TEST(ML, ClosureCapturesMultipleVars) {
  expectML("export fun main (u : unit) : int = "
           "let a = 30 in let b = 10 in let c = 2 in "
           "let f = fn (x : int) => a + b + c + x in f 0 ;;",
           42);
}

TEST(ML, HigherOrderFunctions) {
  expectML("fun twice (f : int -> int) : int -> int = "
           "  fn (x : int) => f (f x) ;;"
           "export fun main (u : unit) : int = "
           "  (twice (fn (x : int) => x + 20)) 2 ;;",
           42);
}

TEST(ML, ClosureOverReference) {
  expectML("export fun main (u : unit) : int = "
           "let r = ref 0 in "
           "let inc = fn (n : int) => (r := !r + n) in "
           "let d1 = inc 40 in let d2 = inc 2 in !r ;;",
           42);
}

//===----------------------------------------------------------------------===//
// Parametric polymorphism (the annotation phase)
//===----------------------------------------------------------------------===//

TEST(ML, PolymorphicIdentity) {
  expectML("fun id ['a] (x : 'a) : 'a = x ;;"
           "export fun main (u : unit) : int = id 41 + 1 ;;",
           42);
}

TEST(ML, PolymorphicAtBoxedTypes) {
  expectML("fun id ['a] (x : 'a) : 'a = x ;;"
           "export fun main (u : unit) : int = "
           "  let p = id (40, 2) in fst p + snd (id p) ;;",
           42);
}

TEST(ML, PolymorphicSwap) {
  expectML("fun swap ['a 'b] (p : 'a * 'b) : 'b * 'a = (snd p, fst p) ;;"
           "export fun main (u : unit) : int = "
           "  let q = swap (2, 40) in fst q + snd q ;;",
           42);
}

TEST(ML, TypeParameterInferenceFailureReported) {
  auto M = ml::compileSource(
      "m", "fun weird ['a] (x : int) : int = x ;;"
           "export fun main (u : unit) : int = weird 1 ;;");
  ASSERT_FALSE(bool(M));
  EXPECT_NE(M.error().message().find("infer"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Linking types: lin and linref (ref_to_lin)
//===----------------------------------------------------------------------===//

TEST(ML, LinRefTakePutRoundTrip) {
  // A linref cell holding a linear value: put then take works; taking
  // returns the linear reference which main must consume (here: by
  // storing it back before returning).
  const char *Src =
      "global c = linref [ref int] () ;;"
      "export fun put (r : lin (ref int)) : unit = c := r ;;"
      "export fun take (u : unit) : lin (ref int) = !c ;;"
      "export fun main (u : unit) : int = 42 ;;";
  expectML(Src, 42);
}

TEST(ML, Fig1StashRejectedByRichWasm) {
  // THE Fig 1 / Fig 3 headline: stash duplicates its linear argument
  // (stores it AND returns it). The ML checker accepts this — linearity is
  // not ML's concern — but the compiled RichWasm module must not typecheck.
  const char *Src =
      "global c = linref [ref int] () ;;"
      "export fun stash (r : lin (ref int)) : lin (ref int) = c := r; r ;;"
      "export fun get_stashed (u : unit) : lin (ref int) = !c ;;";
  Expected<ir::Module> M = ml::compileSource("ml", Src);
  ASSERT_TRUE(bool(M)) << M.error().message(); // ML itself accepts.
  Status S = typing::checkModule(*M);
  ASSERT_FALSE(S.ok()); // RichWasm statically rejects the duplication.
  EXPECT_NE(S.error().message().find("get_local"), std::string::npos);
}

TEST(ML, Fig1SafeVariantAccepted) {
  // The corrected module (stash does not return the reference) compiles
  // AND typechecks at the RichWasm level.
  const char *Src =
      "global c = linref [ref int] () ;;"
      "export fun stash (r : lin (ref int)) : unit = c := r ;;"
      "export fun get_stashed (u : unit) : lin (ref int) = !c ;;";
  Expected<ir::Module> M = ml::compileSource("ml", Src);
  ASSERT_TRUE(bool(M)) << M.error().message();
  Status S = typing::checkModule(*M);
  EXPECT_TRUE(S.ok()) << S.error().message();
}

TEST(ML, DoubleTakeTrapsAtRuntime) {
  // Taking from an emptied linref cell is the runtime failure the paper
  // describes for ref_to_lin (not a memory-safety violation).
  // Note: `let x = !c in 0` (discarding the taken value) is *statically*
  // rejected by RichWasm as a linear leak; this variant consumes x
  // properly, so the only failure is the dynamic take-from-empty.
  const char *Src =
      "global c = linref [ref int] () ;;"
      "export fun main (u : unit) : int = "
      "  let x = !c in (c := x; 0) ;;"; // take from an empty cell
  Expected<ir::Module> M = ml::compileSource("m", Src);
  ASSERT_TRUE(bool(M)) << M.error().message();
  auto Mach = link::instantiate({&*M});
  ASSERT_TRUE(bool(Mach)) << Mach.error().message();
  auto Idx = link::findExport(*M, "main");
  ASSERT_TRUE(Idx.has_value());
  auto R = (*Mach)->invoke(0, *Idx, {}, {sem::Value::unit()});
  ASSERT_FALSE(bool(R));
  EXPECT_NE(R.error().message().find("trap"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Surface errors
//===----------------------------------------------------------------------===//

TEST(ML, TypeErrorsReported) {
  EXPECT_FALSE(bool(ml::compileSource(
      "m", "export fun main (u : unit) : int = (1, 2) + 3 ;;")));
  EXPECT_FALSE(bool(ml::compileSource(
      "m", "export fun main (u : unit) : int = !5 ;;")));
  EXPECT_FALSE(bool(ml::compileSource(
      "m", "export fun main (u : unit) : int = undefined_var ;;")));
  EXPECT_FALSE(bool(ml::compileSource(
      "m", "export fun main (u : unit) : int = 1 ;")));
}

TEST(ML, LinInsideAggregatesRejected) {
  EXPECT_FALSE(bool(ml::compileSource(
      "m", "export fun main (r : lin (ref int)) : int = "
           "let p = (r, 2) in 0 ;;")));
}
