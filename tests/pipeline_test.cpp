//===- tests/pipeline_test.cpp - Corpus-driven end-to-end sweeps ----------===//
//
// A parameterized corpus of ML programs, each pushed through the entire
// stack: parse → ML check → compile → RichWasm check → machine run, and
// lower → Wasm validate → encode → decode → Wasm run — asserting the two
// executions agree (google-test TEST_P over the corpus).
//
//===----------------------------------------------------------------------===//

#include "link/Link.h"
#include "lower/Lower.h"
#include "ml/ML.h"
#include "typing/Checker.h"
#include "wasm/Binary.h"
#include "wasm/Interp.h"
#include "wasm/Validate.h"

#include <gtest/gtest.h>

using namespace rw;

namespace {

struct Program {
  const char *Name;
  const char *Src;
  uint64_t Expected;
  /// False when the program mutates persistent globals (a second run
  /// continues from the mutated state).
  bool Rerunnable = true;
};

const Program Corpus[] = {
    {"ackermann_small",
     "fun ack (p : int * int) : int = "
     "  let m = fst p in let n = snd p in "
     "  if m = 0 then n + 1 "
     "  else if n = 0 then ack (m - 1, 1) "
     "  else ack (m - 1, ack (m, n - 1)) ;;"
     "export fun main (u : unit) : int = ack (2, 3) ;;",
     9},
    {"fib_recursive",
     "fun fib (n : int) : int = "
     "  if n < 2 then n else fib (n - 1) + fib (n - 2) ;;"
     "export fun main (u : unit) : int = fib 10 ;;",
     55},
    {"church_like_composition",
     "fun compose (f : int -> int) : (int -> int) -> int -> int = "
     "  fn (g : int -> int) => fn (x : int) => f (g x) ;;"
     "export fun main (u : unit) : int = "
     "  let add3 = fn (x : int) => x + 3 in "
     "  let dbl = fn (x : int) => x * 2 in "
     "  ((compose add3) dbl) 6 ;;", // 6*2+3
     15},
    {"sum_tree_of_options",
     "fun getOr (s : int + unit) : int = "
     "  case s of inl x => x | inr y => 0 end ;;"
     "export fun main (u : unit) : int = "
     "  getOr (inl [unit] 40) + getOr (inr [int] ()) + 2 ;;",
     42},
    {"mutable_accumulator_closure",
     "export fun main (u : unit) : int = "
     "  let acc = ref 0 in "
     "  let add = fn (n : int) => (acc := !acc + n) in "
     "  let a = add 10 in let b = add 30 in let c = add 2 in !acc ;;",
     42},
    {"global_counter_chain",
     "global g = ref 5 ;;"
     "fun touch (n : int) : int = (g := !g + n); !g ;;"
     "export fun main (u : unit) : int = touch 7 + touch 0 * 0 ;;",
     12, /*Rerunnable=*/false},
    {"polymorphic_pipeline",
     "fun id ['a] (x : 'a) : 'a = x ;;"
     "fun dup ['a] (x : 'a) : 'a * 'a = (x, x) ;;"
     "export fun main (u : unit) : int = "
     "  let p = dup (id 21) in fst p + snd p ;;",
     42},
    {"nested_pairs",
     "export fun main (u : unit) : int = "
     "  let p = ((1, 2), (3, (4, 5))) in "
     "  fst (fst p) + snd (fst p) + fst (snd p) + fst (snd (snd p)) "
     "  + snd (snd (snd p)) ;;",
     15},
    {"higher_order_fold_unrolled",
     "fun apply3 (f : int -> int) : int -> int = "
     "  fn (x : int) => f (f (f x)) ;;"
     "export fun main (u : unit) : int = "
     "  (apply3 (fn (x : int) => x * 2)) 5 ;;",
     40},
    {"ref_of_pair_updates",
     "export fun main (u : unit) : int = "
     "  let r = ref (1, 2) in "
     "  r := (20, 22); fst !r + snd !r ;;",
     42},
};

class Pipeline : public testing::TestWithParam<Program> {};

} // namespace

TEST_P(Pipeline, MachineAndWasmAgree) {
  const Program &P = GetParam();
  Expected<ir::Module> M = ml::compileSource("m", P.Src);
  ASSERT_TRUE(bool(M)) << M.error().message();

  // The compiled module satisfies the RichWasm judgment.
  Status Check = typing::checkModule(*M);
  ASSERT_TRUE(Check.ok()) << Check.error().message();

  // Machine execution.
  auto Mach = link::instantiate({&*M});
  ASSERT_TRUE(bool(Mach)) << Mach.error().message();
  auto R1 = (*Mach)->invoke(0, *link::findExport(*M, "main"), {},
                            {sem::Value::unit()});
  ASSERT_TRUE(bool(R1)) << R1.error().message();
  EXPECT_EQ((*R1)[0].bits(), P.Expected);
  // No linear leaks (these programs use only unrestricted data).
  EXPECT_TRUE((*Mach)->store().Mem.Lin.empty());

  // Lowered execution, through the binary codec.
  auto LP = lower::lowerProgram({&*M});
  ASSERT_TRUE(bool(LP)) << LP.error().message();
  ASSERT_TRUE(wasm::validate(LP->Module).ok())
      << wasm::validate(LP->Module).error().message();
  auto M2 = wasm::decode(wasm::encode(LP->Module));
  ASSERT_TRUE(bool(M2)) << M2.error().message();
  ASSERT_TRUE(wasm::validate(*M2).ok());
  wasm::WasmInstance Inst(*M2);
  ASSERT_TRUE(Inst.initialize().ok());
  auto R2 = Inst.invokeByName("m.main", {});
  ASSERT_TRUE(bool(R2)) << R2.error().message();
  EXPECT_EQ((*R2)[0].Bits, P.Expected);

  // After a host collection, closure/pair garbage is reclaimed and only
  // globally-reachable cells survive; pure programs recompute the same
  // answer on the collected heap.
  lower::HostGc Gc(Inst, LP->Runtime, LP->RefGlobals);
  Gc.collect();
  if (P.Rerunnable) {
    auto R3 = Inst.invokeByName("m.main", {});
    ASSERT_TRUE(bool(R3)) << R3.error().message();
    EXPECT_EQ((*R3)[0].Bits, P.Expected) << "run-after-GC disagrees";
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, Pipeline, testing::ValuesIn(Corpus),
                         [](const testing::TestParamInfo<Program> &I) {
                           return std::string(I.param.Name);
                         });
