//===- tests/wasm_decode_test.cpp - Adversarial wasm::decode battery ------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// Mirrors serial_test.cpp's adversarial posture for the wasm container
// route (PR 8): the decoder must be *total* on arbitrary bytes — every
// input either yields a module or a structured IngestError with a
// category and byte offset, never a crash, hang, or unbounded
// allocation. Well-formed encoder output must round-trip bit-identically
// (encode(decode(B)) == B), which the strict canonical LEB rules make
// possible.
//
//===----------------------------------------------------------------------===//

#include "bench/Common.h"
#include "ingest/Limits.h"
#include "lower/Lower.h"
#include "support/LEB128.h"
#include "wasm/Binary.h"
#include "wasm/Validate.h"

#include <gtest/gtest.h>

#include <random>

using namespace rw;
using ingest::Category;
using ingest::IngestError;
using ingest::Limits;

namespace {

std::vector<uint8_t> encodeBench(const ir::Module &M) {
  Expected<lower::LoweredProgram> LP = lower::lowerProgram({&M}, {});
  EXPECT_TRUE(LP) << (LP ? "" : LP.error().message());
  return wasm::encode(LP->Module);
}

// Minimal valid module: just the 8-byte header.
std::vector<uint8_t> emptyModule() {
  return {0x00, 0x61, 0x73, 0x6d, 0x01, 0x00, 0x00, 0x00};
}

TEST(WasmDecode, EmptyHeaderOnlyModule) {
  IngestError E;
  Expected<wasm::WModule> M = wasm::decode(emptyModule(), Limits(), &E);
  ASSERT_TRUE(M) << M.error().message();
  EXPECT_EQ(M->Funcs.size(), 0u);
  EXPECT_EQ(E.Cat, Category::None);
}

TEST(WasmDecode, CorruptMagic) {
  std::vector<uint8_t> B = emptyModule();
  B[1] = 0x62;
  IngestError E;
  Expected<wasm::WModule> M = wasm::decode(B, Limits(), &E);
  ASSERT_FALSE(M);
  EXPECT_EQ(E.Cat, Category::BadMagic);
  EXPECT_EQ(E.Offset, 0u);
}

TEST(WasmDecode, CorruptVersion) {
  std::vector<uint8_t> B = emptyModule();
  B[4] = 0x02;
  IngestError E;
  Expected<wasm::WModule> M = wasm::decode(B, Limits(), &E);
  ASSERT_FALSE(M);
  EXPECT_EQ(E.Cat, Category::Unsupported);
  EXPECT_EQ(E.Offset, 4u);
}

TEST(WasmDecode, RoundTripStabilityOnBenchModules) {
  ir::Module Mods[] = {rwbench::loopModule(10), rwbench::allocModule(4, true),
                       rwbench::allocModule(4, false), rwbench::wideModule(6)};
  for (const ir::Module &Src : Mods) {
    std::vector<uint8_t> B = encodeBench(Src);
    ASSERT_FALSE(B.empty());
    IngestError E;
    Expected<wasm::WModule> M = wasm::decode(B, Limits(), &E);
    ASSERT_TRUE(M) << Src.Name << ": " << M.error().message();
    EXPECT_TRUE(wasm::validate(*M).ok()) << Src.Name;
    // Canonical-LEB strictness is what makes this an equality, not just
    // a semantic equivalence.
    EXPECT_EQ(wasm::encode(*M), B) << Src.Name;
  }
}

TEST(WasmDecode, EveryPrefixTruncationRejectsCleanly) {
  std::vector<uint8_t> B = encodeBench(rwbench::loopModule(4));
  ASSERT_GT(B.size(), 8u);
  size_t Accepted = 0;
  for (size_t Len = 0; Len < B.size(); ++Len) {
    std::vector<uint8_t> P(B.begin(), B.begin() + Len);
    IngestError E;
    Expected<wasm::WModule> M = wasm::decode(P, Limits(), &E);
    if (M) {
      // A prefix ending exactly at a section boundary is itself a valid
      // (smaller) module — it must round-trip like any other.
      ++Accepted;
      EXPECT_EQ(wasm::encode(*M), P) << "accepted prefix at " << Len;
    } else {
      EXPECT_NE(E.Cat, Category::None) << Len;
      EXPECT_LE(E.Offset, Len) << "offset past available input at " << Len;
    }
  }
  // Only a handful of section boundaries exist; nearly every cut must be
  // a structured rejection.
  EXPECT_LT(Accepted, 8u);
}

TEST(WasmDecode, BitFlipSweepIsTotal) {
  std::vector<uint8_t> B = encodeBench(rwbench::wideModule(4));
  ASSERT_GT(B.size(), 8u);
  std::mt19937_64 Rng(0x5eed);
  size_t Accepted = 0, Rejected = 0;
  for (int I = 0; I < 600; ++I) {
    std::vector<uint8_t> Mut = B;
    size_t Byte = Rng() % Mut.size();
    Mut[Byte] ^= uint8_t(1) << (Rng() % 8);
    IngestError E;
    Expected<wasm::WModule> M = wasm::decode(Mut, Limits(), &E);
    if (M) {
      ++Accepted;
      // Whatever survives decoding must still encode without tripping
      // any internal invariant.
      (void)wasm::encode(*M);
    } else {
      ++Rejected;
      EXPECT_NE(E.Cat, Category::None);
    }
  }
  // Flips landing in const immediates stay well-formed, but flips in any
  // structural byte must be caught — a decoder that rejects almost
  // nothing is not actually checking.
  EXPECT_GT(Rejected, 100u);
  EXPECT_EQ(Accepted + Rejected, 600u);
}

TEST(WasmDecode, HostileTypeCountRejectedBeforeAllocation) {
  // Type section claiming 2^32-1 entries in a 5-byte section.
  std::vector<uint8_t> B = emptyModule();
  B.insert(B.end(), {0x01, 0x05, 0xff, 0xff, 0xff, 0xff, 0x0f});
  IngestError E;
  Expected<wasm::WModule> M = wasm::decode(B, Limits(), &E);
  ASSERT_FALSE(M);
  // Either the policy cap or the bytes-remaining plausibility check may
  // fire first; both are resource-safe structured rejections.
  EXPECT_TRUE(E.Cat == Category::LimitExceeded || E.Cat == Category::Malformed)
      << ingest::categoryName(E.Cat);
}

TEST(WasmDecode, LocalsAmplificationRejected) {
  // One empty-type function whose body declares 2^32-1 i32 locals in a
  // 4-byte RLE — the classic decompression bomb.
  std::vector<uint8_t> B = emptyModule();
  B.insert(B.end(), {0x01, 0x04, 0x01, 0x60, 0x00, 0x00}); // type [] -> []
  B.insert(B.end(), {0x03, 0x02, 0x01, 0x00});             // func section
  B.insert(B.end(), {0x0a, 0x0a, 0x01,                     // code section
                     0x08,                                 // body size
                     0x01,                                 // 1 locals run
                     0xff, 0xff, 0xff, 0xff, 0x0f,         // count 2^32-1
                     0x7f,                                 // i32
                     0x0b});                               // end
  IngestError E;
  Expected<wasm::WModule> M = wasm::decode(B, Limits(), &E);
  ASSERT_FALSE(M);
  EXPECT_EQ(E.Cat, Category::LimitExceeded);
}

TEST(WasmDecode, DeepNestingCapped) {
  // 600 nested void blocks exceeds MaxNestingDepth = 256.
  std::vector<uint8_t> Body;
  for (int I = 0; I < 600; ++I)
    Body.insert(Body.end(), {0x02, 0x40}); // block (result void)
  for (int I = 0; I < 600; ++I)
    Body.push_back(0x0b); // end
  Body.push_back(0x0b);   // function end

  std::vector<uint8_t> Code;
  Code.push_back(0x01); // one body
  encodeULEB128(Body.size() + 1, Code);
  Code.push_back(0x00); // no locals
  Code.insert(Code.end(), Body.begin(), Body.end());

  std::vector<uint8_t> B = emptyModule();
  B.insert(B.end(), {0x01, 0x04, 0x01, 0x60, 0x00, 0x00});
  B.insert(B.end(), {0x03, 0x02, 0x01, 0x00});
  B.push_back(0x0a);
  encodeULEB128(Code.size(), B);
  B.insert(B.end(), Code.begin(), Code.end());

  IngestError E;
  Expected<wasm::WModule> M = wasm::decode(B, Limits(), &E);
  ASSERT_FALSE(M);
  EXPECT_EQ(E.Cat, Category::LimitExceeded);

  Limits Unl = Limits::unlimited();
  Expected<wasm::WModule> M2 = wasm::decode(B, Unl, nullptr);
  EXPECT_TRUE(M2) << "same bytes admissible when the policy allows depth";
}

TEST(WasmDecode, SectionOrderEnforced) {
  // Function section (3) before type section (1): non-custom section ids
  // must be strictly increasing.
  std::vector<uint8_t> B = emptyModule();
  B.insert(B.end(), {0x03, 0x01, 0x00});                   // empty func sec
  B.insert(B.end(), {0x01, 0x01, 0x00});                   // empty type sec
  IngestError E;
  Expected<wasm::WModule> M = wasm::decode(B, Limits(), &E);
  ASSERT_FALSE(M);
  EXPECT_EQ(E.Cat, Category::Malformed);
}

TEST(WasmDecode, SectionSizeOverrunRejected) {
  // Section claims 0x20 bytes but only 2 remain.
  std::vector<uint8_t> B = emptyModule();
  B.insert(B.end(), {0x01, 0x20, 0x00, 0x00});
  IngestError E;
  Expected<wasm::WModule> M = wasm::decode(B, Limits(), &E);
  ASSERT_FALSE(M);
  EXPECT_EQ(E.Cat, Category::Truncated);
}

TEST(WasmDecode, OverlongSectionSizeRejected) {
  // Zero-padded LEB for a section size: canonical-form violation.
  std::vector<uint8_t> B = emptyModule();
  B.insert(B.end(), {0x01, 0x80, 0x00});
  IngestError E;
  Expected<wasm::WModule> M = wasm::decode(B, Limits(), &E);
  ASSERT_FALSE(M);
  EXPECT_EQ(E.Cat, Category::Malformed);
  EXPECT_EQ(E.Offset, 10u) << "offset of the redundant terminal LEB byte";
}

TEST(WasmDecode, FuncCodeCountMismatchRejected) {
  // Function section declares one function, code section delivers none.
  std::vector<uint8_t> B = emptyModule();
  B.insert(B.end(), {0x01, 0x04, 0x01, 0x60, 0x00, 0x00});
  B.insert(B.end(), {0x03, 0x02, 0x01, 0x00});
  B.insert(B.end(), {0x0a, 0x01, 0x00});
  IngestError E;
  Expected<wasm::WModule> M = wasm::decode(B, Limits(), &E);
  ASSERT_FALSE(M);
  EXPECT_EQ(E.Cat, Category::Malformed);
}

TEST(WasmDecode, ModuleBytesBudget) {
  std::vector<uint8_t> B = encodeBench(rwbench::loopModule(4));
  Limits L;
  L.MaxModuleBytes = B.size() - 1;
  IngestError E;
  Expected<wasm::WModule> M = wasm::decode(B, L, &E);
  ASSERT_FALSE(M);
  EXPECT_EQ(E.Cat, Category::TooLarge);

  L.MaxModuleBytes = B.size();
  EXPECT_TRUE(wasm::decode(B, L, nullptr));
}

TEST(WasmDecode, AllocationBudgetEnforced) {
  std::vector<uint8_t> B = encodeBench(rwbench::wideModule(8));
  Limits L;
  L.MaxTotalAlloc = 64; // absurdly small — decode must charge and stop
  IngestError E;
  Expected<wasm::WModule> M = wasm::decode(B, L, &E);
  ASSERT_FALSE(M);
  EXPECT_EQ(E.Cat, Category::LimitExceeded);
  EXPECT_NE(E.Context.find("allocation budget"), std::string::npos);
}

TEST(WasmDecode, ValidatorCapsOperandDepth) {
  // A function pushing 40 constants overruns a 32-slot operand budget at
  // validation time (the decoder itself only bounds the *encoded* size).
  std::vector<uint8_t> Body;
  for (int I = 0; I < 40; ++I)
    Body.insert(Body.end(), {0x41, 0x00}); // i32.const 0
  for (int I = 0; I < 40; ++I)
    Body.push_back(0x1a); // drop
  Body.push_back(0x0b);

  std::vector<uint8_t> Code;
  Code.push_back(0x01);
  encodeULEB128(Body.size() + 1, Code);
  Code.push_back(0x00);
  Code.insert(Code.end(), Body.begin(), Body.end());

  std::vector<uint8_t> B = emptyModule();
  B.insert(B.end(), {0x01, 0x04, 0x01, 0x60, 0x00, 0x00});
  B.insert(B.end(), {0x03, 0x02, 0x01, 0x00});
  B.push_back(0x0a);
  encodeULEB128(Code.size(), B);
  B.insert(B.end(), Code.begin(), Code.end());

  Expected<wasm::WModule> M = wasm::decode(B, Limits(), nullptr);
  ASSERT_TRUE(M) << M.error().message();
  EXPECT_TRUE(wasm::validate(*M, 64).ok());
  Status S = wasm::validate(*M, 32);
  ASSERT_FALSE(S.ok());
  EXPECT_NE(S.error().message().find("operand stack depth"),
            std::string::npos);
}

TEST(WasmDecode, RejectionLeavesNoPartialState) {
  // Repeated rejection of a large-ish corrupt module must not accumulate
  // anything — decode owns all intermediate storage.
  std::vector<uint8_t> B = encodeBench(rwbench::wideModule(6));
  B[B.size() / 2] ^= 0xff;
  B.back() ^= 0xff;
  for (int I = 0; I < 100; ++I) {
    IngestError E;
    Expected<wasm::WModule> M = wasm::decode(B, Limits(), &E);
    if (M)
      break; // corruption happened to stay well-formed; fine
  }
  SUCCEED();
}

} // namespace
