//===- l3/L3.h - L3 frontend (§5) --------------------------------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The manually-managed source language of §5: core L3 [Morrisett, Ahmed,
/// Fluet], a linear language with locations and safe strong updates,
/// adjusted per the paper so capabilities carry the size of the memory they
/// reference. Its types:
///
///   τ ::= unit | int | !τ | τ ⊗ τ | τ ⊸ τ | Cell τ | Ref τ
///
/// `Cell τ` is the ∃ρ. (Cap ρ τ sz ⊗ !Ptr ρ) package `new` returns —
/// ownership (the capability) travels separately from the address. The
/// linking-types FFI extensions add the ML-style `Ref τ` (a joined
/// capability+pointer, exactly ML's `lin (ref τ)` representation, so the
/// two compilers agree at boundaries) and `join`/`split` to convert.
///
/// The checker enforces linearity: every linear variable is used exactly
/// once. Compilation is single-phase (no closure conversion — functions
/// are top level), mapping new/free/swap to RichWasm's struct.malloc /
/// struct.free / struct.swap, and join/split to ref.join / ref.split with
/// mem.pack/mem.unpack around them.
///
/// Concrete syntax:
///
///   import mod.name : type ;;
///   export? fun name (x : type) : type = expr ;;
///
///   expr ::= let (x , y) = e in e | let x = e in e | e ; e
///          | e (+|-|*) e | n | () | x | (e , e)
///          | new e | free e | swap e e | join e | split e | f e
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_L3_L3_H
#define RICHWASM_L3_L3_H

#include "ir/Module.h"
#include "support/Error.h"

#include <memory>
#include <string>
#include <vector>

namespace rw::l3 {

struct L3Type;
using L3TypeRef = std::shared_ptr<const L3Type>;

enum class TyKind : uint8_t { Int, Unit, Bang, Tensor, Lolli, Cell, MLRef };

struct L3Type {
  TyKind K;
  L3TypeRef A, B;

  static L3TypeRef mk(TyKind K, L3TypeRef A = nullptr, L3TypeRef B = nullptr) {
    auto T = std::make_shared<L3Type>();
    T->K = K;
    T->A = std::move(A);
    T->B = std::move(B);
    return T;
  }
};

bool l3TypeEquals(const L3TypeRef &A, const L3TypeRef &B);
std::string l3TypeStr(const L3TypeRef &T);
/// A type is unrestricted when its values may be freely copied/dropped
/// (int, unit, !τ, ⊸ of top-level functions, tensors of unrestricted).
bool l3Unrestricted(const L3TypeRef &T);

enum class ExKind : uint8_t {
  Int,
  Unit,
  VarRef,
  LetPair,
  Let,
  Seq,
  Pair,
  Binop,
  App,
  New,
  Free,
  Swap,
  Join,
  Split,
};

enum class L3Op : uint8_t { Add, Sub, Mul };

struct L3Expr;
using L3ExprRef = std::shared_ptr<L3Expr>;

struct L3Expr {
  ExKind K;
  int64_t IntVal = 0;
  std::string Name, Name2;
  L3Op Op = L3Op::Add;
  std::vector<L3ExprRef> Kids;
  L3TypeRef Ty; ///< Filled by the checker.

  static L3ExprRef mk(ExKind K) {
    auto E = std::make_shared<L3Expr>();
    E->K = K;
    return E;
  }
};

struct L3Import {
  std::string Mod, Name;
  L3TypeRef Ty; ///< A ⊸ (possibly under !).
};

struct L3Fun {
  std::string Name;
  std::string Param;
  L3TypeRef ParamTy, RetTy;
  L3ExprRef Body;
  bool Exported = false;
};

struct L3Module {
  std::string Name;
  std::vector<L3Import> Imports;
  std::vector<L3Fun> Funs;
};

Expected<L3Module> parse(const std::string &Name, const std::string &Src);

/// Type-checks with full linearity enforcement (unlike ML, L3 is a linear
/// language natively).
Status typecheck(L3Module &M);

Expected<ir::Module> compile(const L3Module &M);
Expected<ir::Module> compileSource(const std::string &Name,
                                   const std::string &Src);

/// The RichWasm type an L3 type compiles to (must agree with ML's lowering
/// at FFI boundaries; in particular `Ref τ` here equals `lin (ref τ)`
/// there).
ir::Type lowerL3Type(const L3TypeRef &T);

} // namespace rw::l3

#endif // RICHWASM_L3_L3_H
