//===- l3/L3.cpp - L3 frontend ----------------------------------------------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "l3/L3.h"

#include "ir/Builder.h"
#include "ir/TypeOps.h"

#include <cassert>
#include <cctype>
#include <map>
#include <set>

using namespace rw;
using namespace rw::l3;
using namespace rw::ir;
using namespace rw::ir::build;

//===----------------------------------------------------------------------===//
// Type utilities
//===----------------------------------------------------------------------===//

bool rw::l3::l3TypeEquals(const L3TypeRef &A, const L3TypeRef &B) {
  if (A->K != B->K)
    return false;
  switch (A->K) {
  case TyKind::Int:
  case TyKind::Unit:
    return true;
  case TyKind::Bang:
  case TyKind::Cell:
  case TyKind::MLRef:
    return l3TypeEquals(A->A, B->A);
  case TyKind::Tensor:
  case TyKind::Lolli:
    return l3TypeEquals(A->A, B->A) && l3TypeEquals(A->B, B->B);
  }
  return false;
}

std::string rw::l3::l3TypeStr(const L3TypeRef &T) {
  switch (T->K) {
  case TyKind::Int:
    return "int";
  case TyKind::Unit:
    return "unit";
  case TyKind::Bang:
    return "!" + l3TypeStr(T->A);
  case TyKind::Tensor:
    return "(" + l3TypeStr(T->A) + " * " + l3TypeStr(T->B) + ")";
  case TyKind::Lolli:
    return "(" + l3TypeStr(T->A) + " -o " + l3TypeStr(T->B) + ")";
  case TyKind::Cell:
    return "Cell " + l3TypeStr(T->A);
  case TyKind::MLRef:
    return "Ref " + l3TypeStr(T->A);
  }
  return "?";
}

bool rw::l3::l3Unrestricted(const L3TypeRef &T) {
  switch (T->K) {
  case TyKind::Int:
  case TyKind::Unit:
  case TyKind::Bang:
  case TyKind::Lolli: // Top-level code pointers are copyable.
    return true;
  case TyKind::Tensor:
    return l3Unrestricted(T->A) && l3Unrestricted(T->B);
  case TyKind::Cell:
  case TyKind::MLRef:
    return false;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Lexer + parser
//===----------------------------------------------------------------------===//

namespace {

enum class Tok : uint8_t {
  Ident,
  Int,
  KwImport,
  KwExport,
  KwFun,
  KwLet,
  KwIn,
  KwNew,
  KwFree,
  KwSwap,
  KwJoin,
  KwSplit,
  KwInt,
  KwUnit,
  KwCell,
  KwRef,
  LParen,
  RParen,
  Lolli,
  Bang,
  Star,
  Plus,
  Minus,
  Eq,
  Comma,
  Semi,
  SemiSemi,
  Colon,
  Dot,
  Eof,
};

struct Token {
  Tok K = Tok::Eof;
  std::string Text;
  int64_t Num = 0;
  size_t Line = 1;
};

Expected<std::vector<Token>> lex(const std::string &S) {
  std::vector<Token> Out;
  size_t Pos = 0, Line = 1;
  while (Pos < S.size()) {
    char C = S[Pos];
    if (C == '\n') {
      ++Line;
      ++Pos;
      continue;
    }
    if (isspace(static_cast<unsigned char>(C))) {
      ++Pos;
      continue;
    }
    if (C == '(' && Pos + 1 < S.size() && S[Pos + 1] == '*') {
      Pos += 2;
      while (Pos + 1 < S.size() && !(S[Pos] == '*' && S[Pos + 1] == ')')) {
        if (S[Pos] == '\n')
          ++Line;
        ++Pos;
      }
      Pos += 2;
      continue;
    }
    Token T;
    T.Line = Line;
    if (isdigit(static_cast<unsigned char>(C))) {
      size_t Start = Pos;
      while (Pos < S.size() && isdigit(static_cast<unsigned char>(S[Pos])))
        ++Pos;
      T.K = Tok::Int;
      T.Num = std::stoll(S.substr(Start, Pos - Start));
      Out.push_back(T);
      continue;
    }
    if (isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = Pos;
      while (Pos < S.size() &&
             (isalnum(static_cast<unsigned char>(S[Pos])) || S[Pos] == '_'))
        ++Pos;
      std::string W = S.substr(Start, Pos - Start);
      T.Text = W;
      if (W == "import")
        T.K = Tok::KwImport;
      else if (W == "export")
        T.K = Tok::KwExport;
      else if (W == "fun")
        T.K = Tok::KwFun;
      else if (W == "let")
        T.K = Tok::KwLet;
      else if (W == "in")
        T.K = Tok::KwIn;
      else if (W == "new")
        T.K = Tok::KwNew;
      else if (W == "free")
        T.K = Tok::KwFree;
      else if (W == "swap")
        T.K = Tok::KwSwap;
      else if (W == "join")
        T.K = Tok::KwJoin;
      else if (W == "split")
        T.K = Tok::KwSplit;
      else if (W == "int")
        T.K = Tok::KwInt;
      else if (W == "unit")
        T.K = Tok::KwUnit;
      else if (W == "Cell")
        T.K = Tok::KwCell;
      else if (W == "Ref")
        T.K = Tok::KwRef;
      else
        T.K = Tok::Ident;
      Out.push_back(T);
      continue;
    }
    if (C == '-' && Pos + 1 < S.size() && S[Pos + 1] == 'o') {
      T.K = Tok::Lolli;
      Pos += 2;
      Out.push_back(T);
      continue;
    }
    if (C == ';' && Pos + 1 < S.size() && S[Pos + 1] == ';') {
      T.K = Tok::SemiSemi;
      Pos += 2;
      Out.push_back(T);
      continue;
    }
    switch (C) {
    case '(':
      T.K = Tok::LParen;
      break;
    case ')':
      T.K = Tok::RParen;
      break;
    case '!':
      T.K = Tok::Bang;
      break;
    case '*':
      T.K = Tok::Star;
      break;
    case '+':
      T.K = Tok::Plus;
      break;
    case '-':
      T.K = Tok::Minus;
      break;
    case '=':
      T.K = Tok::Eq;
      break;
    case ',':
      T.K = Tok::Comma;
      break;
    case ';':
      T.K = Tok::Semi;
      break;
    case ':':
      T.K = Tok::Colon;
      break;
    case '.':
      T.K = Tok::Dot;
      break;
    default:
      return Error("lex error at line " + std::to_string(Line));
    }
    ++Pos;
    Out.push_back(T);
  }
  Token E;
  E.K = Tok::Eof;
  E.Line = Line;
  Out.push_back(E);
  return Out;
}

class Parser {
public:
  explicit Parser(std::vector<Token> Ts) : Ts(std::move(Ts)) {}

  Expected<L3Module> module(const std::string &Name) {
    L3Module M;
    M.Name = Name;
    while (cur().K != Tok::Eof) {
      if (cur().K == Tok::KwImport) {
        next();
        Expected<std::string> Mod = ident();
        if (!Mod)
          return Mod.error();
        if (Status S = expect(Tok::Dot, "'.'"); !S)
          return S.error();
        Expected<std::string> Nm = ident();
        if (!Nm)
          return Nm.error();
        if (Status S = expect(Tok::Colon, "':'"); !S)
          return S.error();
        Expected<L3TypeRef> T = type();
        if (!T)
          return T.error();
        if (Status S = expect(Tok::SemiSemi, "';;'"); !S)
          return S.error();
        M.Imports.push_back({*Mod, *Nm, *T});
        continue;
      }
      bool Exported = false;
      if (cur().K == Tok::KwExport) {
        Exported = true;
        next();
      }
      if (Status S = expect(Tok::KwFun, "'fun'"); !S)
        return S.error();
      L3Fun F;
      F.Exported = Exported;
      Expected<std::string> Nm = ident();
      if (!Nm)
        return Nm.error();
      F.Name = *Nm;
      if (Status S = expect(Tok::LParen, "'('"); !S)
        return S.error();
      Expected<std::string> P = ident();
      if (!P)
        return P.error();
      F.Param = *P;
      if (Status S = expect(Tok::Colon, "':'"); !S)
        return S.error();
      Expected<L3TypeRef> PT = type();
      if (!PT)
        return PT.error();
      F.ParamTy = *PT;
      if (Status S = expect(Tok::RParen, "')'"); !S)
        return S.error();
      if (Status S = expect(Tok::Colon, "':'"); !S)
        return S.error();
      Expected<L3TypeRef> RT = type();
      if (!RT)
        return RT.error();
      F.RetTy = *RT;
      if (Status S = expect(Tok::Eq, "'='"); !S)
        return S.error();
      Expected<L3ExprRef> B = expr();
      if (!B)
        return B.error();
      F.Body = *B;
      if (Status S = expect(Tok::SemiSemi, "';;'"); !S)
        return S.error();
      M.Funs.push_back(std::move(F));
    }
    return M;
  }

private:
  const Token &cur() const { return Ts[Pos]; }
  void next() { ++Pos; }
  Status expect(Tok K, const char *What) {
    if (cur().K != K)
      return Error("parse error at line " + std::to_string(cur().Line) +
                   ": expected " + What);
    next();
    return Status::success();
  }
  Expected<std::string> ident() {
    if (cur().K != Tok::Ident)
      return Error("parse error at line " + std::to_string(cur().Line) +
                   ": expected identifier");
    std::string N = cur().Text;
    next();
    return N;
  }

  Expected<L3TypeRef> type() {
    Expected<L3TypeRef> L = tensorType();
    if (!L)
      return L;
    if (cur().K == Tok::Lolli) {
      next();
      Expected<L3TypeRef> R = type();
      if (!R)
        return R;
      return L3Type::mk(TyKind::Lolli, *L, *R);
    }
    return L;
  }
  Expected<L3TypeRef> tensorType() {
    Expected<L3TypeRef> L = atomType();
    if (!L)
      return L;
    L3TypeRef Acc = *L;
    while (cur().K == Tok::Star) {
      next();
      Expected<L3TypeRef> R = atomType();
      if (!R)
        return R;
      Acc = L3Type::mk(TyKind::Tensor, Acc, *R);
    }
    return Acc;
  }
  Expected<L3TypeRef> atomType() {
    switch (cur().K) {
    case Tok::KwInt:
      next();
      return L3Type::mk(TyKind::Int);
    case Tok::KwUnit:
      next();
      return L3Type::mk(TyKind::Unit);
    case Tok::Bang: {
      next();
      Expected<L3TypeRef> T = atomType();
      if (!T)
        return T;
      return L3Type::mk(TyKind::Bang, *T);
    }
    case Tok::KwCell: {
      next();
      Expected<L3TypeRef> T = atomType();
      if (!T)
        return T;
      return L3Type::mk(TyKind::Cell, *T);
    }
    case Tok::KwRef: {
      next();
      Expected<L3TypeRef> T = atomType();
      if (!T)
        return T;
      return L3Type::mk(TyKind::MLRef, *T);
    }
    case Tok::LParen: {
      next();
      Expected<L3TypeRef> T = type();
      if (!T)
        return T;
      if (Status S = expect(Tok::RParen, "')'"); !S)
        return S.error();
      return T;
    }
    default:
      return Error("parse error at line " + std::to_string(cur().Line) +
                   ": expected a type");
    }
  }

  Expected<L3ExprRef> expr() {
    Expected<L3ExprRef> L = addExpr();
    if (!L)
      return L;
    if (cur().K == Tok::Semi) {
      next();
      Expected<L3ExprRef> R = expr();
      if (!R)
        return R;
      L3ExprRef E = L3Expr::mk(ExKind::Seq);
      E->Kids = {*L, *R};
      return E;
    }
    return L;
  }

  Expected<L3ExprRef> addExpr() {
    Expected<L3ExprRef> L = appExpr();
    if (!L)
      return L;
    L3ExprRef Acc = *L;
    while (cur().K == Tok::Plus || cur().K == Tok::Minus ||
           cur().K == Tok::Star) {
      L3Op Op = cur().K == Tok::Plus   ? L3Op::Add
                : cur().K == Tok::Minus ? L3Op::Sub
                                        : L3Op::Mul;
      next();
      Expected<L3ExprRef> R = appExpr();
      if (!R)
        return R;
      L3ExprRef E = L3Expr::mk(ExKind::Binop);
      E->Op = Op;
      E->Kids = {Acc, *R};
      Acc = E;
    }
    return Acc;
  }

  static bool startsPrim(Tok K) {
    switch (K) {
    case Tok::Int:
    case Tok::Ident:
    case Tok::LParen:
    case Tok::KwNew:
    case Tok::KwFree:
    case Tok::KwSwap:
    case Tok::KwJoin:
    case Tok::KwSplit:
      return true;
    default:
      return false;
    }
  }

  Expected<L3ExprRef> appExpr() {
    Expected<L3ExprRef> L = primExpr();
    if (!L)
      return L;
    L3ExprRef Acc = *L;
    while (startsPrim(cur().K)) {
      Expected<L3ExprRef> R = primExpr();
      if (!R)
        return R;
      L3ExprRef E = L3Expr::mk(ExKind::App);
      E->Kids = {Acc, *R};
      Acc = E;
    }
    return Acc;
  }

  Expected<L3ExprRef> primExpr() {
    switch (cur().K) {
    case Tok::KwLet: {
      next();
      if (cur().K == Tok::LParen) {
        next();
        Expected<std::string> X = ident();
        if (!X)
          return X.error();
        if (Status S = expect(Tok::Comma, "','"); !S)
          return S.error();
        Expected<std::string> Y = ident();
        if (!Y)
          return Y.error();
        if (Status S = expect(Tok::RParen, "')'"); !S)
          return S.error();
        if (Status S = expect(Tok::Eq, "'='"); !S)
          return S.error();
        Expected<L3ExprRef> E1 = expr();
        if (!E1)
          return E1;
        if (Status S = expect(Tok::KwIn, "'in'"); !S)
          return S.error();
        Expected<L3ExprRef> E2 = expr();
        if (!E2)
          return E2;
        L3ExprRef E = L3Expr::mk(ExKind::LetPair);
        E->Name = *X;
        E->Name2 = *Y;
        E->Kids = {*E1, *E2};
        return E;
      }
      Expected<std::string> N = ident();
      if (!N)
        return N.error();
      if (Status S = expect(Tok::Eq, "'='"); !S)
        return S.error();
      Expected<L3ExprRef> E1 = expr();
      if (!E1)
        return E1;
      if (Status S = expect(Tok::KwIn, "'in'"); !S)
        return S.error();
      Expected<L3ExprRef> E2 = expr();
      if (!E2)
        return E2;
      L3ExprRef E = L3Expr::mk(ExKind::Let);
      E->Name = *N;
      E->Kids = {*E1, *E2};
      return E;
    }
    case Tok::Int: {
      L3ExprRef E = L3Expr::mk(ExKind::Int);
      E->IntVal = cur().Num;
      next();
      return E;
    }
    case Tok::Ident: {
      L3ExprRef E = L3Expr::mk(ExKind::VarRef);
      E->Name = cur().Text;
      next();
      return E;
    }
    case Tok::KwNew:
    case Tok::KwFree:
    case Tok::KwJoin:
    case Tok::KwSplit: {
      ExKind K = cur().K == Tok::KwNew    ? ExKind::New
                 : cur().K == Tok::KwFree ? ExKind::Free
                 : cur().K == Tok::KwJoin ? ExKind::Join
                                          : ExKind::Split;
      next();
      Expected<L3ExprRef> E = primExpr();
      if (!E)
        return E;
      L3ExprRef D = L3Expr::mk(K);
      D->Kids = {*E};
      return D;
    }
    case Tok::KwSwap: {
      next();
      Expected<L3ExprRef> E1 = primExpr();
      if (!E1)
        return E1;
      Expected<L3ExprRef> E2 = primExpr();
      if (!E2)
        return E2;
      L3ExprRef D = L3Expr::mk(ExKind::Swap);
      D->Kids = {*E1, *E2};
      return D;
    }
    case Tok::LParen: {
      next();
      if (cur().K == Tok::RParen) {
        next();
        return L3Expr::mk(ExKind::Unit);
      }
      Expected<L3ExprRef> E1 = expr();
      if (!E1)
        return E1;
      if (cur().K == Tok::Comma) {
        next();
        Expected<L3ExprRef> E2 = expr();
        if (!E2)
          return E2;
        if (Status S = expect(Tok::RParen, "')'"); !S)
          return S.error();
        L3ExprRef P = L3Expr::mk(ExKind::Pair);
        P->Kids = {*E1, *E2};
        return P;
      }
      if (Status S = expect(Tok::RParen, "')'"); !S)
        return S.error();
      return E1;
    }
    default:
      return Error("parse error at line " + std::to_string(cur().Line) +
                   ": expected an expression");
    }
  }

  std::vector<Token> Ts;
  size_t Pos = 0;
};

} // namespace

Expected<L3Module> rw::l3::parse(const std::string &Name,
                                 const std::string &Src) {
  Expected<std::vector<Token>> Ts = lex(Src);
  if (!Ts)
    return Ts.error();
  Parser P(std::move(*Ts));
  return P.module(Name);
}

//===----------------------------------------------------------------------===//
// Linear type checker
//===----------------------------------------------------------------------===//

namespace {

struct L3Ctx {
  std::map<std::string, L3TypeRef> Vars;
  std::map<std::string, int> Uses; ///< Use counts (for linearity).
  std::map<std::string, const L3Fun *> Funs;
  std::map<std::string, const L3Import *> Imports;
};

/// Strips ! wrappers (the FFI import types in Fig 3 are !-wrapped).
const L3TypeRef stripBang(L3TypeRef T) {
  while (T->K == TyKind::Bang)
    T = T->A;
  return T;
}

Status checkL3(L3ExprRef &E, L3Ctx &C) {
  switch (E->K) {
  case ExKind::Int:
    E->Ty = L3Type::mk(TyKind::Int);
    return Status::success();
  case ExKind::Unit:
    E->Ty = L3Type::mk(TyKind::Unit);
    return Status::success();
  case ExKind::VarRef: {
    auto V = C.Vars.find(E->Name);
    if (V == C.Vars.end())
      return Error("unbound variable '" + E->Name + "'");
    C.Uses[E->Name] += 1;
    E->Ty = V->second;
    return Status::success();
  }
  case ExKind::Let: {
    if (Status S = checkL3(E->Kids[0], C); !S)
      return S;
    bool Shadow = C.Vars.count(E->Name);
    L3TypeRef Saved = Shadow ? C.Vars[E->Name] : nullptr;
    int SavedUses = C.Uses[E->Name];
    C.Vars[E->Name] = E->Kids[0]->Ty;
    C.Uses[E->Name] = 0;
    if (Status S = checkL3(E->Kids[1], C); !S)
      return S;
    int N = C.Uses[E->Name];
    if (!l3Unrestricted(E->Kids[0]->Ty) && N != 1)
      return Error("linear variable '" + E->Name + "' used " +
                   std::to_string(N) + " times (must be exactly once)");
    if (Shadow)
      C.Vars[E->Name] = Saved;
    else
      C.Vars.erase(E->Name);
    C.Uses[E->Name] = SavedUses;
    E->Ty = E->Kids[1]->Ty;
    return Status::success();
  }
  case ExKind::LetPair: {
    if (Status S = checkL3(E->Kids[0], C); !S)
      return S;
    if (E->Kids[0]->Ty->K != TyKind::Tensor)
      return Error("let (x, y) over a non-tensor of type " +
                   l3TypeStr(E->Kids[0]->Ty));
    L3Ctx Inner = C;
    Inner.Vars[E->Name] = E->Kids[0]->Ty->A;
    Inner.Vars[E->Name2] = E->Kids[0]->Ty->B;
    Inner.Uses[E->Name] = 0;
    Inner.Uses[E->Name2] = 0;
    if (Status S = checkL3(E->Kids[1], Inner); !S)
      return S;
    if (!l3Unrestricted(E->Kids[0]->Ty->A) && Inner.Uses[E->Name] != 1)
      return Error("linear variable '" + E->Name + "' not used exactly once");
    if (!l3Unrestricted(E->Kids[0]->Ty->B) && Inner.Uses[E->Name2] != 1)
      return Error("linear variable '" + E->Name2 +
                   "' not used exactly once");
    // Propagate outer-variable uses back.
    for (auto &[N, U] : Inner.Uses)
      if (N != E->Name && N != E->Name2)
        C.Uses[N] = U;
    E->Ty = E->Kids[1]->Ty;
    return Status::success();
  }
  case ExKind::Seq: {
    if (Status S = checkL3(E->Kids[0], C); !S)
      return S;
    if (!l3Unrestricted(E->Kids[0]->Ty))
      return Error("';' discards a linear value of type " +
                   l3TypeStr(E->Kids[0]->Ty));
    if (Status S = checkL3(E->Kids[1], C); !S)
      return S;
    E->Ty = E->Kids[1]->Ty;
    return Status::success();
  }
  case ExKind::Pair: {
    if (Status S = checkL3(E->Kids[0], C); !S)
      return S;
    if (Status S = checkL3(E->Kids[1], C); !S)
      return S;
    E->Ty = L3Type::mk(TyKind::Tensor, E->Kids[0]->Ty, E->Kids[1]->Ty);
    return Status::success();
  }
  case ExKind::Binop: {
    for (int I = 0; I < 2; ++I) {
      if (Status S = checkL3(E->Kids[I], C); !S)
        return S;
      if (stripBang(E->Kids[I]->Ty)->K != TyKind::Int)
        return Error("arithmetic on a non-int");
    }
    E->Ty = L3Type::mk(TyKind::Int);
    return Status::success();
  }
  case ExKind::App: {
    if (E->Kids[0]->K != ExKind::VarRef)
      return Error("only top-level functions can be applied in core L3");
    const std::string &F = E->Kids[0]->Name;
    if (Status S = checkL3(E->Kids[1], C); !S)
      return S;
    L3TypeRef FT;
    if (auto It = C.Funs.find(F); It != C.Funs.end())
      FT = L3Type::mk(TyKind::Lolli, It->second->ParamTy, It->second->RetTy);
    else if (auto It2 = C.Imports.find(F); It2 != C.Imports.end())
      FT = stripBang(It2->second->Ty);
    else
      return Error("unknown function '" + F + "'");
    if (FT->K != TyKind::Lolli)
      return Error("'" + F + "' is not a function");
    if (!l3TypeEquals(stripBang(FT->A), stripBang(E->Kids[1]->Ty)))
      return Error("in call of '" + F + "': expected " + l3TypeStr(FT->A) +
                   ", found " + l3TypeStr(E->Kids[1]->Ty));
    E->Ty = FT->B;
    return Status::success();
  }
  case ExKind::New: {
    if (Status S = checkL3(E->Kids[0], C); !S)
      return S;
    E->Ty = L3Type::mk(TyKind::Cell, E->Kids[0]->Ty);
    return Status::success();
  }
  case ExKind::Free: {
    if (Status S = checkL3(E->Kids[0], C); !S)
      return S;
    if (E->Kids[0]->Ty->K != TyKind::Cell)
      return Error("free expects a Cell");
    E->Ty = E->Kids[0]->Ty->A;
    return Status::success();
  }
  case ExKind::Swap: {
    if (Status S = checkL3(E->Kids[0], C); !S)
      return S;
    if (Status S = checkL3(E->Kids[1], C); !S)
      return S;
    if (E->Kids[0]->Ty->K != TyKind::Cell)
      return Error("swap expects a Cell");
    // Strong update: the cell's content type changes to the new value's;
    // the old value comes back (Fig 2's struct.swap at the source level).
    E->Ty = L3Type::mk(TyKind::Tensor, E->Kids[0]->Ty->A,
                       L3Type::mk(TyKind::Cell, E->Kids[1]->Ty));
    return Status::success();
  }
  case ExKind::Join: {
    if (Status S = checkL3(E->Kids[0], C); !S)
      return S;
    if (E->Kids[0]->Ty->K != TyKind::Cell)
      return Error("join expects a Cell");
    E->Ty = L3Type::mk(TyKind::MLRef, E->Kids[0]->Ty->A);
    return Status::success();
  }
  case ExKind::Split: {
    if (Status S = checkL3(E->Kids[0], C); !S)
      return S;
    if (E->Kids[0]->Ty->K != TyKind::MLRef)
      return Error("split expects a Ref");
    E->Ty = L3Type::mk(TyKind::Cell, E->Kids[0]->Ty->A);
    return Status::success();
  }
  }
  return Error("unhandled L3 expression");
}

} // namespace

Status rw::l3::typecheck(L3Module &M) {
  L3Ctx C;
  for (const L3Import &I : M.Imports)
    C.Imports[I.Name] = &I;
  for (const L3Fun &F : M.Funs)
    C.Funs[F.Name] = &F;
  for (L3Fun &F : M.Funs) {
    L3Ctx FC = C;
    FC.Vars[F.Param] = F.ParamTy;
    FC.Uses[F.Param] = 0;
    if (Status S = checkL3(F.Body, FC); !S)
      return Error("in function '" + F.Name + "': " + S.error().message());
    if (!l3Unrestricted(F.ParamTy) && FC.Uses[F.Param] != 1)
      return Error("in function '" + F.Name + "': linear parameter '" +
                   F.Param + "' not used exactly once");
    if (!l3TypeEquals(F.Body->Ty, F.RetTy))
      return Error("function '" + F.Name + "' returns " +
                   l3TypeStr(F.Body->Ty) + " but declares " +
                   l3TypeStr(F.RetTy));
  }
  return Status::success();
}

//===----------------------------------------------------------------------===//
// Type lowering — must agree with ML at FFI boundaries
//===----------------------------------------------------------------------===//

namespace {

uint64_t bitsOf(const Type &T) {
  return closedSizeBits(ir::sizeOfType(T, {}));
}

Type lowerL3(const L3TypeRef &T) {
  switch (T->K) {
  case TyKind::Int:
    return i32T();
  case TyKind::Unit:
    return unitT();
  case TyKind::Bang:
    return lowerL3(T->A);
  case TyKind::Tensor: {
    Type A = lowerL3(T->A);
    Type B = lowerL3(T->B);
    bool Lin = A.Q.isLinConst() || B.Q.isLinConst();
    return Type(prodPT({A, B}), Lin ? Qual::lin() : Qual::unr());
  }
  case TyKind::Lolli: {
    Type A = lowerL3(T->A);
    Type B = lowerL3(T->B);
    return Type(coderefPT(FunType::get({}, build::arrow({A}, {B}))),
                Qual::unr());
  }
  case TyKind::Cell: {
    // ∃ρ. (Cap ρ (struct τ@sz) ⊗ !Ptr ρ): ownership separate from address.
    Type Elem = lowerL3(T->A);
    SizeRef Slot = Size::constant(bitsOf(Elem));
    HeapTypeRef H = structHT({{Elem, Slot}});
    Type CapT(capPT(Privilege::RW, Loc::var(0), H), Qual::lin());
    Type PtrT(ptrPT(Loc::var(0)), Qual::unr());
    return Type(exLocPT(Type(prodPT({CapT, PtrT}), Qual::lin())),
                Qual::lin());
  }
  case TyKind::MLRef: {
    // The joined form — byte-for-byte ML's `lin (ref τ)`.
    Type Elem = lowerL3(T->A);
    SizeRef Slot = Size::constant(bitsOf(Elem));
    HeapTypeRef H = structHT({{Elem, Slot}});
    return Type(exLocPT(Type(refPT(Privilege::RW, Loc::var(0), H),
                             Qual::lin())),
                Qual::lin());
  }
  }
  return unitT();
}

} // namespace

ir::Type rw::l3::lowerL3Type(const L3TypeRef &T) { return lowerL3(T); }

//===----------------------------------------------------------------------===//
// Code generation (single phase — §5: "much easier to compile")
//===----------------------------------------------------------------------===//

namespace {

class L3Cg {
public:
  explicit L3Cg(const std::map<std::string, uint32_t> &FnIdx)
      : FnIdx(FnIdx) {
    UnitLocal = newLocal(Size::constant(0));
  }

  const std::map<std::string, uint32_t> &FnIdx;
  std::vector<SizeRef> Locals;
  uint32_t NumParams = 1;
  uint32_t UnitLocal;
  struct VInfo {
    uint32_t Local;
    L3TypeRef Ty;
  };
  std::map<std::string, VInfo> Vars;
  std::vector<std::set<uint32_t>> MovedStack;

  uint32_t newLocal(SizeRef Sz) {
    Locals.push_back(std::move(Sz));
    return NumParams + static_cast<uint32_t>(Locals.size() - 1);
  }
  void noteMoved(uint32_t L) {
    if (!MovedStack.empty())
      MovedStack.back().insert(L);
  }
  void pushUnit(InstVec &O) { O.push_back(getLocal(UnitLocal, Qual::unr())); }
  void reset(uint32_t L, InstVec &O) {
    pushUnit(O);
    O.push_back(setLocal(L));
  }

  /// Reads a variable with move semantics for linear types.
  void readVar(uint32_t Local, const Type &T, InstVec &O) {
    O.push_back(getLocal(Local, T.Q));
    if (!T.Q.isUnrConst())
      noteMoved(Local);
  }

  template <typename F>
  Status emitUnpack(std::vector<Type> Results, F Body, InstVec &O) {
    MovedStack.push_back({});
    InstVec B;
    Status S = Body(B);
    std::set<uint32_t> Moved = std::move(MovedStack.back());
    MovedStack.pop_back();
    std::vector<LocalEffect> Fx;
    for (uint32_t L : Moved) {
      Fx.push_back({L, unitT()});
      noteMoved(L);
    }
    if (!S)
      return S;
    O.push_back(memUnpack(build::arrow({}, std::move(Results)),
                          std::move(Fx), std::move(B)));
    return Status::success();
  }

  Status gen(const L3ExprRef &E, InstVec &O);
};

Status L3Cg::gen(const L3ExprRef &E, InstVec &O) {
  switch (E->K) {
  case ExKind::Int:
    O.push_back(iconst(static_cast<int32_t>(E->IntVal)));
    return Status::success();
  case ExKind::Unit:
    pushUnit(O);
    return Status::success();
  case ExKind::VarRef: {
    const VInfo &V = Vars.at(E->Name);
    readVar(V.Local, lowerL3(V.Ty), O);
    return Status::success();
  }
  case ExKind::Let: {
    if (Status S = gen(E->Kids[0], O); !S)
      return S;
    Type LT = lowerL3(E->Kids[0]->Ty);
    uint32_t Lc = newLocal(Size::constant(bitsOf(LT)));
    O.push_back(setLocal(Lc));
    VInfo Saved{};
    bool Shadow = Vars.count(E->Name);
    if (Shadow)
      Saved = Vars[E->Name];
    Vars[E->Name] = {Lc, E->Kids[0]->Ty};
    Status S = gen(E->Kids[1], O);
    if (Shadow)
      Vars[E->Name] = Saved;
    else
      Vars.erase(E->Name);
    if (!S)
      return S;
    if (LT.Q.isUnrConst())
      reset(Lc, O);
    return Status::success();
  }
  case ExKind::LetPair: {
    if (Status S = gen(E->Kids[0], O); !S)
      return S;
    Type AT = lowerL3(E->Kids[0]->Ty->A);
    Type BT = lowerL3(E->Kids[0]->Ty->B);
    uint32_t La = newLocal(Size::constant(bitsOf(AT)));
    uint32_t Lb = newLocal(Size::constant(bitsOf(BT)));
    O.push_back(ungroup());
    O.push_back(setLocal(Lb));
    O.push_back(setLocal(La));
    VInfo SA{}, SB{};
    bool ShA = Vars.count(E->Name), ShB = Vars.count(E->Name2);
    if (ShA)
      SA = Vars[E->Name];
    if (ShB)
      SB = Vars[E->Name2];
    Vars[E->Name] = {La, E->Kids[0]->Ty->A};
    Vars[E->Name2] = {Lb, E->Kids[0]->Ty->B};
    Status S = gen(E->Kids[1], O);
    if (ShA)
      Vars[E->Name] = SA;
    else
      Vars.erase(E->Name);
    if (ShB)
      Vars[E->Name2] = SB;
    else
      Vars.erase(E->Name2);
    if (!S)
      return S;
    if (AT.Q.isUnrConst())
      reset(La, O);
    if (BT.Q.isUnrConst())
      reset(Lb, O);
    return Status::success();
  }
  case ExKind::Seq: {
    if (Status S = gen(E->Kids[0], O); !S)
      return S;
    O.push_back(drop());
    return gen(E->Kids[1], O);
  }
  case ExKind::Pair: {
    if (Status S = gen(E->Kids[0], O); !S)
      return S;
    if (Status S = gen(E->Kids[1], O); !S)
      return S;
    Type T = lowerL3(L3Type::mk(TyKind::Tensor, E->Kids[0]->Ty,
                                E->Kids[1]->Ty));
    O.push_back(group(2, T.Q));
    return Status::success();
  }
  case ExKind::Binop: {
    if (Status S = gen(E->Kids[0], O); !S)
      return S;
    if (Status S = gen(E->Kids[1], O); !S)
      return S;
    O.push_back(E->Op == L3Op::Add   ? addI32()
                : E->Op == L3Op::Sub ? subI32()
                                     : mulI32());
    return Status::success();
  }
  case ExKind::App: {
    if (Status S = gen(E->Kids[1], O); !S)
      return S;
    O.push_back(call(FnIdx.at(E->Kids[0]->Name)));
    return Status::success();
  }
  case ExKind::New: {
    // new v  ↝  struct.malloc; then split the reference so ownership (the
    // capability) travels separately from the pointer, as in L3.
    if (Status S = gen(E->Kids[0], O); !S)
      return S;
    Type Elem = lowerL3(E->Kids[0]->Ty);
    Type CellT = lowerL3(E->Ty);
    O.push_back(structMalloc({Size::constant(bitsOf(Elem))}, Qual::lin()));
    return emitUnpack({CellT}, [&](InstVec &B) -> Status {
      B.push_back(refSplit());
      B.push_back(group(2, Qual::lin()));
      B.push_back(memPack(Loc::var(0)));
      return Status::success();
    }, O);
  }
  case ExKind::Free: {
    if (Status S = gen(E->Kids[0], O); !S)
      return S;
    Type Elem = lowerL3(E->Kids[0]->Ty->A);
    uint64_t Bits = bitsOf(Elem);
    return emitUnpack({Elem}, [&](InstVec &B) -> Status {
      B.push_back(ungroup());
      B.push_back(refJoin());
      if (Bits >= 32) {
        // Swap a placeholder in to extract the contents, then free.
        B.push_back(iconst(0));
        B.push_back(structSwap(0));
        uint32_t T = newLocal(Size::constant(Bits));
        B.push_back(setLocal(T));
        B.push_back(structFree());
        readVar(T, Elem, B);
        if (Elem.Q.isUnrConst())
          reset(T, B);
      } else {
        // Unit contents: nothing to extract.
        B.push_back(structFree());
        pushUnit(B);
      }
      return Status::success();
    }, O);
  }
  case ExKind::Swap: {
    if (Status S = gen(E->Kids[0], O); !S)
      return S;
    Type OldT = lowerL3(E->Kids[0]->Ty->A);
    Type NewT = lowerL3(E->Kids[1]->Ty);
    Type NewCellT = lowerL3(L3Type::mk(TyKind::Cell, E->Kids[1]->Ty));
    Type ResT = lowerL3(E->Ty);
    return emitUnpack({ResT}, [&](InstVec &B) -> Status {
      B.push_back(ungroup());
      B.push_back(refJoin());
      if (Status S = gen(E->Kids[1], B); !S)
        return S;
      B.push_back(structSwap(0));
      uint32_t TOld = newLocal(Size::constant(bitsOf(OldT)));
      B.push_back(setLocal(TOld));
      B.push_back(refSplit());
      B.push_back(group(2, Qual::lin()));
      B.push_back(memPack(Loc::var(0)));
      uint32_t TCell = newLocal(Size::constant(bitsOf(NewCellT)));
      B.push_back(setLocal(TCell));
      readVar(TOld, OldT, B);
      if (OldT.Q.isUnrConst())
        reset(TOld, B);
      B.push_back(getLocal(TCell, Qual::lin()));
      noteMoved(TCell);
      B.push_back(group(2, Qual::lin()));
      return Status::success();
    }, O);
  }
  case ExKind::Join: {
    if (Status S = gen(E->Kids[0], O); !S)
      return S;
    Type RefT = lowerL3(E->Ty);
    return emitUnpack({RefT}, [&](InstVec &B) -> Status {
      B.push_back(ungroup());
      B.push_back(refJoin());
      B.push_back(memPack(Loc::var(0)));
      return Status::success();
    }, O);
  }
  case ExKind::Split: {
    if (Status S = gen(E->Kids[0], O); !S)
      return S;
    Type CellT = lowerL3(E->Ty);
    return emitUnpack({CellT}, [&](InstVec &B) -> Status {
      B.push_back(refSplit());
      B.push_back(group(2, Qual::lin()));
      B.push_back(memPack(Loc::var(0)));
      return Status::success();
    }, O);
  }
  }
  return Error("unhandled L3 expression in codegen");
}

} // namespace

Expected<ir::Module> rw::l3::compile(const L3Module &M) {
  ir::Module Out;
  // All types this compiler builds are interned into the output module's
  // arena (the process-wide default), so they are pointer-comparable with
  // every other module's types at link time.
  ir::ArenaScope Scope(*Out.Arena);
  Out.Name = M.Name;
  std::map<std::string, uint32_t> FnIdx;
  for (const L3Import &I : M.Imports) {
    L3TypeRef T = stripBang(I.Ty);
    if (T->K != TyKind::Lolli)
      return Error("import '" + I.Name + "' must have a function type");
    FnIdx[I.Name] = static_cast<uint32_t>(Out.Funcs.size());
    Out.Funcs.push_back(importFunc(
        {I.Mod, I.Name},
        FunType::get({}, build::arrow({lowerL3(T->A)}, {lowerL3(T->B)}))));
  }
  for (const L3Fun &F : M.Funs) {
    FnIdx[F.Name] = static_cast<uint32_t>(Out.Funcs.size());
    ir::Function Fn;
    Fn.Ty = FunType::get(
        {}, build::arrow({lowerL3(F.ParamTy)}, {lowerL3(F.RetTy)}));
    if (F.Exported)
      Fn.Exports.push_back(F.Name);
    Out.Funcs.push_back(std::move(Fn));
  }
  for (const L3Fun &F : M.Funs) {
    L3Cg CG(FnIdx);
    CG.Vars[F.Param] = {0, F.ParamTy};
    InstVec O;
    if (Status S = CG.gen(F.Body, O); !S)
      return Error("in function '" + F.Name + "': " + S.error().message());
    ir::Function &Fn = Out.Funcs[FnIdx[F.Name]];
    Fn.Locals = CG.Locals;
    Fn.Body = std::move(O);
  }
  for (uint32_t I = 0; I < Out.Funcs.size(); ++I)
    Out.Tab.Entries.push_back(I);
  return Out;
}

Expected<ir::Module> rw::l3::compileSource(const std::string &Name,
                                           const std::string &Src) {
  Expected<L3Module> M = parse(Name, Src);
  if (!M)
    return M.error();
  if (Status S = typecheck(*M); !S)
    return S.error();
  return compile(*M);
}
