//===- jit/Jit.cpp - Tier-3 copy-and-patch native backend -------------------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// x86-64 only. Each flat-bytecode instruction is emitted from a fixed
// template with its immediates patched in; the operand stack height is a
// compile-time constant per pc, so operand slots become fixed [r12+8k]
// addresses and no register allocation is needed. Anything the templates
// cannot express exits to the interpreter (see Jit.h for the contract).
//
// Register convention inside generated code:
//   rbx = JitContext*            r12 = Ops + OpBase   (byte address)
//   r13 = Regs + RegBase         r14 = Mem.data()     r15 = Mem.size()
//   [rsp+0] = OpBase8, [rsp+8] = RegBase8 (for base reloads after helpers)
//   rax/rcx/rdx/rsi/rdi/r8-r11 scratch.
//
//===----------------------------------------------------------------------===//

#include "jit/Jit.h"

#if defined(RW_JIT_ENABLED) && RW_JIT_ENABLED

#include "exec/Engine.h"
#include "support/FaultInject.h"
#include "obs/Obs.h"
#include "support/NumericOps.h"

#include <cstddef>
#include <cstring>
#include <map>
#include <sys/mman.h>
#include <unistd.h>

#ifndef __has_feature
#define __has_feature(x) 0
#endif
#if defined(__SANITIZE_ADDRESS__) || __has_feature(address_sanitizer)
#include <sanitizer/asan_interface.h>
#define RW_JIT_ASAN 1
#else
#define RW_JIT_ASAN 0
#endif

using namespace rw;
using namespace rw::jit;
using namespace rw::exec;
using namespace rw::wasm;

// Generated code addresses JitContext, WValue, and FunctionProfile fields
// by the fixed byte offsets below; fail the build if the layouts drift.
static_assert(offsetof(JitContext, Ops) == 8 &&
                  offsetof(JitContext, Regs) == 16 &&
                  offsetof(JitContext, MemP) == 24 &&
                  offsetof(JitContext, MemSz) == 32 &&
                  offsetof(JitContext, Fuel) == 40 &&
                  offsetof(JitContext, GlobalsP) == 48 &&
                  offsetof(JitContext, ProfP) == 56 &&
                  offsetof(JitContext, DeoptPc) == 64 &&
                  offsetof(JitContext, DeoptSp) == 68 &&
                  offsetof(JitContext, GenTrap) == 72 &&
                  offsetof(JitContext, FuelRefunded) == 80,
              "JitContext layout is baked into generated code");
static_assert(sizeof(WValue) == 16 && offsetof(WValue, Bits) == 8,
              "global templates assume WValue {tag, bits} stride 16");

namespace {

constexpr int32_t OffOps = 8, OffRegs = 16, OffMemP = 24, OffMemSz = 32,
                  OffFuel = 40, OffGlobals = 48, OffProf = 56, OffDeoptPc = 64,
                  OffDeoptSp = 68, OffGenTrap = 72, OffFuelRefund = 80;

enum R : uint8_t {
  RAX = 0, RCX = 1, RDX = 2, RBX = 3, RSP = 4, RBP = 5, RSI = 6, RDI = 7,
  R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14, R15 = 15,
};

// Condition-code nibbles (jcc 0F 8x / setcc 0F 9x).
enum CC : uint8_t {
  CB = 2, CAE = 3, CE = 4, CNE = 5, CBE = 6, CA = 7,
  CL_ = 0xc, CGE = 0xd, CLE = 0xe, CG = 0xf,
};

/// Minimal x86-64 emitter: only the fixed addressing shapes the templates
/// need (reg-reg, [base+disp32], [base+index]), REX computed per call.
struct Asm {
  std::vector<uint8_t> B;

  size_t size() const { return B.size(); }
  void u8(uint8_t V) { B.push_back(V); }
  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      B.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      B.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void patch32(size_t At, uint32_t V) {
    for (int I = 0; I < 4; ++I)
      B[At + I] = static_cast<uint8_t>(V >> (8 * I));
  }

  void rex(bool W, uint8_t Reg, uint8_t Idx, uint8_t Base) {
    uint8_t V = 0x40 | (W ? 8 : 0) | ((Reg >> 3) << 2) | ((Idx >> 3) << 1) |
                (Base >> 3);
    if (V != 0x40 || W)
      u8(V);
  }

  /// ModRM+SIB+disp32 for [Base + Disp] (always mod=2; SIB when rm=100b).
  void mem(uint8_t Reg, uint8_t Base, int32_t Disp) {
    if ((Base & 7) == 4) { // rsp/r12 need a SIB byte.
      u8(0x84 | ((Reg & 7) << 3));
      u8(0x20 | (Base & 7)); // scale=0, index=none(100b), base.
    } else {
      u8(0x80 | ((Reg & 7) << 3) | (Base & 7));
    }
    u32(static_cast<uint32_t>(Disp));
  }

  /// ModRM+SIB for [Base + Index] (mod=0; Base must not be rbp/r13).
  void memBI(uint8_t Reg, uint8_t Base, uint8_t Idx) {
    u8(0x04 | ((Reg & 7) << 3));
    u8(((Idx & 7) << 3) | (Base & 7));
  }

  // mov loads/stores with [base+disp32].
  void movRM64(uint8_t D, uint8_t Base, int32_t Disp) {
    rex(true, D, 0, Base); u8(0x8b); mem(D, Base, Disp);
  }
  void movRM32(uint8_t D, uint8_t Base, int32_t Disp) {
    rex(false, D, 0, Base); u8(0x8b); mem(D, Base, Disp);
  }
  void movMR64(uint8_t Base, int32_t Disp, uint8_t S) {
    rex(true, S, 0, Base); u8(0x89); mem(S, Base, Disp);
  }
  void movMR32(uint8_t Base, int32_t Disp, uint8_t S) {
    rex(false, S, 0, Base); u8(0x89); mem(S, Base, Disp);
  }
  /// mov dword [Base+Disp], imm32 (upper half of a qword slot untouched).
  void movMI32(uint8_t Base, int32_t Disp, uint32_t Imm) {
    rex(false, 0, 0, Base); u8(0xc7); mem(0, Base, Disp); u32(Imm);
  }
  void movRI32(uint8_t D, uint32_t Imm) { // zero-extends to 64.
    rex(false, 0, 0, D); u8(0xb8 | (D & 7)); u32(Imm);
  }
  void movRI64(uint8_t D, uint64_t Imm) {
    rex(true, 0, 0, D); u8(0xb8 | (D & 7)); u64(Imm);
  }
  void movRR64(uint8_t D, uint8_t S) {
    rex(true, D, 0, S); u8(0x8b); u8(0xc0 | ((D & 7) << 3) | (S & 7));
  }

  // ALU r, r (one-byte opcodes: add 03, sub 2b, and 23, or 0b, xor 33,
  // cmp 3b, test 85; imul is 0f af).
  void aluRR(uint8_t Opc, bool W, uint8_t D, uint8_t S) {
    rex(W, D, 0, S); u8(Opc); u8(0xc0 | ((D & 7) << 3) | (S & 7));
  }
  void imulRR(bool W, uint8_t D, uint8_t S) {
    rex(W, D, 0, S); u8(0x0f); u8(0xaf); u8(0xc0 | ((D & 7) << 3) | (S & 7));
  }
  // ALU r, [base+disp32].
  void aluRM(uint8_t Opc, bool W, uint8_t D, uint8_t Base, int32_t Disp) {
    rex(W, D, 0, Base); u8(Opc); mem(D, Base, Disp);
  }
  void imulRM(bool W, uint8_t D, uint8_t Base, int32_t Disp) {
    rex(W, D, 0, Base); u8(0x0f); u8(0xaf); mem(D, Base, Disp);
  }
  // ALU r, imm32 (81 /ext: add 0, or 1, and 4, sub 5, xor 6, cmp 7).
  void aluRI(uint8_t Ext, bool W, uint8_t D, uint32_t Imm) {
    rex(W, 0, 0, D); u8(0x81); u8(0xc0 | (Ext << 3) | (D & 7)); u32(Imm);
  }
  /// ALU qword [Base+Disp], imm32 (sign-extended).
  void aluMI64(uint8_t Ext, uint8_t Base, int32_t Disp, uint32_t Imm) {
    rex(true, 0, 0, Base); u8(0x81); mem(Ext, Base, Disp); u32(Imm);
  }
  /// cmp dword [Base+Disp], imm8.
  void cmpMI8(uint8_t Base, int32_t Disp, uint8_t Imm) {
    rex(false, 0, 0, Base); u8(0x83); mem(7, Base, Disp); u8(Imm);
  }
  /// cmp r64, imm8 (sign-extended; -1 compares against UINT64_MAX).
  void cmpRI8_64(uint8_t D, uint8_t Imm) {
    rex(true, 0, 0, D); u8(0x83); u8(0xf8 | (D & 7)); u8(Imm);
  }
  // Shift by cl (d3 /ext: shl 4, shr 5, sar 7).
  void shiftCL(uint8_t Ext, bool W, uint8_t D) {
    rex(W, 0, 0, D); u8(0xd3); u8(0xc0 | (Ext << 3) | (D & 7));
  }
  void shrRI64(uint8_t D, uint8_t Imm) {
    rex(true, 0, 0, D); u8(0xc1); u8(0xe8 | (D & 7)); u8(Imm);
  }
  void setccAL(uint8_t Cc) { u8(0x0f); u8(0x90 | Cc); u8(0xc0); }
  void movzxEaxAl() { u8(0x0f); u8(0xb6); u8(0xc0); }
  void cmovRR64(uint8_t Cc, uint8_t D, uint8_t S) {
    rex(true, D, 0, S); u8(0x0f); u8(0x40 | Cc);
    u8(0xc0 | ((D & 7) << 3) | (S & 7));
  }
  void lea64(uint8_t D, uint8_t Base, int32_t Disp) {
    rex(true, D, 0, Base); u8(0x8d); mem(D, Base, Disp);
  }

  // Sized loads from [Base+Index] into D.
  void loadBI(uint8_t D, uint8_t Base, uint8_t Idx, unsigned Kind) {
    // Kind: 0=u8,1=s8->32,2=s8->64,3=u16,4=s16->32,5=s16->64,
    //       6=u32,7=s32->64,8=u64.
    switch (Kind) {
    case 0: rex(false, D, Idx, Base); u8(0x0f); u8(0xb6); break;
    case 1: rex(false, D, Idx, Base); u8(0x0f); u8(0xbe); break;
    case 2: rex(true, D, Idx, Base); u8(0x0f); u8(0xbe); break;
    case 3: rex(false, D, Idx, Base); u8(0x0f); u8(0xb7); break;
    case 4: rex(false, D, Idx, Base); u8(0x0f); u8(0xbf); break;
    case 5: rex(true, D, Idx, Base); u8(0x0f); u8(0xbf); break;
    case 6: rex(false, D, Idx, Base); u8(0x8b); break;
    case 7: rex(true, D, Idx, Base); u8(0x63); break; // movsxd
    case 8: rex(true, D, Idx, Base); u8(0x8b); break;
    }
    memBI(D, Base, Idx);
  }
  // Sized stores of S (8/16/32/64 bits) to [Base+Index].
  void storeBI(uint8_t Base, uint8_t Idx, uint8_t S, unsigned Bytes) {
    if (Bytes == 2)
      u8(0x66);
    rex(Bytes == 8, S, Idx, Base);
    u8(Bytes == 1 ? 0x88 : 0x89);
    memBI(S, Base, Idx);
  }

  /// jcc rel32; returns the patch position of the rel32.
  size_t jcc(uint8_t Cc) { u8(0x0f); u8(0x80 | Cc); size_t P = size(); u32(0); return P; }
  /// jmp rel32; returns the patch position.
  size_t jmp() { u8(0xe9); size_t P = size(); u32(0); return P; }
  void bind(size_t PatchPos) { patch32(PatchPos, static_cast<uint32_t>(size() - (PatchPos + 4))); }

  void callRax() { u8(0xff); u8(0xd0); }
  void push(uint8_t Rg) { if (Rg >= 8) u8(0x41); u8(0x50 | (Rg & 7)); }
  void pop(uint8_t Rg) { if (Rg >= 8) u8(0x41); u8(0x58 | (Rg & 7)); }
  void ret() { u8(0xc3); }
};

} // namespace

//===----------------------------------------------------------------------===//
// Helper entry points generated code calls (System V: args in
// rdi/rsi/rdx/rcx, result in eax/rax). The call/host/indirect/grow
// helpers trampoline into FlatInstance members; the generic-op helpers
// replicate the interpreter's generic tail bit-exactly.
//===----------------------------------------------------------------------===//

extern "C" {
uint32_t rwJitCall(JitContext *Ctx, uint32_t CalleeIdx, uint32_t SpRel,
                   uint32_t RetPc);
uint32_t rwJitHost(JitContext *Ctx, uint32_t HostIdx, uint32_t SpRel,
                   uint32_t RetPc);
uint32_t rwJitIndirect(JitContext *Ctx, uint32_t Expect, uint32_t SpRel,
                       uint32_t RetPc);
uint32_t rwJitGrow(JitContext *Ctx, uint32_t SpRel);
uint64_t rwJitGenBin(uint32_t OpC, uint64_t A, uint64_t B, uint32_t *Trap);
uint64_t rwJitGenUn(uint32_t OpC, uint64_t A, uint32_t *Trap);
}

namespace {

/// Operand words following an opcode (mirrors the interpreter's decode);
/// -1 for opcodes that cannot appear in flat code.
int operandWords(uint32_t Op, const uint32_t *Rest, uint32_t WordsLeft) {
  switch (Op) {
  case FGoto: case FGotoIf: case FGotoIfZ:
  case FCall: case FCallHost: case FCallIndirect:
  case FProfEnter: case FProfLoop:
    return 1;
  case FBr: case FBrIf:
    return 3;
  case FBrTable:
    return WordsLeft < 1 ? -1 : static_cast<int>(1 + 3 * (Rest[0] + 1));
  case FReturn:
    return 0;
  case FGetGet: case FGetConst: case FGetGetAdd: case FGetConstAdd:
  case FMove: case FConstSet: case FGetLoadI32:
    return 2;
  case FGetGetAddSet: case FGetConstAddSet: case FGetGetStoreI32:
  case FGetConstStoreI32:
    return 3;
  default:
    break;
  }
  if (Op > 0xbf)
    return -1;
  if ((Op >= 0x20 && Op <= 0x24) || (Op >= 0x28 && Op <= 0x3e) ||
      Op == 0x41 || Op == 0x43)
    return 1;
  if (Op == 0x42 || Op == 0x44)
    return 2;
  return 0;
}

/// Operand-stack delta of a non-control byte opcode; false when the
/// opcode is not one the translator emits (compile is refused).
bool stackDelta(uint32_t Op, int &D) {
  if (Op == 0x1a || Op == 0x21 || Op == 0x24) { D = -1; return true; } // drop/set
  if (Op == 0x1b) { D = -2; return true; }                             // select
  if (Op == 0x20 || Op == 0x23 || Op == 0x3f ||
      (Op >= 0x41 && Op <= 0x44)) { D = 1; return true; } // get/size/const
  if (Op == 0x22 || Op == 0x40) { D = 0; return true; }   // tee/grow
  if (Op >= 0x28 && Op <= 0x35) { D = 0; return true; }   // loads
  if (Op >= 0x36 && Op <= 0x3e) { D = -2; return true; }  // stores
  if (Op == 0x45 || Op == 0x50 || (Op >= 0x67 && Op <= 0x69) ||
      (Op >= 0x79 && Op <= 0x7b) || (Op >= 0x8b && Op <= 0x91) ||
      (Op >= 0x99 && Op <= 0x9f) || (Op >= 0xa7 && Op <= 0xbf)) {
    D = 0; // eqz / unary / conversions
    return true;
  }
  if ((Op >= 0x46 && Op <= 0x4f) || (Op >= 0x51 && Op <= 0x66) ||
      (Op >= 0x6a && Op <= 0x78) || (Op >= 0x7c && Op <= 0x8a) ||
      (Op >= 0x92 && Op <= 0x98) || (Op >= 0xa0 && Op <= 0xa6)) {
    D = -1; // binops / relops
    return true;
  }
  return false;
}

bool isControlOrCall(uint32_t Op) {
  return Op == 0x00 /*Unreachable*/ ||
         (Op >= FGoto && Op <= FCallIndirect);
}

/// Compiles one FlatFunc to position-independent machine code. All
/// operand heights are static; any analysis surprise refuses the
/// compile (the function then stays on the flat tier forever).
struct FuncCompiler {
  const exec::FlatModule &FM;
  const exec::FlatFunc &F;
  const uint32_t *C;
  uint32_t Len;
  Asm A;

  std::vector<int32_t> H;        ///< Operand height before each pc; -1 unknown.
  std::vector<uint8_t> IsStart;  ///< pc is an instruction start.
  std::vector<uint8_t> ChargePt; ///< pc starts a fuel segment.
  std::vector<size_t> NativeOfs; ///< pc word → native code offset.

  struct Jump {
    size_t Pos;      ///< rel32 patch position.
    uint32_t Target; ///< Target pc word.
  };
  std::vector<Jump> Jumps;
  struct DeoptSite {
    size_t Pos; ///< rel32 patch position of the jump into the stub.
    uint32_t Refund, Pc, Sp;
    bool CheckOne; ///< Call slow path: JDeoptHere(1) deopts, else propagate.
  };
  std::vector<DeoptSite> Deopts;
  std::vector<size_t> OkPatches;       ///< Jumps to "return JOk".
  std::vector<size_t> EpiloguePatches; ///< Jumps to the propagate epilogue.
  size_t EpilogueOfs = 0;

  FuncCompiler(const exec::FlatModule &FM, const exec::FlatFunc &F)
      : FM(FM), F(F), C(F.Code.data()),
        Len(static_cast<uint32_t>(F.Code.size())) {}

  bool analyze() {
    H.assign(Len + 1, -1);
    IsStart.assign(Len + 1, 0);
    ChargePt.assign(Len + 1, 0);
    if (Len == 0)
      return false;

    // Pass 1: instruction starts, branch targets, charge points.
    std::vector<uint32_t> Targets;
    bool PrevBreak = true;
    for (uint32_t Pc = 0; Pc < Len;) {
      IsStart[Pc] = 1;
      if (PrevBreak)
        ChargePt[Pc] = 1;
      uint32_t Op = C[Pc];
      int W = operandWords(Op, C + Pc + 1, Len - Pc - 1);
      if (W < 0 || Pc + 1 + static_cast<uint32_t>(W) > Len)
        return false;
      switch (Op) {
      case FGoto: case FGotoIf: case FGotoIfZ: case FBr: case FBrIf:
        Targets.push_back(C[Pc + 1]);
        break;
      case FBrTable:
        for (uint32_t I = 0; I <= C[Pc + 1]; ++I)
          Targets.push_back(C[Pc + 2 + 3 * I]);
        break;
      default:
        break;
      }
      PrevBreak = isControlOrCall(Op);
      Pc += 1 + W;
    }
    for (uint32_t T : Targets) {
      if (T >= Len || !IsStart[T])
        return false;
      ChargePt[T] = 1;
    }

    // Pass 2: static operand heights (forward scan; branch targets get
    // their height from the branch's fix-up immediates).
    auto SetT = [&](uint32_t T, int32_t Ht) {
      if (H[T] >= 0)
        return H[T] == Ht;
      H[T] = Ht;
      return true;
    };
    int32_t Cur = 0;
    bool Reach = true;
    for (uint32_t Pc = 0; Pc < Len;) {
      uint32_t Op = C[Pc];
      int W = operandWords(Op, C + Pc + 1, Len - Pc - 1);
      if (H[Pc] >= 0) {
        if (Reach && H[Pc] != Cur)
          return false;
        Cur = H[Pc];
      } else {
        if (!Reach)
          return false; // Dead code: the translator elides it; refuse.
        H[Pc] = Cur;
      }
      Reach = true;
      switch (Op) {
      case FGoto:
        if (!SetT(C[Pc + 1], Cur))
          return false;
        Reach = false;
        break;
      case FGotoIf: case FGotoIfZ:
        Cur -= 1;
        if (Cur < 0 || !SetT(C[Pc + 1], Cur))
          return false;
        break;
      case FBr:
        if (!SetT(C[Pc + 1],
                  static_cast<int32_t>(C[Pc + 3] + C[Pc + 2])))
          return false;
        Reach = false;
        break;
      case FBrIf:
        Cur -= 1;
        if (Cur < 0 ||
            !SetT(C[Pc + 1], static_cast<int32_t>(C[Pc + 3] + C[Pc + 2])))
          return false;
        break;
      case FBrTable: {
        Cur -= 1;
        if (Cur < 0)
          return false;
        for (uint32_t I = 0; I <= C[Pc + 1]; ++I) {
          const uint32_t *E = C + Pc + 2 + 3 * I;
          if (!SetT(E[0], static_cast<int32_t>(E[2] + E[1])))
            return false;
        }
        Reach = false;
        break;
      }
      case FReturn:
        if (Cur < static_cast<int32_t>(F.NumResults))
          return false;
        Reach = false;
        break;
      case FCall: {
        if (C[Pc + 1] >= FM.Funcs.size())
          return false;
        const exec::FlatFunc &Cal = FM.Funcs[C[Pc + 1]];
        Cur += static_cast<int32_t>(Cal.NumResults) -
               static_cast<int32_t>(Cal.NumParams);
        break;
      }
      case FCallHost: {
        if (C[Pc + 1] >= FM.Source->ImportFuncs.size())
          return false;
        const FuncType &HT =
            FM.Source->Types[FM.Source->ImportFuncs[C[Pc + 1]].TypeIdx];
        Cur += static_cast<int32_t>(HT.Results.size()) -
               static_cast<int32_t>(HT.Params.size());
        break;
      }
      case FCallIndirect: {
        if (C[Pc + 1] >= FM.Source->Types.size())
          return false;
        const FuncType &T = FM.Source->Types[C[Pc + 1]];
        Cur += -1 + static_cast<int32_t>(T.Results.size()) -
               static_cast<int32_t>(T.Params.size());
        break;
      }
      case 0x00: // Unreachable
        Reach = false;
        break;
      case FGetGet: case FGetConst:
        Cur += 2;
        break;
      case FGetGetAdd: case FGetConstAdd: case FGetLoadI32:
        Cur += 1;
        break;
      case FGetGetAddSet: case FGetConstAddSet: case FMove: case FConstSet:
      case FGetGetStoreI32: case FGetConstStoreI32:
      case FProfEnter: case FProfLoop:
        break;
      default: {
        int D;
        if (!stackDelta(Op, D))
          return false;
        Cur += D;
        break;
      }
      }
      if (Cur < 0 || Cur > static_cast<int32_t>(F.MaxDepth))
        return false;
      Pc += 1 + W;
    }
    return !Reach; // The body must end in a terminal instruction.
  }

  /// Fuel instructions from segment start \p Pc to the end of its
  /// segment (the next charge point). FProf ops are fuel-neutral.
  uint32_t fuelCount(uint32_t Pc) const {
    uint32_t K = 0;
    for (uint32_t Q = Pc; Q < Len;) {
      uint32_t Op = C[Q];
      if (Op != FProfEnter && Op != FProfLoop)
        ++K;
      Q += 1 + operandWords(Op, C + Q + 1, Len - Q - 1);
      if (Q >= Len || ChargePt[Q])
        break;
    }
    return K;
  }

  static constexpr int32_t slot(int32_t K) { return 8 * K; }

  void deoptJcc(uint8_t Cc, uint32_t Refund, uint32_t Pc, uint32_t Sp) {
    Deopts.push_back({A.jcc(Cc), Refund, Pc, Sp, false});
  }

  /// Reloads the pointer registers from the context after a helper that
  /// may have resized instance vectors or grown memory.
  void reloadBases(bool OpsRegs, bool Memory) {
    if (OpsRegs) {
      A.movRM64(R12, RBX, OffOps);
      A.aluRM(0x03, true, R12, RSP, 0);
      A.movRM64(R13, RBX, OffRegs);
      A.aluRM(0x03, true, R13, RSP, 8);
    }
    if (Memory) {
      A.movRM64(R14, RBX, OffMemP);
      A.movRM64(R15, RBX, OffMemSz);
    }
  }

  void callHelper(const void *Fn) {
    A.movRI64(RAX, reinterpret_cast<uint64_t>(Fn));
    A.callRax();
  }

  /// addr = u32(rax) + Off; bounds-check Nbytes against Mem.size().
  /// Leaves the checked address in rcx; deopts (refund \p SegLeft) on an
  /// out-of-bounds access so the interpreter re-executes and traps.
  void emitMemCheck(uint32_t Off, uint32_t Nbytes, uint32_t SegLeft,
                    uint32_t Pc, int32_t Hh) {
    A.movRI32(RCX, Off);
    A.aluRR(0x03, true, RCX, RAX); // add rcx, rax (u32 addr + u32 off)
    A.lea64(RDX, RCX, static_cast<int32_t>(Nbytes));
    A.aluRR(0x3b, true, RDX, R15); // cmp rdx, r15
    deoptJcc(CA, SegLeft, Pc, static_cast<uint32_t>(Hh));
  }

  /// Copies Keep slots from \p SrcSlot to \p DstSlot (ascending; the
  /// branch fix-up always has Dst <= Src, same as the interpreter loop).
  void emitStackCopy(int32_t DstSlot, int32_t SrcSlot, uint32_t Keep) {
    if (DstSlot == SrcSlot)
      return;
    for (uint32_t K = 0; K < Keep; ++K) {
      A.movRM64(RAX, R12, slot(SrcSlot + K));
      A.movMR64(R12, slot(DstSlot + K), RAX);
    }
  }

  bool emit();
  bool emitInst(uint32_t Pc, uint32_t Op, int32_t Hh, uint32_t SegLeft);
  void finish();
};

bool FuncCompiler::emit() {
  NativeOfs.assign(Len + 1, 0);

  // Prologue: save callee-saved registers, spill the byte bases for
  // post-helper reloads, derive the pointer registers.
  A.push(RBP); A.push(RBX); A.push(R12); A.push(R13); A.push(R14); A.push(R15);
  A.aluRI(5, true, RSP, 24); // sub rsp, 24 (16-align + 2 spill slots)
  A.movMR64(RSP, 0, RSI);    // [rsp+0]  = OpBase8
  A.movMR64(RSP, 8, RDX);    // [rsp+8]  = RegBase8
  A.movRR64(RBX, RDI);
  A.movRM64(R12, RBX, OffOps);
  A.aluRR(0x03, true, R12, RSI);
  A.movRM64(R13, RBX, OffRegs);
  A.aluRR(0x03, true, R13, RDX);
  A.movRM64(R14, RBX, OffMemP);
  A.movRM64(R15, RBX, OffMemSz);

  uint32_t SegLeft = 0;
  for (uint32_t Pc = 0; Pc < Len;) {
    uint32_t Op = C[Pc];
    int W = operandWords(Op, C + Pc + 1, Len - Pc - 1);
    NativeOfs[Pc] = A.size(); // Jumps land on the segment's fuel charge.
    if (ChargePt[Pc]) {
      SegLeft = fuelCount(Pc);
      if (SegLeft) {
        A.aluMI64(5, RBX, OffFuel, SegLeft); // sub qword [ctx.Fuel], K
        deoptJcc(CB, SegLeft, Pc, static_cast<uint32_t>(H[Pc]));
      }
    }
    if (!emitInst(Pc, Op, H[Pc], SegLeft))
      return false;
    if (Op != FProfEnter && Op != FProfLoop)
      --SegLeft;
    Pc += 1 + W;
  }
  finish();
  return true;
}

bool FuncCompiler::emitInst(uint32_t Pc, uint32_t Op, int32_t Hh,
                            uint32_t SegLeft) {
  const uint32_t *Im = C + Pc + 1;
  switch (Op) {
  case 0x00: // Unreachable: deopt; the interpreter re-executes and traps.
    A.u8(0xe9); // Unconditional jmp into the stub (patched like a jcc).
    Deopts.push_back(
        {(A.u32(0), A.size() - 4), SegLeft, Pc, static_cast<uint32_t>(Hh),
         false});
    return true;

  case FGoto:
    Jumps.push_back({A.jmp(), Im[0]});
    return true;

  case FGotoIf: case FGotoIfZ:
    A.movRM32(RAX, R12, slot(Hh - 1));
    A.aluRR(0x85, false, RAX, RAX); // test eax, eax
    Jumps.push_back({A.jcc(Op == FGotoIf ? CNE : CE), Im[0]});
    return true;

  case FBr:
    emitStackCopy(static_cast<int32_t>(Im[2]),
                  Hh - static_cast<int32_t>(Im[1]), Im[1]);
    Jumps.push_back({A.jmp(), Im[0]});
    return true;

  case FBrIf: {
    A.movRM32(RAX, R12, slot(Hh - 1));
    A.aluRR(0x85, false, RAX, RAX);
    size_t Skip = A.jcc(CE);
    emitStackCopy(static_cast<int32_t>(Im[2]),
                  (Hh - 1) - static_cast<int32_t>(Im[1]), Im[1]);
    Jumps.push_back({A.jmp(), Im[0]});
    A.bind(Skip);
    return true;
  }

  case FBrTable: {
    uint32_t N = Im[0];
    A.movRM32(RAX, R12, slot(Hh - 1));
    std::vector<size_t> Cases(N);
    for (uint32_t I = 0; I < N; ++I) {
      A.aluRI(7, false, RAX, I); // cmp eax, I
      Cases[I] = A.jcc(CE);
    }
    size_t Dflt = A.jmp();
    for (uint32_t I = 0; I <= N; ++I) {
      if (I < N)
        A.bind(Cases[I]);
      else
        A.bind(Dflt);
      const uint32_t *E = Im + 1 + 3 * I;
      emitStackCopy(static_cast<int32_t>(E[2]),
                    (Hh - 1) - static_cast<int32_t>(E[1]), E[1]);
      Jumps.push_back({A.jmp(), E[0]});
    }
    return true;
  }

  case FReturn: {
    uint32_t NRes = F.NumResults;
    emitStackCopy(0, Hh - static_cast<int32_t>(NRes), NRes);
    OkPatches.push_back(A.jmp());
    return true;
  }

  case FCall: case FCallIndirect: {
    A.movRR64(RDI, RBX);
    A.movRI32(RSI, Im[0]);
    A.movRI32(RDX, static_cast<uint32_t>(Hh));
    A.movRI32(RCX, Pc + 2);
    callHelper(Op == FCall ? reinterpret_cast<const void *>(&rwJitCall)
                           : reinterpret_cast<const void *>(&rwJitIndirect));
    A.aluRR(0x85, false, RAX, RAX); // test eax, eax
    // Calls end their fuel segment, so a re-execute deopt refunds 1.
    Deopts.push_back({A.jcc(CNE), 1, Pc, static_cast<uint32_t>(Hh), true});
    reloadBases(true, true);
    return true;
  }

  case FCallHost:
    A.movRR64(RDI, RBX);
    A.movRI32(RSI, Im[0]);
    A.movRI32(RDX, static_cast<uint32_t>(Hh));
    A.movRI32(RCX, Pc + 2);
    callHelper(reinterpret_cast<const void *>(&rwJitHost));
    A.aluRR(0x85, false, RAX, RAX);
    EpiloguePatches.push_back(A.jcc(CNE)); // JTrapFinal/JUnwind: propagate.
    reloadBases(true, true);
    return true;

  case FGetGet:
    A.movRM64(RAX, R13, slot(Im[0]));
    A.movMR64(R12, slot(Hh), RAX);
    A.movRM64(RAX, R13, slot(Im[1]));
    A.movMR64(R12, slot(Hh + 1), RAX);
    return true;

  case FGetConst:
    A.movRM64(RAX, R13, slot(Im[0]));
    A.movMR64(R12, slot(Hh), RAX);
    A.movRI32(RAX, Im[1]);
    A.movMR64(R12, slot(Hh + 1), RAX);
    return true;

  case FGetGetAdd:
    A.movRM32(RAX, R13, slot(Im[0]));
    A.aluRM(0x03, false, RAX, R13, slot(Im[1]));
    A.movMR64(R12, slot(Hh), RAX);
    return true;

  case FGetConstAdd:
    A.movRM32(RAX, R13, slot(Im[0]));
    A.aluRI(0, false, RAX, Im[1]);
    A.movMR64(R12, slot(Hh), RAX);
    return true;

  case FGetGetAddSet:
    A.movRM32(RAX, R13, slot(Im[0]));
    A.aluRM(0x03, false, RAX, R13, slot(Im[1]));
    A.movMR64(R13, slot(Im[2]), RAX);
    return true;

  case FGetConstAddSet:
    A.movRM32(RAX, R13, slot(Im[0]));
    A.aluRI(0, false, RAX, Im[1]);
    A.movMR64(R13, slot(Im[2]), RAX);
    return true;

  case FMove:
    A.movRM64(RAX, R13, slot(Im[0]));
    A.movMR64(R13, slot(Im[1]), RAX);
    return true;

  case FConstSet:
    A.movRI32(RAX, Im[0]);
    A.movMR64(R13, slot(Im[1]), RAX);
    return true;

  case FGetLoadI32:
    A.movRM32(RAX, R13, slot(Im[0]));
    emitMemCheck(Im[1], 4, SegLeft, Pc, Hh);
    A.loadBI(RAX, R14, RCX, 6);
    A.movMR64(R12, slot(Hh), RAX);
    return true;

  case FGetGetStoreI32:
    A.movRM32(RAX, R13, slot(Im[0]));
    emitMemCheck(Im[2], 4, SegLeft, Pc, Hh);
    A.movRM32(RAX, R13, slot(Im[1]));
    A.storeBI(R14, RCX, RAX, 4);
    return true;

  case FGetConstStoreI32:
    A.movRM32(RAX, R13, slot(Im[0]));
    emitMemCheck(Im[2], 4, SegLeft, Pc, Hh);
    A.movRI32(RAX, Im[1]);
    A.storeBI(R14, RCX, RAX, 4);
    return true;

  case FProfEnter: case FProfLoop: {
    int32_t Off = static_cast<int32_t>(16 * Im[0]) +
                  (Op == FProfLoop ? 8 : 0);
    A.movRM64(RAX, RBX, OffProf);
    A.movRM64(RCX, RAX, Off);
    A.cmpRI8_64(RCX, 0xff); // cmp rcx, -1: saturated?
    size_t Skip = A.jcc(CE);
    A.aluRI(0, true, RCX, 1);
    A.movMR64(RAX, Off, RCX);
    A.bind(Skip);
    return true;
  }

  case 0x1a: // Drop
    return true;

  case 0x1b: // Select
    A.movRM32(RAX, R12, slot(Hh - 1));
    A.movRM64(RCX, R12, slot(Hh - 3));
    A.movRM64(RDX, R12, slot(Hh - 2));
    A.aluRR(0x85, false, RAX, RAX);
    A.cmovRR64(CE, RCX, RDX); // cond == 0 picks the second value.
    A.movMR64(R12, slot(Hh - 3), RCX);
    return true;

  case 0x20: // LocalGet
    A.movRM64(RAX, R13, slot(Im[0]));
    A.movMR64(R12, slot(Hh), RAX);
    return true;

  case 0x21: case 0x22: // LocalSet / LocalTee
    A.movRM64(RAX, R12, slot(Hh - 1));
    A.movMR64(R13, slot(Im[0]), RAX);
    return true;

  case 0x23: // GlobalGet
    A.movRM64(RAX, RBX, OffGlobals);
    A.movRM64(RCX, RAX, static_cast<int32_t>(16 * Im[0] + 8));
    A.movMR64(R12, slot(Hh), RCX);
    return true;

  case 0x24: // GlobalSet
    A.movRM64(RAX, RBX, OffGlobals);
    A.movRM64(RCX, R12, slot(Hh - 1));
    A.movMR64(RAX, static_cast<int32_t>(16 * Im[0] + 8), RCX);
    return true;

  case 0x3f: // MemorySize
    A.movRR64(RAX, R15);
    A.shrRI64(RAX, 16);
    A.movMR64(R12, slot(Hh), RAX);
    return true;

  case 0x40: // MemoryGrow
    A.movRR64(RDI, RBX);
    A.movRI32(RSI, static_cast<uint32_t>(Hh));
    callHelper(reinterpret_cast<const void *>(&rwJitGrow));
    reloadBases(false, true);
    return true;

  case 0x41: case 0x43: // I32Const / F32Const
    A.movRI32(RAX, Im[0]);
    A.movMR64(R12, slot(Hh), RAX);
    return true;

  case 0x42: case 0x44: { // I64Const / F64Const
    uint64_t V = Im[0] | (static_cast<uint64_t>(Im[1]) << 32);
    A.movRI64(RAX, V);
    A.movMR64(R12, slot(Hh), RAX);
    return true;
  }

  case 0x45: case 0x50: // I32Eqz / I64Eqz
    if (Op == 0x45)
      A.movRM32(RAX, R12, slot(Hh - 1));
    else
      A.movRM64(RAX, R12, slot(Hh - 1));
    A.aluRR(0x85, Op == 0x50, RAX, RAX);
    A.setccAL(CE);
    A.movzxEaxAl();
    A.movMR64(R12, slot(Hh - 1), RAX);
    return true;
  }

  // Loads 0x28..0x35: kind = loadBI encoding (see Asm::loadBI).
  if (Op >= 0x28 && Op <= 0x35) {
    static const struct { uint8_t Bytes, Kind; } LK[] = {
        {4, 6}, {8, 8}, {4, 6}, {8, 8}, // i32/i64/f32/f64
        {1, 1}, {1, 0}, {2, 4}, {2, 3}, // i32 8s/8u/16s/16u
        {1, 2}, {1, 0}, {2, 5}, {2, 3}, // i64 8s/8u/16s/16u
        {4, 7}, {4, 6},                 // i64 32s/32u
    };
    const auto &L = LK[Op - 0x28];
    A.movRM32(RAX, R12, slot(Hh - 1));
    emitMemCheck(Im[0], L.Bytes, SegLeft, Pc, Hh);
    A.loadBI(RAX, R14, RCX, L.Kind);
    A.movMR64(R12, slot(Hh - 1), RAX);
    return true;
  }

  // Stores 0x36..0x3e: value at Hh-1, address at Hh-2.
  if (Op >= 0x36 && Op <= 0x3e) {
    static const uint8_t SB[] = {4, 8, 4, 8, 1, 2, 1, 2, 4};
    uint8_t Bytes = SB[Op - 0x36];
    A.movRM32(RAX, R12, slot(Hh - 2));
    emitMemCheck(Im[0], Bytes, SegLeft, Pc, Hh);
    A.movRM64(RAX, R12, slot(Hh - 1));
    A.storeBI(R14, RCX, RAX, Bytes);
    return true;
  }

  // Inline i32/i64 ALU and relops (same set the interpreter fast-paths,
  // plus the sar variants). Everything else goes through the generic
  // helpers below.
  {
    bool W64 = false;
    uint8_t Alu = 0;
    switch (Op) {
    case 0x6a: Alu = 0x03; break; case 0x6b: Alu = 0x2b; break; // add/sub
    case 0x71: Alu = 0x23; break; case 0x72: Alu = 0x0b; break; // and/or
    case 0x73: Alu = 0x33; break;                               // xor
    case 0x7c: Alu = 0x03; W64 = true; break;
    case 0x7d: Alu = 0x2b; W64 = true; break;
    case 0x83: Alu = 0x23; W64 = true; break;
    case 0x84: Alu = 0x0b; W64 = true; break;
    case 0x85: Alu = 0x33; W64 = true; break;
    default: break;
    }
    if (Alu) {
      if (W64)
        A.movRM64(RAX, R12, slot(Hh - 2));
      else
        A.movRM32(RAX, R12, slot(Hh - 2));
      A.aluRM(Alu, W64, RAX, R12, slot(Hh - 1));
      A.movMR64(R12, slot(Hh - 2), RAX);
      return true;
    }
    if (Op == 0x6c || Op == 0x7e) { // I32Mul / I64Mul
      W64 = Op == 0x7e;
      if (W64)
        A.movRM64(RAX, R12, slot(Hh - 2));
      else
        A.movRM32(RAX, R12, slot(Hh - 2));
      A.imulRM(W64, RAX, R12, slot(Hh - 1));
      A.movMR64(R12, slot(Hh - 2), RAX);
      return true;
    }
    uint8_t Sh = 0;
    switch (Op) {
    case 0x74: Sh = 4; break; case 0x75: Sh = 7; break; // i32 shl/sar
    case 0x76: Sh = 5; break;                           // i32 shr
    case 0x86: Sh = 4; W64 = true; break;
    case 0x87: Sh = 7; W64 = true; break;
    case 0x88: Sh = 5; W64 = true; break;
    default: break;
    }
    if (Sh) {
      A.movRM32(RCX, R12, slot(Hh - 1)); // cl; hardware masks the count.
      if (W64)
        A.movRM64(RAX, R12, slot(Hh - 2));
      else
        A.movRM32(RAX, R12, slot(Hh - 2));
      A.shiftCL(Sh, W64, RAX);
      A.movMR64(R12, slot(Hh - 2), RAX);
      return true;
    }
    if ((Op >= 0x46 && Op <= 0x4f) || (Op >= 0x51 && Op <= 0x5a)) {
      // eq ne lt_s lt_u gt_s gt_u le_s le_u ge_s ge_u
      static const uint8_t CCs[] = {CE, CNE, CL_, CB, CG, CA, CLE, CBE,
                                    CGE, CAE};
      W64 = Op >= 0x51;
      uint8_t Cc = CCs[Op - (W64 ? 0x51 : 0x46)];
      if (W64)
        A.movRM64(RAX, R12, slot(Hh - 2));
      else
        A.movRM32(RAX, R12, slot(Hh - 2));
      A.aluRM(0x3b, W64, RAX, R12, slot(Hh - 1));
      A.setccAL(Cc);
      A.movzxEaxAl();
      A.movMR64(R12, slot(Hh - 2), RAX);
      return true;
    }
  }

  // Generic tail: dispatch by arity through the C++ helpers that share
  // the interpreter's num:: evaluators (bit-exact, including div/trunc
  // traps, which deopt so the interpreter re-executes and traps).
  int D;
  if (Op <= 0xbf && stackDelta(Op, D) && (D == 0 || D == -1)) {
    A.movRI32(RDI, Op);
    A.movRM64(RSI, R12, slot(D == -1 ? Hh - 2 : Hh - 1));
    if (D == -1) {
      A.movRM64(RDX, R12, slot(Hh - 1));
      A.lea64(RCX, RBX, OffGenTrap);
      callHelper(reinterpret_cast<const void *>(&rwJitGenBin));
    } else {
      A.lea64(RDX, RBX, OffGenTrap);
      callHelper(reinterpret_cast<const void *>(&rwJitGenUn));
    }
    A.cmpMI8(RBX, OffGenTrap, 0);
    deoptJcc(CNE, SegLeft, Pc, static_cast<uint32_t>(Hh));
    A.movMR64(R12, slot(D == -1 ? Hh - 2 : Hh - 1), RAX);
    return true;
  }
  return false;
}

void FuncCompiler::finish() {
  // Shared exits: JOk falls through into the epilogue; everything else
  // jumps into the epilogue with its status already in eax.
  size_t OkOfs = A.size();
  A.aluRR(0x33, false, RAX, RAX); // xor eax, eax == JOk
  EpilogueOfs = A.size();
  A.aluRI(0, true, RSP, 24);
  A.pop(R15); A.pop(R14); A.pop(R13); A.pop(R12); A.pop(RBX); A.pop(RBP);
  A.ret();

  // Deopt stubs: refund the unexecuted remainder of the fuel segment,
  // record the resume point, and return JDeoptHere. Call slow paths
  // first split JDeoptHere (re-execute the call) from propagation.
  for (const DeoptSite &S : Deopts) {
    A.bind(S.Pos);
    if (S.CheckOne) {
      A.aluRI(7, false, RAX, 1); // cmp eax, JDeoptHere
      size_t P = A.jcc(CNE);
      A.patch32(P, static_cast<uint32_t>(EpilogueOfs - (P + 4)));
    }
    if (S.Refund) {
      A.aluMI64(0, RBX, OffFuel, S.Refund);
      // Mirror the refund into the observability accumulator so the
      // engine can count refunded fuel without diffing fuel itself.
      A.aluMI64(0, RBX, OffFuelRefund, S.Refund);
    }
    A.movMI32(RBX, OffDeoptPc, S.Pc);
    A.movMI32(RBX, OffDeoptSp, S.Sp);
    A.movRI32(RAX, JDeoptHere);
    size_t P = A.jmp();
    A.patch32(P, static_cast<uint32_t>(EpilogueOfs - (P + 4)));
  }

  for (size_t P : OkPatches)
    A.patch32(P, static_cast<uint32_t>(OkOfs - (P + 4)));
  for (size_t P : EpiloguePatches)
    A.patch32(P, static_cast<uint32_t>(EpilogueOfs - (P + 4)));
  for (const Jump &J : Jumps)
    A.patch32(J.Pos, static_cast<uint32_t>(NativeOfs[J.Target] - (J.Pos + 4)));
}

} // namespace

//===----------------------------------------------------------------------===//
// ModuleJit: thread-safe compile/publish with W^X page lifecycle.
//===----------------------------------------------------------------------===//

namespace {

/// Maps a fresh RW page set, copies the code in, then flips to RX before
/// the entry is published (W^X: pages are never writable and executable
/// at the same time).
uint8_t *allocExec(const std::vector<uint8_t> &Buf, size_t &SzOut) {
  // Page-map seam: a failed mmap/mprotect refuses the function, which
  // then stays on the flat interpreter forever (state 3 below).
  if (RW_FAULT_POINT(support::fault::Seam::JitMap))
    return nullptr;
  size_t PageSz = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  size_t Sz = (Buf.size() + PageSz - 1) & ~(PageSz - 1);
  void *P = mmap(nullptr, Sz, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED)
    return nullptr;
#if RW_JIT_ASAN
  ASAN_UNPOISON_MEMORY_REGION(P, Sz);
#endif
  std::memcpy(P, Buf.data(), Buf.size());
  if (mprotect(P, Sz, PROT_READ | PROT_EXEC) != 0) {
    munmap(P, Sz);
    return nullptr;
  }
  SzOut = Sz;
  return static_cast<uint8_t *>(P);
}

} // namespace

ModuleJit::ModuleJit(const exec::FlatModule &FM)
    : FM(FM), Entries(FM.Funcs.size()), State(FM.Funcs.size()) {
  // Tier/code-cache observability: every live ModuleJit is an obs source
  // ("jit.*"; a second live module shows up as "jit#2.*") emitting its
  // aggregate tier counts, resident code bytes, and the per-function
  // tier state (funcN.tier: 0 untried, 1 compiling, 2 native, 3 refused).
  ObsSourceId = obs::registerSource("jit", [this](const obs::EmitFn &E) {
    uint32_t Done = compiledCount(), Refused = unsupportedCount();
    uint32_t Total = static_cast<uint32_t>(this->FM.Funcs.size());
    E("funcs", Total);
    E("compiled", Done);
    E("unsupported", Refused);
    E("pending", Total - Done - Refused);
    E("code_bytes", codeBytes());
    for (uint32_t I = 0; I < Total; ++I)
      E(("func" + std::to_string(I) + ".tier").c_str(), tierState(I));
  });
}

ModuleJit::~ModuleJit() {
  obs::unregisterSource(ObsSourceId);
  for (const Page &P : Pages)
    munmap(P.P, P.Sz);
}

bool ModuleJit::compile(uint32_t DefIdx) {
  uint8_t Untried = 0;
  if (!State[DefIdx].compare_exchange_strong(Untried, 1,
                                             std::memory_order_acq_rel))
    return State[DefIdx].load(std::memory_order_acquire) == 2;

  static obs::Counter CompiledC("exec.tier.compiled");
  static obs::Counter UnsupportedC("exec.tier.unsupported");
  static obs::Histogram CompileNs("jit.compile.ns");
  OBS_SPAN("translate_jit", DefIdx);
  uint64_t T0 = obs::enabled() ? obs::nowNs() : 0;

  FuncCompiler FC(FM, FM.Funcs[DefIdx]);
  uint8_t *Code = nullptr;
  size_t Sz = 0;
  if (!RW_FAULT_POINT(support::fault::Seam::JitCompile) && FC.analyze() &&
      FC.emit())
    Code = allocExec(FC.A.B, Sz);
  if (T0)
    CompileNs.record(obs::nowNs() - T0);
  if (!Code) {
    UnsupportedC.inc();
    Unsupported.fetch_add(1, std::memory_order_relaxed);
    State[DefIdx].store(3, std::memory_order_release);
    return false;
  }
  {
    std::lock_guard<std::mutex> Lock(PagesMu);
    Pages.push_back({Code, Sz});
  }
  CodeBytes.fetch_add(Sz, std::memory_order_relaxed);
  Entries[DefIdx].store(reinterpret_cast<NativeFn>(Code),
                        std::memory_order_release);
  Compiled.fetch_add(1, std::memory_order_relaxed);
  State[DefIdx].store(2, std::memory_order_release);
  CompiledC.inc();
  return true;
}

void ModuleJit::compileAll() {
  for (uint32_t I = 0; I < FM.Funcs.size(); ++I)
    compile(I);
}

//===----------------------------------------------------------------------===//
// Generic-op helpers: the interpreter's generic tail, factored for a
// C call from generated code. Bit-exact by construction (same num::
// evaluators); a trap sets *Trap and the template deopts, letting the
// interpreter re-execute the instruction and produce the exact trap.
//===----------------------------------------------------------------------===//

extern "C" uint64_t rwJitGenBin(uint32_t OpC, uint64_t A, uint64_t B,
                                uint32_t *Trap) {
  using namespace rw::num;
  *Trap = 0;
  if ((OpC >= 0x46 && OpC <= 0x4f) || (OpC >= 0x51 && OpC <= 0x5a)) {
    static const IntRelop Map[] = {IntRelop::Eq, IntRelop::Ne, IntRelop::Lt,
                                   IntRelop::Lt, IntRelop::Gt, IntRelop::Gt,
                                   IntRelop::Le, IntRelop::Le, IntRelop::Ge,
                                   IntRelop::Ge};
    static const bool Signed[] = {false, false, true, false, true,
                                  false, true,  false, true, false};
    bool Is64 = OpC >= 0x51;
    unsigned Idx = Is64 ? OpC - 0x51 : OpC - 0x46;
    return evalIntRelop(Map[Idx], A, B, Is64, Signed[Idx]);
  }
  if (OpC >= 0x5b && OpC <= 0x66) {
    static const FloatRelop Map[] = {FloatRelop::Eq, FloatRelop::Ne,
                                     FloatRelop::Lt, FloatRelop::Gt,
                                     FloatRelop::Le, FloatRelop::Ge};
    bool Is64 = OpC >= 0x61;
    return evalFloatRelop(Map[Is64 ? OpC - 0x61 : OpC - 0x5b], A, B, Is64);
  }
  if ((OpC >= 0x6a && OpC <= 0x78) || (OpC >= 0x7c && OpC <= 0x8a)) {
    static const IntBinop Map[] = {
        IntBinop::Add, IntBinop::Sub,  IntBinop::Mul, IntBinop::Div,
        IntBinop::Div, IntBinop::Rem,  IntBinop::Rem, IntBinop::And,
        IntBinop::Or,  IntBinop::Xor,  IntBinop::Shl, IntBinop::Shr,
        IntBinop::Shr, IntBinop::Rotl, IntBinop::Rotr};
    static const bool Signed[] = {false, false, false, true,  false,
                                  true,  false, false, false, false,
                                  false, true,  false, false, false};
    bool Is64 = OpC >= 0x7c;
    unsigned Idx = Is64 ? OpC - 0x7c : OpC - 0x6a;
    std::optional<uint64_t> V = evalIntBinop(Map[Idx], A, B, Is64, Signed[Idx]);
    if (!V) {
      *Trap = 1; // "integer divide error": deopt and re-execute.
      return 0;
    }
    return *V;
  }
  if ((OpC >= 0x92 && OpC <= 0x98) || (OpC >= 0xa0 && OpC <= 0xa6)) {
    static const FloatBinop Map[] = {
        FloatBinop::Add, FloatBinop::Sub, FloatBinop::Mul, FloatBinop::Div,
        FloatBinop::Min, FloatBinop::Max, FloatBinop::Copysign};
    bool Is64 = OpC >= 0xa0;
    return evalFloatBinop(Map[Is64 ? OpC - 0xa0 : OpC - 0x92], A, B, Is64);
  }
  *Trap = 1;
  return 0;
}

extern "C" uint64_t rwJitGenUn(uint32_t OpC, uint64_t A, uint32_t *Trap) {
  using namespace rw::num;
  *Trap = 0;
  if (OpC >= 0x67 && OpC <= 0x69)
    return OpC == 0x67   ? intClz(A, false)
           : OpC == 0x68 ? intCtz(A, false)
                         : intPopcnt(A, false);
  if (OpC >= 0x79 && OpC <= 0x7b)
    return OpC == 0x79   ? intClz(A, true)
           : OpC == 0x7a ? intCtz(A, true)
                         : intPopcnt(A, true);
  if ((OpC >= 0x8b && OpC <= 0x91) || (OpC >= 0x99 && OpC <= 0x9f)) {
    static const FloatUnop Map[] = {FloatUnop::Abs,   FloatUnop::Neg,
                                    FloatUnop::Ceil,  FloatUnop::Floor,
                                    FloatUnop::Trunc, FloatUnop::Nearest,
                                    FloatUnop::Sqrt};
    bool Is64 = OpC >= 0x99;
    return evalFloatUnop(Map[Is64 ? OpC - 0x99 : OpC - 0x8b], A, Is64);
  }
  switch (static_cast<wasm::Op>(OpC)) {
  case wasm::Op::I32WrapI64:
    return A & 0xffffffffu;
  case wasm::Op::I64ExtendI32S:
    return static_cast<uint64_t>(static_cast<int64_t>(
        static_cast<int32_t>(static_cast<uint32_t>(A))));
  case wasm::Op::I64ExtendI32U:
    return static_cast<uint32_t>(A);
  case wasm::Op::I32TruncF32S:
  case wasm::Op::I32TruncF32U:
  case wasm::Op::I64TruncF32S:
  case wasm::Op::I64TruncF32U: {
    bool Dst64 = OpC == 0xae || OpC == 0xaf;
    bool Sgn = OpC == 0xa8 || OpC == 0xae;
    std::optional<uint64_t> V = truncToInt(bitsToF32(A), Dst64, Sgn);
    if (!V) {
      *Trap = 1; // "invalid conversion to integer": re-execute.
      return 0;
    }
    return *V;
  }
  case wasm::Op::I32TruncF64S:
  case wasm::Op::I32TruncF64U:
  case wasm::Op::I64TruncF64S:
  case wasm::Op::I64TruncF64U: {
    bool Dst64 = OpC == 0xb0 || OpC == 0xb1;
    bool Sgn = OpC == 0xaa || OpC == 0xb0;
    std::optional<uint64_t> V = truncToInt(bitsToF64(A), Dst64, Sgn);
    if (!V) {
      *Trap = 1;
      return 0;
    }
    return *V;
  }
  case wasm::Op::F32ConvertI32S:
    return f32ToBits(static_cast<float>(
        static_cast<int32_t>(static_cast<uint32_t>(A))));
  case wasm::Op::F32ConvertI32U:
    return f32ToBits(static_cast<float>(static_cast<uint32_t>(A)));
  case wasm::Op::F32ConvertI64S:
    return f32ToBits(static_cast<float>(static_cast<int64_t>(A)));
  case wasm::Op::F32ConvertI64U:
    return f32ToBits(static_cast<float>(A));
  case wasm::Op::F64ConvertI32S:
    return f64ToBits(static_cast<double>(
        static_cast<int32_t>(static_cast<uint32_t>(A))));
  case wasm::Op::F64ConvertI32U:
    return f64ToBits(static_cast<double>(static_cast<uint32_t>(A)));
  case wasm::Op::F64ConvertI64S:
    return f64ToBits(static_cast<double>(static_cast<int64_t>(A)));
  case wasm::Op::F64ConvertI64U:
    return f64ToBits(static_cast<double>(A));
  case wasm::Op::F32DemoteF64:
    return f32ToBits(static_cast<float>(bitsToF64(A)));
  case wasm::Op::F64PromoteF32:
    return f64ToBits(static_cast<double>(bitsToF32(A)));
  case wasm::Op::I32ReinterpretF32:
  case wasm::Op::I64ReinterpretF64:
  case wasm::Op::F32ReinterpretI32:
  case wasm::Op::F64ReinterpretI64:
    return A; // Bit patterns are already untyped slots.
  default:
    *Trap = 1; // Unknown: deopt; the interpreter traps "unhandled opcode".
    return 0;
  }
}

//===----------------------------------------------------------------------===//
// FlatInstance glue: the native-call helpers mirror the interpreter's
// direct_call / host_call / MemoryGrow blocks statement for statement,
// and jitExecuteBack normalizes one native activation's exit for the
// interpreter (see Engine.h JitRun).
//===----------------------------------------------------------------------===//

extern "C" uint32_t rwJitCall(JitContext *Ctx, uint32_t CalleeIdx,
                              uint32_t SpRel, uint32_t RetPc) {
  return static_cast<FlatInstance *>(Ctx->Inst)
      ->jitDirectCall(*Ctx, CalleeIdx, SpRel, RetPc);
}
extern "C" uint32_t rwJitHost(JitContext *Ctx, uint32_t HostIdx,
                              uint32_t SpRel, uint32_t RetPc) {
  return static_cast<FlatInstance *>(Ctx->Inst)
      ->jitHostCall(*Ctx, HostIdx, SpRel, RetPc);
}
extern "C" uint32_t rwJitIndirect(JitContext *Ctx, uint32_t Expect,
                                  uint32_t SpRel, uint32_t RetPc) {
  return static_cast<FlatInstance *>(Ctx->Inst)
      ->jitIndirectCall(*Ctx, Expect, SpRel, RetPc);
}
extern "C" uint32_t rwJitGrow(JitContext *Ctx, uint32_t SpRel) {
  return static_cast<FlatInstance *>(Ctx->Inst)->jitMemoryGrow(*Ctx, SpRel);
}

uint32_t FlatInstance::jitDirectCall(JitContext &Ctx, uint32_t CalleeIdx,
                                     uint32_t SpRel, uint32_t RetPc) {
  const FlatModule &FMod = *Active;
  if (Frames.size() >= MaxCallDepth)
    // Deopt before any state change: the interpreter re-executes the
    // call instruction and traps "call stack exhausted" itself, with
    // the same callee attribution as a flat-only run.
    return JDeoptHere;
  const FlatFunc *Callee = &FMod.Funcs[CalleeIdx];
  uint32_t NewRegBase = Frames.back().RegBase + Frames.back().F->NumRegs;
  uint32_t Sp = Frames.back().OpBase + SpRel;
  if (Regs.size() < NewRegBase + Callee->NumRegs)
    Regs.resize(
        std::max<size_t>(NewRegBase + Callee->NumRegs, Regs.size() * 2));
  uint32_t NP = Callee->NumParams;
  Sp -= NP;
  uint64_t *NR = Regs.data() + NewRegBase;
  const uint64_t *Ops = OpStack.data();
  for (uint32_t I = 0; I < NP; ++I)
    NR[I] = Ops[Sp + I];
  for (uint32_t I = NP; I < Callee->NumRegs; ++I)
    NR[I] = 0;
  if (OpStack.size() < Sp + Callee->MaxDepth)
    OpStack.resize(std::max<size_t>(Sp + Callee->MaxDepth, OpStack.size() * 2));
  Frames.back().Pc = RetPc;
  Frames.push_back({Callee, 0, NewRegBase, Sp});
  Ctx.Ops = OpStack.data();
  Ctx.Regs = Regs.data();

  NativeFn Fn = Jit->entry(CalleeIdx);
  if (!Fn) {
    // Callee only runs flat: hand the pushed frame to the interpreter.
    Ctx.DeoptSp = 0;
    return JUnwind;
  }
  uint32_t St = Fn(&Ctx, static_cast<uint64_t>(Sp) * 8,
                   static_cast<uint64_t>(NewRegBase) * 8);
  switch (St) {
  case JOk:
    Frames.pop_back(); // Results sit at the callee's operand base == Sp.
    return JOk;
  case JDeoptHere:
    // The callee (still Frames.back()) resumes at its recorded pc;
    // outward this is an unwind, not a re-execute of the call.
    Frames.back().Pc = Ctx.DeoptPc;
    return JUnwind;
  default:
    return St; // JUnwind / JTrapFinal propagate unchanged.
  }
}

uint32_t FlatInstance::jitHostCall(JitContext &Ctx, uint32_t HostIdx,
                                   uint32_t SpRel, uint32_t RetPc) {
  auto TrapFinal = [&](std::string Msg) {
    JitTrapMsg = std::move(Msg);
    LastTrapFunc = HostIdx;
    Frames.clear();
    return static_cast<uint32_t>(JTrapFinal);
  };
  const HostFn *H = hostFor(HostIdx);
  if (!H)
    return TrapFinal("unsatisfied import");
  const FuncType &HT = M->Types[M->ImportFuncs[HostIdx].TypeIdx];
  uint32_t NP = static_cast<uint32_t>(HT.Params.size());
  uint32_t Sp = Frames.back().OpBase + SpRel - NP;
  std::vector<WValue> HArgs(NP);
  for (uint32_t I = 0; I < NP; ++I)
    HArgs[I] = {HT.Params[I], OpStack[Sp + I]};
  if (!Prof.empty())
    ++Prof[HostIdx].Invocations;
  Expected<std::vector<WValue>> HR = (*H)(*this, HArgs);
  if (!HR)
    return TrapFinal(HR.error().message());
  if (OpStack.size() < Sp + HR->size())
    OpStack.resize(Sp + HR->size());
  uint64_t *Ops = OpStack.data();
  for (const WValue &V : *HR)
    Ops[Sp++] = V.Bits;
  Ctx.Ops = OpStack.data();
  Ctx.Regs = Regs.data();
  Ctx.MemP = Mem.data(); // The host may have touched or grown memory.
  Ctx.MemSz = Mem.size();
  if (HR->size() != HT.Results.size()) {
    // The interpreter tolerates a host returning the wrong result
    // count (the operand height just drifts); static heights cannot,
    // so resume interpretation right after the call instruction.
    Frames.back().Pc = RetPc;
    Ctx.DeoptSp = Sp - Frames.back().OpBase;
    return JUnwind;
  }
  return JOk;
}

uint32_t FlatInstance::jitIndirectCall(JitContext &Ctx, uint32_t Expect,
                                       uint32_t SpRel, uint32_t RetPc) {
  const FlatModule &FMod = *Active;
  uint32_t TblIdx = static_cast<uint32_t>(
      OpStack[Frames.back().OpBase + SpRel - 1]);
  if (TblIdx >= Table.size())
    return JDeoptHere; // Re-execute: "call_indirect: table index ..."
  uint32_t Func = Table[TblIdx];
  if (FMod.CanonType[Func] != Expect)
    return JDeoptHere; // Re-execute: "call_indirect: signature mismatch"
  if (Func < FMod.NumImports)
    return jitHostCall(Ctx, Func, SpRel - 1, RetPc);
  return jitDirectCall(Ctx, Func - FMod.NumImports, SpRel - 1, RetPc);
}

uint32_t FlatInstance::jitMemoryGrow(JitContext &Ctx, uint32_t SpRel) {
  uint32_t Sp = Frames.back().OpBase + SpRel;
  uint64_t *Ops = OpStack.data();
  uint32_t Delta = static_cast<uint32_t>(Ops[Sp - 1]);
  uint64_t OldPages = Mem.size() / PageSize;
  uint64_t NewPages = OldPages + Delta;
  uint64_t MaxPages =
      M->Memory && M->Memory->second ? *M->Memory->second : 65536;
  if (NewPages > MaxPages) {
    Ops[Sp - 1] = 0xffffffffu;
  } else {
    Mem.resize(NewPages * PageSize, 0);
    Ops[Sp - 1] = OldPages;
  }
  Ctx.MemP = Mem.data();
  Ctx.MemSz = Mem.size();
  return JOk;
}

FlatInstance::JitRun FlatInstance::jitExecuteBack(uint64_t &Fuel) {
  // Deopts (this frame re-executes one instruction in the interpreter)
  // and side exits (a deeper frame unwound through this one) are counted
  // separately: a server tuning tier-up policy needs to know whether
  // native code is bailing itself or propagating callees' bails.
  static obs::Counter DeoptC("exec.tier.deopts");
  static obs::Counter SideExitC("exec.tier.side_exits");
  static obs::Counter RefundC("exec.tier.fuel_refunded");
  JitContext Ctx;
  Ctx.Inst = this;
  Ctx.Ops = OpStack.data();
  Ctx.Regs = Regs.data();
  Ctx.MemP = Mem.data();
  Ctx.MemSz = Mem.size();
  Ctx.Fuel = Fuel;
  Ctx.GlobalsP = Globals.data();
  Ctx.ProfP = Prof.empty() ? nullptr : Prof.data();

  const CallFrame &Fr = Frames.back();
  uint32_t DefIdx = static_cast<uint32_t>(Fr.F - Active->Funcs.data());
  NativeFn Fn = Jit->entry(DefIdx);
  uint32_t St = Fn(&Ctx, static_cast<uint64_t>(Fr.OpBase) * 8,
                   static_cast<uint64_t>(Fr.RegBase) * 8);
  Fuel = Ctx.Fuel;
  if (Ctx.FuelRefunded)
    RefundC.add(Ctx.FuelRefunded);
  switch (St) {
  case JOk:
    Frames.pop_back();
    return JitRun::Done;
  case JDeoptHere:
    Frames.back().Pc = Ctx.DeoptPc;
    ResumeSp = Ctx.DeoptSp;
    DeoptC.inc();
    return JitRun::Resume;
  case JUnwind:
    ResumeSp = Ctx.DeoptSp;
    SideExitC.inc();
    return JitRun::Resume;
  default:
    return JitRun::Trapped;
  }
}

void FlatInstance::maybeTierUp() {
  if (Prof.empty())
    return;
  const FlatModule &FMod = *Active;
  uint32_t ND = static_cast<uint32_t>(FMod.Funcs.size());
  for (uint32_t D = 0; D < ND; ++D) {
    if (Jit->attempted(D))
      continue;
    const FunctionProfile &P = Prof[D + FMod.NumImports];
    uint64_t Inv = P.Invocations.load(), Lp = P.LoopHeads.load();
    uint64_t Mass = Inv + Lp < Inv ? UINT64_MAX : Inv + Lp;
    if (Mass < TierThreshold)
      continue;
    if (!TierBackground) {
      OBS_SPAN("tier_up", D);
      Jit->compile(D);
      continue;
    }
    // One background compile in flight at a time; the rest of the scan
    // reruns at the next invoke. Entries publish with release order, so
    // running invokes pick the native code up at their next call.
    if (TierBusy.load(std::memory_order_acquire))
      return;
    if (TierWorker.joinable())
      TierWorker.join();
    TierBusy.store(true, std::memory_order_release);
    TierWorker = std::thread([this, D] {
      obs::setThreadName("tier-worker");
      {
        OBS_SPAN("tier_up", D);
        Jit->compile(D);
      }
      TierBusy.store(false, std::memory_order_release);
    });
    return;
  }
}

#endif // RW_JIT_ENABLED
