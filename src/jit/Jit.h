//===- jit/Jit.h - Tier-3 native backend over flat bytecode -----*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tier-3 copy-and-patch JIT (DESIGN.md §11): per-opcode machine-code
/// templates for the flat bytecode of exec::Translate.h, stitched per
/// function with patched immediates and jump offsets into W^X-transitioned
/// executable pages. The generated code is *state-compatible* with the
/// flat interpreter at every instruction boundary — operand slots and
/// locals live in the same OpStack/Regs arrays at the same indices, with
/// the operand height tracked statically at compile time — so any trap or
/// rare path simply exits ("deopts") to the flat engine, which resumes
/// mid-function from the recorded pc and produces byte-identical trap
/// notes. Calls, host calls, and memory.grow run through C++ helpers that
/// mirror the interpreter's own transfer code.
///
/// Fuel is charged in per-segment batches (a segment is a basic block cut
/// at call sites) with an exact-refund deopt when the batch would
/// overdraw, so jitted execution traps "fuel exhausted" at exactly the
/// same instruction as the interpreter and instrCount() stays identical.
///
/// Everything here compiles away under -DRW_JIT=OFF (RW_JIT_ENABLED=0):
/// Jit.cpp contributes zero symbols and exec::FlatInstance keeps its
/// flat-only behavior.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_JIT_JIT_H
#define RICHWASM_JIT_JIT_H

#include "exec/Translate.h"

#if defined(RW_JIT_ENABLED) && RW_JIT_ENABLED

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

namespace rw::jit {

/// Exit status of one native activation (one compiled function frame).
/// The values are fixed — generated code materializes them as immediates.
enum JitStatus : uint32_t {
  /// The function ran to FReturn: its results sit at the frame's operand
  /// base and the caller (helper or orchestrator) pops the frame.
  JOk = 0,
  /// This frame exits before executing the instruction at
  /// JitContext::DeoptPc (operand height DeoptSp, fuel refunded): the
  /// flat interpreter resumes there and re-executes it — traps are
  /// reproduced by the interpreter's own trap machinery, byte for byte.
  JDeoptHere = 1,
  /// A deeper frame deopted (or entered a function with no native code);
  /// Frames already describes the resume point. Propagate outward.
  JUnwind = 2,
  /// A trap that cannot be re-executed (a host function trapped) was
  /// fully recorded on the instance; unwind straight out of run().
  JTrapFinal = 3,
};

/// The mutable state shared between generated code and the engine for
/// one top-level native entry (nested native calls reuse it). Generated
/// code addresses fields by fixed offsets; keep the layout in sync with
/// the static_asserts in Jit.cpp.
struct JitContext {
  void *Inst = nullptr;        ///< The owning exec::FlatInstance.
  uint64_t *Ops = nullptr;     ///< OpStack.data(); helpers refresh on resize.
  uint64_t *Regs = nullptr;    ///< Regs.data(); helpers refresh on resize.
  uint8_t *MemP = nullptr;     ///< Mem.data(); refreshed after grow/host.
  uint64_t MemSz = 0;          ///< Mem.size().
  uint64_t Fuel = 0;           ///< Remaining fuel (shared across frames).
  void *GlobalsP = nullptr;    ///< Globals.data() (WValue stride).
  void *ProfP = nullptr;       ///< Prof.data() or null (FunctionProfile).
  uint32_t DeoptPc = 0;        ///< Word pc of the deopting instruction.
  uint32_t DeoptSp = 0;        ///< Operand height (frame-relative) there.
  uint32_t GenTrap = 0;        ///< Out-flag of the generic-op helpers.
  uint32_t Pad = 0;
  /// Fuel returned by exact-refund deopt stubs during this activation
  /// (generated code accumulates; the engine drains it into the
  /// "exec.tier.fuel_refunded" counter after each native exit).
  uint64_t FuelRefunded = 0;
};

/// Entry point of one compiled function. Bases are *byte* offsets into
/// Ops/Regs (slot index * 8) so generated code adds them directly.
using NativeFn = uint32_t (*)(JitContext *, uint64_t OpBase8,
                              uint64_t RegBase8);

/// Per-module native code: one compiled-code handle per defined function,
/// filled in on demand by tier-up (or eagerly). Compilation is
/// thread-safe and idempotent; entry() is wait-free and safe to call
/// concurrently with compile() from another thread (the entry pointer is
/// published with release/acquire ordering only after the page is RX).
/// Code pages are owned here and unmapped on destruction — the engine
/// guarantees no native frame is live by then.
class ModuleJit {
public:
  explicit ModuleJit(const exec::FlatModule &FM);
  ~ModuleJit();
  ModuleJit(const ModuleJit &) = delete;
  ModuleJit &operator=(const ModuleJit &) = delete;

  /// Compiles defined function \p DefIdx if supported (idempotent).
  /// Returns true when native code exists afterwards. Unsupported or
  /// failed functions are remembered and never retried.
  bool compile(uint32_t DefIdx);

  /// Compiles every defined function (eager whole-module tiering).
  void compileAll();

  /// The native entry for \p DefIdx, or null while it only runs flat.
  NativeFn entry(uint32_t DefIdx) const {
    return Entries[DefIdx].load(std::memory_order_acquire);
  }

  /// Number of functions with native code (for tests/obs).
  uint32_t compiledCount() const {
    return Compiled.load(std::memory_order_relaxed);
  }

  /// Functions refused by the template compiler (or failed page maps).
  uint32_t unsupportedCount() const {
    return Unsupported.load(std::memory_order_relaxed);
  }

  /// Resident executable-page bytes (the module's code-cache footprint).
  uint64_t codeBytes() const {
    return CodeBytes.load(std::memory_order_relaxed);
  }

  /// Tier state of one defined function: 0 = untried (runs flat),
  /// 1 = compiling, 2 = native, 3 = unsupported/failed (flat forever).
  uint8_t tierState(uint32_t DefIdx) const {
    return State[DefIdx].load(std::memory_order_acquire);
  }

  /// Whether a compile of \p DefIdx was ever started (done, in flight,
  /// or failed) — the tier-up controller skips attempted functions.
  bool attempted(uint32_t DefIdx) const {
    return State[DefIdx].load(std::memory_order_acquire) != 0;
  }

private:
  struct Page {
    uint8_t *P = nullptr;
    size_t Sz = 0;
  };

  const exec::FlatModule &FM;
  std::vector<std::atomic<NativeFn>> Entries;
  /// 0 = untried, 1 = compiling, 2 = done, 3 = unsupported/failed.
  std::vector<std::atomic<uint8_t>> State;
  std::atomic<uint32_t> Compiled{0};
  std::atomic<uint32_t> Unsupported{0};
  std::atomic<uint64_t> CodeBytes{0};
  std::mutex PagesMu;
  std::vector<Page> Pages; ///< W^X code pages, RX once published.
  /// obs registry handle ("jit.*" snapshot source: tier counts, code
  /// bytes, per-function tier state); 0 when obs is compiled out.
  uint64_t ObsSourceId = 0;
};

} // namespace rw::jit

#endif // RW_JIT_ENABLED
#endif // RICHWASM_JIT_JIT_H
