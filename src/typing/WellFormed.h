//===- typing/WellFormed.h - Type well-formedness ---------------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The well-formedness judgments F ⊢ q qual, F ⊢ sz size, F ⊢ τ type of the
/// paper. Besides scoping, these enforce the qualifier discipline inside
/// types: tuple components are bounded by the tuple qualifier, pretype
/// variables only occur at qualifiers above their declared lower bound,
/// references into the linear memory are linear (and into the unrestricted
/// memory unrestricted), and a rec-bound variable occurs only behind an
/// indirection so flat layout never needs its size.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_TYPING_WELLFORMED_H
#define RICHWASM_TYPING_WELLFORMED_H

#include "support/Error.h"
#include "typing/Context.h"

namespace rw::typing {

Status wfQual(ir::Qual Q, const KindCtx &Ctx);
Status wfSize(const ir::SizeRef &S, const KindCtx &Ctx);
Status wfLoc(const ir::Loc &L, const KindCtx &Ctx);

/// F ⊢ τ type. Borrowed-first: the checker hands in TypeRef views; owning
/// Types convert implicitly.
Status wfType(ir::TypeRef T, const KindCtx &Ctx);

/// Checks that pretype \p P may legally occur at qualifier \p OuterQ.
/// Context-independent cases (closed pretype, concrete qualifier) are
/// memoized per canonical node in the owning TypeArena.
Status wfPretypeAt(const ir::Pretype *P, ir::Qual OuterQ, const KindCtx &Ctx);
inline Status wfPretypeAt(const ir::PretypeRef &P, ir::Qual OuterQ,
                          const KindCtx &Ctx) {
  return wfPretypeAt(P.get(), OuterQ, Ctx);
}
/// The un-memoized judgment behind wfPretypeAt.
Status wfPretypeAtUncached(const ir::Pretype *P, ir::Qual OuterQ,
                           const KindCtx &Ctx);

Status wfHeapType(const ir::HeapType *H, const KindCtx &Ctx);
inline Status wfHeapType(const ir::HeapTypeRef &H, const KindCtx &Ctx) {
  return wfHeapType(H.get(), Ctx);
}

/// Checks a function type; its quantifier list extends \p Ambient.
Status wfFunType(const ir::FunType &F, const KindCtx &Ambient);

/// Builds the combined kind context of \p Quants stacked over \p Ambient
/// (used when descending into coderef types and when checking function
/// bodies).
KindCtx stackKindCtx(const std::vector<ir::Quant> &Quants,
                     const KindCtx &Ambient);

} // namespace rw::typing

#endif // RICHWASM_TYPING_WELLFORMED_H
