//===- typing/CheckModules.cpp - Parallel batch admission -----------------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
//
// The batch entry point of the admission pipeline (DESIGN.md §7): a server
// ingesting modules re-checks every one at the link boundary, and function
// checks are embarrassingly parallel — each CheckerImpl is confined to one
// thread and all cross-check state lives in the thread-safe TypeArena
// (spinlocked intern tables, atomic per-node memos). The pipeline is
//
//   1. per module: build the ModuleEnv (sequential; a few pointer copies);
//   2. one flat work list of (module, function) pairs, checked over the
//      pool with range-stealing scheduling — function granularity keeps
//      the pool balanced even when one module dwarfs the rest;
//   3. deterministic assembly: per module, replay checkModule's exact
//      judgment order (table entries, then functions by index, then
//      globals and start) against the collected per-function statuses.
//
// Step 3 is what guarantees byte-identical diagnostics for any pool size:
// a module's reported error is always its lowest-indexed failure, exactly
// as the sequential checker would have reported it.
//
//===----------------------------------------------------------------------===//

#include "typing/Checker.h"

#include "ir/TypeArena.h"
#include "obs/Obs.h"
#include "support/ThreadPool.h"

using namespace rw;
using namespace rw::typing;
using namespace rw::ir;

std::vector<Status>
rw::typing::checkModules(std::span<const ir::Module *const> Mods,
                         support::ThreadPool &Pool) {
  return checkModules(Mods, Pool, static_cast<std::vector<InfoMap> *>(nullptr));
}

std::vector<Status>
rw::typing::checkModules(std::span<const ir::Module *const> Mods,
                         support::ThreadPool &Pool,
                         std::vector<InfoMap> *Infos) {
  OBS_SPAN("check_batch", Mods.size());
  size_t NumMods = Mods.size();
  std::vector<ModuleEnv> Envs(NumMods);
  std::vector<Status> TableStatus(NumMods);
  std::vector<std::vector<Status>> FnStatus(NumMods);
  /// Per-function annotation maps when the caller asked for InfoMaps:
  /// each function check is confined to one pool task, so it records into
  /// its own map; the assembly phase below merges them per module in
  /// function index order (the recorded content is identical to a
  /// sequential checkModule(M, &IM) — skolem ids restart per function in
  /// both, and the map key is instruction identity).
  std::vector<std::vector<InfoMap>> FnInfos(Infos ? NumMods : 0);
  struct WorkItem {
    uint32_t Mod;
    uint32_t Func;
  };
  std::vector<WorkItem> Work;
  size_t TotalFuncs = 0;
  for (size_t MI = 0; MI < NumMods; ++MI)
    TotalFuncs += Mods[MI]->Funcs.size();
  Work.reserve(TotalFuncs);
  if (Infos) {
    Infos->clear();
    Infos->resize(NumMods);
  }
  for (size_t MI = 0; MI < NumMods; ++MI) {
    const Module &M = *Mods[MI];
    ArenaScope Scope(M.Arena ? *M.Arena : TypeArena::global());
    // Table bounds are checked up front, exactly like sequential
    // checkModule: a module already rejected here gets no function work
    // scheduled (its table error outranks any function diagnostic), so
    // adversarial cheap-to-reject modules cannot burn pool time.
    TableStatus[MI] = detail::checkTableEntries(M);
    if (!TableStatus[MI])
      continue;
    Envs[MI] = buildModuleEnv(M);
    FnStatus[MI].resize(M.Funcs.size());
    if (Infos)
      FnInfos[MI].resize(M.Funcs.size());
    for (size_t FI = 0; FI < M.Funcs.size(); ++FI)
      Work.push_back({static_cast<uint32_t>(MI), static_cast<uint32_t>(FI)});
  }

  Pool.parallelFor(Work.size(), [&](size_t I) {
    const WorkItem &W = Work[I];
    // Span args carry the (module, function) work-item coordinates, so a
    // trace shows which worker checked what.
    OBS_SPAN("check_fn", W.Mod, W.Func);
    const Module &M = *Mods[W.Mod];
    ArenaScope Scope(M.Arena ? *M.Arena : TypeArena::global());
    FnStatus[W.Mod][W.Func] = checkFunction(
        Envs[W.Mod], M.Funcs[W.Func],
        Infos ? &FnInfos[W.Mod][W.Func] : nullptr);
  });

  std::vector<Status> Out;
  Out.reserve(NumMods);
  for (size_t MI = 0; MI < NumMods; ++MI) {
    const Module &M = *Mods[MI];
    ArenaScope Scope(M.Arena ? *M.Arena : TypeArena::global());
    Out.push_back([&]() -> Status {
      if (Status &S = TableStatus[MI]; !S)
        return S;
      for (size_t FI = 0; FI < M.Funcs.size(); ++FI)
        if (Status &S = FnStatus[MI][FI]; !S)
          return Error("in function " + std::to_string(FI) + ": " +
                       S.error().message());
      InfoMap *IM = Infos ? &(*Infos)[MI] : nullptr;
      if (IM)
        // Merge the per-function maps in index order (node splice, no
        // copies); globals/start annotations are recorded below.
        for (InfoMap &FnIM : FnInfos[MI])
          IM->merge(FnIM);
      return detail::checkGlobalsAndStart(M, Envs[MI], IM);
    }());
    // A rejected module hands over no annotations.
    if (Infos && !Out.back())
      (*Infos)[MI].clear();
  }
  return Out;
}
