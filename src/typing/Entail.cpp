//===- typing/Entail.cpp - Qualifier and size entailment ------------------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "typing/Entail.h"

#include "ir/Rewrite.h"
#include "ir/TypeOps.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace rw;
using namespace rw::typing;
using ir::Qual;
using ir::SizeRef;

//===----------------------------------------------------------------------===//
// Qualifier entailment
//===----------------------------------------------------------------------===//

namespace {

/// Worklist search through the constraint graph with a visited set to cut
/// cycles (mutually bounded variables are legal).
class QualSearch {
public:
  explicit QualSearch(const KindCtx &Ctx) : Ctx(Ctx) {}

  bool leq(Qual A, Qual B) {
    if (A == B)
      return true;
    if (A.isConst() && A.constValue() == ir::QualConst::Unr)
      return true;
    if (B.isConst() && B.constValue() == ir::QualConst::Lin)
      return true;
    if (A.isConst() && B.isConst())
      return false; // lin ⪯ unr is the only remaining const case.
    auto Key = std::make_pair(keyOf(A), keyOf(B));
    if (!Visited.insert(Key).second)
      return false;
    // Walk up from A through its upper bounds.
    if (A.isVar()) {
      assert(A.varIndex() < Ctx.Quals.size() && "qual variable out of scope");
      for (Qual U : Ctx.Quals[A.varIndex()].Upper)
        if (leq(U, B))
          return true;
    }
    // Walk down from B through its lower bounds.
    if (B.isVar()) {
      assert(B.varIndex() < Ctx.Quals.size() && "qual variable out of scope");
      for (Qual L : Ctx.Quals[B.varIndex()].Lower)
        if (leq(A, L))
          return true;
    }
    return false;
  }

private:
  static int64_t keyOf(Qual Q) {
    if (Q.isVar())
      return static_cast<int64_t>(Q.varIndex());
    return Q.constValue() == ir::QualConst::Unr ? -1 : -2;
  }

  const KindCtx &Ctx;
  std::set<std::pair<int64_t, int64_t>> Visited;
};

} // namespace

bool rw::typing::leqQual(Qual Q1, Qual Q2, const KindCtx &Ctx) {
  QualSearch S(Ctx);
  return S.leq(Q1, Q2);
}

//===----------------------------------------------------------------------===//
// Size entailment
//===----------------------------------------------------------------------===//

namespace {

constexpr uint64_t Infinity = ~0ull;

/// Interval analysis of size expressions through variable bounds. Works on
/// normal forms directly — interned sizes carry theirs, so no size nodes
/// are built here.
class SizeSearch {
public:
  explicit SizeSearch(const KindCtx &Ctx) : Ctx(Ctx) {}

  /// Largest possible value of \p N (Infinity when unbounded).
  uint64_t hi(const ir::NormalSize &N) {
    uint64_t Acc = N.Const;
    for (uint32_t V : N.Vars) {
      uint64_t H = hiVar(V);
      if (H == Infinity)
        return Infinity;
      Acc += H;
    }
    return Acc;
  }

  /// Smallest possible value of \p N (sizes are non-negative).
  uint64_t lo(const ir::NormalSize &N) {
    uint64_t Acc = N.Const;
    for (uint32_t V : N.Vars)
      Acc += loVar(V);
    return Acc;
  }

private:
  uint64_t hiVar(uint32_t Idx) {
    assert(Idx < Ctx.Sizes.size() && "size variable out of scope");
    if (!HiVisited.insert(Idx).second)
      return Infinity; // Cycle: no finite bound derivable this way.
    uint64_t Best = Infinity;
    for (const SizeRef &U : Ctx.Sizes[Idx].Upper) {
      uint64_t H = hi(ir::normalizeSize(U));
      if (H < Best)
        Best = H;
    }
    HiVisited.erase(Idx);
    return Best;
  }

  uint64_t loVar(uint32_t Idx) {
    assert(Idx < Ctx.Sizes.size() && "size variable out of scope");
    if (!LoVisited.insert(Idx).second)
      return 0;
    uint64_t Best = 0;
    for (const SizeRef &L : Ctx.Sizes[Idx].Lower) {
      uint64_t V = lo(ir::normalizeSize(L));
      if (V > Best)
        Best = V;
    }
    LoVisited.erase(Idx);
    return Best;
  }

  const KindCtx &Ctx;
  std::set<uint32_t> HiVisited, LoVisited;
};

/// True if multiset \p A is contained in multiset \p B (both sorted).
bool multisetSubset(const std::vector<uint32_t> &A,
                    const std::vector<uint32_t> &B) {
  size_t I = 0, J = 0;
  while (I < A.size()) {
    if (J == B.size())
      return false;
    if (A[I] == B[J]) {
      ++I;
      ++J;
    } else if (B[J] < A[I]) {
      ++J;
    } else {
      return false;
    }
  }
  return true;
}

/// Removes one occurrence of \p V from \p N's variables and adds the normal
/// form of \p Repl in its place.
ir::NormalSize replaceVar(const ir::NormalSize &N, uint32_t V,
                          const ir::NormalSize &Repl) {
  ir::NormalSize Out;
  Out.Const = N.Const + Repl.Const;
  bool Removed = false;
  for (uint32_t X : N.Vars) {
    if (!Removed && X == V) {
      Removed = true;
      continue;
    }
    Out.Vars.push_back(X);
  }
  Out.Vars.insert(Out.Vars.end(), Repl.Vars.begin(), Repl.Vars.end());
  std::sort(Out.Vars.begin(), Out.Vars.end());
  return Out;
}

/// Recursive entailment: syntactic inclusion, interval reasoning, or
/// structural substitution of one variable by a declared bound (left vars
/// by upper bounds, right vars by lower bounds). Depth-limited.
bool leqSizeRec(const ir::NormalSize &N1, const ir::NormalSize &N2,
                const KindCtx &Ctx, unsigned Depth) {
  if (N1.Const <= N2.Const && multisetSubset(N1.Vars, N2.Vars))
    return true;
  {
    SizeSearch S(Ctx);
    uint64_t Hi = S.hi(N1);
    if (Hi != Infinity && Hi <= S.lo(N2))
      return true;
  }
  if (Depth == 0)
    return false;
  // Replace a right-hand variable by one of its lower bounds.
  uint32_t LastV = ~0u;
  for (uint32_t V : N2.Vars) {
    if (V == LastV)
      continue;
    LastV = V;
    if (V >= Ctx.Sizes.size())
      continue;
    for (const SizeRef &L : Ctx.Sizes[V].Lower)
      if (leqSizeRec(N1, replaceVar(N2, V, ir::normalizeSize(L)), Ctx,
                     Depth - 1))
        return true;
  }
  // Replace a left-hand variable by one of its upper bounds.
  LastV = ~0u;
  for (uint32_t V : N1.Vars) {
    if (V == LastV)
      continue;
    LastV = V;
    if (V >= Ctx.Sizes.size())
      continue;
    for (const SizeRef &U : Ctx.Sizes[V].Upper)
      if (leqSizeRec(replaceVar(N1, V, ir::normalizeSize(U)), N2, Ctx,
                     Depth - 1))
        return true;
  }
  return false;
}

} // namespace

bool rw::typing::leqSize(const ir::Size *S1, const ir::Size *S2,
                         const KindCtx &Ctx) {
  assert(S1 && S2 && "entailment on null sizes");
  // Canonical pointers: identical sizes are trivially entailed.
  if (S1 == S2)
    return true;
  return leqSizeRec(S1->norm(), S2->norm(), Ctx, /*Depth=*/6);
}

//===----------------------------------------------------------------------===//
// Bridges to the ir size / no_caps metafunctions
//===----------------------------------------------------------------------===//

ir::TypeVarSizes rw::typing::typeVarSizes(const KindCtx &Ctx) {
  ir::TypeVarSizes Out;
  Out.reserve(Ctx.Types.size());
  for (const TypeBound &B : Ctx.Types)
    Out.push_back(B.SizeUpper ? B.SizeUpper : ir::Size::constant(64));
  return Out;
}

std::vector<bool> rw::typing::typeVarNoCaps(const KindCtx &Ctx) {
  std::vector<bool> Out;
  Out.reserve(Ctx.Types.size());
  for (const TypeBound &B : Ctx.Types)
    Out.push_back(B.NoCaps);
  return Out;
}

const ir::Size *rw::typing::sizeOfType(ir::TypeRef T, const KindCtx &Ctx) {
  // Closed pretypes (the overwhelmingly common case) never consult the
  // bounds, so skip materializing the per-variable vector entirely; the
  // node-level memo answers with a borrowed pointer in O(1).
  if (T.P->freeBounds().Type == 0) {
    static const ir::TypeVarSizes Empty;
    return ir::sizeOfPretypePtr(T.P, Empty);
  }
  return ir::sizeOfPretypePtr(T.P, typeVarSizes(Ctx));
}

bool rw::typing::noCaps(ir::TypeRef T, const KindCtx &Ctx) {
  if (!T.P->noCapsDependsOnVars())
    return T.P->noCapsIfAllVarsFree();
  return ir::typeNoCaps(T, typeVarNoCaps(Ctx));
}
bool rw::typing::noCapsHeap(const ir::HeapType *H, const KindCtx &Ctx) {
  if (!H->noCapsDependsOnVars())
    return H->noCapsIfAllVarsFree();
  return ir::heapTypeNoCaps(H, typeVarNoCaps(Ctx));
}
bool rw::typing::noCapsPre(const ir::Pretype *P, const KindCtx &Ctx) {
  if (!P->noCapsDependsOnVars())
    return P->noCapsIfAllVarsFree();
  return ir::pretypeNoCaps(P, typeVarNoCaps(Ctx));
}

//===----------------------------------------------------------------------===//
// Context construction
//===----------------------------------------------------------------------===//

ModuleEnv rw::typing::buildModuleEnv(const ir::Module &M) {
  ModuleEnv Env;
  for (const ir::Function &F : M.Funcs)
    Env.Funcs.push_back(F.Ty);
  for (const ir::Global &G : M.Globals)
    Env.Globals.push_back({G.Mut, G.P});
  for (uint32_t Idx : M.Tab.Entries) {
    assert(Idx < M.Funcs.size() && "table entry out of range");
    Env.Table.push_back(M.Funcs[Idx].Ty);
  }
  return Env;
}

KindCtx rw::typing::buildKindCtx(const std::vector<ir::Quant> &Quants) {
  KindCtx Ctx;
  // Count binders per kind so we can re-index constraints into body
  // coordinates: a constraint written with k same-kind binders in scope
  // shifts by (total - k).
  uint32_t TotQ = 0, TotS = 0;
  for (const ir::Quant &Q : Quants) {
    if (Q.K == ir::QuantKind::Qual)
      ++TotQ;
    if (Q.K == ir::QuantKind::Size)
      ++TotS;
  }
  uint32_t SeenQ = 0, SeenS = 0;
  for (const ir::Quant &Q : Quants) {
    switch (Q.K) {
    case ir::QuantKind::Loc:
      ++Ctx.NumLocVars;
      break;
    case ir::QuantKind::Qual: {
      ir::Shifter Sh(0, TotS - SeenS, TotQ - SeenQ, 0);
      QualBound B;
      for (Qual L : Q.QualLower)
        B.Lower.push_back(Sh.rewrite(L));
      for (Qual U : Q.QualUpper)
        B.Upper.push_back(Sh.rewrite(U));
      // Innermost binder gets index 0: push to the front.
      Ctx.Quals.insert(Ctx.Quals.begin(), std::move(B));
      ++SeenQ;
      break;
    }
    case ir::QuantKind::Size: {
      ir::Shifter Sh(0, TotS - SeenS, TotQ - SeenQ, 0);
      SizeBound B;
      for (const SizeRef &L : Q.SizeLower)
        B.Lower.push_back(Sh.rewrite(L));
      for (const SizeRef &U : Q.SizeUpper)
        B.Upper.push_back(Sh.rewrite(U));
      Ctx.Sizes.insert(Ctx.Sizes.begin(), std::move(B));
      ++SeenS;
      break;
    }
    case ir::QuantKind::Type: {
      ir::Shifter Sh(0, TotS - SeenS, TotQ - SeenQ, 0);
      TypeBound B;
      B.QualLower = Sh.rewrite(Q.TypeQualLower);
      B.SizeUpper =
          Q.TypeSizeUpper ? Sh.rewrite(Q.TypeSizeUpper) : ir::Size::constant(64);
      B.NoCaps = Q.TypeNoCaps;
      Ctx.Types.insert(Ctx.Types.begin(), std::move(B));
      break;
    }
    }
  }
  return Ctx;
}
