//===- typing/Context.h - Typing environments (Fig 5) -----------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The typing environments of Fig 5. The function environment's qual/size/
/// type components are the constraints of the enclosing function's
/// quantifier list, re-indexed into body coordinates (index 0 = innermost
/// binder). Mid-body binders (mem.unpack's ρ, exist.unpack's α) are opened
/// with skolems, so these vectors never change while a body is checked —
/// which is also why stored constraint expressions never need shifting:
/// qualifier bounds mention only qualifier variables, size bounds only size
/// variables, and type bounds only the two of those.
///
/// Instead of the paper's `linear` component (a stack of lower bounds for
/// the qualifiers of values between jump targets), the checker tracks the
/// exact stack contents and each label's entry height; a branch checks that
/// every value it would drop is unrestricted — the same property,
/// established from strictly more precise information.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_TYPING_CONTEXT_H
#define RICHWASM_TYPING_CONTEXT_H

#include "ir/Module.h"
#include "ir/Types.h"

#include <optional>
#include <vector>

namespace rw::typing {

/// Constraint bounds for one qualifier variable.
struct QualBound {
  std::vector<ir::Qual> Lower, Upper;
};

/// Constraint bounds for one size variable.
struct SizeBound {
  std::vector<ir::SizeRef> Lower, Upper;
};

/// Constraint bounds for one pretype variable.
struct TypeBound {
  ir::Qual QualLower = ir::Qual::unr();
  ir::SizeRef SizeUpper;
  bool NoCaps = true;
};

/// The local environment L: the type and slot size of each local.
struct LocalSlot {
  ir::Type T;
  ir::SizeRef Slot;
};
using LocalCtx = std::vector<LocalSlot>;

/// One entry of the label stack: jump target result types, the local
/// environment every jump must agree on, and the operand-stack height at
/// label entry (used for the linearity-of-dropped-values check). The
/// vectors are borrowed from the enclosing block's instruction and checker
/// state (both outlive the label's scope), so pushing a label allocates
/// nothing.
struct LabelEntry {
  const std::vector<ir::Type> *Results = nullptr;
  const LocalCtx *Locals = nullptr;
  size_t Height = 0;
};

/// The kind-variable portion of the function environment. Index 0 of each
/// vector is the innermost binder of that kind.
struct KindCtx {
  std::vector<QualBound> Quals;
  std::vector<SizeBound> Sizes;
  std::vector<TypeBound> Types;
  uint32_t NumLocVars = 0;
};

/// The function environment F.
struct FunCtx {
  std::vector<LabelEntry> Labels; ///< Back = innermost (depth 0).
  std::optional<std::vector<ir::Type>> Return;
  KindCtx Kinds;
};

/// The module environment M.
struct ModuleEnv {
  std::vector<ir::FunTypeRef> Funcs;
  struct GlobalTy {
    bool Mut = false;
    ir::PretypeRef P;
  };
  std::vector<GlobalTy> Globals;
  std::vector<ir::FunTypeRef> Table;
};

/// Builds the module environment of a module (function types, global
/// types, and the table's function types).
ModuleEnv buildModuleEnv(const ir::Module &M);

/// Builds the body-coordinate kind context from a quantifier list,
/// re-indexing each quantifier's constraint expressions from "binders
/// declared before me" coordinates to full-list coordinates.
KindCtx buildKindCtx(const std::vector<ir::Quant> &Quants);

} // namespace rw::typing

#endif // RICHWASM_TYPING_CONTEXT_H
