//===- typing/Context.h - Typing environments (Fig 5) -----------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The typing environments of Fig 5. The function environment's qual/size/
/// type components are the constraints of the enclosing function's
/// quantifier list, re-indexed into body coordinates (index 0 = innermost
/// binder). Mid-body binders (mem.unpack's ρ, exist.unpack's α) are opened
/// with skolems, so these vectors never change while a body is checked —
/// which is also why stored constraint expressions never need shifting:
/// qualifier bounds mention only qualifier variables, size bounds only size
/// variables, and type bounds only the two of those.
///
/// Instead of the paper's `linear` component (a stack of lower bounds for
/// the qualifiers of values between jump targets), the checker tracks the
/// exact stack contents and each label's entry height; a branch checks that
/// every value it would drop is unrestricted — the same property,
/// established from strictly more precise information.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_TYPING_CONTEXT_H
#define RICHWASM_TYPING_CONTEXT_H

#include "ir/Module.h"
#include "ir/Types.h"
#include "support/SmallVec.h"

#include <memory>
#include <optional>
#include <type_traits>
#include <vector>

namespace rw::typing {

/// Constraint bounds for one qualifier variable.
struct QualBound {
  std::vector<ir::Qual> Lower, Upper;
};

/// Constraint bounds for one size variable.
struct SizeBound {
  std::vector<ir::SizeRef> Lower, Upper;
};

/// Constraint bounds for one pretype variable.
struct TypeBound {
  ir::Qual QualLower = ir::Qual::unr();
  ir::SizeRef SizeUpper;
  bool NoCaps = true;
};

/// The local environment L: the type and slot size of each local. This is
/// the owning form used at API boundaries (checkSeq inputs/results).
struct LocalSlot {
  ir::Type T;
  ir::SizeRef Slot;
};
using LocalCtx = std::vector<LocalSlot>;

/// Borrowed form of one local slot — what the checker's COW environments
/// actually store. Both fields point at arena-interned nodes (TypeRef
/// lifetime contract), so the buffer is trivially copyable and forking an
/// environment is a flat memcpy with no refcount traffic.
struct LocalSlotRef {
  ir::TypeRef T;
  const ir::Size *Slot = nullptr;
};

/// A copy-on-write handle to a local environment. Straight-line code
/// shares its parent block's environment (an assignment is one refcount
/// bump); the buffer is forked the first time a block writes a local while
/// the environment is shared (first local.set/tee, a linear get_local's
/// move, or a non-trivial local-effects annotation). Since local
/// environments agree far more often than they differ — every block whose
/// body performs no local writes, every label entry, every effects-free
/// annotation — almost all block structure touches no heap at all, and a
/// fork is a single allocation (header and slots in one block).
///
/// Invariants:
///  * A fork happens strictly before the first mutation through a handle,
///    so a shared buffer is immutable while shared — localsEqual's
///    same-buffer fast path relies on exactly this.
///  * The refcount is deliberately non-atomic: every handle derived from
///    one function check stays on that check's thread (the parallel
///    checker parallelizes across functions, never within one), so the
///    count is never contended.
///  * Slot count is fixed at creation; the checker never grows a local
///    environment mid-body.
class LocalEnv {
public:
  LocalEnv() = default;
  /// Builds directly from a borrowed slot range (checkFunction's path).
  LocalEnv(const LocalSlotRef *D, size_t N)
      : B(N == 0 ? nullptr : Buf::create(D, N)) {}
  /// Borrows from an owning context; \p L (or rather, the arena owning its
  /// nodes) must outlive every handle derived from this environment.
  explicit LocalEnv(const LocalCtx &L) {
    if (L.empty())
      return;
    B = Buf::create(nullptr, L.size());
    LocalSlotRef *S = B->slots();
    for (size_t I = 0; I < L.size(); ++I)
      S[I] = LocalSlotRef{L[I].T, L[I].Slot.get()};
  }
  LocalEnv(const LocalEnv &O) : B(O.B) {
    if (B)
      ++B->Refs;
  }
  LocalEnv(LocalEnv &&O) noexcept : B(O.B) { O.B = nullptr; }
  LocalEnv &operator=(const LocalEnv &O) {
    if (O.B)
      ++O.B->Refs;
    release();
    B = O.B;
    return *this;
  }
  LocalEnv &operator=(LocalEnv &&O) noexcept {
    if (this != &O) {
      release();
      B = O.B;
      O.B = nullptr;
    }
    return *this;
  }
  ~LocalEnv() { release(); }

  size_t size() const { return B ? B->Size : 0; }
  bool empty() const { return size() == 0; }
  const LocalSlotRef &operator[](size_t I) const { return B->slots()[I]; }
  const LocalSlotRef *begin() const { return B ? B->slots() : nullptr; }
  const LocalSlotRef *end() const {
    return B ? B->slots() + B->Size : nullptr;
  }

  /// Mutable access to one slot; forks the buffer first if it is shared.
  LocalSlotRef &mut(size_t I) {
    if (B->Refs > 1) {
      Buf *N = Buf::create(B->slots(), B->Size);
      --B->Refs;
      B = N;
    }
    return B->slots()[I];
  }

  /// The full context, re-owned (public checkSeq results cross an
  /// ownership boundary).
  LocalCtx materialize() const {
    LocalCtx Out;
    Out.reserve(size());
    for (const LocalSlotRef &S : *this)
      Out.push_back({S.T.own(), S.Slot->shared_from_this()});
    return Out;
  }

  /// Two handles over the same buffer denote equal environments (shared
  /// buffers are immutable while shared).
  bool sameBuffer(const LocalEnv &O) const { return B == O.B; }

private:
  /// Header and slots in one allocation; slots start right after the
  /// header (LocalSlotRef's alignment divides the header size). Slots are
  /// trivially copyable borrowed views, so a fork is one allocation plus a
  /// flat copy — no per-slot construction or refcounting.
  struct Buf {
    uint32_t Refs;
    uint32_t Size;

    LocalSlotRef *slots() {
      return reinterpret_cast<LocalSlotRef *>(this + 1);
    }
    const LocalSlotRef *slots() const {
      return reinterpret_cast<const LocalSlotRef *>(this + 1);
    }

    /// \p D may be null: slots are then default-initialized for the
    /// caller to fill (the borrowing LocalEnv(LocalCtx) constructor).
    static Buf *create(const LocalSlotRef *D, size_t N) {
      static_assert(sizeof(Buf) % alignof(LocalSlotRef) == 0);
      static_assert(std::is_trivially_copyable_v<LocalSlotRef>);
      void *Mem = ::operator new(sizeof(Buf) + N * sizeof(LocalSlotRef));
      Buf *B = ::new (Mem) Buf{1, static_cast<uint32_t>(N)};
      LocalSlotRef *S = B->slots();
      for (size_t I = 0; I < N; ++I)
        ::new (static_cast<void *>(S + I))
            LocalSlotRef(D ? D[I] : LocalSlotRef{});
      return B;
    }
  };

  void release() {
    if (B && --B->Refs == 0) {
      B->~Buf();
      ::operator delete(B);
    }
    B = nullptr;
  }

  Buf *B = nullptr;
};

/// One entry of the label stack: jump target result types, the local
/// environment every jump must agree on, and an all-unrestricted flag for
/// the values locked beneath the label (used for the linearity-of-dropped-
/// values check). Results are borrowed from the enclosing block's
/// instruction (which outlives the label's scope) and Locals is a shared
/// COW handle, so pushing a label allocates nothing.
struct LabelEntry {
  const std::vector<ir::Type> *Results = nullptr;
  LocalEnv Locals;
  size_t Height = 0;
};

/// The kind-variable portion of the function environment. Index 0 of each
/// vector is the innermost binder of that kind.
struct KindCtx {
  std::vector<QualBound> Quals;
  std::vector<SizeBound> Sizes;
  std::vector<TypeBound> Types;
  uint32_t NumLocVars = 0;
};

/// The function environment F. Return is borrowed from the function's
/// declared type (or the caller's frame) — the checker never owns it, and
/// the label stack lives inline for realistic nesting depths.
struct FunCtx {
  support::SmallVec<LabelEntry, 8> Labels; ///< Back = innermost (depth 0).
  const std::vector<ir::Type> *Return = nullptr;
  KindCtx Kinds;
};

/// The module environment M.
struct ModuleEnv {
  std::vector<ir::FunTypeRef> Funcs;
  struct GlobalTy {
    bool Mut = false;
    ir::PretypeRef P;
  };
  std::vector<GlobalTy> Globals;
  std::vector<ir::FunTypeRef> Table;
};

/// Builds the module environment of a module (function types, global
/// types, and the table's function types).
ModuleEnv buildModuleEnv(const ir::Module &M);

/// Builds the body-coordinate kind context from a quantifier list,
/// re-indexing each quantifier's constraint expressions from "binders
/// declared before me" coordinates to full-list coordinates.
KindCtx buildKindCtx(const std::vector<ir::Quant> &Quants);

} // namespace rw::typing

#endif // RICHWASM_TYPING_CONTEXT_H
