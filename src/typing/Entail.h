//===- typing/Entail.h - Qualifier and size entailment ----------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decision procedures for the two constraint judgments:
///
///  * q1 ⪯_{F.qual} q2 — the reflexive-transitive closure of unr ⪯ lin and
///    the per-variable lower/upper bound constraints;
///  * sz1 ≤_{F.size} sz2 — sound (incomplete) entailment over size
///    expressions: syntactic inclusion of normal forms, or interval
///    reasoning through the declared variable bounds.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_TYPING_ENTAIL_H
#define RICHWASM_TYPING_ENTAIL_H

#include "ir/TypeOps.h"
#include "typing/Context.h"

namespace rw::typing {

/// Decides q1 ⪯ q2 under the qualifier constraints in \p Ctx. Skolem-free:
/// qualifier variables are de Bruijn indices into \p Ctx.
bool leqQual(ir::Qual Q1, ir::Qual Q2, const KindCtx &Ctx);

/// q ⪯ unr (value may be duplicated/dropped). Concrete qualifiers — the
/// overwhelmingly common case on the checker's per-value scans — decide
/// inline; only variables consult the constraint context.
inline bool qualIsUnr(ir::Qual Q, const KindCtx &Ctx) {
  if (Q.isConst())
    return Q.constValue() == ir::QualConst::Unr;
  return leqQual(Q, ir::Qual::unr(), Ctx);
}
/// lin ⪯ q (value must be treated linearly).
inline bool qualIsLin(ir::Qual Q, const KindCtx &Ctx) {
  if (Q.isConst())
    return Q.constValue() == ir::QualConst::Lin;
  return leqQual(ir::Qual::lin(), Q, Ctx);
}

/// Decides sz1 ≤ sz2 under the size constraints in \p Ctx.
bool leqSize(const ir::SizeRef &S1, const ir::SizeRef &S2, const KindCtx &Ctx);

/// The size-variable upper bounds of the pretype variables in \p Ctx, in
/// the shape sizeOfPretype expects.
ir::TypeVarSizes typeVarSizes(const KindCtx &Ctx);

/// The per-variable no-caps flags of \p Ctx, for the no_caps predicate.
std::vector<bool> typeVarNoCaps(const KindCtx &Ctx);

/// ||τ|| under \p Ctx's type-variable bounds.
ir::SizeRef sizeOfType(const ir::Type &T, const KindCtx &Ctx);

/// no_caps under \p Ctx's type-variable flags.
bool noCaps(const ir::Type &T, const KindCtx &Ctx);
bool noCapsHeap(const ir::HeapTypeRef &H, const KindCtx &Ctx);
bool noCapsPre(const ir::PretypeRef &P, const KindCtx &Ctx);

} // namespace rw::typing

#endif // RICHWASM_TYPING_ENTAIL_H
