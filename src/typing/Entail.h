//===- typing/Entail.h - Qualifier and size entailment ----------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decision procedures for the two constraint judgments:
///
///  * q1 ⪯_{F.qual} q2 — the reflexive-transitive closure of unr ⪯ lin and
///    the per-variable lower/upper bound constraints;
///  * sz1 ≤_{F.size} sz2 — sound (incomplete) entailment over size
///    expressions: syntactic inclusion of normal forms, or interval
///    reasoning through the declared variable bounds.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_TYPING_ENTAIL_H
#define RICHWASM_TYPING_ENTAIL_H

#include "ir/TypeOps.h"
#include "typing/Context.h"

namespace rw::typing {

/// Decides q1 ⪯ q2 under the qualifier constraints in \p Ctx. Skolem-free:
/// qualifier variables are de Bruijn indices into \p Ctx.
bool leqQual(ir::Qual Q1, ir::Qual Q2, const KindCtx &Ctx);

/// q ⪯ unr (value may be duplicated/dropped). Concrete qualifiers — the
/// overwhelmingly common case on the checker's per-value scans — decide
/// inline; only variables consult the constraint context.
inline bool qualIsUnr(ir::Qual Q, const KindCtx &Ctx) {
  if (Q.isConst())
    return Q.constValue() == ir::QualConst::Unr;
  return leqQual(Q, ir::Qual::unr(), Ctx);
}
/// lin ⪯ q (value must be treated linearly).
inline bool qualIsLin(ir::Qual Q, const KindCtx &Ctx) {
  if (Q.isConst())
    return Q.constValue() == ir::QualConst::Lin;
  return leqQual(ir::Qual::lin(), Q, Ctx);
}

/// Decides sz1 ≤ sz2 under the size constraints in \p Ctx. The borrowed
/// (raw-pointer) overload is the primary entry point — the admission hot
/// path holds borrowed size nodes; the owning/mixed shims forward.
bool leqSize(const ir::Size *S1, const ir::Size *S2, const KindCtx &Ctx);
inline bool leqSize(const ir::SizeRef &S1, const ir::SizeRef &S2,
                    const KindCtx &Ctx) {
  return leqSize(S1.get(), S2.get(), Ctx);
}
inline bool leqSize(const ir::Size *S1, const ir::SizeRef &S2,
                    const KindCtx &Ctx) {
  return leqSize(S1, S2.get(), Ctx);
}
inline bool leqSize(const ir::SizeRef &S1, const ir::Size *S2,
                    const KindCtx &Ctx) {
  return leqSize(S1.get(), S2, Ctx);
}

/// The size-variable upper bounds of the pretype variables in \p Ctx, in
/// the shape sizeOfPretype expects.
ir::TypeVarSizes typeVarSizes(const KindCtx &Ctx);

/// The per-variable no-caps flags of \p Ctx, for the no_caps predicate.
std::vector<bool> typeVarNoCaps(const KindCtx &Ctx);

/// ||τ|| under \p Ctx's type-variable bounds. Returns a borrowed size
/// node (arena-owned; TypeRef lifetime contract) — closed pretypes answer
/// from the per-node memo without touching a refcount.
const ir::Size *sizeOfType(ir::TypeRef T, const KindCtx &Ctx);

/// no_caps under \p Ctx's type-variable flags. Borrowed-first, with
/// owning shims for ownership-boundary callers.
bool noCaps(ir::TypeRef T, const KindCtx &Ctx);
bool noCapsHeap(const ir::HeapType *H, const KindCtx &Ctx);
bool noCapsPre(const ir::Pretype *P, const KindCtx &Ctx);
inline bool noCapsHeap(const ir::HeapTypeRef &H, const KindCtx &Ctx) {
  return noCapsHeap(H.get(), Ctx);
}
inline bool noCapsPre(const ir::PretypeRef &P, const KindCtx &Ctx) {
  return noCapsPre(P.get(), Ctx);
}

} // namespace rw::typing

#endif // RICHWASM_TYPING_ENTAIL_H
