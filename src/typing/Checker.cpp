//===- typing/Checker.cpp - Instruction typing (Fig 7) --------------------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "typing/Checker.h"

#include "ir/Print.h"
#include "ir/Rewrite.h"
#include "obs/Obs.h"
#include "support/FaultInject.h"
#include "ir/TypeArena.h"
#include "ir/TypeOps.h"
#include "support/SmallVec.h"
#include "typing/Entail.h"
#include "typing/WellFormed.h"

#include <cassert>

using namespace rw;
using namespace rw::typing;
using namespace rw::ir;

namespace {

/// Rewrites every occurrence of a fixed location to the innermost location
/// variable — the canonical abstraction step of mem.pack ℓ.
class AbstractLoc : public TypeRewriter {
public:
  explicit AbstractLoc(Loc Target) : Target(Target) {
    // The hook is pure in (location, depths). When the abstracted target
    // is a skolem or concrete location (the common case), a subtree with
    // no free location variables and no non-variable locations cannot be
    // affected, so memoization/short-circuiting is sound. A *variable*
    // target is compared literally, which can also match bound variables —
    // no short-circuit is valid then.
    if (!Target.isVar())
      enableStructuralMemo(/*ActLoc=*/true, false, false, false,
                           /*NonVarLocs=*/true);
  }

  Loc rewrite(const Loc &L) override {
    if (L == Target)
      return Loc::var(LocDepth);
    if (L.isVar())
      return Loc::var(L.varIndex() >= LocDepth ? L.varIndex() + 1
                                               : L.varIndex());
    return L;
  }

private:
  Loc Target;
};

/// Occurs check for skolems escaping their unpack scope.
class SkolemScan : public TypeRewriter {
public:
  SkolemScan(uint64_t LocId, uint64_t TypeId, bool WantLoc, bool WantType)
      : LocId(LocId), TypeId(TypeId), WantLoc(WantLoc), WantType(WantType) {}

  bool found(const Type &T) {
    Found = false;
    (void)TypeRewriter::rewrite(T);
    return Found;
  }

  Loc rewrite(const Loc &L) override {
    if (WantLoc && L.isSkolem() && L.skolemId() == LocId)
      Found = true;
    return L;
  }

protected:
  PretypeRef onTypeVar(uint32_t Idx) override { return varPT(Idx); }

public:
  // Scan hook for skolem pretypes: TypeRewriter passes them through
  // untouched, so intercept at the pretype level via this helper.
  static bool pretypeHasSkolem(const PretypeRef &P, uint64_t Id);

private:
  uint64_t LocId, TypeId;
  bool WantLoc, WantType;
  bool Found = false;
};

bool pretypeHasTypeSkolem(const Pretype *P, uint64_t Id);

bool typeHasTypeSkolem(TypeRef T, uint64_t Id) {
  // Intern-time occurrence flags make the common no-skolem case O(1).
  if (!(T.P->flags() & TF_HasSkolemType))
    return false;
  return pretypeHasTypeSkolem(T.P, Id);
}

bool heapHasTypeSkolem(const HeapType *H, uint64_t Id) {
  if (!(H->flags() & TF_HasSkolemType))
    return false;
  switch (H->kind()) {
  case HeapTypeKind::Variant:
    for (const Type &T : cast<VariantHT>(H)->cases())
      if (typeHasTypeSkolem(T, Id))
        return true;
    return false;
  case HeapTypeKind::Struct:
    for (const StructField &F : cast<StructHT>(H)->fields())
      if (typeHasTypeSkolem(F.T, Id))
        return true;
    return false;
  case HeapTypeKind::Array:
    return typeHasTypeSkolem(cast<ArrayHT>(H)->elem(), Id);
  case HeapTypeKind::Ex:
    return typeHasTypeSkolem(cast<ExHT>(H)->body(), Id);
  }
  return false;
}

bool pretypeHasTypeSkolem(const Pretype *P, uint64_t Id) {
  switch (P->kind()) {
  case PretypeKind::Skolem:
    return cast<SkolemPT>(P)->id() == Id;
  case PretypeKind::Prod:
    for (const Type &T : cast<ProdPT>(P)->elems())
      if (typeHasTypeSkolem(T, Id))
        return true;
    return false;
  case PretypeKind::Ref:
    return heapHasTypeSkolem(cast<RefPT>(P)->heapType().get(), Id);
  case PretypeKind::Cap:
    return heapHasTypeSkolem(cast<CapPT>(P)->heapType().get(), Id);
  case PretypeKind::Rec:
    return typeHasTypeSkolem(cast<RecPT>(P)->body(), Id);
  case PretypeKind::ExLoc:
    return typeHasTypeSkolem(cast<ExLocPT>(P)->body(), Id);
  case PretypeKind::Coderef: {
    const FunType &FT = *cast<CoderefPT>(P)->funType();
    for (const Type &T : FT.arrow().Params)
      if (typeHasTypeSkolem(T, Id))
        return true;
    for (const Type &T : FT.arrow().Results)
      if (typeHasTypeSkolem(T, Id))
        return true;
    return false;
  }
  default:
    return false;
  }
}

bool typeHasLocSkolem(TypeRef T, uint64_t Id) {
  // Intern-time occurrence flags make the common no-skolem case O(1).
  if (!(T.P->flags() & TF_HasSkolemLoc))
    return false;
  SkolemScan S(Id, 0, true, false);
  return S.found(T.own());
}

//===----------------------------------------------------------------------===//
// The checker
//===----------------------------------------------------------------------===//

class CheckerImpl {
public:
  CheckerImpl(const ModuleEnv &Env, KindCtx Kinds,
              const std::vector<Type> *Ret, InfoMap *IM)
      : Env(Env), IM(IM) {
    F.Kinds = std::move(Kinds);
    F.Return = Ret;
  }

  /// Per-block checker state. The operand stack is *shared* across nested
  /// blocks (the CheckerImpl member below): a block sees only the segment
  /// at index >= Base, and underflow checks compare against that floor, so
  /// entering a block pushes its params in place instead of copying the
  /// stack. Locals are a COW handle — straight-line blocks share their
  /// parent's buffer and fork on first write.
  struct State {
    size_t Base = 0;
    LocalEnv Locals;
    bool Unreachable = false;
  };

  Status checkSeq(const InstVec &Insts, State &St) {
    for (const InstRef &I : Insts) {
      if (St.Unreachable)
        return Status::success(); // Dead code after a jump is skipped.
      if (Status S = checkInst(*I, St); !S)
        return S;
    }
    return Status::success();
  }

  FunCtx F;
  /// The one operand stack of this function check, shared by all blocks
  /// (see State::Base). Inline capacity covers every realistic operand
  /// depth, so steady-state checking performs no stack allocation. Entries
  /// are borrowed TypeRef views (every node is arena-interned), so pushes,
  /// pops, copies, and truncation are refcount-free flat moves — the ~24
  /// atomic release ops per function the F7 profile charged to the old
  /// shared_ptr stack are gone.
  support::SmallVec<TypeRef, 24> Stack;

private:
  /// Per-check cache of the numeric pretypes (and i32/unit, the two the
  /// dispatch consults constantly). The arena is fixed for the lifetime of
  /// one CheckerImpl (ArenaScope), so caching canonical nodes here turns
  /// every numT/i32T site from an arena round-trip (thread-local read +
  /// atomic leaf-slot load + shared_from_this) into a member read.
  TypeRef numCached(NumType NT) {
    TypeRef &Slot = NumCache[static_cast<size_t>(NT)];
    if (!Slot.valid())
      Slot = numT(NT);
    return Slot;
  }
  TypeRef i32Cached() {
    if (!I32Cache.valid())
      I32Cache = i32T();
    return I32Cache;
  }
  TypeRef unitCached() {
    if (!UnitCache.valid())
      UnitCache = unitT();
    return UnitCache;
  }
  TypeRef NumCache[6];
  TypeRef I32Cache, UnitCache;

  const ModuleEnv &Env;
  InfoMap *IM;
  uint64_t NextSkolem = 1;
  /// Skolem locations of the mem.unpack binders currently open, innermost
  /// last. Location-variable annotations on mem.pack count these binders
  /// first, then the function's quantified locations.
  support::SmallVec<Loc, 8> LocBinders;
  /// Reused scratch for struct.malloc's field list (span-probe interning).
  support::SmallVec<StructFieldRef, 8> ScratchFields;

  /// Resolves a location annotation against the open unpack binders.
  Loc resolveLoc(const Loc &L) const {
    if (!L.isVar() || L.varIndex() >= LocBinders.size())
      return L.isVar() && L.varIndex() >= LocBinders.size()
                 ? Loc::var(L.varIndex() -
                            static_cast<uint32_t>(LocBinders.size()))
                 : L;
    return LocBinders[LocBinders.size() - 1 - L.varIndex()];
  }

  static Error err(const std::string &Msg) { return Error(Msg); }

  //===--------------------------------------------------------------------===//
  // Stack helpers
  //===--------------------------------------------------------------------===//

  /// Number of operands visible to the current block.
  size_t depth(const State &St) const { return Stack.size() - St.Base; }

  Expected<TypeRef> popAny(State &St, const char *What) {
    if (Stack.size() <= St.Base)
      return err(std::string("stack underflow at ") + What);
    TypeRef T = Stack.back();
    Stack.pop_back();
    return T;
  }

  Status popExpect(State &St, TypeRef Want, const char *What) {
    if (Stack.size() <= St.Base)
      return err(std::string("stack underflow at ") + What);
    // Pointer equality on interned types; no Type copy on the hot path.
    if (!typeEquals(Stack.back(), Want))
      return err(std::string("type mismatch at ") + What + ": expected " +
                 printType(Want) + ", found " + printType(Stack.back()));
    Stack.pop_back();
    return Status::success();
  }

  Status popParams(State &St, const std::vector<Type> &Params,
                   const char *What) {
    for (size_t I = Params.size(); I > 0; --I)
      if (Status S = popExpect(St, Params[I - 1], What); !S)
        return S;
    return Status::success();
  }

  void push(State &, TypeRef T) { Stack.push_back(T); }
  void pushAll(State &, const std::vector<Type> &Ts) {
    for (const Type &T : Ts)
      Stack.push_back(T);
  }

  /// Borrows an owning type list (instruction arrows) for InfoMap notes.
  static std::vector<TypeRef> refs(const std::vector<Type> &Ts) {
    return std::vector<TypeRef>(Ts.begin(), Ts.end());
  }

  bool isUnr(Qual Q) const { return qualIsUnr(Q, F.Kinds); }
  bool isLin(Qual Q) const { return qualIsLin(Q, F.Kinds); }

  /// Whether an annotation for \p I should be recorded at all: an InfoMap
  /// was requested and the lowering consults this instruction kind. Call
  /// sites gate on this *before* materializing the operand/result vectors.
  bool noteNeeded(const Inst &I) const {
    return IM && infoConsumedByLowering(I.kind());
  }

  /// Records operand/result annotations for the lowering (borrowed views;
  /// see the InfoMap lifetime contract in Checker.h).
  void note(const Inst &I, std::vector<TypeRef> Operands,
            std::vector<TypeRef> Results) {
    (*IM)[&I] = InstInfo{std::move(Operands), std::move(Results)};
  }

  //===--------------------------------------------------------------------===//
  // Locals
  //===--------------------------------------------------------------------===//

  static bool localsEqual(const LocalEnv &A, const LocalEnv &B) {
    // Shared buffers are immutable while shared (the COW invariant), so
    // handle identity decides almost every comparison in O(1).
    if (A.sameBuffer(B))
      return true;
    if (A.size() != B.size())
      return false;
    for (size_t I = 0; I < A.size(); ++I)
      if (!typeEquals(A[I].T, B[I].T) || A[I].Slot != B[I].Slot)
        return false;
    return true;
  }

  Expected<LocalEnv> applyEffects(const LocalEnv &L,
                                  const std::vector<LocalEffect> &Fx) {
    LocalEnv Out = L; // Shared until an effect actually changes a slot.
    for (const LocalEffect &E : Fx) {
      if (E.LocalIdx >= Out.size())
        return err("local effect names out-of-range slot " +
                   std::to_string(E.LocalIdx));
      if (Status S = wfType(E.T, F.Kinds); !S)
        return S.error();
      if (!leqSize(sizeOfType(E.T, F.Kinds), Out[E.LocalIdx].Slot, F.Kinds))
        return err("local effect type does not fit slot " +
                   std::to_string(E.LocalIdx));
      if (!typeEquals(Out[E.LocalIdx].T, E.T))
        Out.mut(E.LocalIdx).T = E.T;
    }
    return Out;
  }

  //===--------------------------------------------------------------------===//
  // Blocks and branching
  //===--------------------------------------------------------------------===//

  /// Checks one block body under a fresh label. The body runs on the
  /// shared operand stack: its params (plus ExtraStack values, e.g. the
  /// payload of a case arm) are pushed in place and its floor is the
  /// current height, so no stack is copied. On return the stack is
  /// truncated back to the outer height — the caller pushes the results.
  Status checkBlockBody(State &Outer, const ArrowType &TF,
                        const LocalEnv &LPrime, const InstVec &Body,
                        bool IsLoop, const TypeRef *ExtraStack = nullptr) {
    // All values remaining below this block must keep their qualifiers in
    // mind when someone branches past the block: record whether they are
    // all unrestricted (the paper's F.linear head "lock-in"). Values below
    // the *outer* block's floor are covered by that block's own label flag.
    bool BelowUnr = true;
    for (size_t I = Outer.Base, N = Stack.size(); I < N; ++I)
      if (!isUnr(Stack[I].Q))
        BelowUnr = false;

    LabelEntry E;
    E.Results = IsLoop ? &TF.Params : &TF.Results;
    E.Locals = IsLoop ? Outer.Locals : LPrime;
    E.Height = BelowUnr ? 1 : 0; // Reused as the all-unr flag; see brCheck.
    F.Labels.push_back(std::move(E));

    State Inner;
    Inner.Base = Stack.size();
    for (const Type &T : TF.Params)
      Stack.push_back(T);
    if (ExtraStack)
      Stack.push_back(*ExtraStack);
    Inner.Locals = Outer.Locals; // Shared; body forks on first write.

    Status S = checkSeq(Body, Inner);
    F.Labels.pop_back();
    if (!S)
      return S;

    if (!Inner.Unreachable) {
      // The body must leave exactly the results and the prescribed locals.
      size_t Left = Stack.size() - Inner.Base;
      if (Left != TF.Results.size())
        return err("block body leaves " + std::to_string(Left) +
                   " values, expected " + std::to_string(TF.Results.size()));
      for (size_t I = 0; I < TF.Results.size(); ++I)
        if (!typeEquals(Stack[Inner.Base + I], TF.Results[I]))
          return err("block body result " + std::to_string(I) +
                     " has type " + printType(Stack[Inner.Base + I]) +
                     ", expected " + printType(TF.Results[I]));
      if (!localsEqual(Inner.Locals, LPrime))
        return err("block body's final locals disagree with its local "
                   "effects annotation");
    }
    Stack.truncate(Inner.Base);
    return Status::success();
  }

  /// Common checks for br/br_if/br_table to label depth \p D: the target's
  /// result types must be on top of the stack; every value that unwinding
  /// would drop must be unrestricted; locals must agree with the target's
  /// view. Destructive = values are consumed (br / taken br_table).
  Status brCheck(State &St, uint32_t D, bool Destructive, const char *What) {
    if (D >= F.Labels.size())
      return err(std::string(What) + " targets label " + std::to_string(D) +
                 " but only " + std::to_string(F.Labels.size()) +
                 " labels are in scope");
    const LabelEntry &Target = F.Labels[F.Labels.size() - 1 - D];
    const std::vector<Type> &Results = *Target.Results;
    if (depth(St) < Results.size())
      return err(std::string(What) + ": stack underflow for label results");
    size_t Base = Stack.size() - Results.size();
    for (size_t I = 0; I < Results.size(); ++I)
      if (!typeEquals(Stack[Base + I], Results[I]))
        return err(std::string(What) + ": stack does not match label " +
                   std::to_string(D) + " result types");
    // Everything below the results in this sequence is dropped.
    for (size_t I = St.Base; I < Base; ++I)
      if (!isUnr(Stack[I].Q))
        return err(std::string(What) +
                   " would drop a linear value on the stack");
    // Segments locked under the labels we unwind through must be all-unr.
    for (uint32_t I = 0; I < D; ++I)
      if (F.Labels[F.Labels.size() - 1 - I].Height == 0)
        return err(std::string(What) +
                   " would drop a linear value locked under label " +
                   std::to_string(I));
    if (!localsEqual(St.Locals, Target.Locals))
      return err(std::string(What) + ": locals disagree with label " +
                 std::to_string(D) + "'s view of the local environment");
    if (Destructive)
      St.Unreachable = true;
    return Status::success();
  }

  //===--------------------------------------------------------------------===//
  // The big dispatch
  //===--------------------------------------------------------------------===//

  Status checkInst(const Inst &I, State &St);
  Status checkNumeric(const Inst &I, State &St);
  Status checkCallLike(const Inst &I, State &St);
  Status checkHeap(const Inst &I, State &St);
};

//===----------------------------------------------------------------------===//
// Numeric instructions
//===----------------------------------------------------------------------===//

Status CheckerImpl::checkNumeric(const Inst &I, State &St) {
  switch (I.kind()) {
  case InstKind::NumConst: {
    const auto *C = cast<NumConstInst>(&I);
    TypeRef T = numCached(C->numType());
    if (noteNeeded(I))
      note(I, {}, {T});
    push(St, T);
    return Status::success();
  }
  case InstKind::NumUnop: {
    const auto *U = cast<NumUnopInst>(&I);
    if (isIntType(U->numType()) != isIntUnop(U->op()))
      return err("unary operator does not match numeric type");
    TypeRef T = numCached(U->numType());
    if (Status S = popExpect(St, T, "unop"); !S)
      return S;
    if (noteNeeded(I))
      note(I, {T}, {T});
    push(St, T);
    return Status::success();
  }
  case InstKind::NumBinop: {
    const auto *B = cast<NumBinopInst>(&I);
    if (isIntType(B->numType()) && isFloatOnlyBinop(B->op()))
      return err("float operator applied at integer type");
    if (isFloatType(B->numType()) && isIntOnlyBinop(B->op()))
      return err("integer operator applied at float type");
    TypeRef T = numCached(B->numType());
    if (Status S = popExpect(St, T, "binop"); !S)
      return S;
    if (Status S = popExpect(St, T, "binop"); !S)
      return S;
    if (noteNeeded(I))
      note(I, {T, T}, {T});
    push(St, T);
    return Status::success();
  }
  case InstKind::NumTestop: {
    const auto *T = cast<NumTestopInst>(&I);
    if (!isIntType(T->numType()))
      return err("testop requires an integer type");
    TypeRef In = numCached(T->numType());
    if (Status S = popExpect(St, In, "testop"); !S)
      return S;
    if (noteNeeded(I))
      note(I, {In}, {i32Cached()});
    push(St, i32Cached());
    return Status::success();
  }
  case InstKind::NumRelop: {
    const auto *R = cast<NumRelopInst>(&I);
    TypeRef In = numCached(R->numType());
    if (Status S = popExpect(St, In, "relop"); !S)
      return S;
    if (Status S = popExpect(St, In, "relop"); !S)
      return S;
    if (noteNeeded(I))
      note(I, {In, In}, {i32Cached()});
    push(St, i32Cached());
    return Status::success();
  }
  case InstKind::NumCvt: {
    const auto *C = cast<NumCvtInst>(&I);
    if (C->op() == CvtopKind::Reinterpret &&
        numTypeBits(C->from()) != numTypeBits(C->to()))
      return err("reinterpret requires same-width types");
    TypeRef In = numCached(C->from());
    TypeRef Out = numCached(C->to());
    if (Status S = popExpect(St, In, "cvtop"); !S)
      return S;
    if (noteNeeded(I))
      note(I, {In}, {Out});
    push(St, Out);
    return Status::success();
  }
  default:
    return err("not a numeric instruction");
  }
}

//===----------------------------------------------------------------------===//
// Calls, coderefs, instantiation
//===----------------------------------------------------------------------===//

Status CheckerImpl::checkCallLike(const Inst &I, State &St) {
  switch (I.kind()) {
  case InstKind::CoderefI: {
    const auto *C = cast<CoderefInst>(&I);
    if (C->funcIndex() >= Env.Table.size())
      return err("coderef index " + std::to_string(C->funcIndex()) +
                 " out of table range");
    TypeRef T(coderefPT(Env.Table[C->funcIndex()]).get(), Qual::unr());
    if (noteNeeded(I))
      note(I, {}, {T});
    push(St, T);
    return Status::success();
  }
  case InstKind::InstIdx: {
    const auto *II = cast<InstIdxInst>(&I);
    Expected<TypeRef> T = popAny(St, "inst");
    if (!T)
      return T.error();
    const auto *CR = dyn_cast<CoderefPT>(T->P);
    if (!CR)
      return err("inst expects a coderef on the stack");
    const FunType &FT = *CR->funType();
    size_t N = II->args().size();
    if (N > FT.quants().size())
      return err("inst provides more indices than the coderef quantifies");
    if (Status S = checkInstantiation(F.Kinds, FT, II->args(), N); !S)
      return S;
    // Partially instantiate: strip the first N quantifiers.
    std::vector<Quant> Rest(FT.quants().begin() + static_cast<ptrdiff_t>(N),
                            FT.quants().end());
    FunTypeRef Trunc = FunType::get(std::move(Rest), FT.arrow());
    Subst Sub = Subst::fromIndices(II->args());
    FunTypeRef NewFT = Sub.rewrite(Trunc);
    TypeRef Out(coderefPT(NewFT).get(), T->Q);
    if (noteNeeded(I))
      note(I, {*T}, {Out});
    push(St, Out);
    return Status::success();
  }
  case InstKind::CallIndirect: {
    Expected<TypeRef> T = popAny(St, "call_indirect");
    if (!T)
      return T.error();
    const auto *CR = dyn_cast<CoderefPT>(T->P);
    if (!CR)
      return err("call_indirect expects a coderef on the stack");
    const FunType &FT = *CR->funType();
    if (!FT.quants().empty())
      return err("call_indirect requires a fully instantiated coderef");
    if (Status S = popParams(St, FT.arrow().Params, "call_indirect"); !S)
      return S;
    if (noteNeeded(I)) {
      std::vector<TypeRef> Ops = refs(FT.arrow().Params);
      Ops.push_back(*T);
      note(I, std::move(Ops), refs(FT.arrow().Results));
    }
    pushAll(St, FT.arrow().Results);
    return Status::success();
  }
  case InstKind::Call: {
    const auto *C = cast<CallInst>(&I);
    if (C->funcIndex() >= Env.Funcs.size())
      return err("call of unknown function " + std::to_string(C->funcIndex()));
    const FunType &FT = *Env.Funcs[C->funcIndex()];
    if (C->args().size() != FT.quants().size())
      return err("call instantiates " + std::to_string(C->args().size()) +
                 " of " + std::to_string(FT.quants().size()) + " quantifiers");
    if (Status S = checkInstantiation(F.Kinds, FT, C->args(), C->args().size());
        !S)
      return S;
    // Monomorphic calls (the common case) use the declared arrow in place;
    // only an actual instantiation materializes a substituted copy.
    ArrowType Subbed;
    const ArrowType &Arrow =
        C->args().empty() ? FT.arrow()
                          : (Subbed = instantiateFunType(FT, C->args()));
    if (Status S = popParams(St, Arrow.Params, "call"); !S)
      return S;
    if (noteNeeded(I))
      note(I, refs(Arrow.Params), refs(Arrow.Results));
    pushAll(St, Arrow.Results);
    return Status::success();
  }
  default:
    return err("not a call-like instruction");
  }
}

//===----------------------------------------------------------------------===//
// Main dispatch
//===----------------------------------------------------------------------===//

Status CheckerImpl::checkInst(const Inst &I, State &St) {
  switch (I.kind()) {
  case InstKind::NumConst:
  case InstKind::NumUnop:
  case InstKind::NumBinop:
  case InstKind::NumTestop:
  case InstKind::NumRelop:
  case InstKind::NumCvt:
    return checkNumeric(I, St);

  case InstKind::Unreachable:
    St.Unreachable = true;
    return Status::success();
  case InstKind::Nop:
    return Status::success();
  case InstKind::Drop: {
    Expected<TypeRef> T = popAny(St, "drop");
    if (!T)
      return T.error();
    if (!isUnr(T->Q))
      return err("drop of a linear value of type " + printType(*T));
    if (noteNeeded(I))
      note(I, {*T}, {});
    return Status::success();
  }
  case InstKind::Select: {
    if (Status S = popExpect(St, i32Cached(), "select"); !S)
      return S;
    Expected<TypeRef> T2 = popAny(St, "select");
    if (!T2)
      return T2.error();
    Expected<TypeRef> T1 = popAny(St, "select");
    if (!T1)
      return T1.error();
    if (!typeEquals(*T1, *T2))
      return err("select operands disagree: " + printType(*T1) + " vs " +
                 printType(*T2));
    if (!isUnr(T1->Q))
      return err("select would drop a linear value");
    if (noteNeeded(I))
      note(I, {*T1, *T2, i32Cached()}, {*T1});
    push(St, *T1);
    return Status::success();
  }

  case InstKind::Block: {
    const auto *B = cast<BlockInst>(&I);
    if (Status S = popParams(St, B->arrow().Params, "block"); !S)
      return S;
    Expected<LocalEnv> LP = applyEffects(St.Locals, B->effects());
    if (!LP)
      return LP.error();
    if (Status S = checkBlockBody(St, B->arrow(), *LP, B->body(),
                                  /*IsLoop=*/false);
        !S)
      return S;
    St.Locals = *LP;
    if (noteNeeded(I))
      note(I, refs(B->arrow().Params), refs(B->arrow().Results));
    pushAll(St, B->arrow().Results);
    return Status::success();
  }
  case InstKind::Loop: {
    const auto *L = cast<LoopInst>(&I);
    if (Status S = popParams(St, L->arrow().Params, "loop"); !S)
      return S;
    // A loop body must restore the local environment it entered with.
    if (Status S = checkBlockBody(St, L->arrow(), St.Locals, L->body(),
                                  /*IsLoop=*/true);
        !S)
      return S;
    if (noteNeeded(I))
      note(I, refs(L->arrow().Params), refs(L->arrow().Results));
    pushAll(St, L->arrow().Results);
    return Status::success();
  }
  case InstKind::If: {
    const auto *FI = cast<IfInst>(&I);
    if (Status S = popExpect(St, i32Cached(), "if"); !S)
      return S;
    if (Status S = popParams(St, FI->arrow().Params, "if"); !S)
      return S;
    Expected<LocalEnv> LP = applyEffects(St.Locals, FI->effects());
    if (!LP)
      return LP.error();
    if (Status S = checkBlockBody(St, FI->arrow(), *LP, FI->thenBody(),
                                  /*IsLoop=*/false);
        !S)
      return S;
    if (Status S = checkBlockBody(St, FI->arrow(), *LP, FI->elseBody(),
                                  /*IsLoop=*/false);
        !S)
      return S;
    St.Locals = *LP;
    if (noteNeeded(I))
      note(I, refs(FI->arrow().Params), refs(FI->arrow().Results));
    pushAll(St, FI->arrow().Results);
    return Status::success();
  }
  case InstKind::Br:
    return brCheck(St, cast<BrInst>(&I)->depth(), /*Destructive=*/true, "br");
  case InstKind::BrIf: {
    if (Status S = popExpect(St, i32Cached(), "br_if"); !S)
      return S;
    return brCheck(St, cast<BrInst>(&I)->depth(), /*Destructive=*/false,
                   "br_if");
  }
  case InstKind::BrTable: {
    const auto *B = cast<BrTableInst>(&I);
    if (Status S = popExpect(St, i32Cached(), "br_table"); !S)
      return S;
    for (uint32_t D : B->depths())
      if (Status S = brCheck(St, D, /*Destructive=*/false, "br_table"); !S)
        return S;
    if (Status S =
            brCheck(St, B->defaultDepth(), /*Destructive=*/true, "br_table");
        !S)
      return S;
    return Status::success();
  }
  case InstKind::Return: {
    if (!F.Return)
      return err("return outside of a function");
    if (depth(St) < F.Return->size())
      return err("return: stack underflow");
    size_t Base = Stack.size() - F.Return->size();
    for (size_t J = 0; J < F.Return->size(); ++J)
      if (!typeEquals(Stack[Base + J], (*F.Return)[J]))
        return err("return value type mismatch");
    for (size_t J = St.Base; J < Base; ++J)
      if (!isUnr(Stack[J].Q))
        return err("return would drop a linear value on the stack");
    for (const LabelEntry &E : F.Labels)
      if (E.Height == 0)
        return err("return would drop a linear value locked under a label");
    for (const LocalSlotRef &L : St.Locals)
      if (!isUnr(L.T.Q))
        return err("return with a linear value still in a local");
    St.Unreachable = true;
    return Status::success();
  }

  case InstKind::GetLocal: {
    const auto *G = cast<GetLocalInst>(&I);
    if (G->index() >= St.Locals.size())
      return err("get_local " + std::to_string(G->index()) + " out of range");
    const LocalSlotRef &Slot = St.Locals[G->index()];
    if (Slot.T.Q != G->qual())
      return err("get_local qualifier annotation " + G->qual().str() +
                 " disagrees with slot qualifier " + Slot.T.Q.str());
    TypeRef Out = Slot.T;
    if (isUnr(Slot.T.Q)) {
      // Copy; slot keeps its type — the environment is untouched, so a
      // shared buffer stays shared.
    } else {
      // Move; the slot reverts to unrestricted unit.
      St.Locals.mut(G->index()).T = unitCached();
    }
    if (noteNeeded(I))
      note(I, {}, {Out});
    push(St, Out);
    return Status::success();
  }
  case InstKind::SetLocal: {
    const auto *SI = cast<VarIdxInst>(&I);
    if (SI->index() >= St.Locals.size())
      return err("set_local " + std::to_string(SI->index()) + " out of range");
    Expected<TypeRef> T = popAny(St, "set_local");
    if (!T)
      return T.error();
    const LocalSlotRef &Slot = St.Locals[SI->index()];
    if (!isUnr(Slot.T.Q))
      return err("set_local would drop the linear value in slot " +
                 std::to_string(SI->index()));
    if (!leqSize(sizeOfType(*T, F.Kinds), Slot.Slot, F.Kinds))
      return err("set_local: value of type " + printType(*T) +
                 " does not fit slot of size " + Slot.Slot->str());
    // Writing the type the slot already holds is a no-op on the abstract
    // environment — skip the COW fork entirely.
    if (!typeEquals(Slot.T, *T))
      St.Locals.mut(SI->index()).T = *T;
    if (noteNeeded(I))
      note(I, {*T}, {});
    return Status::success();
  }
  case InstKind::TeeLocal: {
    const auto *TI = cast<VarIdxInst>(&I);
    if (TI->index() >= St.Locals.size())
      return err("tee_local " + std::to_string(TI->index()) + " out of range");
    Expected<TypeRef> T = popAny(St, "tee_local");
    if (!T)
      return T.error();
    if (!isUnr(T->Q))
      return err("tee_local duplicates a linear value");
    const LocalSlotRef &Slot = St.Locals[TI->index()];
    if (!isUnr(Slot.T.Q))
      return err("tee_local would drop the linear value in slot " +
                 std::to_string(TI->index()));
    if (!leqSize(sizeOfType(*T, F.Kinds), Slot.Slot, F.Kinds))
      return err("tee_local: value does not fit the slot");
    if (!typeEquals(Slot.T, *T))
      St.Locals.mut(TI->index()).T = *T;
    if (noteNeeded(I))
      note(I, {*T}, {*T});
    push(St, *T);
    return Status::success();
  }
  case InstKind::GetGlobal: {
    const auto *G = cast<VarIdxInst>(&I);
    if (G->index() >= Env.Globals.size())
      return err("get_global " + std::to_string(G->index()) + " out of range");
    TypeRef T(Env.Globals[G->index()].P.get(), Qual::unr());
    if (noteNeeded(I))
      note(I, {}, {T});
    push(St, T);
    return Status::success();
  }
  case InstKind::SetGlobal: {
    const auto *G = cast<VarIdxInst>(&I);
    if (G->index() >= Env.Globals.size())
      return err("set_global " + std::to_string(G->index()) + " out of range");
    const ModuleEnv::GlobalTy &GT = Env.Globals[G->index()];
    if (!GT.Mut)
      return err("set_global of immutable global " +
                 std::to_string(G->index()));
    Expected<TypeRef> T = popAny(St, "set_global");
    if (!T)
      return T.error();
    if (T->P != GT.P.get())
      return err("set_global type mismatch");
    if (!isUnr(T->Q))
      return err("globals hold unrestricted values only");
    if (noteNeeded(I))
      note(I, {*T}, {});
    return Status::success();
  }
  case InstKind::Qualify: {
    const auto *Q = cast<QualifyInst>(&I);
    if (Status S = wfQual(Q->qual(), F.Kinds); !S)
      return S;
    Expected<TypeRef> T = popAny(St, "qualify");
    if (!T)
      return T.error();
    if (!leqQual(T->Q, Q->qual(), F.Kinds))
      return err("qualify can only strengthen the qualifier upward");
    TypeRef Out(T->P, Q->qual());
    if (Status S = wfType(Out, F.Kinds); !S)
      return S;
    if (noteNeeded(I))
      note(I, {*T}, {Out});
    push(St, Out);
    return Status::success();
  }

  case InstKind::CoderefI:
  case InstKind::InstIdx:
  case InstKind::CallIndirect:
  case InstKind::Call:
    return checkCallLike(I, St);

  case InstKind::RecFold: {
    const auto *RF = cast<RecFoldInst>(&I);
    const auto *Rec = dyn_cast<RecPT>(RF->pretype());
    if (!Rec)
      return err("rec.fold annotation is not a recursive pretype");
    if (Status S = wfPretypeAt(RF->pretype(), Rec->body().Q, F.Kinds); !S)
      return S;
    Subst Sub = Subst::onePretype(RF->pretype());
    Type Unfolded = Sub.rewrite(Rec->body());
    if (Status S = popExpect(St, Unfolded, "rec.fold"); !S)
      return S;
    TypeRef Out(RF->pretype().get(), Rec->body().Q);
    if (noteNeeded(I))
      note(I, {Unfolded}, {Out});
    push(St, Out);
    return Status::success();
  }
  case InstKind::RecUnfold: {
    Expected<TypeRef> T = popAny(St, "rec.unfold");
    if (!T)
      return T.error();
    const auto *Rec = dyn_cast<RecPT>(T->P);
    if (!Rec)
      return err("rec.unfold expects a recursive type");
    Subst Sub = Subst::onePretype(T->P->shared_from_this());
    Type Out = Sub.rewrite(Rec->body());
    if (noteNeeded(I))
      note(I, {*T}, {Out});
    push(St, Out);
    return Status::success();
  }
  case InstKind::MemPack: {
    const auto *MP = cast<MemPackInst>(&I);
    Loc Target = resolveLoc(MP->loc());
    if (Status S = wfLoc(Target, F.Kinds); !S)
      return S;
    Expected<TypeRef> T = popAny(St, "mem.pack");
    if (!T)
      return T.error();
    AbstractLoc Abs(Target);
    PretypeRef Body = Abs.TypeRewriter::rewrite(T->P->shared_from_this());
    TypeRef Out(exLocPT(Type(Body, T->Q)).get(), T->Q);
    if (noteNeeded(I))
      note(I, {*T}, {Out});
    push(St, Out);
    return Status::success();
  }
  case InstKind::MemUnpack: {
    const auto *MU = cast<MemUnpackInst>(&I);
    Expected<TypeRef> T = popAny(St, "mem.unpack");
    if (!T)
      return T.error();
    const auto *Ex = dyn_cast<ExLocPT>(T->P);
    if (!Ex)
      return err("mem.unpack expects an existential-location package");
    if (Status S = popParams(St, MU->arrow().Params, "mem.unpack"); !S)
      return S;
    Expected<LocalEnv> LP = applyEffects(St.Locals, MU->effects());
    if (!LP)
      return LP.error();
    uint64_t SkId = NextSkolem++;
    Subst Sub = Subst::oneLoc(Loc::skolem(SkId));
    Type Opened = Sub.rewrite(Ex->body());
    TypeRef OpenedRef = Opened;
    LocBinders.push_back(Loc::skolem(SkId));
    Status BodySt = checkBlockBody(St, MU->arrow(), *LP, MU->body(),
                                   /*IsLoop=*/false, &OpenedRef);
    LocBinders.pop_back();
    if (!BodySt)
      return BodySt;
    for (const Type &R : MU->arrow().Results)
      if (typeHasLocSkolem(R, SkId))
        return err("mem.unpack: abstract location escapes in a result type");
    for (const LocalSlotRef &L : *LP)
      if (typeHasLocSkolem(L.T, SkId))
        return err("mem.unpack: abstract location escapes in a local");
    St.Locals = *LP;
    if (noteNeeded(I)) {
      std::vector<TypeRef> Ops = refs(MU->arrow().Params);
      Ops.push_back(*T);
      note(I, std::move(Ops), refs(MU->arrow().Results));
    }
    pushAll(St, MU->arrow().Results);
    return Status::success();
  }

  case InstKind::Group: {
    const auto *G = cast<GroupInst>(&I);
    if (Status S = wfQual(G->qual(), F.Kinds); !S)
      return S;
    if (depth(St) < G->count())
      return err("seq.group: stack underflow");
    const TypeRef *Elems = Stack.end() - G->count();
    for (size_t J = 0; J < G->count(); ++J)
      if (!leqQual(Elems[J].Q, G->qual(), F.Kinds))
        return err("seq.group: component qualifier exceeds tuple qualifier");
    TypeRef Out(TypeArena::current().prodSpan(Elems, G->count()).get(),
                G->qual());
    if (noteNeeded(I))
      note(I, std::vector<TypeRef>(Elems, Elems + G->count()), {Out});
    Stack.truncate(Stack.size() - G->count());
    push(St, Out);
    return Status::success();
  }
  case InstKind::Ungroup: {
    Expected<TypeRef> T = popAny(St, "seq.ungroup");
    if (!T)
      return T.error();
    const auto *P = dyn_cast<ProdPT>(T->P);
    if (!P)
      return err("seq.ungroup expects a tuple");
    if (noteNeeded(I))
      note(I, {*T}, refs(P->elems()));
    pushAll(St, P->elems());
    return Status::success();
  }

  case InstKind::CapSplit: {
    Expected<TypeRef> T = popAny(St, "cap.split");
    if (!T)
      return T.error();
    const auto *C = dyn_cast<CapPT>(T->P);
    if (!C || C->privilege() != Privilege::RW)
      return err("cap.split expects a read-write capability");
    TypeRef RCap(capPT(Privilege::R, C->loc(), C->heapType()).get(), T->Q);
    TypeRef Own(ownPT(C->loc()).get(), T->Q);
    if (noteNeeded(I))
      note(I, {*T}, {RCap, Own});
    push(St, RCap);
    push(St, Own);
    return Status::success();
  }
  case InstKind::CapJoin: {
    Expected<TypeRef> TOwn = popAny(St, "cap.join");
    if (!TOwn)
      return TOwn.error();
    Expected<TypeRef> TCap = popAny(St, "cap.join");
    if (!TCap)
      return TCap.error();
    const auto *O = dyn_cast<OwnPT>(TOwn->P);
    const auto *C = dyn_cast<CapPT>(TCap->P);
    if (!O || !C || C->privilege() != Privilege::R)
      return err("cap.join expects a read capability and an ownership token");
    if (C->loc() != O->loc())
      return err("cap.join: capability and ownership token disagree on the "
                 "location");
    TypeRef Out(capPT(Privilege::RW, C->loc(), C->heapType()).get(),
                TCap->Q);
    if (noteNeeded(I))
      note(I, {*TCap, *TOwn}, {Out});
    push(St, Out);
    return Status::success();
  }
  case InstKind::RefDemote: {
    Expected<TypeRef> T = popAny(St, "ref.demote");
    if (!T)
      return T.error();
    const auto *R = dyn_cast<RefPT>(T->P);
    if (!R || R->privilege() != Privilege::RW)
      return err("ref.demote expects a read-write reference");
    TypeRef Out(refPT(Privilege::R, R->loc(), R->heapType()).get(), T->Q);
    if (noteNeeded(I))
      note(I, {*T}, {Out});
    push(St, Out);
    return Status::success();
  }
  case InstKind::RefSplit: {
    Expected<TypeRef> T = popAny(St, "ref.split");
    if (!T)
      return T.error();
    const auto *R = dyn_cast<RefPT>(T->P);
    if (!R)
      return err("ref.split expects a reference");
    TypeRef Cap(capPT(R->privilege(), R->loc(), R->heapType()).get(), T->Q);
    TypeRef Ptr(ptrPT(R->loc()).get(), Qual::unr());
    if (noteNeeded(I))
      note(I, {*T}, {Cap, Ptr});
    push(St, Cap);
    push(St, Ptr);
    return Status::success();
  }
  case InstKind::RefJoin: {
    Expected<TypeRef> TPtr = popAny(St, "ref.join");
    if (!TPtr)
      return TPtr.error();
    Expected<TypeRef> TCap = popAny(St, "ref.join");
    if (!TCap)
      return TCap.error();
    const auto *P = dyn_cast<PtrPT>(TPtr->P);
    const auto *C = dyn_cast<CapPT>(TCap->P);
    if (!P || !C)
      return err("ref.join expects a capability and a pointer");
    if (P->loc() != C->loc())
      return err("ref.join: capability and pointer disagree on the location");
    TypeRef Out(refPT(C->privilege(), C->loc(), C->heapType()).get(),
                TCap->Q);
    if (noteNeeded(I))
      note(I, {*TCap, *TPtr}, {Out});
    push(St, Out);
    return Status::success();
  }

  default:
    return checkHeap(I, St);
  }
}

//===----------------------------------------------------------------------===//
// Heap instructions
//===----------------------------------------------------------------------===//

Status CheckerImpl::checkHeap(const Inst &I, State &St) {
  switch (I.kind()) {
  case InstKind::StructMalloc: {
    const auto *SM = cast<StructMallocInst>(&I);
    if (Status S = wfQual(SM->qual(), F.Kinds); !S)
      return S;
    size_t N = SM->sizes().size();
    if (depth(St) < N)
      return err("struct.malloc: stack underflow");
    const TypeRef *Fields = Stack.end() - N;
    ScratchFields.clear();
    for (size_t J = 0; J < N; ++J) {
      if (Status S = wfSize(SM->sizes()[J], F.Kinds); !S)
        return S;
      if (!leqSize(sizeOfType(Fields[J], F.Kinds), SM->sizes()[J], F.Kinds))
        return err("struct.malloc: field " + std::to_string(J) +
                   " does not fit its declared slot");
      if (!noCaps(Fields[J], F.Kinds))
        return err("struct.malloc: capabilities cannot be stored on the heap");
      ScratchFields.push_back({Fields[J], SM->sizes()[J].get()});
    }
    TypeRef Ref(refPT(Privilege::RW, Loc::var(0),
                      TypeArena::current().structureSpan(
                          ScratchFields.begin(), ScratchFields.size()))
                    .get(),
                SM->qual());
    TypeRef Out(exLocPT(Ref.own()).get(), SM->qual());
    if (noteNeeded(I))
      note(I, std::vector<TypeRef>(Stack.end() - N, Stack.end()), {Out});
    Stack.truncate(Stack.size() - N);
    push(St, Out);
    return Status::success();
  }

  case InstKind::StructFree:
  case InstKind::ArrayFree: {
    Expected<TypeRef> T = popAny(St, "free");
    if (!T)
      return T.error();
    const auto *R = dyn_cast<RefPT>(T->P);
    if (!R || R->privilege() != Privilege::RW)
      return err("free expects a read-write reference");
    if (!isLin(T->Q))
      return err("free of a non-linear reference");
    if (R->loc().isConcrete() && R->loc().mem() != MemKind::Lin)
      return err("free of an unrestricted-memory reference");
    if (noteNeeded(I))
      note(I, {*T}, {});
    return Status::success();
  }

  case InstKind::StructGet: {
    const auto *SG = cast<StructIdxInst>(&I);
    if (depth(St) == 0)
      return err("struct.get: stack underflow");
    const TypeRef &RefT = Stack.back();
    const auto *R = dyn_cast<RefPT>(RefT.P);
    const StructHT *H = R ? dyn_cast<StructHT>(R->heapType()) : nullptr;
    if (!H)
      return err("struct.get expects a struct reference");
    if (SG->fieldIndex() >= H->fields().size())
      return err("struct.get: field index out of range");
    const Type &FieldT = H->fields()[SG->fieldIndex()].T;
    if (!isUnr(FieldT.Q))
      return err("struct.get of a linear field (use struct.swap)");
    if (noteNeeded(I))
      note(I, {RefT}, {RefT, FieldT});
    push(St, FieldT);
    return Status::success();
  }

  case InstKind::StructSet:
  case InstKind::StructSwap: {
    const auto *SS = cast<StructIdxInst>(&I);
    bool IsSwap = I.kind() == InstKind::StructSwap;
    const char *Name = IsSwap ? "struct.swap" : "struct.set";
    Expected<TypeRef> NewT = popAny(St, Name);
    if (!NewT)
      return NewT.error();
    if (depth(St) == 0)
      return err(std::string(Name) + ": stack underflow");
    TypeRef RefT = Stack.back();
    const auto *R = dyn_cast<RefPT>(RefT.P);
    const StructHT *H = R ? dyn_cast<StructHT>(R->heapType()) : nullptr;
    if (!H)
      return err(std::string(Name) + " expects a struct reference");
    if (R->privilege() != Privilege::RW)
      return err(std::string(Name) + " requires write privilege");
    if (SS->fieldIndex() >= H->fields().size())
      return err(std::string(Name) + ": field index out of range");
    const StructField &Field = H->fields()[SS->fieldIndex()];
    if (!IsSwap && !isUnr(Field.T.Q))
      return err("struct.set would drop the linear value in the field");
    if (!leqSize(sizeOfType(*NewT, F.Kinds), Field.Slot, F.Kinds))
      return err(std::string(Name) + ": new value does not fit the slot");
    if (!noCaps(*NewT, F.Kinds))
      return err(std::string(Name) +
                 ": capabilities cannot be stored on the heap");
    // Strong updates only through linear references; unrestricted cells
    // admit type-preserving updates only.
    bool SameFieldType = typeEquals(*NewT, Field.T);
    if (!isLin(RefT.Q) && !SameFieldType)
      return err(std::string(Name) +
                 ": strong update through a non-linear reference");
    TypeRef NewRef = RefT;
    if (!SameFieldType) {
      // Only a genuinely strong update changes the reference type; a
      // type-preserving write reuses the canonical node outright.
      std::vector<StructField> NewFields = H->fields();
      NewFields[SS->fieldIndex()].T = NewT->own();
      NewRef = TypeRef(
          refPT(Privilege::RW, R->loc(), structHT(NewFields)).get(), RefT.Q);
    }
    Stack.back() = NewRef;
    if (IsSwap) {
      if (noteNeeded(I))
        note(I, {RefT, *NewT}, {NewRef, Field.T});
      push(St, Field.T);
    } else {
      if (noteNeeded(I))
        note(I, {RefT, *NewT}, {NewRef});
    }
    return Status::success();
  }

  case InstKind::VariantMalloc: {
    const auto *VM = cast<VariantMallocInst>(&I);
    if (Status S = wfQual(VM->qual(), F.Kinds); !S)
      return S;
    if (VM->tag() >= VM->cases().size())
      return err("variant.malloc: tag out of range");
    for (const Type &T : VM->cases()) {
      if (Status S = wfType(T, F.Kinds); !S)
        return S;
      if (!noCaps(T, F.Kinds))
        return err("variant.malloc: capabilities cannot be stored on the "
                   "heap");
    }
    if (Status S = popExpect(St, VM->cases()[VM->tag()], "variant.malloc");
        !S)
      return S;
    TypeRef Ref(refPT(Privilege::RW, Loc::var(0),
                      TypeArena::current().variantSpan(VM->cases().data(),
                                                       VM->cases().size()))
                    .get(),
                VM->qual());
    TypeRef Out(exLocPT(Ref.own()).get(), VM->qual());
    if (noteNeeded(I))
      note(I, {VM->cases()[VM->tag()]}, {Out});
    push(St, Out);
    return Status::success();
  }

  case InstKind::VariantCase: {
    const auto *VC = cast<VariantCaseInst>(&I);
    const auto *H = dyn_cast<VariantHT>(VC->heapType());
    if (!H)
      return err("variant.case annotation is not a variant heap type");
    if (VC->arms().size() != H->cases().size())
      return err("variant.case: arm count disagrees with the variant");
    if (Status S = popParams(St, VC->arrow().Params, "variant.case"); !S)
      return S;
    Expected<TypeRef> RefT = popAny(St, "variant.case");
    if (!RefT)
      return RefT.error();
    const auto *R = dyn_cast<RefPT>(RefT->P);
    if (!R || !heapTypeEquals(*R->heapType(), *H))
      return err("variant.case: reference does not match the annotated "
                 "variant type");
    Expected<LocalEnv> LP = applyEffects(St.Locals, VC->effects());
    if (!LP)
      return LP.error();

    bool LinMode = isLin(VC->qual());
    if (LinMode) {
      if (!isLin(RefT->Q))
        return err("linear variant.case on a non-linear reference");
      if (R->privilege() != Privilege::RW)
        return err("linear variant.case requires write privilege to free");
    } else {
      if (!isUnr(VC->qual()))
        return err("variant.case qualifier must be concrete-intent (unr or "
                   "lin)");
      for (const Type &CT : H->cases())
        if (!isUnr(CT.Q))
          return err("unrestricted variant.case over linear case types");
    }

    // Each arm receives the params plus its case payload. While an arm
    // runs, an unrestricted case keeps the (possibly linear) reference
    // locked beneath the block, so account for it in the drop discipline.
    if (!LinMode)
      push(St, *RefT);
    for (size_t A = 0; A < VC->arms().size(); ++A) {
      TypeRef CaseT = H->cases()[A];
      if (Status S = checkBlockBody(St, VC->arrow(), *LP, VC->arms()[A],
                                    /*IsLoop=*/false, &CaseT);
          !S)
        return Error("in arm " + std::to_string(A) + ": " +
                     S.error().message());
    }
    if (!LinMode)
      Stack.pop_back();

    St.Locals = *LP;
    if (!LinMode)
      push(St, *RefT);
    pushAll(St, VC->arrow().Results);
    if (noteNeeded(I)) {
      std::vector<TypeRef> Ops = refs(VC->arrow().Params);
      Ops.push_back(*RefT);
      std::vector<TypeRef> Res;
      if (!LinMode)
        Res.push_back(*RefT);
      for (const Type &T : VC->arrow().Results)
        Res.push_back(T);
      note(I, std::move(Ops), std::move(Res));
    }
    return Status::success();
  }

  case InstKind::ArrayMalloc: {
    const auto *AM = cast<ArrayMallocInst>(&I);
    if (Status S = wfQual(AM->qual(), F.Kinds); !S)
      return S;
    Expected<TypeRef> Len = popAny(St, "array.malloc");
    if (!Len)
      return Len.error();
    const auto *N = dyn_cast<NumPT>(Len->P);
    if (!N || numTypeBits(N->numType()) != 32 || !isIntType(N->numType()))
      return err("array.malloc expects a 32-bit integer length");
    Expected<TypeRef> Init = popAny(St, "array.malloc");
    if (!Init)
      return Init.error();
    if (!isUnr(Init->Q))
      return err("array.malloc replicates its initializer, which must be "
                 "unrestricted");
    if (!noCaps(*Init, F.Kinds))
      return err("array.malloc: capabilities cannot be stored on the heap");
    TypeRef Ref(
        refPT(Privilege::RW, Loc::var(0), arrayHT(Init->own())).get(),
        AM->qual());
    TypeRef Out(exLocPT(Ref.own()).get(), AM->qual());
    if (noteNeeded(I))
      note(I, {*Init, *Len}, {Out});
    push(St, Out);
    return Status::success();
  }
  case InstKind::ArrayGet: {
    Expected<TypeRef> Idx = popAny(St, "array.get");
    if (!Idx)
      return Idx.error();
    if (!isa<NumPT>(Idx->P))
      return err("array.get expects an integer index");
    if (depth(St) == 0)
      return err("array.get: stack underflow");
    const TypeRef &RefT = Stack.back();
    const auto *R = dyn_cast<RefPT>(RefT.P);
    const ArrayHT *H = R ? dyn_cast<ArrayHT>(R->heapType()) : nullptr;
    if (!H)
      return err("array.get expects an array reference");
    if (!isUnr(H->elem().Q))
      return err("array.get of linear elements");
    if (noteNeeded(I))
      note(I, {RefT, *Idx}, {RefT, H->elem()});
    push(St, H->elem());
    return Status::success();
  }
  case InstKind::ArraySet: {
    Expected<TypeRef> NewT = popAny(St, "array.set");
    if (!NewT)
      return NewT.error();
    Expected<TypeRef> Idx = popAny(St, "array.set");
    if (!Idx)
      return Idx.error();
    if (!isa<NumPT>(Idx->P))
      return err("array.set expects an integer index");
    if (depth(St) == 0)
      return err("array.set: stack underflow");
    const TypeRef &RefT = Stack.back();
    const auto *R = dyn_cast<RefPT>(RefT.P);
    const ArrayHT *H = R ? dyn_cast<ArrayHT>(R->heapType()) : nullptr;
    if (!H)
      return err("array.set expects an array reference");
    if (R->privilege() != Privilege::RW)
      return err("array.set requires write privilege");
    if (!typeEquals(*NewT, H->elem()))
      return err("array.set: arrays support type-preserving updates only");
    if (!isUnr(NewT->Q))
      return err("array.set would drop the previous (linear) element");
    if (noteNeeded(I))
      note(I, {RefT, *Idx, *NewT}, {RefT});
    return Status::success();
  }

  case InstKind::ExistPack: {
    const auto *EP = cast<ExistPackInst>(&I);
    const auto *H = dyn_cast<ExHT>(EP->heapType());
    if (!H)
      return err("exist.pack annotation is not an existential heap type");
    if (Status S = wfQual(EP->qual(), F.Kinds); !S)
      return S;
    if (Status S = wfHeapType(EP->heapType(), F.Kinds); !S)
      return S;
    if (Status S = wfPretypeAt(EP->witness(), H->qualLower(), F.Kinds); !S)
      return S;
    if (!leqSize(ir::sizeOfPretype(EP->witness(), typeVarSizes(F.Kinds)),
                 H->sizeUpper(), F.Kinds))
      return err("exist.pack: witness exceeds the size bound");
    if (!noCapsPre(EP->witness(), F.Kinds))
      return err("exist.pack: capabilities cannot be stored on the heap");
    Subst Sub = Subst::onePretype(EP->witness());
    Type Expected = Sub.rewrite(H->body());
    if (Status S = popExpect(St, Expected, "exist.pack"); !S)
      return S;
    TypeRef Ref(refPT(Privilege::RW, Loc::var(0), EP->heapType()).get(),
                EP->qual());
    TypeRef Out(exLocPT(Ref.own()).get(), EP->qual());
    if (noteNeeded(I))
      note(I, {Expected}, {Out});
    push(St, Out);
    return Status::success();
  }

  case InstKind::ExistUnpack: {
    const auto *EU = cast<ExistUnpackInst>(&I);
    const auto *H = dyn_cast<ExHT>(EU->heapType());
    if (!H)
      return err("exist.unpack annotation is not an existential heap type");
    if (Status S = popParams(St, EU->arrow().Params, "exist.unpack"); !S)
      return S;
    Expected<TypeRef> RefT = popAny(St, "exist.unpack");
    if (!RefT)
      return RefT.error();
    const auto *R = dyn_cast<RefPT>(RefT->P);
    if (!R || !heapTypeEquals(*R->heapType(), *H))
      return err("exist.unpack: reference does not match the annotated "
                 "package type");
    Expected<LocalEnv> LP = applyEffects(St.Locals, EU->effects());
    if (!LP)
      return LP.error();

    bool LinMode = isLin(EU->qual());
    if (LinMode) {
      if (!isLin(RefT->Q))
        return err("linear exist.unpack on a non-linear reference");
      if (R->privilege() != Privilege::RW)
        return err("linear exist.unpack requires write privilege to free");
    } else if (!isUnr(EU->qual())) {
      return err("exist.unpack qualifier must be unr or lin");
    }

    uint64_t SkId = NextSkolem++;
    PretypeRef Sk =
        skolemPT(SkId, H->qualLower(), H->sizeUpper(), /*NoCaps=*/true);
    Subst Sub = Subst::onePretype(Sk);
    Type Opened = Sub.rewrite(H->body());
    TypeRef OpenedRef = Opened;

    if (!LinMode)
      push(St, *RefT);
    if (Status S = checkBlockBody(St, EU->arrow(), *LP, EU->body(),
                                  /*IsLoop=*/false, &OpenedRef);
        !S)
      return S;
    if (!LinMode)
      Stack.pop_back();

    for (const Type &T : EU->arrow().Results)
      if (typeHasTypeSkolem(T, SkId))
        return err("exist.unpack: abstract pretype escapes in a result type");
    for (const LocalSlotRef &L : *LP)
      if (typeHasTypeSkolem(L.T, SkId))
        return err("exist.unpack: abstract pretype escapes in a local");

    St.Locals = *LP;
    if (!LinMode)
      push(St, *RefT);
    pushAll(St, EU->arrow().Results);
    if (noteNeeded(I)) {
      std::vector<TypeRef> Ops = refs(EU->arrow().Params);
      Ops.push_back(*RefT);
      std::vector<TypeRef> Res;
      if (!LinMode)
        Res.push_back(*RefT);
      for (const Type &T : EU->arrow().Results)
        Res.push_back(T);
      note(I, std::move(Ops), std::move(Res));
    }
    return Status::success();
  }

  default:
    return err("unhandled instruction kind in checker");
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Instantiation checking
//===----------------------------------------------------------------------===//

Status rw::typing::checkInstantiation(const KindCtx &Kinds, const FunType &FT,
                                      const std::vector<Index> &Args,
                                      size_t Count) {
  assert(Count <= Args.size());
  for (size_t I = 0; I < Count; ++I) {
    const Quant &Q = FT.quants()[I];
    const Index &A = Args[I];
    if (Q.K != A.K)
      return Error("instantiation index " + std::to_string(I) +
                   " has the wrong kind");
    // Constraints mention earlier binders: substitute the earlier
    // arguments into them before checking entailment in the ambient
    // context.
    std::vector<Index> Prefix(Args.begin(),
                              Args.begin() + static_cast<ptrdiff_t>(I));
    Subst Sub = Subst::fromIndices(Prefix);
    switch (Q.K) {
    case QuantKind::Loc:
      if (Status S = wfLoc(A.L, Kinds); !S)
        return S;
      break;
    case QuantKind::Size: {
      if (!A.Sz)
        return Error("missing size index");
      if (Status S = wfSize(A.Sz, Kinds); !S)
        return S;
      for (const SizeRef &L : Q.SizeLower)
        if (!leqSize(Sub.rewrite(L), A.Sz, Kinds))
          return Error("size index violates its lower bound");
      for (const SizeRef &U : Q.SizeUpper)
        if (!leqSize(A.Sz, Sub.rewrite(U), Kinds))
          return Error("size index violates its upper bound");
      break;
    }
    case QuantKind::Qual: {
      if (Status S = wfQual(A.Q, Kinds); !S)
        return S;
      for (Qual L : Q.QualLower)
        if (!leqQual(Sub.rewrite(L), A.Q, Kinds))
          return Error("qualifier index violates its lower bound");
      for (Qual U : Q.QualUpper)
        if (!leqQual(A.Q, Sub.rewrite(U), Kinds))
          return Error("qualifier index violates its upper bound");
      break;
    }
    case QuantKind::Type: {
      if (!A.P)
        return Error("missing pretype index");
      Qual QLB = Sub.rewrite(Q.TypeQualLower);
      if (Status S = wfPretypeAt(A.P, QLB, Kinds); !S)
        return S;
      SizeRef Bound = Q.TypeSizeUpper ? Sub.rewrite(Q.TypeSizeUpper)
                                      : Size::constant(64);
      SizeRef ArgSize =
          A.P->freeBounds().Type == 0
              ? sizeOfPretype(A.P, {}) // Memoized; bounds never consulted.
              : sizeOfPretype(A.P, typeVarSizes(Kinds));
      if (!leqSize(ArgSize, Bound, Kinds))
        return Error("pretype index exceeds its size bound");
      if (Q.TypeNoCaps && !noCapsPre(A.P, Kinds))
        return Error("pretype index may not contain capabilities");
      break;
    }
    }
  }
  return Status::success();
}

//===----------------------------------------------------------------------===//
// Public entry points
//===----------------------------------------------------------------------===//

Expected<typing::SeqResult> rw::typing::checkSeq(
    const ModuleEnv &Env, const KindCtx &Kinds,
    const std::optional<std::vector<Type>> &Ret, LocalCtx Locals,
    std::vector<Type> StackIn, const InstVec &Insts, InfoMap *IM) {
  CheckerImpl C(Env, Kinds, Ret ? &*Ret : nullptr, IM);
  // StackIn stays alive (and owning) for the whole check; the checker
  // stack borrows from it.
  for (const Type &T : StackIn)
    C.Stack.push_back(T);
  CheckerImpl::State St;
  St.Locals = LocalEnv(Locals);
  if (Status S = C.checkSeq(Insts, St); !S)
    return S.error();
  // Results cross the public ownership boundary: re-own them.
  std::vector<Type> OutStack;
  OutStack.reserve(C.Stack.size());
  for (const TypeRef &T : C.Stack)
    OutStack.push_back(T.own());
  return typing::SeqResult{std::move(OutStack), St.Locals.materialize()};
}

Status rw::typing::checkFunction(const ModuleEnv &Env, const Function &Fn,
                                 InfoMap *IM) {
  static obs::Counter FunctionsChecked("typing.functions_checked");
  FunctionsChecked.inc();
  if (!Fn.Ty)
    return Error("function has no type");
  if (Status S = wfFunType(*Fn.Ty, KindCtx()); !S)
    return S;
  if (Fn.isImport())
    return Status::success();

  KindCtx Kinds = buildKindCtx(Fn.Ty->quants());
  CheckerImpl C(Env, Kinds, &Fn.Ty->arrow().Results, IM);

  // Build the borrowed local environment directly: parameter types are
  // owned by the function's declared type, slot sizes by the arena.
  support::SmallVec<LocalSlotRef, 16> Locals;
  for (const Type &P : Fn.Ty->arrow().Params)
    Locals.push_back({P, typing::sizeOfType(P, Kinds)});
  for (const SizeRef &Sz : Fn.Locals) {
    if (Status S = wfSize(Sz, Kinds); !S)
      return S;
    Locals.push_back({unitT(), Sz.get()});
  }
  CheckerImpl::State St;
  St.Locals = LocalEnv(Locals.begin(), Locals.size());

  if (Status S = C.checkSeq(Fn.Body, St); !S)
    return S;

  if (!St.Unreachable) {
    const std::vector<Type> &Want = Fn.Ty->arrow().Results;
    if (C.Stack.size() != Want.size())
      return Error("function body leaves " + std::to_string(C.Stack.size()) +
                   " values, expected " + std::to_string(Want.size()));
    for (size_t I = 0; I < Want.size(); ++I)
      if (!typeEquals(C.Stack[I], Want[I]))
        return Error("function result " + std::to_string(I) +
                     " has type " + printType(C.Stack[I]) + ", expected " +
                     printType(Want[I]));
    for (const LocalSlotRef &L : St.Locals)
      if (!qualIsUnr(L.T.Q, Kinds))
        return Error("function ends with a linear value in a local");
  }
  return Status::success();
}

Status rw::typing::detail::checkTableEntries(const Module &M) {
  for (uint32_t Idx : M.Tab.Entries)
    if (Idx >= M.Funcs.size())
      return Error("table entry " + std::to_string(Idx) + " out of range");
  return Status::success();
}

Status rw::typing::detail::checkGlobalsAndStart(const Module &M,
                                                const ModuleEnv &Env,
                                                InfoMap *IM) {
  for (size_t I = 0; I < M.Globals.size(); ++I) {
    const Global &G = M.Globals[I];
    if (!G.P)
      return Error("global " + std::to_string(I) + " has no pretype");
    if (Status S = wfPretypeAt(G.P, Qual::unr(), KindCtx()); !S)
      return Error("in global " + std::to_string(I) + ": " +
                   S.error().message());
    if (G.isImport())
      continue;
    Expected<SeqResult> R = checkSeq(Env, KindCtx(), std::nullopt, {}, {},
                                     G.Init, IM);
    if (!R)
      return Error("in global " + std::to_string(I) + " initializer: " +
                   R.error().message());
    if (R->Stack.size() != 1 || !pretypeEquals(*R->Stack[0].P, *G.P))
      return Error("global " + std::to_string(I) +
                   " initializer does not produce the declared type");
  }

  if (M.Start) {
    if (*M.Start >= M.Funcs.size())
      return Error("start function index out of range");
    const FunType &FT = *M.Funcs[*M.Start].Ty;
    if (!FT.quants().empty() || !FT.arrow().Params.empty() ||
        !FT.arrow().Results.empty())
      return Error("start function must have type [] -> []");
  }
  return Status::success();
}

Status rw::typing::checkModule(const Module &M, InfoMap *IM) {
  OBS_SPAN("check_module", M.Funcs.size());
  static obs::Counter ModulesChecked("typing.modules_checked");
  ModulesChecked.inc();
  // Checker working-state allocation seam: the failure is reported like
  // any judgment failure and the admission is cleanly rejected.
  if (RW_FAULT_POINT(rw::support::fault::Seam::CheckAlloc))
    return Error("injected allocation failure in checkModule");
  // Intern every type the judgments build into the module's arena, so the
  // canonical-pointer equality guarantee spans the whole check.
  ArenaScope Scope(M.Arena ? *M.Arena : TypeArena::global());
  if (Status S = detail::checkTableEntries(M); !S)
    return S;
  ModuleEnv Env = buildModuleEnv(M);

  for (size_t I = 0; I < M.Funcs.size(); ++I)
    if (Status S = checkFunction(Env, M.Funcs[I], IM); !S)
      return Error("in function " + std::to_string(I) + ": " +
                   S.error().message());

  return detail::checkGlobalsAndStart(M, Env, IM);
}
