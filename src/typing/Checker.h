//===- typing/Checker.h - RichWasm type checker -----------------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction, function, and module typing judgments of Fig 7. The
/// checker is a deterministic stack simulation: it threads an abstract
/// operand stack (exact types) and the local environment L through each
/// instruction, enforcing the paper's qualifier (linearity), size (strong
/// update), capability, and scoping premises. Cross-module memory safety is
/// exactly this judgment applied at link boundaries — a module pair whose
/// interaction would violate ownership fails here (the Fig 1/Fig 3 story).
///
/// When given an InfoMap, the checker records each instruction's consumed
/// and produced operand types — the "type information that is implicit in
/// RichWasm instructions which is provided by the type checker" that §6
/// says the Wasm compiler consumes.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_TYPING_CHECKER_H
#define RICHWASM_TYPING_CHECKER_H

#include "support/Error.h"
#include "typing/Context.h"

#include <span>
#include <unordered_map>
#include <vector>

namespace rw::support {
class ThreadPool;
} // namespace rw::support

namespace rw::cache {
class AdmissionCache;
} // namespace rw::cache

namespace rw::typing {

/// Operand/result types the checker observed at one instruction, consumed
/// by the RichWasm→Wasm lowering. Recorded only for the instruction kinds
/// the lowering actually consults (see infoConsumedByLowering below) —
/// numerics, control flow, and the erased type-level forms lower without
/// annotations, and recording them was a third of the annotated-check
/// cost. Types are *borrowed* views
/// (ir::TypeRef): every node is interned in the module's TypeArena, whose
/// lifetime spans the check→lower hand-off, so the map never refcounts.
/// Lifetime contract (DESIGN.md §9): an InfoMap is valid while the
/// module's arena is alive and no TypeArena::rollback* past the check has
/// run; it must not be serialized or cached (ownership boundaries re-own
/// via TypeRef::own()).
struct InstInfo {
  std::vector<ir::TypeRef> Operands; ///< Consumed, bottom of stack first.
  std::vector<ir::TypeRef> Results;  ///< Produced, bottom of stack first.
};

using InfoMap = std::unordered_map<const ir::Inst *, InstInfo>;

/// The instruction kinds whose lowering consults the InfoMap; note() skips
/// every other kind (their annotations were write-only).
constexpr bool infoConsumedByLowering(ir::InstKind K) {
  switch (K) {
  case ir::InstKind::Drop:
  case ir::InstKind::Select:
  case ir::InstKind::GetLocal:
  case ir::InstKind::SetLocal:
  case ir::InstKind::TeeLocal:
  case ir::InstKind::Call:
  case ir::InstKind::CallIndirect:
  case ir::InstKind::MemUnpack:
  case ir::InstKind::StructMalloc:
  case ir::InstKind::StructGet:
  case ir::InstKind::StructSet:
  case ir::InstKind::StructSwap:
  case ir::InstKind::ArrayMalloc:
  case ir::InstKind::ArrayGet:
  case ir::InstKind::ArraySet:
  case ir::InstKind::ExistPack:
    return true;
  default:
    return false;
  }
}

/// Checks a whole module: every function body, global initializer, table
/// entry, and the start function's signature.
Status checkModule(const ir::Module &M, InfoMap *IM = nullptr);

/// Batch admission (DESIGN.md §7): checks every module in \p Mods with the
/// function checks distributed over \p Pool (plus the calling thread),
/// work-stealing balanced. Returns one Status per module, in input order.
///
/// Deterministic diagnostics: per-function results are collected and
/// assembled in (module, function) index order, so the returned statuses —
/// including every error message — are byte-identical to running
/// checkModule(*Mods[i]) sequentially, for any pool size.
///
/// Thread-safety: modules may share a TypeArena (the default, the
/// process-wide one) — the arena is thread-safe and checks intern
/// concurrently into it. The same module must not appear twice in one
/// batch.
std::vector<Status> checkModules(std::span<const ir::Module *const> Mods,
                                 support::ThreadPool &Pool);

/// Like the overload above, but additionally returns the per-module
/// InfoMaps (\p Infos resized to one map per module; maps of rejected
/// modules are left empty) so a cold admission pipeline checks exactly
/// once: lower::lowerProgram accepts these maps and skips its internal
/// re-check (same process, same instruction pointers — the map key is
/// node identity). Function InfoMaps are recorded per function on the
/// pool and merged in (module, function) index order, so the recorded
/// types are identical to a sequential checkModule(M, &IM).
std::vector<Status> checkModules(std::span<const ir::Module *const> Mods,
                                 support::ThreadPool &Pool,
                                 std::vector<InfoMap> *Infos);

/// Content-addressed batch admission: like checkModules, but each module
/// is keyed by serial::moduleHash in \p Cache — cache hits (including a
/// module submitted twice in one batch) skip the check entirely and
/// replay the memoized verdict with byte-identical diagnostics. A null
/// cache degrades to the uncached overload. Defined in
/// cache/AdmissionCache.cpp so the typing layer itself keeps no cache
/// dependency.
std::vector<Status> checkModules(std::span<const ir::Module *const> Mods,
                                 support::ThreadPool &Pool,
                                 cache::AdmissionCache *Cache);

/// Checks one function against its declared type (module environment
/// required for calls/globals).
Status checkFunction(const ModuleEnv &Env, const ir::Function &F,
                     InfoMap *IM = nullptr);

/// Checks an instruction sequence as the paper's ⊢ e* : τ1* → τ2* with
/// explicit contexts; used heavily by the rule-level unit tests. On
/// success returns the final stack and local environment.
struct SeqResult {
  std::vector<ir::Type> Stack;
  LocalCtx Locals;
};
Expected<SeqResult> checkSeq(const ModuleEnv &Env, const KindCtx &Kinds,
                             const std::optional<std::vector<ir::Type>> &Ret,
                             LocalCtx Locals, std::vector<ir::Type> StackIn,
                             const ir::InstVec &Insts, InfoMap *IM = nullptr);

/// Validates an instantiation-argument prefix against a function type's
/// quantifier list (used by call, inst, and the linker).
Status checkInstantiation(const KindCtx &Kinds, const ir::FunType &FT,
                          const std::vector<ir::Index> &Args, size_t Count);

namespace detail {
/// The non-function module judgments, shared between checkModule and the
/// parallel checkModules so both assemble identical diagnostics. Callers
/// must have the module's arena installed (ArenaScope).
Status checkTableEntries(const ir::Module &M);
Status checkGlobalsAndStart(const ir::Module &M, const ModuleEnv &Env,
                            InfoMap *IM);
} // namespace detail

} // namespace rw::typing

#endif // RICHWASM_TYPING_CHECKER_H
