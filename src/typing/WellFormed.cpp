//===- typing/WellFormed.cpp - Type well-formedness -----------------------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "typing/WellFormed.h"

#include "ir/Print.h"
#include "ir/TypeArena.h"
#include "typing/Entail.h"

using namespace rw;
using namespace rw::typing;
using namespace rw::ir;

namespace {

/// Whether wf of \p P at qualifier \p OuterQ is independent of the ambient
/// context: no free variables of any kind, and a concrete outer qualifier.
/// (Skolem bounds that mention variables are covered by the free bounds.)
bool wfIsContextFree(const Pretype &P, Qual OuterQ) {
  const FreeBounds &FB = P.freeBounds();
  return OuterQ.isConst() && FB.Loc == 0 && FB.Size == 0 && FB.Qual == 0 &&
         FB.Type == 0;
}

} // namespace

Status rw::typing::wfQual(Qual Q, const KindCtx &Ctx) {
  if (Q.isVar() && Q.varIndex() >= Ctx.Quals.size())
    return Error("qualifier variable δ" + std::to_string(Q.varIndex()) +
                 " out of scope");
  return Status::success();
}

Status rw::typing::wfSize(const SizeRef &S, const KindCtx &Ctx) {
  if (!S)
    return Error("missing size expression");
  switch (S->kind()) {
  case Size::Kind::Const:
    return Status::success();
  case Size::Kind::Var:
    if (S->varIndex() >= Ctx.Sizes.size())
      return Error("size variable σ" + std::to_string(S->varIndex()) +
                   " out of scope");
    return Status::success();
  case Size::Kind::Plus:
    if (Status St = wfSize(S->lhs(), Ctx); !St)
      return St;
    return wfSize(S->rhs(), Ctx);
  }
  return Status::success();
}

Status rw::typing::wfLoc(const Loc &L, const KindCtx &Ctx) {
  if (L.isVar() && L.varIndex() >= Ctx.NumLocVars)
    return Error("location variable ρ" + std::to_string(L.varIndex()) +
                 " out of scope");
  return Status::success();
}

namespace {

/// True if pretype variable \p Idx occurs in \p T outside any reference,
/// pointer, capability, or code-reference constructor (i.e. in a position
/// that contributes to flat layout).
bool occursUnprotected(TypeRef T, uint32_t Idx);

bool occursUnprotectedPre(const Pretype *P, uint32_t Idx) {
  switch (P->kind()) {
  case PretypeKind::Var:
    return cast<VarPT>(P)->index() == Idx;
  case PretypeKind::Prod:
    for (const Type &E : cast<ProdPT>(P)->elems())
      if (occursUnprotected(E, Idx))
        return true;
    return false;
  case PretypeKind::Rec:
    return occursUnprotected(cast<RecPT>(P)->body(), Idx + 1);
  case PretypeKind::ExLoc:
    return occursUnprotected(cast<ExLocPT>(P)->body(), Idx);
  default:
    // unit, num, skolem, ref, ptr, cap, own, coderef: either no type
    // subterms or all subterms are behind an indirection/erased construct.
    return false;
  }
}

bool occursUnprotected(TypeRef T, uint32_t Idx) {
  return occursUnprotectedPre(T.P, Idx);
}

/// Memory-privilege coherence for a reference-like pretype: linear-memory
/// cells are accessed through linear references; unrestricted cells through
/// unrestricted ones.
Status checkRefQual(const Loc &L, Qual Q, const KindCtx &Ctx) {
  if (!L.isConcrete())
    return Status::success();
  if (L.mem() == MemKind::Lin && !qualIsLin(Q, Ctx))
    return Error("reference to linear memory must be linear");
  if (L.mem() == MemKind::Unr && !qualIsUnr(Q, Ctx))
    return Error("reference to unrestricted memory must be unrestricted");
  return Status::success();
}

} // namespace

Status rw::typing::wfPretypeAt(const Pretype *P, Qual OuterQ,
                               const KindCtx &Ctx) {
  if (!P)
    return Error("missing pretype");
  // Context-independent judgments are memoized per canonical node in the
  // owning arena (successes only).
  const bool Memoizable = P->arena() && wfIsContextFree(*P, OuterQ);
  if (Memoizable && P->arena()->isKnownWfPretype(P, OuterQ.isLinConst()))
    return Status::success();
  Status Result = wfPretypeAtUncached(P, OuterQ, Ctx);
  if (Memoizable && Result)
    P->arena()->noteWfPretype(P, OuterQ.isLinConst());
  return Result;
}

Status rw::typing::wfPretypeAtUncached(const Pretype *P, Qual OuterQ,
                                       const KindCtx &Ctx) {
  switch (P->kind()) {
  case PretypeKind::Unit:
  case PretypeKind::Num:
    return Status::success();
  case PretypeKind::Var: {
    uint32_t Idx = cast<VarPT>(P)->index();
    if (Idx >= Ctx.Types.size())
      return Error("pretype variable α" + std::to_string(Idx) +
                   " out of scope");
    if (!leqQual(Ctx.Types[Idx].QualLower, OuterQ, Ctx))
      return Error("pretype variable α" + std::to_string(Idx) +
                   " used below its qualifier lower bound");
    return Status::success();
  }
  case PretypeKind::Skolem: {
    const auto *Sk = cast<SkolemPT>(P);
    if (!leqQual(Sk->qualLower(), OuterQ, Ctx))
      return Error("abstract pretype used below its qualifier lower bound");
    return Status::success();
  }
  case PretypeKind::Prod: {
    for (const Type &E : cast<ProdPT>(P)->elems()) {
      if (!leqQual(E.Q, OuterQ, Ctx))
        return Error("tuple component qualifier " + E.Q.str() +
                     " exceeds tuple qualifier " + OuterQ.str());
      if (Status St = wfType(E, Ctx); !St)
        return St;
    }
    return Status::success();
  }
  case PretypeKind::Ref: {
    const auto *R = cast<RefPT>(P);
    if (Status St = wfLoc(R->loc(), Ctx); !St)
      return St;
    if (Status St = checkRefQual(R->loc(), OuterQ, Ctx); !St)
      return St;
    return wfHeapType(R->heapType(), Ctx);
  }
  case PretypeKind::Cap: {
    const auto *C = cast<CapPT>(P);
    if (Status St = wfLoc(C->loc(), Ctx); !St)
      return St;
    return wfHeapType(C->heapType(), Ctx);
  }
  case PretypeKind::Ptr:
    return wfLoc(cast<PtrPT>(P)->loc(), Ctx);
  case PretypeKind::Own:
    return wfLoc(cast<OwnPT>(P)->loc(), Ctx);
  case PretypeKind::Rec: {
    const auto *R = cast<RecPT>(P);
    if (Status St = wfQual(R->bound(), Ctx); !St)
      return St;
    if (R->body().Q != R->bound())
      return Error("rec body qualifier must equal the rec bound");
    if (occursUnprotected(R->body(), 0))
      return Error("recursive type variable occurs outside an indirection");
    KindCtx Inner = Ctx;
    Inner.Types.insert(Inner.Types.begin(),
                       TypeBound{R->bound(), Size::constant(64), true});
    return wfType(R->body(), Inner);
  }
  case PretypeKind::ExLoc: {
    KindCtx Inner = Ctx;
    ++Inner.NumLocVars;
    return wfType(cast<ExLocPT>(P)->body(), Inner);
  }
  case PretypeKind::Coderef:
    return wfFunType(*cast<CoderefPT>(P)->funType(), Ctx);
  }
  return Status::success();
}

Status rw::typing::wfType(TypeRef T, const KindCtx &Ctx) {
  if (!T.valid())
    return Error("missing type");
  if (Status St = wfQual(T.Q, Ctx); !St)
    return St;
  return wfPretypeAt(T.P, T.Q, Ctx);
}

Status rw::typing::wfHeapType(const HeapType *H, const KindCtx &Ctx) {
  if (!H)
    return Error("missing heap type");
  switch (H->kind()) {
  case HeapTypeKind::Variant:
    for (const Type &T : cast<VariantHT>(H)->cases())
      if (Status St = wfType(T, Ctx); !St)
        return St;
    return Status::success();
  case HeapTypeKind::Struct:
    for (const StructField &F : cast<StructHT>(H)->fields()) {
      if (Status St = wfType(F.T, Ctx); !St)
        return St;
      if (Status St = wfSize(F.Slot, Ctx); !St)
        return St;
      if (!leqSize(typing::sizeOfType(F.T, Ctx), F.Slot, Ctx))
        return Error("struct field type does not fit its declared slot");
    }
    return Status::success();
  case HeapTypeKind::Array:
    return wfType(cast<ArrayHT>(H)->elem(), Ctx);
  case HeapTypeKind::Ex: {
    const auto *E = cast<ExHT>(H);
    if (Status St = wfQual(E->qualLower(), Ctx); !St)
      return St;
    if (Status St = wfSize(E->sizeUpper(), Ctx); !St)
      return St;
    KindCtx Inner = Ctx;
    Inner.Types.insert(Inner.Types.begin(),
                       TypeBound{E->qualLower(), E->sizeUpper(), true});
    return wfType(E->body(), Inner);
  }
  }
  return Status::success();
}

KindCtx rw::typing::stackKindCtx(const std::vector<Quant> &Quants,
                                 const KindCtx &Ambient) {
  KindCtx Own = buildKindCtx(Quants);
  Own.Quals.insert(Own.Quals.end(), Ambient.Quals.begin(),
                   Ambient.Quals.end());
  Own.Sizes.insert(Own.Sizes.end(), Ambient.Sizes.begin(),
                   Ambient.Sizes.end());
  Own.Types.insert(Own.Types.end(), Ambient.Types.begin(),
                   Ambient.Types.end());
  Own.NumLocVars += Ambient.NumLocVars;
  return Own;
}

Status rw::typing::wfFunType(const FunType &F, const KindCtx &Ambient) {
  // A closed function type checked under an empty ambient context is a
  // per-node judgment; with hash-consing, all occurrences share one node.
  const FreeBounds &FB = F.freeBounds();
  const bool Memoizable =
      F.arena() && Ambient.Quals.empty() && Ambient.Sizes.empty() &&
      Ambient.Types.empty() && Ambient.NumLocVars == 0 && FB.Loc == 0 &&
      FB.Size == 0 && FB.Qual == 0 && FB.Type == 0;
  if (Memoizable && F.arena()->isKnownWfFun(&F))
    return Status::success();
  KindCtx Ctx = stackKindCtx(F.quants(), Ambient);
  // The (re-indexed) constraints themselves must be well-scoped.
  for (const QualBound &B : Ctx.Quals) {
    for (Qual Q : B.Lower)
      if (Status St = wfQual(Q, Ctx); !St)
        return St;
    for (Qual Q : B.Upper)
      if (Status St = wfQual(Q, Ctx); !St)
        return St;
  }
  for (const SizeBound &B : Ctx.Sizes) {
    for (const SizeRef &S : B.Lower)
      if (Status St = wfSize(S, Ctx); !St)
        return St;
    for (const SizeRef &S : B.Upper)
      if (Status St = wfSize(S, Ctx); !St)
        return St;
  }
  for (const TypeBound &B : Ctx.Types) {
    if (Status St = wfQual(B.QualLower, Ctx); !St)
      return St;
    if (B.SizeUpper)
      if (Status St = wfSize(B.SizeUpper, Ctx); !St)
        return St;
  }
  for (const Type &T : F.arrow().Params)
    if (Status St = wfType(T, Ctx); !St)
      return Error(St.error().message() + " (in parameter of " +
                   printFunType(F) + ")");
  for (const Type &T : F.arrow().Results)
    if (Status St = wfType(T, Ctx); !St)
      return Error(St.error().message() + " (in result of " +
                   printFunType(F) + ")");
  if (Memoizable)
    F.arena()->noteWfFun(&F);
  return Status::success();
}
