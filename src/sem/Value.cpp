//===- sem/Value.cpp - Runtime value helpers ------------------------------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sem/Value.h"

using namespace rw;
using namespace rw::sem;

uint64_t rw::sem::sizeOfValue(const Value &V) {
  switch (V.kind()) {
  case ValueKind::Unit:
  case ValueKind::Cap:
  case ValueKind::Own:
    return 0;
  case ValueKind::Num:
    return ir::numTypeBits(V.numType());
  case ValueKind::Tuple: {
    uint64_t Sum = 0;
    for (const Value &E : V.elems())
      Sum += sizeOfValue(E);
    return Sum;
  }
  case ValueKind::Ref:
  case ValueKind::Ptr:
  case ValueKind::Coderef:
    return 64;
  case ValueKind::Fold:
  case ValueKind::Mempack:
    return sizeOfValue(V.inner());
  }
  return 0;
}

std::string Value::str() const {
  switch (K) {
  case ValueKind::Unit:
    return "()";
  case ValueKind::Num:
    return std::string(ir::numTypeName(NT)) + ".const " +
           std::to_string(Bits);
  case ValueKind::Tuple: {
    std::string Out = "(";
    for (size_t I = 0; I < Elems->size(); ++I) {
      if (I)
        Out += " ";
      Out += (*Elems)[I].str();
    }
    return Out + ")";
  }
  case ValueKind::Ref:
    return "ref " + L.str();
  case ValueKind::Ptr:
    return "ptr " + L.str();
  case ValueKind::Cap:
    return "cap";
  case ValueKind::Own:
    return "own";
  case ValueKind::Fold:
    return "fold " + Inner->str();
  case ValueKind::Mempack:
    return "mempack " + L.str() + " " + Inner->str();
  case ValueKind::Coderef:
    return "coderef " + std::to_string(CR->InstIdx) + " " +
           std::to_string(CR->TableIdx);
  }
  return "<value>";
}
