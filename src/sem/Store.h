//===- sem/Store.h - Heap values, memories, instances, stores ---*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime store of Fig 4: a list of module instances plus the global
/// memory, which has two components — the manually-managed *linear* memory
/// and the garbage-collected *unrestricted* memory. Unlike Wasm, both
/// memories map locations to high-level structured heap values.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_SEM_STORE_H
#define RICHWASM_SEM_STORE_H

#include "ir/Module.h"
#include "sem/Value.h"

#include <cstdint>
#include <map>
#include <vector>

namespace rw::sem {

enum class HeapValueKind : uint8_t { Variant, Struct, Array, Pack };

/// A structured heap value hv (Fig 2): variant, struct, array, or an
/// existential package.
struct HeapValue {
  HeapValueKind K = HeapValueKind::Struct;
  /// Variant: the case tag.
  uint32_t Tag = 0;
  /// Struct fields / array elements / singleton payload for Variant and
  /// Pack (at index 0).
  std::vector<Value> Vals;
  /// Pack only: the witness pretype and the package's heap type.
  ir::PretypeRef Witness;
  ir::HeapTypeRef PackHT;

  static HeapValue makeStruct(std::vector<Value> Fields) {
    HeapValue H;
    H.K = HeapValueKind::Struct;
    H.Vals = std::move(Fields);
    return H;
  }
  static HeapValue makeVariant(uint32_t Tag, Value Payload) {
    HeapValue H;
    H.K = HeapValueKind::Variant;
    H.Tag = Tag;
    H.Vals.push_back(std::move(Payload));
    return H;
  }
  static HeapValue makeArray(std::vector<Value> Elems) {
    HeapValue H;
    H.K = HeapValueKind::Array;
    H.Vals = std::move(Elems);
    return H;
  }
  static HeapValue makePack(ir::PretypeRef Witness, Value Payload,
                            ir::HeapTypeRef HT) {
    HeapValue H;
    H.K = HeapValueKind::Pack;
    H.Witness = std::move(Witness);
    H.PackHT = std::move(HT);
    H.Vals.push_back(std::move(Payload));
    return H;
  }
};

/// One allocated cell: the heap value plus the slot size it was allocated
/// with (strong updates may change the value but never outgrow the slot).
struct Cell {
  HeapValue HV;
  uint64_t SlotBits = 0;
  /// GC mark bit (unrestricted memory only).
  bool Marked = false;
};

/// The two-component global memory. Locations are abstract identifiers
/// (allocation order), matching the paper's map-based memories.
struct Memory {
  std::map<uint64_t, Cell> Lin;
  std::map<uint64_t, Cell> Unr;
  uint64_t NextLin = 1;
  uint64_t NextUnr = 1;

  // Statistics for the C2/C3 experiments.
  uint64_t AllocCountLin = 0, AllocCountUnr = 0;
  uint64_t FreeCountLin = 0;
  uint64_t CollectedUnr = 0;
  uint64_t FinalizedLin = 0;
  uint64_t GcRuns = 0;

  ir::Loc allocate(ir::MemKind M, HeapValue HV, uint64_t SlotBits) {
    if (M == ir::MemKind::Lin) {
      uint64_t A = NextLin++;
      Lin.emplace(A, Cell{std::move(HV), SlotBits, false});
      ++AllocCountLin;
      return ir::Loc::concrete(ir::MemKind::Lin, A);
    }
    uint64_t A = NextUnr++;
    Unr.emplace(A, Cell{std::move(HV), SlotBits, false});
    ++AllocCountUnr;
    return ir::Loc::concrete(ir::MemKind::Unr, A);
  }

  Cell *lookup(const ir::Loc &L) {
    assert(L.isConcrete() && "looking up a location variable");
    auto &Map = L.mem() == ir::MemKind::Lin ? Lin : Unr;
    auto It = Map.find(L.addr());
    return It == Map.end() ? nullptr : &It->second;
  }
  const Cell *lookup(const ir::Loc &L) const {
    return const_cast<Memory *>(this)->lookup(L);
  }

  /// Deallocates a linear cell; returns false on double free / bad loc.
  bool freeLin(const ir::Loc &L) {
    if (!L.isConcrete() || L.mem() != ir::MemKind::Lin)
      return false;
    if (Lin.erase(L.addr()) == 0)
      return false;
    ++FreeCountLin;
    return true;
  }
};

/// A resolved function reference: instance index + function index within
/// that instance's module (the paper's closure {inst i, code f}).
struct Closure {
  uint32_t InstIdx = 0;
  uint32_t FuncIdx = 0;
};

/// A module instance: resolved functions (imports point into their
/// providers), global values, and the indirect-call table.
struct Instance {
  const ir::Module *Mod = nullptr;
  std::vector<Closure> Funcs;
  std::vector<Value> Globals;
  std::vector<Closure> Table;
};

/// The store s = {inst inst*, mem mem}.
struct Store {
  std::vector<Instance> Insts;
  Memory Mem;
};

} // namespace rw::sem

#endif // RICHWASM_SEM_STORE_H
