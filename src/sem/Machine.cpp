//===- sem/Machine.cpp - Small-step reduction (Fig 4) ---------------------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "sem/Machine.h"

#include "ir/TypeOps.h"
#include "support/NumericOps.h"

#include <cassert>
#include <set>

using namespace rw;
using namespace rw::sem;
using ir::InstKind;
using ir::MemKind;

CodeSeq rw::sem::toCode(const ir::InstVec &Insts) {
  CodeSeq Seq;
  Seq.reserve(Insts.size());
  for (const ir::InstRef &I : Insts)
    Seq.push_back(Code::inst(I));
  return Seq;
}

/// Which memory a (runtime-concrete) qualifier allocates into.
static MemKind memForQual(ir::Qual Q) {
  assert(Q.isConst() && "allocation qualifier must be concrete at runtime");
  return Q.isLinConst() ? MemKind::Lin : MemKind::Unr;
}

//===----------------------------------------------------------------------===//
// Machine driver
//===----------------------------------------------------------------------===//

void Machine::setupInvoke(uint32_t InstIdx, uint32_t FuncIdx,
                          std::vector<ir::Index> TypeArgs,
                          std::vector<Value> Args) {
  C = Config();
  C.InstIdx = InstIdx;
  for (Value &V : Args)
    C.Program.push_back(Code::val(std::move(V)));
  assert(InstIdx < S.Insts.size() && "invoke: bad instance index");
  assert(FuncIdx < S.Insts[InstIdx].Funcs.size() && "invoke: bad function");
  C.Program.push_back(
      Code::callAdm(S.Insts[InstIdx].Funcs[FuncIdx], std::move(TypeArgs)));
}

StepStatus Machine::step() {
  // Types minted during reduction (address-specialized unpack bodies,
  // call instantiations, witnesses) intern into the machine's own arena
  // and die with it, instead of accreting in the process-wide one.
  ir::ArenaScope Scope(*RuntimeTypes);
  LocalEnv Env{&C.Locals, &C.SlotBits, C.InstIdx};
  StepOut Out = stepSeq(C.Program, Env);
  switch (Out.R) {
  case SeqResult::Stepped:
    ++Steps;
    maybeAutoCollect();
    return StepStatus::Stepped;
  case SeqResult::AllValues:
    return StepStatus::Done;
  case SeqResult::Trapped:
    C.Program.clear();
    C.Program.push_back(Code::trap());
    ++Steps;
    return StepStatus::Trapped;
  case SeqResult::Returning: {
    // A return at the top level: the configuration finishes with the
    // returned values.
    C.Program.clear();
    for (Value &V : Out.Vals)
      C.Program.push_back(Code::val(std::move(V)));
    ++Steps;
    return StepStatus::Stepped;
  }
  case SeqResult::Breaking:
  case SeqResult::Stuck:
    return StepStatus::Stuck;
  }
  return StepStatus::Stuck;
}

Expected<std::vector<Value>> Machine::run(uint64_t MaxSteps) {
  for (uint64_t I = 0; I < MaxSteps; ++I) {
    switch (step()) {
    case StepStatus::Stepped:
      continue;
    case StepStatus::Done: {
      std::vector<Value> Out;
      for (const Code &Cd : C.Program) {
        assert(Cd.K == CodeKind::Val && "done program contains non-values");
        Out.push_back(Cd.V);
      }
      return Out;
    }
    case StepStatus::Trapped:
      return Error("trap: execution trapped");
    case StepStatus::Stuck:
      return Error("stuck: no reduction rule applies (unchecked code?)");
    }
  }
  return Error("fuel exhausted: exceeded step budget");
}

Expected<std::vector<Value>> Machine::invoke(uint32_t InstIdx,
                                             uint32_t FuncIdx,
                                             std::vector<ir::Index> TypeArgs,
                                             std::vector<Value> Args,
                                             uint64_t MaxSteps) {
  setupInvoke(InstIdx, FuncIdx, std::move(TypeArgs), std::move(Args));
  return run(MaxSteps);
}

void Machine::maybeAutoCollect() {
  if (GcThreshold && S.Mem.Unr.size() > GcThreshold)
    collect();
}

//===----------------------------------------------------------------------===//
// Sequence stepping
//===----------------------------------------------------------------------===//

Machine::StepOut Machine::reduceAt(CodeSeq &Seq, size_t K, size_t NPop,
                                   std::vector<Code> Repl) {
  assert(K >= NPop && "reduceAt: not enough operands");
  Seq.erase(Seq.begin() + static_cast<ptrdiff_t>(K - NPop),
            Seq.begin() + static_cast<ptrdiff_t>(K + 1));
  Seq.insert(Seq.begin() + static_cast<ptrdiff_t>(K - NPop),
             std::make_move_iterator(Repl.begin()),
             std::make_move_iterator(Repl.end()));
  return {SeqResult::Stepped, 0, {}};
}

Machine::StepOut Machine::stepSeq(CodeSeq &Seq, const LocalEnv &Env) {
  // Locate the first non-value element; everything before it is the local
  // operand stack.
  size_t K = 0;
  while (K < Seq.size() && Seq[K].K == CodeKind::Val)
    ++K;
  if (K == Seq.size())
    return {SeqResult::AllValues, 0, {}};

  Code &Cur = Seq[K];
  switch (Cur.K) {
  case CodeKind::Val:
    break;
  case CodeKind::Trap:
    return {SeqResult::Trapped, 0, {}};

  case CodeKind::Label: {
    LabelData &L = *Cur.Lbl;
    StepOut Inner = stepSeq(L.Body, Env);
    switch (Inner.R) {
    case SeqResult::Stepped:
    case SeqResult::Trapped:
    case SeqResult::Returning:
    case SeqResult::Stuck:
      return Inner;
    case SeqResult::AllValues: {
      // label_n {cont} v* end ↪ v*.
      std::vector<Code> Repl = std::move(L.Body);
      return reduceAt(Seq, K, 0, std::move(Repl));
    }
    case SeqResult::Breaking: {
      if (Inner.BreakDepth > 0)
        return {SeqResult::Breaking, Inner.BreakDepth - 1,
                std::move(Inner.Vals)};
      // br to this label: take the top Arity values; loops re-enter.
      if (Inner.Vals.size() < L.Arity)
        return {SeqResult::Stuck, 0, {}};
      std::vector<Code> Repl;
      for (size_t I = Inner.Vals.size() - L.Arity; I < Inner.Vals.size(); ++I)
        Repl.push_back(Code::val(std::move(Inner.Vals[I])));
      if (L.LoopCont)
        Repl.push_back(Code::inst(L.LoopCont));
      return reduceAt(Seq, K, 0, std::move(Repl));
    }
    }
    return {SeqResult::Stuck, 0, {}};
  }

  case CodeKind::Frame: {
    FrameData &F = *Cur.Frm;
    LocalEnv Inner{&F.Locals, &F.SlotBits, F.InstIdx};
    StepOut Out = stepSeq(F.Body, Inner);
    switch (Out.R) {
    case SeqResult::Stepped:
    case SeqResult::Trapped:
    case SeqResult::Stuck:
      return Out;
    case SeqResult::AllValues: {
      if (F.Body.size() != F.Arity)
        return {SeqResult::Stuck, 0, {}};
      std::vector<Code> Repl = std::move(F.Body);
      return reduceAt(Seq, K, 0, std::move(Repl));
    }
    case SeqResult::Returning: {
      if (Out.Vals.size() < F.Arity)
        return {SeqResult::Stuck, 0, {}};
      std::vector<Code> Repl;
      for (size_t I = Out.Vals.size() - F.Arity; I < Out.Vals.size(); ++I)
        Repl.push_back(Code::val(std::move(Out.Vals[I])));
      return reduceAt(Seq, K, 0, std::move(Repl));
    }
    case SeqResult::Breaking:
      return {SeqResult::Stuck, 0, {}}; // br cannot cross a frame.
    }
    return {SeqResult::Stuck, 0, {}};
  }

  case CodeKind::Malloc: {
    MallocData &M = *Cur.Mal;
    ir::Loc L = S.Mem.allocate(M.M, std::move(M.HV), M.SizeBits);
    return reduceAt(Seq, K, 0,
                    {Code::val(Value::mempack(L, Value::ref(L)))});
  }

  case CodeKind::FreeAdm: {
    if (K < 1 || Seq[K - 1].V.kind() != ValueKind::Ref)
      return {SeqResult::Stuck, 0, {}};
    if (!S.Mem.freeLin(Seq[K - 1].V.loc()))
      return {SeqResult::Trapped, 0, {}}; // double free / bad location
    return reduceAt(Seq, K, 1, {});
  }

  case CodeKind::CallAdm: {
    const CallData &CD = *Cur.Call;
    assert(CD.Cl.InstIdx < S.Insts.size() && "call: bad instance");
    const Instance &Inst = S.Insts[CD.Cl.InstIdx];
    assert(CD.Cl.FuncIdx < Inst.Mod->Funcs.size() && "call: bad function");
    const ir::Function &F = Inst.Mod->Funcs[CD.Cl.FuncIdx];
    assert(!F.isImport() && "call: closure resolves to an import");
    assert(F.Ty->quants().size() == CD.TypeArgs.size() &&
           "call: instantiation arity mismatch");

    ir::Subst Sub = ir::Subst::fromIndices(CD.TypeArgs);
    size_t NArgs = F.Ty->arrow().Params.size();
    if (K < NArgs)
      return {SeqResult::Stuck, 0, {}};

    std::vector<Value> Locals;
    std::vector<uint64_t> Slots;
    Locals.reserve(NArgs + F.Locals.size());
    for (size_t I = 0; I < NArgs; ++I) {
      const Value &V = Seq[K - NArgs + I].V;
      Locals.push_back(V);
      ir::SizeRef PSz =
          ir::sizeOfType(Sub.rewrite(F.Ty->arrow().Params[I]), {});
      Slots.push_back(ir::closedSizeBits(PSz));
    }
    for (const ir::SizeRef &Sz : F.Locals) {
      Locals.push_back(Value::unit());
      Slots.push_back(ir::closedSizeBits(Sub.rewrite(Sz)));
    }
    CodeSeq Body = toCode(ir::rewriteInsts(F.Body, Sub));
    uint32_t Arity = static_cast<uint32_t>(F.Ty->arrow().Results.size());
    return reduceAt(Seq, K, NArgs,
                    {Code::frame(Arity, CD.Cl.InstIdx, std::move(Locals),
                                 std::move(Slots), std::move(Body))});
  }

  case CodeKind::Inst:
    return execInst(Seq, K, Env);
  }
  return {SeqResult::Stuck, 0, {}};
}

//===----------------------------------------------------------------------===//
// Instruction execution
//===----------------------------------------------------------------------===//

/// The value at stack offset \p Back below position \p K (Back = 0 is the
/// top of stack), or nullptr if out of range.
static const Value *peek(const CodeSeq &Seq, size_t K, size_t Back) {
  if (K < Back + 1)
    return nullptr;
  const Code &Cd = Seq[K - 1 - Back];
  return Cd.K == CodeKind::Val ? &Cd.V : nullptr;
}

/// Collects the entire value prefix Seq[0..K).
static std::vector<Value> takeStack(CodeSeq &Seq, size_t K) {
  std::vector<Value> Vals;
  Vals.reserve(K);
  for (size_t I = 0; I < K; ++I)
    Vals.push_back(std::move(Seq[I].V));
  return Vals;
}

Machine::StepOut Machine::execInst(CodeSeq &Seq, size_t K,
                                   const LocalEnv &Env) {
  const ir::Inst &I = *Seq[K].I;
  const StepOut Stuck{SeqResult::Stuck, 0, {}};
  const StepOut Trapped{SeqResult::Trapped, 0, {}};

  switch (I.kind()) {
  case InstKind::NumConst: {
    const auto *Cst = cast<ir::NumConstInst>(&I);
    return reduceAt(Seq, K, 0,
                    {Code::val(Value::num(Cst->numType(), Cst->bits()))});
  }
  case InstKind::NumUnop:
  case InstKind::NumBinop:
  case InstKind::NumTestop:
  case InstKind::NumRelop:
  case InstKind::NumCvt:
    return execNumeric(Seq, K, I);

  case InstKind::Unreachable:
    return Trapped;
  case InstKind::Nop:
    return reduceAt(Seq, K, 0, {});
  case InstKind::Drop: {
    if (!peek(Seq, K, 0))
      return Stuck;
    return reduceAt(Seq, K, 1, {});
  }
  case InstKind::Select: {
    const Value *Cond = peek(Seq, K, 0);
    const Value *V2 = peek(Seq, K, 1);
    const Value *V1 = peek(Seq, K, 2);
    if (!Cond || !V2 || !V1 || !Cond->isNum())
      return Stuck;
    Value Chosen = Cond->bits() != 0 ? *V1 : *V2;
    return reduceAt(Seq, K, 3, {Code::val(std::move(Chosen))});
  }

  case InstKind::Block: {
    const auto *B = cast<ir::BlockInst>(&I);
    size_t NP = B->arrow().Params.size();
    if (K < NP)
      return Stuck;
    CodeSeq Body;
    for (size_t J = 0; J < NP; ++J)
      Body.push_back(std::move(Seq[K - NP + J]));
    CodeSeq Rest = toCode(B->body());
    Body.insert(Body.end(), std::make_move_iterator(Rest.begin()),
                std::make_move_iterator(Rest.end()));
    uint32_t Arity = static_cast<uint32_t>(B->arrow().Results.size());
    return reduceAt(Seq, K, NP,
                    {Code::label(Arity, nullptr, std::move(Body))});
  }
  case InstKind::Loop: {
    const auto *L = cast<ir::LoopInst>(&I);
    size_t NP = L->arrow().Params.size();
    if (K < NP)
      return Stuck;
    CodeSeq Body;
    for (size_t J = 0; J < NP; ++J)
      Body.push_back(std::move(Seq[K - NP + J]));
    CodeSeq Rest = toCode(L->body());
    Body.insert(Body.end(), std::make_move_iterator(Rest.begin()),
                std::make_move_iterator(Rest.end()));
    // A br to a loop label re-executes the loop with |params| values.
    uint32_t Arity = static_cast<uint32_t>(NP);
    return reduceAt(Seq, K, NP,
                    {Code::label(Arity, Seq[K].I, std::move(Body))});
  }
  case InstKind::If: {
    const auto *F = cast<ir::IfInst>(&I);
    const Value *Cond = peek(Seq, K, 0);
    if (!Cond || !Cond->isNum())
      return Stuck;
    size_t NP = F->arrow().Params.size();
    if (K < NP + 1)
      return Stuck;
    bool Taken = Cond->bits() != 0;
    CodeSeq Body;
    for (size_t J = 0; J < NP; ++J)
      Body.push_back(std::move(Seq[K - 1 - NP + J]));
    CodeSeq Rest = toCode(Taken ? F->thenBody() : F->elseBody());
    Body.insert(Body.end(), std::make_move_iterator(Rest.begin()),
                std::make_move_iterator(Rest.end()));
    uint32_t Arity = static_cast<uint32_t>(F->arrow().Results.size());
    return reduceAt(Seq, K, NP + 1,
                    {Code::label(Arity, nullptr, std::move(Body))});
  }

  case InstKind::Br: {
    std::vector<Value> Vals = takeStack(Seq, K);
    return {SeqResult::Breaking, cast<ir::BrInst>(&I)->depth(),
            std::move(Vals)};
  }
  case InstKind::BrIf: {
    const Value *Cond = peek(Seq, K, 0);
    if (!Cond || !Cond->isNum())
      return Stuck;
    bool Taken = Cond->bits() != 0;
    uint32_t Depth = cast<ir::BrInst>(&I)->depth();
    if (!Taken)
      return reduceAt(Seq, K, 1, {});
    // Consume the condition, then break with the remaining stack.
    Seq.erase(Seq.begin() + static_cast<ptrdiff_t>(K - 1));
    std::vector<Value> Vals = takeStack(Seq, K - 1);
    return {SeqResult::Breaking, Depth, std::move(Vals)};
  }
  case InstKind::BrTable: {
    const auto *B = cast<ir::BrTableInst>(&I);
    const Value *Idx = peek(Seq, K, 0);
    if (!Idx || !Idx->isNum())
      return Stuck;
    uint32_t J = Idx->asU32();
    uint32_t Depth = J < B->depths().size() ? B->depths()[J]
                                            : B->defaultDepth();
    Seq.erase(Seq.begin() + static_cast<ptrdiff_t>(K - 1));
    std::vector<Value> Vals = takeStack(Seq, K - 1);
    return {SeqResult::Breaking, Depth, std::move(Vals)};
  }
  case InstKind::Return: {
    std::vector<Value> Vals = takeStack(Seq, K);
    return {SeqResult::Returning, 0, std::move(Vals)};
  }

  case InstKind::GetLocal: {
    const auto *G = cast<ir::GetLocalInst>(&I);
    if (G->index() >= Env.Locals->size())
      return Stuck;
    Value V = (*Env.Locals)[G->index()];
    assert(G->qual().isConst() && "runtime get_local with abstract qualifier");
    if (G->qual().isLinConst())
      (*Env.Locals)[G->index()] = Value::unit();
    return reduceAt(Seq, K, 0, {Code::val(std::move(V))});
  }
  case InstKind::SetLocal: {
    const auto *SL = cast<ir::VarIdxInst>(&I);
    const Value *V = peek(Seq, K, 0);
    if (!V || SL->index() >= Env.Locals->size())
      return Stuck;
    (*Env.Locals)[SL->index()] = *V;
    return reduceAt(Seq, K, 1, {});
  }
  case InstKind::TeeLocal: {
    const auto *TL = cast<ir::VarIdxInst>(&I);
    const Value *V = peek(Seq, K, 0);
    if (!V || TL->index() >= Env.Locals->size())
      return Stuck;
    (*Env.Locals)[TL->index()] = *V;
    return reduceAt(Seq, K, 0, {});
  }
  case InstKind::GetGlobal: {
    const auto *G = cast<ir::VarIdxInst>(&I);
    Instance &Inst = S.Insts[Env.InstIdx];
    if (G->index() >= Inst.Globals.size())
      return Stuck;
    return reduceAt(Seq, K, 0, {Code::val(Inst.Globals[G->index()])});
  }
  case InstKind::SetGlobal: {
    const auto *G = cast<ir::VarIdxInst>(&I);
    const Value *V = peek(Seq, K, 0);
    Instance &Inst = S.Insts[Env.InstIdx];
    if (!V || G->index() >= Inst.Globals.size())
      return Stuck;
    Inst.Globals[G->index()] = *V;
    return reduceAt(Seq, K, 1, {});
  }
  case InstKind::Qualify:
    return reduceAt(Seq, K, 0, {});

  case InstKind::CoderefI: {
    const auto *CR = cast<ir::CoderefInst>(&I);
    return reduceAt(Seq, K, 0,
                    {Code::val(Value::coderef(Env.InstIdx, CR->funcIndex()))});
  }
  case InstKind::InstIdx: {
    const auto *II = cast<ir::InstIdxInst>(&I);
    const Value *V = peek(Seq, K, 0);
    if (!V || V->kind() != ValueKind::Coderef)
      return Stuck;
    CoderefVal CR = V->coderefVal();
    for (const ir::Index &Ix : II->args())
      CR.TypeArgs.push_back(Ix);
    return reduceAt(
        Seq, K, 1,
        {Code::val(Value::coderef(CR.InstIdx, CR.TableIdx, CR.TypeArgs))});
  }
  case InstKind::CallIndirect: {
    const Value *V = peek(Seq, K, 0);
    if (!V || V->kind() != ValueKind::Coderef)
      return Stuck;
    const CoderefVal &CR = V->coderefVal();
    if (CR.InstIdx >= S.Insts.size() ||
        CR.TableIdx >= S.Insts[CR.InstIdx].Table.size())
      return Trapped;
    Closure Cl = S.Insts[CR.InstIdx].Table[CR.TableIdx];
    std::vector<ir::Index> Args = CR.TypeArgs;
    return reduceAt(Seq, K, 1, {Code::callAdm(Cl, std::move(Args))});
  }
  case InstKind::Call: {
    const auto *CI = cast<ir::CallInst>(&I);
    Instance &Inst = S.Insts[Env.InstIdx];
    if (CI->funcIndex() >= Inst.Funcs.size())
      return Stuck;
    return reduceAt(Seq, K, 0,
                    {Code::callAdm(Inst.Funcs[CI->funcIndex()], CI->args())});
  }

  case InstKind::RecFold: {
    const Value *V = peek(Seq, K, 0);
    if (!V)
      return Stuck;
    return reduceAt(Seq, K, 1, {Code::val(Value::fold(*V))});
  }
  case InstKind::RecUnfold: {
    const Value *V = peek(Seq, K, 0);
    if (!V || V->kind() != ValueKind::Fold)
      return Stuck;
    return reduceAt(Seq, K, 1, {Code::val(V->inner())});
  }
  case InstKind::MemPack: {
    const auto *MP = cast<ir::MemPackInst>(&I);
    const Value *V = peek(Seq, K, 0);
    if (!V)
      return Stuck;
    assert(MP->loc().isConcrete() && "runtime mem.pack with location var");
    return reduceAt(Seq, K, 1, {Code::val(Value::mempack(MP->loc(), *V))});
  }
  case InstKind::MemUnpack: {
    const auto *MU = cast<ir::MemUnpackInst>(&I);
    const Value *Pack = peek(Seq, K, 0);
    if (!Pack || Pack->kind() != ValueKind::Mempack)
      return Stuck;
    size_t NP = MU->arrow().Params.size();
    if (K < NP + 1)
      return Stuck;
    ir::Subst Sub = ir::Subst::oneLoc(Pack->loc());
    CodeSeq Body;
    for (size_t J = 0; J < NP; ++J)
      Body.push_back(std::move(Seq[K - 1 - NP + J]));
    Body.push_back(Code::val(Pack->inner()));
    CodeSeq Rest = toCode(ir::rewriteInsts(MU->body(), Sub));
    Body.insert(Body.end(), std::make_move_iterator(Rest.begin()),
                std::make_move_iterator(Rest.end()));
    uint32_t Arity = static_cast<uint32_t>(MU->arrow().Results.size());
    return reduceAt(Seq, K, NP + 1,
                    {Code::label(Arity, nullptr, std::move(Body))});
  }

  case InstKind::Group: {
    const auto *G = cast<ir::GroupInst>(&I);
    if (K < G->count())
      return Stuck;
    std::vector<Value> Elems;
    for (size_t J = 0; J < G->count(); ++J)
      Elems.push_back(std::move(Seq[K - G->count() + J].V));
    return reduceAt(Seq, K, G->count(),
                    {Code::val(Value::tuple(std::move(Elems)))});
  }
  case InstKind::Ungroup: {
    const Value *V = peek(Seq, K, 0);
    if (!V || V->kind() != ValueKind::Tuple)
      return Stuck;
    std::vector<Code> Repl;
    for (const Value &E : V->elems())
      Repl.push_back(Code::val(E));
    return reduceAt(Seq, K, 1, std::move(Repl));
  }
  case InstKind::CapSplit: {
    const Value *V = peek(Seq, K, 0);
    if (!V || V->kind() != ValueKind::Cap)
      return Stuck;
    return reduceAt(Seq, K, 1, {Code::val(Value::cap()), Code::val(Value::own())});
  }
  case InstKind::CapJoin: {
    const Value *Own = peek(Seq, K, 0);
    const Value *Cap = peek(Seq, K, 1);
    if (!Own || !Cap || Own->kind() != ValueKind::Own ||
        Cap->kind() != ValueKind::Cap)
      return Stuck;
    return reduceAt(Seq, K, 2, {Code::val(Value::cap())});
  }
  case InstKind::RefDemote: {
    const Value *V = peek(Seq, K, 0);
    if (!V || V->kind() != ValueKind::Ref)
      return Stuck;
    return reduceAt(Seq, K, 1, {Code::val(*V)});
  }
  case InstKind::RefSplit: {
    const Value *V = peek(Seq, K, 0);
    if (!V || V->kind() != ValueKind::Ref)
      return Stuck;
    ir::Loc L = V->loc();
    return reduceAt(Seq, K, 1,
                    {Code::val(Value::cap()), Code::val(Value::ptr(L))});
  }
  case InstKind::RefJoin: {
    const Value *Ptr = peek(Seq, K, 0);
    const Value *Cap = peek(Seq, K, 1);
    if (!Ptr || !Cap || Ptr->kind() != ValueKind::Ptr ||
        Cap->kind() != ValueKind::Cap)
      return Stuck;
    ir::Loc L = Ptr->loc();
    return reduceAt(Seq, K, 2, {Code::val(Value::ref(L))});
  }

  case InstKind::StructMalloc: {
    const auto *SM = cast<ir::StructMallocInst>(&I);
    size_t N = SM->sizes().size();
    if (K < N)
      return Stuck;
    std::vector<Value> Fields;
    uint64_t Total = 0;
    for (const ir::SizeRef &Sz : SM->sizes())
      Total += ir::closedSizeBits(Sz);
    for (size_t J = 0; J < N; ++J)
      Fields.push_back(std::move(Seq[K - N + J].V));
    return reduceAt(Seq, K, N,
                    {Code::malloc(Total, HeapValue::makeStruct(std::move(Fields)),
                                  memForQual(SM->qual()))});
  }
  case InstKind::StructFree:
    return reduceAt(Seq, K, 0, {Code::freeAdm()});
  case InstKind::StructGet: {
    const auto *SG = cast<ir::StructIdxInst>(&I);
    const Value *Ref = peek(Seq, K, 0);
    if (!Ref || Ref->kind() != ValueKind::Ref)
      return Stuck;
    Cell *Cl = S.Mem.lookup(Ref->loc());
    if (!Cl || Cl->HV.K != HeapValueKind::Struct ||
        SG->fieldIndex() >= Cl->HV.Vals.size())
      return Stuck;
    return reduceAt(Seq, K, 0, {Code::val(Cl->HV.Vals[SG->fieldIndex()])});
  }
  case InstKind::StructSet: {
    const auto *SS = cast<ir::StructIdxInst>(&I);
    const Value *V = peek(Seq, K, 0);
    const Value *Ref = peek(Seq, K, 1);
    if (!V || !Ref || Ref->kind() != ValueKind::Ref)
      return Stuck;
    Cell *Cl = S.Mem.lookup(Ref->loc());
    if (!Cl || Cl->HV.K != HeapValueKind::Struct ||
        SS->fieldIndex() >= Cl->HV.Vals.size())
      return Stuck;
    Cl->HV.Vals[SS->fieldIndex()] = *V;
    return reduceAt(Seq, K, 1, {});
  }
  case InstKind::StructSwap: {
    const auto *SW = cast<ir::StructIdxInst>(&I);
    const Value *V = peek(Seq, K, 0);
    const Value *Ref = peek(Seq, K, 1);
    if (!V || !Ref || Ref->kind() != ValueKind::Ref)
      return Stuck;
    Cell *Cl = S.Mem.lookup(Ref->loc());
    if (!Cl || Cl->HV.K != HeapValueKind::Struct ||
        SW->fieldIndex() >= Cl->HV.Vals.size())
      return Stuck;
    Value Old = Cl->HV.Vals[SW->fieldIndex()];
    Cl->HV.Vals[SW->fieldIndex()] = *V;
    return reduceAt(Seq, K, 1, {Code::val(std::move(Old))});
  }

  case InstKind::VariantMalloc: {
    const auto *VM = cast<ir::VariantMallocInst>(&I);
    const Value *V = peek(Seq, K, 0);
    if (!V)
      return Stuck;
    uint64_t Bits = 32 + sizeOfValue(*V);
    return reduceAt(Seq, K, 1,
                    {Code::malloc(Bits, HeapValue::makeVariant(VM->tag(), *V),
                                  memForQual(VM->qual()))});
  }
  case InstKind::VariantCase: {
    const auto *VC = cast<ir::VariantCaseInst>(&I);
    size_t NP = VC->arrow().Params.size();
    const Value *Ref = peek(Seq, K, NP);
    if (!Ref || Ref->kind() != ValueKind::Ref)
      return Stuck;
    Cell *Cl = S.Mem.lookup(Ref->loc());
    if (!Cl || Cl->HV.K != HeapValueKind::Variant ||
        Cl->HV.Tag >= VC->arms().size())
      return Stuck;
    Value Payload = Cl->HV.Vals[0];
    uint32_t Tag = Cl->HV.Tag;
    uint32_t Arity = static_cast<uint32_t>(VC->arrow().Results.size());

    CodeSeq Body;
    for (size_t J = 0; J < NP; ++J)
      Body.push_back(std::move(Seq[K - NP + J]));
    Body.push_back(Code::val(std::move(Payload)));
    CodeSeq Arm = toCode(VC->arms()[Tag]);
    Body.insert(Body.end(), std::make_move_iterator(Arm.begin()),
                std::make_move_iterator(Arm.end()));

    assert(VC->qual().isConst() && "runtime case with abstract qualifier");
    if (VC->qual().isLinConst()) {
      // Empty the cell to preserve linearity, then free the reference.
      Cl->HV = HeapValue::makeArray({});
      Value RefV = std::move(Seq[K - NP - 1].V);
      std::vector<Code> Repl;
      Repl.push_back(Code::val(std::move(RefV)));
      Repl.push_back(Code::freeAdm());
      Repl.push_back(Code::label(Arity, nullptr, std::move(Body)));
      return reduceAt(Seq, K, NP + 1, std::move(Repl));
    }
    // Unrestricted: the reference stays on the stack beneath the block.
    return reduceAt(Seq, K, NP,
                    {Code::label(Arity, nullptr, std::move(Body))});
  }

  case InstKind::ArrayMalloc: {
    const auto *AM = cast<ir::ArrayMallocInst>(&I);
    const Value *Count = peek(Seq, K, 0);
    const Value *Init = peek(Seq, K, 1);
    if (!Count || !Init || !Count->isNum())
      return Stuck;
    uint64_t N = Count->asU32();
    uint64_t Bits = N * sizeOfValue(*Init);
    std::vector<Value> Elems(N, *Init);
    return reduceAt(Seq, K, 2,
                    {Code::malloc(Bits, HeapValue::makeArray(std::move(Elems)),
                                  memForQual(AM->qual()))});
  }
  case InstKind::ArrayGet: {
    const Value *Idx = peek(Seq, K, 0);
    const Value *Ref = peek(Seq, K, 1);
    if (!Idx || !Ref || !Idx->isNum() || Ref->kind() != ValueKind::Ref)
      return Stuck;
    Cell *Cl = S.Mem.lookup(Ref->loc());
    if (!Cl || Cl->HV.K != HeapValueKind::Array)
      return Stuck;
    uint64_t J = Idx->asU32();
    if (J >= Cl->HV.Vals.size())
      return Trapped;
    return reduceAt(Seq, K, 1, {Code::val(Cl->HV.Vals[J])});
  }
  case InstKind::ArraySet: {
    const Value *V = peek(Seq, K, 0);
    const Value *Idx = peek(Seq, K, 1);
    const Value *Ref = peek(Seq, K, 2);
    if (!V || !Idx || !Ref || !Idx->isNum() || Ref->kind() != ValueKind::Ref)
      return Stuck;
    Cell *Cl = S.Mem.lookup(Ref->loc());
    if (!Cl || Cl->HV.K != HeapValueKind::Array)
      return Stuck;
    uint64_t J = Idx->asU32();
    if (J >= Cl->HV.Vals.size())
      return Trapped;
    Cl->HV.Vals[J] = *V;
    return reduceAt(Seq, K, 2, {});
  }
  case InstKind::ArrayFree:
    return reduceAt(Seq, K, 0, {Code::freeAdm()});

  case InstKind::ExistPack: {
    const auto *EP = cast<ir::ExistPackInst>(&I);
    const Value *V = peek(Seq, K, 0);
    if (!V)
      return Stuck;
    uint64_t Bits = 64 + sizeOfValue(*V);
    return reduceAt(
        Seq, K, 1,
        {Code::malloc(Bits,
                      HeapValue::makePack(EP->witness(), *V, EP->heapType()),
                      memForQual(EP->qual()))});
  }
  case InstKind::ExistUnpack: {
    const auto *EU = cast<ir::ExistUnpackInst>(&I);
    size_t NP = EU->arrow().Params.size();
    const Value *Ref = peek(Seq, K, NP);
    if (!Ref || Ref->kind() != ValueKind::Ref)
      return Stuck;
    Cell *Cl = S.Mem.lookup(Ref->loc());
    if (!Cl || Cl->HV.K != HeapValueKind::Pack)
      return Stuck;
    Value Payload = Cl->HV.Vals[0];
    ir::PretypeRef Witness = Cl->HV.Witness;
    uint32_t Arity = static_cast<uint32_t>(EU->arrow().Results.size());

    ir::Subst Sub = ir::Subst::onePretype(Witness);
    CodeSeq Body;
    for (size_t J = 0; J < NP; ++J)
      Body.push_back(std::move(Seq[K - NP + J]));
    Body.push_back(Code::val(std::move(Payload)));
    CodeSeq Rest = toCode(ir::rewriteInsts(EU->body(), Sub));
    Body.insert(Body.end(), std::make_move_iterator(Rest.begin()),
                std::make_move_iterator(Rest.end()));

    assert(EU->qual().isConst() && "runtime unpack with abstract qualifier");
    if (EU->qual().isLinConst()) {
      Cl->HV = HeapValue::makeArray({});
      Value RefV = std::move(Seq[K - NP - 1].V);
      std::vector<Code> Repl;
      Repl.push_back(Code::val(std::move(RefV)));
      Repl.push_back(Code::freeAdm());
      Repl.push_back(Code::label(Arity, nullptr, std::move(Body)));
      return reduceAt(Seq, K, NP + 1, std::move(Repl));
    }
    return reduceAt(Seq, K, NP,
                    {Code::label(Arity, nullptr, std::move(Body))});
  }
  }
  return Stuck;
}

//===----------------------------------------------------------------------===//
// Numeric execution
//===----------------------------------------------------------------------===//

Machine::StepOut Machine::execNumeric(CodeSeq &Seq, size_t K,
                                      const ir::Inst &I) {
  const StepOut Stuck{SeqResult::Stuck, 0, {}};
  const StepOut Trapped{SeqResult::Trapped, 0, {}};
  using namespace rw::num;

  switch (I.kind()) {
  case InstKind::NumUnop: {
    const auto *U = cast<ir::NumUnopInst>(&I);
    const Value *A = peek(Seq, K, 0);
    if (!A || !A->isNum())
      return Stuck;
    ir::NumType NT = U->numType();
    bool Is64 = ir::numTypeBits(NT) == 64;
    uint64_t R = 0;
    if (ir::isIntType(NT)) {
      switch (U->op()) {
      case ir::UnopKind::Clz:
        R = intClz(A->bits(), Is64);
        break;
      case ir::UnopKind::Ctz:
        R = intCtz(A->bits(), Is64);
        break;
      case ir::UnopKind::Popcnt:
        R = intPopcnt(A->bits(), Is64);
        break;
      default:
        return Stuck;
      }
    } else {
      FloatUnop Op = FloatUnop::Abs;
      switch (U->op()) {
      case ir::UnopKind::Abs:
        Op = FloatUnop::Abs;
        break;
      case ir::UnopKind::Neg:
        Op = FloatUnop::Neg;
        break;
      case ir::UnopKind::Sqrt:
        Op = FloatUnop::Sqrt;
        break;
      case ir::UnopKind::Ceil:
        Op = FloatUnop::Ceil;
        break;
      case ir::UnopKind::Floor:
        Op = FloatUnop::Floor;
        break;
      case ir::UnopKind::Trunc:
        Op = FloatUnop::Trunc;
        break;
      case ir::UnopKind::Nearest:
        Op = FloatUnop::Nearest;
        break;
      default:
        return Stuck;
      }
      R = evalFloatUnop(Op, A->bits(), Is64);
    }
    return reduceAt(Seq, K, 1, {Code::val(Value::num(NT, R))});
  }

  case InstKind::NumBinop: {
    const auto *B = cast<ir::NumBinopInst>(&I);
    const Value *Y = peek(Seq, K, 0);
    const Value *X = peek(Seq, K, 1);
    if (!X || !Y || !X->isNum() || !Y->isNum())
      return Stuck;
    ir::NumType NT = B->numType();
    bool Is64 = ir::numTypeBits(NT) == 64;
    uint64_t R;
    if (ir::isIntType(NT)) {
      IntBinop Op = IntBinop::Add;
      switch (B->op()) {
      case ir::BinopKind::Add:
        Op = IntBinop::Add;
        break;
      case ir::BinopKind::Sub:
        Op = IntBinop::Sub;
        break;
      case ir::BinopKind::Mul:
        Op = IntBinop::Mul;
        break;
      case ir::BinopKind::Div:
        Op = IntBinop::Div;
        break;
      case ir::BinopKind::Rem:
        Op = IntBinop::Rem;
        break;
      case ir::BinopKind::And:
        Op = IntBinop::And;
        break;
      case ir::BinopKind::Or:
        Op = IntBinop::Or;
        break;
      case ir::BinopKind::Xor:
        Op = IntBinop::Xor;
        break;
      case ir::BinopKind::Shl:
        Op = IntBinop::Shl;
        break;
      case ir::BinopKind::Shr:
        Op = IntBinop::Shr;
        break;
      case ir::BinopKind::Rotl:
        Op = IntBinop::Rotl;
        break;
      case ir::BinopKind::Rotr:
        Op = IntBinop::Rotr;
        break;
      default:
        return Stuck;
      }
      std::optional<uint64_t> Res =
          evalIntBinop(Op, X->bits(), Y->bits(), Is64, ir::isSignedType(NT));
      if (!Res)
        return Trapped;
      R = *Res;
    } else {
      FloatBinop Op = FloatBinop::Add;
      switch (B->op()) {
      case ir::BinopKind::Add:
        Op = FloatBinop::Add;
        break;
      case ir::BinopKind::Sub:
        Op = FloatBinop::Sub;
        break;
      case ir::BinopKind::Mul:
        Op = FloatBinop::Mul;
        break;
      case ir::BinopKind::Div:
        Op = FloatBinop::Div;
        break;
      case ir::BinopKind::Min:
        Op = FloatBinop::Min;
        break;
      case ir::BinopKind::Max:
        Op = FloatBinop::Max;
        break;
      case ir::BinopKind::Copysign:
        Op = FloatBinop::Copysign;
        break;
      default:
        return Stuck;
      }
      R = evalFloatBinop(Op, X->bits(), Y->bits(), Is64);
    }
    return reduceAt(Seq, K, 2, {Code::val(Value::num(NT, R))});
  }

  case InstKind::NumTestop: {
    const auto *T = cast<ir::NumTestopInst>(&I);
    const Value *A = peek(Seq, K, 0);
    if (!A || !A->isNum())
      return Stuck;
    bool Is64 = ir::numTypeBits(T->numType()) == 64;
    uint64_t R = wrap(A->bits(), Is64) == 0 ? 1 : 0;
    return reduceAt(Seq, K, 1, {Code::val(Value::num(ir::NumType::I32, R))});
  }

  case InstKind::NumRelop: {
    const auto *Rl = cast<ir::NumRelopInst>(&I);
    const Value *Y = peek(Seq, K, 0);
    const Value *X = peek(Seq, K, 1);
    if (!X || !Y || !X->isNum() || !Y->isNum())
      return Stuck;
    ir::NumType NT = Rl->numType();
    bool Is64 = ir::numTypeBits(NT) == 64;
    uint64_t R;
    if (ir::isIntType(NT)) {
      IntRelop Op = IntRelop::Eq;
      switch (Rl->op()) {
      case ir::RelopKind::Eq:
        Op = IntRelop::Eq;
        break;
      case ir::RelopKind::Ne:
        Op = IntRelop::Ne;
        break;
      case ir::RelopKind::Lt:
        Op = IntRelop::Lt;
        break;
      case ir::RelopKind::Gt:
        Op = IntRelop::Gt;
        break;
      case ir::RelopKind::Le:
        Op = IntRelop::Le;
        break;
      case ir::RelopKind::Ge:
        Op = IntRelop::Ge;
        break;
      }
      R = evalIntRelop(Op, X->bits(), Y->bits(), Is64, ir::isSignedType(NT));
    } else {
      FloatRelop Op = FloatRelop::Eq;
      switch (Rl->op()) {
      case ir::RelopKind::Eq:
        Op = FloatRelop::Eq;
        break;
      case ir::RelopKind::Ne:
        Op = FloatRelop::Ne;
        break;
      case ir::RelopKind::Lt:
        Op = FloatRelop::Lt;
        break;
      case ir::RelopKind::Gt:
        Op = FloatRelop::Gt;
        break;
      case ir::RelopKind::Le:
        Op = FloatRelop::Le;
        break;
      case ir::RelopKind::Ge:
        Op = FloatRelop::Ge;
        break;
      }
      R = evalFloatRelop(Op, X->bits(), Y->bits(), Is64);
    }
    return reduceAt(Seq, K, 2, {Code::val(Value::num(ir::NumType::I32, R))});
  }

  case InstKind::NumCvt: {
    const auto *Cv = cast<ir::NumCvtInst>(&I);
    const Value *A = peek(Seq, K, 0);
    if (!A || !A->isNum())
      return Stuck;
    ir::NumType From = Cv->from(), To = Cv->to();
    bool SrcInt = ir::isIntType(From), DstInt = ir::isIntType(To);
    bool Src64 = ir::numTypeBits(From) == 64;
    bool Dst64 = ir::numTypeBits(To) == 64;
    uint64_t Bits = A->bits();
    uint64_t R = 0;

    if (Cv->op() == ir::CvtopKind::Reinterpret) {
      R = wrap(Bits, Dst64);
      return reduceAt(Seq, K, 1, {Code::val(Value::num(To, R))});
    }

    if (SrcInt && DstInt) {
      if (Dst64 && !Src64) {
        R = ir::isSignedType(From)
                ? static_cast<uint64_t>(
                      static_cast<int64_t>(static_cast<int32_t>(Bits)))
                : (Bits & 0xffffffffull);
      } else {
        R = wrap(Bits, Dst64);
      }
    } else if (SrcInt && !DstInt) {
      double D = ir::isSignedType(From)
                     ? static_cast<double>(num::toSigned(Bits, Src64))
                     : static_cast<double>(wrap(Bits, Src64));
      R = Dst64 ? f64ToBits(D) : f32ToBits(static_cast<float>(D));
    } else if (!SrcInt && DstInt) {
      std::optional<uint64_t> Res =
          Src64 ? truncToInt(bitsToF64(Bits), Dst64, ir::isSignedType(To))
                : truncToInt(bitsToF32(Bits), Dst64, ir::isSignedType(To));
      if (!Res)
        return Trapped;
      R = *Res;
    } else {
      // float <-> float promote/demote.
      if (Dst64 && !Src64)
        R = f64ToBits(static_cast<double>(bitsToF32(Bits)));
      else if (!Dst64 && Src64)
        R = f32ToBits(static_cast<float>(bitsToF64(Bits)));
      else
        R = Bits;
    }
    return reduceAt(Seq, K, 1, {Code::val(Value::num(To, R))});
  }

  default:
    return Stuck;
  }
}

//===----------------------------------------------------------------------===//
// Garbage collection (the collect rule)
//===----------------------------------------------------------------------===//

namespace {

/// Accumulates the set of reachable locations from configuration roots.
class Marker {
public:
  explicit Marker(Memory &Mem) : Mem(Mem) {}

  void value(const Value &V) {
    switch (V.kind()) {
    case ValueKind::Ref:
    case ValueKind::Ptr:
      loc(V.loc());
      break;
    case ValueKind::Mempack:
      loc(V.loc());
      value(V.inner());
      break;
    case ValueKind::Fold:
      value(V.inner());
      break;
    case ValueKind::Tuple:
      for (const Value &E : V.elems())
        value(E);
      break;
    default:
      break;
    }
  }

  void code(const Code &Cd) {
    switch (Cd.K) {
    case CodeKind::Val:
      value(Cd.V);
      break;
    case CodeKind::Label:
      for (const Code &B : Cd.Lbl->Body)
        code(B);
      break;
    case CodeKind::Frame:
      for (const Value &L : Cd.Frm->Locals)
        value(L);
      for (const Code &B : Cd.Frm->Body)
        code(B);
      break;
    case CodeKind::Malloc:
      heapValue(Cd.Mal->HV);
      break;
    default:
      break;
    }
  }

  /// Transitively marks the heap from the accumulated roots.
  void closure() {
    while (!Work.empty()) {
      ir::Loc L = Work.back();
      Work.pop_back();
      Cell *Cl = Mem.lookup(L);
      if (!Cl)
        continue;
      heapValue(Cl->HV);
    }
  }

  bool reachable(MemKind M, uint64_t Addr) const {
    const auto &Set = M == MemKind::Lin ? LinMarked : UnrMarked;
    return Set.count(Addr) != 0;
  }

private:
  void loc(const ir::Loc &L) {
    if (!L.isConcrete())
      return;
    auto &Set = L.mem() == MemKind::Lin ? LinMarked : UnrMarked;
    if (Set.insert(L.addr()).second)
      Work.push_back(L);
  }

  void heapValue(const HeapValue &HV) {
    for (const Value &V : HV.Vals)
      value(V);
  }

  Memory &Mem;
  std::map<uint64_t, char> Dummy;
  std::set<uint64_t> LinMarked, UnrMarked;
  std::vector<ir::Loc> Work;
};

} // namespace

uint64_t Machine::collect() {
  Marker M(S.Mem);
  // Roots: the locations in the configuration's code (instructions and
  // values, including nested frames' locals), the top-level locals, and
  // every instance's globals.
  for (const Code &Cd : C.Program)
    M.code(Cd);
  for (const Value &V : C.Locals)
    M.value(V);
  for (const Instance &Inst : S.Insts)
    for (const Value &G : Inst.Globals)
      M.value(G);
  M.closure();

  uint64_t Reclaimed = 0;
  for (auto It = S.Mem.Unr.begin(); It != S.Mem.Unr.end();) {
    if (!M.reachable(MemKind::Unr, It->first)) {
      It = S.Mem.Unr.erase(It);
      ++S.Mem.CollectedUnr;
      ++Reclaimed;
    } else {
      ++It;
    }
  }
  // Linear cells unreachable from any root were owned by collected
  // unrestricted data; finalize them.
  for (auto It = S.Mem.Lin.begin(); It != S.Mem.Lin.end();) {
    if (!M.reachable(MemKind::Lin, It->first)) {
      It = S.Mem.Lin.erase(It);
      ++S.Mem.FinalizedLin;
      ++Reclaimed;
    } else {
      ++It;
    }
  }
  ++S.Mem.GcRuns;
  return Reclaimed;
}
