//===- sem/Value.h - RichWasm runtime values --------------------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runtime values (Fig 2 terms): every RichWasm type has a corresponding
/// value form. Capabilities and ownership tokens are present at this level
/// as zero-sized tokens (they are only erased when compiling to Wasm), so
/// the small-step machine can mirror the paper's reduction rules exactly
/// and the configuration-typing judgment can re-check intermediate states.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_SEM_VALUE_H
#define RICHWASM_SEM_VALUE_H

#include "ir/Loc.h"
#include "ir/Num.h"
#include "ir/Types.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace rw::sem {

enum class ValueKind : uint8_t {
  Unit,
  Num,
  Tuple,
  Ref,
  Ptr,
  Cap,
  Own,
  Fold,
  Mempack,
  Coderef,
};

/// A code reference value `coderef i j z*`: module instance i, table slot
/// j, and the accumulated quantifier instantiations.
struct CoderefVal {
  uint32_t InstIdx = 0;
  uint32_t TableIdx = 0;
  std::vector<ir::Index> TypeArgs;
};

/// A runtime value. Value-semantic with shared immutable payloads, so
/// copies are cheap; the machine moves/copies values freely and relies on
/// the type system (not this class) for linearity.
class Value {
public:
  Value() : K(ValueKind::Unit) {}

  static Value unit() { return Value(); }
  static Value num(ir::NumType NT, uint64_t Bits) {
    Value V;
    V.K = ValueKind::Num;
    V.NT = NT;
    V.Bits = NT == ir::NumType::I64 || NT == ir::NumType::U64 ||
                     NT == ir::NumType::F64
                 ? Bits
                 : (Bits & 0xffffffffull);
    return V;
  }
  static Value i32(uint32_t X) { return num(ir::NumType::I32, X); }
  static Value u32(uint32_t X) { return num(ir::NumType::U32, X); }
  static Value i64(uint64_t X) { return num(ir::NumType::I64, X); }
  static Value tuple(std::vector<Value> Elems) {
    Value V;
    V.K = ValueKind::Tuple;
    V.Elems = std::make_shared<const std::vector<Value>>(std::move(Elems));
    return V;
  }
  static Value ref(ir::Loc L) {
    assert(L.isConcrete() && "runtime refs carry concrete locations");
    Value V;
    V.K = ValueKind::Ref;
    V.L = L;
    return V;
  }
  static Value ptr(ir::Loc L) {
    Value V;
    V.K = ValueKind::Ptr;
    V.L = L;
    return V;
  }
  static Value cap() {
    Value V;
    V.K = ValueKind::Cap;
    return V;
  }
  static Value own() {
    Value V;
    V.K = ValueKind::Own;
    return V;
  }
  static Value fold(Value Inner) {
    Value V;
    V.K = ValueKind::Fold;
    V.Inner = std::make_shared<const Value>(std::move(Inner));
    return V;
  }
  static Value mempack(ir::Loc L, Value Inner) {
    Value V;
    V.K = ValueKind::Mempack;
    V.L = L;
    V.Inner = std::make_shared<const Value>(std::move(Inner));
    return V;
  }
  static Value coderef(uint32_t InstIdx, uint32_t TableIdx,
                       std::vector<ir::Index> TypeArgs = {}) {
    Value V;
    V.K = ValueKind::Coderef;
    V.CR = std::make_shared<const CoderefVal>(
        CoderefVal{InstIdx, TableIdx, std::move(TypeArgs)});
    return V;
  }

  ValueKind kind() const { return K; }
  bool isUnit() const { return K == ValueKind::Unit; }
  bool isNum() const { return K == ValueKind::Num; }

  ir::NumType numType() const {
    assert(isNum() && "not a numeric value");
    return NT;
  }
  uint64_t bits() const {
    assert(isNum() && "not a numeric value");
    return Bits;
  }
  uint32_t asU32() const { return static_cast<uint32_t>(bits()); }

  const std::vector<Value> &elems() const {
    assert(K == ValueKind::Tuple && "not a tuple value");
    return *Elems;
  }
  const ir::Loc &loc() const {
    assert((K == ValueKind::Ref || K == ValueKind::Ptr ||
            K == ValueKind::Mempack) &&
           "value carries no location");
    return L;
  }
  const Value &inner() const {
    assert((K == ValueKind::Fold || K == ValueKind::Mempack) &&
           "value has no payload");
    return *Inner;
  }
  const CoderefVal &coderefVal() const {
    assert(K == ValueKind::Coderef && "not a coderef value");
    return *CR;
  }

  std::string str() const;

private:
  ValueKind K;
  ir::NumType NT = ir::NumType::I32;
  uint64_t Bits = 0;
  ir::Loc L = ir::Loc::concrete(ir::MemKind::Lin, 0);
  std::shared_ptr<const std::vector<Value>> Elems;
  std::shared_ptr<const Value> Inner;
  std::shared_ptr<const CoderefVal> CR;
};

/// size(v): the number of bits value \p V occupies in a memory slot.
uint64_t sizeOfValue(const Value &V);

} // namespace rw::sem

#endif // RICHWASM_SEM_VALUE_H
