//===- sem/Machine.h - RichWasm small-step reduction machine ----*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The small-step machine implementing the reduction relation of Fig 4,
/// s; v*; sz*; e* ↪_j s'; v'*; e'*. Code sequences mix source instructions,
/// fully-reduced values, and the administrative instructions trap,
/// label{...}, local{...} (frames), malloc, free, and call cl z*. One
/// `step()` performs exactly one reduction, locating the innermost redex by
/// walking nested labels and frames — this is what the preservation
/// property tests re-typecheck around. `run()` iterates to completion.
///
/// Garbage collection of the unrestricted memory is the paper's collect
/// rule, exposed as collect(): roots are the locations appearing in the
/// configuration's values, locals, and instance globals; unreachable
/// unrestricted cells are collected, and unreachable linear cells (owned
/// via collected unrestricted data) are finalized.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_SEM_MACHINE_H
#define RICHWASM_SEM_MACHINE_H

#include "ir/Rewrite.h"
#include "ir/TypeArena.h"
#include "sem/Store.h"
#include "sem/Value.h"
#include "support/Error.h"

#include <memory>
#include <vector>

namespace rw::sem {

struct Code;
using CodeSeq = std::vector<Code>;

enum class CodeKind : uint8_t {
  Inst,    ///< A source instruction (possibly a substituted clone).
  Val,     ///< A fully reduced value.
  Trap,    ///< The trap administrative instruction.
  Label,   ///< label_n {cont} body end
  Frame,   ///< local_n {j; (v, sz)*} body end
  Malloc,  ///< malloc sz hv q
  FreeAdm, ///< free (consumes a linear reference)
  CallAdm, ///< call cl z*
};

struct LabelData {
  uint32_t Arity = 0;     ///< Values delivered by a br to this label.
  ir::InstRef LoopCont;   ///< Loop labels re-execute this; null for blocks.
  CodeSeq Body;
};

struct FrameData {
  uint32_t Arity = 0; ///< Result count of the call.
  uint32_t InstIdx = 0;
  std::vector<Value> Locals;
  std::vector<uint64_t> SlotBits;
  CodeSeq Body;
};

struct MallocData {
  uint64_t SizeBits = 0;
  HeapValue HV;
  ir::MemKind M = ir::MemKind::Unr;
};

struct CallData {
  Closure Cl;
  std::vector<ir::Index> TypeArgs;
};

/// One element of an evaluation sequence.
struct Code {
  CodeKind K = CodeKind::Trap;
  ir::InstRef I;
  Value V;
  std::shared_ptr<LabelData> Lbl;
  std::shared_ptr<FrameData> Frm;
  std::shared_ptr<MallocData> Mal;
  std::shared_ptr<CallData> Call;

  static Code inst(ir::InstRef In) {
    Code C;
    C.K = CodeKind::Inst;
    C.I = std::move(In);
    return C;
  }
  static Code val(Value X) {
    Code C;
    C.K = CodeKind::Val;
    C.V = std::move(X);
    return C;
  }
  static Code trap() { return Code(); }
  static Code label(uint32_t Arity, ir::InstRef LoopCont, CodeSeq Body) {
    Code C;
    C.K = CodeKind::Label;
    C.Lbl = std::make_shared<LabelData>();
    C.Lbl->Arity = Arity;
    C.Lbl->LoopCont = std::move(LoopCont);
    C.Lbl->Body = std::move(Body);
    return C;
  }
  static Code frame(uint32_t Arity, uint32_t InstIdx,
                    std::vector<Value> Locals, std::vector<uint64_t> Slots,
                    CodeSeq Body) {
    Code C;
    C.K = CodeKind::Frame;
    C.Frm = std::make_shared<FrameData>();
    C.Frm->Arity = Arity;
    C.Frm->InstIdx = InstIdx;
    C.Frm->Locals = std::move(Locals);
    C.Frm->SlotBits = std::move(Slots);
    C.Frm->Body = std::move(Body);
    return C;
  }
  static Code malloc(uint64_t SizeBits, HeapValue HV, ir::MemKind M) {
    Code C;
    C.K = CodeKind::Malloc;
    C.Mal = std::make_shared<MallocData>();
    C.Mal->SizeBits = SizeBits;
    C.Mal->HV = std::move(HV);
    C.Mal->M = M;
    return C;
  }
  static Code freeAdm() {
    Code C;
    C.K = CodeKind::FreeAdm;
    return C;
  }
  static Code callAdm(Closure Cl, std::vector<ir::Index> TypeArgs) {
    Code C;
    C.K = CodeKind::CallAdm;
    C.Call = std::make_shared<CallData>();
    C.Call->Cl = Cl;
    C.Call->TypeArgs = std::move(TypeArgs);
    return C;
  }
};

/// Converts an instruction vector into a code sequence.
CodeSeq toCode(const ir::InstVec &Insts);

/// A program configuration: the store lives in the Machine; this is the
/// v*; sz*; e* part plus the executing module index.
struct Config {
  CodeSeq Program;
  std::vector<Value> Locals;
  std::vector<uint64_t> SlotBits;
  uint32_t InstIdx = 0;
};

/// The observable status after one step.
enum class StepStatus : uint8_t {
  Stepped, ///< One reduction applied.
  Done,    ///< The program is a (possibly empty) sequence of values.
  Trapped, ///< The program is a single trap.
  Stuck,   ///< No rule applies — a soundness violation for checked code.
};

/// The RichWasm abstract machine.
class Machine {
public:
  explicit Machine(Store S) : S(std::move(S)) {}

  Store &store() { return S; }
  const Store &store() const { return S; }
  Config &config() { return C; }
  const Config &config() const { return C; }

  /// Prepares a call of function \p FuncIdx of instance \p InstIdx with
  /// quantifier instantiation \p TypeArgs and arguments \p Args.
  void setupInvoke(uint32_t InstIdx, uint32_t FuncIdx,
                   std::vector<ir::Index> TypeArgs, std::vector<Value> Args);

  /// Prepares a bare instruction sequence (used for global initializers).
  void setupProgram(uint32_t InstIdx, const ir::InstVec &Body) {
    C = Config();
    C.InstIdx = InstIdx;
    C.Program = toCode(Body);
  }

  /// Performs one reduction step.
  StepStatus step();

  /// Steps until completion, trap, or \p MaxSteps. On success returns the
  /// final value stack.
  Expected<std::vector<Value>> run(uint64_t MaxSteps = 100'000'000);

  /// setupInvoke followed by run.
  Expected<std::vector<Value>> invoke(uint32_t InstIdx, uint32_t FuncIdx,
                                      std::vector<ir::Index> TypeArgs,
                                      std::vector<Value> Args,
                                      uint64_t MaxSteps = 100'000'000);

  /// Runs the collect rule: garbage-collects unreachable unrestricted
  /// cells and finalizes unreachable linear cells. Returns the number of
  /// cells reclaimed.
  uint64_t collect();

  /// If set, collect() is invoked automatically whenever the unrestricted
  /// memory exceeds this many live cells (0 disables).
  void setGcThreshold(uint64_t Cells) { GcThreshold = Cells; }

  uint64_t stepCount() const { return Steps; }

private:
  struct LocalEnv {
    std::vector<Value> *Locals;
    std::vector<uint64_t> *Slots;
    uint32_t InstIdx;
  };

  enum class SeqResult : uint8_t {
    Stepped,
    AllValues,
    Trapped,
    Breaking,
    Returning,
    Stuck,
  };
  struct StepOut {
    SeqResult R;
    uint32_t BreakDepth = 0;
    std::vector<Value> Vals;
  };

  StepOut stepSeq(CodeSeq &Seq, const LocalEnv &Env);
  StepOut execInst(CodeSeq &Seq, size_t K, const LocalEnv &Env);
  StepOut execNumeric(CodeSeq &Seq, size_t K, const ir::Inst &I);

  /// Replaces Seq[K-NPop .. K] with Repl. Returns Stepped.
  StepOut reduceAt(CodeSeq &Seq, size_t K, size_t NPop,
                   std::vector<Code> Repl);

  Store S;
  Config C;
  uint64_t Steps = 0;
  uint64_t GcThreshold = 0;

  /// Arena for types the *runtime* creates while stepping — call-site
  /// instantiations, mem.unpack bodies specialized to concrete addresses,
  /// existential witnesses. These are never compared, only sized, and a
  /// long run mints one per fresh address; giving them a machine-owned
  /// arena (instead of the immortal process-wide one) lets them die with
  /// the machine. Module types remain canonical in the module's arena and
  /// are shared as children untouched.
  std::shared_ptr<ir::TypeArena> RuntimeTypes =
      std::make_shared<ir::TypeArena>();

  void maybeAutoCollect();
};

} // namespace rw::sem

#endif // RICHWASM_SEM_MACHINE_H
