//===- lower/Runtime.cpp - Emitted allocator + host GC ---------------------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lower/Runtime.h"

#include <cstring>

#include <cassert>
#include <map>
#include <set>

using namespace rw;
using namespace rw::lower;
using namespace rw::wasm;

RuntimeLayout rw::lower::emitRuntime(WModule &M) {
  RuntimeLayout L;

  // Globals.
  L.GFree = static_cast<uint32_t>(M.Globals.size());
  M.Globals.push_back({ValType::I32, true, {WInst::i32c(0)}});
  L.GBump = static_cast<uint32_t>(M.Globals.size());
  M.Globals.push_back(
      {ValType::I32, true, {WInst::i32c(RuntimeLayout::HeapBase)}});
  L.GLive = static_cast<uint32_t>(M.Globals.size());
  M.Globals.push_back({ValType::I32, true, {WInst::i32c(0)}});
  L.GAllocs = static_cast<uint32_t>(M.Globals.size());
  M.Globals.push_back({ValType::I32, true, {WInst::i32c(0)}});
  L.GFrees = static_cast<uint32_t>(M.Globals.size());
  M.Globals.push_back({ValType::I32, true, {WInst::i32c(0)}});

  if (!M.Memory)
    M.Memory = {{1, std::nullopt}};

  //===------------------------------------------------------------------===//
  // rw_alloc(payload: i32, flags: i32, ptrmap: i32) -> i32
  //   locals: 3 = total, 4 = prev, 5 = cur, 6 = blk, 7 = scratch
  //===------------------------------------------------------------------===//
  {
    using W = WInst;
    std::vector<WInst> Body;
    auto Emit = [&](WInst I) { Body.push_back(std::move(I)); };

    // total = (payload + HEADER + 7) & ~7
    Emit(W::idx(Op::LocalGet, 0));
    Emit(W::i32c(RuntimeLayout::HeaderBytes + 7));
    Emit(W::mk(Op::I32Add));
    Emit(W::i32c(~7));
    Emit(W::mk(Op::I32And));
    Emit(W::idx(Op::LocalSet, 3));

    // prev = 0; cur = G_FREE
    Emit(W::i32c(0));
    Emit(W::idx(Op::LocalSet, 4));
    Emit(W::idx(Op::GlobalGet, L.GFree));
    Emit(W::idx(Op::LocalSet, 5));

    // block $found { block $bump { loop $scan { ... } } bump-path } init
    std::vector<WInst> Scan;
    auto S = [&](WInst I) { Scan.push_back(std::move(I)); };
    // if cur == 0 break to $bump (depth 1 from inside loop)
    S(W::idx(Op::LocalGet, 5));
    S(W::mk(Op::I32Eqz));
    S(W::idx(Op::BrIf, 1));
    // if load(cur) >= total: take this block
    S(W::idx(Op::LocalGet, 5));
    S(W::mem(Op::I32Load, 2, 0));
    S(W::idx(Op::LocalGet, 3));
    S(W::mk(Op::I32GeU));
    {
      std::vector<WInst> Take;
      auto T = [&](WInst I) { Take.push_back(std::move(I)); };
      // scratch = next = load(cur + 8)
      T(W::idx(Op::LocalGet, 5));
      T(W::mem(Op::I32Load, 2, 8));
      T(W::idx(Op::LocalSet, 7));
      // Split when the remainder is big enough for a free block.
      // if load(cur) - total >= 24:
      T(W::idx(Op::LocalGet, 5));
      T(W::mem(Op::I32Load, 2, 0));
      T(W::idx(Op::LocalGet, 3));
      T(W::mk(Op::I32Sub));
      T(W::i32c(24));
      T(W::mk(Op::I32GeU));
      {
        std::vector<WInst> Split;
        auto P = [&](WInst I) { Split.push_back(std::move(I)); };
        // rem = cur + total; store(rem, load(cur) - total);
        // store(rem+4, 0); store(rem+8, scratch); scratch = rem
        P(W::idx(Op::LocalGet, 5));
        P(W::idx(Op::LocalGet, 3));
        P(W::mk(Op::I32Add));
        P(W::idx(Op::LocalGet, 5));
        P(W::mem(Op::I32Load, 2, 0));
        P(W::idx(Op::LocalGet, 3));
        P(W::mk(Op::I32Sub));
        P(W::mem(Op::I32Store, 2, 0));
        P(W::idx(Op::LocalGet, 5));
        P(W::idx(Op::LocalGet, 3));
        P(W::mk(Op::I32Add));
        P(W::i32c(0));
        P(W::mem(Op::I32Store, 2, 4));
        P(W::idx(Op::LocalGet, 5));
        P(W::idx(Op::LocalGet, 3));
        P(W::mk(Op::I32Add));
        P(W::idx(Op::LocalGet, 7));
        P(W::mem(Op::I32Store, 2, 8));
        P(W::idx(Op::LocalGet, 5));
        P(W::idx(Op::LocalGet, 3));
        P(W::mk(Op::I32Add));
        P(W::idx(Op::LocalSet, 7));
        // store(cur, total) — shrink the taken block.
        P(W::idx(Op::LocalGet, 5));
        P(W::idx(Op::LocalGet, 3));
        P(W::mem(Op::I32Store, 2, 0));
        T(W::ifElse({{}, {}}, std::move(Split), {}));
      }
      // Unlink: if prev: store(prev+8, scratch) else G_FREE = scratch
      T(W::idx(Op::LocalGet, 4));
      {
        std::vector<WInst> HasPrev = {
            W::idx(Op::LocalGet, 4),
            W::idx(Op::LocalGet, 7),
            W::mem(Op::I32Store, 2, 8),
        };
        std::vector<WInst> NoPrev = {
            W::idx(Op::LocalGet, 7),
            W::idx(Op::GlobalSet, L.GFree),
        };
        T(W::ifElse({{}, {}}, std::move(HasPrev), std::move(NoPrev)));
      }
      // blk = cur; br $found (depth 2 from inside loop)
      T(W::idx(Op::LocalGet, 5));
      T(W::idx(Op::LocalSet, 6));
      T(W::idx(Op::Br, 3));
      S(W::ifElse({{}, {}}, std::move(Take), {}));
    }
    // prev = cur; cur = load(cur + 8); continue
    S(W::idx(Op::LocalGet, 5));
    S(W::idx(Op::LocalSet, 4));
    S(W::idx(Op::LocalGet, 5));
    S(W::mem(Op::I32Load, 2, 8));
    S(W::idx(Op::LocalSet, 5));
    S(W::idx(Op::Br, 0));

    std::vector<WInst> BumpPath;
    auto Bp = [&](WInst I) { BumpPath.push_back(std::move(I)); };
    Bp(W::loop({{}, {}}, std::move(Scan)));
    // (falls through only via the br_if above)
    std::vector<WInst> FoundBody;
    auto Fb = [&](WInst I) { FoundBody.push_back(std::move(I)); };
    Fb(W::block({{}, {}}, std::move(BumpPath)));
    // Bump path: blk = G_BUMP; ensure capacity; G_BUMP += total.
    Fb(W::idx(Op::GlobalGet, L.GBump));
    Fb(W::idx(Op::LocalSet, 6));
    // while (blk + total > memory.size * 64K) grow 1 page (or trap).
    {
      std::vector<WInst> GrowLoop;
      auto G = [&](WInst I) { GrowLoop.push_back(std::move(I)); };
      G(W::idx(Op::LocalGet, 6));
      G(W::idx(Op::LocalGet, 3));
      G(W::mk(Op::I32Add));
      G(W::mk(Op::MemorySize));
      G(W::i32c(16));
      G(W::mk(Op::I32Shl));
      G(W::mk(Op::I32LeU));
      G(W::idx(Op::BrIf, 1)); // Enough space: exit the grow loop.
      G(W::i32c(1));
      G(W::mk(Op::MemoryGrow));
      G(W::i32c(-1));
      G(W::mk(Op::I32Eq));
      {
        std::vector<WInst> Oom = {W::mk(Op::Unreachable)};
        G(W::ifElse({{}, {}}, std::move(Oom), {}));
      }
      G(W::idx(Op::Br, 0));
      std::vector<WInst> GrowBlock;
      GrowBlock.push_back(W::loop({{}, {}}, std::move(GrowLoop)));
      Fb(W::block({{}, {}}, std::move(GrowBlock)));
    }
    Fb(W::idx(Op::LocalGet, 6));
    Fb(W::idx(Op::LocalGet, 3));
    Fb(W::mk(Op::I32Add));
    Fb(W::idx(Op::GlobalSet, L.GBump));
    // store(blk, total)
    Fb(W::idx(Op::LocalGet, 6));
    Fb(W::idx(Op::LocalGet, 3));
    Fb(W::mem(Op::I32Store, 2, 0));

    Emit(W::block({{}, {}}, std::move(FoundBody)));
    // Common init: flags, ptrmap, zero payload, counters.
    Emit(W::idx(Op::LocalGet, 6));
    Emit(W::idx(Op::LocalGet, 1));
    Emit(W::i32c(RtAllocated));
    Emit(W::mk(Op::I32Or));
    Emit(W::mem(Op::I32Store, 2, 4));
    Emit(W::idx(Op::LocalGet, 6));
    Emit(W::idx(Op::LocalGet, 2));
    Emit(W::mem(Op::I32Store, 2, 8));
    // scratch = blk + HEADER; zero until blk + total.
    Emit(W::idx(Op::LocalGet, 6));
    Emit(W::i32c(RuntimeLayout::HeaderBytes));
    Emit(W::mk(Op::I32Add));
    Emit(W::idx(Op::LocalSet, 7));
    {
      std::vector<WInst> ZeroLoop;
      auto Z = [&](WInst I) { ZeroLoop.push_back(std::move(I)); };
      Z(W::idx(Op::LocalGet, 7));
      Z(W::idx(Op::LocalGet, 6));
      Z(W::idx(Op::LocalGet, 3));
      Z(W::mk(Op::I32Add));
      Z(W::mk(Op::I32GeU));
      Z(W::idx(Op::BrIf, 1));
      Z(W::idx(Op::LocalGet, 7));
      Z(W::i32c(0));
      Z(W::mem(Op::I32Store, 2, 0));
      Z(W::idx(Op::LocalGet, 7));
      Z(W::i32c(4));
      Z(W::mk(Op::I32Add));
      Z(W::idx(Op::LocalSet, 7));
      Z(W::idx(Op::Br, 0));
      std::vector<WInst> ZeroBlock;
      ZeroBlock.push_back(W::loop({{}, {}}, std::move(ZeroLoop)));
      Emit(W::block({{}, {}}, std::move(ZeroBlock)));
    }
    Emit(W::idx(Op::GlobalGet, L.GLive));
    Emit(W::i32c(1));
    Emit(W::mk(Op::I32Add));
    Emit(W::idx(Op::GlobalSet, L.GLive));
    Emit(W::idx(Op::GlobalGet, L.GAllocs));
    Emit(W::i32c(1));
    Emit(W::mk(Op::I32Add));
    Emit(W::idx(Op::GlobalSet, L.GAllocs));
    Emit(W::idx(Op::LocalGet, 6));
    Emit(W::i32c(RuntimeLayout::HeaderBytes));
    Emit(W::mk(Op::I32Add));

    uint32_t TI = M.addType(
        {{ValType::I32, ValType::I32, ValType::I32}, {ValType::I32}});
    L.AllocFunc = M.numFuncs();
    M.Funcs.push_back({TI,
                       {ValType::I32, ValType::I32, ValType::I32,
                        ValType::I32, ValType::I32},
                       std::move(Body)});
  }

  //===------------------------------------------------------------------===//
  // rw_free(ptr: i32)
  //===------------------------------------------------------------------===//
  {
    using W = WInst;
    std::vector<WInst> Body;
    auto Emit = [&](WInst I) { Body.push_back(std::move(I)); };
    // blk = ptr - HEADER (local 1)
    Emit(W::idx(Op::LocalGet, 0));
    Emit(W::i32c(RuntimeLayout::HeaderBytes));
    Emit(W::mk(Op::I32Sub));
    Emit(W::idx(Op::LocalSet, 1));
    // store(blk+4, 0); store(blk+8, G_FREE); G_FREE = blk
    Emit(W::idx(Op::LocalGet, 1));
    Emit(W::i32c(0));
    Emit(W::mem(Op::I32Store, 2, 4));
    Emit(W::idx(Op::LocalGet, 1));
    Emit(W::idx(Op::GlobalGet, L.GFree));
    Emit(W::mem(Op::I32Store, 2, 8));
    Emit(W::idx(Op::LocalGet, 1));
    Emit(W::idx(Op::GlobalSet, L.GFree));
    Emit(W::idx(Op::GlobalGet, L.GLive));
    Emit(W::i32c(1));
    Emit(W::mk(Op::I32Sub));
    Emit(W::idx(Op::GlobalSet, L.GLive));
    Emit(W::idx(Op::GlobalGet, L.GFrees));
    Emit(W::i32c(1));
    Emit(W::mk(Op::I32Add));
    Emit(W::idx(Op::GlobalSet, L.GFrees));

    uint32_t TI = M.addType({{ValType::I32}, {}});
    L.FreeFunc = M.numFuncs();
    M.Funcs.push_back({TI, {ValType::I32}, std::move(Body)});
  }

  return L;
}

//===----------------------------------------------------------------------===//
// Host-assisted GC
//===----------------------------------------------------------------------===//

HostGc::Stats HostGc::collect(const std::vector<uint32_t> &ExtraRoots) {
  Stats St;
  std::vector<uint8_t> &Mem = Inst.memory();
  uint32_t Bump = Inst.global(L.GBump).asU32();

  auto Load = [&](uint32_t A) -> uint32_t {
    if (A + 4 > Mem.size())
      return 0;
    uint32_t V;
    std::memcpy(&V, Mem.data() + A, 4);
    return V;
  };
  auto Store = [&](uint32_t A, uint32_t V) {
    assert(A + 4 <= Mem.size());
    std::memcpy(Mem.data() + A, &V, 4);
  };

  // Phase 0: walk the heap to learn the valid payload addresses.
  std::set<uint32_t> Blocks; // block start addresses (allocated only)
  for (uint32_t B = RuntimeLayout::HeapBase; B < Bump;) {
    uint32_t Size = Load(B);
    if (Size < 8 || B + Size > Bump)
      break; // Corrupt heap; stop scanning defensively.
    if (Load(B + 4) & RtAllocated)
      Blocks.insert(B);
    B += Size;
  }
  auto IsPayload = [&](uint32_t P) {
    return P >= RuntimeLayout::HeaderBytes &&
           Blocks.count(P - RuntimeLayout::HeaderBytes) != 0;
  };

  // Phase 1: mark.
  std::vector<uint32_t> Work;
  for (uint32_t G : RefGlobals) {
    uint32_t P = Inst.global(G).asU32();
    if (IsPayload(P))
      Work.push_back(P);
  }
  for (uint32_t P : ExtraRoots)
    if (IsPayload(P))
      Work.push_back(P);

  while (!Work.empty()) {
    uint32_t P = Work.back();
    Work.pop_back();
    uint32_t B = P - RuntimeLayout::HeaderBytes;
    uint32_t Flags = Load(B + 4);
    if (Flags & RtMark)
      continue;
    Store(B + 4, Flags | RtMark);
    ++St.Marked;
    uint32_t Size = Load(B);
    uint32_t Map = Load(B + 8);
    uint32_t PayloadBytes = Size - RuntimeLayout::HeaderBytes;
    auto ScanWord = [&](uint32_t Addr) {
      uint32_t C = Load(Addr);
      if (IsPayload(C))
        Work.push_back(C);
    };
    if (Flags & RtArray) {
      uint32_t Stride = Flags >> RtElemShift;
      if (Stride == 0)
        continue;
      uint32_t Len = Load(P); // First payload word is the length.
      for (uint32_t E = 0; E < Len; ++E) {
        uint32_t Base = P + 4 + E * Stride;
        for (uint32_t Wd = 0; Wd * 4 < Stride; ++Wd)
          if (Map & (1u << (Wd < 29 ? Wd : 28)))
            ScanWord(Base + Wd * 4);
      }
    } else {
      for (uint32_t Wd = 0; Wd * 4 < PayloadBytes; ++Wd) {
        bool IsPtr = Wd < 29 ? (Map & (1u << Wd)) != 0
                             : true; // Conservative beyond the map width.
        if (IsPtr)
          ScanWord(P + Wd * 4);
      }
    }
  }

  // Phase 2: sweep unmarked unrestricted blocks; clear marks.
  uint32_t FreeHead = Inst.global(L.GFree).asU32();
  uint32_t Live = Inst.global(L.GLive).asU32();
  uint32_t Frees = Inst.global(L.GFrees).asU32();
  for (uint32_t B : Blocks) {
    uint32_t Flags = Load(B + 4);
    if (Flags & RtMark) {
      Store(B + 4, Flags & ~RtMark);
      continue;
    }
    if (Flags & RtLinear)
      continue; // Linear memory is manually managed (or finalized below).
    // Free the block: [size][0][next] onto the free list.
    Store(B + 4, 0);
    Store(B + 8, FreeHead);
    FreeHead = B;
    ++St.Swept;
    St.BytesReclaimed += Load(B);
    --Live;
    ++Frees;
  }
  Inst.setGlobal(L.GFree, wasm::WValue::i32(FreeHead));
  Inst.setGlobal(L.GLive, wasm::WValue::i32(Live));
  Inst.setGlobal(L.GFrees, wasm::WValue::i32(Frees));
  return St;
}
