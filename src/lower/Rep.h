//===- lower/Rep.h - Lowering RichWasm types to Wasm shapes -----*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// §6's type lowering: every RichWasm type maps to a sequence of Wasm value
/// types (its *representation*), and to a flat-memory layout. Erased
/// entities (unit, cap, own, and all the type-level instructions) have the
/// empty representation — this is what makes capabilities zero-cost.
/// References, pointers, and code references become a single i32 (a memory
/// address / table index). A pretype variable with constant size bound b
/// is represented as ⌈b/32⌉ raw i32 words; concrete values are coerced to
/// and from this shape at polymorphic call boundaries (the paper's "stack
/// coercions").
///
/// Deviation noted in DESIGN.md §3: slots are word-granular (32-bit), so a
/// 160-bit local lowers to five i32 locals rather than i64,i64,i32.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_LOWER_REP_H
#define RICHWASM_LOWER_REP_H

#include "ir/TypeOps.h"
#include "ir/Types.h"
#include "support/Error.h"
#include "wasm/WasmAst.h"

namespace rw::lower {

/// The Wasm-stack representation of a RichWasm type. \p Bounds supplies
/// the size upper bounds of the pretype variables in scope (a variable is
/// represented as bound-many raw words, like a skolem). Borrowed-first:
/// the lowering's type traffic is InfoMap TypeRef views; owning handles
/// convert/forward.
Expected<std::vector<wasm::ValType>> repOfType(ir::TypeRef T,
                                               const ir::TypeVarSizes &Bounds);
Expected<std::vector<wasm::ValType>>
repOfPretype(const ir::Pretype *P, const ir::TypeVarSizes &Bounds);
inline Expected<std::vector<wasm::ValType>>
repOfPretype(const ir::PretypeRef &P, const ir::TypeVarSizes &Bounds) {
  return repOfPretype(P.get(), Bounds);
}

/// Concatenated representation of a type list (stack order preserved).
Expected<std::vector<wasm::ValType>>
repOfTypes(const std::vector<ir::Type> &Ts, const ir::TypeVarSizes &Bounds);

/// Byte size of one representation component.
inline uint32_t valTypeBytes(wasm::ValType T) {
  return (T == wasm::ValType::I64 || T == wasm::ValType::F64) ? 8 : 4;
}

/// Total bytes a value of type T occupies in memory (components packed).
Expected<uint32_t> byteSizeOfType(ir::TypeRef T,
                                  const ir::TypeVarSizes &Bounds);

/// Bytes of a memory slot declared with the given (closed) bit size.
Expected<uint32_t> slotBytes(const ir::SizeRef &Sz);

/// Per-32-bit-word pointer mask of a value of type T as laid out in
/// memory (for the garbage collector's header maps). Variable-typed words
/// are conservatively marked as potential pointers.
Expected<std::vector<bool>> refMaskOfType(ir::TypeRef T,
                                          const ir::TypeVarSizes &Bounds);

/// Packs a word mask (first 29 words) into the header's map bits.
uint32_t packPtrMap(const std::vector<bool> &Mask);

} // namespace rw::lower

#endif // RICHWASM_LOWER_REP_H
