//===- lower/Runtime.h - Emitted allocator + host-assisted GC ---*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime substrate §6 requires: a first-fit free-list allocator over
/// the single flat Wasm memory, emitted *as Wasm functions* into every
/// lowered module, and a precise mark-sweep collector for the unrestricted
/// portion of the heap, run by the host embedder (DESIGN.md §3 records the
/// substitution for the paper's in-runtime GC).
///
/// Heap object layout (all offsets in bytes):
///
///   block:   [ size:u32 ][ flags:u32 ][ ptrmap:u32 ][ payload ... ]
///   free:    [ size:u32 ][ 0         ][ next:u32   ]
///
/// flags: bit0 = allocated, bit1 = linear memory, bit2 = GC mark,
/// bit3 = array (payload = [len:u32][elems...], ptrmap applies per element
/// with stride flags>>8 bytes).
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_LOWER_RUNTIME_H
#define RICHWASM_LOWER_RUNTIME_H

#include "wasm/Instance.h"
#include "wasm/WasmAst.h"

namespace rw::lower {

/// Header flag bits.
enum RtFlags : uint32_t {
  RtAllocated = 1u << 0,
  RtLinear = 1u << 1,
  RtMark = 1u << 2,
  RtArray = 1u << 3,
  RtElemShift = 8, ///< Array element stride lives in bits 8..31.
};

/// Indices of the runtime pieces inside a lowered module.
struct RuntimeLayout {
  uint32_t AllocFunc = 0; ///< (payloadBytes, flags, ptrmap) -> ptr
  uint32_t FreeFunc = 0;  ///< (ptr) -> ()
  uint32_t GFree = 0;     ///< Free-list head global.
  uint32_t GBump = 0;     ///< Bump frontier global.
  uint32_t GLive = 0;     ///< Live allocation count.
  uint32_t GAllocs = 0;   ///< Cumulative allocation count.
  uint32_t GFrees = 0;    ///< Cumulative free count.

  static constexpr uint32_t HeaderBytes = 12;
  static constexpr uint32_t HeapBase = 16;
};

/// Appends the allocator functions and runtime globals to \p M. Must be
/// called once per lowered module, before code referencing the runtime is
/// emitted.
RuntimeLayout emitRuntime(wasm::WModule &M);

/// Precise mark-sweep over a lowered module's heap, driven by the host.
/// Roots are the lowered globals that hold references (known statically
/// from lowering) plus any extra roots the embedder supplies. Works
/// against any execution engine through the shared wasm::Instance
/// surface (memory and global access are all it needs).
class HostGc {
public:
  HostGc(wasm::Instance &Inst, RuntimeLayout L,
         std::vector<uint32_t> RefGlobals)
      : Inst(Inst), L(L), RefGlobals(std::move(RefGlobals)) {}

  struct Stats {
    uint64_t Marked = 0;
    uint64_t Swept = 0;
    uint64_t BytesReclaimed = 0;
  };

  /// Runs one collection at a quiescent point (no live references on the
  /// Wasm operand stack). Returns collection statistics.
  Stats collect(const std::vector<uint32_t> &ExtraRoots = {});

private:
  wasm::Instance &Inst;
  RuntimeLayout L;
  std::vector<uint32_t> RefGlobals;
};

} // namespace rw::lower

#endif // RICHWASM_LOWER_RUNTIME_H
