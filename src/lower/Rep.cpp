//===- lower/Rep.cpp - Type representations --------------------------------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lower/Rep.h"

#include "ir/Rewrite.h"

using namespace rw;
using namespace rw::lower;
using namespace rw::ir;
using wasm::ValType;

static Expected<uint32_t> boundWords(const SizeRef &Bound) {
  NormalSize N = normalizeSize(Bound);
  if (!N.isConst())
    return Error("pretype bound is not a constant size; boxing of "
                 "unknown-size abstractions is not supported");
  return static_cast<uint32_t>((N.Const + 31) / 32);
}

Expected<std::vector<ValType>>
rw::lower::repOfPretype(const Pretype *P, const TypeVarSizes &Bounds) {
  switch (P->kind()) {
  case PretypeKind::Unit:
  case PretypeKind::Cap:
  case PretypeKind::Own:
    return std::vector<ValType>{};
  case PretypeKind::Num:
    switch (cast<NumPT>(P)->numType()) {
    case NumType::I32:
    case NumType::U32:
      return std::vector<ValType>{ValType::I32};
    case NumType::I64:
    case NumType::U64:
      return std::vector<ValType>{ValType::I64};
    case NumType::F32:
      return std::vector<ValType>{ValType::F32};
    case NumType::F64:
      return std::vector<ValType>{ValType::F64};
    }
    return Error("bad numeric type");
  case PretypeKind::Ref:
  case PretypeKind::Ptr:
  case PretypeKind::Coderef:
    return std::vector<ValType>{ValType::I32};
  case PretypeKind::Prod: {
    std::vector<ValType> Out;
    for (const Type &E : cast<ProdPT>(P)->elems()) {
      Expected<std::vector<ValType>> R = repOfType(E, Bounds);
      if (!R)
        return R;
      Out.insert(Out.end(), R->begin(), R->end());
    }
    return Out;
  }
  case PretypeKind::Var: {
    uint32_t Idx = cast<VarPT>(P)->index();
    if (Idx >= Bounds.size())
      return Error("unbound pretype variable survived to lowering");
    Expected<uint32_t> W = boundWords(Bounds[Idx]);
    if (!W)
      return W.error();
    return std::vector<ValType>(*W, ValType::I32);
  }
  case PretypeKind::Skolem: {
    Expected<uint32_t> W = boundWords(cast<SkolemPT>(P)->sizeUpper());
    if (!W)
      return W.error();
    return std::vector<ValType>(*W, ValType::I32);
  }
  case PretypeKind::Rec: {
    // The rec variable only occurs behind a reference; represent the body
    // with the variable mapped to a single pointer word, which is exactly
    // what any occurrence (necessarily under ref) lowers to anyway.
    Subst S = Subst::onePretype(ptrPT(Loc::concrete(MemKind::Unr, 0)));
    return repOfType(S.rewrite(cast<RecPT>(P)->body()), Bounds);
  }
  case PretypeKind::ExLoc:
    return repOfType(cast<ExLocPT>(P)->body(), Bounds);
  }
  return Error("unhandled pretype in lowering");
}

Expected<std::vector<ValType>>
rw::lower::repOfType(TypeRef T, const TypeVarSizes &Bounds) {
  return repOfPretype(T.P, Bounds);
}

Expected<std::vector<ValType>>
rw::lower::repOfTypes(const std::vector<Type> &Ts,
                      const TypeVarSizes &Bounds) {
  std::vector<ValType> Out;
  for (const Type &T : Ts) {
    Expected<std::vector<ValType>> R = repOfType(T, Bounds);
    if (!R)
      return R;
    Out.insert(Out.end(), R->begin(), R->end());
  }
  return Out;
}

Expected<uint32_t> rw::lower::byteSizeOfType(TypeRef T,
                                             const TypeVarSizes &Bounds) {
  Expected<std::vector<ValType>> R = repOfType(T, Bounds);
  if (!R)
    return R.error();
  uint32_t Bytes = 0;
  for (ValType V : *R)
    Bytes += valTypeBytes(V);
  return Bytes;
}

Expected<uint32_t> rw::lower::slotBytes(const SizeRef &Sz) {
  NormalSize N = normalizeSize(Sz);
  if (!N.isConst())
    return Error("slot size is not closed at lowering time");
  return static_cast<uint32_t>((N.Const + 7) / 8);
}

Expected<std::vector<bool>>
rw::lower::refMaskOfType(TypeRef T, const TypeVarSizes &Bounds) {
  std::vector<bool> Mask;
  // Pointer-ness per component, expanded to 4-byte words.
  // Recompute structurally: walk the type the same way repOfPretype does.
  struct Walker {
    const TypeVarSizes &Bounds;
    Status walk(TypeRef T, std::vector<bool> &Out) {
      return walkP(T.P, Out);
    }
    Status walkP(const Pretype *P, std::vector<bool> &Out) {
      switch (P->kind()) {
      case PretypeKind::Unit:
      case PretypeKind::Cap:
      case PretypeKind::Own:
        return Status::success();
      case PretypeKind::Num: {
        uint64_t Bits = numTypeBits(cast<NumPT>(P)->numType());
        for (uint64_t I = 0; I < Bits / 32; ++I)
          Out.push_back(false);
        return Status::success();
      }
      case PretypeKind::Ref:
      case PretypeKind::Ptr:
        Out.push_back(true);
        return Status::success();
      case PretypeKind::Coderef:
        Out.push_back(false); // Table index, not a heap pointer.
        return Status::success();
      case PretypeKind::Prod: {
        for (const Type &E : cast<ProdPT>(P)->elems())
          if (Status S = walk(E, Out); !S)
            return S;
        return Status::success();
      }
      case PretypeKind::Skolem: {
        const auto *Sk = cast<SkolemPT>(P);
        NormalSize N = normalizeSize(Sk->sizeUpper());
        if (!N.isConst())
          return Error("pretype bound is not a constant size");
        for (uint64_t I = 0; I < (N.Const + 31) / 32; ++I)
          Out.push_back(true); // Conservative: may hold a pointer.
        return Status::success();
      }
      case PretypeKind::Var: {
        uint32_t Idx = cast<VarPT>(P)->index();
        if (Idx >= Bounds.size())
          return Error("unbound pretype variable in refMask");
        NormalSize N = normalizeSize(Bounds[Idx]);
        if (!N.isConst())
          return Error("pretype bound is not a constant size");
        for (uint64_t I = 0; I < (N.Const + 31) / 32; ++I)
          Out.push_back(true); // Conservative: may hold a pointer.
        return Status::success();
      }
      case PretypeKind::Rec: {
        Subst S = Subst::onePretype(ptrPT(Loc::concrete(MemKind::Unr, 0)));
        return walk(S.rewrite(cast<RecPT>(P)->body()), Out);
      }
      case PretypeKind::ExLoc:
        return walk(cast<ExLocPT>(P)->body(), Out);
      }
      return Status::success();
    }
  };
  Walker W{Bounds};
  if (Status S = W.walk(T, Mask); !S)
    return S.error();
  return Mask;
}

uint32_t rw::lower::packPtrMap(const std::vector<bool> &Mask) {
  uint32_t Out = 0;
  for (size_t I = 0; I < Mask.size() && I < 29; ++I)
    if (Mask[I])
      Out |= 1u << I;
  return Out;
}
