//===- lower/Lower.cpp - RichWasm → Wasm code generation -------------------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "lower/Lower.h"

#include "ir/Rewrite.h"
#include "ir/TypeArena.h"
#include "lower/Rep.h"
#include "obs/Obs.h"
#include "support/FaultInject.h"
#include "typing/Checker.h"
#include "typing/Entail.h"
#include "support/ThreadPool.h"

#include <cassert>
#include <functional>

using namespace rw;
using namespace rw::lower;
using namespace rw::ir;
using wasm::Op;
using wasm::ValType;
using wasm::WInst;

namespace {

//===----------------------------------------------------------------------===//
// Numeric opcode mapping
//===----------------------------------------------------------------------===//

Expected<Op> mapBinop(NumType NT, BinopKind K) {
  bool Is64 = numTypeBits(NT) == 64;
  bool Sgn = isSignedType(NT);
  if (isIntType(NT)) {
    switch (K) {
    case BinopKind::Add:
      return Is64 ? Op::I64Add : Op::I32Add;
    case BinopKind::Sub:
      return Is64 ? Op::I64Sub : Op::I32Sub;
    case BinopKind::Mul:
      return Is64 ? Op::I64Mul : Op::I32Mul;
    case BinopKind::Div:
      return Is64 ? (Sgn ? Op::I64DivS : Op::I64DivU)
                  : (Sgn ? Op::I32DivS : Op::I32DivU);
    case BinopKind::Rem:
      return Is64 ? (Sgn ? Op::I64RemS : Op::I64RemU)
                  : (Sgn ? Op::I32RemS : Op::I32RemU);
    case BinopKind::And:
      return Is64 ? Op::I64And : Op::I32And;
    case BinopKind::Or:
      return Is64 ? Op::I64Or : Op::I32Or;
    case BinopKind::Xor:
      return Is64 ? Op::I64Xor : Op::I32Xor;
    case BinopKind::Shl:
      return Is64 ? Op::I64Shl : Op::I32Shl;
    case BinopKind::Shr:
      return Is64 ? (Sgn ? Op::I64ShrS : Op::I64ShrU)
                  : (Sgn ? Op::I32ShrS : Op::I32ShrU);
    case BinopKind::Rotl:
      return Is64 ? Op::I64Rotl : Op::I32Rotl;
    case BinopKind::Rotr:
      return Is64 ? Op::I64Rotr : Op::I32Rotr;
    default:
      return Error("float operator at integer type");
    }
  }
  switch (K) {
  case BinopKind::Add:
    return Is64 ? Op::F64Add : Op::F32Add;
  case BinopKind::Sub:
    return Is64 ? Op::F64Sub : Op::F32Sub;
  case BinopKind::Mul:
    return Is64 ? Op::F64Mul : Op::F32Mul;
  case BinopKind::Div:
    return Is64 ? Op::F64Div : Op::F32Div;
  case BinopKind::Min:
    return Is64 ? Op::F64Min : Op::F32Min;
  case BinopKind::Max:
    return Is64 ? Op::F64Max : Op::F32Max;
  case BinopKind::Copysign:
    return Is64 ? Op::F64Copysign : Op::F32Copysign;
  default:
    return Error("integer operator at float type");
  }
}

Expected<Op> mapUnop(NumType NT, UnopKind K) {
  bool Is64 = numTypeBits(NT) == 64;
  switch (K) {
  case UnopKind::Clz:
    return Is64 ? Op::I64Clz : Op::I32Clz;
  case UnopKind::Ctz:
    return Is64 ? Op::I64Ctz : Op::I32Ctz;
  case UnopKind::Popcnt:
    return Is64 ? Op::I64Popcnt : Op::I32Popcnt;
  case UnopKind::Abs:
    return Is64 ? Op::F64Abs : Op::F32Abs;
  case UnopKind::Neg:
    return Is64 ? Op::F64Neg : Op::F32Neg;
  case UnopKind::Sqrt:
    return Is64 ? Op::F64Sqrt : Op::F32Sqrt;
  case UnopKind::Ceil:
    return Is64 ? Op::F64Ceil : Op::F32Ceil;
  case UnopKind::Floor:
    return Is64 ? Op::F64Floor : Op::F32Floor;
  case UnopKind::Trunc:
    return Is64 ? Op::F64Trunc : Op::F32Trunc;
  case UnopKind::Nearest:
    return Is64 ? Op::F64Nearest : Op::F32Nearest;
  }
  return Error("bad unop");
}

Expected<Op> mapRelop(NumType NT, RelopKind K) {
  bool Is64 = numTypeBits(NT) == 64;
  bool Sgn = isSignedType(NT);
  if (isIntType(NT)) {
    switch (K) {
    case RelopKind::Eq:
      return Is64 ? Op::I64Eq : Op::I32Eq;
    case RelopKind::Ne:
      return Is64 ? Op::I64Ne : Op::I32Ne;
    case RelopKind::Lt:
      return Is64 ? (Sgn ? Op::I64LtS : Op::I64LtU)
                  : (Sgn ? Op::I32LtS : Op::I32LtU);
    case RelopKind::Gt:
      return Is64 ? (Sgn ? Op::I64GtS : Op::I64GtU)
                  : (Sgn ? Op::I32GtS : Op::I32GtU);
    case RelopKind::Le:
      return Is64 ? (Sgn ? Op::I64LeS : Op::I64LeU)
                  : (Sgn ? Op::I32LeS : Op::I32LeU);
    case RelopKind::Ge:
      return Is64 ? (Sgn ? Op::I64GeS : Op::I64GeU)
                  : (Sgn ? Op::I32GeS : Op::I32GeU);
    }
  }
  switch (K) {
  case RelopKind::Eq:
    return Is64 ? Op::F64Eq : Op::F32Eq;
  case RelopKind::Ne:
    return Is64 ? Op::F64Ne : Op::F32Ne;
  case RelopKind::Lt:
    return Is64 ? Op::F64Lt : Op::F32Lt;
  case RelopKind::Gt:
    return Is64 ? Op::F64Gt : Op::F32Gt;
  case RelopKind::Le:
    return Is64 ? Op::F64Le : Op::F32Le;
  case RelopKind::Ge:
    return Is64 ? Op::F64Ge : Op::F32Ge;
  }
  return Error("bad relop");
}

/// Conversion lowering may be a no-op (same-width int reinterpretation).
Expected<std::optional<Op>> mapCvt(NumType From, NumType To, CvtopKind K) {
  bool SrcInt = isIntType(From), DstInt = isIntType(To);
  bool Src64 = numTypeBits(From) == 64, Dst64 = numTypeBits(To) == 64;
  if (K == CvtopKind::Reinterpret) {
    if (SrcInt == DstInt)
      return std::optional<Op>{}; // int<->int / float<->float: identity.
    if (DstInt)
      return std::optional<Op>{Dst64 ? Op::I64ReinterpretF64
                                     : Op::I32ReinterpretF32};
    return std::optional<Op>{Dst64 ? Op::F64ReinterpretI64
                                   : Op::F32ReinterpretI32};
  }
  if (SrcInt && DstInt) {
    if (Src64 == Dst64)
      return std::optional<Op>{}; // Signedness reinterpretation.
    if (Dst64)
      return std::optional<Op>{isSignedType(From) ? Op::I64ExtendI32S
                                                  : Op::I64ExtendI32U};
    return std::optional<Op>{Op::I32WrapI64};
  }
  if (SrcInt) {
    bool Sgn = isSignedType(From);
    if (Dst64)
      return std::optional<Op>{Src64
                                   ? (Sgn ? Op::F64ConvertI64S : Op::F64ConvertI64U)
                                   : (Sgn ? Op::F64ConvertI32S : Op::F64ConvertI32U)};
    return std::optional<Op>{Src64
                                 ? (Sgn ? Op::F32ConvertI64S : Op::F32ConvertI64U)
                                 : (Sgn ? Op::F32ConvertI32S : Op::F32ConvertI32U)};
  }
  if (DstInt) {
    bool Sgn = isSignedType(To);
    if (Dst64)
      return std::optional<Op>{Src64 ? (Sgn ? Op::I64TruncF64S : Op::I64TruncF64U)
                                     : (Sgn ? Op::I64TruncF32S : Op::I64TruncF32U)};
    return std::optional<Op>{Src64 ? (Sgn ? Op::I32TruncF64S : Op::I32TruncF64U)
                                   : (Sgn ? Op::I32TruncF32S : Op::I32TruncF32U)};
  }
  if (Src64 == Dst64)
    return std::optional<Op>{};
  return std::optional<Op>{Dst64 ? Op::F64PromoteF32 : Op::F32DemoteF64};
}

//===----------------------------------------------------------------------===//
// Program lowering
//===----------------------------------------------------------------------===//

class ProgramLowering {
public:
  ProgramLowering(const std::vector<const Module *> &Mods,
                  const LowerOptions &Opts)
      : Mods(Mods), Resolved(Opts.Resolved), Infos(Opts.Infos),
        Pool(Opts.Pool) {}

  Expected<LoweredProgram> run();

  LoweredProgram Out;
  std::vector<const Module *> Mods;
  /// Caller-provided import resolution (link/Resolve.h), or null; run()
  /// resolves itself when null. Not owned.
  const std::vector<link::ResolvedModule> *Resolved;
  /// Per-module checker annotations: either handed over by the caller
  /// (typing::checkModules — the single-check cold path) or produced by
  /// run()'s own checkModule loop into OwnInfos. Not owned when external.
  const std::vector<typing::InfoMap> *Infos;
  std::vector<typing::InfoMap> OwnInfos;
  /// Optional pool for (module, function)-parallel body lowering.
  support::ThreadPool *Pool;
  /// (module, RichWasm global idx) → (base Wasm global, component reps).
  std::map<std::pair<uint32_t, uint32_t>,
           std::pair<uint32_t, std::vector<ValType>>>
      GlobalMap;

  /// The lowered shape of each merged-table slot, used by the runtime
  /// shape dispatch at abstract call_indirect sites (§6's "case for each
  /// possible shape in the table").
  struct SlotShape {
    std::vector<std::vector<ValType>> ParamReps, ResultReps;
    wasm::FuncType Sig;
  };
  std::vector<SlotShape> TableShapes;

  const typing::InstInfo *info(uint32_t ModIdx, const Inst *I) const {
    // The checker records annotations only for kinds on this allowlist; a
    // consult for any other kind means the two lists drifted apart —
    // fail loudly here rather than with a puzzling missing-annotation
    // error on well-typed input.
    assert(typing::infoConsumedByLowering(I->kind()) &&
           "lowering consults an instruction kind the checker does not "
           "annotate (update typing::infoConsumedByLowering)");
    const typing::InfoMap &IM = (*Infos)[ModIdx];
    auto It = IM.find(I);
    return It == IM.end() ? nullptr : &It->second;
  }
};

/// True if a type mentions an abstract pretype (variable or skolem)
/// anywhere that affects its flat representation.
bool containsAbstract(TypeRef T);
bool containsAbstractP(const Pretype *P) {
  switch (P->kind()) {
  case PretypeKind::Var:
  case PretypeKind::Skolem:
    return true;
  case PretypeKind::Prod:
    for (const Type &E : cast<ProdPT>(P)->elems())
      if (containsAbstract(E))
        return true;
    return false;
  case PretypeKind::Rec:
    return containsAbstract(cast<RecPT>(P)->body());
  case PretypeKind::ExLoc:
    return containsAbstract(cast<ExLocPT>(P)->body());
  default:
    return false;
  }
}
bool containsAbstract(TypeRef T) { return containsAbstractP(T.P); }

/// Lowers one instruction sequence (a function body or a global
/// initializer) into Wasm instructions, managing locals and scratches.
class FuncLowering {
public:
  FuncLowering(ProgramLowering &P, uint32_t ModIdx, TypeVarSizes Bounds,
               std::vector<ValType> ParamComps)
      : P(P), ModIdx(ModIdx), Bounds(std::move(Bounds)),
        NumParams(static_cast<uint32_t>(ParamComps.size())),
        ParamTypes(std::move(ParamComps)) {}

  ProgramLowering &P;
  uint32_t ModIdx;
  TypeVarSizes Bounds;
  uint32_t NumParams;
  std::vector<ValType> ParamTypes;
  std::vector<ValType> ExtraLocals; ///< Beyond the Wasm params.
  std::vector<uint32_t> RwLocalBase, RwLocalWords;
  /// Scratch-local indices, one stack of every-so-far-released local per
  /// value type. Indexed flat (I32=0x7f..F64=0x7c mapped to 0..3): the
  /// old std::map paid a node allocation per (function, type), which is
  /// pure churn at 10⁵ functions/s of cold admission.
  support::SmallVec<uint32_t, 8> FreePool[4];
  uint32_t Depth = 0;
  std::vector<uint32_t> RichLabels; ///< D_L per label, innermost at back.
  /// Set when this body emitted a call_indirect: only such bodies need the
  /// post-assembly type-index patch walk.
  bool HasCallIndirect = false;

  /// Reused stash scratch (see stash()): indices of spilled components.
  using Scratch = support::SmallVec<uint32_t, 8>;

  static unsigned poolIdx(ValType T) {
    return 0x7fu - static_cast<unsigned>(T);
  }
  uint32_t newLocal(ValType T) {
    ExtraLocals.push_back(T);
    return NumParams + static_cast<uint32_t>(ExtraLocals.size() - 1);
  }
  uint32_t acquire(ValType T) {
    auto &Pool = FreePool[poolIdx(T)];
    if (!Pool.empty()) {
      uint32_t L = Pool.back();
      Pool.pop_back();
      return L;
    }
    return newLocal(T);
  }
  void release(ValType T, uint32_t L) {
    FreePool[poolIdx(T)].push_back(L);
  }

  Expected<std::vector<ValType>> rep(TypeRef T) {
    return repOfType(T, Bounds);
  }

  static uint32_t wordsOf(const std::vector<ValType> &R) {
    uint32_t W = 0;
    for (ValType V : R)
      W += valTypeBytes(V) / 4;
    return W;
  }

  //===--------------------------------------------------------------------===//
  // Stack plumbing primitives
  //===--------------------------------------------------------------------===//

  /// Pops rep components (top of stack = last component) into scratch
  /// locals; returns them first-component-first. The index list lives in
  /// a SmallVec — realistic representations are a handful of components,
  /// so stashing allocates nothing.
  Scratch stash(const std::vector<ValType> &R, std::vector<WInst> &O) {
    Scratch Ls;
    for (size_t I = 0; I < R.size(); ++I)
      Ls.push_back(0);
    for (size_t I = R.size(); I > 0; --I) {
      Ls[I - 1] = acquire(R[I - 1]);
      O.push_back(WInst::idx(Op::LocalSet, Ls[I - 1]));
    }
    return Ls;
  }

  void unstash(const std::vector<ValType> &R, const Scratch &Ls,
               std::vector<WInst> &O, bool Release = true) {
    for (size_t I = 0; I < Ls.size(); ++I) {
      O.push_back(WInst::idx(Op::LocalGet, Ls[I]));
      if (Release)
        release(R[I], Ls[I]);
    }
  }

  void releaseAll(const std::vector<ValType> &R, const Scratch &Ls) {
    for (size_t I = 0; I < Ls.size(); ++I)
      release(R[I], Ls[I]);
  }

  /// Pops a value of representation R into the word-local range starting at
  /// WordBase (splitting 64-bit components).
  void spillToWords(uint32_t WordBase, const std::vector<ValType> &R,
                    std::vector<WInst> &O) {
    Scratch Ls = stash(R, O);
    uint32_t W = 0;
    for (size_t I = 0; I < R.size(); ++I) {
      switch (R[I]) {
      case ValType::I32:
        O.push_back(WInst::idx(Op::LocalGet, Ls[I]));
        O.push_back(WInst::idx(Op::LocalSet, WordBase + W));
        W += 1;
        break;
      case ValType::F32:
        O.push_back(WInst::idx(Op::LocalGet, Ls[I]));
        O.push_back(WInst::mk(Op::I32ReinterpretF32));
        O.push_back(WInst::idx(Op::LocalSet, WordBase + W));
        W += 1;
        break;
      case ValType::F64:
      case ValType::I64: {
        uint32_t S64 = acquire(ValType::I64);
        O.push_back(WInst::idx(Op::LocalGet, Ls[I]));
        if (R[I] == ValType::F64)
          O.push_back(WInst::mk(Op::I64ReinterpretF64));
        O.push_back(WInst::idx(Op::LocalSet, S64));
        O.push_back(WInst::idx(Op::LocalGet, S64));
        O.push_back(WInst::mk(Op::I32WrapI64));
        O.push_back(WInst::idx(Op::LocalSet, WordBase + W));
        O.push_back(WInst::idx(Op::LocalGet, S64));
        O.push_back(WInst::i64c(32));
        O.push_back(WInst::mk(Op::I64ShrU));
        O.push_back(WInst::mk(Op::I32WrapI64));
        O.push_back(WInst::idx(Op::LocalSet, WordBase + W + 1));
        release(ValType::I64, S64);
        W += 2;
        break;
      }
      }
    }
    releaseAll(R, Ls);
  }

  /// Pushes a value of representation R from the word locals at WordBase.
  void loadFromWords(uint32_t WordBase, const std::vector<ValType> &R,
                     std::vector<WInst> &O) {
    uint32_t W = 0;
    for (ValType V : R) {
      switch (V) {
      case ValType::I32:
        O.push_back(WInst::idx(Op::LocalGet, WordBase + W));
        W += 1;
        break;
      case ValType::F32:
        O.push_back(WInst::idx(Op::LocalGet, WordBase + W));
        O.push_back(WInst::mk(Op::F32ReinterpretI32));
        W += 1;
        break;
      case ValType::I64:
      case ValType::F64:
        O.push_back(WInst::idx(Op::LocalGet, WordBase + W));
        O.push_back(WInst::mk(Op::I64ExtendI32U));
        O.push_back(WInst::idx(Op::LocalGet, WordBase + W + 1));
        O.push_back(WInst::mk(Op::I64ExtendI32U));
        O.push_back(WInst::i64c(32));
        O.push_back(WInst::mk(Op::I64Shl));
        O.push_back(WInst::mk(Op::I64Or));
        if (V == ValType::F64)
          O.push_back(WInst::mk(Op::F64ReinterpretI64));
        W += 2;
        break;
      }
    }
  }

  /// Stores a value whose components sit in scratch locals Ls to memory at
  /// [BaseLocal] + ByteOff.
  void storeComps(uint32_t BaseLocal, uint32_t ByteOff,
                  const std::vector<ValType> &R, const Scratch &Ls,
                  std::vector<WInst> &O) {
    uint32_t Off = ByteOff;
    for (size_t I = 0; I < R.size(); ++I) {
      O.push_back(WInst::idx(Op::LocalGet, BaseLocal));
      O.push_back(WInst::idx(Op::LocalGet, Ls[I]));
      switch (R[I]) {
      case ValType::I32:
        O.push_back(WInst::mem(Op::I32Store, 2, Off));
        break;
      case ValType::I64:
        O.push_back(WInst::mem(Op::I64Store, 3, Off));
        break;
      case ValType::F32:
        O.push_back(WInst::mem(Op::F32Store, 2, Off));
        break;
      case ValType::F64:
        O.push_back(WInst::mem(Op::F64Store, 3, Off));
        break;
      }
      Off += valTypeBytes(R[I]);
    }
  }

  /// Pops a value of representation R from the stack and stores it at
  /// [BaseLocal] + ByteOff.
  void popStoreToMem(uint32_t BaseLocal, uint32_t ByteOff,
                     const std::vector<ValType> &R, std::vector<WInst> &O) {
    Scratch Ls = stash(R, O);
    storeComps(BaseLocal, ByteOff, R, Ls, O);
    releaseAll(R, Ls);
  }

  /// Pushes a value of representation R loaded from [BaseLocal] + ByteOff.
  void loadFromMem(uint32_t BaseLocal, uint32_t ByteOff,
                   const std::vector<ValType> &R, std::vector<WInst> &O) {
    uint32_t Off = ByteOff;
    for (ValType V : R) {
      O.push_back(WInst::idx(Op::LocalGet, BaseLocal));
      switch (V) {
      case ValType::I32:
        O.push_back(WInst::mem(Op::I32Load, 2, Off));
        break;
      case ValType::I64:
        O.push_back(WInst::mem(Op::I64Load, 3, Off));
        break;
      case ValType::F32:
        O.push_back(WInst::mem(Op::F32Load, 2, Off));
        break;
      case ValType::F64:
        O.push_back(WInst::mem(Op::F64Load, 3, Off));
        break;
      }
      Off += valTypeBytes(V);
    }
  }

  /// Coerces the value on top of the stack from representation RF to the
  /// raw-word representation of width TargetWords (the paper's boxing-free
  /// stack coercion into a bound-words shape).
  void compsToWords(const std::vector<ValType> &RF, uint32_t TargetWords,
                    std::vector<WInst> &O) {
    // Spill through fresh word scratches.
    Scratch Words;
    for (uint32_t I = 0; I < wordsOf(RF); ++I)
      Words.push_back(acquire(ValType::I32));
    // spillToWords needs a contiguous range; emulate with a per-component
    // loop instead.
    Scratch Ls = stash(RF, O);
    uint32_t W = 0;
    for (size_t I = 0; I < RF.size(); ++I) {
      switch (RF[I]) {
      case ValType::I32:
        O.push_back(WInst::idx(Op::LocalGet, Ls[I]));
        O.push_back(WInst::idx(Op::LocalSet, Words[W++]));
        break;
      case ValType::F32:
        O.push_back(WInst::idx(Op::LocalGet, Ls[I]));
        O.push_back(WInst::mk(Op::I32ReinterpretF32));
        O.push_back(WInst::idx(Op::LocalSet, Words[W++]));
        break;
      case ValType::I64:
      case ValType::F64: {
        uint32_t S64 = acquire(ValType::I64);
        O.push_back(WInst::idx(Op::LocalGet, Ls[I]));
        if (RF[I] == ValType::F64)
          O.push_back(WInst::mk(Op::I64ReinterpretF64));
        O.push_back(WInst::idx(Op::LocalSet, S64));
        O.push_back(WInst::idx(Op::LocalGet, S64));
        O.push_back(WInst::mk(Op::I32WrapI64));
        O.push_back(WInst::idx(Op::LocalSet, Words[W++]));
        O.push_back(WInst::idx(Op::LocalGet, S64));
        O.push_back(WInst::i64c(32));
        O.push_back(WInst::mk(Op::I64ShrU));
        O.push_back(WInst::mk(Op::I32WrapI64));
        O.push_back(WInst::idx(Op::LocalSet, Words[W++]));
        release(ValType::I64, S64);
        break;
      }
      }
    }
    releaseAll(RF, Ls);
    for (uint32_t I = 0; I < TargetWords; ++I) {
      if (I < Words.size())
        O.push_back(WInst::idx(Op::LocalGet, Words[I]));
      else
        O.push_back(WInst::i32c(0)); // Zero padding up to the bound.
    }
    for (uint32_t Wd : Words)
      release(ValType::I32, Wd);
  }

  /// Coerces SourceWords raw words on top of the stack back into the
  /// concrete representation RT.
  void wordsToComps(const std::vector<ValType> &RT, uint32_t SourceWords,
                    std::vector<WInst> &O) {
    std::vector<ValType> Words(SourceWords, ValType::I32);
    Scratch Ls = stash(Words, O);
    uint32_t W = 0;
    for (ValType V : RT) {
      switch (V) {
      case ValType::I32:
        O.push_back(WInst::idx(Op::LocalGet, Ls[W++]));
        break;
      case ValType::F32:
        O.push_back(WInst::idx(Op::LocalGet, Ls[W++]));
        O.push_back(WInst::mk(Op::F32ReinterpretI32));
        break;
      case ValType::I64:
      case ValType::F64:
        O.push_back(WInst::idx(Op::LocalGet, Ls[W]));
        O.push_back(WInst::mk(Op::I64ExtendI32U));
        O.push_back(WInst::idx(Op::LocalGet, Ls[W + 1]));
        O.push_back(WInst::mk(Op::I64ExtendI32U));
        O.push_back(WInst::i64c(32));
        O.push_back(WInst::mk(Op::I64Shl));
        O.push_back(WInst::mk(Op::I64Or));
        if (V == ValType::F64)
          O.push_back(WInst::mk(Op::F64ReinterpretI64));
        W += 2;
        break;
      }
    }
    releaseAll(Words, Ls);
  }

  /// Coerces the top-of-stack value from type From (under this function's
  /// bounds) to type To (under ToBounds — the callee's). No-op when the
  /// representations already agree.
  Status coerce(TypeRef From, TypeRef To, const TypeVarSizes &ToBounds,
                std::vector<WInst> &O) {
    Expected<std::vector<ValType>> RF = repOfType(From, Bounds);
    Expected<std::vector<ValType>> RT = repOfType(To, ToBounds);
    if (!RF)
      return RF.error();
    if (!RT)
      return RT.error();
    if (*RF == *RT)
      return Status::success();
    bool ToWords = isa<VarPT>(To.P) || isa<SkolemPT>(To.P);
    bool FromWords = isa<VarPT>(From.P) || isa<SkolemPT>(From.P);
    if (ToWords) {
      compsToWords(*RF, wordsOf(*RT), O);
      return Status::success();
    }
    if (FromWords) {
      // Drop the padding words beyond the concrete value's width first:
      // pop all source words, push back only the low ones as the value.
      std::vector<ValType> Words(RF->size(), ValType::I32);
      FuncLowering::Scratch Ls = stash(Words, O);
      uint32_t Need = wordsOf(*RT);
      for (uint32_t I = 0; I < Need; ++I)
        O.push_back(WInst::idx(Op::LocalGet, Ls[I]));
      releaseAll(Words, Ls);
      wordsToComps(*RT, Need, O);
      return Status::success();
    }
    // Structural: unwrap ∃ρ and rec, recurse through tuples.
    if (const auto *EF = dyn_cast<ExLocPT>(From.P))
      return coerce(EF->body(), To, ToBounds, O);
    if (const auto *ET = dyn_cast<ExLocPT>(To.P))
      return coerce(From, ET->body(), ToBounds, O);
    if (isa<ProdPT>(From.P) && isa<ProdPT>(To.P)) {
      const auto &EFs = cast<ProdPT>(From.P)->elems();
      const auto &ETs = cast<ProdPT>(To.P)->elems();
      if (EFs.size() != ETs.size())
        return Error("tuple arity mismatch in stack coercion");
      // Stash everything, then re-push element by element with coercion.
      std::vector<std::vector<ValType>> ERs;
      std::vector<FuncLowering::Scratch> ELs(EFs.size());
      for (const Type &E : EFs) {
        Expected<std::vector<ValType>> R = repOfType(E, Bounds);
        if (!R)
          return R.error();
        ERs.push_back(*R);
      }
      for (size_t I = EFs.size(); I > 0; --I)
        ELs[I - 1] = stash(ERs[I - 1], O);
      for (size_t I = 0; I < EFs.size(); ++I) {
        unstash(ERs[I], ELs[I], O);
        if (Status S = coerce(EFs[I], ETs[I], ToBounds, O); !S)
          return S;
      }
      return Status::success();
    }
    return Error("unsupported stack coercion between " +
                 std::to_string(RF->size()) + " and " +
                 std::to_string(RT->size()) + " components");
  }

  //===--------------------------------------------------------------------===//
  // Instruction lowering
  //===--------------------------------------------------------------------===//

  Expected<std::vector<WInst>> lowerSeq(const InstVec &Insts);
  Status lowerInst(const Inst &I, std::vector<WInst> &O, bool &Terminated);

  const typing::InstInfo *info(const Inst *I) { return P.info(ModIdx, I); }
};

//===----------------------------------------------------------------------===//
// FuncLowering implementation
//===----------------------------------------------------------------------===//

Expected<std::vector<WInst>> FuncLowering::lowerSeq(const InstVec &Insts) {
  std::vector<WInst> O;
  O.reserve(Insts.size() * 2);
  bool Terminated = false;
  for (const InstRef &I : Insts) {
    if (Terminated)
      break; // Dead code carries no checker annotations; skip it.
    if (Status S = lowerInst(*I, O, Terminated); !S)
      return S.error();
  }
  return O;
}

Status FuncLowering::lowerInst(const Inst &I, std::vector<WInst> &O,
                               bool &Terminated) {
  // The checker annotation is consulted lazily: most instructions (all
  // numerics and control flow) never need it, and the map probe per
  // instruction showed up in the cold-admission profile.
  switch (I.kind()) {
  //===---------------------------------------------------- numeric -------===//
  case InstKind::NumConst: {
    const auto *C = cast<NumConstInst>(&I);
    switch (C->numType()) {
    case NumType::I32:
    case NumType::U32:
      O.push_back(WInst::i32c(static_cast<int32_t>(C->bits())));
      break;
    case NumType::I64:
    case NumType::U64:
      O.push_back(WInst::i64c(static_cast<int64_t>(C->bits())));
      break;
    case NumType::F32: {
      WInst W(Op::F32Const);
      W.U64 = C->bits() & 0xffffffffu;
      O.push_back(W);
      break;
    }
    case NumType::F64: {
      WInst W(Op::F64Const);
      W.U64 = C->bits();
      O.push_back(W);
      break;
    }
    }
    return Status::success();
  }
  case InstKind::NumUnop: {
    const auto *U = cast<NumUnopInst>(&I);
    Expected<Op> K = mapUnop(U->numType(), U->op());
    if (!K)
      return K.error();
    O.push_back(WInst::mk(*K));
    return Status::success();
  }
  case InstKind::NumBinop: {
    const auto *B = cast<NumBinopInst>(&I);
    Expected<Op> K = mapBinop(B->numType(), B->op());
    if (!K)
      return K.error();
    O.push_back(WInst::mk(*K));
    return Status::success();
  }
  case InstKind::NumTestop: {
    const auto *T = cast<NumTestopInst>(&I);
    O.push_back(
        WInst::mk(numTypeBits(T->numType()) == 64 ? Op::I64Eqz : Op::I32Eqz));
    return Status::success();
  }
  case InstKind::NumRelop: {
    const auto *R = cast<NumRelopInst>(&I);
    Expected<Op> K = mapRelop(R->numType(), R->op());
    if (!K)
      return K.error();
    O.push_back(WInst::mk(*K));
    return Status::success();
  }
  case InstKind::NumCvt: {
    const auto *C = cast<NumCvtInst>(&I);
    Expected<std::optional<Op>> K = mapCvt(C->from(), C->to(), C->op());
    if (!K)
      return K.error();
    if (*K)
      O.push_back(WInst::mk(**K));
    return Status::success();
  }

  //===------------------------------------------------- parametric -------===//
  case InstKind::Unreachable:
    O.push_back(WInst::mk(Op::Unreachable));
    Terminated = true;
    return Status::success();
  case InstKind::Nop:
    return Status::success();
  case InstKind::Drop: {
    const typing::InstInfo *Inf = info(&I);
    if (!Inf)
      return Error("missing checker annotation at drop");
    Expected<std::vector<ValType>> R = rep(Inf->Operands[0]);
    if (!R)
      return R.error();
    for (size_t J = 0; J < R->size(); ++J)
      O.push_back(WInst::mk(Op::Drop));
    return Status::success();
  }
  case InstKind::Select: {
    const typing::InstInfo *Inf = info(&I);
    if (!Inf)
      return Error("missing checker annotation at select");
    Expected<std::vector<ValType>> R = rep(Inf->Operands[0]);
    if (!R)
      return R.error();
    if (R->size() == 1) {
      O.push_back(WInst::mk(Op::Select));
      return Status::success();
    }
    // Multi-component select: pop the condition, both values, and re-push
    // the chosen one through an if.
    uint32_t Cond = acquire(ValType::I32);
    O.push_back(WInst::idx(Op::LocalSet, Cond));
    FuncLowering::Scratch V2 = stash(*R, O);
    FuncLowering::Scratch V1 = stash(*R, O);
    std::vector<WInst> Then, Else;
    unstash(*R, V1, Then, /*Release=*/false);
    unstash(*R, V2, Else, /*Release=*/false);
    O.push_back(WInst::idx(Op::LocalGet, Cond));
    O.push_back(WInst::ifElse({{}, *R}, std::move(Then), std::move(Else)));
    releaseAll(*R, V1);
    releaseAll(*R, V2);
    release(ValType::I32, Cond);
    return Status::success();
  }

  //===------------------------------------------------ control flow ------===//
  case InstKind::Block:
  case InstKind::Loop: {
    const ArrowType &TF = I.kind() == InstKind::Block
                              ? cast<BlockInst>(&I)->arrow()
                              : cast<LoopInst>(&I)->arrow();
    const InstVec &Body = I.kind() == InstKind::Block
                              ? cast<BlockInst>(&I)->body()
                              : cast<LoopInst>(&I)->body();
    Expected<std::vector<ValType>> PR = repOfTypes(TF.Params, Bounds);
    Expected<std::vector<ValType>> RR = repOfTypes(TF.Results, Bounds);
    if (!PR || !RR)
      return Error("bad block type in lowering");
    ++Depth;
    RichLabels.push_back(Depth);
    Expected<std::vector<WInst>> B = lowerSeq(Body);
    RichLabels.pop_back();
    --Depth;
    if (!B)
      return B.error();
    wasm::FuncType BT{*PR, *RR};
    if (I.kind() == InstKind::Block)
      O.push_back(WInst::block(std::move(BT), std::move(*B)));
    else
      O.push_back(WInst::loop(std::move(BT), std::move(*B)));
    return Status::success();
  }
  case InstKind::If: {
    const auto *F = cast<IfInst>(&I);
    Expected<std::vector<ValType>> PR = repOfTypes(F->arrow().Params, Bounds);
    Expected<std::vector<ValType>> RR = repOfTypes(F->arrow().Results, Bounds);
    if (!PR || !RR)
      return Error("bad if type in lowering");
    ++Depth;
    RichLabels.push_back(Depth);
    Expected<std::vector<WInst>> T = lowerSeq(F->thenBody());
    Expected<std::vector<WInst>> E = lowerSeq(F->elseBody());
    RichLabels.pop_back();
    --Depth;
    if (!T)
      return T.error();
    if (!E)
      return E.error();
    O.push_back(
        WInst::ifElse({*PR, *RR}, std::move(*T), std::move(*E)));
    return Status::success();
  }
  case InstKind::Br:
  case InstKind::BrIf: {
    uint32_t D = cast<BrInst>(&I)->depth();
    if (D >= RichLabels.size())
      return Error("br depth out of range in lowering");
    uint32_t Target = RichLabels[RichLabels.size() - 1 - D];
    uint32_t WasmD = Depth - Target;
    O.push_back(WInst::idx(I.kind() == InstKind::Br ? Op::Br : Op::BrIf,
                           WasmD));
    if (I.kind() == InstKind::Br)
      Terminated = true;
    return Status::success();
  }
  case InstKind::BrTable: {
    const auto *B = cast<BrTableInst>(&I);
    std::vector<uint32_t> Ds;
    for (uint32_t D : B->depths()) {
      if (D >= RichLabels.size())
        return Error("br_table depth out of range in lowering");
      Ds.push_back(Depth - RichLabels[RichLabels.size() - 1 - D]);
    }
    if (B->defaultDepth() >= RichLabels.size())
      return Error("br_table default out of range in lowering");
    uint32_t Dd = Depth - RichLabels[RichLabels.size() - 1 - B->defaultDepth()];
    O.push_back(WInst::brTable(std::move(Ds), Dd));
    Terminated = true;
    return Status::success();
  }
  case InstKind::Return:
    O.push_back(WInst::mk(Op::Return));
    Terminated = true;
    return Status::success();

  //===---------------------------------------------------- locals --------===//
  case InstKind::GetLocal: {
    const auto *G = cast<GetLocalInst>(&I);
    const typing::InstInfo *Inf = info(&I);
    if (!Inf)
      return Error("missing checker annotation at get_local");
    Expected<std::vector<ValType>> R = rep(Inf->Results[0]);
    if (!R)
      return R.error();
    loadFromWords(RwLocalBase[G->index()], *R, O);
    return Status::success();
  }
  case InstKind::SetLocal:
  case InstKind::TeeLocal: {
    const auto *S = cast<VarIdxInst>(&I);
    const typing::InstInfo *Inf = info(&I);
    if (!Inf)
      return Error("missing checker annotation at set/tee_local");
    Expected<std::vector<ValType>> R = rep(Inf->Operands[0]);
    if (!R)
      return R.error();
    spillToWords(RwLocalBase[S->index()], *R, O);
    if (I.kind() == InstKind::TeeLocal)
      loadFromWords(RwLocalBase[S->index()], *R, O);
    return Status::success();
  }
  case InstKind::GetGlobal:
  case InstKind::SetGlobal: {
    const auto *G = cast<VarIdxInst>(&I);
    auto It = P.GlobalMap.find({ModIdx, G->index()});
    if (It == P.GlobalMap.end())
      return Error("global not lowered");
    uint32_t Base = It->second.first;
    const std::vector<ValType> &R = It->second.second;
    if (I.kind() == InstKind::GetGlobal) {
      for (uint32_t J = 0; J < R.size(); ++J)
        O.push_back(WInst::idx(Op::GlobalGet, Base + J));
    } else {
      for (size_t J = R.size(); J > 0; --J)
        O.push_back(WInst::idx(Op::GlobalSet, Base + static_cast<uint32_t>(J - 1)));
    }
    return Status::success();
  }

  //===------------------------------------ erased (type-level) ops -------===//
  case InstKind::Qualify:
  case InstKind::CapSplit:
  case InstKind::CapJoin:
  case InstKind::RefDemote:
  case InstKind::RefSplit:
  case InstKind::RefJoin:
  case InstKind::RecFold:
  case InstKind::RecUnfold:
  case InstKind::MemPack:
  case InstKind::Group:
  case InstKind::Ungroup:
  case InstKind::InstIdx:
    return Status::success();

  //===---------------------------------------------------- calls ---------===//
  case InstKind::CoderefI: {
    const auto *C = cast<CoderefInst>(&I);
    uint32_t Base = P.Out.TableBase.at(ModIdx);
    O.push_back(WInst::i32c(static_cast<int32_t>(Base + C->funcIndex())));
    return Status::success();
  }
  case InstKind::Call: {
    const auto *C = cast<CallInst>(&I);
    const typing::InstInfo *Inf = info(&I);
    if (!Inf)
      return Error("missing checker annotation at call");
    const Module &M = *P.Mods[ModIdx];
    const FunTypeRef &CalleeTy = M.Funcs[C->funcIndex()].Ty;
    uint32_t Target = P.Out.FuncMap.at({ModIdx, C->funcIndex()});

    // Fast path: shapes agree when there are no pretype/size quantifiers.
    bool NeedsCoercion = false;
    for (const Quant &Q : CalleeTy->quants())
      if (Q.K == QuantKind::Type || Q.K == QuantKind::Size)
        NeedsCoercion = true;
    if (!NeedsCoercion) {
      O.push_back(WInst::idx(Op::Call, Target));
      return Status::success();
    }

    TypeVarSizes CalleeBounds =
        typing::typeVarSizes(typing::buildKindCtx(CalleeTy->quants()));
    const std::vector<TypeRef> &ConcP = Inf->Operands;
    const std::vector<Type> &PolyP = CalleeTy->arrow().Params;
    // Stash all arguments (top of stack = last parameter).
    std::vector<std::vector<ValType>> Reps(ConcP.size());
    std::vector<FuncLowering::Scratch> Ls(ConcP.size());
    for (size_t J = ConcP.size(); J > 0; --J) {
      Expected<std::vector<ValType>> R = rep(ConcP[J - 1]);
      if (!R)
        return R.error();
      Reps[J - 1] = *R;
      Ls[J - 1] = stash(Reps[J - 1], O);
    }
    for (size_t J = 0; J < ConcP.size(); ++J) {
      unstash(Reps[J], Ls[J], O);
      if (Status S = coerce(ConcP[J], PolyP[J], CalleeBounds, O); !S)
        return S;
    }
    O.push_back(WInst::idx(Op::Call, Target));
    // Coerce results back: stash by the *callee's* reps, re-push coerced.
    const std::vector<TypeRef> &ConcR = Inf->Results;
    const std::vector<Type> &PolyR = CalleeTy->arrow().Results;
    std::vector<std::vector<ValType>> RReps(PolyR.size());
    std::vector<FuncLowering::Scratch> RLs(PolyR.size());
    for (size_t J = PolyR.size(); J > 0; --J) {
      Expected<std::vector<ValType>> R = repOfType(PolyR[J - 1], CalleeBounds);
      if (!R)
        return R.error();
      RReps[J - 1] = *R;
      RLs[J - 1] = stash(RReps[J - 1], O);
    }
    for (size_t J = 0; J < PolyR.size(); ++J) {
      unstash(RReps[J], RLs[J], O);
      // Reverse coercion: from the callee's poly shape to the caller's
      // concrete shape. Swap roles: treat poly as "from" (callee bounds).
      Expected<std::vector<ValType>> RF = repOfType(PolyR[J], CalleeBounds);
      Expected<std::vector<ValType>> RT = rep(ConcR[J]);
      if (!RF || !RT)
        return Error("bad result representation");
      if (*RF != *RT) {
        if (isa<VarPT>(PolyR[J].P) || isa<SkolemPT>(PolyR[J].P)) {
          std::vector<ValType> Words(RF->size(), ValType::I32);
          FuncLowering::Scratch WLs = stash(Words, O);
          uint32_t Need = wordsOf(*RT);
          for (uint32_t K = 0; K < Need; ++K)
            O.push_back(WInst::idx(Op::LocalGet, WLs[K]));
          releaseAll(Words, WLs);
          wordsToComps(*RT, Need, O);
        } else {
          return Error("unsupported result coercion");
        }
      }
    }
    return Status::success();
  }
  case InstKind::CallIndirect: {
    const typing::InstInfo *Inf = info(&I);
    if (!Inf)
      return Error("missing checker annotation at call_indirect");
    // Operands = params + coderef; the coderef type is fully instantiated.
    const TypeRef &CT = Inf->Operands.back();
    const auto *CR = dyn_cast<CoderefPT>(CT.P);
    if (!CR)
      return Error("call_indirect without a coderef operand");
    const ArrowType &Arrow = CR->funType()->arrow();

    bool Abstract = false;
    for (const Type &T : Arrow.Params)
      Abstract |= containsAbstract(T);
    for (const Type &T : Arrow.Results)
      Abstract |= containsAbstract(T);

    HasCallIndirect = true;
    if (!Abstract) {
      // Concrete signature: the table entry was compiled with exactly this
      // shape, so a plain call_indirect suffices.
      Expected<std::vector<ValType>> PR = repOfTypes(Arrow.Params, Bounds);
      Expected<std::vector<ValType>> RR = repOfTypes(Arrow.Results, Bounds);
      if (!PR || !RR)
        return Error("bad indirect call signature");
      WInst CI(Op::CallIndirect);
      CI.U32 = 0; // Patched later (needs module-level type interning).
      CI.BT = {*PR, *RR};
      O.push_back(CI);
      return Status::success();
    }

    // Abstract signature (the Fig 9 pattern: a coderef whose type mentions
    // an opened existential). Table entries were compiled against their
    // concrete shapes, so emit the paper's runtime shape dispatch: a case
    // per distinct table shape that coerces arguments from the abstract
    // (bound-words) representation to the entry's concrete shape and the
    // results back.
    std::vector<std::vector<ValType>> APar, ARes;
    for (const Type &T : Arrow.Params) {
      Expected<std::vector<ValType>> R = rep(T);
      if (!R)
        return R.error();
      APar.push_back(*R);
    }
    for (const Type &T : Arrow.Results) {
      Expected<std::vector<ValType>> R = rep(T);
      if (!R)
        return R.error();
      ARes.push_back(*R);
    }
    Expected<std::vector<ValType>> ARFlat = repOfTypes(Arrow.Results, Bounds);
    if (!ARFlat)
      return ARFlat.error();

    // The coderef (table index) is on top; then the args.
    uint32_t IdxL = acquire(ValType::I32);
    O.push_back(WInst::idx(Op::LocalSet, IdxL));
    std::vector<FuncLowering::Scratch> ALs(APar.size());
    for (size_t J = APar.size(); J > 0; --J)
      ALs[J - 1] = stash(APar[J - 1], O);

    // Group compatible table slots by lowered signature.
    const std::vector<ProgramLowering::SlotShape> &Shapes = P.TableShapes;
    std::vector<wasm::FuncType> GroupSigs;
    std::vector<const ProgramLowering::SlotShape *> GroupShape;
    std::vector<uint32_t> SlotToGroup(Shapes.size(), ~0u);
    for (size_t K = 0; K < Shapes.size(); ++K) {
      const auto &Sh = Shapes[K];
      if (Sh.ParamReps.size() != APar.size() ||
          Sh.ResultReps.size() != ARes.size())
        continue; // Incompatible arity: routed to the trap case.
      bool Compatible = true;
      for (size_t J = 0; J < APar.size() && Compatible; ++J)
        if (Sh.ParamReps[J] != APar[J] &&
            !(containsAbstract(Arrow.Params[J])))
          Compatible = false;
      for (size_t J = 0; J < ARes.size() && Compatible; ++J)
        if (Sh.ResultReps[J] != ARes[J] &&
            !(containsAbstract(Arrow.Results[J])))
          Compatible = false;
      if (!Compatible)
        continue;
      uint32_t G = ~0u;
      for (uint32_t GI = 0; GI < GroupSigs.size(); ++GI)
        if (GroupSigs[GI] == Sh.Sig)
          G = GI;
      if (G == ~0u) {
        G = static_cast<uint32_t>(GroupSigs.size());
        GroupSigs.push_back(Sh.Sig);
        GroupShape.push_back(&Sh);
      }
      SlotToGroup[K] = G;
    }

    size_t NG = GroupSigs.size();
    // Cases 0..NG-1 are the shape groups; case NG traps (bad index or
    // incompatible entry).
    std::vector<WInst> Cur;
    Cur.push_back(WInst::idx(Op::LocalGet, IdxL));
    {
      std::vector<uint32_t> Ts;
      for (size_t K = 0; K < Shapes.size(); ++K)
        Ts.push_back(SlotToGroup[K] == ~0u ? static_cast<uint32_t>(NG)
                                           : SlotToGroup[K]);
      Cur.push_back(WInst::brTable(std::move(Ts),
                                   static_cast<uint32_t>(NG)));
    }
    for (size_t G = 0; G <= NG; ++G) {
      std::vector<WInst> Next;
      Next.push_back(WInst::block({{}, {}}, std::move(Cur)));
      if (G == NG) {
        Next.push_back(WInst::mk(Op::Unreachable));
      } else {
        const auto &Sh = *GroupShape[G];
        for (size_t J = 0; J < APar.size(); ++J) {
          unstash(APar[J], ALs[J], Next, /*Release=*/false);
          if (APar[J] != Sh.ParamReps[J]) {
            // Abstract words → the entry's concrete shape.
            std::vector<ValType> Words(APar[J].size(), ValType::I32);
            FuncLowering::Scratch WLs = stash(Words, Next);
            uint32_t Need = wordsOf(Sh.ParamReps[J]);
            for (uint32_t K2 = 0; K2 < Need; ++K2)
              Next.push_back(WInst::idx(Op::LocalGet, WLs[K2]));
            releaseAll(Words, WLs);
            wordsToComps(Sh.ParamReps[J], Need, Next);
          }
        }
        Next.push_back(WInst::idx(Op::LocalGet, IdxL));
        WInst CI(Op::CallIndirect);
        CI.U32 = 0; // Patched later.
        CI.BT = Sh.Sig;
        Next.push_back(CI);
        // Coerce results back to the abstract representation.
        std::vector<FuncLowering::Scratch> RLs(ARes.size());
        for (size_t J = ARes.size(); J > 0; --J)
          RLs[J - 1] = stash(Sh.ResultReps[J - 1], Next);
        for (size_t J = 0; J < ARes.size(); ++J) {
          unstash(Sh.ResultReps[J], RLs[J], Next);
          if (ARes[J] != Sh.ResultReps[J])
            compsToWords(Sh.ResultReps[J],
                         static_cast<uint32_t>(ARes[J].size()), Next);
        }
        Next.push_back(
            WInst::idx(Op::Br, static_cast<uint32_t>(NG - G)));
      }
      Cur = std::move(Next);
    }
    O.push_back(WInst::block({{}, *ARFlat}, std::move(Cur)));
    for (size_t J = 0; J < APar.size(); ++J)
      releaseAll(APar[J], ALs[J]);
    release(ValType::I32, IdxL);
    return Status::success();
  }

  //===------------------------------------------------ mem.unpack --------===//
  case InstKind::MemUnpack: {
    const auto *MU = cast<MemUnpackInst>(&I);
    const typing::InstInfo *Inf = info(&I);
    if (!Inf)
      return Error("missing checker annotation at mem.unpack");
    const TypeRef &PackT = Inf->Operands.back();
    const auto *Ex = dyn_cast<ExLocPT>(PackT.P);
    if (!Ex)
      return Error("mem.unpack operand is not an existential package");
    Expected<std::vector<ValType>> PR =
        repOfTypes(MU->arrow().Params, Bounds);
    Expected<std::vector<ValType>> VR = rep(Ex->body());
    Expected<std::vector<ValType>> RR =
        repOfTypes(MU->arrow().Results, Bounds);
    if (!PR || !VR || !RR)
      return Error("bad mem.unpack types");
    std::vector<ValType> In = *PR;
    In.insert(In.end(), VR->begin(), VR->end());
    ++Depth;
    RichLabels.push_back(Depth);
    Expected<std::vector<WInst>> B = lowerSeq(MU->body());
    RichLabels.pop_back();
    --Depth;
    if (!B)
      return B.error();
    O.push_back(WInst::block({std::move(In), *RR}, std::move(*B)));
    return Status::success();
  }

  //===---------------------------------------------------- structs -------===//
  case InstKind::StructMalloc: {
    const auto *SM = cast<StructMallocInst>(&I);
    const typing::InstInfo *Inf = info(&I);
    if (!Inf)
      return Error("missing checker annotation at struct.malloc");
    const std::vector<TypeRef> &Fields = Inf->Operands;
    std::vector<uint32_t> Offs;
    uint32_t Off = 0;
    std::vector<bool> Map;
    for (size_t J = 0; J < Fields.size(); ++J) {
      Offs.push_back(Off);
      Expected<uint32_t> SB = slotBytes(SM->sizes()[J]);
      if (!SB)
        return SB.error();
      Expected<std::vector<bool>> FM = refMaskOfType(Fields[J], Bounds);
      if (!FM)
        return FM.error();
      while (Map.size() < Off / 4)
        Map.push_back(false);
      for (bool Bit : *FM)
        Map.push_back(Bit);
      while (Map.size() < (Off + *SB) / 4)
        Map.push_back(false);
      Off += *SB;
    }
    bool Lin = SM->qual().isLinConst();
    // Stash fields (last on top).
    std::vector<std::vector<ValType>> Reps(Fields.size());
    std::vector<FuncLowering::Scratch> Ls(Fields.size());
    for (size_t J = Fields.size(); J > 0; --J) {
      Expected<std::vector<ValType>> R = rep(Fields[J - 1]);
      if (!R)
        return R.error();
      Reps[J - 1] = *R;
      Ls[J - 1] = stash(Reps[J - 1], O);
    }
    O.push_back(WInst::i32c(static_cast<int32_t>(Off)));
    O.push_back(WInst::i32c(Lin ? static_cast<int32_t>(RtLinear) : 0));
    O.push_back(WInst::i32c(static_cast<int32_t>(packPtrMap(Map))));
    O.push_back(WInst::idx(Op::Call, P.Out.Runtime.AllocFunc));
    uint32_t Base = acquire(ValType::I32);
    O.push_back(WInst::idx(Op::LocalSet, Base));
    for (size_t J = 0; J < Fields.size(); ++J) {
      storeComps(Base, Offs[J], Reps[J], Ls[J], O);
      releaseAll(Reps[J], Ls[J]);
    }
    O.push_back(WInst::idx(Op::LocalGet, Base));
    release(ValType::I32, Base);
    return Status::success();
  }
  case InstKind::StructFree:
  case InstKind::ArrayFree:
    O.push_back(WInst::idx(Op::Call, P.Out.Runtime.FreeFunc));
    return Status::success();
  case InstKind::StructGet:
  case InstKind::StructSet:
  case InstKind::StructSwap: {
    const auto *SG = cast<StructIdxInst>(&I);
    const typing::InstInfo *Inf = info(&I);
    if (!Inf)
      return Error("missing checker annotation at struct access");
    const TypeRef &RefT = Inf->Operands[0];
    const auto *R = dyn_cast<RefPT>(RefT.P);
    const StructHT *H = R ? dyn_cast<StructHT>(R->heapType()) : nullptr;
    if (!H)
      return Error("struct access without struct reference type");
    uint32_t Off = 0;
    for (uint32_t J = 0; J < SG->fieldIndex(); ++J) {
      Expected<uint32_t> SB = slotBytes(H->fields()[J].Slot);
      if (!SB)
        return SB.error();
      Off += *SB;
    }
    const Type &FieldT = H->fields()[SG->fieldIndex()].T;
    Expected<std::vector<ValType>> FR = rep(FieldT);
    if (!FR)
      return FR.error();

    if (I.kind() == InstKind::StructGet) {
      uint32_t Base = acquire(ValType::I32);
      O.push_back(WInst::idx(Op::LocalTee, Base)); // ref stays on the stack
      loadFromMem(Base, Off, *FR, O);
      release(ValType::I32, Base);
      return Status::success();
    }

    // set / swap: stack is [ref, new-value].
    const TypeRef &NewT = Inf->Operands[1];
    Expected<std::vector<ValType>> NR = rep(NewT);
    if (!NR)
      return NR.error();
    FuncLowering::Scratch NLs = stash(*NR, O);
    uint32_t Base = acquire(ValType::I32);
    O.push_back(WInst::idx(Op::LocalTee, Base)); // ref stays
    if (I.kind() == InstKind::StructSwap)
      loadFromMem(Base, Off, *FR, O); // old value above the ref
    storeComps(Base, Off, *NR, NLs, O);
    releaseAll(*NR, NLs);

    // Maintain the header pointer map across strong updates.
    Expected<std::vector<bool>> OldM = refMaskOfType(FieldT, Bounds);
    Expected<std::vector<bool>> NewM = refMaskOfType(NewT, Bounds);
    if (!OldM || !NewM)
      return Error("bad pointer masks");
    Expected<uint32_t> SlotB = slotBytes(H->fields()[SG->fieldIndex()].Slot);
    if (!SlotB)
      return SlotB.error();
    uint32_t SlotWords = *SlotB / 4;
    uint32_t ClearMask = 0, SetMask = 0;
    for (uint32_t W = 0; W < SlotWords; ++W) {
      uint32_t Bit = Off / 4 + W;
      if (Bit >= 29)
        break;
      ClearMask |= 1u << Bit;
      if (W < NewM->size() && (*NewM)[W])
        SetMask |= 1u << Bit;
    }
    bool OldHasPtr = false;
    for (bool Bt : *OldM)
      OldHasPtr |= Bt;
    bool NewHasPtr = false;
    for (bool Bt : *NewM)
      NewHasPtr |= Bt;
    if (OldHasPtr || NewHasPtr) {
      // map = (map & ~Clear) | Set, at address base - 4.
      uint32_t Addr = acquire(ValType::I32);
      O.push_back(WInst::idx(Op::LocalGet, Base));
      O.push_back(WInst::i32c(4));
      O.push_back(WInst::mk(Op::I32Sub));
      O.push_back(WInst::idx(Op::LocalTee, Addr));
      O.push_back(WInst::idx(Op::LocalGet, Addr));
      O.push_back(WInst::mem(Op::I32Load, 2, 0));
      O.push_back(WInst::i32c(static_cast<int32_t>(~ClearMask)));
      O.push_back(WInst::mk(Op::I32And));
      O.push_back(WInst::i32c(static_cast<int32_t>(SetMask)));
      O.push_back(WInst::mk(Op::I32Or));
      O.push_back(WInst::mem(Op::I32Store, 2, 0));
      release(ValType::I32, Addr);
    }
    release(ValType::I32, Base);
    return Status::success();
  }

  //===---------------------------------------------------- variants ------===//
  case InstKind::VariantMalloc: {
    const auto *VM = cast<VariantMallocInst>(&I);
    const Type &PayloadT = VM->cases()[VM->tag()];
    Expected<std::vector<ValType>> PRp = rep(PayloadT);
    Expected<uint32_t> PB = byteSizeOfType(PayloadT, Bounds);
    Expected<std::vector<bool>> PM = refMaskOfType(PayloadT, Bounds);
    if (!PRp || !PB || !PM)
      return Error("bad variant payload type");
    std::vector<bool> Map = {false}; // Tag word.
    Map.insert(Map.end(), PM->begin(), PM->end());
    FuncLowering::Scratch Ls = stash(*PRp, O);
    O.push_back(WInst::i32c(static_cast<int32_t>(4 + *PB)));
    O.push_back(WInst::i32c(VM->qual().isLinConst() ? static_cast<int32_t>(RtLinear) : 0));
    O.push_back(WInst::i32c(static_cast<int32_t>(packPtrMap(Map))));
    O.push_back(WInst::idx(Op::Call, P.Out.Runtime.AllocFunc));
    uint32_t Base = acquire(ValType::I32);
    O.push_back(WInst::idx(Op::LocalSet, Base));
    O.push_back(WInst::idx(Op::LocalGet, Base));
    O.push_back(WInst::i32c(static_cast<int32_t>(VM->tag())));
    O.push_back(WInst::mem(Op::I32Store, 2, 0));
    storeComps(Base, 4, *PRp, Ls, O);
    releaseAll(*PRp, Ls);
    O.push_back(WInst::idx(Op::LocalGet, Base));
    release(ValType::I32, Base);
    return Status::success();
  }
  case InstKind::VariantCase: {
    const auto *VC = cast<VariantCaseInst>(&I);
    const auto *H = dyn_cast<VariantHT>(VC->heapType());
    if (!H)
      return Error("variant.case annotation is not a variant");
    size_t N = VC->arms().size();
    bool Lin = VC->qual().isLinConst();
    Expected<std::vector<ValType>> PR = repOfTypes(VC->arrow().Params, Bounds);
    Expected<std::vector<ValType>> RR =
        repOfTypes(VC->arrow().Results, Bounds);
    if (!PR || !RR)
      return Error("bad variant.case types");

    // Stack: [ref, params...]. Stash params, then the ref.
    FuncLowering::Scratch PLs = stash(*PR, O);
    uint32_t Base = acquire(ValType::I32);
    O.push_back(WInst::idx(Op::LocalSet, Base));

    uint32_t DOut = Depth + 1; // Wasm depth just inside the result block.
    // Innermost: the dispatch br_table.
    std::vector<WInst> Cur;
    Cur.push_back(WInst::idx(Op::LocalGet, Base));
    Cur.push_back(WInst::mem(Op::I32Load, 2, 0));
    {
      std::vector<uint32_t> Ts;
      for (size_t A = 0; A < N; ++A)
        Ts.push_back(static_cast<uint32_t>(A));
      Cur.push_back(WInst::brTable(std::move(Ts),
                                   static_cast<uint32_t>(N - 1)));
    }
    for (size_t A = 0; A < N; ++A) {
      std::vector<WInst> Next;
      Next.push_back(WInst::block({{}, {}}, std::move(Cur)));
      // Arm A's code: params, payload, free (linear), arm body.
      unstash(*PR, PLs, Next, /*Release=*/false);
      const Type &CaseT = H->cases()[A];
      Expected<std::vector<ValType>> CR = rep(CaseT);
      if (!CR)
        return CR.error();
      loadFromMem(Base, 4, *CR, Next);
      if (Lin) {
        Next.push_back(WInst::idx(Op::LocalGet, Base));
        Next.push_back(WInst::idx(Op::Call, P.Out.Runtime.FreeFunc));
      }
      uint32_t SavedDepth = Depth;
      Depth = DOut + static_cast<uint32_t>(N - 1 - A);
      RichLabels.push_back(DOut);
      Expected<std::vector<WInst>> ArmCode = lowerSeq(VC->arms()[A]);
      RichLabels.pop_back();
      Depth = SavedDepth;
      if (!ArmCode)
        return ArmCode.error();
      Next.insert(Next.end(), std::make_move_iterator(ArmCode->begin()),
                  std::make_move_iterator(ArmCode->end()));
      if (A + 1 < N)
        Next.push_back(WInst::idx(Op::Br, static_cast<uint32_t>(N - 1 - A)));
      Cur = std::move(Next);
    }
    O.push_back(WInst::block({{}, *RR}, std::move(Cur)));
    releaseAll(*PR, PLs);

    if (!Lin) {
      // The reference goes back *under* the results.
      FuncLowering::Scratch RLs = stash(*RR, O);
      O.push_back(WInst::idx(Op::LocalGet, Base));
      unstash(*RR, RLs, O);
    }
    release(ValType::I32, Base);
    return Status::success();
  }

  //===---------------------------------------------------- arrays --------===//
  case InstKind::ArrayMalloc: {
    const typing::InstInfo *Inf = info(&I);
    if (!Inf)
      return Error("missing checker annotation at array.malloc");
    const TypeRef &InitT = Inf->Operands[0];
    Expected<std::vector<ValType>> IR = rep(InitT);
    Expected<uint32_t> EB = byteSizeOfType(InitT, Bounds);
    Expected<std::vector<bool>> EM = refMaskOfType(InitT, Bounds);
    if (!IR || !EB || !EM)
      return Error("bad array element type");
    bool Lin = cast<ArrayMallocInst>(&I)->qual().isLinConst();
    uint32_t Len = acquire(ValType::I32);
    O.push_back(WInst::idx(Op::LocalSet, Len));
    FuncLowering::Scratch ILs = stash(*IR, O);
    // payload = 4 + len * elemBytes
    O.push_back(WInst::idx(Op::LocalGet, Len));
    O.push_back(WInst::i32c(static_cast<int32_t>(*EB)));
    O.push_back(WInst::mk(Op::I32Mul));
    O.push_back(WInst::i32c(4));
    O.push_back(WInst::mk(Op::I32Add));
    uint32_t Flags = (Lin ? static_cast<uint32_t>(RtLinear) : 0u) | RtArray |
                     (*EB << RtElemShift);
    O.push_back(WInst::i32c(static_cast<int32_t>(Flags)));
    O.push_back(WInst::i32c(static_cast<int32_t>(packPtrMap(*EM))));
    O.push_back(WInst::idx(Op::Call, P.Out.Runtime.AllocFunc));
    uint32_t Base = acquire(ValType::I32);
    O.push_back(WInst::idx(Op::LocalSet, Base));
    // Store the length.
    O.push_back(WInst::idx(Op::LocalGet, Base));
    O.push_back(WInst::idx(Op::LocalGet, Len));
    O.push_back(WInst::mem(Op::I32Store, 2, 0));
    // Fill loop.
    if (*EB > 0) {
      uint32_t Idx = acquire(ValType::I32);
      uint32_t Addr = acquire(ValType::I32);
      O.push_back(WInst::i32c(0));
      O.push_back(WInst::idx(Op::LocalSet, Idx));
      std::vector<WInst> LoopBody;
      LoopBody.push_back(WInst::idx(Op::LocalGet, Idx));
      LoopBody.push_back(WInst::idx(Op::LocalGet, Len));
      LoopBody.push_back(WInst::mk(Op::I32GeU));
      LoopBody.push_back(WInst::idx(Op::BrIf, 1));
      LoopBody.push_back(WInst::idx(Op::LocalGet, Base));
      LoopBody.push_back(WInst::idx(Op::LocalGet, Idx));
      LoopBody.push_back(WInst::i32c(static_cast<int32_t>(*EB)));
      LoopBody.push_back(WInst::mk(Op::I32Mul));
      LoopBody.push_back(WInst::mk(Op::I32Add));
      LoopBody.push_back(WInst::idx(Op::LocalSet, Addr));
      storeComps(Addr, 4, *IR, ILs, LoopBody);
      LoopBody.push_back(WInst::idx(Op::LocalGet, Idx));
      LoopBody.push_back(WInst::i32c(1));
      LoopBody.push_back(WInst::mk(Op::I32Add));
      LoopBody.push_back(WInst::idx(Op::LocalSet, Idx));
      LoopBody.push_back(WInst::idx(Op::Br, 0));
      std::vector<WInst> LoopBlk;
      LoopBlk.push_back(WInst::loop({{}, {}}, std::move(LoopBody)));
      O.push_back(WInst::block({{}, {}}, std::move(LoopBlk)));
      release(ValType::I32, Idx);
      release(ValType::I32, Addr);
    }
    releaseAll(*IR, ILs);
    O.push_back(WInst::idx(Op::LocalGet, Base));
    release(ValType::I32, Base);
    release(ValType::I32, Len);
    return Status::success();
  }
  case InstKind::ArrayGet:
  case InstKind::ArraySet: {
    const typing::InstInfo *Inf = info(&I);
    if (!Inf)
      return Error("missing checker annotation at array access");
    bool IsSet = I.kind() == InstKind::ArraySet;
    const TypeRef &RefT = Inf->Operands[0];
    const auto *R = dyn_cast<RefPT>(RefT.P);
    const ArrayHT *H = R ? dyn_cast<ArrayHT>(R->heapType()) : nullptr;
    if (!H)
      return Error("array access without array reference");
    Expected<std::vector<ValType>> ER = rep(H->elem());
    Expected<uint32_t> EB = byteSizeOfType(H->elem(), Bounds);
    if (!ER || !EB)
      return Error("bad array element type");
    FuncLowering::Scratch VLs;
    if (IsSet)
      VLs = stash(*ER, O);
    uint32_t Idx = acquire(ValType::I32);
    O.push_back(WInst::idx(Op::LocalSet, Idx));
    uint32_t Base = acquire(ValType::I32);
    O.push_back(WInst::idx(Op::LocalTee, Base)); // ref stays
    // Bounds check: idx >= len → trap.
    O.push_back(WInst::idx(Op::LocalGet, Idx));
    O.push_back(WInst::idx(Op::LocalGet, Base));
    O.push_back(WInst::mem(Op::I32Load, 2, 0));
    O.push_back(WInst::mk(Op::I32GeU));
    O.push_back(WInst::ifElse({{}, {}}, {WInst::mk(Op::Unreachable)}, {}));
    // addr = base + idx * elemBytes
    uint32_t Addr = acquire(ValType::I32);
    O.push_back(WInst::idx(Op::LocalGet, Base));
    O.push_back(WInst::idx(Op::LocalGet, Idx));
    O.push_back(WInst::i32c(static_cast<int32_t>(*EB)));
    O.push_back(WInst::mk(Op::I32Mul));
    O.push_back(WInst::mk(Op::I32Add));
    O.push_back(WInst::idx(Op::LocalSet, Addr));
    if (IsSet) {
      storeComps(Addr, 4, *ER, VLs, O);
      releaseAll(*ER, VLs);
    } else {
      loadFromMem(Addr, 4, *ER, O);
    }
    release(ValType::I32, Addr);
    release(ValType::I32, Base);
    release(ValType::I32, Idx);
    return Status::success();
  }

  //===------------------------------------------------ existentials ------===//
  case InstKind::ExistPack: {
    const typing::InstInfo *Inf = info(&I);
    const auto *EP = cast<ExistPackInst>(&I);
    const auto *H = dyn_cast<ExHT>(EP->heapType());
    if (!H || !Inf)
      return Error("bad exist.pack");
    // The cell stores the *abstract-shape* body value: every α position
    // occupies its full bound in raw words, so unpack (which only knows
    // the abstract shape) reads it back consistently regardless of the
    // witness.
    TypeVarSizes BodyBounds;
    BodyBounds.push_back(H->sizeUpper());
    BodyBounds.insert(BodyBounds.end(), Bounds.begin(), Bounds.end());
    Expected<std::vector<ValType>> AR = repOfType(H->body(), BodyBounds);
    Expected<uint32_t> AB = byteSizeOfType(H->body(), BodyBounds);
    Expected<std::vector<bool>> AM = refMaskOfType(H->body(), BodyBounds);
    if (!AR || !AB || !AM)
      return Error("bad existential body shape");
    const TypeRef &PayloadT = Inf->Operands[0];
    // Coerce concrete payload → abstract shape on the stack.
    FuncLowering *Self = this;
    {
      // Build the abstract body type with the binder opened as a skolem of
      // the declared bound, so coerce() sees the word targets.
      Subst Sub = Subst::onePretype(
          skolemPT(0, H->qualLower(), H->sizeUpper(), true));
      Type AbstractBody = Sub.rewrite(H->body());
      if (Status S = Self->coerce(PayloadT, AbstractBody, Bounds, O); !S)
        return S;
    }
    FuncLowering::Scratch Ls = stash(*AR, O);
    O.push_back(WInst::i32c(static_cast<int32_t>(*AB)));
    O.push_back(WInst::i32c(EP->qual().isLinConst() ? static_cast<int32_t>(RtLinear) : 0));
    O.push_back(WInst::i32c(static_cast<int32_t>(packPtrMap(*AM))));
    O.push_back(WInst::idx(Op::Call, P.Out.Runtime.AllocFunc));
    uint32_t Base = acquire(ValType::I32);
    O.push_back(WInst::idx(Op::LocalSet, Base));
    storeComps(Base, 0, *AR, Ls, O);
    releaseAll(*AR, Ls);
    O.push_back(WInst::idx(Op::LocalGet, Base));
    release(ValType::I32, Base);
    return Status::success();
  }
  case InstKind::ExistUnpack: {
    const auto *EU = cast<ExistUnpackInst>(&I);
    const auto *H = dyn_cast<ExHT>(EU->heapType());
    if (!H)
      return Error("bad exist.unpack annotation");
    bool Lin = EU->qual().isLinConst();
    Expected<std::vector<ValType>> PR = repOfTypes(EU->arrow().Params, Bounds);
    Expected<std::vector<ValType>> RR =
        repOfTypes(EU->arrow().Results, Bounds);
    if (!PR || !RR)
      return Error("bad exist.unpack types");
    TypeVarSizes BodyBounds;
    BodyBounds.push_back(H->sizeUpper());
    BodyBounds.insert(BodyBounds.end(), Bounds.begin(), Bounds.end());
    Expected<std::vector<ValType>> AR = repOfType(H->body(), BodyBounds);
    if (!AR)
      return Error("bad existential body shape");

    FuncLowering::Scratch PLs = stash(*PR, O);
    uint32_t Base = acquire(ValType::I32);
    O.push_back(WInst::idx(Op::LocalSet, Base));

    std::vector<WInst> BodyPre;
    unstash(*PR, PLs, BodyPre, /*Release=*/false);
    loadFromMem(Base, 0, *AR, BodyPre);
    if (Lin) {
      BodyPre.push_back(WInst::idx(Op::LocalGet, Base));
      BodyPre.push_back(WInst::idx(Op::Call, P.Out.Runtime.FreeFunc));
    }
    ++Depth;
    RichLabels.push_back(Depth);
    Expected<std::vector<WInst>> B = lowerSeq(EU->body());
    RichLabels.pop_back();
    --Depth;
    if (!B)
      return B.error();
    BodyPre.insert(BodyPre.end(), std::make_move_iterator(B->begin()),
                   std::make_move_iterator(B->end()));
    O.push_back(WInst::block({{}, *RR}, std::move(BodyPre)));
    releaseAll(*PR, PLs);
    if (!Lin) {
      FuncLowering::Scratch RLs = stash(*RR, O);
      O.push_back(WInst::idx(Op::LocalGet, Base));
      unstash(*RR, RLs, O);
    }
    release(ValType::I32, Base);
    return Status::success();
  }
  }
  return Error("unhandled instruction in lowering");
}

//===----------------------------------------------------------------------===//
// ProgramLowering implementation
//===----------------------------------------------------------------------===//

Expected<LoweredProgram> ProgramLowering::run() {
  if (Infos) {
    // Single-check cold path: the caller already ran typing::checkModules
    // with InfoMap recording (same process, same instruction pointers), so
    // lowering performs zero checkModule calls.
    if (Infos->size() != Mods.size())
      return Error("InfoMap hand-off does not match the module list");
  } else {
    OwnInfos.resize(Mods.size());
    for (size_t I = 0; I < Mods.size(); ++I)
      if (Status S = typing::checkModule(*Mods[I], &OwnInfos[I]); !S)
        return Error("module '" + Mods[I]->Name + "': " +
                     S.error().message());
    Infos = &OwnInfos;
  }

  // Pass 1: run imports through the shared batch resolution phase
  // (link/Resolve.h) — the same provider selection, shadowing, and
  // canonical-pointer type checks as link::instantiate. Function imports
  // without an in-set provider become Wasm imports (host-satisfiable);
  // unresolved global imports are resolution errors.
  std::optional<std::vector<link::ResolvedModule>> OwnResolved;
  if (!Resolved) {
    Expected<std::vector<link::ResolvedModule>> R = link::resolveImports(
        Mods, link::ResolveOptions{link::ResolveMode::Batch,
                                   /*AllowUnresolvedFuncs=*/true});
    if (!R)
      return R.error();
    OwnResolved = R.take();
    Resolved = &*OwnResolved;
  }
  if (Resolved->size() != Mods.size())
    return Error("import resolution does not match the module list");

  struct PendingImport {
    uint32_t Mod, Func;
    ImportName Name;
  };
  std::vector<PendingImport> WasmImports;
  std::map<std::pair<uint32_t, uint32_t>, std::pair<uint32_t, uint32_t>>
      ResolvedTo;
  for (uint32_t MI = 0; MI < Mods.size(); ++MI) {
    const Module &M = *Mods[MI];
    const link::ResolvedModule &R = (*Resolved)[MI];
    size_t NextImp = 0;
    for (uint32_t FI = 0; FI < M.Funcs.size(); ++FI) {
      const Function &F = M.Funcs[FI];
      if (!F.isImport())
        continue;
      if (NextImp >= R.FuncImports.size())
        return Error("import resolution does not match module '" + M.Name +
                     "'");
      const auto &P = R.FuncImports[NextImp++];
      if (P.first == link::ResolvedModule::Unresolved)
        WasmImports.push_back({MI, FI, *F.Import});
      else
        ResolvedTo[{MI, FI}] = P;
    }
  }

  // Emit Wasm imports first (they occupy the low function indices).
  for (const PendingImport &PI : WasmImports) {
    const Function &F = Mods[PI.Mod]->Funcs[PI.Func];
    TypeVarSizes B = typing::typeVarSizes(typing::buildKindCtx(F.Ty->quants()));
    Expected<std::vector<ValType>> PR = repOfTypes(F.Ty->arrow().Params, B);
    Expected<std::vector<ValType>> RR = repOfTypes(F.Ty->arrow().Results, B);
    if (!PR || !RR)
      return Error("cannot lower host import signature");
    uint32_t TI = Out.Module.addType({*PR, *RR});
    Out.FuncMap[{PI.Mod, PI.Func}] =
        static_cast<uint32_t>(Out.Module.ImportFuncs.size());
    Out.Module.ImportFuncs.push_back({PI.Name.Module, PI.Name.Name, TI});
  }

  // Runtime (allocator) functions come right after the imports.
  Out.Runtime = emitRuntime(Out.Module);

  // Assign indices for every defined function, module by module.
  uint32_t NextIdx = Out.Module.numFuncs();
  for (uint32_t MI = 0; MI < Mods.size(); ++MI) {
    const Module &M = *Mods[MI];
    for (uint32_t FI = 0; FI < M.Funcs.size(); ++FI)
      if (!M.Funcs[FI].isImport())
        Out.FuncMap[{MI, FI}] = NextIdx++;
  }
  // Resolve cross-module imports to their providers' indices.
  for (auto &[Key, Provider] : ResolvedTo) {
    auto It = Out.FuncMap.find(Provider);
    if (It == Out.FuncMap.end())
      return Error("import resolves to an unlowered function");
    Out.FuncMap[Key] = It->second;
  }

  // Table: concatenate all module tables, recording each slot's lowered
  // shape for the abstract call_indirect dispatch.
  for (uint32_t MI = 0; MI < Mods.size(); ++MI) {
    Out.TableBase[MI] =
        static_cast<uint32_t>(Out.Module.TableElems.size());
    for (uint32_t E : Mods[MI]->Tab.Entries) {
      Out.Module.TableElems.push_back(Out.FuncMap.at({MI, E}));
      const Function &F = Mods[MI]->Funcs[E];
      TypeVarSizes B =
          typing::typeVarSizes(typing::buildKindCtx(F.Ty->quants()));
      SlotShape Sh;
      for (const Type &T : F.Ty->arrow().Params) {
        Expected<std::vector<ValType>> R = repOfType(T, B);
        if (!R)
          return R.error();
        Sh.Sig.Params.insert(Sh.Sig.Params.end(), R->begin(), R->end());
        Sh.ParamReps.push_back(*R);
      }
      for (const Type &T : F.Ty->arrow().Results) {
        Expected<std::vector<ValType>> R = repOfType(T, B);
        if (!R)
          return R.error();
        Sh.Sig.Results.insert(Sh.Sig.Results.end(), R->begin(), R->end());
        Sh.ResultReps.push_back(*R);
      }
      TableShapes.push_back(std::move(Sh));
    }
  }

  // Globals.
  for (uint32_t MI = 0; MI < Mods.size(); ++MI) {
    const Module &M = *Mods[MI];
    size_t NextImp = 0;
    for (uint32_t GI = 0; GI < M.Globals.size(); ++GI) {
      const Global &G = M.Globals[GI];
      if (G.isImport()) {
        // Providers are earlier modules (resolution invariant), so their
        // GlobalMap entries already exist.
        if (NextImp >= (*Resolved)[MI].GlobalImports.size())
          return Error("import resolution does not match module '" + M.Name +
                       "'");
        GlobalMap[{MI, GI}] =
            GlobalMap.at((*Resolved)[MI].GlobalImports[NextImp++]);
        continue;
      }
      Expected<std::vector<ValType>> R =
          repOfPretype(G.P, TypeVarSizes{});
      if (!R)
        return R.error();
      uint32_t Base = static_cast<uint32_t>(Out.Module.Globals.size());
      Expected<std::vector<bool>> Mask =
          refMaskOfType(Type(G.P, Qual::unr()), TypeVarSizes{});
      if (!Mask)
        return Mask.error();
      uint32_t W = 0;
      for (ValType V : *R) {
        std::vector<WInst> Init;
        switch (V) {
        case ValType::I32:
          Init = {WInst::i32c(0)};
          if (W < Mask->size() && (*Mask)[W])
            Out.RefGlobals.push_back(
                static_cast<uint32_t>(Out.Module.Globals.size()));
          break;
        case ValType::I64:
          Init = {WInst::i64c(0)};
          break;
        case ValType::F32: {
          WInst C(Op::F32Const);
          Init = {C};
          break;
        }
        case ValType::F64: {
          WInst C(Op::F64Const);
          Init = {C};
          break;
        }
        }
        Out.Module.Globals.push_back({V, true, std::move(Init)});
        W += valTypeBytes(V) / 4;
      }
      GlobalMap[{MI, GI}] = {Base, *R};
    }
  }

  // Lower every defined function body. Given the frozen program maps
  // built above (FuncMap, TableBase, GlobalMap, TableShapes, Runtime) and
  // the read-only InfoMaps, bodies are independent of each other — they
  // never touch the module type table (call_indirect type indices are
  // patched in a later pass precisely so body lowering stays pure) — so
  // they lower (module, function)-parallel over the pool when one is
  // provided. Per-function results are then assembled strictly in
  // (module, function) index order: the lowered module is byte-identical
  // for any pool size, and the reported error is the lowest-indexed
  // failure — exactly what the sequential loop would have reported.
  struct FnWork {
    uint32_t Mod, Func;
  };
  struct FnResult {
    std::vector<ValType> PR, RR;
    std::vector<ValType> Locals;
    std::vector<WInst> Code;
    bool HasCallIndirect = false;
    Status S = Status::success();
  };
  std::vector<FnWork> Work;
  for (uint32_t MI = 0; MI < Mods.size(); ++MI)
    for (uint32_t FI = 0; FI < Mods[MI]->Funcs.size(); ++FI)
      if (!Mods[MI]->Funcs[FI].isImport())
        Work.push_back({MI, FI});
  std::vector<FnResult> Results(Work.size());
  // Lowest-index failure seen so far: tasks *above* it skip (their result
  // can never be reported), tasks at or below always run, so the error
  // the assembly loop reports is exactly the sequential one regardless of
  // pool scheduling — cancellation without losing determinism.
  std::atomic<size_t> FirstFail{SIZE_MAX};

  auto lowerOne = [&](size_t W) {
    if (W > FirstFail.load(std::memory_order_relaxed))
      return; // A lower-indexed body already failed; this one is dead.
    static obs::Counter FunctionsLowered("lower.functions_lowered");
    FunctionsLowered.inc();
    OBS_SPAN("lower_fn", Work[W].Mod, Work[W].Func);
    const uint32_t MI = Work[W].Mod, FI = Work[W].Func;
    const Module &M = *Mods[MI];
    const Function &F = M.Funcs[FI];
    FnResult &R = Results[W];
    typing::KindCtx Kinds = typing::buildKindCtx(F.Ty->quants());
    TypeVarSizes Bounds = typing::typeVarSizes(Kinds);
    Expected<std::vector<ValType>> PR =
        repOfTypes(F.Ty->arrow().Params, Bounds);
    Expected<std::vector<ValType>> RR =
        repOfTypes(F.Ty->arrow().Results, Bounds);
    if (!PR || !RR) {
      R.S = Error("cannot lower signature of function " +
                  std::to_string(FI) + " in '" + M.Name + "'");
      return;
    }

    FuncLowering FL(*this, MI, Bounds, *PR);
    // Word locals for every RichWasm local (params first).
    std::vector<WInst> Prologue;
    uint32_t ParamComp = 0;
    for (const Type &PT : F.Ty->arrow().Params) {
      Expected<std::vector<ValType>> Rep = FL.rep(PT);
      if (!Rep) {
        R.S = Rep.error();
        return;
      }
      const ir::Size *Slot = typing::sizeOfType(PT, Kinds);
      NormalSize NS = Slot->norm();
      if (!NS.isConst()) {
        R.S = Error("size-polymorphic parameter slots are unsupported");
        return;
      }
      uint32_t Words = static_cast<uint32_t>((NS.Const + 31) / 32);
      uint32_t Base =
          FL.NumParams + static_cast<uint32_t>(FL.ExtraLocals.size());
      for (uint32_t WJ = 0; WJ < Words; ++WJ)
        FL.ExtraLocals.push_back(ValType::I32);
      FL.RwLocalBase.push_back(Base);
      FL.RwLocalWords.push_back(Words);
      // Prologue: copy the natural parameter components into the words.
      for (uint32_t CJ = 0; CJ < Rep->size(); ++CJ)
        Prologue.push_back(WInst::idx(Op::LocalGet, ParamComp + CJ));
      FL.spillToWords(Base, *Rep, Prologue);
      ParamComp += static_cast<uint32_t>(Rep->size());
    }
    for (const ir::SizeRef &Sz : F.Locals) {
      NormalSize NS = normalizeSize(Sz);
      if (!NS.isConst()) {
        R.S = Error("size-polymorphic local slots are unsupported");
        return;
      }
      uint32_t Words = static_cast<uint32_t>((NS.Const + 31) / 32);
      uint32_t Base =
          FL.NumParams + static_cast<uint32_t>(FL.ExtraLocals.size());
      for (uint32_t WJ = 0; WJ < Words; ++WJ)
        FL.ExtraLocals.push_back(ValType::I32);
      FL.RwLocalBase.push_back(Base);
      FL.RwLocalWords.push_back(Words);
    }

    Expected<std::vector<WInst>> Body = FL.lowerSeq(F.Body);
    if (!Body) {
      R.S = Error("in function " + std::to_string(FI) + " of '" + M.Name +
                  "': " + Body.error().message());
      return;
    }
    std::vector<WInst> Full = std::move(Prologue);
    Full.insert(Full.end(), std::make_move_iterator(Body->begin()),
                std::make_move_iterator(Body->end()));
    R.PR = std::move(*PR);
    R.RR = std::move(*RR);
    R.Locals = std::move(FL.ExtraLocals);
    R.Code = std::move(Full);
    R.HasCallIndirect = FL.HasCallIndirect;
  };

  auto recordFailure = [&](size_t W) {
    if (Results[W].S)
      return;
    size_t Cur = FirstFail.load(std::memory_order_relaxed);
    while (W < Cur && !FirstFail.compare_exchange_weak(
                          Cur, W, std::memory_order_relaxed)) {
    }
  };

  if (Pool && Work.size() > 1) {
    // Workers replicate the calling thread's ambient arena: body lowering
    // interns (sizes, substituted types) and every borrowed view must
    // name the active arena (the debug assertion behind ir::TypeRef).
    TypeArena &Ambient = TypeArena::current();
    Pool->parallelFor(Work.size(), [&](size_t W) {
      ArenaScope Scope(Ambient);
      lowerOne(W);
      recordFailure(W);
    });
  } else {
    for (size_t W = 0; W < Work.size(); ++W) {
      lowerOne(W);
      if (!Results[W].S)
        break; // Sequential early-exit; later slots report unlowered.
    }
  }

  std::vector<uint32_t> NeedsIndirectPatch;
  for (size_t W = 0; W < Work.size(); ++W) {
    FnResult &R = Results[W];
    if (!R.S)
      return R.S.error();
    uint32_t TI = Out.Module.addType({R.PR, R.RR});
    if (R.HasCallIndirect)
      NeedsIndirectPatch.push_back(
          static_cast<uint32_t>(Out.Module.Funcs.size()));
    Out.Module.Funcs.push_back(
        {TI, std::move(R.Locals), std::move(R.Code)});
    assert(Out.Module.numFuncs() - 1 ==
               Out.FuncMap.at({Work[W].Mod, Work[W].Func}) &&
           "function index assignment drifted");
  }

  // Global initializers and start functions run from __rw_init.
  std::vector<WInst> InitBody;
  for (uint32_t MI = 0; MI < Mods.size(); ++MI) {
    const Module &M = *Mods[MI];
    for (uint32_t GI = 0; GI < M.Globals.size(); ++GI) {
      const Global &G = M.Globals[GI];
      if (G.isImport() || G.Init.empty())
        continue;
      FuncLowering FL(*this, MI, TypeVarSizes{}, {});
      Expected<std::vector<WInst>> Code = FL.lowerSeq(G.Init);
      if (!Code)
        return Error("in global initializer of '" + M.Name + "': " +
                     Code.error().message());
      // Wrap as its own function so locals are private.
      auto [Base, Reps] = GlobalMap.at({MI, GI});
      std::vector<WInst> Body = std::move(*Code);
      for (size_t J = Reps.size(); J > 0; --J)
        Body.push_back(
            WInst::idx(Op::GlobalSet, Base + static_cast<uint32_t>(J - 1)));
      uint32_t TI = Out.Module.addType({{}, {}});
      uint32_t Idx = Out.Module.numFuncs();
      if (FL.HasCallIndirect)
        NeedsIndirectPatch.push_back(
            static_cast<uint32_t>(Out.Module.Funcs.size()));
      Out.Module.Funcs.push_back({TI, FL.ExtraLocals, std::move(Body)});
      InitBody.push_back(WInst::idx(Op::Call, Idx));
    }
  }
  for (uint32_t MI = 0; MI < Mods.size(); ++MI)
    if (Mods[MI]->Start)
      InitBody.push_back(
          WInst::idx(Op::Call, Out.FuncMap.at({MI, *Mods[MI]->Start})));

  // Patch call_indirect type indices (they need module-level type
  // interning, which body lowering must not touch — that is what keeps
  // bodies pure for the parallel loop). Runs after *all* bodies exist —
  // function bodies and global initializers alike (previously the pass
  // ran before the initializers were lowered, so a call_indirect inside
  // one kept its placeholder type index) — and walks only the bodies
  // that actually emitted a call_indirect (flagged during lowering).
  {
    std::function<void(std::vector<WInst> &)> Fix =
        [&](std::vector<WInst> &Body) {
          for (WInst &W : Body) {
            if (W.K == Op::CallIndirect)
              W.U32 = Out.Module.addType(W.BT);
            Fix(W.Body);
            Fix(W.Else);
          }
        };
    for (uint32_t FIdx : NeedsIndirectPatch)
      Fix(Out.Module.Funcs[FIdx].Body);
  }
  if (!InitBody.empty()) {
    uint32_t TI = Out.Module.addType({{}, {}});
    uint32_t Idx = Out.Module.numFuncs();
    Out.Module.Funcs.push_back({TI, {}, std::move(InitBody)});
    Out.Module.Start = Idx;
  }

  // Exports.
  for (uint32_t MI = 0; MI < Mods.size(); ++MI) {
    const Module &M = *Mods[MI];
    for (uint32_t FI = 0; FI < M.Funcs.size(); ++FI)
      for (const std::string &E : M.Funcs[FI].Exports) {
        uint32_t Idx = Out.FuncMap.at({MI, FI});
        std::string Full;
        Full.reserve(M.Name.size() + 1 + E.size());
        Full += M.Name;
        Full += '.';
        Full += E;
        Out.Exports[Full] = Idx;
        Out.Module.Exports.push_back(
            {std::move(Full), wasm::ExportKind::Func, Idx});
      }
  }
  return std::move(Out);
}

} // namespace

Expected<LoweredProgram>
rw::lower::lowerProgram(const std::vector<const Module *> &Mods,
                        const LowerOptions &Opts) {
  // Lowering working-state allocation seam: surfaces as a clean Lower-stage
  // rejection of the admission.
  if (RW_FAULT_POINT(rw::support::fault::Seam::LowerAlloc))
    return Error("injected allocation failure in lowerProgram");
  OBS_SPAN("lower", Mods.size());
  // Lowering checks modules (typing::checkModule, whose typeEquals is a
  // pointer comparison — or consumes InfoMaps recorded over canonical
  // nodes) and rewrites their types, so all modules of one program must
  // share one arena — enforce it, then intern everything the lowering
  // builds into that shared arena.
  std::optional<ir::ArenaScope> Scope;
  if (!Mods.empty() && Mods.front()->Arena) {
    const std::shared_ptr<ir::TypeArena> &Shared = Mods.front()->Arena;
    for (const Module *M : Mods)
      if (M->Arena && M->Arena.get() != Shared.get())
        return Error("modules '" + Mods.front()->Name + "' and '" + M->Name +
                     "' use different type arenas; lowered programs must "
                     "intern their types into one shared arena");
    Scope.emplace(*Shared);
  }
  ProgramLowering PL(Mods, Opts);
  return PL.run();
}
