//===- lower/Lower.h - RichWasm → Wasm compiler -----------------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The type-directed compiler of §6. It consumes the type information the
/// checker annotates onto each instruction (InfoMap) and produces one Wasm
/// module for a whole linked program:
///
///  * all type-level instructions (qualify, cap.*, ref.*, mem.pack,
///    rec.fold/unfold, seq.group/ungroup, inst) are erased;
///  * a RichWasm local of size s becomes ⌈s/32⌉ i32 locals, read/written
///    with type-directed splitting and recombination;
///  * both RichWasm memories share one flat Wasm memory managed by the
///    emitted free-list allocator; object headers carry pointer maps for
///    the host-assisted collector;
///  * polymorphic calls perform the paper's stack coercions between
///    concrete and bound-word representations;
///  * cross-module imports are resolved to direct calls (whole-program),
///    unresolved ones become Wasm imports satisfiable by the host.
///
/// Invariant: each Inst node must occur at most once per program (the
/// InfoMap is keyed by node identity); all in-tree frontends comply.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_LOWER_LOWER_H
#define RICHWASM_LOWER_LOWER_H

#include "ir/Module.h"
#include "link/Resolve.h"
#include "lower/Runtime.h"
#include "support/Error.h"
#include "wasm/WasmAst.h"

#include <map>

namespace rw::lower {

struct LoweredProgram {
  wasm::WModule Module;
  RuntimeLayout Runtime;
  /// Wasm global indices that hold heap references (GC roots).
  std::vector<uint32_t> RefGlobals;
  /// "module.export" → Wasm function index.
  std::map<std::string, uint32_t> Exports;
  /// (module index, RichWasm function index) → Wasm function index.
  std::map<std::pair<uint32_t, uint32_t>, uint32_t> FuncMap;
  /// Module index → base offset of its entries in the merged table.
  std::map<uint32_t, uint32_t> TableBase;
};

/// Type-checks and lowers a whole program (modules in link order; imports
/// resolve against earlier modules, like link::instantiate).
///
/// Import matching is the batch resolution phase of link/Resolve.h —
/// provider selection, shadowing, and the canonical-pointer import type
/// check are shared with link::instantiate, with
/// ResolveOptions::AllowUnresolvedFuncs semantics: a function import no
/// module provides becomes a Wasm import satisfiable by the host. Pass
/// \p Resolved to reuse a resolution the caller (link::instantiateLowered)
/// already computed; null resolves here.
Expected<LoweredProgram>
lowerProgram(const std::vector<const ir::Module *> &Mods,
             const std::vector<link::ResolvedModule> *Resolved = nullptr);

} // namespace rw::lower

#endif // RICHWASM_LOWER_LOWER_H
