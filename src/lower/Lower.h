//===- lower/Lower.h - RichWasm → Wasm compiler -----------------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The type-directed compiler of §6. It consumes the type information the
/// checker annotates onto each instruction (InfoMap) and produces one Wasm
/// module for a whole linked program:
///
///  * all type-level instructions (qualify, cap.*, ref.*, mem.pack,
///    rec.fold/unfold, seq.group/ungroup, inst) are erased;
///  * a RichWasm local of size s becomes ⌈s/32⌉ i32 locals, read/written
///    with type-directed splitting and recombination;
///  * both RichWasm memories share one flat Wasm memory managed by the
///    emitted free-list allocator; object headers carry pointer maps for
///    the host-assisted collector;
///  * polymorphic calls perform the paper's stack coercions between
///    concrete and bound-word representations;
///  * cross-module imports are resolved to direct calls (whole-program),
///    unresolved ones become Wasm imports satisfiable by the host.
///
/// Invariant: each Inst node must occur at most once per program (the
/// InfoMap is keyed by node identity); all in-tree frontends comply.
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_LOWER_LOWER_H
#define RICHWASM_LOWER_LOWER_H

#include "ir/Module.h"
#include "link/Resolve.h"
#include "lower/Runtime.h"
#include "support/Error.h"
#include "typing/Checker.h"
#include "wasm/WasmAst.h"

#include <map>

namespace rw::support {
class ThreadPool;
} // namespace rw::support

namespace rw::lower {

struct LoweredProgram {
  wasm::WModule Module;
  RuntimeLayout Runtime;
  /// Wasm global indices that hold heap references (GC roots).
  std::vector<uint32_t> RefGlobals;
  /// "module.export" → Wasm function index.
  std::map<std::string, uint32_t> Exports;
  /// (module index, RichWasm function index) → Wasm function index.
  std::map<std::pair<uint32_t, uint32_t>, uint32_t> FuncMap;
  /// Module index → base offset of its entries in the merged table.
  std::map<uint32_t, uint32_t> TableBase;
};

/// Inputs a caller may thread into lowerProgram so the cold admission
/// pipeline does each phase exactly once.
struct LowerOptions {
  /// Import resolution (link/Resolve.h) computed by the caller
  /// (link::instantiateLowered resolves once and passes it down); null
  /// resolves inside lowerProgram.
  const std::vector<link::ResolvedModule> *Resolved = nullptr;
  /// Per-module checker InfoMaps from typing::checkModules(…, &Infos) —
  /// same process, same instruction pointers (the map key is node
  /// identity). When set (size must match Mods), lowerProgram performs
  /// *zero* checkModule calls; when null it checks each module itself.
  /// The maps hold borrowed TypeRefs: the modules' arena must stay alive
  /// and un-rolled-back for the duration of the call.
  const std::vector<typing::InfoMap> *Infos = nullptr;
  /// When set, function bodies are lowered (module, function)-parallel
  /// over this pool with deterministic index-ordered assembly: the lowered
  /// module is byte-identical for any pool size, and a failure reports the
  /// lowest-indexed failing function — exactly the sequential error.
  support::ThreadPool *Pool = nullptr;
};

/// Type-checks (unless LowerOptions::Infos hands the checker's work over)
/// and lowers a whole program (modules in link order; imports resolve
/// against earlier modules, like link::instantiate).
///
/// Import matching is the batch resolution phase of link/Resolve.h —
/// provider selection, shadowing, and the canonical-pointer import type
/// check are shared with link::instantiate, with
/// ResolveOptions::AllowUnresolvedFuncs semantics: a function import no
/// module provides becomes a Wasm import satisfiable by the host.
Expected<LoweredProgram>
lowerProgram(const std::vector<const ir::Module *> &Mods,
             const LowerOptions &Opts);

inline Expected<LoweredProgram>
lowerProgram(const std::vector<const ir::Module *> &Mods,
             const std::vector<link::ResolvedModule> *Resolved = nullptr) {
  LowerOptions Opts;
  Opts.Resolved = Resolved;
  return lowerProgram(Mods, Opts);
}

} // namespace rw::lower

#endif // RICHWASM_LOWER_LOWER_H
