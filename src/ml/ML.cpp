//===- ml/ML.cpp - Core ML frontend ----------------------------------------===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ml/ML.h"

#include "ir/Builder.h"
#include "ir/TypeOps.h"

#include <cassert>
#include <cctype>
#include <functional>
#include <map>
#include <set>

using namespace rw;
using namespace rw::ml;
using namespace rw::ir;
using namespace rw::ir::build;

//===----------------------------------------------------------------------===//
// Type utilities
//===----------------------------------------------------------------------===//

bool rw::ml::mlTypeEquals(const MLTypeRef &A, const MLTypeRef &B) {
  if (A->K != B->K)
    return false;
  switch (A->K) {
  case TyKind::Int:
  case TyKind::Unit:
    return true;
  case TyKind::Var:
    return A->Var == B->Var;
  case TyKind::Ref:
  case TyKind::Lin:
  case TyKind::RefLin:
    return mlTypeEquals(A->A, B->A);
  case TyKind::Pair:
  case TyKind::Sum:
  case TyKind::Fun:
    return mlTypeEquals(A->A, B->A) && mlTypeEquals(A->B, B->B);
  }
  return false;
}

std::string rw::ml::mlTypeStr(const MLTypeRef &T) {
  switch (T->K) {
  case TyKind::Int:
    return "int";
  case TyKind::Unit:
    return "unit";
  case TyKind::Var:
    return "'" + T->Var;
  case TyKind::Ref:
    return "ref " + mlTypeStr(T->A);
  case TyKind::Lin:
    return "lin " + mlTypeStr(T->A);
  case TyKind::RefLin:
    return "linref " + mlTypeStr(T->A);
  case TyKind::Pair:
    return "(" + mlTypeStr(T->A) + " * " + mlTypeStr(T->B) + ")";
  case TyKind::Sum:
    return "(" + mlTypeStr(T->A) + " + " + mlTypeStr(T->B) + ")";
  case TyKind::Fun:
    return "(" + mlTypeStr(T->A) + " -> " + mlTypeStr(T->B) + ")";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

namespace {

enum class Tok : uint8_t {
  Ident,
  TyVar,
  Int,
  KwImport,
  KwExport,
  KwFun,
  KwGlobal,
  KwLet,
  KwIn,
  KwFn,
  KwIf,
  KwThen,
  KwElse,
  KwCase,
  KwOf,
  KwInl,
  KwInr,
  KwEnd,
  KwRef,
  KwLinRef,
  KwLin,
  KwFst,
  KwSnd,
  KwInt,
  KwUnit,
  LParen,
  RParen,
  LBrack,
  RBrack,
  Arrow,
  DArrow,
  Assign,
  Bang,
  Star,
  Plus,
  Minus,
  Eq,
  Lt,
  Comma,
  Semi,
  SemiSemi,
  Colon,
  Dot,
  Bar,
  Eof,
};

struct Token {
  Tok K = Tok::Eof;
  std::string Text;
  int64_t Num = 0;
  size_t Line = 1;
};

class Lexer {
public:
  explicit Lexer(const std::string &Src) : S(Src) {}

  Expected<std::vector<Token>> run() {
    std::vector<Token> Out;
    while (Pos < S.size()) {
      char C = S[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
        continue;
      }
      if (isspace(static_cast<unsigned char>(C))) {
        ++Pos;
        continue;
      }
      if (C == '(' && Pos + 1 < S.size() && S[Pos + 1] == '*') {
        // Comment (* ... *).
        Pos += 2;
        while (Pos + 1 < S.size() && !(S[Pos] == '*' && S[Pos + 1] == ')')) {
          if (S[Pos] == '\n')
            ++Line;
          ++Pos;
        }
        Pos += 2;
        continue;
      }
      if (isdigit(static_cast<unsigned char>(C)) ||
          (C == '-' && Pos + 1 < S.size() &&
           isdigit(static_cast<unsigned char>(S[Pos + 1])) &&
           lastWasOperand() == false)) {
        size_t Start = Pos;
        if (C == '-')
          ++Pos;
        while (Pos < S.size() && isdigit(static_cast<unsigned char>(S[Pos])))
          ++Pos;
        Token T;
        T.K = Tok::Int;
        T.Num = std::stoll(S.substr(Start, Pos - Start));
        T.Line = Line;
        Out.push_back(T);
        Last = &Out.back();
        continue;
      }
      if (C == '\'' ) {
        ++Pos;
        size_t Start = Pos;
        while (Pos < S.size() &&
               (isalnum(static_cast<unsigned char>(S[Pos])) || S[Pos] == '_'))
          ++Pos;
        Token T;
        T.K = Tok::TyVar;
        T.Text = S.substr(Start, Pos - Start);
        T.Line = Line;
        Out.push_back(T);
        Last = &Out.back();
        continue;
      }
      if (isalpha(static_cast<unsigned char>(C)) || C == '_') {
        size_t Start = Pos;
        while (Pos < S.size() &&
               (isalnum(static_cast<unsigned char>(S[Pos])) || S[Pos] == '_'))
          ++Pos;
        std::string W = S.substr(Start, Pos - Start);
        Token T;
        T.Line = Line;
        T.Text = W;
        if (W == "import")
          T.K = Tok::KwImport;
        else if (W == "export")
          T.K = Tok::KwExport;
        else if (W == "fun")
          T.K = Tok::KwFun;
        else if (W == "global")
          T.K = Tok::KwGlobal;
        else if (W == "let")
          T.K = Tok::KwLet;
        else if (W == "in")
          T.K = Tok::KwIn;
        else if (W == "fn")
          T.K = Tok::KwFn;
        else if (W == "if")
          T.K = Tok::KwIf;
        else if (W == "then")
          T.K = Tok::KwThen;
        else if (W == "else")
          T.K = Tok::KwElse;
        else if (W == "case")
          T.K = Tok::KwCase;
        else if (W == "of")
          T.K = Tok::KwOf;
        else if (W == "inl")
          T.K = Tok::KwInl;
        else if (W == "inr")
          T.K = Tok::KwInr;
        else if (W == "end")
          T.K = Tok::KwEnd;
        else if (W == "ref")
          T.K = Tok::KwRef;
        else if (W == "linref")
          T.K = Tok::KwLinRef;
        else if (W == "lin")
          T.K = Tok::KwLin;
        else if (W == "fst")
          T.K = Tok::KwFst;
        else if (W == "snd")
          T.K = Tok::KwSnd;
        else if (W == "int")
          T.K = Tok::KwInt;
        else if (W == "unit")
          T.K = Tok::KwUnit;
        else
          T.K = Tok::Ident;
        Out.push_back(T);
        Last = &Out.back();
        continue;
      }
      auto Two = [&](char A, char B) {
        return C == A && Pos + 1 < S.size() && S[Pos + 1] == B;
      };
      Token T;
      T.Line = Line;
      if (Two('-', '>')) {
        T.K = Tok::Arrow;
        Pos += 2;
      } else if (Two('=', '>')) {
        T.K = Tok::DArrow;
        Pos += 2;
      } else if (Two(':', '=')) {
        T.K = Tok::Assign;
        Pos += 2;
      } else if (Two(';', ';')) {
        T.K = Tok::SemiSemi;
        Pos += 2;
      } else {
        switch (C) {
        case '(':
          T.K = Tok::LParen;
          break;
        case ')':
          T.K = Tok::RParen;
          break;
        case '[':
          T.K = Tok::LBrack;
          break;
        case ']':
          T.K = Tok::RBrack;
          break;
        case '!':
          T.K = Tok::Bang;
          break;
        case '*':
          T.K = Tok::Star;
          break;
        case '+':
          T.K = Tok::Plus;
          break;
        case '-':
          T.K = Tok::Minus;
          break;
        case '=':
          T.K = Tok::Eq;
          break;
        case '<':
          T.K = Tok::Lt;
          break;
        case ',':
          T.K = Tok::Comma;
          break;
        case ';':
          T.K = Tok::Semi;
          break;
        case ':':
          T.K = Tok::Colon;
          break;
        case '.':
          T.K = Tok::Dot;
          break;
        case '|':
          T.K = Tok::Bar;
          break;
        default:
          return Error("lex error at line " + std::to_string(Line) +
                       ": unexpected character '" + std::string(1, C) + "'");
        }
        ++Pos;
      }
      Out.push_back(T);
      Last = &Out.back();
    }
    Token E;
    E.K = Tok::Eof;
    E.Line = Line;
    Out.push_back(E);
    return Out;
  }

private:
  bool lastWasOperand() const {
    if (!Last)
      return false;
    switch (Last->K) {
    case Tok::Int:
    case Tok::Ident:
    case Tok::RParen:
      return true;
    default:
      return false;
    }
  }

  const std::string &S;
  size_t Pos = 0;
  size_t Line = 1;
  const Token *Last = nullptr;
};

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

class Parser {
public:
  Parser(std::vector<Token> Ts) : Ts(std::move(Ts)) {}

  Expected<MLModule> module(const std::string &Name) {
    MLModule M;
    M.Name = Name;
    while (cur().K != Tok::Eof) {
      if (cur().K == Tok::KwImport) {
        next();
        Expected<std::string> Mod = ident();
        if (!Mod)
          return Mod.error();
        if (Status S = expect(Tok::Dot, "'.'"); !S)
          return S.error();
        Expected<std::string> Nm = ident();
        if (!Nm)
          return Nm.error();
        if (Status S = expect(Tok::Colon, "':'"); !S)
          return S.error();
        Expected<MLTypeRef> T = type();
        if (!T)
          return T.error();
        if (Status S = expect(Tok::SemiSemi, "';;'"); !S)
          return S.error();
        M.Imports.push_back({*Mod, *Nm, *T});
        continue;
      }
      if (cur().K == Tok::KwGlobal) {
        next();
        Expected<std::string> Nm = ident();
        if (!Nm)
          return Nm.error();
        if (Status S = expect(Tok::Eq, "'='"); !S)
          return S.error();
        Expected<MLExprRef> E = expr();
        if (!E)
          return E.error();
        if (Status S = expect(Tok::SemiSemi, "';;'"); !S)
          return S.error();
        MLGlobal G;
        G.Name = *Nm;
        G.Init = *E;
        M.Globals.push_back(std::move(G));
        continue;
      }
      bool Exported = false;
      if (cur().K == Tok::KwExport) {
        Exported = true;
        next();
      }
      if (cur().K != Tok::KwFun)
        return Error("parse error at line " + std::to_string(cur().Line) +
                     ": expected declaration");
      next();
      MLFun F;
      F.Exported = Exported;
      Expected<std::string> Nm = ident();
      if (!Nm)
        return Nm.error();
      F.Name = *Nm;
      if (cur().K == Tok::LBrack) {
        next();
        while (cur().K == Tok::TyVar) {
          F.TyParams.push_back(cur().Text);
          next();
        }
        if (Status S = expect(Tok::RBrack, "']'"); !S)
          return S.error();
      }
      if (Status S = expect(Tok::LParen, "'('"); !S)
        return S.error();
      Expected<std::string> P = ident();
      if (!P)
        return P.error();
      F.Param = *P;
      if (Status S = expect(Tok::Colon, "':'"); !S)
        return S.error();
      Expected<MLTypeRef> PT = type();
      if (!PT)
        return PT.error();
      F.ParamTy = *PT;
      if (Status S = expect(Tok::RParen, "')'"); !S)
        return S.error();
      if (Status S = expect(Tok::Colon, "':'"); !S)
        return S.error();
      Expected<MLTypeRef> RT = type();
      if (!RT)
        return RT.error();
      F.RetTy = *RT;
      if (Status S = expect(Tok::Eq, "'='"); !S)
        return S.error();
      Expected<MLExprRef> B = expr();
      if (!B)
        return B.error();
      F.Body = *B;
      if (Status S = expect(Tok::SemiSemi, "';;'"); !S)
        return S.error();
      M.Funs.push_back(std::move(F));
    }
    return M;
  }

private:
  const Token &cur() const { return Ts[Pos]; }
  void next() { ++Pos; }
  Status expect(Tok K, const char *What) {
    if (cur().K != K)
      return Error("parse error at line " + std::to_string(cur().Line) +
                   ": expected " + What);
    next();
    return Status::success();
  }
  Expected<std::string> ident() {
    if (cur().K != Tok::Ident)
      return Error("parse error at line " + std::to_string(cur().Line) +
                   ": expected identifier");
    std::string N = cur().Text;
    next();
    return N;
  }

  // type := sum ('->' type)?
  Expected<MLTypeRef> type() {
    Expected<MLTypeRef> L = sumType();
    if (!L)
      return L;
    if (cur().K == Tok::Arrow) {
      next();
      Expected<MLTypeRef> R = type();
      if (!R)
        return R;
      return MLType::mk(TyKind::Fun, *L, *R);
    }
    return L;
  }
  Expected<MLTypeRef> sumType() {
    Expected<MLTypeRef> L = prodType();
    if (!L)
      return L;
    MLTypeRef Acc = *L;
    while (cur().K == Tok::Plus) {
      next();
      Expected<MLTypeRef> R = prodType();
      if (!R)
        return R;
      Acc = MLType::mk(TyKind::Sum, Acc, *R);
    }
    return Acc;
  }
  Expected<MLTypeRef> prodType() {
    Expected<MLTypeRef> L = atomType();
    if (!L)
      return L;
    MLTypeRef Acc = *L;
    while (cur().K == Tok::Star) {
      next();
      Expected<MLTypeRef> R = atomType();
      if (!R)
        return R;
      Acc = MLType::mk(TyKind::Pair, Acc, *R);
    }
    return Acc;
  }
  Expected<MLTypeRef> atomType() {
    switch (cur().K) {
    case Tok::KwInt:
      next();
      return MLType::mk(TyKind::Int);
    case Tok::KwUnit:
      next();
      return MLType::mk(TyKind::Unit);
    case Tok::TyVar: {
      std::string N = cur().Text;
      next();
      return MLType::var(N);
    }
    case Tok::KwRef: {
      next();
      Expected<MLTypeRef> T = atomType();
      if (!T)
        return T;
      return MLType::mk(TyKind::Ref, *T);
    }
    case Tok::KwLin: {
      next();
      Expected<MLTypeRef> T = atomType();
      if (!T)
        return T;
      return MLType::mk(TyKind::Lin, *T);
    }
    case Tok::KwLinRef: {
      next();
      Expected<MLTypeRef> T = atomType();
      if (!T)
        return T;
      return MLType::mk(TyKind::RefLin, *T);
    }
    case Tok::LParen: {
      next();
      Expected<MLTypeRef> T = type();
      if (!T)
        return T;
      if (Status S = expect(Tok::RParen, "')'"); !S)
        return S.error();
      return T;
    }
    default:
      return Error("parse error at line " + std::to_string(cur().Line) +
                   ": expected a type");
    }
  }

  // expr := seq-level with ';' lowest.
  Expected<MLExprRef> expr() {
    Expected<MLExprRef> L = assignExpr();
    if (!L)
      return L;
    if (cur().K == Tok::Semi) {
      next();
      Expected<MLExprRef> R = expr();
      if (!R)
        return R;
      MLExprRef E = MLExpr::mk(ExKind::Seq);
      E->Kids = {*L, *R};
      return E;
    }
    return L;
  }

  Expected<MLExprRef> assignExpr() {
    Expected<MLExprRef> L = cmpExpr();
    if (!L)
      return L;
    if (cur().K == Tok::Assign) {
      next();
      Expected<MLExprRef> R = assignExpr();
      if (!R)
        return R;
      MLExprRef E = MLExpr::mk(ExKind::Assign);
      E->Kids = {*L, *R};
      return E;
    }
    return L;
  }

  Expected<MLExprRef> cmpExpr() {
    Expected<MLExprRef> L = addExpr();
    if (!L)
      return L;
    if (cur().K == Tok::Eq || cur().K == Tok::Lt) {
      MLOp Op = cur().K == Tok::Eq ? MLOp::Eq : MLOp::Lt;
      next();
      Expected<MLExprRef> R = addExpr();
      if (!R)
        return R;
      MLExprRef E = MLExpr::mk(ExKind::Binop);
      E->Op = Op;
      E->Kids = {*L, *R};
      return E;
    }
    return L;
  }

  Expected<MLExprRef> addExpr() {
    Expected<MLExprRef> L = mulExpr();
    if (!L)
      return L;
    MLExprRef Acc = *L;
    while (cur().K == Tok::Plus || cur().K == Tok::Minus) {
      MLOp Op = cur().K == Tok::Plus ? MLOp::Add : MLOp::Sub;
      next();
      Expected<MLExprRef> R = mulExpr();
      if (!R)
        return R;
      MLExprRef E = MLExpr::mk(ExKind::Binop);
      E->Op = Op;
      E->Kids = {Acc, *R};
      Acc = E;
    }
    return Acc;
  }

  Expected<MLExprRef> mulExpr() {
    Expected<MLExprRef> L = appExpr();
    if (!L)
      return L;
    MLExprRef Acc = *L;
    while (cur().K == Tok::Star) {
      next();
      Expected<MLExprRef> R = appExpr();
      if (!R)
        return R;
      MLExprRef E = MLExpr::mk(ExKind::Binop);
      E->Op = MLOp::Mul;
      E->Kids = {Acc, *R};
      Acc = E;
    }
    return Acc;
  }

  static bool startsPrim(Tok K) {
    switch (K) {
    case Tok::Int:
    case Tok::Ident:
    case Tok::LParen:
    case Tok::Bang:
    case Tok::KwRef:
    case Tok::KwLinRef:
    case Tok::KwFst:
    case Tok::KwSnd:
    case Tok::KwInl:
    case Tok::KwInr:
      return true;
    default:
      return false;
    }
  }

  Expected<MLExprRef> appExpr() {
    Expected<MLExprRef> L = primExpr();
    if (!L)
      return L;
    MLExprRef Acc = *L;
    while (startsPrim(cur().K)) {
      Expected<MLExprRef> R = primExpr();
      if (!R)
        return R;
      MLExprRef E = MLExpr::mk(ExKind::App);
      E->Kids = {Acc, *R};
      Acc = E;
    }
    return Acc;
  }

  Expected<MLExprRef> primExpr() {
    switch (cur().K) {
    case Tok::KwLet: {
      next();
      Expected<std::string> N = ident();
      if (!N)
        return N.error();
      if (Status S = expect(Tok::Eq, "'='"); !S)
        return S.error();
      Expected<MLExprRef> E1 = expr();
      if (!E1)
        return E1;
      if (Status S = expect(Tok::KwIn, "'in'"); !S)
        return S.error();
      Expected<MLExprRef> E2 = expr();
      if (!E2)
        return E2;
      MLExprRef E = MLExpr::mk(ExKind::Let);
      E->Name = *N;
      E->Kids = {*E1, *E2};
      return E;
    }
    case Tok::KwFn: {
      next();
      if (Status S = expect(Tok::LParen, "'('"); !S)
        return S.error();
      Expected<std::string> N = ident();
      if (!N)
        return N.error();
      if (Status S = expect(Tok::Colon, "':'"); !S)
        return S.error();
      Expected<MLTypeRef> T = type();
      if (!T)
        return T.error();
      if (Status S = expect(Tok::RParen, "')'"); !S)
        return S.error();
      if (Status S = expect(Tok::DArrow, "'=>'"); !S)
        return S.error();
      Expected<MLExprRef> B = expr();
      if (!B)
        return B;
      MLExprRef E = MLExpr::mk(ExKind::Lam);
      E->Name = *N;
      E->Ann = *T;
      E->Kids = {*B};
      return E;
    }
    case Tok::KwIf: {
      next();
      Expected<MLExprRef> C = expr();
      if (!C)
        return C;
      if (Status S = expect(Tok::KwThen, "'then'"); !S)
        return S.error();
      Expected<MLExprRef> T = expr();
      if (!T)
        return T;
      if (Status S = expect(Tok::KwElse, "'else'"); !S)
        return S.error();
      Expected<MLExprRef> F = expr();
      if (!F)
        return F;
      MLExprRef E = MLExpr::mk(ExKind::If);
      E->Kids = {*C, *T, *F};
      return E;
    }
    case Tok::KwCase: {
      next();
      Expected<MLExprRef> Scrut = expr();
      if (!Scrut)
        return Scrut;
      if (Status S = expect(Tok::KwOf, "'of'"); !S)
        return S.error();
      if (Status S = expect(Tok::KwInl, "'inl'"); !S)
        return S.error();
      Expected<std::string> X = ident();
      if (!X)
        return X.error();
      if (Status S = expect(Tok::DArrow, "'=>'"); !S)
        return S.error();
      Expected<MLExprRef> L = expr();
      if (!L)
        return L;
      if (Status S = expect(Tok::Bar, "'|'"); !S)
        return S.error();
      if (Status S = expect(Tok::KwInr, "'inr'"); !S)
        return S.error();
      Expected<std::string> Y = ident();
      if (!Y)
        return Y.error();
      if (Status S = expect(Tok::DArrow, "'=>'"); !S)
        return S.error();
      Expected<MLExprRef> R = expr();
      if (!R)
        return R;
      if (Status S = expect(Tok::KwEnd, "'end'"); !S)
        return S.error();
      MLExprRef E = MLExpr::mk(ExKind::Case);
      E->Name = *X;
      E->Name2 = *Y;
      E->Kids = {*Scrut, *L, *R};
      return E;
    }
    case Tok::Int: {
      MLExprRef E = MLExpr::mk(ExKind::Int);
      E->IntVal = cur().Num;
      next();
      return E;
    }
    case Tok::Ident: {
      MLExprRef E = MLExpr::mk(ExKind::VarRef);
      E->Name = cur().Text;
      next();
      return E;
    }
    case Tok::Bang: {
      next();
      Expected<MLExprRef> E = primExpr();
      if (!E)
        return E;
      MLExprRef D = MLExpr::mk(ExKind::Deref);
      D->Kids = {*E};
      return D;
    }
    case Tok::KwRef: {
      next();
      Expected<MLExprRef> E = primExpr();
      if (!E)
        return E;
      MLExprRef D = MLExpr::mk(ExKind::MkRef);
      D->Kids = {*E};
      return D;
    }
    case Tok::KwLinRef: {
      next();
      if (cur().K == Tok::LBrack) {
        // linref [T] () — a fresh *empty* ref_to_lin cell.
        next();
        Expected<MLTypeRef> T = type();
        if (!T)
          return T.error();
        if (Status S = expect(Tok::RBrack, "']'"); !S)
          return S.error();
        if (Status S = expect(Tok::LParen, "'('"); !S)
          return S.error();
        if (Status S = expect(Tok::RParen, "')'"); !S)
          return S.error();
        MLExprRef D = MLExpr::mk(ExKind::MkRefLinEmpty);
        D->Ann = *T;
        return D;
      }
      Expected<MLExprRef> E = primExpr();
      if (!E)
        return E;
      MLExprRef D = MLExpr::mk(ExKind::MkRefLin);
      D->Kids = {*E};
      return D;
    }
    case Tok::KwFst:
    case Tok::KwSnd: {
      bool IsFst = cur().K == Tok::KwFst;
      next();
      Expected<MLExprRef> E = primExpr();
      if (!E)
        return E;
      MLExprRef D = MLExpr::mk(IsFst ? ExKind::Fst : ExKind::Snd);
      D->Kids = {*E};
      return D;
    }
    case Tok::KwInl:
    case Tok::KwInr: {
      bool IsL = cur().K == Tok::KwInl;
      next();
      if (Status S = expect(Tok::LBrack, "'['"); !S)
        return S.error();
      Expected<MLTypeRef> T = type();
      if (!T)
        return T.error();
      if (Status S = expect(Tok::RBrack, "']'"); !S)
        return S.error();
      Expected<MLExprRef> E = primExpr();
      if (!E)
        return E;
      MLExprRef D = MLExpr::mk(IsL ? ExKind::Inl : ExKind::Inr);
      D->Ann = *T;
      D->Kids = {*E};
      return D;
    }
    case Tok::LParen: {
      next();
      if (cur().K == Tok::RParen) {
        next();
        return MLExpr::mk(ExKind::Unit);
      }
      Expected<MLExprRef> E1 = expr();
      if (!E1)
        return E1;
      if (cur().K == Tok::Comma) {
        next();
        Expected<MLExprRef> E2 = expr();
        if (!E2)
          return E2;
        if (Status S = expect(Tok::RParen, "')'"); !S)
          return S.error();
        MLExprRef P = MLExpr::mk(ExKind::Pair);
        P->Kids = {*E1, *E2};
        return P;
      }
      if (Status S = expect(Tok::RParen, "')'"); !S)
        return S.error();
      return E1;
    }
    default:
      return Error("parse error at line " + std::to_string(cur().Line) +
                   ": expected an expression");
    }
  }

  std::vector<Token> Ts;
  size_t Pos = 0;
};

} // namespace

Expected<MLModule> rw::ml::parse(const std::string &Name,
                                 const std::string &Src) {
  Lexer L(Src);
  Expected<std::vector<Token>> Ts = L.run();
  if (!Ts)
    return Ts.error();
  Parser P(std::move(*Ts));
  return P.module(Name);
}

//===----------------------------------------------------------------------===//
// Type checker
//===----------------------------------------------------------------------===//

namespace {

struct CheckCtx {
  const MLModule *M = nullptr;
  std::map<std::string, MLTypeRef> Vars;
  std::map<std::string, const MLFun *> Funs;
  std::map<std::string, const MLImport *> Imports;
  std::map<std::string, MLTypeRef> Globals;
  std::set<std::string> TyParams;
};

/// First-order matching of a declared (possibly variable-containing) type
/// against a concrete one, binding type parameters.
Status matchType(const MLTypeRef &Pat, const MLTypeRef &Actual,
                 const std::set<std::string> &Params,
                 std::map<std::string, MLTypeRef> &Bind) {
  if (Pat->K == TyKind::Var && Params.count(Pat->Var)) {
    auto It = Bind.find(Pat->Var);
    if (It == Bind.end()) {
      Bind[Pat->Var] = Actual;
      return Status::success();
    }
    if (!mlTypeEquals(It->second, Actual))
      return Error("type parameter '" + Pat->Var +
                   "' solved inconsistently: " + mlTypeStr(It->second) +
                   " vs " + mlTypeStr(Actual));
    return Status::success();
  }
  if (Pat->K != Actual->K)
    return Error("type mismatch: expected " + mlTypeStr(Pat) + ", found " +
                 mlTypeStr(Actual));
  switch (Pat->K) {
  case TyKind::Int:
  case TyKind::Unit:
    return Status::success();
  case TyKind::Var:
    return Pat->Var == Actual->Var
               ? Status::success()
               : Status(Error("type variable mismatch"));
  case TyKind::Ref:
  case TyKind::Lin:
  case TyKind::RefLin:
    return matchType(Pat->A, Actual->A, Params, Bind);
  case TyKind::Pair:
  case TyKind::Sum:
  case TyKind::Fun:
    if (Status S = matchType(Pat->A, Actual->A, Params, Bind); !S)
      return S;
    return matchType(Pat->B, Actual->B, Params, Bind);
  }
  return Status::success();
}

MLTypeRef substType(const MLTypeRef &T,
                    const std::map<std::string, MLTypeRef> &Bind) {
  switch (T->K) {
  case TyKind::Int:
  case TyKind::Unit:
    return T;
  case TyKind::Var: {
    auto It = Bind.find(T->Var);
    return It == Bind.end() ? T : It->second;
  }
  case TyKind::Ref:
  case TyKind::Lin:
  case TyKind::RefLin:
    return MLType::mk(T->K, substType(T->A, Bind));
  case TyKind::Pair:
  case TyKind::Sum:
  case TyKind::Fun:
    return MLType::mk(T->K, substType(T->A, Bind), substType(T->B, Bind));
  }
  return T;
}

/// Aggregate element types may not be `lin` (linear data lives behind
/// linref cells or crosses boundaries directly, per the paper's linking
/// types discipline).
Status noLinInside(const MLTypeRef &T, const char *Where) {
  if (T->K == TyKind::Lin)
    return Error(std::string("'lin' type not allowed inside ") + Where);
  return Status::success();
}

Status checkExpr(MLExprRef &E, CheckCtx &C);

Status checkBody(MLExprRef &E, CheckCtx &C, const MLTypeRef &Want,
                 const char *What) {
  if (Status S = checkExpr(E, C); !S)
    return S;
  if (!mlTypeEquals(E->Ty, Want))
    return Error(std::string(What) + ": expected " + mlTypeStr(Want) +
                 ", found " + mlTypeStr(E->Ty));
  return Status::success();
}

Status checkExpr(MLExprRef &E, CheckCtx &C) {
  switch (E->K) {
  case ExKind::Int:
    E->Ty = MLType::mk(TyKind::Int);
    return Status::success();
  case ExKind::Unit:
    E->Ty = MLType::mk(TyKind::Unit);
    return Status::success();
  case ExKind::VarRef: {
    auto V = C.Vars.find(E->Name);
    if (V != C.Vars.end()) {
      E->Ty = V->second;
      return Status::success();
    }
    auto G = C.Globals.find(E->Name);
    if (G != C.Globals.end()) {
      E->Ty = G->second;
      return Status::success();
    }
    if (C.Funs.count(E->Name) || C.Imports.count(E->Name))
      return Error("top-level function '" + E->Name +
                   "' used as a value (apply it directly)");
    return Error("unbound variable '" + E->Name + "'");
  }
  case ExKind::App: {
    MLExprRef &Callee = E->Kids[0];
    MLExprRef &Arg = E->Kids[1];
    if (Status S = checkExpr(Arg, C); !S)
      return S;
    // Direct call of a top-level function or import?
    if (Callee->K == ExKind::VarRef && !C.Vars.count(Callee->Name)) {
      auto F = C.Funs.find(Callee->Name);
      if (F != C.Funs.end()) {
        std::set<std::string> Params(F->second->TyParams.begin(),
                                     F->second->TyParams.end());
        std::map<std::string, MLTypeRef> Bind;
        if (Status S = matchType(F->second->ParamTy, Arg->Ty, Params, Bind);
            !S)
          return Error("in call of '" + Callee->Name +
                       "': " + S.error().message());
        for (const std::string &P : F->second->TyParams)
          if (!Bind.count(P))
            return Error("cannot infer type parameter '" + P +
                         "' of '" + Callee->Name + "'");
        E->Ty = substType(F->second->RetTy, Bind);
        Callee->Ty = MLType::mk(TyKind::Fun, Arg->Ty, E->Ty);
        return Status::success();
      }
      auto I = C.Imports.find(Callee->Name);
      if (I != C.Imports.end()) {
        if (I->second->Ty->K != TyKind::Fun)
          return Error("import '" + Callee->Name + "' is not a function");
        if (!mlTypeEquals(I->second->Ty->A, Arg->Ty))
          return Error("in call of import '" + Callee->Name +
                       "': expected " + mlTypeStr(I->second->Ty->A) +
                       ", found " + mlTypeStr(Arg->Ty));
        E->Ty = I->second->Ty->B;
        Callee->Ty = I->second->Ty;
        return Status::success();
      }
    }
    if (Status S = checkExpr(Callee, C); !S)
      return S;
    if (Callee->Ty->K != TyKind::Fun)
      return Error("application of a non-function of type " +
                   mlTypeStr(Callee->Ty));
    if (!mlTypeEquals(Callee->Ty->A, Arg->Ty))
      return Error("argument type mismatch: expected " +
                   mlTypeStr(Callee->Ty->A) + ", found " + mlTypeStr(Arg->Ty));
    E->Ty = Callee->Ty->B;
    return Status::success();
  }
  case ExKind::Lam: {
    CheckCtx Inner = C;
    Inner.Vars[E->Name] = E->Ann;
    if (Status S = checkExpr(E->Kids[0], Inner); !S)
      return S;
    E->Ty = MLType::mk(TyKind::Fun, E->Ann, E->Kids[0]->Ty);
    return Status::success();
  }
  case ExKind::Let: {
    if (Status S = checkExpr(E->Kids[0], C); !S)
      return S;
    CheckCtx Inner = C;
    Inner.Vars[E->Name] = E->Kids[0]->Ty;
    if (Status S = checkExpr(E->Kids[1], Inner); !S)
      return S;
    E->Ty = E->Kids[1]->Ty;
    return Status::success();
  }
  case ExKind::Pair: {
    if (Status S = checkExpr(E->Kids[0], C); !S)
      return S;
    if (Status S = checkExpr(E->Kids[1], C); !S)
      return S;
    if (Status S = noLinInside(E->Kids[0]->Ty, "a pair"); !S)
      return S;
    if (Status S = noLinInside(E->Kids[1]->Ty, "a pair"); !S)
      return S;
    E->Ty = MLType::mk(TyKind::Pair, E->Kids[0]->Ty, E->Kids[1]->Ty);
    return Status::success();
  }
  case ExKind::Fst:
  case ExKind::Snd: {
    if (Status S = checkExpr(E->Kids[0], C); !S)
      return S;
    if (E->Kids[0]->Ty->K != TyKind::Pair)
      return Error("fst/snd of a non-pair");
    E->Ty = E->K == ExKind::Fst ? E->Kids[0]->Ty->A : E->Kids[0]->Ty->B;
    return Status::success();
  }
  case ExKind::Inl:
  case ExKind::Inr: {
    if (Status S = checkExpr(E->Kids[0], C); !S)
      return S;
    if (Status S = noLinInside(E->Kids[0]->Ty, "a sum"); !S)
      return S;
    if (Status S = noLinInside(E->Ann, "a sum"); !S)
      return S;
    E->Ty = E->K == ExKind::Inl
                ? MLType::mk(TyKind::Sum, E->Kids[0]->Ty, E->Ann)
                : MLType::mk(TyKind::Sum, E->Ann, E->Kids[0]->Ty);
    return Status::success();
  }
  case ExKind::Case: {
    if (Status S = checkExpr(E->Kids[0], C); !S)
      return S;
    if (E->Kids[0]->Ty->K != TyKind::Sum)
      return Error("case over a non-sum of type " +
                   mlTypeStr(E->Kids[0]->Ty));
    CheckCtx LC = C, RC = C;
    LC.Vars[E->Name] = E->Kids[0]->Ty->A;
    RC.Vars[E->Name2] = E->Kids[0]->Ty->B;
    if (Status S = checkExpr(E->Kids[1], LC); !S)
      return S;
    if (Status S = checkExpr(E->Kids[2], RC); !S)
      return S;
    if (!mlTypeEquals(E->Kids[1]->Ty, E->Kids[2]->Ty))
      return Error("case arms disagree: " + mlTypeStr(E->Kids[1]->Ty) +
                   " vs " + mlTypeStr(E->Kids[2]->Ty));
    E->Ty = E->Kids[1]->Ty;
    return Status::success();
  }
  case ExKind::MkRef: {
    if (Status S = checkExpr(E->Kids[0], C); !S)
      return S;
    if (Status S = noLinInside(E->Kids[0]->Ty, "a ref (use linref)"); !S)
      return S;
    E->Ty = MLType::mk(TyKind::Ref, E->Kids[0]->Ty);
    return Status::success();
  }
  case ExKind::MkRefLin: {
    if (Status S = checkExpr(E->Kids[0], C); !S)
      return S;
    if (E->Kids[0]->Ty->K != TyKind::Lin)
      return Error("linref expects a value of a 'lin' type");
    E->Ty = MLType::mk(TyKind::RefLin, E->Kids[0]->Ty->A);
    return Status::success();
  }
  case ExKind::MkRefLinEmpty: {
    E->Ty = MLType::mk(TyKind::RefLin, E->Ann);
    return Status::success();
  }
  case ExKind::Deref: {
    if (Status S = checkExpr(E->Kids[0], C); !S)
      return S;
    const MLTypeRef &T = E->Kids[0]->Ty;
    if (T->K == TyKind::Ref)
      E->Ty = T->A;
    else if (T->K == TyKind::RefLin)
      E->Ty = MLType::mk(TyKind::Lin, T->A); // take: yields the lin value
    else
      return Error("dereference of a non-reference of type " + mlTypeStr(T));
    return Status::success();
  }
  case ExKind::Assign: {
    if (Status S = checkExpr(E->Kids[0], C); !S)
      return S;
    if (Status S = checkExpr(E->Kids[1], C); !S)
      return S;
    const MLTypeRef &T = E->Kids[0]->Ty;
    if (T->K == TyKind::Ref) {
      if (!mlTypeEquals(T->A, E->Kids[1]->Ty))
        return Error("assignment type mismatch");
    } else if (T->K == TyKind::RefLin) {
      if (!(E->Kids[1]->Ty->K == TyKind::Lin &&
            mlTypeEquals(T->A, E->Kids[1]->Ty->A)))
        return Error("linref assignment expects a matching 'lin' value");
    } else {
      return Error("assignment to a non-reference");
    }
    E->Ty = MLType::mk(TyKind::Unit);
    return Status::success();
  }
  case ExKind::Binop: {
    MLTypeRef IntT = MLType::mk(TyKind::Int);
    if (Status S = checkBody(E->Kids[0], C, IntT, "operator"); !S)
      return S;
    if (Status S = checkBody(E->Kids[1], C, IntT, "operator"); !S)
      return S;
    E->Ty = IntT;
    return Status::success();
  }
  case ExKind::If: {
    MLTypeRef IntT = MLType::mk(TyKind::Int);
    if (Status S = checkBody(E->Kids[0], C, IntT, "if condition"); !S)
      return S;
    if (Status S = checkExpr(E->Kids[1], C); !S)
      return S;
    if (Status S = checkExpr(E->Kids[2], C); !S)
      return S;
    if (!mlTypeEquals(E->Kids[1]->Ty, E->Kids[2]->Ty))
      return Error("if branches disagree");
    E->Ty = E->Kids[1]->Ty;
    return Status::success();
  }
  case ExKind::Seq: {
    if (Status S = checkExpr(E->Kids[0], C); !S)
      return S;
    if (E->Kids[0]->Ty->K != TyKind::Unit)
      return Error("';' discards a non-unit value of type " +
                   mlTypeStr(E->Kids[0]->Ty));
    if (Status S = checkExpr(E->Kids[1], C); !S)
      return S;
    E->Ty = E->Kids[1]->Ty;
    return Status::success();
  }
  }
  return Error("unhandled expression in checker");
}

} // namespace

Status rw::ml::typecheck(MLModule &M) {
  CheckCtx C;
  C.M = &M;
  for (const MLImport &I : M.Imports)
    C.Imports[I.Name] = &I;
  for (const MLFun &F : M.Funs)
    C.Funs[F.Name] = &F;
  for (MLGlobal &G : M.Globals) {
    if (Status S = checkExpr(G.Init, C); !S)
      return Error("in global '" + G.Name + "': " + S.error().message());
    G.Ty = G.Init->Ty;
    C.Globals[G.Name] = G.Ty;
  }
  for (MLFun &F : M.Funs) {
    CheckCtx FC = C;
    FC.TyParams =
        std::set<std::string>(F.TyParams.begin(), F.TyParams.end());
    FC.Vars[F.Param] = F.ParamTy;
    if (Status S = checkExpr(F.Body, FC); !S)
      return Error("in function '" + F.Name + "': " + S.error().message());
    if (!mlTypeEquals(F.Body->Ty, F.RetTy))
      return Error("function '" + F.Name + "' returns " +
                   mlTypeStr(F.Body->Ty) + " but declares " +
                   mlTypeStr(F.RetTy));
    if (F.Exported && !F.TyParams.empty())
      return Error("exported function '" + F.Name +
                   "' may not be polymorphic");
  }
  return Status::success();
}

//===----------------------------------------------------------------------===//
// Type lowering (the annotation phase)
//===----------------------------------------------------------------------===//

namespace {

/// The 64-bit slot every ML value fits into.
SizeRef word64() { return Size::constant(64); }

Type lowerTy(const MLTypeRef &T, const std::vector<std::string> &TyParams,
             uint32_t Depth);

/// The option-cell heap type a linref's payload cell carries:
/// variant [unit ; C(lin τ)].
HeapTypeRef optVariantHT(const MLTypeRef &Elem,
                         const std::vector<std::string> &TyParams,
                         uint32_t Depth) {
  Type LinT = lowerTy(MLType::mk(TyKind::Lin, Elem), TyParams, Depth);
  return variantHT({unitT(), LinT});
}

Type lowerTy(const MLTypeRef &T, const std::vector<std::string> &TyParams,
             uint32_t Depth) {
  switch (T->K) {
  case TyKind::Int:
    return i32T();
  case TyKind::Unit:
    return unitT();
  case TyKind::Var: {
    // De Bruijn: the last declared parameter is the innermost binder.
    for (size_t I = 0; I < TyParams.size(); ++I)
      if (TyParams[I] == T->Var)
        return Type(varPT(static_cast<uint32_t>(TyParams.size() - 1 - I) +
                          Depth),
                    Qual::unr());
    assert(false && "unbound ML type variable after checking");
    return unitT();
  }
  case TyKind::Pair: {
    Type A = lowerTy(T->A, TyParams, Depth);
    Type B = lowerTy(T->B, TyParams, Depth);
    HeapTypeRef H = structHT({{A, word64()}, {B, word64()}});
    return Type(exLocPT(Type(refPT(Privilege::RW, Loc::var(0), H),
                             Qual::unr())),
                Qual::unr());
  }
  case TyKind::Sum: {
    Type A = lowerTy(T->A, TyParams, Depth);
    Type B = lowerTy(T->B, TyParams, Depth);
    HeapTypeRef H = variantHT({A, B});
    return Type(exLocPT(Type(refPT(Privilege::RW, Loc::var(0), H),
                             Qual::unr())),
                Qual::unr());
  }
  case TyKind::Ref: {
    Type A = lowerTy(T->A, TyParams, Depth);
    HeapTypeRef H = structHT({{A, word64()}});
    return Type(exLocPT(Type(refPT(Privilege::RW, Loc::var(0), H),
                             Qual::unr())),
                Qual::unr());
  }
  case TyKind::Fun: {
    // Closure: ∃ρ. ref to (∃ unr ⪯ α ≲ 64. (α, coderef [α, A] → [B])).
    // Inside the package, the Ex binder shifts enclosing type variables.
    Type A = lowerTy(T->A, TyParams, Depth + 1);
    Type B = lowerTy(T->B, TyParams, Depth + 1);
    FunTypeRef Code = FunType::get(
        {}, build::arrow({Type(varPT(0), Qual::unr()), A}, {B}));
    Type Body(prodPT({Type(varPT(0), Qual::unr()),
                      Type(coderefPT(Code), Qual::unr())}),
              Qual::unr());
    HeapTypeRef H = exHT(Qual::unr(), word64(), Body);
    return Type(exLocPT(Type(refPT(Privilege::RW, Loc::var(0), H),
                             Qual::unr())),
                Qual::unr());
  }
  case TyKind::Lin: {
    // (τ)lin: linear RichWasm types at the language boundary. A linear
    // reference cell uses an exact-size slot (the L3 convention).
    if (T->A->K == TyKind::Ref) {
      Type Elem = lowerTy(T->A->A, TyParams, Depth);
      SizeRef Slot = ir::sizeOfType(Elem, {});
      HeapTypeRef H = structHT({{Elem, Slot}});
      return Type(exLocPT(Type(refPT(Privilege::RW, Loc::var(0), H),
                               Qual::lin())),
                  Qual::lin());
    }
    Type Inner = lowerTy(T->A, TyParams, Depth);
    return Type(Inner.P, Qual::lin());
  }
  case TyKind::RefLin: {
    // ref_to_lin: an unrestricted cell holding an optional linear value
    // (a linear reference to a variant [unit ; lin τ]).
    HeapTypeRef Opt = optVariantHT(T->A, TyParams, Depth);
    Type OptRef(exLocPT(Type(refPT(Privilege::RW, Loc::var(0), Opt),
                             Qual::lin())),
                Qual::lin());
    HeapTypeRef Cell = structHT({{OptRef, word64()}});
    return Type(exLocPT(Type(refPT(Privilege::RW, Loc::var(0), Cell),
                             Qual::unr())),
                Qual::unr());
  }
  }
  return unitT();
}

} // namespace

ir::Type rw::ml::lowerMLType(const MLTypeRef &T,
                             const std::vector<std::string> &TyParams) {
  return lowerTy(T, TyParams, 0);
}

//===----------------------------------------------------------------------===//
// Code generation (typed closure conversion + emission)
//===----------------------------------------------------------------------===//

namespace {

struct VarInfo {
  uint32_t Local = 0;
  MLTypeRef Ty;
};

class Codegen;

/// Per-function emitter. Every ML local gets a 64-bit slot; a dedicated
/// size-0 local supplies unit values; binders are reset to unit before
/// their enclosing block closes so every block is local-environment
/// neutral (empty local-effect annotations everywhere).
class FunCg {
public:
  FunCg(Codegen &CG, std::vector<std::string> TyParams, uint32_t NumParams)
      : CG(CG), TyParams(std::move(TyParams)), NumParams(NumParams) {
    UnitLocal = newLocal(Size::constant(0));
  }

  Codegen &CG;
  std::vector<std::string> TyParams;
  uint32_t NumParams;
  std::vector<SizeRef> Locals;
  uint32_t UnitLocal;
  std::map<std::string, VarInfo> Vars;
  /// Locals consumed linearly (their slot reverts to unit) inside each
  /// open block scope; blocks record these as local effects so the
  /// RichWasm checker's per-block local environments line up.
  std::vector<std::set<uint32_t>> MovedStack;

  void noteMoved(uint32_t L) {
    if (!MovedStack.empty())
      MovedStack.back().insert(L);
  }
  void beginBlockScope() { MovedStack.push_back({}); }
  std::vector<LocalEffect> endBlockScope() {
    std::set<uint32_t> Moved = std::move(MovedStack.back());
    MovedStack.pop_back();
    std::vector<LocalEffect> Fx;
    for (uint32_t L : Moved) {
      Fx.push_back({L, unitT()});
      noteMoved(L); // Moves are visible to the enclosing scope too.
    }
    return Fx;
  }

  uint32_t newLocal(SizeRef Sz = nullptr) {
    Locals.push_back(Sz ? Sz : Size::constant(64));
    return NumParams + static_cast<uint32_t>(Locals.size() - 1);
  }

  Type L(const MLTypeRef &T) { return lowerTy(T, TyParams, 0); }

  void pushUnit(InstVec &O) { O.push_back(getLocal(UnitLocal, Qual::unr())); }
  void reset(uint32_t Local, InstVec &O) {
    pushUnit(O);
    O.push_back(setLocal(Local));
  }

  /// Pops the top of stack into a fresh local.
  uint32_t stashTop(InstVec &O) {
    uint32_t T = newLocal();
    O.push_back(setLocal(T));
    return T;
  }

  /// Pushes a stashed value back; linear values move out (slot reverts to
  /// unit), unrestricted ones are copied and the slot is reset.
  void readAndClear(uint32_t Local, const Type &T, InstVec &O) {
    O.push_back(getLocal(Local, T.Q));
    if (T.Q.isUnrConst())
      reset(Local, O);
    else
      noteMoved(Local);
  }

  Status gen(const MLExprRef &E, InstVec &O);
  Status genApp(const MLExprRef &E, InstVec &O);
  Status genLam(const MLExprRef &E, InstVec &O);
  Status genDeref(const MLExprRef &E, InstVec &O);
  Status genAssign(const MLExprRef &E, InstVec &O);

  /// Emits a mem.unpack block whose body is produced by \p Body, with the
  /// local effects of any linear moves inside it.
  template <typename F>
  Status emitUnpack(std::vector<Type> Results, F Body, InstVec &O) {
    beginBlockScope();
    InstVec B;
    Status S = Body(B);
    std::vector<LocalEffect> Fx = endBlockScope();
    if (!S)
      return S;
    O.push_back(memUnpack(build::arrow({}, std::move(Results)),
                          std::move(Fx), std::move(B)));
    return Status::success();
  }
};

class Codegen {
public:
  explicit Codegen(const MLModule &M) : M(M) {}

  Expected<ir::Module> run();

  const MLModule &M;
  ir::Module Out;
  std::map<std::string, uint32_t> FnIdx;
  std::map<std::string, const MLFun *> Funs;
  std::map<std::string, const MLImport *> Imports;
  std::map<std::string, uint32_t> GlobIdx;
  std::map<std::string, MLTypeRef> GlobTy;
  uint32_t LamCount = 0;

  /// Lifts a lambda body as a fresh code function; returns its index.
  Expected<uint32_t> liftLambda(const std::vector<std::string> &TyParams,
                                const MLTypeRef &EnvTy,
                                const std::vector<std::string> &FreeNames,
                                const std::vector<MLTypeRef> &FreeTys,
                                const std::string &ParamName,
                                const MLTypeRef &ParamTy,
                                const MLTypeRef &RetTy,
                                const MLExprRef &Body);
};

/// The closure heap type (∃α. (α, coderef)) a function type lowers to.
const ExHT *closureHT(const Type &LoweredFun) {
  const auto *Ex = cast<ExLocPT>(LoweredFun.P.get());
  const auto *R = cast<RefPT>(Ex->body().P.get());
  return cast<ExHT>(R->heapType().get());
}

void collectFree(const MLExprRef &E, std::set<std::string> &Bound,
                 const std::map<std::string, VarInfo> &Enclosing,
                 std::vector<std::string> &Order,
                 std::set<std::string> &Seen) {
  switch (E->K) {
  case ExKind::VarRef:
    if (!Bound.count(E->Name) && Enclosing.count(E->Name) &&
        !Seen.count(E->Name)) {
      Seen.insert(E->Name);
      Order.push_back(E->Name);
    }
    return;
  case ExKind::Lam: {
    bool Added = Bound.insert(E->Name).second;
    collectFree(E->Kids[0], Bound, Enclosing, Order, Seen);
    if (Added)
      Bound.erase(E->Name);
    return;
  }
  case ExKind::Let: {
    collectFree(E->Kids[0], Bound, Enclosing, Order, Seen);
    bool Added = Bound.insert(E->Name).second;
    collectFree(E->Kids[1], Bound, Enclosing, Order, Seen);
    if (Added)
      Bound.erase(E->Name);
    return;
  }
  case ExKind::Case: {
    collectFree(E->Kids[0], Bound, Enclosing, Order, Seen);
    bool A1 = Bound.insert(E->Name).second;
    collectFree(E->Kids[1], Bound, Enclosing, Order, Seen);
    if (A1)
      Bound.erase(E->Name);
    bool A2 = Bound.insert(E->Name2).second;
    collectFree(E->Kids[2], Bound, Enclosing, Order, Seen);
    if (A2)
      Bound.erase(E->Name2);
    return;
  }
  default:
    for (const MLExprRef &K : E->Kids)
      collectFree(K, Bound, Enclosing, Order, Seen);
    return;
  }
}

//===----------------------------------------------------------------------===//
// FunCg implementation
//===----------------------------------------------------------------------===//

Status FunCg::genDeref(const MLExprRef &E, InstVec &O) {
  const MLTypeRef &RT = E->Kids[0]->Ty;
  if (Status S = gen(E->Kids[0], O); !S)
    return S;
  if (RT->K == TyKind::Ref) {
    Type A = L(RT->A);
    return emitUnpack({A}, [&](InstVec &B) -> Status {
      B.push_back(structGet(0));
      uint32_t T = stashTop(B);
      B.push_back(drop());
      readAndClear(T, A, B);
      return Status::success();
    }, O);
  }
  // linref take: swap an empty option cell in, open the old one linearly.
  Type LinT = L(MLType::mk(TyKind::Lin, RT->A));
  HeapTypeRef Opt = optVariantHT(RT->A, TyParams, 0);
  const auto *OptV = cast<VariantHT>(Opt.get());
  return emitUnpack({LinT}, [&](InstVec &B) -> Status {
    pushUnit(B);
    B.push_back(variantMalloc(0, OptV->cases(), Qual::lin()));
    B.push_back(structSwap(0));
    uint32_t TOld = stashTop(B);
    B.push_back(drop());
    B.push_back(getLocal(TOld, Qual::lin()));
    noteMoved(TOld);
    return emitUnpack({LinT}, [&](InstVec &Inner) -> Status {
      Inner.push_back(variantCase(
          Qual::lin(), Opt, build::arrow({}, {LinT}), {},
          {{unreachable()}, // take from an empty cell: runtime failure
           {}}));
      return Status::success();
    }, B);
  }, O);
}

Status FunCg::genAssign(const MLExprRef &E, InstVec &O) {
  const MLTypeRef &RT = E->Kids[0]->Ty;
  if (Status S = gen(E->Kids[0], O); !S)
    return S;
  if (RT->K == TyKind::Ref) {
    return emitUnpack({unitT()}, [&](InstVec &B) -> Status {
      if (Status S = gen(E->Kids[1], B); !S)
        return S;
      B.push_back(structSet(0));
      B.push_back(drop());
      pushUnit(B);
      return Status::success();
    }, O);
  }
  // linref put: swap a full option in; a previous full cell is a runtime
  // failure (writing a linear cell twice).
  HeapTypeRef Opt = optVariantHT(RT->A, TyParams, 0);
  const auto *OptV = cast<VariantHT>(Opt.get());
  return emitUnpack({unitT()}, [&](InstVec &B) -> Status {
    if (Status S = gen(E->Kids[1], B); !S)
      return S;
    B.push_back(variantMalloc(1, OptV->cases(), Qual::lin()));
    B.push_back(structSwap(0));
    uint32_t TOld = stashTop(B);
    B.push_back(drop());
    B.push_back(getLocal(TOld, Qual::lin()));
    noteMoved(TOld);
    if (Status S = emitUnpack({}, [&](InstVec &Inner) -> Status {
          Inner.push_back(variantCase(Qual::lin(), Opt,
                                      build::arrow({}, {}), {},
                                      {{drop()}, {unreachable()}}));
          return Status::success();
        }, B);
        !S)
      return S;
    pushUnit(B);
    return Status::success();
  }, O);
}

Status FunCg::genApp(const MLExprRef &E, InstVec &O) {
  const MLExprRef &Callee = E->Kids[0];
  const MLExprRef &Arg = E->Kids[1];
  // Direct call of a top-level function or import.
  if (Callee->K == ExKind::VarRef && !Vars.count(Callee->Name)) {
    auto F = CG.Funs.find(Callee->Name);
    if (F != CG.Funs.end()) {
      std::set<std::string> Params(F->second->TyParams.begin(),
                                   F->second->TyParams.end());
      std::map<std::string, MLTypeRef> Bind;
      if (Status S = matchType(F->second->ParamTy, Arg->Ty, Params, Bind);
          !S)
        return S;
      std::vector<Index> Args;
      for (const std::string &P : F->second->TyParams)
        Args.push_back(Index::pretype(L(Bind.at(P)).P));
      if (Status S = gen(Arg, O); !S)
        return S;
      O.push_back(call(CG.FnIdx.at(Callee->Name), std::move(Args)));
      return Status::success();
    }
    if (CG.Imports.count(Callee->Name)) {
      if (Status S = gen(Arg, O); !S)
        return S;
      O.push_back(call(CG.FnIdx.at(Callee->Name)));
      return Status::success();
    }
  }
  // Closure application.
  if (Status S = gen(Callee, O); !S)
    return S;
  Type FunLow = L(Callee->Ty);
  const ExHT *H = closureHT(FunLow);
  HeapTypeRef HT = cast<RefPT>(cast<ExLocPT>(FunLow.P.get())->body().P.get())
                       ->heapType();
  Type Res = L(E->Ty);

  (void)H;
  return emitUnpack({Res}, [&](InstVec &UnpackBody) -> Status {
    beginBlockScope();
    InstVec ExBody; // inside exist.unpack: [(env, code) tuple]
    ExBody.push_back(ungroup()); // [env, code]
    uint32_t TCode = stashTop(ExBody);
    Status S = gen(Arg, ExBody);
    if (S) {
      ExBody.push_back(getLocal(TCode, Qual::unr()));
      reset(TCode, ExBody);
      // Stack: [env, arg, code]; call through the table.
      ExBody.push_back(callIndirect());
    }
    std::vector<LocalEffect> Fx = endBlockScope();
    if (!S)
      return S;
    UnpackBody.push_back(existUnpack(Qual::unr(), HT,
                                     build::arrow({}, {Res}), std::move(Fx),
                                     std::move(ExBody)));
    // Stack: [closure ref, result] — drop the reference beneath.
    uint32_t TRes = stashTop(UnpackBody);
    UnpackBody.push_back(drop());
    readAndClear(TRes, Res, UnpackBody);
    return Status::success();
  }, O);
}

Status FunCg::genLam(const MLExprRef &E, InstVec &O) {
  // Free variables (in order of first occurrence).
  std::set<std::string> Bound = {E->Name};
  std::vector<std::string> FreeNames;
  std::set<std::string> Seen;
  collectFree(E->Kids[0], Bound, Vars, FreeNames, Seen);
  std::vector<MLTypeRef> FreeTys;
  for (const std::string &N : FreeNames)
    FreeTys.push_back(Vars.at(N).Ty);

  // Environment type: unit / single / right-nested pairs.
  MLTypeRef EnvTy = MLType::mk(TyKind::Unit);
  if (FreeTys.size() == 1)
    EnvTy = FreeTys[0];
  else if (FreeTys.size() > 1) {
    EnvTy = FreeTys.back();
    for (size_t I = FreeTys.size() - 1; I > 0; --I)
      EnvTy = MLType::mk(TyKind::Pair, FreeTys[I - 1], EnvTy);
  }

  Expected<uint32_t> Code =
      CG.liftLambda(TyParams, EnvTy, FreeNames, FreeTys, E->Name, E->Ann,
                    E->Kids[0]->Ty, E->Kids[0]);
  if (!Code)
    return Code.error();

  // Build the environment value.
  std::function<Status(size_t)> BuildEnv = [&](size_t I) -> Status {
    if (FreeNames.empty()) {
      pushUnit(O);
      return Status::success();
    }
    if (I + 1 == FreeNames.size()) {
      const VarInfo &V = Vars.at(FreeNames[I]);
      Qual Q = L(V.Ty).Q;
      O.push_back(getLocal(V.Local, Q));
      if (!Q.isUnrConst())
        noteMoved(V.Local);
      return Status::success();
    }
    const VarInfo &V = Vars.at(FreeNames[I]);
    Qual Q0 = L(V.Ty).Q;
    O.push_back(getLocal(V.Local, Q0));
    if (!Q0.isUnrConst())
      noteMoved(V.Local);
    if (Status S = BuildEnv(I + 1); !S)
      return S;
    O.push_back(structMalloc({Size::constant(64), Size::constant(64)},
                             Qual::unr()));
    return Status::success();
  };
  if (Status S = BuildEnv(0); !S)
    return S;

  // coderef (+ instantiation with the enclosing type parameters).
  O.push_back(coderef(*Code));
  if (!TyParams.empty()) {
    std::vector<Index> Args;
    for (size_t I = 0; I < TyParams.size(); ++I)
      Args.push_back(Index::pretype(
          varPT(static_cast<uint32_t>(TyParams.size() - 1 - I))));
    O.push_back(instIdx(std::move(Args)));
  }
  O.push_back(group(2, Qual::unr()));
  Type FunLow = L(E->Ty);
  HeapTypeRef HT = cast<RefPT>(cast<ExLocPT>(FunLow.P.get())->body().P.get())
                       ->heapType();
  O.push_back(existPack(L(EnvTy).P, HT, Qual::unr()));
  return Status::success();
}

Status FunCg::gen(const MLExprRef &E, InstVec &O) {
  switch (E->K) {
  case ExKind::Int:
    O.push_back(iconst(static_cast<int32_t>(E->IntVal)));
    return Status::success();
  case ExKind::Unit:
    pushUnit(O);
    return Status::success();
  case ExKind::VarRef: {
    auto V = Vars.find(E->Name);
    if (V != Vars.end()) {
      // Unrestricted variables copy; linear ones move (the slot reverts to
      // unit, so a second use fails RichWasm checking — Fig 1's story).
      Qual Q = L(V->second.Ty).Q;
      O.push_back(getLocal(V->second.Local, Q));
      if (!Q.isUnrConst())
        noteMoved(V->second.Local);
      return Status::success();
    }
    O.push_back(getGlobal(CG.GlobIdx.at(E->Name)));
    return Status::success();
  }
  case ExKind::App:
    return genApp(E, O);
  case ExKind::Lam:
    return genLam(E, O);
  case ExKind::Let: {
    if (Status S = gen(E->Kids[0], O); !S)
      return S;
    uint32_t Lc = newLocal();
    O.push_back(setLocal(Lc));
    VarInfo Saved;
    bool Shadowed = Vars.count(E->Name);
    if (Shadowed)
      Saved = Vars[E->Name];
    Vars[E->Name] = {Lc, E->Kids[0]->Ty};
    Status S = gen(E->Kids[1], O);
    if (Shadowed)
      Vars[E->Name] = Saved;
    else
      Vars.erase(E->Name);
    if (!S)
      return S;
    // Reset the slot so enclosing blocks stay neutral. An unused linear
    // binder leaves a linear value here and is (intentionally) rejected by
    // the RichWasm checker as a leak.
    reset(Lc, O);
    return Status::success();
  }
  case ExKind::Pair: {
    if (Status S = gen(E->Kids[0], O); !S)
      return S;
    if (Status S = gen(E->Kids[1], O); !S)
      return S;
    O.push_back(structMalloc({Size::constant(64), Size::constant(64)},
                             Qual::unr()));
    return Status::success();
  }
  case ExKind::Fst:
  case ExKind::Snd: {
    if (Status S = gen(E->Kids[0], O); !S)
      return S;
    Type A = L(E->Ty);
    return emitUnpack({A}, [&](InstVec &B) -> Status {
      B.push_back(structGet(E->K == ExKind::Fst ? 0 : 1));
      uint32_t T = stashTop(B);
      B.push_back(drop());
      readAndClear(T, A, B);
      return Status::success();
    }, O);
  }
  case ExKind::Inl:
  case ExKind::Inr: {
    if (Status S = gen(E->Kids[0], O); !S)
      return S;
    std::vector<Type> Cases = {L(E->Ty->A), L(E->Ty->B)};
    O.push_back(variantMalloc(E->K == ExKind::Inl ? 0 : 1, Cases,
                              Qual::unr()));
    return Status::success();
  }
  case ExKind::Case: {
    if (Status S = gen(E->Kids[0], O); !S)
      return S;
    Type Res = L(E->Ty);
    std::vector<Type> Cases = {L(E->Kids[0]->Ty->A), L(E->Kids[0]->Ty->B)};

    auto Arm = [&](const std::string &Binder, const MLTypeRef &BinderTy,
                   const MLExprRef &Body,
                   std::vector<LocalEffect> &Fx) -> Expected<InstVec> {
      beginBlockScope();
      InstVec A;
      uint32_t Lc = newLocal();
      A.push_back(setLocal(Lc));
      VarInfo Saved;
      bool Shadowed = Vars.count(Binder);
      if (Shadowed)
        Saved = Vars[Binder];
      Vars[Binder] = {Lc, BinderTy};
      Status S = gen(Body, A);
      if (Shadowed)
        Vars[Binder] = Saved;
      else
        Vars.erase(Binder);
      if (S)
        reset(Lc, A);
      std::vector<LocalEffect> ArmFx = endBlockScope();
      if (!S)
        return S.error();
      Fx.insert(Fx.end(), ArmFx.begin(), ArmFx.end());
      return A;
    };
    return emitUnpack({Res}, [&](InstVec &B) -> Status {
      std::vector<LocalEffect> Fx;
      Expected<InstVec> A0 = Arm(E->Name, E->Kids[0]->Ty->A, E->Kids[1], Fx);
      if (!A0)
        return A0.error();
      Expected<InstVec> A1 =
          Arm(E->Name2, E->Kids[0]->Ty->B, E->Kids[2], Fx);
      if (!A1)
        return A1.error();
      B.push_back(variantCase(Qual::unr(), variantHT(Cases),
                              build::arrow({}, {Res}), std::move(Fx),
                              {std::move(*A0), std::move(*A1)}));
      // Stack: [variant ref, result].
      uint32_t T = stashTop(B);
      B.push_back(drop());
      readAndClear(T, Res, B);
      return Status::success();
    }, O);
  }
  case ExKind::MkRef: {
    if (Status S = gen(E->Kids[0], O); !S)
      return S;
    O.push_back(structMalloc({Size::constant(64)}, Qual::unr()));
    return Status::success();
  }
  case ExKind::MkRefLin: {
    if (Status S = gen(E->Kids[0], O); !S)
      return S;
    HeapTypeRef Opt = optVariantHT(E->Ty->A, TyParams, 0);
    const auto *OptV = cast<VariantHT>(Opt.get());
    O.push_back(variantMalloc(1, OptV->cases(), Qual::lin()));
    O.push_back(structMalloc({Size::constant(64)}, Qual::unr()));
    return Status::success();
  }
  case ExKind::MkRefLinEmpty: {
    HeapTypeRef Opt = optVariantHT(E->Ty->A, TyParams, 0);
    const auto *OptV = cast<VariantHT>(Opt.get());
    pushUnit(O);
    O.push_back(variantMalloc(0, OptV->cases(), Qual::lin()));
    O.push_back(structMalloc({Size::constant(64)}, Qual::unr()));
    return Status::success();
  }
  case ExKind::Deref:
    return genDeref(E, O);
  case ExKind::Assign:
    return genAssign(E, O);
  case ExKind::Binop: {
    if (Status S = gen(E->Kids[0], O); !S)
      return S;
    if (Status S = gen(E->Kids[1], O); !S)
      return S;
    switch (E->Op) {
    case MLOp::Add:
      O.push_back(addI32());
      break;
    case MLOp::Sub:
      O.push_back(subI32());
      break;
    case MLOp::Mul:
      O.push_back(mulI32());
      break;
    case MLOp::Eq:
      O.push_back(relop(NumType::I32, RelopKind::Eq));
      break;
    case MLOp::Lt:
      O.push_back(relop(NumType::I32, RelopKind::Lt));
      break;
    }
    return Status::success();
  }
  case ExKind::If: {
    if (Status S = gen(E->Kids[0], O); !S)
      return S;
    Type Res = L(E->Ty);
    std::vector<LocalEffect> Fx;
    beginBlockScope();
    InstVec T;
    Status S1 = gen(E->Kids[1], T);
    {
      std::vector<LocalEffect> FxT = endBlockScope();
      Fx.insert(Fx.end(), FxT.begin(), FxT.end());
    }
    if (!S1)
      return S1;
    beginBlockScope();
    InstVec F;
    Status S2 = gen(E->Kids[2], F);
    {
      std::vector<LocalEffect> FxF = endBlockScope();
      Fx.insert(Fx.end(), FxF.begin(), FxF.end());
    }
    if (!S2)
      return S2;
    O.push_back(ifElse(build::arrow({}, {Res}), std::move(Fx), std::move(T),
                       std::move(F)));
    return Status::success();
  }
  case ExKind::Seq: {
    if (Status S = gen(E->Kids[0], O); !S)
      return S;
    O.push_back(drop()); // unit
    return gen(E->Kids[1], O);
  }
  }
  return Error("unhandled expression in codegen");
}

//===----------------------------------------------------------------------===//
// Codegen implementation
//===----------------------------------------------------------------------===//

Expected<uint32_t> Codegen::liftLambda(
    const std::vector<std::string> &TyParams, const MLTypeRef &EnvTy,
    const std::vector<std::string> &FreeNames,
    const std::vector<MLTypeRef> &FreeTys, const std::string &ParamName,
    const MLTypeRef &ParamTy, const MLTypeRef &RetTy, const MLExprRef &Body) {
  uint32_t Idx = static_cast<uint32_t>(Out.Funcs.size());
  std::vector<Quant> Quants;
  for (size_t I = 0; I < TyParams.size(); ++I)
    Quants.push_back(Quant::type(Qual::unr(), Size::constant(64), true));
  Type EnvLow = lowerTy(EnvTy, TyParams, 0);
  Type ParamLow = lowerTy(ParamTy, TyParams, 0);
  Type RetLow = lowerTy(RetTy, TyParams, 0);
  FunTypeRef Ty = FunType::get(
      std::move(Quants), build::arrow({EnvLow, ParamLow}, {RetLow}));

  // Reserve the slot before compiling (the body may lift more lambdas).
  ir::Function Placeholder;
  Placeholder.Ty = Ty;
  Out.Funcs.push_back(Placeholder);

  FunCg FC(*this, TyParams, /*NumParams=*/2);
  FC.Vars[ParamName] = {1, ParamTy};
  InstVec O;
  // Unpack the environment into fresh locals: env is local 0.
  if (FreeNames.size() == 1) {
    FC.Vars[FreeNames[0]] = {0, FreeTys[0]};
  } else if (FreeNames.size() > 1) {
    // Walk the right-nested pairs: cursor holds the remaining tail.
    uint32_t Cursor = 0;
    MLTypeRef CursorTy = EnvTy;
    for (size_t I = 0; I + 1 < FreeNames.size(); ++I) {
      // fst → the I-th variable; snd → new cursor.
      Type FstLow = FC.L(CursorTy->A);
      Type SndLow = FC.L(CursorTy->B);
      uint32_t VL = FC.newLocal();
      uint32_t NextCursor = FC.newLocal();
      O.push_back(getLocal(Cursor, Qual::unr()));
      InstVec B;
      B.push_back(structGet(0));
      B.push_back(setLocal(VL));
      B.push_back(structGet(1));
      B.push_back(setLocal(NextCursor));
      B.push_back(drop());
      O.push_back(memUnpack(build::arrow({}, {}),
                            {{VL, FstLow}, {NextCursor, SndLow}},
                            std::move(B)));
      FC.Vars[FreeNames[I]] = {VL, CursorTy->A};
      Cursor = NextCursor;
      CursorTy = CursorTy->B;
    }
    FC.Vars[FreeNames.back()] = {Cursor, CursorTy};
  }
  if (Status S = FC.gen(Body, O); !S)
    return S.error();

  ir::Function &F = Out.Funcs[Idx];
  F.Locals = FC.Locals;
  F.Body = std::move(O);
  return Idx;
}

Expected<ir::Module> Codegen::run() {
  Out.Name = M.Name;
  for (const MLImport &I : M.Imports) {
    Imports[I.Name] = &I;
    if (I.Ty->K != TyKind::Fun)
      return Error("import '" + I.Name + "' must have a function type");
    Type A = lowerTy(I.Ty->A, {}, 0);
    Type B = lowerTy(I.Ty->B, {}, 0);
    FnIdx[I.Name] = static_cast<uint32_t>(Out.Funcs.size());
    Out.Funcs.push_back(importFunc({I.Mod, I.Name},
                                   FunType::get({}, build::arrow({A}, {B}))));
  }
  for (const MLFun &F : M.Funs) {
    Funs[F.Name] = &F;
    std::vector<Quant> Quants;
    for (size_t I = 0; I < F.TyParams.size(); ++I)
      Quants.push_back(Quant::type(Qual::unr(), Size::constant(64), true));
    Type A = lowerTy(F.ParamTy, F.TyParams, 0);
    Type B = lowerTy(F.RetTy, F.TyParams, 0);
    FnIdx[F.Name] = static_cast<uint32_t>(Out.Funcs.size());
    ir::Function Fn;
    Fn.Ty = FunType::get(std::move(Quants), build::arrow({A}, {B}));
    if (F.Exported)
      Fn.Exports.push_back(F.Name);
    Out.Funcs.push_back(std::move(Fn));
  }
  // Globals: a cell per global plus an init function.
  for (const MLGlobal &G : M.Globals) {
    GlobIdx[G.Name] = static_cast<uint32_t>(Out.Globals.size());
    GlobTy[G.Name] = G.Ty;
    ir::Global RG;
    RG.Mut = true;
    RG.P = lowerTy(G.Ty, {}, 0).P;
    Out.Globals.push_back(std::move(RG));
  }
  for (const MLGlobal &G : M.Globals) {
    FunCg FC(*this, {}, /*NumParams=*/0);
    InstVec O;
    if (Status S = FC.gen(G.Init, O); !S)
      return Error("in global '" + G.Name + "': " + S.error().message());
    uint32_t InitIdx = static_cast<uint32_t>(Out.Funcs.size());
    ir::Function Fn;
    Fn.Ty = FunType::get({}, build::arrow({}, {lowerTy(G.Ty, {}, 0)}));
    Fn.Locals = FC.Locals;
    Fn.Body = std::move(O);
    Out.Funcs.push_back(std::move(Fn));
    Out.Globals[GlobIdx[G.Name]].Init = {call(InitIdx), setGlobal(GlobIdx[G.Name]),
                                         getGlobal(GlobIdx[G.Name])};
  }
  // Function bodies.
  for (const MLFun &F : M.Funs) {
    FunCg FC(*this, F.TyParams, /*NumParams=*/1);
    FC.Vars[F.Param] = {0, F.ParamTy};
    InstVec O;
    if (Status S = FC.gen(F.Body, O); !S)
      return Error("in function '" + F.Name + "': " + S.error().message());
    ir::Function &Fn = Out.Funcs[FnIdx[F.Name]];
    Fn.Locals = FC.Locals;
    Fn.Body = std::move(O);
  }
  // Table: every function, so coderefs are simply function indices.
  for (uint32_t I = 0; I < Out.Funcs.size(); ++I)
    Out.Tab.Entries.push_back(I);
  return std::move(Out);
}

} // namespace

Expected<ir::Module> rw::ml::compile(const MLModule &M) {
  // Intern all generated types into the shared (process-wide) arena so the
  // output module links against L3 modules by pointer equality.
  ir::ArenaScope Scope(ir::TypeArena::global());
  Codegen CG(M);
  return CG.run();
}

Expected<ir::Module> rw::ml::compileSource(const std::string &Name,
                                           const std::string &Src) {
  Expected<MLModule> M = parse(Name, Src);
  if (!M)
    return M.error();
  if (Status S = typecheck(*M); !S)
    return S.error();
  return compile(*M);
}
