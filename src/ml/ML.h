//===- ml/ML.h - Core ML frontend (§5) --------------------------*- C++-*-===//
//
// Part of the RichWasm reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The garbage-collected source language of §5: core ML with units, ints,
/// references, binary variants (sums), products, functions with parametric
/// polymorphism (explicit type parameters on top-level functions, solved by
/// matching at call sites), plus multi-module constructs (imports, exports,
/// global state) and the linking-types extensions:
///
///   * `lin τ`     — compile τ to a *linear* RichWasm type (the paper's
///                   (τ)lin); the ML checker deliberately does NOT enforce
///                   linear usage — RichWasm's checker catches violations;
///   * `linref τ`  — the paper's ref_to_lin: an ML reference that can hold
///                   a linear value, with take/put semantics that fail at
///                   runtime if used twice.
///
/// Compilation is type-preserving: typed closure conversion (closures are
/// heap existentials packing code with environment), an annotation phase
/// (every ML type variable gets the RichWasm bound unr ⪯ α ≲ 64 — all ML
/// values fit one word because aggregates are boxed), and code generation.
///
/// Concrete syntax (everything ends in `;;`):
///
///   import mod.name : type ;;
///   export? fun name ['a 'b]? (x : type) : type = expr ;;
///   global name = expr ;;
///
///   type ::= sum ('->' type)?          sum  ::= prod ('+' prod)*
///   prod ::= atom ('*' atom)*          atom ::= int | unit | 'a | ref atom
///          | lin atom | linref atom | ( type )
///
///   expr ::= let x = e in e | fn (x : T) => e | if e then e else e
///          | case e of inl x => e | inr y => e end
///          | e := e | e ; e | e (= | <) e | e (+|-) e | e * e | e e
///          | n | () | x | (e , e) | !e | ref e | linref e
///          | fst e | snd e | inl [T] e | inr [T] e
///
//===----------------------------------------------------------------------===//

#ifndef RICHWASM_ML_ML_H
#define RICHWASM_ML_ML_H

#include "ir/Module.h"
#include "support/Error.h"

#include <memory>
#include <string>
#include <vector>

namespace rw::ml {

//===----------------------------------------------------------------------===//
// Surface AST
//===----------------------------------------------------------------------===//

struct MLType;
using MLTypeRef = std::shared_ptr<const MLType>;

enum class TyKind : uint8_t { Int, Unit, Pair, Sum, Ref, Fun, Var, Lin, RefLin };

struct MLType {
  TyKind K;
  MLTypeRef A, B; ///< Components (Pair/Sum/Fun) or element (Ref/Lin/RefLin).
  std::string Var;

  static MLTypeRef mk(TyKind K, MLTypeRef A = nullptr, MLTypeRef B = nullptr) {
    auto T = std::make_shared<MLType>();
    T->K = K;
    T->A = std::move(A);
    T->B = std::move(B);
    return T;
  }
  static MLTypeRef var(std::string Name) {
    auto T = std::make_shared<MLType>();
    T->K = TyKind::Var;
    T->Var = std::move(Name);
    return T;
  }
};

bool mlTypeEquals(const MLTypeRef &A, const MLTypeRef &B);
std::string mlTypeStr(const MLTypeRef &T);

enum class ExKind : uint8_t {
  Int,
  Unit,
  VarRef,
  App,
  Lam,
  Let,
  Pair,
  Fst,
  Snd,
  Inl,
  Inr,
  Case,
  MkRef,
  MkRefLin,
  MkRefLinEmpty,
  Deref,
  Assign,
  Binop,
  If,
  Seq,
};

enum class MLOp : uint8_t { Add, Sub, Mul, Eq, Lt };

struct MLExpr;
using MLExprRef = std::shared_ptr<MLExpr>;

struct MLExpr {
  ExKind K;
  int64_t IntVal = 0;
  std::string Name;        ///< Variable / binder name.
  std::string Name2;       ///< Second binder (case inr).
  MLTypeRef Ann;           ///< Type annotation (lam param, inl/inr).
  MLOp Op = MLOp::Add;
  std::vector<MLExprRef> Kids;

  /// Filled by the type checker.
  MLTypeRef Ty;

  static MLExprRef mk(ExKind K) {
    auto E = std::make_shared<MLExpr>();
    E->K = K;
    return E;
  }
};

struct MLImport {
  std::string Mod, Name;
  MLTypeRef Ty; ///< Must be a function type to be callable.
};

struct MLFun {
  std::string Name;
  std::vector<std::string> TyParams;
  std::string Param;
  MLTypeRef ParamTy, RetTy;
  MLExprRef Body;
  bool Exported = false;
};

struct MLGlobal {
  std::string Name;
  MLExprRef Init;
  MLTypeRef Ty; ///< Inferred.
};

struct MLModule {
  std::string Name;
  std::vector<MLImport> Imports;
  std::vector<MLGlobal> Globals;
  std::vector<MLFun> Funs;
};

//===----------------------------------------------------------------------===//
// Pipeline
//===----------------------------------------------------------------------===//

/// Parses a module from source text.
Expected<MLModule> parse(const std::string &Name, const std::string &Src);

/// Type-checks the module, annotating every expression. Deliberately does
/// not check linear usage of `lin` types (the paper's design: RichWasm
/// catches those violations after compilation).
Status typecheck(MLModule &M);

/// Compiles a checked module to RichWasm (typed closure conversion +
/// annotation + code generation).
Expected<ir::Module> compile(const MLModule &M);

/// Convenience: parse + typecheck + compile.
Expected<ir::Module> compileSource(const std::string &Name,
                                   const std::string &Src);

/// The RichWasm type an ML type compiles to (the shared boundary
/// convention the L3 compiler must agree with for the FFI).
ir::Type lowerMLType(const MLTypeRef &T,
                     const std::vector<std::string> &TyParams);

} // namespace rw::ml

#endif // RICHWASM_ML_ML_H
